// Package historygraph is a graph database for historical graph data: it
// stores the entire evolution history of a network and retrieves one or
// many snapshots — the graph as of arbitrary past time points — fast
// enough for interactive analysis, while maintaining the current graph for
// ongoing updates.
//
// It is a from-scratch Go reproduction of Khurana & Deshpande, "Efficient
// Snapshot Retrieval over Historical Graph Data" (ICDE 2013): the
// DeltaGraph hierarchical index (internal/deltagraph) persists the history
// as columnar deltas in a key-value store (internal/kvstore), and the
// GraphPool (internal/graphpool) holds the retrieved snapshots overlaid
// non-redundantly in memory.
//
// Basic use:
//
//	gm, _ := historygraph.Open(historygraph.Options{})
//	gm.Append(historygraph.Event{Type: historygraph.AddNode, At: 1, Node: 23})
//	...
//	h, _ := gm.GetHistGraph(t, "+node:name")
//	for _, n := range h.Nodes() {
//	    _ = h.Neighbors(n)
//	}
//	gm.Release(h)
package historygraph

import (
	"fmt"
	"time"

	"historygraph/internal/delta"
	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"
	"historygraph/internal/graphpool"
	"historygraph/internal/kvstore"
)

// Re-exported core types. The data model lives in internal/graph; these
// aliases form the public surface.
type (
	// NodeID identifies a node for the lifetime of the database.
	NodeID = graph.NodeID
	// EdgeID identifies an edge for the lifetime of the database.
	EdgeID = graph.EdgeID
	// Time is a discrete timestamp.
	Time = graph.Time
	// Event is one atomic change to the network.
	Event = graph.Event
	// EventType enumerates event kinds.
	EventType = graph.EventType
	// EventList is a chronological run of events.
	EventList = graph.EventList
	// Snapshot is a set-based graph as of one time point.
	Snapshot = graph.Snapshot
	// EdgeInfo is an edge's endpoints and direction.
	EdgeInfo = graph.EdgeInfo
	// HistGraph is a retrieved historical graph: a live read view into
	// the GraphPool.
	HistGraph = graphpool.View
	// GraphID identifies an active graph in the pool.
	GraphID = graphpool.GraphID
	// TimeExpression is a Boolean expression over timepoints.
	TimeExpression = deltagraph.TimeExpression
	// TimeExpr is a node of a TimeExpression.
	TimeExpr = deltagraph.TimeExpr
	// Var selects membership at the i-th timepoint of a TimeExpression.
	Var = deltagraph.Var
	// Not negates a TimeExpr.
	Not = deltagraph.Not
	// And conjoins TimeExprs.
	And = deltagraph.And
	// Or disjoins TimeExprs.
	Or = deltagraph.Or
	// IntervalResult answers GetHistGraphInterval.
	IntervalResult = deltagraph.IntervalResult
	// AuxIndex is a user-defined auxiliary index (Section 4.7).
	AuxIndex = deltagraph.AuxIndex
	// AuxSnapshot is auxiliary key-value state as of a time point.
	AuxSnapshot = deltagraph.AuxSnapshot
	// AuxEvent is a change to auxiliary state.
	AuxEvent = deltagraph.AuxEvent
	// IndexStats summarizes the DeltaGraph shape.
	IndexStats = deltagraph.IndexStats
	// PoolStats summarizes GraphPool contents.
	PoolStats = graphpool.Stats
)

// Event types, re-exported.
const (
	AddNode       = graph.AddNode
	DelNode       = graph.DelNode
	AddEdge       = graph.AddEdge
	DelEdge       = graph.DelEdge
	SetNodeAttr   = graph.SetNodeAttr
	SetEdgeAttr   = graph.SetEdgeAttr
	TransientEdge = graph.TransientEdge
	TransientNode = graph.TransientNode
)

// Aux event operations, re-exported.
const (
	AuxSet = deltagraph.AuxSet
	AuxDel = deltagraph.AuxDel
)

// Options configures a GraphManager.
type Options struct {
	// LeafEventlistSize is the DeltaGraph L parameter (default 4096).
	LeafEventlistSize int
	// Arity is the DeltaGraph k parameter (default 2).
	Arity int
	// DifferentialFunction names the function: "intersection" (default),
	// "union", "balanced", "empty", "skewed:R", "mixed:R1:R2",
	// "rightskewed:R", "leftskewed:R".
	DifferentialFunction string
	// Partitions spreads storage across that many horizontal partitions
	// (0/1 = unpartitioned).
	Partitions int
	// StorePath persists the index under this path prefix ("" keeps the
	// index in memory). With Partitions > 1 one file per partition is
	// created: <path>.p0, <path>.p1, ...
	StorePath string
	// Compress enables flate compression of stored payloads.
	Compress bool
	// DependentMaxRatio tunes the GraphPool dependent-overlay decision.
	DependentMaxRatio float64
	// AuxIndexes registers auxiliary indexes before any event is added.
	AuxIndexes []AuxIndex
	// CleanerInterval is the lazy GraphPool cleaner period (default 1s).
	CleanerInterval time.Duration
}

func (o Options) store() (kvstore.Store, error) {
	parts := o.Partitions
	if parts < 1 {
		parts = 1
	}
	if o.StorePath == "" {
		if parts > 1 {
			return kvstore.NewMemPartitioned(parts), nil
		}
		return kvstore.NewMemStore(), nil
	}
	fo := kvstore.FileOptions{Compress: o.Compress}
	if parts == 1 {
		return kvstore.OpenFileStore(o.StorePath, fo)
	}
	stores := make([]kvstore.Store, parts)
	for i := range stores {
		s, err := kvstore.OpenFileStore(fmt.Sprintf("%s.p%d", o.StorePath, i), fo)
		if err != nil {
			for _, prev := range stores[:i] {
				prev.Close()
			}
			return nil, err
		}
		stores[i] = s
	}
	return kvstore.NewPartitioned(stores), nil
}

func (o Options) deltagraphOptions(store kvstore.Store, pool *graphpool.Pool) (deltagraph.Options, error) {
	fn := delta.Differential(nil)
	if o.DifferentialFunction != "" {
		var err error
		fn, err = delta.ByName(o.DifferentialFunction)
		if err != nil {
			return deltagraph.Options{}, err
		}
	}
	return deltagraph.Options{
		LeafSize:          o.LeafEventlistSize,
		Arity:             o.Arity,
		Function:          fn,
		Partitions:        o.Partitions,
		Store:             store,
		Pool:              pool,
		DependentMaxRatio: o.DependentMaxRatio,
		AuxIndexes:        o.AuxIndexes,
	}, nil
}

// GraphManager is the top-level handle: it owns the DeltaGraph index, the
// GraphPool, and the background cleaner, and exposes the paper's
// programmatic API (Section 3.2.1).
//
// A GraphManager is safe for concurrent use: retrievals take the index's
// read lock and may run in parallel, while Append/AppendAll serialize
// against them. Long-lived callers that hold views across requests (the
// internal/server hot-snapshot cache) should Pin them so the lazy cleaner
// cannot reclaim a released view mid-read.
type GraphManager struct {
	dg      *deltagraph.DeltaGraph
	pool    *graphpool.Pool
	store   kvstore.Store
	cleaner *graphpool.Cleaner
}

// Open creates an empty historical graph database.
func Open(opts Options) (*GraphManager, error) {
	store, err := opts.store()
	if err != nil {
		return nil, err
	}
	pool := graphpool.New()
	dgOpts, err := opts.deltagraphOptions(store, pool)
	if err != nil {
		store.Close()
		return nil, err
	}
	dg, err := deltagraph.New(dgOpts)
	if err != nil {
		store.Close()
		return nil, err
	}
	return newManager(dg, pool, store, opts), nil
}

// BuildFrom bulk-loads a chronological event trace (Section 4.6) and
// returns a queryable database.
func BuildFrom(events EventList, opts Options) (*GraphManager, error) {
	store, err := opts.store()
	if err != nil {
		return nil, err
	}
	pool := graphpool.New()
	dgOpts, err := opts.deltagraphOptions(store, pool)
	if err != nil {
		store.Close()
		return nil, err
	}
	dg, err := deltagraph.Build(events, dgOpts)
	if err != nil {
		store.Close()
		return nil, err
	}
	return newManager(dg, pool, store, opts), nil
}

// Load reopens a database previously persisted with Checkpoint.
func Load(opts Options) (*GraphManager, error) {
	if opts.StorePath == "" {
		return nil, fmt.Errorf("historygraph: Load requires StorePath")
	}
	store, err := opts.store()
	if err != nil {
		return nil, err
	}
	pool := graphpool.New()
	dg, err := deltagraph.Open(deltagraph.Options{
		Store: store, Pool: pool,
		DependentMaxRatio: opts.DependentMaxRatio,
		AuxIndexes:        opts.AuxIndexes,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	return newManager(dg, pool, store, opts), nil
}

func newManager(dg *deltagraph.DeltaGraph, pool *graphpool.Pool, store kvstore.Store, opts Options) *GraphManager {
	interval := opts.CleanerInterval
	if interval <= 0 {
		interval = time.Second
	}
	gm := &GraphManager{dg: dg, pool: pool, store: store, cleaner: graphpool.NewCleaner(pool, interval)}
	gm.cleaner.Start()
	return gm
}

// Append records one event against the current graph and the index.
func (gm *GraphManager) Append(ev Event) error { return gm.dg.Append(ev) }

// AppendAll records a run of events.
func (gm *GraphManager) AppendAll(events EventList) error { return gm.dg.AppendAll(events) }

// AppendAllCounted is AppendAll reporting how many events applied before
// the first failure (== len(events) on success); the replication
// subsystem's recovery uses the count to resume exactly where a partial
// apply stopped.
func (gm *GraphManager) AppendAllCounted(events EventList) (int, error) {
	return gm.dg.AppendAllCounted(events)
}

// GetHistGraph retrieves the graph as of time t into the GraphPool. The
// attrOptions string follows the paper's Table 1 syntax (e.g.
// "+node:all-node:salary+edge:name"; "" fetches structure only).
func (gm *GraphManager) GetHistGraph(t Time, attrOptions string) (*HistGraph, error) {
	opts, err := graph.ParseAttrOptions(attrOptions)
	if err != nil {
		return nil, err
	}
	id, err := gm.dg.Retrieve(t, opts)
	if err != nil {
		return nil, err
	}
	return gm.pool.View(id)
}

// GetHistGraphs retrieves many snapshots with multi-query optimization
// (Section 4.4).
func (gm *GraphManager) GetHistGraphs(ts []Time, attrOptions string) ([]*HistGraph, error) {
	opts, err := graph.ParseAttrOptions(attrOptions)
	if err != nil {
		return nil, err
	}
	ids, err := gm.dg.RetrieveMany(ts, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*HistGraph, len(ids))
	for i, id := range ids {
		if out[i], err = gm.pool.View(id); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GetHistSnapshots retrieves many detached set-based snapshots with the
// shared-delta multi-query plan optimization (Section 4.4) and no
// GraphPool registration — the batch entry point the query service maps
// its multi-timepoint endpoint onto.
func (gm *GraphManager) GetHistSnapshots(ts []Time, attrOptions string) ([]*Snapshot, error) {
	opts, err := graph.ParseAttrOptions(attrOptions)
	if err != nil {
		return nil, err
	}
	return gm.dg.GetSnapshots(ts, opts)
}

// GetHistSnapshot retrieves a detached set-based snapshot (no GraphPool
// registration) — useful for bulk analysis that immediately discards the
// graph.
func (gm *GraphManager) GetHistSnapshot(t Time, attrOptions string) (*Snapshot, error) {
	opts, err := graph.ParseAttrOptions(attrOptions)
	if err != nil {
		return nil, err
	}
	return gm.dg.GetSnapshot(t, opts)
}

// GetHistGraphExpr retrieves the hypothetical graph matching a
// TimeExpression (e.g. t1 ∧ ¬t2).
func (gm *GraphManager) GetHistGraphExpr(tex TimeExpression, attrOptions string) (*Snapshot, error) {
	opts, err := graph.ParseAttrOptions(attrOptions)
	if err != nil {
		return nil, err
	}
	return gm.dg.GetExpression(tex, opts)
}

// GetHistGraphInterval retrieves all elements added during [ts, te) plus
// the transient events in that window.
func (gm *GraphManager) GetHistGraphInterval(ts, te Time, attrOptions string) (*IntervalResult, error) {
	opts, err := graph.ParseAttrOptions(attrOptions)
	if err != nil {
		return nil, err
	}
	return gm.dg.GetInterval(ts, te, opts)
}

// GetAuxSnapshot reconstructs a registered auxiliary index's state as of
// time t.
func (gm *GraphManager) GetAuxSnapshot(name string, t Time) (AuxSnapshot, error) {
	return gm.dg.GetAuxSnapshot(name, t)
}

// CurrentGraph returns a live view of the current graph.
func (gm *GraphManager) CurrentGraph() *HistGraph { return gm.pool.Current() }

// Release declares a retrieved historical graph no longer needed; the lazy
// cleaner reclaims it.
func (gm *GraphManager) Release(h *HistGraph) error { return gm.pool.Release(h.ID()) }

// Pin takes a reference on a retrieved historical graph: a pinned graph
// survives the cleaner even after Release, so a cache can keep serving it
// while concurrent readers finish. Every Pin must be paired with Unpin.
func (gm *GraphManager) Pin(h *HistGraph) error { return gm.pool.Pin(h.ID()) }

// Unpin drops a reference taken with Pin.
func (gm *GraphManager) Unpin(h *HistGraph) error { return gm.pool.Unpin(h.ID()) }

// LastTime returns the timestamp of the newest event in the database (0
// when empty).
func (gm *GraphManager) LastTime() Time { return gm.dg.LastTime() }

// ForceClean runs a GraphPool cleanup pass immediately (instead of waiting
// for the background cleaner) and returns the number of elements evicted.
func (gm *GraphManager) ForceClean() int { return gm.cleaner.ForceClean() }

// Materialize applies a materialization policy: "root", "children",
// "grandchildren", or "leaves" (total materialization).
func (gm *GraphManager) Materialize(policy string) error { return gm.dg.MaterializeLevel(policy) }

// DeltaGraph exposes the underlying index for advanced use (experiment
// harness, custom materialization).
func (gm *GraphManager) DeltaGraph() *deltagraph.DeltaGraph { return gm.dg }

// Pool exposes the underlying GraphPool.
func (gm *GraphManager) Pool() *graphpool.Pool { return gm.pool }

// IndexStats reports the DeltaGraph shape and cost.
func (gm *GraphManager) IndexStats() IndexStats { return gm.dg.Stats() }

// PoolStats reports GraphPool contents.
func (gm *GraphManager) PoolStats() PoolStats { return gm.pool.Stats() }

// Checkpoint persists the index state so Load can reopen it.
func (gm *GraphManager) Checkpoint() error { return gm.dg.Checkpoint() }

// Close checkpoints nothing, stops the cleaner, and closes the store.
// Call Checkpoint first to make the index reloadable.
func (gm *GraphManager) Close() error {
	gm.cleaner.Stop()
	return gm.store.Close()
}

// MustParseAttrOptions re-exports the attr_options parser for callers that
// need programmatic option structs.
func MustParseAttrOptions(s string) graph.AttrOptions { return graph.MustParseAttrOptions(s) }

// ParseAttrOptions validates and parses a Table 1 attr_options string.
func ParseAttrOptions(s string) (graph.AttrOptions, error) { return graph.ParseAttrOptions(s) }
