module historygraph

go 1.24
