package deltagraph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"historygraph/internal/graph"
	"historygraph/internal/kvstore"
)

// Extensibility (Section 4.7): auxiliary information — arbitrary key-value
// snapshots derived from the graph — is indexed alongside the graph itself.
// Each registered AuxIndex contributes one extra column to every delta and
// leaf-eventlist; retrieval of the auxiliary snapshot as of any time point
// follows exactly the same plan machinery as graph snapshots.

// AuxSnapshot is the paper's AuxiliarySnapshot: a hashtable of string
// key-value pairs.
type AuxSnapshot map[string]string

func (a AuxSnapshot) clone() AuxSnapshot {
	c := make(AuxSnapshot, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// AuxOp is the kind of an AuxEvent.
type AuxOp uint8

// Aux event operations.
const (
	AuxSet AuxOp = iota + 1 // add or change a key-value pair
	AuxDel                  // remove a key
)

// AuxEvent is the paper's AuxiliaryEvent: a timestamped change to one
// key-value pair.
type AuxEvent struct {
	At  graph.Time
	Op  AuxOp
	Key string
	Val string
}

// apply plays the event onto the snapshot.
func (a AuxSnapshot) apply(ev AuxEvent) {
	switch ev.Op {
	case AuxSet:
		a[ev.Key] = ev.Val
	case AuxDel:
		delete(a, ev.Key)
	}
}

// AuxIndex is the user-implemented interface (the paper's AuxIndex
// abstract class). CreateAuxEvents derives the auxiliary events caused by
// one plain event, given the graph state before the event and the latest
// auxiliary snapshot. AuxDF is the differential function combining child
// auxiliary snapshots into the parent's (the CreateAuxSnapshot method of
// the paper — replaying an aux eventlist onto the previous aux snapshot —
// is provided by the framework itself).
type AuxIndex interface {
	Name() string
	CreateAuxEvents(ev graph.Event, before *graph.Snapshot, aux AuxSnapshot) []AuxEvent
	AuxDF(children []AuxSnapshot) AuxSnapshot
}

// auxDelta is the stored difference between two aux snapshots.
type auxDelta struct {
	set  []kvPair
	dels []string
}

type kvPair struct{ k, v string }

func (d auxDelta) empty() bool { return len(d.set) == 0 && len(d.dels) == 0 }

// computeAuxDelta returns the delta that transforms source into target.
func computeAuxDelta(target, source AuxSnapshot) auxDelta {
	var d auxDelta
	for k, v := range target {
		if sv, ok := source[k]; !ok || sv != v {
			d.set = append(d.set, kvPair{k, v})
		}
	}
	for k := range source {
		if _, ok := target[k]; !ok {
			d.dels = append(d.dels, k)
		}
	}
	sort.Slice(d.set, func(i, j int) bool { return d.set[i].k < d.set[j].k })
	sort.Strings(d.dels)
	return d
}

func (d auxDelta) apply(a AuxSnapshot) {
	for _, k := range d.dels {
		delete(a, k)
	}
	for _, p := range d.set {
		a[p.k] = p.v
	}
}

// --- aux codec ---------------------------------------------------------

const (
	tagAuxDelta  byte = 0x11
	tagAuxEvents byte = 0x12
)

var errAuxCorrupt = errors.New("deltagraph: corrupt aux payload")

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readStr(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || int(n) > len(b)-sz {
		return "", nil, errAuxCorrupt
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

func encodeAuxDelta(d auxDelta) []byte {
	buf := []byte{tagAuxDelta}
	buf = binary.AppendUvarint(buf, uint64(len(d.set)))
	for _, p := range d.set {
		buf = appendStr(buf, p.k)
		buf = appendStr(buf, p.v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.dels)))
	for _, k := range d.dels {
		buf = appendStr(buf, k)
	}
	return buf
}

func decodeAuxDelta(b []byte) (auxDelta, error) {
	var d auxDelta
	if len(b) == 0 || b[0] != tagAuxDelta {
		return d, errAuxCorrupt
	}
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return d, errAuxCorrupt
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		var k, v string
		var err error
		if k, b, err = readStr(b); err != nil {
			return d, err
		}
		if v, b, err = readStr(b); err != nil {
			return d, err
		}
		d.set = append(d.set, kvPair{k, v})
	}
	n, sz = binary.Uvarint(b)
	if sz <= 0 {
		return d, errAuxCorrupt
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		var k string
		var err error
		if k, b, err = readStr(b); err != nil {
			return d, err
		}
		d.dels = append(d.dels, k)
	}
	return d, nil
}

func encodeAuxEvents(evs []AuxEvent) []byte {
	buf := []byte{tagAuxEvents}
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, ev := range evs {
		buf = binary.AppendVarint(buf, int64(ev.At))
		buf = append(buf, byte(ev.Op))
		buf = appendStr(buf, ev.Key)
		buf = appendStr(buf, ev.Val)
	}
	return buf
}

func decodeAuxEvents(b []byte) ([]AuxEvent, error) {
	if len(b) == 0 || b[0] != tagAuxEvents {
		return nil, errAuxCorrupt
	}
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, errAuxCorrupt
	}
	b = b[sz:]
	evs := make([]AuxEvent, 0, n)
	for i := uint64(0); i < n; i++ {
		at, sz := binary.Varint(b)
		if sz <= 0 {
			return nil, errAuxCorrupt
		}
		b = b[sz:]
		if len(b) == 0 {
			return nil, errAuxCorrupt
		}
		op := AuxOp(b[0])
		b = b[1:]
		var k, v string
		var err error
		if k, b, err = readStr(b); err != nil {
			return nil, err
		}
		if v, b, err = readStr(b); err != nil {
			return nil, err
		}
		evs = append(evs, AuxEvent{At: graph.Time(at), Op: op, Key: k, Val: v})
	}
	return evs, nil
}

// --- aux retrieval -------------------------------------------------------

// auxIndexByName returns the position of a registered aux index.
func (dg *DeltaGraph) auxIndexByName(name string) (int, error) {
	for i, a := range dg.auxes {
		if a.Name() == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("deltagraph: no aux index named %q", name)
}

// GetAuxSnapshot reconstructs the auxiliary snapshot of the named index as
// of time t (the paper's GetAuxSnapshot, backing AuxHistQueryPoint).
func (dg *DeltaGraph) GetAuxSnapshot(name string, t graph.Time) (AuxSnapshot, error) {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	idx, err := dg.auxIndexByName(name)
	if err != nil {
		return nil, err
	}
	comp := int(kvstore.ComponentAuxBase) + idx

	// Plan with aux-only weights; materialized shortcuts are unusable
	// because pinned snapshots hold graph content only.
	sel := weightSelector{auxComponents: []int{comp}, perFetchCost: 16, skipMat: true, noBackward: true}
	lastLeaf := dg.skel.leaves[len(dg.skel.leaves)-1]
	lastLeafTime := dg.skel.nodes[lastLeaf].at
	dist, prev := dg.skel.shortestPaths(dg.skel.superRoot, sel)

	target := lastLeaf
	qt := t
	if t >= lastLeafTime {
		qt = lastLeafTime
	} else {
		li := dg.skel.locate(t)
		target = dg.skel.leaves[li]
		qt = dg.skel.nodes[target].at
	}
	aux := AuxSnapshot{}
	if target != dg.skel.leaves[0] { // the anchor leaf is empty: no hops
		if dist[target] == math.MaxInt64 {
			return nil, fmt.Errorf("deltagraph: leaf unreachable for aux query")
		}
		for _, hop := range dg.skel.pathTo(target, prev) {
			if err := dg.applyAuxHop(aux, hop, idx); err != nil {
				return nil, err
			}
		}
	}
	// Forward within the leaf interval, then the recent tail.
	if t > qt {
		li := dg.skel.locate(qt)
		for li < len(dg.skel.leaves)-1 {
			e := dg.eventEdge(li)
			evs, err := dg.fetchAuxEvents(e.deltaID, idx)
			if err != nil {
				return nil, err
			}
			for _, ev := range evs {
				if ev.At > qt && ev.At <= t {
					aux.apply(ev)
				}
			}
			if dg.skel.nodes[dg.skel.leaves[li+1]].at >= t {
				return aux, nil
			}
			li++
		}
		for _, ev := range dg.auxRecent[idx] {
			if ev.At > qt && ev.At <= t {
				aux.apply(ev)
			}
		}
	}
	return aux, nil
}

// applyAuxHop applies one plan hop to an aux snapshot.
func (dg *DeltaGraph) applyAuxHop(aux AuxSnapshot, hop planHop, idx int) error {
	e := hop.edge
	comp := kvstore.ComponentAuxBase + kvstore.Component(idx)
	buf, err := dg.store.Get(kvstore.EncodeKey(0, e.deltaID, comp))
	if err == kvstore.ErrNotFound {
		return nil // empty column
	}
	if err != nil {
		return err
	}
	switch e.kind {
	case kindDelta:
		d, err := decodeAuxDelta(buf)
		if err != nil {
			return err
		}
		d.apply(aux)
	case kindEventFwd:
		evs, err := decodeAuxEvents(buf)
		if err != nil {
			return err
		}
		for _, ev := range evs {
			aux.apply(ev)
		}
	case kindEventBwd:
		return fmt.Errorf("deltagraph: aux eventlists are forward-only; planner must not use backward hops")
	}
	return nil
}

// fetchAuxEvents loads one eventlist's aux column.
func (dg *DeltaGraph) fetchAuxEvents(deltaID uint64, idx int) ([]AuxEvent, error) {
	comp := kvstore.ComponentAuxBase + kvstore.Component(idx)
	buf, err := dg.store.Get(kvstore.EncodeKey(0, deltaID, comp))
	if err == kvstore.ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeAuxEvents(buf)
}

// AuxIndexNames lists the registered auxiliary indexes.
func (dg *DeltaGraph) AuxIndexNames() []string {
	names := make([]string, len(dg.auxes))
	for i, a := range dg.auxes {
		names[i] = a.Name()
	}
	return names
}
