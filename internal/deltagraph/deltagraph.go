// Package deltagraph implements DeltaGraph (Section 4 of Khurana &
// Deshpande, ICDE 2013): a hierarchical, tunable index over the historical
// trace of a graph that supports efficient retrieval of snapshots as of
// arbitrary past time points.
//
// The lowest level of the index corresponds to equi-spaced snapshots of the
// network (never stored explicitly); interior nodes are synthetic graphs
// built by a differential function over their children; every edge carries
// the delta that constructs its target from its source. A snapshot query is
// answered by the lowest-weight path from the empty super-root to the query
// point (Dijkstra over the in-memory skeleton); a multipoint query by a
// Steiner tree (2-approximation). Deltas are stored columnar in a key-value
// store, optionally hash-partitioned across storage units, and arbitrary
// index nodes can be materialized in memory at runtime to cut latencies.
package deltagraph

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"historygraph/internal/delta"
	"historygraph/internal/graph"
	"historygraph/internal/graphpool"
	"historygraph/internal/kvstore"
)

// Options configures DeltaGraph construction (Section 4.6: eventlist size
// L, arity k, the differential function, and the partitioning).
type Options struct {
	// LeafSize is L, the number of events per leaf-eventlist. A leaf cut
	// is extended to the next timestamp boundary so equal-time events
	// never straddle leaves.
	LeafSize int
	// Arity is k, the fan-out of interior nodes.
	Arity int
	// Function is the differential function; nil means Intersection.
	Function delta.Differential
	// Partitions is the number of horizontal partitions (storage
	// "machines"); 0 or 1 disables partitioning. When >1, Store must be
	// a *kvstore.Partitioned with at least that many partitions.
	Partitions int
	// Store is the persistent backend. nil means a fresh in-memory store.
	Store kvstore.Store
	// Pool, when set, receives retrieved snapshots, materialized nodes,
	// and mirrors the current graph (bits 0/1).
	Pool *graphpool.Pool
	// DependentMaxRatio bounds the dependent-graph optimization: a
	// retrieved snapshot is overlaid as exceptions against a materialized
	// base when the exception count is at most this fraction of the base
	// size. Zero means 0.25.
	DependentMaxRatio float64
	// AuxIndexes are user-defined auxiliary indexes (Section 4.7),
	// registered before any event is appended.
	AuxIndexes []AuxIndex
}

func (o *Options) fill() error {
	if o.LeafSize <= 0 {
		o.LeafSize = 4096
	}
	if o.Arity < 2 {
		o.Arity = 2
	}
	if o.Function == nil {
		o.Function = delta.Intersection{}
	}
	if o.Partitions < 1 {
		o.Partitions = 1
	}
	if o.Store == nil {
		if o.Partitions > 1 {
			o.Store = kvstore.NewMemPartitioned(o.Partitions)
		} else {
			o.Store = kvstore.NewMemStore()
		}
	}
	if o.Partitions > 1 {
		ps, ok := o.Store.(*kvstore.Partitioned)
		if !ok {
			return errors.New("deltagraph: Partitions > 1 requires a *kvstore.Partitioned store")
		}
		if ps.NumPartitions() < o.Partitions {
			return fmt.Errorf("deltagraph: store has %d partitions, need %d", ps.NumPartitions(), o.Partitions)
		}
	}
	if o.DependentMaxRatio <= 0 {
		o.DependentMaxRatio = 0.25
	}
	return nil
}

// pendingChild is a node awaiting a permanent parent; its graph content
// (and aux snapshots) are retained so the differential function can combine
// it with its future siblings.
type pendingChild struct {
	node int
	snap *graph.Snapshot
	aux  []AuxSnapshot
}

// DeltaGraph is the index. It is safe for concurrent use: queries take the
// read lock; Append, materialization and Flush take the write lock.
type DeltaGraph struct {
	mu     sync.RWMutex
	opts   Options
	skel   *skeleton
	store  kvstore.Store
	pstore *kvstore.Partitioned // nil when unpartitioned
	pool   *graphpool.Pool

	nextDeltaID uint64

	// Builder state (Section 4.6 bulk construction + live updates).
	current   *graph.Snapshot // graph after every appended event
	recent    graph.EventList // events after the last leaf cut
	lastTime  graph.Time      // timestamp of the newest appended event
	pending   [][]pendingChild
	batchMode bool // during bulk Build: defer spine construction

	// Provisional spine bookkeeping: nodes/edges/payloads replaced on the
	// next structural change.
	provNodes    []int
	provEdgeIdxs []int
	provDeltaIDs []uint64
	// rematRoot requests pinning the new root after a spine rebuild tore
	// down a materialized provisional root.
	rematRoot bool

	// Materialization: skeleton node -> pool graph id (when pool is set).
	matGraphs map[int]graphpool.GraphID

	auxes     []AuxIndex
	auxCur    []AuxSnapshot
	auxRecent [][]AuxEvent

	// planExecs counts query-plan executions (atomic: bumped under the
	// read lock by concurrent retrievals). The serving layer uses it to
	// observe how many retrievals its coalescing and caching avoided.
	planExecs atomic.Int64
}

// New creates an empty DeltaGraph ready for Append.
func New(opts Options) (*DeltaGraph, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	dg := &DeltaGraph{
		opts:        opts,
		skel:        newSkeleton(),
		store:       opts.Store,
		pool:        opts.Pool,
		current:     graph.NewSnapshot(),
		nextDeltaID: 1,
		matGraphs:   make(map[int]graphpool.GraphID),
		auxes:       opts.AuxIndexes,
	}
	if ps, ok := opts.Store.(*kvstore.Partitioned); ok && opts.Partitions > 1 {
		dg.pstore = ps
	}
	dg.skel.superRoot = dg.skel.addNode(&skelNode{level: math.MaxInt32, at: graph.MaxTime})
	// Leaf 0 is the empty graph "before time": it anchors queries that
	// precede the first cut. It stays out of the interior hierarchy and
	// is permanently materialized (the empty graph is free to hold), so
	// the super-root reaches it at zero cost.
	leaf0 := dg.skel.addNode(&skelNode{level: 0, at: math.MinInt64, materialized: true, matSnapshot: graph.NewSnapshot()})
	dg.skel.leaves = append(dg.skel.leaves, leaf0)
	dg.skel.addEdge(&skelEdge{from: dg.skel.superRoot, to: leaf0, kind: kindMat, sizes: make(componentSizes, 4), evIndex: -1})
	dg.pending = append(dg.pending, nil)
	dg.auxCur = dg.emptyAux()
	dg.auxRecent = make([][]AuxEvent, len(dg.auxes))
	return dg, nil
}

func (dg *DeltaGraph) emptyAux() []AuxSnapshot {
	aux := make([]AuxSnapshot, len(dg.auxes))
	for i := range aux {
		aux[i] = AuxSnapshot{}
	}
	return aux
}

// Build bulk-constructs a DeltaGraph from a chronological event trace in a
// single pass (Section 4.6), then seals the spine so the index is
// immediately queryable.
func Build(events graph.EventList, opts Options) (*DeltaGraph, error) {
	dg, err := New(opts)
	if err != nil {
		return nil, err
	}
	dg.mu.Lock()
	dg.batchMode = true
	for _, ev := range events {
		if err := dg.appendLocked(ev); err != nil {
			dg.mu.Unlock()
			return nil, err
		}
	}
	dg.batchMode = false
	if err := dg.rebuildSpineLocked(); err != nil {
		dg.mu.Unlock()
		return nil, err
	}
	dg.mu.Unlock()
	return dg, nil
}

// Append records one event: it updates the current graph (and the pool's
// current-graph bits), appends to the recent eventlist, and — when the
// recent eventlist reaches L and the timestamp advances — cuts a new leaf
// and extends the index (Section 6, "Updates to the Current graph").
func (dg *DeltaGraph) Append(ev graph.Event) error {
	dg.mu.Lock()
	defer dg.mu.Unlock()
	return dg.appendLocked(ev)
}

// AppendAll appends a run of events.
func (dg *DeltaGraph) AppendAll(events graph.EventList) error {
	_, err := dg.AppendAllCounted(events)
	return err
}

// AppendAllCounted is AppendAll reporting how many events of the run were
// applied before the first failure (== len(events) on success). Events
// apply one at a time, so on error a prefix of exactly that length has
// landed — recovery paths (the replication WAL drain) use the count to
// resume precisely instead of re-applying or skipping the prefix.
func (dg *DeltaGraph) AppendAllCounted(events graph.EventList) (int, error) {
	dg.mu.Lock()
	defer dg.mu.Unlock()
	for i, ev := range events {
		if err := dg.appendLocked(ev); err != nil {
			return i, err
		}
	}
	return len(events), nil
}

func (dg *DeltaGraph) appendLocked(ev graph.Event) error {
	if ev.At < dg.lastTime {
		return fmt.Errorf("deltagraph: event at %d is older than last event at %d", ev.At, dg.lastTime)
	}
	if len(dg.recent) >= dg.opts.LeafSize && ev.At > dg.lastTime {
		if err := dg.cutLeafLocked(); err != nil {
			return err
		}
	}
	// Aux events are derived against the graph state before the event.
	for i, aux := range dg.auxes {
		auxEvs := aux.CreateAuxEvents(ev, dg.current, dg.auxCur[i])
		for _, ae := range auxEvs {
			dg.auxCur[i].apply(ae)
		}
		dg.auxRecent[i] = append(dg.auxRecent[i], auxEvs...)
	}
	dg.current.Apply(ev)
	dg.recent = append(dg.recent, ev)
	dg.lastTime = ev.At
	if dg.pool != nil {
		dg.pool.ApplyEvent(ev)
	}
	return nil
}

// CurrentSnapshot returns a copy of the current graph.
func (dg *DeltaGraph) CurrentSnapshot() *graph.Snapshot {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	return dg.current.Clone()
}

// LastTime returns the timestamp of the newest event in the index.
func (dg *DeltaGraph) LastTime() graph.Time {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	return dg.lastTime
}

// Store returns the backing key-value store (for space accounting).
func (dg *DeltaGraph) Store() kvstore.Store { return dg.store }

// Pool returns the attached GraphPool, or nil.
func (dg *DeltaGraph) Pool() *graphpool.Pool { return dg.pool }

func (dg *DeltaGraph) allocDeltaID() uint64 {
	id := dg.nextDeltaID
	dg.nextDeltaID++
	return id
}

// auxComponentIDs returns the store components of all registered aux
// indexes (used by the weight selector and fetch paths).
func (dg *DeltaGraph) auxComponentIDs() []int {
	ids := make([]int, len(dg.auxes))
	for i := range dg.auxes {
		ids[i] = int(kvstore.ComponentAuxBase) + i
	}
	return ids
}
