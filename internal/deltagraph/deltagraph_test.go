package deltagraph

import (
	"fmt"
	"math/rand"
	"testing"

	"historygraph/internal/delta"
	"historygraph/internal/graph"
	"historygraph/internal/graphpool"
	"historygraph/internal/kvstore"
)

// makeTrace builds a well-formed random trace with adds, deletes, attribute
// churn and transient events, one event per timestamp tick (plus occasional
// same-timestamp bursts to exercise leaf-boundary extension).
func makeTrace(seed int64, n int) graph.EventList {
	rng := rand.New(rand.NewSource(seed))
	var (
		events    graph.EventList
		nextNode  graph.NodeID
		nextEdge  graph.EdgeID
		liveNodes []graph.NodeID
		liveEdges []graph.EdgeID
		edgeInfo  = map[graph.EdgeID]graph.EdgeInfo{}
		attrs     = map[graph.NodeID]map[string]string{}
		now       graph.Time
	)
	attrNames := []string{"name", "job", "city"}
	for len(events) < n {
		if rng.Intn(4) != 0 {
			now++ // 1 in 4 events shares the previous timestamp
		}
		switch op := rng.Intn(12); {
		case op < 4 || len(liveNodes) < 2:
			nextNode++
			liveNodes = append(liveNodes, nextNode)
			events = append(events, graph.Event{Type: graph.AddNode, At: now, Node: nextNode})
		case op < 8:
			nextEdge++
			u := liveNodes[rng.Intn(len(liveNodes))]
			v := liveNodes[rng.Intn(len(liveNodes))]
			liveEdges = append(liveEdges, nextEdge)
			edgeInfo[nextEdge] = graph.EdgeInfo{From: u, To: v}
			events = append(events, graph.Event{Type: graph.AddEdge, At: now, Edge: nextEdge, Node: u, Node2: v})
		case op < 10:
			nd := liveNodes[rng.Intn(len(liveNodes))]
			an := attrNames[rng.Intn(len(attrNames))]
			old, had := attrs[nd][an]
			newv := fmt.Sprintf("v%d", rng.Intn(5))
			events = append(events, graph.Event{Type: graph.SetNodeAttr, At: now, Node: nd, Attr: an, Old: old, HadOld: had, New: newv, HasNew: true})
			if attrs[nd] == nil {
				attrs[nd] = map[string]string{}
			}
			attrs[nd][an] = newv
		case op < 11 && len(liveEdges) > 0:
			i := rng.Intn(len(liveEdges))
			e := liveEdges[i]
			info := edgeInfo[e]
			liveEdges = append(liveEdges[:i], liveEdges[i+1:]...)
			events = append(events, graph.Event{Type: graph.DelEdge, At: now, Edge: e, Node: info.From, Node2: info.To})
		default:
			u := liveNodes[rng.Intn(len(liveNodes))]
			v := liveNodes[rng.Intn(len(liveNodes))]
			events = append(events, graph.Event{Type: graph.TransientEdge, At: now, Edge: graph.EdgeID(1<<40) + graph.EdgeID(len(events)), Node: u, Node2: v})
		}
	}
	return events
}

var allAttrs = graph.MustParseAttrOptions("+node:all+edge:all")

// checkAgainstReference compares index retrieval against naive replay at
// many probe times.
func checkAgainstReference(t *testing.T, dg *DeltaGraph, events graph.EventList, opts graph.AttrOptions, probes []graph.Time) {
	t.Helper()
	for _, q := range probes {
		want := opts.FilterSnapshot(graph.SnapshotAt(events, q))
		got, err := dg.GetSnapshot(q, opts)
		if err != nil {
			t.Fatalf("GetSnapshot(%d): %v", q, err)
		}
		if !got.Equal(want) {
			t.Fatalf("snapshot at %d differs from reference: got %d nodes/%d edges, want %d/%d",
				q, len(got.Nodes), len(got.Edges), len(want.Nodes), len(want.Edges))
		}
	}
}

func probeTimes(events graph.EventList, n int) []graph.Time {
	_, last := events.Span()
	probes := make([]graph.Time, 0, n+2)
	for i := 0; i <= n; i++ {
		probes = append(probes, graph.Time(int64(last)*int64(i)/int64(n)))
	}
	probes = append(probes, last+100) // beyond the end: current graph
	return probes
}

func TestBuildAndRetrieveMatchesReference(t *testing.T) {
	events := makeTrace(1, 3000)
	for _, fn := range []delta.Differential{
		delta.Intersection{}, delta.Union{}, delta.Balanced(),
		delta.Mixed{R1: 0.9, R2: 0.9}, delta.Empty{},
	} {
		fn := fn
		t.Run(fn.Name(), func(t *testing.T) {
			dg, err := Build(events, Options{LeafSize: 200, Arity: 3, Function: fn})
			if err != nil {
				t.Fatal(err)
			}
			if err := dg.validateInvariant(); err != nil {
				t.Fatal(err)
			}
			checkAgainstReference(t, dg, events, allAttrs, probeTimes(events, 17))
		})
	}
}

func TestRetrieveStructureOnly(t *testing.T) {
	events := makeTrace(2, 2000)
	dg, err := Build(events, Options{LeafSize: 150, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, dg, events, graph.AttrOptions{}, probeTimes(events, 9))
}

func TestRetrieveNamedAttr(t *testing.T) {
	events := makeTrace(3, 2000)
	dg, err := Build(events, Options{LeafSize: 150, Arity: 4})
	if err != nil {
		t.Fatal(err)
	}
	opts := graph.MustParseAttrOptions("+node:name")
	checkAgainstReference(t, dg, events, opts, probeTimes(events, 9))
}

func TestArityAndLeafSizeVariants(t *testing.T) {
	events := makeTrace(4, 2500)
	for _, k := range []int{2, 4, 8} {
		for _, L := range []int{100, 500} {
			dg, err := Build(events, Options{LeafSize: L, Arity: k})
			if err != nil {
				t.Fatalf("k=%d L=%d: %v", k, L, err)
			}
			checkAgainstReference(t, dg, events, allAttrs, probeTimes(events, 7))
		}
	}
}

func TestPartitionedRetrieval(t *testing.T) {
	events := makeTrace(5, 2500)
	dg, err := Build(events, Options{LeafSize: 200, Arity: 3, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, dg, events, allAttrs, probeTimes(events, 9))
}

func TestPartitionedRequiresPartitionedStore(t *testing.T) {
	if _, err := New(Options{Partitions: 3, Store: kvstore.NewMemStore()}); err == nil {
		t.Error("plain store accepted for partitioned index")
	}
	if _, err := New(Options{Partitions: 5, Store: kvstore.NewMemPartitioned(2)}); err == nil {
		t.Error("too few partitions accepted")
	}
}

func TestLiveAppendsInterleavedWithQueries(t *testing.T) {
	events := makeTrace(6, 3000)
	dg, err := New(Options{LeafSize: 150, Arity: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Append in chunks, querying as we go.
	chunk := 400
	for lo := 0; lo < len(events); lo += chunk {
		hi := lo + chunk
		if hi > len(events) {
			hi = len(events)
		}
		if err := dg.AppendAll(events[lo:hi]); err != nil {
			t.Fatal(err)
		}
		probe := events[(lo+hi)/2].At
		want := graph.SnapshotAt(events[:hi], probe)
		got, err := dg.GetSnapshot(probe, allAttrs)
		if err != nil {
			t.Fatalf("after %d events, query %d: %v", hi, probe, err)
		}
		if !got.Equal(want) {
			t.Fatalf("after %d events, snapshot at %d differs", hi, probe)
		}
	}
	checkAgainstReference(t, dg, events, allAttrs, probeTimes(events, 11))
	if err := dg.validateInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	dg, _ := New(Options{})
	if err := dg.Append(graph.Event{Type: graph.AddNode, At: 10, Node: 1}); err != nil {
		t.Fatal(err)
	}
	if err := dg.Append(graph.Event{Type: graph.AddNode, At: 5, Node: 2}); err == nil {
		t.Error("out-of-order event accepted")
	}
}

func TestMultipointMatchesSinglepoint(t *testing.T) {
	events := makeTrace(7, 3000)
	dg, err := Build(events, Options{LeafSize: 200, Arity: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, last := events.Span()
	var ts []graph.Time
	for i := 1; i <= 6; i++ {
		ts = append(ts, last*graph.Time(i)/7)
	}
	// Shuffle to verify order preservation.
	ts[0], ts[3] = ts[3], ts[0]
	multi, err := dg.GetSnapshots(ts, allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range ts {
		single, err := dg.GetSnapshot(q, allAttrs)
		if err != nil {
			t.Fatal(err)
		}
		if !multi[i].Equal(single) {
			t.Errorf("multipoint[%d] (t=%d) differs from singlepoint", i, q)
		}
	}
	// Duplicates and empty input.
	dup, err := dg.GetSnapshots([]graph.Time{ts[0], ts[0]}, allAttrs)
	if err != nil || !dup[0].Equal(dup[1]) {
		t.Error("duplicate timepoints mishandled")
	}
	if out, err := dg.GetSnapshots(nil, allAttrs); err != nil || out != nil {
		t.Error("empty multipoint mishandled")
	}
}

func TestMaterializationCorrectAndFaster(t *testing.T) {
	events := makeTrace(8, 4000)
	dg, err := Build(events, Options{LeafSize: 200, Arity: 2, Function: delta.Intersection{}})
	if err != nil {
		t.Fatal(err)
	}
	_, last := events.Span()
	q := last * 3 / 4
	costBefore, err := dg.PlanCost(q, allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := dg.GetSnapshot(q, allAttrs)

	if err := dg.MaterializeLevel("root"); err != nil {
		t.Fatal(err)
	}
	costAfter, err := dg.PlanCost(q, allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if costAfter > costBefore {
		t.Errorf("materialization increased plan cost: %d -> %d", costBefore, costAfter)
	}
	got, err := dg.GetSnapshot(q, allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("materialized retrieval differs")
	}
	// Deeper materialization reduces cost further (or stays equal).
	if err := dg.MaterializeLevel("grandchildren"); err != nil {
		t.Fatal(err)
	}
	costDeep, _ := dg.PlanCost(q, allAttrs)
	if costDeep > costAfter {
		t.Errorf("deeper materialization increased cost: %d -> %d", costAfter, costDeep)
	}
	got, _ = dg.GetSnapshot(q, allAttrs)
	if !got.Equal(want) {
		t.Error("deep materialized retrieval differs")
	}

	// Unmaterialize restores the old behavior.
	for _, ref := range dg.MaterializedNodes() {
		if err := dg.Unmaterialize(ref); err != nil {
			t.Fatal(err)
		}
	}
	costRestored, _ := dg.PlanCost(q, allAttrs)
	if costRestored != costBefore {
		t.Errorf("cost after unmaterialize = %d, want %d", costRestored, costBefore)
	}
}

func TestTotalMaterialization(t *testing.T) {
	events := makeTrace(9, 2000)
	dg, err := Build(events, Options{LeafSize: 200, Arity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := dg.MaterializeLevel("leaves"); err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, dg, events, allAttrs, probeTimes(events, 9))
	// Every leaf query should now be nearly free.
	lt := dg.LeafTimes()
	cost, err := dg.PlanCost(lt[len(lt)/2], allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("leaf plan cost with total materialization = %d, want 0", cost)
	}
}

func TestRetrieveIntoPoolWithDependency(t *testing.T) {
	events := makeTrace(10, 3000)
	pool := graphpool.New()
	dg, err := Build(events, Options{LeafSize: 200, Arity: 2, Pool: pool, DependentMaxRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := dg.MaterializeLevel("root"); err != nil {
		t.Fatal(err)
	}
	_, last := events.Span()
	for i := 1; i <= 5; i++ {
		q := last * graph.Time(i) / 6
		id, err := dg.Retrieve(q, allAttrs)
		if err != nil {
			t.Fatal(err)
		}
		v, err := pool.View(id)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.SnapshotAt(events, q)
		if !v.Snapshot().Equal(want) {
			t.Fatalf("pool view at %d differs from reference", q)
		}
	}
	// At least one retrieval should have used the dependent-overlay path
	// (the mapping table shows a dependency).
	dependent := false
	for _, row := range pool.MappingTable() {
		if row.Kind == graphpool.KindHistorical && row.Dep != graphpool.NoDependency {
			dependent = true
		}
	}
	if !dependent {
		t.Log("note: no dependent overlay occurred (plan never started at a materialized base)")
	}
}

func TestRetrieveManyIntoPool(t *testing.T) {
	events := makeTrace(11, 2000)
	pool := graphpool.New()
	dg, err := Build(events, Options{LeafSize: 150, Arity: 3, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	_, last := events.Span()
	ts := []graph.Time{last / 4, last / 2, 3 * last / 4}
	ids, err := dg.RetrieveMany(ts, allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		v, err := pool.View(id)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Snapshot().Equal(graph.SnapshotAt(events, ts[i])) {
			t.Errorf("pool snapshot %d differs", i)
		}
	}
}

func TestIntervalQuery(t *testing.T) {
	events := makeTrace(12, 2500)
	dg, err := Build(events, Options{LeafSize: 150, Arity: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, last := events.Span()
	ts, te := last/4, 3*last/4
	res, err := dg.GetInterval(ts, te, allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: elements whose add events fall in [ts, te); transient
	// events in window.
	wantGraph := graph.NewSnapshot()
	var wantTrans int
	for _, ev := range events {
		if ev.At < ts || ev.At >= te {
			continue
		}
		switch ev.Type {
		case graph.TransientEdge, graph.TransientNode:
			wantTrans++
		case graph.AddNode, graph.AddEdge, graph.SetNodeAttr, graph.SetEdgeAttr:
			wantGraph.Apply(ev)
		}
	}
	if !res.Graph.Equal(wantGraph) {
		t.Error("interval graph differs from reference")
	}
	if len(res.Transients) != wantTrans {
		t.Errorf("transients = %d, want %d", len(res.Transients), wantTrans)
	}
	if _, err := dg.GetInterval(te, ts, allAttrs); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestTimeExpressionQuery(t *testing.T) {
	events := makeTrace(13, 2500)
	dg, err := Build(events, Options{LeafSize: 150, Arity: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, last := events.Span()
	t1, t2 := last/3, 2*last/3
	// Elements valid at t1 but not at t2.
	out, err := dg.GetExpression(TimeExpression{
		Times: []graph.Time{t1, t2},
		Expr:  And{Var(0), Not{E: Var(1)}},
	}, allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	s1 := graph.SnapshotAt(events, t1)
	s2 := graph.SnapshotAt(events, t2)
	for e := range out.Edges {
		if _, in1 := s1.Edges[e]; !in1 {
			t.Errorf("edge %d not valid at t1", e)
		}
		if _, in2 := s2.Edges[e]; in2 {
			t.Errorf("edge %d still valid at t2", e)
		}
	}
	// Count check: result edges == edges in s1 minus those surviving to s2.
	want := 0
	for e := range s1.Edges {
		if _, ok := s2.Edges[e]; !ok {
			want++
		}
	}
	if len(out.Edges) != want {
		t.Errorf("edges = %d, want %d", len(out.Edges), want)
	}
	// Or / Var behavior sanity.
	union, err := dg.GetExpression(TimeExpression{Times: []graph.Time{t1, t2}, Expr: Or{Var(0), Var(1)}}, allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(union.Nodes) < len(s1.Nodes) || len(union.Nodes) < len(s2.Nodes) {
		t.Error("union smaller than operands")
	}
	if _, err := dg.GetExpression(TimeExpression{}, allAttrs); err == nil {
		t.Error("empty expression accepted")
	}
}

func TestCheckpointAndOpen(t *testing.T) {
	events := makeTrace(14, 2500)
	store := kvstore.NewMemStore()
	dg, err := Build(events[:2000], Options{LeafSize: 150, Arity: 3, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := dg.MaterializeLevel("root"); err != nil {
		t.Fatal(err)
	}
	if err := dg.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, re, events[:2000], allAttrs, probeTimes(events[:2000], 9))
	// The reopened index must keep accepting appends.
	if err := re.AppendAll(events[2000:]); err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, re, events, allAttrs, probeTimes(events, 9))
	// Materialization must have been restored.
	if len(re.MaterializedNodes()) == 0 {
		t.Error("materialized nodes lost on reopen")
	}
}

func TestOpenMissingCheckpoint(t *testing.T) {
	if _, err := Open(Options{Store: kvstore.NewMemStore()}); err == nil {
		t.Error("Open on empty store succeeded")
	}
	if _, err := Open(Options{}); err == nil {
		t.Error("Open without store succeeded")
	}
}

func TestStats(t *testing.T) {
	events := makeTrace(15, 2000)
	dg, err := Build(events, Options{LeafSize: 100, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := dg.Stats()
	if st.Leaves < 10 {
		t.Errorf("leaves = %d", st.Leaves)
	}
	if st.Height < 2 {
		t.Errorf("height = %d", st.Height)
	}
	if st.DeltaEdges == 0 || st.EventlistEdges != st.Leaves {
		t.Errorf("edges: %d deltas, %d eventlists (leaves %d)", st.DeltaEdges, st.EventlistEdges, st.Leaves)
	}
	if st.DiskBytes <= 0 || st.EventlistBytes <= 0 {
		t.Error("byte accounting missing")
	}
	if len(st.DeltaBytesByLevel) == 0 {
		t.Error("no per-level delta stats")
	}
}

func TestQueryBeforeAnyData(t *testing.T) {
	dg, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := dg.GetSnapshot(100, allAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 0 {
		t.Error("empty index returned non-empty snapshot")
	}
}

func TestQueryAtTimeZeroAndEarly(t *testing.T) {
	events := makeTrace(16, 1500)
	dg, err := Build(events, Options{LeafSize: 100, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, _ := events.Span()
	for _, q := range []graph.Time{first - 1, first, first + 1} {
		want := graph.SnapshotAt(events, q)
		got, err := dg.GetSnapshot(q, allAttrs)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("early query at %d differs", q)
		}
	}
}
