package deltagraph

import (
	"encoding/json"
	"fmt"
	"math"

	"historygraph/internal/delta"
	"historygraph/internal/graph"
	"historygraph/internal/graphpool"
	"historygraph/internal/kvstore"
)

// Checkpoint/Open persist the in-memory DeltaGraph state — the skeleton,
// builder state (pending nodes, recent eventlist), and materialization set
// — into the same key-value store that holds the deltas, so an index can be
// closed and reopened for querying and further appends.

const (
	metaDeltaID   = math.MaxUint64
	metaComponent = kvstore.Component(250)
	// Version of the checkpoint layout.
	checkpointVersion = 1
)

type persistedNode struct {
	ID           int        `json:"id"`
	Level        int        `json:"level"`
	At           graph.Time `json:"at"`
	SpanEnd      graph.Time `json:"span_end,omitempty"`
	Size         int        `json:"size,omitempty"`
	Children     []int      `json:"children,omitempty"`
	Parent       int        `json:"parent"`
	Provisional  bool       `json:"provisional,omitempty"`
	Materialized bool       `json:"materialized,omitempty"`
}

type persistedEdge struct {
	Index   int     `json:"index"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	Kind    uint8   `json:"kind"`
	DeltaID uint64  `json:"delta_id"`
	Sizes   []int64 `json:"sizes"`
	Counts  int     `json:"counts"`
	EvIndex int     `json:"ev_index"`
}

type persistedSnapshot struct {
	Nodes     []graph.NodeID                     `json:"nodes"`
	Edges     map[graph.EdgeID]graph.EdgeInfo    `json:"edges"`
	NodeAttrs map[graph.NodeID]map[string]string `json:"node_attrs,omitempty"`
	EdgeAttrs map[graph.EdgeID]map[string]string `json:"edge_attrs,omitempty"`
}

func toPersistedSnapshot(s *graph.Snapshot) persistedSnapshot {
	p := persistedSnapshot{Edges: s.Edges, NodeAttrs: s.NodeAttrs, EdgeAttrs: s.EdgeAttrs}
	for n := range s.Nodes {
		p.Nodes = append(p.Nodes, n)
	}
	return p
}

func (p persistedSnapshot) snapshot() *graph.Snapshot {
	s := graph.NewSnapshot()
	for _, n := range p.Nodes {
		s.Nodes[n] = struct{}{}
	}
	for e, info := range p.Edges {
		s.Edges[e] = info
	}
	for n, attrs := range p.NodeAttrs {
		s.NodeAttrs[n] = attrs
	}
	for e, attrs := range p.EdgeAttrs {
		s.EdgeAttrs[e] = attrs
	}
	return s
}

type persistedChild struct {
	Node int               `json:"node"`
	Snap persistedSnapshot `json:"snap"`
	Aux  []AuxSnapshot     `json:"aux,omitempty"`
}

type persistedIndex struct {
	Version      int                `json:"version"`
	LeafSize     int                `json:"leaf_size"`
	Arity        int                `json:"arity"`
	Partitions   int                `json:"partitions"`
	Function     string             `json:"function"`
	NextDeltaID  uint64             `json:"next_delta_id"`
	LastTime     graph.Time         `json:"last_time"`
	SuperRoot    int                `json:"super_root"`
	Nodes        []persistedNode    `json:"nodes"`
	Edges        []persistedEdge    `json:"edges"`
	Leaves       []int              `json:"leaves"`
	Recent       []graph.Event      `json:"recent,omitempty"`
	Current      persistedSnapshot  `json:"current"`
	Pending      [][]persistedChild `json:"pending"`
	ProvNodes    []int              `json:"prov_nodes,omitempty"`
	ProvEdgeIdxs []int              `json:"prov_edge_idxs,omitempty"`
	ProvDeltaIDs []uint64           `json:"prov_delta_ids,omitempty"`
	AuxNames     []string           `json:"aux_names,omitempty"`
	AuxCur       []AuxSnapshot      `json:"aux_cur,omitempty"`
	AuxRecent    [][]AuxEvent       `json:"aux_recent,omitempty"`
}

// Checkpoint persists the index state into the store so Open can restore
// it. Call it after bulk construction or periodically during appends.
func (dg *DeltaGraph) Checkpoint() error {
	dg.mu.Lock()
	defer dg.mu.Unlock()
	pi := persistedIndex{
		Version:      checkpointVersion,
		LeafSize:     dg.opts.LeafSize,
		Arity:        dg.opts.Arity,
		Partitions:   dg.opts.Partitions,
		Function:     dg.opts.Function.Name(),
		NextDeltaID:  dg.nextDeltaID,
		LastTime:     dg.lastTime,
		SuperRoot:    dg.skel.superRoot,
		Leaves:       dg.skel.leaves,
		Recent:       dg.recent,
		Current:      toPersistedSnapshot(dg.current),
		ProvNodes:    dg.provNodes,
		ProvEdgeIdxs: dg.provEdgeIdxs,
		ProvDeltaIDs: dg.provDeltaIDs,
		AuxCur:       dg.auxCur,
		AuxRecent:    dg.auxRecent,
	}
	for _, a := range dg.auxes {
		pi.AuxNames = append(pi.AuxNames, a.Name())
	}
	for _, n := range dg.skel.nodes {
		if n == nil || n.level < 0 {
			continue
		}
		pi.Nodes = append(pi.Nodes, persistedNode{
			ID: n.id, Level: n.level, At: n.at, SpanEnd: n.spanEnd, Size: n.size,
			Children: n.children, Parent: n.parent, Provisional: n.provisional,
			Materialized: n.materialized,
		})
	}
	for i, e := range dg.skel.edges {
		if e == nil {
			continue
		}
		pi.Edges = append(pi.Edges, persistedEdge{
			Index: i, From: e.from, To: e.to, Kind: uint8(e.kind),
			DeltaID: e.deltaID, Sizes: e.sizes, Counts: e.counts, EvIndex: e.evIndex,
		})
	}
	for _, level := range dg.pending {
		row := make([]persistedChild, 0, len(level))
		for _, c := range level {
			row = append(row, persistedChild{Node: c.node, Snap: toPersistedSnapshot(c.snap), Aux: c.aux})
		}
		pi.Pending = append(pi.Pending, row)
	}
	buf, err := json.Marshal(pi)
	if err != nil {
		return err
	}
	if err := dg.store.Put(kvstore.EncodeKey(0, metaDeltaID, metaComponent), buf); err != nil {
		return err
	}
	return dg.store.Sync()
}

// Open restores a checkpointed index from the store. The options must
// supply the same aux index implementations (by name); Store is required;
// other option fields are taken from the checkpoint.
func Open(opts Options) (*DeltaGraph, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("deltagraph: Open requires a Store")
	}
	buf, err := opts.Store.Get(kvstore.EncodeKey(0, metaDeltaID, metaComponent))
	if err != nil {
		return nil, fmt.Errorf("deltagraph: no checkpoint found: %w", err)
	}
	var pi persistedIndex
	if err := json.Unmarshal(buf, &pi); err != nil {
		return nil, fmt.Errorf("deltagraph: corrupt checkpoint: %w", err)
	}
	if pi.Version != checkpointVersion {
		return nil, fmt.Errorf("deltagraph: unsupported checkpoint version %d", pi.Version)
	}
	if len(pi.AuxNames) != len(opts.AuxIndexes) {
		return nil, fmt.Errorf("deltagraph: checkpoint has %d aux indexes, options provide %d", len(pi.AuxNames), len(opts.AuxIndexes))
	}
	for i, name := range pi.AuxNames {
		if opts.AuxIndexes[i].Name() != name {
			return nil, fmt.Errorf("deltagraph: aux index %d is %q in checkpoint, %q in options", i, name, opts.AuxIndexes[i].Name())
		}
	}
	fn, err := delta.ByName(pi.Function)
	if err != nil {
		return nil, err
	}
	opts.LeafSize = pi.LeafSize
	opts.Arity = pi.Arity
	opts.Partitions = pi.Partitions
	opts.Function = fn
	if err := opts.fill(); err != nil {
		return nil, err
	}

	dg := &DeltaGraph{
		opts:         opts,
		skel:         newSkeleton(),
		store:        opts.Store,
		pool:         opts.Pool,
		current:      pi.Current.snapshot(),
		recent:       pi.Recent,
		lastTime:     pi.LastTime,
		nextDeltaID:  pi.NextDeltaID,
		matGraphs:    make(map[int]graphpool.GraphID),
		auxes:        opts.AuxIndexes,
		auxCur:       pi.AuxCur,
		auxRecent:    pi.AuxRecent,
		provNodes:    pi.ProvNodes,
		provEdgeIdxs: pi.ProvEdgeIdxs,
		provDeltaIDs: pi.ProvDeltaIDs,
	}
	if ps, ok := opts.Store.(*kvstore.Partitioned); ok && opts.Partitions > 1 {
		dg.pstore = ps
	}
	if dg.auxCur == nil {
		dg.auxCur = dg.emptyAux()
	}
	if dg.auxRecent == nil {
		dg.auxRecent = make([][]AuxEvent, len(dg.auxes))
	}

	// Rebuild the skeleton with original node IDs and edge indices.
	maxNode := 0
	for _, n := range pi.Nodes {
		if n.ID > maxNode {
			maxNode = n.ID
		}
	}
	dg.skel.nodes = make([]*skelNode, maxNode+1)
	dg.skel.out = make([][]int, maxNode+1)
	for i := range dg.skel.nodes {
		dg.skel.nodes[i] = &skelNode{id: i, level: -1} // tombstone by default
	}
	for _, n := range pi.Nodes {
		dg.skel.nodes[n.ID] = &skelNode{
			id: n.ID, level: n.Level, at: n.At, spanEnd: n.SpanEnd, size: n.Size,
			children: n.Children, parent: n.Parent, provisional: n.Provisional,
		}
	}
	maxEdge := 0
	for _, e := range pi.Edges {
		if e.Index > maxEdge {
			maxEdge = e.Index
		}
	}
	dg.skel.edges = make([]*skelEdge, maxEdge+1)
	for _, e := range pi.Edges {
		if e.Kind == uint8(kindMat) {
			continue // materialization edges are recreated below
		}
		se := &skelEdge{from: e.From, to: e.To, kind: edgeKind(e.Kind), deltaID: e.DeltaID, sizes: e.Sizes, counts: e.Counts, evIndex: e.EvIndex}
		dg.skel.edges[e.Index] = se
		dg.skel.out[e.From] = append(dg.skel.out[e.From], e.Index)
	}
	dg.skel.superRoot = pi.SuperRoot
	dg.skel.leaves = pi.Leaves

	// Restore builder pending state.
	for _, level := range pi.Pending {
		row := make([]pendingChild, 0, len(level))
		for _, c := range level {
			aux := c.Aux
			if aux == nil {
				aux = dg.emptyAux()
			}
			row = append(row, pendingChild{node: c.Node, snap: c.Snap.snapshot(), aux: aux})
		}
		dg.pending = append(dg.pending, row)
	}

	// Restore the empty anchor leaf and re-materialize pinned nodes.
	anchor := dg.skel.nodes[dg.skel.leaves[0]]
	anchor.materialized = true
	anchor.matSnapshot = graph.NewSnapshot()
	dg.skel.addEdge(&skelEdge{from: dg.skel.superRoot, to: anchor.id, kind: kindMat, sizes: make(componentSizes, 4+len(dg.auxes)), evIndex: -1})
	for _, n := range pi.Nodes {
		if n.Materialized && n.ID != anchor.id {
			if err := dg.materializeLocked(n.ID); err != nil {
				return nil, fmt.Errorf("deltagraph: re-materializing node %d: %w", n.ID, err)
			}
		}
	}
	// Mirror the current graph into the pool.
	if dg.pool != nil {
		dg.pool.LoadCurrent(dg.current)
	}
	return dg, nil
}
