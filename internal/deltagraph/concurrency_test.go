package deltagraph

import (
	"sync"
	"testing"

	"historygraph/internal/graph"
	"historygraph/internal/graphpool"
)

// Queries must be able to run concurrently with appends and with each
// other: the index takes the read lock for retrieval and the write lock
// for appends. Run with -race for full effect.
func TestConcurrentQueriesAndAppends(t *testing.T) {
	events := makeTrace(30, 4000)
	half := len(events) / 2
	pool := graphpool.New()
	dg, err := Build(events[:half], Options{LeafSize: 150, Arity: 3, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	firstHalfLast := events[half-1].At

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writer: appends the second half.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, ev := range events[half:] {
			if err := dg.Append(ev); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers: snapshot queries over the stable first half, checked
	// against the reference; plus multipoint and aux-free plan costs.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := firstHalfLast * graph.Time(i%10+1) / 11
				got, err := dg.GetSnapshot(q, allAttrs)
				if err != nil {
					errs <- err
					return
				}
				want := graph.SnapshotAt(events, q)
				if !got.Equal(want) {
					errs <- errMismatch(q)
					return
				}
				if r == 0 {
					if _, err := dg.GetSnapshots([]graph.Time{q, q / 2}, allAttrs); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}
	// A retriever into the pool, releasing as it goes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			id, err := dg.Retrieve(firstHalfLast/2, allAttrs)
			if err != nil {
				errs <- err
				return
			}
			if err := pool.Release(id); err != nil {
				errs <- err
				return
			}
			pool.CleanNow()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After the dust settles the whole trace must be queryable.
	checkAgainstReference(t, dg, events, allAttrs, probeTimes(events, 7))
}

type errMismatch graph.Time

func (e errMismatch) Error() string { return "snapshot mismatch under concurrency" }
