package deltagraph

import (
	"container/heap"
	"math"

	"historygraph/internal/graph"
)

// The DeltaGraph skeleton is the in-memory weighted graph over index nodes
// (Section 3.2.2): it records the structure and per-component delta sizes
// but none of the delta payloads, and is what the query planner searches.

// edgeKind classifies skeleton edges.
type edgeKind uint8

const (
	// kindDelta is a directed parent→child edge carrying a delta.
	kindDelta edgeKind = iota
	// kindEventFwd applies leaf-eventlist i forward: leaf i → leaf i+1.
	kindEventFwd
	// kindEventBwd applies leaf-eventlist i backward: leaf i+1 → leaf i.
	kindEventBwd
	// kindMat is a zero-weight super-root → materialized-node edge.
	kindMat
)

// componentSizes holds encoded byte sizes per stored component:
// [0]=struct, [1]=nodeattr, [2]=edgeattr, [3]=transient, then one entry per
// registered aux index.
type componentSizes []int64

// skelNode is one DeltaGraph node: a leaf (implicit snapshot), an interior
// node, or the super-root.
type skelNode struct {
	id    int
	level int // 0 = leaf, increasing upward; superRoot has the top level + 1
	// at is the snapshot timepoint for leaves (the time of the last event
	// the leaf includes); interior nodes keep the span covered.
	at          graph.Time
	spanEnd     graph.Time
	size        int // element count of the node's graph at build time
	children    []int
	parent      int // -1 if none (pending or super-root)
	provisional bool
	// Materialization state (Section 4.5).
	materialized bool
	matSnapshot  *graph.Snapshot
}

// skelEdge is one skeleton edge with its delta/eventlist identity and
// per-component sizes.
type skelEdge struct {
	from, to int
	kind     edgeKind
	deltaID  uint64 // storage id of the delta or eventlist payload
	sizes    componentSizes
	counts   int // total record/event count (plan statistics)
	// evIndex is the eventlist ordinal for eventlist edges (-1 otherwise).
	evIndex int
}

type skeleton struct {
	nodes     []*skelNode
	edges     []*skelEdge
	out       [][]int // node id -> indices into edges
	superRoot int
	leaves    []int // leaf node ids in chronological order
}

func newSkeleton() *skeleton {
	s := &skeleton{superRoot: -1}
	return s
}

func (s *skeleton) addNode(n *skelNode) int {
	n.id = len(s.nodes)
	n.parent = -1
	s.nodes = append(s.nodes, n)
	s.out = append(s.out, nil)
	return n.id
}

func (s *skeleton) addEdge(e *skelEdge) int {
	idx := len(s.edges)
	s.edges = append(s.edges, e)
	s.out[e.from] = append(s.out[e.from], idx)
	return idx
}

// removeEdges drops the given edge indices (used when provisional spine
// nodes are rebuilt). Indices must be valid; the edge slots are tombstoned.
func (s *skeleton) removeEdge(idx int) {
	e := s.edges[idx]
	if e == nil {
		return
	}
	list := s.out[e.from]
	for i, x := range list {
		if x == idx {
			s.out[e.from] = append(list[:i], list[i+1:]...)
			break
		}
	}
	s.edges[idx] = nil
}

// leafTimes returns the snapshot timepoint of every leaf in order.
func (s *skeleton) leafTimes() []graph.Time {
	ts := make([]graph.Time, len(s.leaves))
	for i, id := range s.leaves {
		ts[i] = s.nodes[id].at
	}
	return ts
}

// locate returns the index i of the last leaf with time <= t, or -1 when t
// precedes the first leaf (impossible in practice: leaf 0 is the empty
// graph before any event).
func (s *skeleton) locate(t graph.Time) int {
	lo, hi := 0, len(s.leaves)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.nodes[s.leaves[mid]].at <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// weightSelector maps an edge to its planning weight for a given query.
type weightSelector struct {
	wantStruct    bool
	wantNodeAttr  bool
	wantEdgeAttr  bool
	wantTransient bool
	auxComponents []int // indices (4+i) of aux components to fetch
	// perFetchCost models the fixed cost of one key-value store read
	// ("a more realistic cost model where using a higher number of
	// queries to fetch the same amount of information takes more time",
	// Section 5.4).
	perFetchCost int64
	// skipMat excludes materialization shortcuts (aux queries: pinned
	// snapshots hold graph content only).
	skipMat bool
	// noBackward excludes backward eventlist hops (aux events carry no
	// old values, so they are forward-only).
	noBackward bool
}

func selectorFor(opts graph.AttrOptions, aux []int) weightSelector {
	return weightSelector{
		wantStruct:    true,
		wantNodeAttr:  opts.AnyNodeAttrs(),
		wantEdgeAttr:  opts.AnyEdgeAttrs(),
		auxComponents: aux,
		perFetchCost:  64,
	}
}

func (w weightSelector) weight(e *skelEdge) int64 {
	if e.kind == kindMat {
		return 0
	}
	total := w.perFetchCost
	if w.wantStruct {
		total += e.sizes[0]
	}
	if w.wantNodeAttr {
		total += e.sizes[1]
	}
	if w.wantEdgeAttr {
		total += e.sizes[2]
	}
	if w.wantTransient && len(e.sizes) > 3 {
		total += e.sizes[3]
	}
	for _, c := range w.auxComponents {
		if c < len(e.sizes) {
			total += e.sizes[c]
		}
	}
	return total
}

// planHop is one step of a retrieval plan.
type planHop struct {
	edge *skelEdge
	// For the final partial eventlist hop:
	partial  bool
	upToTime graph.Time // forward: apply events with At <= upToTime
	fromTime graph.Time // backward: un-apply events with At > fromTime
	fraction float64    // estimated fraction of the eventlist processed
}

// dijkstraItem is a priority-queue entry.
type dijkstraItem struct {
	node int
	dist int64
}

type dijkstraPQ []dijkstraItem

func (p dijkstraPQ) Len() int            { return len(p) }
func (p dijkstraPQ) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p dijkstraPQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *dijkstraPQ) Push(x interface{}) { *p = append(*p, x.(dijkstraItem)) }
func (p *dijkstraPQ) Pop() interface{} {
	old := *p
	n := len(old)
	item := old[n-1]
	*p = old[:n-1]
	return item
}

// shortestPaths runs Dijkstra from src over the skeleton with the given
// weights. It returns dist and predecessor-edge-index arrays.
func (s *skeleton) shortestPaths(src int, w weightSelector) ([]int64, []int) {
	dist := make([]int64, len(s.nodes))
	prev := make([]int, len(s.nodes))
	for i := range dist {
		dist[i] = math.MaxInt64
		prev[i] = -1
	}
	dist[src] = 0
	pq := dijkstraPQ{{node: src}}
	heap.Init(&pq)
	for pq.Len() > 0 {
		item := heap.Pop(&pq).(dijkstraItem)
		if item.dist > dist[item.node] {
			continue
		}
		for _, ei := range s.out[item.node] {
			e := s.edges[ei]
			if e == nil {
				continue
			}
			if (w.skipMat && e.kind == kindMat) || (w.noBackward && e.kind == kindEventBwd) {
				continue
			}
			nd := item.dist + w.weight(e)
			if nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = ei
				heap.Push(&pq, dijkstraItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, prev
}

// pathTo reconstructs the hop sequence from src to dst using predecessor
// edges; returns nil when unreachable.
func (s *skeleton) pathTo(dst int, prev []int) []planHop {
	var rev []planHop
	for at := dst; prev[at] != -1; {
		e := s.edges[prev[at]]
		rev = append(rev, planHop{edge: e})
		at = e.from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
