package deltagraph

import (
	"strconv"
	"testing"

	"historygraph/internal/graph"
)

// degreeAux is a toy auxiliary index: it maintains the degree of every node
// as string key-value pairs ("deg:<id>" -> degree). It exercises the whole
// extensibility pipeline: aux events per plain event, aux eventlists, aux
// deltas on hierarchy edges, and point retrieval.
type degreeAux struct{}

func (degreeAux) Name() string { return "degree" }

func (degreeAux) CreateAuxEvents(ev graph.Event, before *graph.Snapshot, aux AuxSnapshot) []AuxEvent {
	bump := func(n graph.NodeID, delta int) AuxEvent {
		key := "deg:" + strconv.FormatInt(int64(n), 10)
		cur, _ := strconv.Atoi(aux[key])
		next := cur + delta
		if next == 0 {
			return AuxEvent{At: ev.At, Op: AuxDel, Key: key}
		}
		return AuxEvent{At: ev.At, Op: AuxSet, Key: key, Val: strconv.Itoa(next)}
	}
	switch ev.Type {
	case graph.AddEdge:
		if ev.Node == ev.Node2 {
			return []AuxEvent{bump(ev.Node, 2)}
		}
		out := []AuxEvent{bump(ev.Node, 1)}
		// Apply the first bump to a copy so the second sees it (keys
		// differ here, but keep the pattern correct).
		tmp := aux.clone()
		tmp.apply(out[0])
		key2 := "deg:" + strconv.FormatInt(int64(ev.Node2), 10)
		cur, _ := strconv.Atoi(tmp[key2])
		out = append(out, AuxEvent{At: ev.At, Op: AuxSet, Key: key2, Val: strconv.Itoa(cur + 1)})
		return out
	case graph.DelEdge:
		if ev.Node == ev.Node2 {
			return []AuxEvent{bump(ev.Node, -2)}
		}
		out := []AuxEvent{bump(ev.Node, -1)}
		tmp := aux.clone()
		tmp.apply(out[0])
		key2 := "deg:" + strconv.FormatInt(int64(ev.Node2), 10)
		cur, _ := strconv.Atoi(tmp[key2])
		if cur-1 == 0 {
			out = append(out, AuxEvent{At: ev.At, Op: AuxDel, Key: key2})
		} else {
			out = append(out, AuxEvent{At: ev.At, Op: AuxSet, Key: key2, Val: strconv.Itoa(cur - 1)})
		}
		return out
	}
	return nil
}

// AuxDF keeps entries present in all children with equal values
// (intersection semantics, like the paper's path index).
func (degreeAux) AuxDF(children []AuxSnapshot) AuxSnapshot {
	if len(children) == 0 {
		return AuxSnapshot{}
	}
	out := children[0].clone()
	for _, c := range children[1:] {
		for k, v := range out {
			if cv, ok := c[k]; !ok || cv != v {
				delete(out, k)
			}
		}
	}
	return out
}

// refAux replays the trace through the aux index to get the reference aux
// snapshot at time t.
func refAux(events graph.EventList, t graph.Time) AuxSnapshot {
	s := graph.NewSnapshot()
	aux := AuxSnapshot{}
	idx := degreeAux{}
	for _, ev := range events {
		if ev.At > t {
			break
		}
		for _, ae := range idx.CreateAuxEvents(ev, s, aux) {
			aux.apply(ae)
		}
		s.Apply(ev)
	}
	return aux
}

func auxEqual(a, b AuxSnapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestAuxIndexRetrieval(t *testing.T) {
	events := makeTrace(20, 2500)
	dg, err := Build(events, Options{LeafSize: 150, Arity: 3, AuxIndexes: []AuxIndex{degreeAux{}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := dg.AuxIndexNames(); len(got) != 1 || got[0] != "degree" {
		t.Fatalf("AuxIndexNames = %v", got)
	}
	_, last := events.Span()
	for i := 0; i <= 10; i++ {
		q := last * graph.Time(i) / 10
		got, err := dg.GetAuxSnapshot("degree", q)
		if err != nil {
			t.Fatalf("GetAuxSnapshot(%d): %v", q, err)
		}
		want := refAux(events, q)
		if !auxEqual(got, want) {
			t.Fatalf("aux snapshot at %d differs: got %d entries, want %d", q, len(got), len(want))
		}
	}
	// Beyond the last event: equals the current aux state.
	got, err := dg.GetAuxSnapshot("degree", last+50)
	if err != nil {
		t.Fatal(err)
	}
	if !auxEqual(got, refAux(events, last)) {
		t.Error("aux tail query differs")
	}
	if _, err := dg.GetAuxSnapshot("nope", 1); err == nil {
		t.Error("unknown aux index accepted")
	}
}

func TestAuxIndexSurvivesCheckpoint(t *testing.T) {
	events := makeTrace(21, 1200)
	dg, err := Build(events, Options{LeafSize: 100, Arity: 2, AuxIndexes: []AuxIndex{degreeAux{}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Store: dg.Store(), AuxIndexes: []AuxIndex{degreeAux{}}})
	if err != nil {
		t.Fatal(err)
	}
	_, last := events.Span()
	got, err := re.GetAuxSnapshot("degree", last/2)
	if err != nil {
		t.Fatal(err)
	}
	if !auxEqual(got, refAux(events, last/2)) {
		t.Error("aux snapshot differs after reopen")
	}
	// Mismatched aux registration must be rejected.
	if _, err := Open(Options{Store: dg.Store()}); err == nil {
		t.Error("Open without aux indexes accepted")
	}
}

func TestAuxCodecRoundTrip(t *testing.T) {
	d := auxDelta{
		set:  []kvPair{{"a", "1"}, {"b\x00c", "v\xff"}},
		dels: []string{"x", "y"},
	}
	got, err := decodeAuxDelta(encodeAuxDelta(d))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.set) != 2 || len(got.dels) != 2 || got.set[1].v != "v\xff" {
		t.Errorf("aux delta round trip: %+v", got)
	}
	evs := []AuxEvent{
		{At: 5, Op: AuxSet, Key: "k", Val: "v"},
		{At: 9, Op: AuxDel, Key: "k"},
	}
	gotEvs, err := decodeAuxEvents(encodeAuxEvents(evs))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotEvs) != 2 || gotEvs[0] != evs[0] || gotEvs[1] != evs[1] {
		t.Errorf("aux events round trip: %+v", gotEvs)
	}
	if _, err := decodeAuxDelta([]byte{0x99}); err == nil {
		t.Error("bad aux delta tag accepted")
	}
	if _, err := decodeAuxEvents(nil); err == nil {
		t.Error("empty aux events accepted")
	}
}

func TestComputeAuxDelta(t *testing.T) {
	src := AuxSnapshot{"a": "1", "b": "2", "c": "3"}
	tgt := AuxSnapshot{"a": "1", "b": "9", "d": "4"}
	d := computeAuxDelta(tgt, src)
	got := src.clone()
	d.apply(got)
	if !auxEqual(got, tgt) {
		t.Errorf("aux delta apply: %v", got)
	}
	if !computeAuxDelta(tgt, tgt).empty() {
		t.Error("self delta not empty")
	}
}
