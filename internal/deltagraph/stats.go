package deltagraph

// IndexStats summarizes the index shape and cost; the experiment harness
// and the analytical-model tests consume it.
type IndexStats struct {
	// Leaves is the number of real leaves (excluding the empty anchor).
	Leaves int
	// InteriorNodes counts permanent + provisional interior nodes.
	InteriorNodes int
	// Height is the number of levels above the leaves (root inclusive).
	Height int
	// DeltaEdges and EventlistEdges count skeleton edges by kind.
	DeltaEdges     int
	EventlistEdges int
	// DiskBytes is the backing store footprint.
	DiskBytes int64
	// DeltaBytesByLevel sums delta byte sizes by the level of the edge's
	// source node (level 1 = parents of leaves); the Section 5.3 models
	// predict these.
	DeltaBytesByLevel map[int]int64
	// DeltaRecordsByLevel sums delta record counts likewise.
	DeltaRecordsByLevel map[int]int
	// EventlistBytes sums all leaf-eventlist payload sizes.
	EventlistBytes int64
	// RootSize is the element count of the root's graph (0 if no root).
	RootSize int
	// RecentEvents is the size of the unflushed tail.
	RecentEvents int
	// PlanExecutions counts query plans executed since the index was
	// opened — every singlepoint or multipoint retrieval that actually
	// walked the skeleton (cache hits at the serving layer skip it).
	PlanExecutions int64
}

// Stats computes current index statistics.
func (dg *DeltaGraph) Stats() IndexStats {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	st := IndexStats{
		Leaves:              len(dg.skel.leaves) - 1,
		DiskBytes:           dg.store.SizeOnDisk(),
		DeltaBytesByLevel:   make(map[int]int64),
		DeltaRecordsByLevel: make(map[int]int),
		RecentEvents:        len(dg.recent),
		PlanExecutions:      dg.planExecs.Load(),
	}
	height := 0
	for _, n := range dg.skel.nodes {
		if n == nil || n.level <= 0 || n.level == int(^uint32(0)>>1) {
			continue
		}
		if n.level < 1<<20 { // exclude the super-root sentinel level
			st.InteriorNodes++
			if n.level > height {
				height = n.level
			}
		}
	}
	st.Height = height
	for _, e := range dg.skel.edges {
		if e == nil {
			continue
		}
		switch e.kind {
		case kindDelta:
			st.DeltaEdges++
			var total int64
			for _, s := range e.sizes {
				total += s
			}
			lvl := dg.skel.nodes[e.from].level
			if lvl > 1<<20 {
				lvl = height + 1 // super-root edge
			}
			st.DeltaBytesByLevel[lvl] += total
			st.DeltaRecordsByLevel[lvl] += e.counts
		case kindEventFwd:
			st.EventlistEdges++
			for _, s := range e.sizes {
				st.EventlistBytes += s
			}
		}
	}
	if root := dg.rootLocked(); root >= 0 {
		st.RootSize = dg.skel.nodes[root].size
	}
	return st
}
