package deltagraph

import (
	"fmt"
	"math"
	"sync"

	"historygraph/internal/delta"
	"historygraph/internal/graph"
	"historygraph/internal/kvstore"
)

// This file contains the index-construction machinery: leaf cuts, interior
// node creation (Section 4.6's single-pass bottom-up bulkload), and the
// provisional "right spine" that keeps the index connected and queryable
// between full arity-k groups.

// cutLeafLocked turns the recent eventlist into a new leaf: it creates the
// leaf skeleton node, persists the leaf-eventlist on the edge to the
// previous leaf, and bubbles complete arity-k groups upward.
func (dg *DeltaGraph) cutLeafLocked() error {
	if len(dg.recent) == 0 {
		return nil
	}
	leaf := dg.skel.addNode(&skelNode{level: 0, at: dg.lastTime, size: dg.current.Size()})
	prevLeaf := dg.skel.leaves[len(dg.skel.leaves)-1]
	dg.skel.leaves = append(dg.skel.leaves, leaf)

	evIndex := len(dg.skel.leaves) - 2 // eventlist ordinal between prevLeaf and leaf
	deltaID, sizes, count, err := dg.storeEvents(dg.recent, dg.auxRecent)
	if err != nil {
		return err
	}
	dg.skel.addEdge(&skelEdge{from: prevLeaf, to: leaf, kind: kindEventFwd, deltaID: deltaID, sizes: sizes, counts: count, evIndex: evIndex})
	dg.skel.addEdge(&skelEdge{from: leaf, to: prevLeaf, kind: kindEventBwd, deltaID: deltaID, sizes: sizes, counts: count, evIndex: evIndex})

	// Retain the leaf content for parent construction.
	auxCopies := make([]AuxSnapshot, len(dg.auxCur))
	for i, a := range dg.auxCur {
		auxCopies[i] = a.clone()
	}
	dg.pending[0] = append(dg.pending[0], pendingChild{node: leaf, snap: dg.current.Clone(), aux: auxCopies})
	dg.recent = nil
	dg.auxRecent = make([][]AuxEvent, len(dg.auxes))
	if dg.pool != nil {
		dg.pool.ClearRecent() // deleted elements are now on disk
	}
	if err := dg.promoteLocked(0, false); err != nil {
		return err
	}
	if !dg.batchMode {
		return dg.rebuildSpineLocked()
	}
	return nil
}

// promoteLocked creates a permanent parent whenever a level has a full
// arity-k group, recursively upward.
func (dg *DeltaGraph) promoteLocked(level int, provisional bool) error {
	for len(dg.pending) <= level+1 {
		dg.pending = append(dg.pending, nil)
	}
	for len(dg.pending[level]) >= dg.opts.Arity {
		group := dg.pending[level][:dg.opts.Arity]
		parent, err := dg.makeParentLocked(level, group, provisional)
		if err != nil {
			return err
		}
		dg.pending[level] = dg.pending[level][dg.opts.Arity:]
		dg.pending[level+1] = append(dg.pending[level+1], parent)
		level++
		for len(dg.pending) <= level+1 {
			dg.pending = append(dg.pending, nil)
		}
	}
	return nil
}

// makeParentLocked builds one interior node: parent graph = f(children),
// with one delta edge to each child (Section 4.2).
func (dg *DeltaGraph) makeParentLocked(level int, group []pendingChild, provisional bool) (pendingChild, error) {
	snaps := make([]*graph.Snapshot, len(group))
	for i, c := range group {
		snaps[i] = c.snap
	}
	parentSnap := dg.opts.Function.Combine(snaps)
	parentAux := make([]AuxSnapshot, len(dg.auxes))
	for i, aux := range dg.auxes {
		children := make([]AuxSnapshot, len(group))
		for j, c := range group {
			children[j] = c.aux[i]
		}
		parentAux[i] = aux.AuxDF(children)
	}

	first := dg.skel.nodes[group[0].node]
	last := dg.skel.nodes[group[len(group)-1].node]
	node := &skelNode{
		level:       level + 1,
		at:          first.at,
		spanEnd:     last.spanEnd,
		size:        parentSnap.Size(),
		provisional: provisional,
	}
	if last.spanEnd == 0 {
		node.spanEnd = last.at
	}
	parentID := dg.skel.addNode(node)
	if provisional {
		dg.provNodes = append(dg.provNodes, parentID)
	}
	for _, c := range group {
		d := delta.Compute(c.snap, parentSnap)
		auxDeltas := make([]auxDelta, len(dg.auxes))
		for i := range dg.auxes {
			auxDeltas[i] = computeAuxDelta(c.aux[i], parentAux[i])
		}
		deltaID, sizes, count, err := dg.storeDelta(d, auxDeltas)
		if err != nil {
			return pendingChild{}, err
		}
		idx := dg.skel.addEdge(&skelEdge{from: parentID, to: c.node, kind: kindDelta, deltaID: deltaID, sizes: sizes, counts: count, evIndex: -1})
		dg.skel.nodes[c.node].parent = parentID
		node.children = append(node.children, c.node)
		if provisional {
			dg.provEdgeIdxs = append(dg.provEdgeIdxs, idx)
			dg.provDeltaIDs = append(dg.provDeltaIDs, deltaID)
		}
	}
	return pendingChild{node: parentID, snap: parentSnap, aux: parentAux}, nil
}

// rebuildSpineLocked removes any previous provisional spine and builds a
// fresh one so that every leaf is reachable from the super-root: pending
// nodes at each level (at most k-1, plus one carried provisional parent)
// are combined into provisional parents up to a single root, and the
// super-root → root delta is written.
func (dg *DeltaGraph) rebuildSpineLocked() error {
	dg.clearSpineLocked()

	carry := pendingChild{node: -1}
	for level := 0; level < len(dg.pending) || carry.node != -1; level++ {
		var group []pendingChild
		if level < len(dg.pending) {
			group = append(group, dg.pending[level]...)
		}
		if carry.node != -1 {
			group = append(group, carry)
			carry = pendingChild{node: -1}
		}
		higher := false
		for l := level + 1; l < len(dg.pending); l++ {
			if len(dg.pending[l]) > 0 {
				higher = true
				break
			}
		}
		switch {
		case len(group) == 0:
			continue
		case len(group) == 1 && !higher:
			// Single node at the top: it is the root.
			return dg.attachRootLocked(group[0])
		case len(group) == 1:
			carry = group[0]
		default:
			parent, err := dg.makeParentLocked(level, group, true)
			if err != nil {
				return err
			}
			carry = parent
		}
	}
	// No nodes at all (empty index): nothing to attach.
	return nil
}

// attachRootLocked writes the super-root → root edge, whose delta is the
// root's full content (the super-root is the null graph).
func (dg *DeltaGraph) attachRootLocked(root pendingChild) error {
	d := delta.FromSnapshot(root.snap)
	auxDeltas := make([]auxDelta, len(dg.auxes))
	for i := range dg.auxes {
		auxDeltas[i] = computeAuxDelta(root.aux[i], AuxSnapshot{})
	}
	deltaID, sizes, count, err := dg.storeDelta(d, auxDeltas)
	if err != nil {
		return err
	}
	idx := dg.skel.addEdge(&skelEdge{from: dg.skel.superRoot, to: root.node, kind: kindDelta, deltaID: deltaID, sizes: sizes, counts: count, evIndex: -1})
	// The super-root edge is torn down with the spine even when the root
	// node itself is permanent, because a future append can grow a new
	// root above it.
	dg.provEdgeIdxs = append(dg.provEdgeIdxs, idx)
	dg.provDeltaIDs = append(dg.provDeltaIDs, deltaID)
	// Materialization follows the root across spine rebuilds: if the torn
	// down root was pinned, pin the new one (its content is already in
	// hand, so this costs no retrieval).
	if dg.rematRoot {
		dg.rematRoot = false
		node := dg.skel.nodes[root.node]
		if !node.materialized {
			node.materialized = true
			node.matSnapshot = root.snap.Clone()
			dg.skel.addEdge(&skelEdge{from: dg.skel.superRoot, to: root.node, kind: kindMat, sizes: make(componentSizes, 4+len(dg.auxes)), evIndex: -1})
			if dg.pool != nil {
				dg.matGraphs[root.node] = dg.pool.OverlayMaterialized(node.matSnapshot)
			}
		}
	}
	return nil
}

// clearSpineLocked removes provisional nodes, edges, and payloads.
func (dg *DeltaGraph) clearSpineLocked() {
	for _, idx := range dg.provEdgeIdxs {
		dg.skel.removeEdge(idx)
	}
	dg.provEdgeIdxs = nil
	for _, id := range dg.provDeltaIDs {
		dg.deletePayload(id)
	}
	dg.provDeltaIDs = nil
	for _, nid := range dg.provNodes {
		// Detach children created under provisional parents.
		node := dg.skel.nodes[nid]
		if node.materialized {
			// Remember to pin the replacement root; release the stale
			// pool copy.
			dg.rematRoot = true
			if gid, ok := dg.matGraphs[nid]; ok && dg.pool != nil {
				if err := dg.pool.Release(gid); err == nil {
					dg.pool.CleanNow()
				}
			}
		}
		for _, c := range node.children {
			if dg.skel.nodes[c].parent == nid {
				dg.skel.nodes[c].parent = -1
			}
		}
		node.children = nil
		node.provisional = false
		// Remove remaining out-edges (already tombstoned above) and any
		// materialization bookkeeping.
		dg.skel.out[nid] = nil
		delete(dg.matGraphs, nid)
		dg.skel.nodes[nid] = &skelNode{id: nid, level: -1} // tombstone
	}
	dg.provNodes = nil
}

// --- payload storage -------------------------------------------------

// storeDelta persists a delta's columns (split across partitions) and
// returns its id, per-component byte sizes, and record count.
func (dg *DeltaGraph) storeDelta(d *delta.Delta, auxDeltas []auxDelta) (uint64, componentSizes, int, error) {
	id := dg.allocDeltaID()
	sizes := make(componentSizes, 4+len(dg.auxes))
	parts := d.Split(dg.opts.Partitions)
	for p, part := range parts {
		if part.StructLen() > 0 || dg.opts.Partitions == 1 {
			buf := delta.EncodeStructCol(part)
			if err := dg.store.Put(kvstore.EncodeKey(p, id, kvstore.ComponentStruct), buf); err != nil {
				return 0, nil, 0, err
			}
			sizes[0] += int64(len(buf))
		}
		if part.NodeAttrLen() > 0 {
			buf := delta.EncodeNodeAttrCol(part)
			if err := dg.store.Put(kvstore.EncodeKey(p, id, kvstore.ComponentNodeAttr), buf); err != nil {
				return 0, nil, 0, err
			}
			sizes[1] += int64(len(buf))
		}
		if part.EdgeAttrLen() > 0 {
			buf := delta.EncodeEdgeAttrCol(part)
			if err := dg.store.Put(kvstore.EncodeKey(p, id, kvstore.ComponentEdgeAttr), buf); err != nil {
				return 0, nil, 0, err
			}
			sizes[2] += int64(len(buf))
		}
	}
	// Aux columns are not node-partitioned (their keys are opaque): they
	// live in partition 0.
	for i, ad := range auxDeltas {
		if ad.empty() {
			continue
		}
		buf := encodeAuxDelta(ad)
		comp := kvstore.ComponentAuxBase + kvstore.Component(i)
		if err := dg.store.Put(kvstore.EncodeKey(0, id, comp), buf); err != nil {
			return 0, nil, 0, err
		}
		sizes[4+i] += int64(len(buf))
	}
	return id, sizes, d.Len(), nil
}

// storeEvents persists a leaf-eventlist, columnar: structure, node-attr,
// edge-attr and transient events are separate components, plus one aux
// eventlist per registered index.
func (dg *DeltaGraph) storeEvents(events graph.EventList, auxEvents [][]AuxEvent) (uint64, componentSizes, int, error) {
	id := dg.allocDeltaID()
	sizes := make(componentSizes, 4+len(dg.auxes))
	type colID struct {
		comp kvstore.Component
		idx  int
	}
	cols := []colID{
		{kvstore.ComponentStruct, 0},
		{kvstore.ComponentNodeAttr, 1},
		{kvstore.ComponentEdgeAttr, 2},
		{kvstore.ComponentTransient, 3},
	}
	// Split events by partition, then by column.
	byPart := make([][]graph.Event, dg.opts.Partitions)
	if dg.opts.Partitions == 1 {
		byPart[0] = events
	} else {
		for _, ev := range events {
			p := graph.PartitionOfEvent(ev, dg.opts.Partitions)
			byPart[p] = append(byPart[p], ev)
		}
	}
	for p, evs := range byPart {
		var colEvents [4]graph.EventList
		for _, ev := range evs {
			colEvents[eventColumn(ev)] = append(colEvents[eventColumn(ev)], ev)
		}
		for _, c := range cols {
			if len(colEvents[c.idx]) == 0 && !(dg.opts.Partitions == 1 && c.idx == 0) {
				continue
			}
			buf := delta.EncodeEvents(colEvents[c.idx])
			if err := dg.store.Put(kvstore.EncodeKey(p, id, c.comp), buf); err != nil {
				return 0, nil, 0, err
			}
			sizes[c.idx] += int64(len(buf))
		}
	}
	for i, evs := range auxEvents {
		if len(evs) == 0 {
			continue
		}
		buf := encodeAuxEvents(evs)
		comp := kvstore.ComponentAuxBase + kvstore.Component(i)
		if err := dg.store.Put(kvstore.EncodeKey(0, id, comp), buf); err != nil {
			return 0, nil, 0, err
		}
		sizes[4+i] += int64(len(buf))
	}
	return id, sizes, len(events), nil
}

// eventColumn maps an event to its storage column.
func eventColumn(ev graph.Event) int {
	switch ev.Type {
	case graph.SetNodeAttr:
		return 1
	case graph.SetEdgeAttr:
		return 2
	case graph.TransientEdge, graph.TransientNode:
		return 3
	default:
		return 0
	}
}

// deletePayload removes every component of a delta/eventlist id.
func (dg *DeltaGraph) deletePayload(id uint64) {
	comps := []kvstore.Component{
		kvstore.ComponentStruct, kvstore.ComponentNodeAttr,
		kvstore.ComponentEdgeAttr, kvstore.ComponentTransient,
	}
	for i := range dg.auxes {
		comps = append(comps, kvstore.ComponentAuxBase+kvstore.Component(i))
	}
	for p := 0; p < dg.opts.Partitions; p++ {
		for _, c := range comps {
			_ = dg.store.Delete(kvstore.EncodeKey(p, id, c))
		}
	}
}

// fetchSpec names the components a retrieval needs.
type fetchSpec struct {
	nodeAttr  bool
	edgeAttr  bool
	transient bool
	aux       []int // aux indexes to fetch
}

func specFor(opts graph.AttrOptions) fetchSpec {
	return fetchSpec{nodeAttr: opts.AnyNodeAttrs(), edgeAttr: opts.AnyEdgeAttrs()}
}

// deltaComps lists the delta columns a fetch spec needs.
func deltaComps(spec fetchSpec, events bool) []kvstore.Component {
	comps := []kvstore.Component{kvstore.ComponentStruct}
	if spec.nodeAttr {
		comps = append(comps, kvstore.ComponentNodeAttr)
	}
	if spec.edgeAttr {
		comps = append(comps, kvstore.ComponentEdgeAttr)
	}
	if events && spec.transient {
		comps = append(comps, kvstore.ComponentTransient)
	}
	return comps
}

// fetchDelta loads and assembles the requested columns of a delta. When
// the index is partitioned, both the reads and the decoding run in one
// goroutine per partition ("machine"), mirroring the paper's distributed
// retrieval where each machine reconstructs its piece independently.
func (dg *DeltaGraph) fetchDelta(id uint64, spec fetchSpec) (*delta.Delta, error) {
	comps := deltaComps(spec, false)
	parts, err := fetchPerPartition(dg, id, comps, func(comp kvstore.Component, buf []byte, d *delta.Delta) error {
		switch comp {
		case kvstore.ComponentStruct:
			return delta.DecodeStructCol(buf, d)
		case kvstore.ComponentNodeAttr:
			return delta.DecodeNodeAttrCol(buf, d)
		default:
			return delta.DecodeEdgeAttrCol(buf, d)
		}
	})
	if err != nil {
		return nil, err
	}
	out := &delta.Delta{}
	for _, part := range parts {
		mergeDelta(out, part)
	}
	return out, nil
}

// fetchEvents loads the requested columns of a leaf-eventlist and returns
// the merged, chronologically ordered events.
func (dg *DeltaGraph) fetchEvents(id uint64, spec fetchSpec) (graph.EventList, error) {
	comps := deltaComps(spec, true)
	parts, err := fetchPerPartition(dg, id, comps, func(_ kvstore.Component, buf []byte, el *graph.EventList) error {
		evs, err := delta.DecodeEvents(buf)
		if err != nil {
			return err
		}
		*el = append(*el, evs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all graph.EventList
	for _, part := range parts {
		all = append(all, *part...)
	}
	all.Sort() // merge columns/partitions back into time order
	return all, nil
}

// fetchPerPartition fetches and decodes the named components of payload id
// from every partition, one goroutine per partition, decoding with decode
// into a fresh T per partition.
func fetchPerPartition[T any](dg *DeltaGraph, id uint64, comps []kvstore.Component,
	decode func(kvstore.Component, []byte, *T) error) ([]*T, error) {

	P := dg.opts.Partitions
	parts := make([]*T, P)
	fetchOne := func(p int) error {
		parts[p] = new(T)
		for _, c := range comps {
			buf, err := dg.partStore(p).Get(kvstore.EncodeKey(p, id, c))
			if err != nil {
				if err == kvstore.ErrNotFound {
					continue
				}
				return err
			}
			if err := decode(c, buf, parts[p]); err != nil {
				return err
			}
		}
		return nil
	}
	if P == 1 {
		if err := fetchOne(0); err != nil {
			return nil, err
		}
		return parts, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, P)
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = fetchOne(p)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// partStore returns the store serving partition p.
func (dg *DeltaGraph) partStore(p int) kvstore.Store {
	if dg.pstore != nil {
		return dg.pstore.Part(p)
	}
	return dg.store
}

// mergeDelta appends src's records into dst.
func mergeDelta(dst, src *delta.Delta) {
	dst.AddNodes = append(dst.AddNodes, src.AddNodes...)
	dst.DelNodes = append(dst.DelNodes, src.DelNodes...)
	dst.AddEdges = append(dst.AddEdges, src.AddEdges...)
	dst.DelEdges = append(dst.DelEdges, src.DelEdges...)
	dst.SetNodeAttrs = append(dst.SetNodeAttrs, src.SetNodeAttrs...)
	dst.DelNodeAttrs = append(dst.DelNodeAttrs, src.DelNodeAttrs...)
	dst.SetEdgeAttrs = append(dst.SetEdgeAttrs, src.SetEdgeAttrs...)
	dst.DelEdgeAttrs = append(dst.DelEdgeAttrs, src.DelEdgeAttrs...)
}

// Flush syncs the store. (The skeleton itself is persisted by Checkpoint;
// see persist.go.)
func (dg *DeltaGraph) Flush() error {
	dg.mu.Lock()
	defer dg.mu.Unlock()
	return dg.store.Sync()
}

// validateInvariant is used by tests: every leaf must be reachable from the
// super-root after a spine rebuild.
func (dg *DeltaGraph) validateInvariant() error {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	dist, _ := dg.skel.shortestPaths(dg.skel.superRoot, selectorFor(graph.AttrOptions{}, nil))
	for _, leaf := range dg.skel.leaves {
		if dist[leaf] == math.MaxInt64 {
			return fmt.Errorf("leaf %d unreachable", leaf)
		}
	}
	return nil
}
