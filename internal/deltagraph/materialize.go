package deltagraph

import (
	"fmt"
	"math"
	"sort"

	"historygraph/internal/graph"
)

// Memory materialization (Section 4.5): any DeltaGraph node can be
// pre-fetched and pinned in memory. A zero-weight edge from the super-root
// to the node is added to the skeleton, so every subsequent query plan
// benefits automatically. Materializing a node is itself a retrieval of
// that node's graph.

// NodeRef identifies a skeleton node for materialization calls.
type NodeRef int

// Root returns a reference to the current root (the child of the
// super-root reached through the delta hierarchy), or an error if the
// index is empty.
func (dg *DeltaGraph) Root() (NodeRef, error) {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	id := dg.rootLocked()
	if id < 0 {
		return 0, fmt.Errorf("deltagraph: index has no root yet")
	}
	return NodeRef(id), nil
}

func (dg *DeltaGraph) rootLocked() int {
	for _, ei := range dg.skel.out[dg.skel.superRoot] {
		e := dg.skel.edges[ei]
		if e != nil && e.kind == kindDelta {
			return e.to
		}
	}
	return -1
}

// Children returns the children of a node (for "materialize the root's
// children / grandchildren" policies).
func (dg *DeltaGraph) Children(ref NodeRef) []NodeRef {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	node := dg.skel.nodes[int(ref)]
	out := make([]NodeRef, 0, len(node.children))
	for _, c := range node.children {
		out = append(out, NodeRef(c))
	}
	return out
}

// Leaves returns references to all leaves (for total materialization) in
// chronological order, excluding the empty anchor leaf.
func (dg *DeltaGraph) Leaves() []NodeRef {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	out := make([]NodeRef, 0, len(dg.skel.leaves)-1)
	for _, id := range dg.skel.leaves[1:] {
		out = append(out, NodeRef(id))
	}
	return out
}

// LeafTimes returns the snapshot timepoints of all real leaves.
func (dg *DeltaGraph) LeafTimes() []graph.Time {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	ts := dg.skel.leafTimes()
	return ts[1:]
}

// Materialize pins the graph of the given skeleton node in memory and adds
// the zero-weight super-root edge. It is idempotent.
func (dg *DeltaGraph) Materialize(ref NodeRef) error {
	dg.mu.Lock()
	defer dg.mu.Unlock()
	return dg.materializeLocked(int(ref))
}

func (dg *DeltaGraph) materializeLocked(id int) error {
	if id < 0 || id >= len(dg.skel.nodes) {
		return fmt.Errorf("deltagraph: no such node %d", id)
	}
	node := dg.skel.nodes[id]
	if node.level < 0 {
		return fmt.Errorf("deltagraph: node %d was removed", id)
	}
	if node.materialized {
		return nil
	}
	snap, err := dg.nodeGraphLocked(id)
	if err != nil {
		return err
	}
	node.materialized = true
	node.matSnapshot = snap
	dg.skel.addEdge(&skelEdge{from: dg.skel.superRoot, to: id, kind: kindMat, sizes: make(componentSizes, 4+len(dg.auxes)), evIndex: -1})
	if dg.pool != nil {
		dg.matGraphs[id] = dg.pool.OverlayMaterialized(snap)
	}
	return nil
}

// nodeGraphLocked constructs the full graph of any skeleton node by
// following the cheapest delta path from the super-root (materializing a
// node is running a snapshot query for it, Section 4.5).
func (dg *DeltaGraph) nodeGraphLocked(id int) (*graph.Snapshot, error) {
	all := graph.MustParseAttrOptions("+node:all+edge:all")
	sel := selectorFor(all, dg.auxComponentIDs())
	dist, prev := dg.skel.shortestPaths(dg.skel.superRoot, sel)
	if dist[id] == math.MaxInt64 {
		return nil, fmt.Errorf("deltagraph: node %d unreachable", id)
	}
	hops := dg.skel.pathTo(id, prev)
	spec := fetchSpec{nodeAttr: true, edgeAttr: true}
	s := graph.NewSnapshot()
	for _, hop := range hops {
		if err := dg.applyHop(s, hop, spec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Unmaterialize releases a materialized node: the zero-weight edge is
// removed and the pinned snapshot dropped. It fails if the pool copy has
// dependent graphs.
func (dg *DeltaGraph) Unmaterialize(ref NodeRef) error {
	dg.mu.Lock()
	defer dg.mu.Unlock()
	id := int(ref)
	if id < 0 || id >= len(dg.skel.nodes) || !dg.skel.nodes[id].materialized {
		return fmt.Errorf("deltagraph: node %d not materialized", id)
	}
	if dg.skel.nodes[id].matSnapshot != nil && id == dg.skel.leaves[0] {
		return fmt.Errorf("deltagraph: the empty anchor leaf stays materialized")
	}
	if gid, ok := dg.matGraphs[id]; ok {
		if err := dg.pool.Release(gid); err != nil {
			return err
		}
		delete(dg.matGraphs, id)
	}
	node := dg.skel.nodes[id]
	node.materialized = false
	node.matSnapshot = nil
	for _, ei := range dg.skel.out[dg.skel.superRoot] {
		e := dg.skel.edges[ei]
		if e != nil && e.kind == kindMat && e.to == id {
			dg.skel.removeEdge(ei)
			break
		}
	}
	return nil
}

// MaterializeLevel applies a named policy: "root", "children" (root's
// children), "grandchildren" (root's grandchildren), or "leaves" (total
// materialization — the Copy+Log-in-memory extreme of Section 4.5).
func (dg *DeltaGraph) MaterializeLevel(policy string) error {
	var refs []NodeRef
	switch policy {
	case "root":
		root, err := dg.Root()
		if err != nil {
			return err
		}
		refs = []NodeRef{root}
	case "children", "grandchildren":
		root, err := dg.Root()
		if err != nil {
			return err
		}
		refs = dg.Children(root)
		if policy == "grandchildren" {
			var gc []NodeRef
			for _, c := range refs {
				gc = append(gc, dg.Children(c)...)
			}
			if len(gc) > 0 {
				refs = gc
			}
		}
	case "leaves":
		refs = dg.Leaves()
	default:
		return fmt.Errorf("deltagraph: unknown materialization policy %q", policy)
	}
	for _, r := range refs {
		if err := dg.Materialize(r); err != nil {
			return err
		}
	}
	return nil
}

// MaterializedBytes estimates the memory pinned by materialization
// (element counts weighted like GraphPool's accounting), for the
// memory-vs-latency experiments.
func (dg *DeltaGraph) MaterializedBytes() int64 {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	var total int64
	for _, n := range dg.skel.nodes {
		if n != nil && n.materialized && n.matSnapshot != nil {
			total += int64(n.matSnapshot.Size()) * 48
		}
	}
	return total
}

// MaterializedNodes lists currently materialized skeleton nodes (excluding
// the empty anchor).
func (dg *DeltaGraph) MaterializedNodes() []NodeRef {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	var out []NodeRef
	for _, n := range dg.skel.nodes {
		if n != nil && n.materialized && n.id != dg.skel.leaves[0] {
			out = append(out, NodeRef(n.id))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
