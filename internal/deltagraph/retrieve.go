package deltagraph

import (
	"fmt"
	"math"
	"sort"

	"historygraph/internal/delta"
	"historygraph/internal/graph"
	"historygraph/internal/graphpool"
)

// This file implements snapshot retrieval: singlepoint queries (Section
// 4.3, Dijkstra over the skeleton), multipoint queries (Section 4.4,
// Steiner-tree 2-approximation), interval queries, TimeExpression queries,
// and retrieval into the GraphPool with the dependent-graph optimization.

const bytesPerRecentEvent = 24 // planning estimate for in-memory events

// queryPlan describes how to construct the snapshot at one timepoint.
type queryPlan struct {
	// startCurrent means: begin from a copy of the in-memory current
	// graph and walk backward through the recent eventlist.
	startCurrent bool
	hops         []planHop
	// Range applied after the hops (and after startCurrent): events in
	// (rangeFrom, rangeTo] forward, or (rangeTo, rangeFrom] backward.
	rangeFrom, rangeTo graph.Time
	cost               int64
	// base for the dependent-graph optimization: the materialized
	// skeleton node the plan starts from, if any.
	baseNode *skelNode
	// appliedRecords counts delta/eventlist records the plan expects to
	// apply (decides dependent overlays).
	appliedRecords int
}

// planLocked computes the minimum-cost plan for a singlepoint query.
// Caller holds at least the read lock.
func (dg *DeltaGraph) planLocked(t graph.Time, sel weightSelector) (queryPlan, error) {
	lastLeaf := dg.skel.leaves[len(dg.skel.leaves)-1]
	lastLeafTime := dg.skel.nodes[lastLeaf].at

	dist, prev := dg.skel.shortestPaths(dg.skel.superRoot, sel)

	if t >= lastLeafTime {
		// Tail region: after the last leaf only the in-memory recent
		// eventlist exists. Choose between walking forward from the
		// last leaf and walking backward from the current graph.
		fwdCount := dg.recent.SearchTime(t)
		bwdCount := len(dg.recent) - fwdCount
		fwdCost := dist[lastLeaf] + int64(fwdCount)*bytesPerRecentEvent
		bwdCost := int64(bwdCount) * bytesPerRecentEvent
		if dist[lastLeaf] == math.MaxInt64 || bwdCost <= fwdCost {
			return queryPlan{
				startCurrent: true,
				rangeFrom:    dg.lastTime, rangeTo: t,
				cost:           bwdCost,
				appliedRecords: bwdCount,
			}, nil
		}
		hops := dg.skel.pathTo(lastLeaf, prev)
		return queryPlan{
			hops:      hops,
			rangeFrom: lastLeafTime, rangeTo: t,
			cost:           fwdCost,
			baseNode:       dg.planBase(hops),
			appliedRecords: dg.planRecords(hops) + fwdCount,
		}, nil
	}

	li := dg.skel.locate(t)
	if li < 0 {
		return queryPlan{}, fmt.Errorf("deltagraph: no data at time %d", t)
	}
	leaf := dg.skel.leaves[li]
	leafTime := dg.skel.nodes[leaf].at
	if dist[leaf] == math.MaxInt64 {
		return queryPlan{}, fmt.Errorf("deltagraph: leaf unreachable (index not sealed?)")
	}
	if leafTime == t {
		hops := dg.skel.pathTo(leaf, prev)
		return queryPlan{hops: hops, rangeFrom: t, rangeTo: t, cost: dist[leaf],
			baseNode: dg.planBase(hops), appliedRecords: dg.planRecords(hops)}, nil
	}
	// Between leaf li and li+1: enter the eventlist forward from the left
	// leaf or backward from the right leaf, whichever is cheaper.
	next := dg.skel.leaves[li+1]
	nextTime := dg.skel.nodes[next].at
	evEdge := dg.eventEdge(li)
	frac := float64(t-leafTime) / float64(nextTime-leafTime)
	evW := sel.weight(evEdge)
	fwdCost := dist[leaf] + int64(frac*float64(evW))
	bwdCost := dist[next] + int64((1-frac)*float64(evW))
	if fwdCost <= bwdCost || dist[next] == math.MaxInt64 {
		hops := dg.skel.pathTo(leaf, prev)
		return queryPlan{hops: hops, rangeFrom: leafTime, rangeTo: t, cost: fwdCost,
			baseNode: dg.planBase(hops), appliedRecords: dg.planRecords(hops) + int(frac*float64(evEdge.counts))}, nil
	}
	hops := dg.skel.pathTo(next, prev)
	return queryPlan{hops: hops, rangeFrom: nextTime, rangeTo: t, cost: bwdCost,
		baseNode: dg.planBase(hops), appliedRecords: dg.planRecords(hops) + int((1-frac)*float64(evEdge.counts))}, nil
}

// planBase returns the materialized node a plan starts from, if its first
// hop is a materialization edge.
func (dg *DeltaGraph) planBase(hops []planHop) *skelNode {
	if len(hops) > 0 && hops[0].edge.kind == kindMat {
		return dg.skel.nodes[hops[0].edge.to]
	}
	return nil
}

// planRecords sums the record counts along a plan's hops.
func (dg *DeltaGraph) planRecords(hops []planHop) int {
	n := 0
	for _, h := range hops {
		n += h.edge.counts
	}
	return n
}

// eventEdge returns the forward eventlist edge for ordinal i.
func (dg *DeltaGraph) eventEdge(i int) *skelEdge {
	leaf := dg.skel.leaves[i]
	for _, ei := range dg.skel.out[leaf] {
		e := dg.skel.edges[ei]
		if e != nil && e.kind == kindEventFwd && e.evIndex == i {
			return e
		}
	}
	return nil
}

// executePlan materializes the plan into a snapshot.
func (dg *DeltaGraph) executePlan(p queryPlan, spec fetchSpec) (*graph.Snapshot, error) {
	dg.planExecs.Add(1)
	var s *graph.Snapshot
	if p.startCurrent {
		s = dg.current.Clone()
	} else {
		s = graph.NewSnapshot()
	}
	for _, hop := range p.hops {
		if err := dg.applyHop(s, hop, spec); err != nil {
			return nil, err
		}
	}
	if p.rangeFrom != p.rangeTo {
		if err := dg.applyRangeLocked(s, p.rangeFrom, p.rangeTo, spec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// applyHop applies one skeleton edge to the snapshot under construction.
func (dg *DeltaGraph) applyHop(s *graph.Snapshot, hop planHop, spec fetchSpec) error {
	e := hop.edge
	switch e.kind {
	case kindMat:
		node := dg.skel.nodes[e.to]
		if node.matSnapshot == nil {
			return fmt.Errorf("deltagraph: node %d not materialized", e.to)
		}
		*s = *node.matSnapshot.Clone()
	case kindDelta:
		d, err := dg.fetchDelta(e.deltaID, spec)
		if err != nil {
			return err
		}
		d.Apply(s)
	case kindEventFwd:
		evs, err := dg.fetchEvents(e.deltaID, spec)
		if err != nil {
			return err
		}
		s.ApplyAll(evs)
	case kindEventBwd:
		evs, err := dg.fetchEvents(e.deltaID, spec)
		if err != nil {
			return err
		}
		s.UnapplyAll(evs)
	}
	return nil
}

// applyRangeLocked advances the snapshot s from time `from` to time `to`
// by applying leaf-eventlist segments (and the in-memory recent eventlist)
// forward or backward. Transient events never modify s.
func (dg *DeltaGraph) applyRangeLocked(s *graph.Snapshot, from, to graph.Time, spec fetchSpec) error {
	if from == to {
		return nil
	}
	lastLeafTime := dg.skel.nodes[dg.skel.leaves[len(dg.skel.leaves)-1]].at
	if to > from {
		// Forward over eventlists overlapping (from, to].
		li := dg.skel.locate(from)
		for li < len(dg.skel.leaves)-1 {
			nextTime := dg.skel.nodes[dg.skel.leaves[li+1]].at
			if dg.skel.nodes[dg.skel.leaves[li]].at > to {
				break
			}
			e := dg.eventEdge(li)
			if e == nil {
				return fmt.Errorf("deltagraph: missing eventlist %d", li)
			}
			evs, err := dg.fetchEvents(e.deltaID, spec)
			if err != nil {
				return err
			}
			lo := evs.SearchTime(from)
			hi := evs.SearchTime(to)
			s.ApplyAll(evs[lo:hi])
			if nextTime >= to {
				return nil
			}
			li++
		}
		// Tail: recent in-memory events.
		if to > lastLeafTime {
			lo := dg.recent.SearchTime(from)
			hi := dg.recent.SearchTime(to)
			for _, ev := range dg.recent[lo:hi] {
				if dg.filterSpec(ev, spec) {
					s.Apply(ev)
				}
			}
		}
		return nil
	}
	// Backward: un-apply events in (to, from], newest first.
	if from > lastLeafTime {
		lo := dg.recent.SearchTime(to)
		hi := dg.recent.SearchTime(from)
		seg := dg.recent[lo:hi]
		for i := len(seg) - 1; i >= 0; i-- {
			if dg.filterSpec(seg[i], spec) {
				s.Unapply(seg[i])
			}
		}
		if to >= lastLeafTime {
			return nil
		}
		from = lastLeafTime
	}
	li := dg.skel.locate(from)
	if dg.skel.nodes[dg.skel.leaves[li]].at == from {
		li--
	}
	for li >= 0 {
		leafTime := dg.skel.nodes[dg.skel.leaves[li]].at
		e := dg.eventEdge(li)
		if e == nil {
			return fmt.Errorf("deltagraph: missing eventlist %d", li)
		}
		evs, err := dg.fetchEvents(e.deltaID, spec)
		if err != nil {
			return err
		}
		lo := evs.SearchTime(to)
		hi := evs.SearchTime(from)
		seg := evs[lo:hi]
		for i := len(seg) - 1; i >= 0; i-- {
			s.Unapply(seg[i])
		}
		if leafTime <= to {
			return nil
		}
		li--
	}
	return nil
}

// filterSpec applies the columnar filter to in-memory events (on-disk
// events are filtered by fetching only the needed columns).
func (dg *DeltaGraph) filterSpec(ev graph.Event, spec fetchSpec) bool {
	switch eventColumn(ev) {
	case 1:
		return spec.nodeAttr
	case 2:
		return spec.edgeAttr
	case 3:
		return spec.transient
	default:
		return true
	}
}

// GetSnapshot retrieves the graph as of time t with the requested
// attribute options (the paper's GetHistGraph returning a plain snapshot).
func (dg *DeltaGraph) GetSnapshot(t graph.Time, opts graph.AttrOptions) (*graph.Snapshot, error) {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	s, _, err := dg.getSnapshotLocked(t, opts)
	return s, err
}

func (dg *DeltaGraph) getSnapshotLocked(t graph.Time, opts graph.AttrOptions) (*graph.Snapshot, queryPlan, error) {
	sel := selectorFor(opts, nil)
	p, err := dg.planLocked(t, sel)
	if err != nil {
		return nil, p, err
	}
	s, err := dg.executePlan(p, specFor(opts))
	if err != nil {
		return nil, p, err
	}
	return opts.FilterSnapshot(s), p, nil
}

// PlanCost returns the planner's estimated cost for a singlepoint query;
// the experiment harness uses it to study weight distributions.
func (dg *DeltaGraph) PlanCost(t graph.Time, opts graph.AttrOptions) (int64, error) {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	p, err := dg.planLocked(t, selectorFor(opts, nil))
	return p.cost, err
}

// GetSnapshots retrieves many snapshots with multi-query optimization
// (Section 4.4): terminals are connected by a Steiner tree over the
// skeleton, so snapshots close in time are derived from each other through
// eventlist segments instead of each paying a full root-to-leaf path.
// Results are returned in the order of ts.
func (dg *DeltaGraph) GetSnapshots(ts []graph.Time, opts graph.AttrOptions) ([]*graph.Snapshot, error) {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	return dg.getSnapshotsLocked(ts, opts)
}

func (dg *DeltaGraph) getSnapshotsLocked(ts []graph.Time, opts graph.AttrOptions) ([]*graph.Snapshot, error) {
	if len(ts) == 0 {
		return nil, nil
	}
	if len(ts) == 1 {
		s, _, err := dg.getSnapshotLocked(ts[0], opts)
		return []*graph.Snapshot{s}, err
	}
	sel := selectorFor(opts, nil)
	spec := specFor(opts)

	// Sort terminals by time, remembering the output order.
	order := make([]int, len(ts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ts[order[a]] < ts[order[b]] })

	// Metric: a_i = cost from super-root, b_i = cost from terminal i to
	// terminal i+1 along the leaf level.
	m := len(ts)
	rootCost := make([]int64, m)
	plans := make([]queryPlan, m)
	for i, oi := range order {
		p, err := dg.planLocked(ts[oi], sel)
		if err != nil {
			return nil, err
		}
		plans[i] = p
		rootCost[i] = p.cost
	}
	stepCost := make([]int64, m-1)
	for i := 0; i+1 < m; i++ {
		stepCost[i] = dg.rangeCostLocked(ts[order[i]], ts[order[i+1]], sel)
	}

	// Kruskal over the star+path terminal graph: edges (root, i) with
	// cost a_i and (i, i+1) with cost b_i.
	type medge struct {
		cost int64
		a, b int // b == -1 means the super-root
	}
	edges := make([]medge, 0, 2*m)
	for i := 0; i < m; i++ {
		edges = append(edges, medge{rootCost[i], i, -1})
	}
	for i := 0; i+1 < m; i++ {
		edges = append(edges, medge{stepCost[i], i, i + 1})
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].cost < edges[b].cost })
	parent := make([]int, m+1) // m is the super-root in union-find terms
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	fromRoot := make([]bool, m)
	nextOf := make(map[int][]int) // terminal -> neighbors in tree (by index)
	for _, e := range edges {
		bIdx := e.b
		if bIdx == -1 {
			bIdx = m
		}
		ra, rb := find(e.a), find(bIdx)
		if ra == rb {
			continue
		}
		parent[ra] = rb
		if e.b == -1 {
			fromRoot[e.a] = true
		} else {
			nextOf[e.a] = append(nextOf[e.a], e.b)
			nextOf[e.b] = append(nextOf[e.b], e.a)
		}
	}

	// Realize the tree: BFS from every root-attached terminal, deriving
	// neighbors by eventlist ranges.
	snaps := make([]*graph.Snapshot, m)
	var queue []int
	for i := 0; i < m; i++ {
		if fromRoot[i] {
			s, err := dg.executePlan(plans[i], spec)
			if err != nil {
				return nil, err
			}
			snaps[i] = s
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range nextOf[i] {
			if snaps[j] != nil {
				continue
			}
			s := snaps[i].Clone()
			if err := dg.applyRangeLocked(s, ts[order[i]], ts[order[j]], spec); err != nil {
				return nil, err
			}
			snaps[j] = s
			queue = append(queue, j)
		}
	}
	out := make([]*graph.Snapshot, len(ts))
	for i, oi := range order {
		if snaps[i] == nil {
			return nil, fmt.Errorf("deltagraph: internal: terminal %d not realized", i)
		}
		out[oi] = opts.FilterSnapshot(snaps[i])
	}
	return out, nil
}

// rangeCostLocked estimates the bytes needed to move a snapshot from time
// a to time b along the leaf level.
func (dg *DeltaGraph) rangeCostLocked(a, b graph.Time, sel weightSelector) int64 {
	if a > b {
		a, b = b, a
	}
	var total int64
	la, lb := dg.skel.locate(a), dg.skel.locate(b)
	for i := la; i <= lb && i < len(dg.skel.leaves)-1; i++ {
		e := dg.eventEdge(i)
		if e == nil {
			continue
		}
		w := sel.weight(e)
		leafT := dg.skel.nodes[dg.skel.leaves[i]].at
		nextT := dg.skel.nodes[dg.skel.leaves[i+1]].at
		span := float64(nextT - leafT)
		lo, hi := leafT, nextT
		if a > lo {
			lo = a
		}
		if b < hi {
			hi = b
		}
		if hi <= lo || span <= 0 {
			continue
		}
		total += int64(float64(w) * float64(hi-lo) / span)
	}
	// Recent tail.
	lastLeafTime := dg.skel.nodes[dg.skel.leaves[len(dg.skel.leaves)-1]].at
	if b > lastLeafTime {
		lo := dg.recent.SearchTime(maxTime(a, lastLeafTime))
		hi := dg.recent.SearchTime(b)
		total += int64(hi-lo) * bytesPerRecentEvent
	}
	return total
}

func maxTime(a, b graph.Time) graph.Time {
	if a > b {
		return a
	}
	return b
}

// IntervalResult is the answer to GetHistGraphInterval: the graph over all
// elements added during [Start, End), plus the transient events in that
// window (which no snapshot query returns, by definition).
type IntervalResult struct {
	Start, End graph.Time
	Graph      *graph.Snapshot
	Transients []graph.Event
}

// GetInterval retrieves all elements added during [ts, te) and the
// transient events that occurred in that window.
func (dg *DeltaGraph) GetInterval(ts, te graph.Time, opts graph.AttrOptions) (*IntervalResult, error) {
	if te <= ts {
		return nil, fmt.Errorf("deltagraph: empty interval [%d, %d)", ts, te)
	}
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	spec := specFor(opts)
	spec.transient = true
	res := &IntervalResult{Start: ts, End: te, Graph: graph.NewSnapshot()}
	collect := func(evs graph.EventList) {
		for _, ev := range evs {
			if ev.At < ts || ev.At >= te {
				continue
			}
			switch ev.Type {
			case graph.TransientEdge, graph.TransientNode:
				res.Transients = append(res.Transients, ev)
			case graph.AddNode, graph.AddEdge, graph.SetNodeAttr, graph.SetEdgeAttr:
				if opts.FilterEvent(ev) {
					res.Graph.Apply(ev)
				}
			}
		}
	}
	// Eventlist i covers (leafTime_i, leafTime_i+1]; events at exactly ts
	// can sit in the eventlist ending at ts, so start one step earlier.
	li := dg.skel.locate(ts - 1)
	if li < 0 {
		li = 0
	}
	for i := li; i < len(dg.skel.leaves)-1; i++ {
		if dg.skel.nodes[dg.skel.leaves[i]].at >= te {
			break
		}
		e := dg.eventEdge(i)
		if e == nil {
			continue
		}
		evs, err := dg.fetchEvents(e.deltaID, spec)
		if err != nil {
			return nil, err
		}
		collect(evs)
	}
	collect(dg.recent)
	opts.FilterSnapshot(res.Graph)
	return res, nil
}

// TimeExpr is a Boolean expression over the timepoints of a
// TimeExpression query; Var(i) refers to the i-th timepoint.
type TimeExpr interface {
	Eval(member []bool) bool
}

// Var selects membership at timepoint i.
type Var int

// Eval implements TimeExpr.
func (v Var) Eval(member []bool) bool { return member[int(v)] }

// Not negates a TimeExpr.
type Not struct{ E TimeExpr }

// Eval implements TimeExpr.
func (n Not) Eval(member []bool) bool { return !n.E.Eval(member) }

// And is the conjunction of TimeExprs.
type And []TimeExpr

// Eval implements TimeExpr.
func (a And) Eval(member []bool) bool {
	for _, e := range a {
		if !e.Eval(member) {
			return false
		}
	}
	return true
}

// Or is the disjunction of TimeExprs.
type Or []TimeExpr

// Eval implements TimeExpr.
func (o Or) Eval(member []bool) bool {
	for _, e := range o {
		if e.Eval(member) {
			return true
		}
	}
	return false
}

// TimeExpression is a multinomial Boolean expression over k timepoints
// (e.g. t1 ∧ ¬t2: valid at t1 but not at t2).
type TimeExpression struct {
	Times []graph.Time
	Expr  TimeExpr
}

// GetExpression retrieves the hypothetical graph whose elements satisfy
// the TimeExpression: the snapshots at every timepoint are fetched with
// multipoint retrieval and combined element-wise. Attribute entries are
// treated as elements (identity includes the value).
func (dg *DeltaGraph) GetExpression(tex TimeExpression, opts graph.AttrOptions) (*graph.Snapshot, error) {
	if len(tex.Times) == 0 || tex.Expr == nil {
		return nil, fmt.Errorf("deltagraph: empty TimeExpression")
	}
	dg.mu.RLock()
	snaps, err := dg.getSnapshotsLocked(tex.Times, opts)
	dg.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	out := graph.NewSnapshot()
	member := make([]bool, len(snaps))
	// Nodes.
	seenN := make(map[graph.NodeID]struct{})
	for _, s := range snaps {
		for n := range s.Nodes {
			if _, ok := seenN[n]; ok {
				continue
			}
			seenN[n] = struct{}{}
			for i, si := range snaps {
				_, member[i] = si.Nodes[n]
			}
			if tex.Expr.Eval(member) {
				out.Nodes[n] = struct{}{}
			}
		}
	}
	// Edges.
	seenE := make(map[graph.EdgeID]struct{})
	for _, s := range snaps {
		for e, info := range s.Edges {
			if _, ok := seenE[e]; ok {
				continue
			}
			seenE[e] = struct{}{}
			for i, si := range snaps {
				_, member[i] = si.Edges[e]
			}
			if tex.Expr.Eval(member) {
				out.Edges[e] = info
			}
		}
	}
	// Attribute entries: identity is (id, attr, value).
	type nkey struct {
		n    graph.NodeID
		k, v string
	}
	seenNA := make(map[nkey]struct{})
	for _, s := range snaps {
		for n, attrs := range s.NodeAttrs {
			for k, v := range attrs {
				key := nkey{n, k, v}
				if _, ok := seenNA[key]; ok {
					continue
				}
				seenNA[key] = struct{}{}
				for i, si := range snaps {
					member[i] = si.NodeAttrs[n][k] == v
				}
				if tex.Expr.Eval(member) {
					if out.NodeAttrs[n] == nil {
						out.NodeAttrs[n] = make(map[string]string)
					}
					out.NodeAttrs[n][k] = v
				}
			}
		}
	}
	type ekey struct {
		e    graph.EdgeID
		k, v string
	}
	seenEA := make(map[ekey]struct{})
	for _, s := range snaps {
		for e, attrs := range s.EdgeAttrs {
			for k, v := range attrs {
				key := ekey{e, k, v}
				if _, ok := seenEA[key]; ok {
					continue
				}
				seenEA[key] = struct{}{}
				for i, si := range snaps {
					member[i] = si.EdgeAttrs[e][k] == v
				}
				if tex.Expr.Eval(member) {
					if out.EdgeAttrs[e] == nil {
						out.EdgeAttrs[e] = make(map[string]string)
					}
					out.EdgeAttrs[e][k] = v
				}
			}
		}
	}
	return out, nil
}

// Retrieve loads the snapshot at t into the GraphPool and returns its
// graph ID. When the plan starts at a materialized node (or the current
// graph) and the applied records are a small fraction of the base size,
// the snapshot is overlaid as a dependent graph — the paper's bit-pair
// optimization.
func (dg *DeltaGraph) Retrieve(t graph.Time, opts graph.AttrOptions) (graphpool.GraphID, error) {
	if dg.pool == nil {
		return 0, fmt.Errorf("deltagraph: no GraphPool attached")
	}
	dg.mu.RLock()
	s, p, err := dg.getSnapshotLocked(t, opts)
	if err != nil {
		dg.mu.RUnlock()
		return 0, err
	}
	// Dependent-overlay decision from the plan (Section 6).
	var (
		baseSnap *graph.Snapshot
		baseID   graphpool.GraphID
		haveBase bool
	)
	switch {
	case p.startCurrent:
		baseSnap, baseID, haveBase = dg.current, graphpool.CurrentGraph, true
	case p.baseNode != nil:
		if id, ok := dg.matGraphs[p.baseNode.id]; ok {
			baseSnap, baseID, haveBase = p.baseNode.matSnapshot, id, true
		}
	}
	if haveBase {
		baseSize := baseSnap.Size()
		if baseSize > 0 && float64(p.appliedRecords) <= dg.opts.DependentMaxRatio*float64(baseSize) {
			exc := delta.Compute(s, opts.FilterSnapshot(baseSnap.Clone()))
			dg.mu.RUnlock()
			return dg.pool.OverlayDependent(baseID, exc, t)
		}
	}
	dg.mu.RUnlock()
	return dg.pool.OverlaySnapshot(s, t), nil
}

// RetrieveMany loads many snapshots into the pool using multipoint
// retrieval, returning graph IDs in the order of ts.
func (dg *DeltaGraph) RetrieveMany(ts []graph.Time, opts graph.AttrOptions) ([]graphpool.GraphID, error) {
	if dg.pool == nil {
		return nil, fmt.Errorf("deltagraph: no GraphPool attached")
	}
	dg.mu.RLock()
	snaps, err := dg.getSnapshotsLocked(ts, opts)
	dg.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	ids := make([]graphpool.GraphID, len(snaps))
	for i, s := range snaps {
		ids[i] = dg.pool.OverlaySnapshot(s, ts[i])
	}
	return ids, nil
}
