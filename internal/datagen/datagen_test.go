package datagen

import (
	"testing"

	"historygraph/internal/graph"
)

func TestCoauthorshipGrowingOnly(t *testing.T) {
	events := Coauthorship(CoauthorshipConfig{Authors: 300, Edges: 1200, Years: 10, Seed: 1})
	if !events.Sorted() {
		t.Fatal("trace not chronological")
	}
	if err := events.Validate(nil); err != nil {
		t.Fatalf("trace malformed: %v", err)
	}
	var adds, dels, attrs int
	for _, ev := range events {
		switch ev.Type {
		case graph.AddNode, graph.AddEdge:
			adds++
		case graph.DelNode, graph.DelEdge:
			dels++
		case graph.SetNodeAttr:
			attrs++
		}
	}
	if dels != 0 {
		t.Errorf("growing-only trace has %d deletions", dels)
	}
	if attrs < 10*250 {
		t.Errorf("attr events = %d; every author should get 10", attrs)
	}
	s := graph.NewSnapshot()
	s.ApplyAll(events)
	if len(s.Nodes) != 300 {
		t.Errorf("final nodes = %d, want 300", len(s.Nodes))
	}
	if len(s.Edges) == 0 {
		t.Error("no edges generated")
	}
}

func TestCoauthorshipSuperlinearDensity(t *testing.T) {
	cfg := CoauthorshipConfig{Authors: 500, Edges: 3000, Years: 10, TicksPerYear: 1000, Seed: 2}
	events := Coauthorship(cfg)
	// Events in the last year must outnumber events in the first year by
	// a large factor (density ~ (y+1)^2 → factor ~100 ideally).
	firstYear, lastYear := 0, 0
	for _, ev := range events {
		y := int(ev.At) / cfg.TicksPerYear
		if y == 0 {
			firstYear++
		}
		if y == cfg.Years-1 {
			lastYear++
		}
	}
	if lastYear < 10*firstYear {
		t.Errorf("density not super-linear: first year %d, last year %d", firstYear, lastYear)
	}
}

func TestCoauthorshipDeterministic(t *testing.T) {
	cfg := CoauthorshipConfig{Authors: 100, Edges: 300, Years: 5, Seed: 7}
	a := Coauthorship(cfg)
	b := Coauthorship(cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestChurn(t *testing.T) {
	base := Coauthorship(CoauthorshipConfig{Authors: 200, Edges: 800, Years: 5, Seed: 3})
	full := Churn(base, ChurnConfig{Adds: 500, Dels: 500, Seed: 4})
	if !full.Sorted() {
		t.Fatal("churn trace not chronological")
	}
	if err := full.Validate(nil); err != nil {
		t.Fatalf("churn trace malformed: %v", err)
	}
	var adds, dels int
	for _, ev := range full[len(base):] {
		switch ev.Type {
		case graph.AddEdge:
			adds++
		case graph.DelEdge:
			dels++
		}
	}
	if adds != 500 || dels != 500 {
		t.Errorf("churn adds=%d dels=%d, want 500/500", adds, dels)
	}
	// Deterministic.
	again := Churn(base, ChurnConfig{Adds: 500, Dels: 500, Seed: 4})
	for i := range full {
		if full[i] != again[i] {
			t.Fatal("churn not deterministic")
		}
	}
}

func TestPatentLike(t *testing.T) {
	events := PatentLike(PatentLikeConfig{Nodes: 500, Edges: 2000, ChurnAdds: 300, ChurnDels: 300, Seed: 5})
	if err := events.Validate(nil); err != nil {
		t.Fatalf("trace malformed: %v", err)
	}
	s := graph.NewSnapshot()
	s.ApplyAll(events)
	if len(s.Nodes) != 500 {
		t.Errorf("nodes = %d", len(s.Nodes))
	}
	if len(s.Edges) != 2000 {
		t.Errorf("final edges = %d, want 2000 (adds == dels)", len(s.Edges))
	}
}

func TestConstantRate(t *testing.T) {
	cfg := ConstantRateConfig{G0Nodes: 200, G0Edges: 1000, Events: 4000, DeltaStar: 0.4, RhoStar: 0.4, Seed: 6}
	events := ConstantRate(cfg)
	if err := events.Validate(nil); err != nil {
		t.Fatalf("trace malformed: %v", err)
	}
	var adds, dels, trans int
	for _, ev := range events {
		if ev.At == 0 {
			continue // G0
		}
		switch ev.Type {
		case graph.AddEdge:
			adds++
		case graph.DelEdge:
			dels++
		case graph.TransientEdge:
			trans++
		}
	}
	// Rates within 10% of nominal.
	if float64(adds) < 0.35*4000 || float64(adds) > 0.45*4000 {
		t.Errorf("adds = %d, want ~1600", adds)
	}
	if float64(dels) < 0.35*4000 || float64(dels) > 0.45*4000 {
		t.Errorf("dels = %d, want ~1600", dels)
	}
	if trans == 0 {
		t.Error("no transient events")
	}
	// One event per tick: timestamps strictly increase after t=0.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("not chronological")
		}
	}
}

func TestConstantRateGrowingOnly(t *testing.T) {
	events := ConstantRate(ConstantRateConfig{G0Nodes: 100, G0Edges: 500, Events: 2000, DeltaStar: 1, RhoStar: 0, Seed: 8})
	s := graph.NewSnapshot()
	s.ApplyAll(events)
	if len(s.Edges) != 2500 {
		t.Errorf("edges = %d, want 2500", len(s.Edges))
	}
}
