// Package datagen generates the synthetic event traces the experiments
// run on, mirroring the paper's three datasets (Section 7):
//
//   - Dataset 1: a growing-only co-authorship network (DBLP-like): the
//     network starts empty, authors and co-author edges are only added,
//     event density grows super-linearly over time, and every node carries
//     10 random attribute key-value pairs.
//   - Dataset 2: Dataset 1 as the starting snapshot followed by a random
//     churn trace of edge additions and deletions in equal number.
//   - Dataset 3: a large starting snapshot (patent-citation-like) followed
//     by a long half-add/half-delete churn trace.
//
// A constant-rate trace generator supports the Section 5 analytical-model
// validation. All generators are deterministic in their seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"historygraph/internal/graph"
)

// CoauthorshipConfig sizes a Dataset 1 style trace.
type CoauthorshipConfig struct {
	// Authors is the total number of author nodes added over the trace.
	Authors int
	// Edges is the total number of co-author edges added.
	Edges int
	// Years is the time span; event density in year y grows like
	// (y+1)^2, matching the paper's super-linear g(t).
	Years int
	// TicksPerYear scales timestamps (default 1000).
	TicksPerYear int
	// AttrsPerNode random key-value pairs per author (paper: 10).
	AttrsPerNode int
	// Seed drives the generator.
	Seed int64
}

// Coauthorship generates a growing-only co-authorship trace.
func Coauthorship(cfg CoauthorshipConfig) graph.EventList {
	if cfg.TicksPerYear == 0 {
		cfg.TicksPerYear = 1000
	}
	if cfg.AttrsPerNode == 0 {
		cfg.AttrsPerNode = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Super-linear density: cumulative share of events by year y is
	// proportional to sum_{i<=y} i^2.
	weights := make([]float64, cfg.Years)
	var totalW float64
	for y := range weights {
		weights[y] = float64((y + 1) * (y + 1))
		totalW += weights[y]
	}
	totalOps := cfg.Authors + cfg.Edges
	var events graph.EventList
	var authors []graph.NodeID
	nextNode := graph.NodeID(0)
	nextEdge := graph.EdgeID(0)
	degree := map[graph.NodeID]int{}
	opsDone := 0
	for y := 0; y < cfg.Years; y++ {
		opsThisYear := int(math.Round(float64(totalOps) * weights[y] / totalW))
		if y == cfg.Years-1 {
			opsThisYear = totalOps - opsDone
		}
		for i := 0; i < opsThisYear && opsDone < totalOps; i++ {
			// Spread the year's events evenly over its ticks; generation
			// order is preserved so edges never precede their endpoints.
			at := graph.Time(y*cfg.TicksPerYear + i*cfg.TicksPerYear/max(opsThisYear, 1))
			// Authors arrive in proportion to their share of ops.
			addAuthor := len(authors) < 2 || rng.Intn(totalOps) < cfg.Authors
			if addAuthor && int(nextNode) < cfg.Authors {
				nextNode++
				authors = append(authors, nextNode)
				events = append(events, graph.Event{Type: graph.AddNode, At: at, Node: nextNode})
				for a := 0; a < cfg.AttrsPerNode; a++ {
					events = append(events, graph.Event{
						Type: graph.SetNodeAttr, At: at, Node: nextNode,
						Attr: fmt.Sprintf("k%d", a),
						New:  fmt.Sprintf("v%d", rng.Intn(1000)), HasNew: true,
					})
				}
			} else {
				// Preferential attachment: one endpoint biased by
				// degree, the other uniform.
				u := pickPreferential(rng, authors, degree)
				v := authors[rng.Intn(len(authors))]
				if u == v {
					continue
				}
				nextEdge++
				degree[u]++
				degree[v]++
				events = append(events, graph.Event{Type: graph.AddEdge, At: at, Edge: nextEdge, Node: u, Node2: v})
			}
			opsDone++
		}
	}
	return events
}

func pickPreferential(rng *rand.Rand, authors []graph.NodeID, degree map[graph.NodeID]int) graph.NodeID {
	// Sampling by (degree+1) via rejection; bounded attempts keep it fast.
	for i := 0; i < 8; i++ {
		cand := authors[rng.Intn(len(authors))]
		if rng.Intn(8) < degree[cand]+1 {
			return cand
		}
	}
	return authors[rng.Intn(len(authors))]
}

// ChurnConfig sizes the Dataset 2/3 style continuation trace.
type ChurnConfig struct {
	// Adds and Dels are the numbers of edge additions and deletions.
	Adds, Dels int
	// Ticks is the duration of the churn phase.
	Ticks int
	// Seed drives the generator.
	Seed int64
}

// Churn appends a randomized add/delete trace after a base trace: the
// paper's Dataset 2 (1M adds + 1M deletes after Dataset 1). Deletions pick
// random live edges; additions connect random live nodes. The returned
// list is the concatenation base + churn.
func Churn(base graph.EventList, cfg ChurnConfig) graph.EventList {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := graph.NewSnapshot()
	s.ApplyAll(base)
	var nodes []graph.NodeID
	for n := range s.Nodes {
		nodes = append(nodes, n)
	}
	sortNodeIDs(nodes)
	type liveEdge struct {
		id   graph.EdgeID
		info graph.EdgeInfo
	}
	var live []liveEdge
	maxEdge := graph.EdgeID(0)
	for e, info := range s.Edges {
		live = append(live, liveEdge{e, info})
		if e > maxEdge {
			maxEdge = e
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	_, lastBase := base.Span()
	out := append(graph.EventList{}, base...)
	total := cfg.Adds + cfg.Dels
	if cfg.Ticks == 0 {
		cfg.Ticks = total
	}
	adds, dels := cfg.Adds, cfg.Dels
	for i := 0; i < total; i++ {
		at := lastBase + 1 + graph.Time(int64(i)*int64(cfg.Ticks)/int64(total))
		doDel := dels > 0 && len(live) > 0 && (adds == 0 || rng.Intn(adds+dels) < dels)
		if doDel {
			j := rng.Intn(len(live))
			e := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			out = append(out, graph.Event{Type: graph.DelEdge, At: at, Edge: e.id, Node: e.info.From, Node2: e.info.To, Directed: e.info.Directed})
			dels--
		} else if adds > 0 {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			if u == v {
				v = nodes[int((graph.HashNode(u)+1)%uint64(len(nodes)))]
			}
			maxEdge++
			live = append(live, liveEdge{maxEdge, graph.EdgeInfo{From: u, To: v}})
			out = append(out, graph.Event{Type: graph.AddEdge, At: at, Edge: maxEdge, Node: u, Node2: v})
			adds--
		}
	}
	return out
}

// PatentLikeConfig sizes a Dataset 3 style trace.
type PatentLikeConfig struct {
	// Nodes and Edges size the starting snapshot.
	Nodes, Edges int
	// ChurnAdds and ChurnDels follow it.
	ChurnAdds, ChurnDels int
	// Seed drives the generator.
	Seed int64
}

// PatentLike generates a large starting snapshot (all at t=0) followed by
// an equal-adds-and-deletes churn trace.
func PatentLike(cfg PatentLikeConfig) graph.EventList {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events graph.EventList
	for i := 1; i <= cfg.Nodes; i++ {
		events = append(events, graph.Event{Type: graph.AddNode, At: 0, Node: graph.NodeID(i)})
	}
	for e := 1; e <= cfg.Edges; e++ {
		u := graph.NodeID(rng.Intn(cfg.Nodes) + 1)
		v := graph.NodeID(rng.Intn(cfg.Nodes) + 1)
		if u == v {
			v = graph.NodeID(int(v)%cfg.Nodes + 1)
		}
		events = append(events, graph.Event{Type: graph.AddEdge, At: 0, Edge: graph.EdgeID(e), Node: u, Node2: v, Directed: true})
	}
	return Churn(events, ChurnConfig{Adds: cfg.ChurnAdds, Dels: cfg.ChurnDels, Seed: cfg.Seed + 1})
}

// ConstantRateConfig drives the Section 5 model-validation trace.
type ConstantRateConfig struct {
	// G0Nodes and G0Edges size the initial graph (emitted at t=0).
	G0Nodes, G0Edges int
	// Events is |E|, the number of events after G0.
	Events int
	// DeltaStar and RhoStar are the paper's δ* and ρ*: the fractions of
	// events that insert and delete elements (δ*+ρ* <= 1; the remainder
	// are transient events).
	DeltaStar, RhoStar float64
	// Seed drives the generator.
	Seed int64
}

// ConstantRate emits a trace with constant insert/delete rates, one event
// per tick, for validating the analytical models. Inserted and deleted
// elements are edges, so |G| changes by exactly one element per
// non-transient event.
func ConstantRate(cfg ConstantRateConfig) graph.EventList {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events graph.EventList
	for i := 1; i <= cfg.G0Nodes; i++ {
		events = append(events, graph.Event{Type: graph.AddNode, At: 0, Node: graph.NodeID(i)})
	}
	type liveEdge struct {
		id   graph.EdgeID
		info graph.EdgeInfo
	}
	var live []liveEdge
	nextEdge := graph.EdgeID(0)
	addEdge := func(at graph.Time) {
		u := graph.NodeID(rng.Intn(cfg.G0Nodes) + 1)
		v := graph.NodeID(rng.Intn(cfg.G0Nodes) + 1)
		if u == v {
			v = graph.NodeID(int(v)%cfg.G0Nodes + 1)
		}
		nextEdge++
		live = append(live, liveEdge{nextEdge, graph.EdgeInfo{From: u, To: v}})
		events = append(events, graph.Event{Type: graph.AddEdge, At: at, Edge: nextEdge, Node: u, Node2: v})
	}
	for e := 0; e < cfg.G0Edges; e++ {
		addEdge(0)
	}
	for i := 1; i <= cfg.Events; i++ {
		at := graph.Time(i)
		r := rng.Float64()
		switch {
		case r < cfg.DeltaStar:
			addEdge(at)
		case r < cfg.DeltaStar+cfg.RhoStar && len(live) > 0:
			j := rng.Intn(len(live))
			e := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			events = append(events, graph.Event{Type: graph.DelEdge, At: at, Edge: e.id, Node: e.info.From, Node2: e.info.To})
		default:
			u := graph.NodeID(rng.Intn(cfg.G0Nodes) + 1)
			events = append(events, graph.Event{Type: graph.TransientEdge, At: at, Edge: graph.EdgeID(1<<40) + graph.EdgeID(i), Node: u, Node2: u})
		}
	}
	return events
}

// The live-edge and node slices are rebuilt from maps, whose iteration
// order is randomized per process; sorting restores seed-determinism.
func sortNodeIDs(ids []graph.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
