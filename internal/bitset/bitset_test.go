package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	var b Bits
	if b.Get(0) || b.Any() {
		t.Fatal("zero value must be empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(200)
	for _, i := range []int{0, 63, 64, 200} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(199) {
		t.Error("unset bit reads set")
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Get(64) {
		t.Error("Clear failed")
	}
	b.Clear(100000) // beyond length: no-op
	if b.Count() != 3 {
		t.Errorf("Count after clear = %d", b.Count())
	}
}

func TestSetTo(t *testing.T) {
	var b Bits
	b.SetTo(5, true)
	if !b.Get(5) {
		t.Error("SetTo(true) failed")
	}
	b.SetTo(5, false)
	if b.Get(5) {
		t.Error("SetTo(false) failed")
	}
}

func TestAnyExcept(t *testing.T) {
	var b Bits
	b.Set(3)
	if b.AnyExcept(3) {
		t.Error("AnyExcept(3) with only bit 3 set")
	}
	if !b.AnyExcept(2) {
		t.Error("AnyExcept(2) should see bit 3")
	}
	b.Set(100)
	if !b.AnyExcept(3) {
		t.Error("AnyExcept(3) should see bit 100")
	}
	if b.AnyExcept(3, 100) {
		t.Error("AnyExcept(3,100) should be false")
	}
}

func TestCloneIndependent(t *testing.T) {
	var b Bits
	b.Set(7)
	c := b.Clone()
	c.Set(8)
	if b.Get(8) {
		t.Error("clone shares storage")
	}
	if !c.Get(7) {
		t.Error("clone lost bit")
	}
}

func TestClearAllAndString(t *testing.T) {
	var b Bits
	b.Set(0)
	b.Set(65)
	if got := b.String(); got != "{0,65}" {
		t.Errorf("String = %q", got)
	}
	b.ClearAll()
	if b.Any() {
		t.Error("ClearAll left bits")
	}
	if got := b.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestSizeBytes(t *testing.T) {
	var b Bits
	if b.SizeBytes() != 0 {
		t.Error("empty bitset should report 0 bytes")
	}
	b.Set(200)
	if b.SizeBytes() != 4*8 {
		t.Errorf("SizeBytes = %d, want 32", b.SizeBytes())
	}
}

// Property: a Bits behaves exactly like a map[int]bool under a random
// operation sequence.
func TestBitsMatchesMapModel(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var b Bits
		model := map[int]bool{}
		for i := 0; i < int(n)+10; i++ {
			bit := rng.Intn(300)
			switch rng.Intn(3) {
			case 0:
				b.Set(bit)
				model[bit] = true
			case 1:
				b.Clear(bit)
				delete(model, bit)
			case 2:
				if b.Get(bit) != model[bit] {
					return false
				}
			}
		}
		count := 0
		for range model {
			count++
		}
		return b.Count() == count
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
