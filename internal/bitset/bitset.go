// Package bitset provides the small dynamic bitset used by GraphPool to
// track, per graph element, which of the active graphs contain it
// (Section 6 of the paper). The zero value is an empty bitset ready to use.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Bits is a growable bitmap. The zero value has all bits clear.
type Bits struct {
	words []uint64
}

// Set sets bit i, growing the bitmap if needed.
func (b *Bits) Set(i int) {
	w := i / wordBits
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (i % wordBits)
}

// Clear clears bit i. Clearing a bit beyond the current length is a no-op.
func (b *Bits) Clear(i int) {
	w := i / wordBits
	if w < len(b.words) {
		b.words[w] &^= 1 << (i % wordBits)
	}
}

// Get reports whether bit i is set.
func (b *Bits) Get(i int) bool {
	w := i / wordBits
	return w < len(b.words) && b.words[w]&(1<<(i%wordBits)) != 0
}

// SetTo sets bit i to v.
func (b *Bits) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Any reports whether any bit is set.
func (b *Bits) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AnyExcept reports whether any bit other than the listed ones is set.
func (b *Bits) AnyExcept(except ...int) bool {
	var mask Bits
	for _, i := range except {
		mask.Set(i)
	}
	for wi, w := range b.words {
		m := uint64(0)
		if wi < len(mask.words) {
			m = mask.words[wi]
		}
		if w&^m != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b *Bits) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ClearAll clears every bit, retaining capacity.
func (b *Bits) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns a copy of the bitset.
func (b *Bits) Clone() Bits {
	c := Bits{words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// SizeBytes returns the approximate heap footprint of the bitset payload;
// GraphPool's memory accounting uses it.
func (b *Bits) SizeBytes() int { return len(b.words) * 8 }

// String renders the set bits as e.g. "{0,3,17}".
func (b *Bits) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !first {
				sb.WriteByte(',')
			}
			first = false
			sb.WriteString(strconv.Itoa(wi*wordBits + bit))
			w &^= 1 << bit
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
