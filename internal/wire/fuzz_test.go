package wire

// FuzzWireRoundTrip: derive a response struct from the fuzz input, assert
// binary decode(encode(x)) == x exactly, and throw the raw input at the
// decoder for every message type to shake out panics and allocation
// bombs. Run with:
//
//	go test ./internal/wire -fuzz FuzzWireRoundTrip

import (
	"bytes"
	"reflect"
	"testing"
)

// structGen deterministically consumes fuzz bytes to build wire structs.
type structGen struct {
	data []byte
	pos  int
}

func (g *structGen) byte() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *structGen) i64() int64 {
	v := int64(0)
	for i := 0; i < 8; i++ {
		v = v<<8 | int64(g.byte())
	}
	return v
}

func (g *structGen) n(max int) int { return int(g.byte()) % max }

func (g *structGen) str() string {
	n := g.n(12)
	if g.pos+n > len(g.data) {
		n = len(g.data) - g.pos
	}
	s := string(g.data[g.pos : g.pos+n])
	g.pos += n
	return s
}

func (g *structGen) attrs() map[string]string {
	switch g.byte() % 3 {
	case 0:
		return nil
	case 1:
		return map[string]string{}
	default:
		m := make(map[string]string)
		for i, k := 0, g.n(4); i < k; i++ {
			m[g.str()] = g.str()
		}
		return m
	}
}

func (g *structGen) nodes() []Node {
	if g.byte()%4 == 0 {
		return nil
	}
	out := make([]Node, 0, 4)
	for i, k := 0, g.n(5); i < k; i++ {
		out = append(out, Node{ID: g.i64(), Attrs: g.attrs()})
	}
	return out
}

func (g *structGen) edges() []Edge {
	if g.byte()%4 == 0 {
		return nil
	}
	out := make([]Edge, 0, 4)
	for i, k := 0, g.n(5); i < k; i++ {
		out = append(out, Edge{
			ID: g.i64(), From: g.i64(), To: g.i64(),
			Directed: g.byte()%2 == 1, Attrs: g.attrs(),
		})
	}
	return out
}

func (g *structGen) partial() []PartitionError {
	if g.byte()%3 == 0 {
		return nil
	}
	out := make([]PartitionError, 0, 3)
	for i, k := 0, g.n(4); i < k; i++ {
		out = append(out, PartitionError{Partition: g.n(16), Status: g.n(600), Error: g.str()})
	}
	return out
}

func (g *structGen) events() []Event {
	if g.byte()%4 == 0 {
		return nil
	}
	out := make([]Event, 0, 4)
	for i, k := 0, g.n(5); i < k; i++ {
		ev := Event{
			Type: g.str(), At: g.i64(), Node: g.i64(), Node2: g.i64(),
			Edge: g.i64(), Directed: g.byte()%2 == 1, Attr: g.str(),
		}
		if g.byte()%2 == 1 {
			s := g.str()
			ev.Old = &s
		}
		if g.byte()%2 == 1 {
			s := g.str()
			ev.New = &s
		}
		out = append(out, ev)
	}
	return out
}

func (g *structGen) snapshot() Snapshot {
	return Snapshot{
		At: g.i64(), NumNodes: g.n(1 << 16), NumEdges: g.n(1 << 16),
		Cached: g.byte()%2 == 1, Coalesced: g.byte()%2 == 1,
		Nodes: g.nodes(), Edges: g.edges(), Partial: g.partial(),
	}
}

func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("deltagraph"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	seed, _ := Binary{}.Encode(&Snapshot{At: 3, NumNodes: 1, Nodes: []Node{{ID: 1}}})
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		g := &structGen{data: data}
		var in, out any
		switch g.byte() % 6 {
		case 0:
			s := g.snapshot()
			in, out = &s, &Snapshot{}
		case 1:
			batch := make([]Snapshot, 0, 3)
			for i, k := 0, g.n(4); i < k; i++ {
				batch = append(batch, g.snapshot())
			}
			in, out = batch, &[]Snapshot{}
		case 2:
			nb := Neighbors{At: g.i64(), Node: g.i64(), Degree: g.n(1 << 16), Cached: g.byte()%2 == 1, Partial: g.partial()}
			if g.byte()%4 != 0 {
				nb.Neighbors = make([]int64, 0, 4)
				for i, k := 0, g.n(6); i < k; i++ {
					nb.Neighbors = append(nb.Neighbors, g.i64())
				}
			}
			in, out = &nb, &Neighbors{}
		case 3:
			iv := Interval{
				Start: g.i64(), End: g.i64(), NumNodes: g.n(1 << 16), NumEdges: g.n(1 << 16),
				Nodes: g.nodes(), Edges: g.edges(), Transients: g.events(), Partial: g.partial(),
			}
			in, out = &iv, &Interval{}
		case 4:
			ar := AppendResult{
				Appended: g.n(1 << 16), LastTime: g.i64(), Invalidated: g.n(1 << 16),
				Seq: uint64(g.i64()), Deduped: g.byte()%2 == 1, Partial: g.partial(),
			}
			in, out = &ar, &AppendResult{}
		default:
			evs := g.events()
			in, out = evs, &[]Event{}
		}
		enc, err := Binary{}.Encode(in)
		if err != nil {
			t.Fatalf("encode %T: %v", in, err)
		}
		if err := (Binary{}).Decode(enc, out); err != nil {
			t.Fatalf("decode %T: %v (input %#v)", out, err, in)
		}
		// Compare pointee to pointee ([]T inputs are passed by value).
		want := in
		if rv := reflect.ValueOf(in); rv.Kind() == reflect.Ptr {
			want = rv.Elem().Interface()
		}
		got := reflect.ValueOf(out).Elem().Interface()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("roundtrip mismatch\n got: %#v\nwant: %#v", got, want)
		}

		// Snapshots additionally round-trip through the chunked stream
		// encoding, at a fuzz-chosen run size — boundaries must be
		// invisible and the assembled struct exact.
		if snap, ok := want.(Snapshot); ok {
			runSize := int(g.byte())%97 + 1
			var buf bytes.Buffer
			if err := EncodeSnapshotStream(&buf, &snap, runSize); err != nil {
				t.Fatalf("stream encode (run=%d): %v", runSize, err)
			}
			streamed, err := DecodeSnapshotStream(&buf)
			if err != nil {
				t.Fatalf("stream decode (run=%d): %v (input %#v)", runSize, err, snap)
			}
			// The stream form spells empty element lists as nil (zero run
			// frames either way); JSON output is identical for both.
			if len(snap.Nodes) == 0 {
				snap.Nodes = nil
			}
			if len(snap.Edges) == 0 {
				snap.Edges = nil
			}
			if !reflect.DeepEqual(*streamed, snap) {
				t.Fatalf("stream roundtrip mismatch (run=%d)\n got: %#v\nwant: %#v", runSize, *streamed, snap)
			}
		}

		// The decoder must survive arbitrary bytes for every target type.
		_ = (Binary{}).Decode(data, &Snapshot{})
		_ = (Binary{}).Decode(data, &[]Snapshot{})
		_ = (Binary{}).Decode(data, &Neighbors{})
		_ = (Binary{}).Decode(data, &Interval{})
		_ = (Binary{}).Decode(data, &AppendResult{})
		_ = (Binary{}).Decode(data, &[]Event{})
		_ = (Binary{}).Decode(data, &ExprRequest{})

		// So must the stream decoder — raw bytes, and raw bytes behind a
		// valid stream header (so corruption reaches the frame layer).
		if s, err := DecodeSnapshotStream(bytes.NewReader(data)); err == nil && s == nil {
			t.Fatal("stream decode returned nil snapshot without error")
		}
		framed := append([]byte{binaryMagic, binaryVersion, kindSnapshotStream}, data...)
		_, _ = DecodeSnapshotStream(bytes.NewReader(framed))
	})
}
