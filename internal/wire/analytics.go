package wire

// Analytics-plane wire shapes: the per-partition scan parts the workers
// answer, the merged responses the coordinator (or an unsharded server)
// serves, and the PageRank superstep exchange. The superstep bodies — the
// only analytics shapes on a per-iteration hot path — get binary kinds
// (0x09–0x0d); the rest ride the JSON fallback WriteWire provides for
// codec-unsupported types.
//
// Cross-partition adjacency pairs are the merge primitive: events are
// hash-routed by their From endpoint, so a pair of adjacent IDs whose
// endpoints hash to the same partition is visible only there (internal —
// counted locally), while a pair spanning two partitions may be stored at
// either or both (boundary — shipped explicitly and deduplicated by the
// coordinator). Pair lists are flattened [a0,b0,a1,b1,...] with a < b and
// pairs in ascending (a,b) order, which is what makes the delta coding
// below compact.

import (
	"encoding/binary"
	"math"
)

// Analytics message kind bytes (whole-message kinds 0x01–0x07 live in
// binary.go, the snapshot stream is 0x08).
const (
	kindPRPrepare    = 0x09
	kindPRPrepared   = 0x0a
	kindPRStart      = 0x0b
	kindPRStep       = 0x0c
	kindPRStepResult = 0x0d
)

// DegreePart is one partition's slice of a degree-distribution scan:
// every node this partition owns with its same-partition distinct
// neighbor count, plus the cross-partition pairs whose +1s the
// coordinator applies after global deduplication.
type DegreePart struct {
	At     int64   `json:"at"`
	Nodes  []int64 `json:"nodes"`           // owned node IDs, ascending
	Counts []int64 `json:"counts"`          // parallel: internal distinct-neighbor count
	Pairs  []int64 `json:"pairs,omitempty"` // flattened cross-partition pairs
	Cached bool    `json:"cached,omitempty"`
}

// ComponentsPart is one partition's slice of a connected-components scan:
// a local union-find label per owned node (connectivity through
// same-partition pairs only) plus the cross-partition pairs the
// coordinator's global union-find stitches sets together with.
type ComponentsPart struct {
	At     int64   `json:"at"`
	Nodes  []int64 `json:"nodes"`  // owned node IDs, ascending
	Labels []int64 `json:"labels"` // parallel: local component representative
	Pairs  []int64 `json:"pairs,omitempty"`
	Cached bool    `json:"cached,omitempty"`
}

// EvolutionPart is one partition's evolution counters between two
// timepoints. Element histories are confined to their owner partition, so
// the counters sum exactly across partitions.
type EvolutionPart struct {
	T1           int64 `json:"t1"`
	T2           int64 `json:"t2"`
	NodesT1      int64 `json:"nodes_t1"`
	NodesT2      int64 `json:"nodes_t2"`
	EdgesT1      int64 `json:"edges_t1"`
	EdgesT2      int64 `json:"edges_t2"`
	NodesAdded   int64 `json:"nodes_added"`
	NodesRemoved int64 `json:"nodes_removed"`
	EdgesAdded   int64 `json:"edges_added"`
	EdgesRemoved int64 `json:"edges_removed"`
	Cached       bool  `json:"cached,omitempty"`
}

// DegreeDist answers GET /analytics/degree: the distribution of distinct-
// neighbor degrees over every node of the snapshot (zero-degree nodes
// included). Degrees/Counts is the sparse histogram, ascending by degree.
type DegreeDist struct {
	At        int64            `json:"at"`
	NumNodes  int64            `json:"num_nodes"`
	MaxDegree int64            `json:"max_degree"`
	AvgDegree float64          `json:"avg_degree"`
	Degrees   []int64          `json:"degrees,omitempty"`
	Counts    []int64          `json:"counts,omitempty"`
	Cached    bool             `json:"cached,omitempty"`
	Coalesced bool             `json:"coalesced,omitempty"`
	Partial   []PartitionError `json:"partial,omitempty"`
}

// Components answers GET /analytics/components: component count and the
// size distribution (Sizes/Counts sparse histogram, ascending by size).
// Representatives are union-find-order dependent and deliberately not
// part of the response — the canonical outputs here are what a sharded
// and an unsharded run agree on byte for byte.
type Components struct {
	At            int64            `json:"at"`
	NumNodes      int64            `json:"num_nodes"`
	NumComponents int64            `json:"num_components"`
	Largest       int64            `json:"largest,omitempty"`
	Sizes         []int64          `json:"sizes,omitempty"`
	Counts        []int64          `json:"counts,omitempty"`
	Cached        bool             `json:"cached,omitempty"`
	Coalesced     bool             `json:"coalesced,omitempty"`
	Partial       []PartitionError `json:"partial,omitempty"`
}

// Evolution answers GET /analytics/evolution: set-difference counters
// between the snapshots at t1 and t2.
type Evolution struct {
	T1           int64            `json:"t1"`
	T2           int64            `json:"t2"`
	NodesT1      int64            `json:"nodes_t1"`
	NodesT2      int64            `json:"nodes_t2"`
	EdgesT1      int64            `json:"edges_t1"`
	EdgesT2      int64            `json:"edges_t2"`
	NodesAdded   int64            `json:"nodes_added"`
	NodesRemoved int64            `json:"nodes_removed"`
	EdgesAdded   int64            `json:"edges_added"`
	EdgesRemoved int64            `json:"edges_removed"`
	Cached       bool             `json:"cached,omitempty"`
	Coalesced    bool             `json:"coalesced,omitempty"`
	Partial      []PartitionError `json:"partial,omitempty"`
}

// PageRankRequest is the POST /analytics/pagerank body. Zero Damping,
// Iterations, and TopK pick the defaults (0.85, 20, 20). Wait makes the
// coordinator block until the job finishes and answer with the result
// (an unsharded server always computes synchronously).
type PageRankRequest struct {
	T          int64   `json:"t"`
	Attrs      string  `json:"attrs,omitempty"`
	Damping    float64 `json:"damping,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	TopK       int     `json:"topk,omitempty"`
	Wait       bool    `json:"wait,omitempty"`
}

// RankEntry is one node's PageRank score.
type RankEntry struct {
	Node  int64   `json:"node"`
	Score float64 `json:"score"`
}

// PageRankResult is a finished PageRank computation: the top-K scores by
// descending score (ties broken by ascending node ID).
type PageRankResult struct {
	At         int64       `json:"at"`
	NumNodes   int64       `json:"num_nodes"`
	Damping    float64     `json:"damping"`
	Iterations int         `json:"iterations"`
	Supersteps int         `json:"supersteps,omitempty"`
	Top        []RankEntry `json:"top,omitempty"`
}

// JobStatus describes one coordinator analytics job (GET
// /analytics/jobs/{id}). State is "running", "done", or "failed"; Result
// is present once done.
type JobStatus struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	State  string          `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result *PageRankResult `json:"result,omitempty"`
}

// PRPrepare opens a PageRank job on one partition worker: pin the
// snapshot, report the owned vertex count and the cross-partition pairs.
type PRPrepare struct {
	Job     string  `json:"job"`
	T       int64   `json:"t"`
	Attrs   string  `json:"attrs,omitempty"`
	Parts   int     `json:"parts"`
	Self    int     `json:"self"`
	Damping float64 `json:"damping"`
}

// PRPrepared answers PRPrepare.
type PRPrepared struct {
	Job   string  `json:"job"`
	Nodes int64   `json:"nodes"`
	Pairs []int64 `json:"pairs,omitempty"`
}

// PRStart finishes job setup once the coordinator has gathered every
// partition's pairs: the global vertex count and the ghost pairs (cross-
// partition adjacency discovered on other partitions) this worker folds
// into its vertices' neighbor lists.
type PRStart struct {
	Job    string  `json:"job"`
	N      int64   `json:"n"`
	Ghosts []int64 `json:"ghosts,omitempty"`
}

// PRMessage carries one frontier share: Val is added into Node's
// accumulating next-round rank on the partition that owns Node.
type PRMessage struct {
	Node int64   `json:"node"`
	Val  float64 `json:"val"`
}

// PRStepRequest drives one worker superstep. Finalize closes the pending
// round first (fold Inbox into the local accumulator and commit ranks);
// Compute then scatters shares from the committed ranks, returning the
// cross-partition ones. The last step sets Compute false and TopK to
// collect the partition's result and release the job.
type PRStepRequest struct {
	Job      string      `json:"job"`
	Finalize bool        `json:"finalize,omitempty"`
	Compute  bool        `json:"compute,omitempty"`
	TopK     int         `json:"topk,omitempty"`
	Inbox    []PRMessage `json:"inbox,omitempty"`
}

// PRStepResult answers PRStepRequest: outgoing cross-partition shares
// (aggregated per target node, ascending by node) while computing, or the
// partition's top-K and vertex count on the collecting step.
type PRStepResult struct {
	Out      []PRMessage `json:"out,omitempty"`
	NumNodes int64       `json:"num_nodes,omitempty"`
	Top      []RankEntry `json:"top,omitempty"`
}

// --- binary bodies ----------------------------------------------------

// Floats are fixed 8-byte little-endian IEEE 754: rank shares use the
// whole mantissa, so varint coding would only add length bytes.

func encodeFloat(e *Encoder, f float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	e.Raw(b[:])
}

func decodeFloat(d *Decoder) float64 {
	var b [8]byte
	for i := range b {
		b[i] = d.Byte()
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// encodePairs writes a flattened ascending pair list: a's delta-coded
// across pairs, b's delta-coded against their own a.
func encodePairs(e *Encoder, pairs []int64) {
	encodeList(e, len(pairs)/2, pairs == nil, func(i int) {
		prev := int64(0)
		if i > 0 {
			prev = pairs[2*(i-1)]
		}
		e.Varint(pairs[2*i] - prev)
		e.Varint(pairs[2*i+1] - pairs[2*i])
	})
}

func decodePairs(d *Decoder) []int64 {
	n, present := decodeList(d)
	if !present {
		return nil
	}
	out := make([]int64, 0, 2*n)
	prev := int64(0)
	for i := 0; i < n && d.Err() == nil; i++ {
		prev += d.Varint()
		out = append(out, prev, prev+d.Varint())
	}
	return out
}

// encodeMsgs writes a share list (ascending by node, so delta-coded).
func encodeMsgs(e *Encoder, msgs []PRMessage) {
	prev := int64(0)
	encodeList(e, len(msgs), msgs == nil, func(i int) {
		e.Varint(msgs[i].Node - prev)
		prev = msgs[i].Node
		encodeFloat(e, msgs[i].Val)
	})
}

func decodeMsgs(d *Decoder) []PRMessage {
	n, present := decodeList(d)
	if !present {
		return nil
	}
	out := make([]PRMessage, 0, n)
	prev := int64(0)
	for i := 0; i < n && d.Err() == nil; i++ {
		prev += d.Varint()
		out = append(out, PRMessage{Node: prev, Val: decodeFloat(d)})
	}
	return out
}

func encodeRanks(e *Encoder, top []RankEntry) {
	encodeList(e, len(top), top == nil, func(i int) {
		e.Varint(top[i].Node)
		encodeFloat(e, top[i].Score)
	})
}

func decodeRanks(d *Decoder) []RankEntry {
	n, present := decodeList(d)
	if !present {
		return nil
	}
	out := make([]RankEntry, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, RankEntry{Node: d.Varint(), Score: decodeFloat(d)})
	}
	return out
}

func encodePRPrepare(e *Encoder, r *PRPrepare) {
	e.String(r.Job)
	e.Varint(r.T)
	e.String(r.Attrs)
	e.Varint(int64(r.Parts))
	e.Varint(int64(r.Self))
	encodeFloat(e, r.Damping)
}

func decodePRPrepare(d *Decoder) PRPrepare {
	return PRPrepare{
		Job: d.String(), T: d.Varint(), Attrs: d.String(),
		Parts: int(d.Varint()), Self: int(d.Varint()), Damping: decodeFloat(d),
	}
}

func encodePRPrepared(e *Encoder, r *PRPrepared) {
	e.String(r.Job)
	e.Varint(r.Nodes)
	encodePairs(e, r.Pairs)
}

func decodePRPrepared(d *Decoder) PRPrepared {
	return PRPrepared{Job: d.String(), Nodes: d.Varint(), Pairs: decodePairs(d)}
}

func encodePRStart(e *Encoder, r *PRStart) {
	e.String(r.Job)
	e.Varint(r.N)
	encodePairs(e, r.Ghosts)
}

func decodePRStart(d *Decoder) PRStart {
	return PRStart{Job: d.String(), N: d.Varint(), Ghosts: decodePairs(d)}
}

func encodePRStep(e *Encoder, r *PRStepRequest) {
	e.String(r.Job)
	e.Bool(r.Finalize)
	e.Bool(r.Compute)
	e.Varint(int64(r.TopK))
	encodeMsgs(e, r.Inbox)
}

func decodePRStep(d *Decoder) PRStepRequest {
	return PRStepRequest{
		Job: d.String(), Finalize: d.Bool(), Compute: d.Bool(),
		TopK: int(d.Varint()), Inbox: decodeMsgs(d),
	}
}

func encodePRStepResult(e *Encoder, r *PRStepResult) {
	encodeMsgs(e, r.Out)
	e.Varint(r.NumNodes)
	encodeRanks(e, r.Top)
}

func decodePRStepResult(d *Decoder) PRStepResult {
	return PRStepResult{Out: decodeMsgs(d), NumNodes: d.Varint(), Top: decodeRanks(d)}
}
