package wire

// The streaming ingest encoding: a long-lived POST /append?stream=1 body
// carrying many event batches as length-prefixed binary frames, so a
// writer pays one HTTP round trip per *connection* instead of one per
// batch. The framing mirrors the chunked snapshot stream:
//
//	stream  := 'D' version kindAppendStream frame*
//	frame   := uvarint(len) body           ; len counts the body bytes
//	body    := frameAppendEvents | frameAppendEnd
//
//	frameAppendEvents := 0x01 string(batch) uvarint(count) event*
//	frameAppendEnd    := 0x0F uvarint(frames)
//
// Events use the exact encoding of the whole-message codec
// (EncodeEventTo); the attribute/type intern table carries across frames,
// so a long stream pays the key bytes once. Each event frame is one
// append batch: the receiver admits it atomically, under its own
// idempotency batch ID (empty for untagged appends), exactly as if it had
// arrived as its own POST /append?batch= request. The end frame carries
// the event-frame count and terminates the stream — a reader that hits
// EOF before it has seen a truncated stream (the writer died mid-send)
// and must report the data it admitted rather than pretend completeness.
//
// Acks are windowed, not per-frame: HTTP/1.1 gives the client no
// full-duplex response reading while it still writes the request, so the
// server bounds how many admitted-but-unsettled frames it will read ahead
// (its stream window) and otherwise simply stops reading — TCP backpressure
// is the flow control — then answers one aggregated AppendResult after the
// end frame.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// kindAppendStream frames a streaming ingest body (whole-message kinds
// stop at kindExprRequest; 0x08 is the snapshot stream, 0x09-0x0d the
// PageRank plane).
const kindAppendStream = 0x0e

// Append-stream frame type bytes.
const (
	frameAppendEvents = 0x01
	frameAppendEnd    = 0x0F
)

// ContentTypeAppendStream is the MIME type of a streaming ingest request
// body. It extends ContentTypeBinary textually, like the snapshot stream
// type, so content-type routing that substring-matches the binary type
// still classifies the bytes as the binary family.
const ContentTypeAppendStream = ContentTypeBinary + "-append-stream"

// AppendFrame is one decoded ingest frame: a batch of events under an
// optional idempotency ID.
type AppendFrame struct {
	Batch  string
	Events []Event
}

// AppendStreamEncoder writes one streaming ingest body. Not safe for
// concurrent use; allocate one per connection. The frame buffer is reused
// across frames and the intern table persists stream-wide.
type AppendStreamEncoder struct {
	w          io.Writer
	enc        *Encoder
	frames     uint64
	headerDone bool
	done       bool
	scratch    [binary.MaxVarintLen64]byte
}

// NewAppendStreamEncoder returns an ingest-stream encoder over w. Nothing
// is written until the first frame.
func NewAppendStreamEncoder(w io.Writer) *AppendStreamEncoder {
	return &AppendStreamEncoder{w: w, enc: NewEncoder()}
}

// writeFrame flushes the scratch encoder's bytes as one length-prefixed
// frame, emitting the stream header first if this is the first frame.
func (e *AppendStreamEncoder) writeFrame() error {
	if !e.headerDone {
		if _, err := e.w.Write([]byte{binaryMagic, binaryVersion, kindAppendStream}); err != nil {
			return err
		}
		e.headerDone = true
	}
	body := e.enc.Bytes()
	n := binary.PutUvarint(e.scratch[:], uint64(len(body)))
	if _, err := e.w.Write(e.scratch[:n]); err != nil {
		return err
	}
	_, err := e.w.Write(body)
	e.enc.buf = e.enc.buf[:0] // reuse the frame buffer; keys persist
	return err
}

// Events writes one batch frame under the given idempotency ID (empty for
// an untagged append).
func (e *AppendStreamEncoder) Events(batch string, events []Event) error {
	if e.done {
		return fmt.Errorf("wire: append frame after end frame")
	}
	e.enc.Byte(frameAppendEvents)
	e.enc.String(batch)
	e.enc.Uvarint(uint64(len(events)))
	for i := range events {
		EncodeEventTo(e.enc, events[i])
	}
	e.frames++
	return e.writeFrame()
}

// End terminates the stream with the integrity frame. No frame may follow
// it.
func (e *AppendStreamEncoder) End() error {
	if e.done {
		return nil
	}
	e.enc.Byte(frameAppendEnd)
	e.enc.Uvarint(e.frames)
	if err := e.writeFrame(); err != nil {
		return err
	}
	e.done = true
	return nil
}

// AppendStreamDecoder reads a streaming ingest body frame by frame. Not
// safe for concurrent use.
type AppendStreamDecoder struct {
	r      *bufio.Reader
	keys   []string // intern table, carried across frames
	buf    []byte   // frame body scratch, reused
	events []Event  // element scratch, reused per frame
	frames uint64
	sawEnd bool
	err    error
}

// NewAppendStreamDecoder wraps r and consumes the stream header.
func NewAppendStreamDecoder(r io.Reader) (*AppendStreamDecoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var hdr [3]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: append stream header: %w", err)
	}
	if hdr[0] != binaryMagic || hdr[1] != binaryVersion || hdr[2] != kindAppendStream {
		return nil, fmt.Errorf("wire: not an append stream (header % x)", hdr)
	}
	return &AppendStreamDecoder{r: br}, nil
}

// Next returns the next batch frame. After the end frame it reports
// io.EOF; EOF from the underlying reader before the end frame means the
// writer died mid-stream and Next returns an error wrapping
// io.ErrUnexpectedEOF. The returned frame's event slice is scratch reused
// by the next call — consume (or copy) a frame before pulling the next.
func (d *AppendStreamDecoder) Next() (*AppendFrame, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.sawEnd {
		d.err = io.EOF
		return nil, io.EOF
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("wire: append stream truncated before end frame: %w", io.ErrUnexpectedEOF)
		}
		d.err = err
		return nil, err
	}
	if n == 0 || n > maxStreamFrame {
		d.err = fmt.Errorf("wire: append stream frame of %d bytes (max %d)", n, maxStreamFrame)
		return nil, d.err
	}
	if uint64(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	body := d.buf[:n]
	if _, err := io.ReadFull(d.r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("wire: append stream truncated inside a frame: %w", io.ErrUnexpectedEOF)
		}
		d.err = err
		return nil, err
	}
	frame, err := d.decodeFrame(body)
	if err != nil {
		d.err = err
		return nil, err
	}
	if frame == nil { // end frame consumed
		d.err = io.EOF
		return nil, io.EOF
	}
	return frame, nil
}

// decodeFrame decodes one frame body, threading the stream-wide intern
// table. A nil, nil return means the end frame was consumed (and
// verified).
func (d *AppendStreamDecoder) decodeFrame(body []byte) (*AppendFrame, error) {
	dec := &Decoder{data: body, keys: d.keys}
	typ := dec.Byte()
	var out *AppendFrame
	switch typ {
	case frameAppendEvents:
		batch := dec.String()
		n := dec.Len()
		if cap(d.events) < n {
			d.events = make([]Event, 0, n)
		}
		events := d.events[:0]
		for i := 0; i < n && dec.Err() == nil; i++ {
			events = append(events, DecodeEventFrom(dec))
		}
		d.events = events
		d.frames++
		out = &AppendFrame{Batch: batch, Events: events}
	case frameAppendEnd:
		want := dec.Uvarint()
		if dec.Err() == nil && want != d.frames {
			return nil, fmt.Errorf("wire: append stream end frame declares %d frames, read %d", want, d.frames)
		}
		d.sawEnd = true
	default:
		return nil, fmt.Errorf("wire: unknown append stream frame type 0x%02x", typ)
	}
	d.keys = dec.keys
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if dec.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in append stream frame 0x%02x", dec.Remaining(), typ)
	}
	return out, nil
}
