package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func strp(s string) *string { return &s }

// sampleSnapshots covers the Snapshot shapes the handlers actually emit,
// plus the edge cases the binary format must preserve exactly: nil vs
// empty lists and maps, negative ids, unicode attribute values, partial
// partition errors.
func sampleSnapshots() []Snapshot {
	return []Snapshot{
		{},
		{At: 120, NumNodes: 3, NumEdges: 2},
		{At: -5, NumNodes: 1, Cached: true, Coalesced: true},
		{
			At: 999, NumNodes: 2, NumEdges: 1,
			Nodes: []Node{
				{ID: 1},
				{ID: 7, Attrs: map[string]string{"name": "ada", "rôle": "ingénieur"}},
			},
			Edges: []Edge{
				{ID: 3, From: 1, To: 7, Directed: true, Attrs: map[string]string{"w": "0.5"}},
			},
		},
		{
			At: 1, Nodes: []Node{}, Edges: []Edge{}, // empty but present
		},
		{
			At: 42, NumNodes: 10, NumEdges: 4,
			Partial: []PartitionError{
				{Partition: 2, Error: "connection refused"},
				{Partition: 3, Error: "rejected", Status: 422},
			},
		},
		{
			At: 7, Nodes: []Node{
				{ID: -100, Attrs: map[string]string{}},
				{ID: 0},
				{ID: 1 << 40},
			},
		},
	}
}

func sampleEvents() []Event {
	return []Event{
		{Type: "NN", At: 1, Node: 23},
		{Type: "NE", At: 2, Node: 23, Node2: 24, Edge: 5, Directed: true},
		{Type: "UNA", At: 3, Node: 23, Attr: "name", New: strp("ada")},
		{Type: "UNA", At: 4, Node: 23, Attr: "name", Old: strp("ada"), New: strp("")},
		{Type: "UEA", At: 5, Edge: 5, Attr: "w", Old: strp("0.5")},
		{Type: "TE", At: 6, Node: 1, Node2: 2, Edge: 1 << 41},
		{Type: "DN", At: -1, Node: -9},
	}
}

// roundTrip encodes v with the binary codec and decodes into out (a
// pointer), failing the test on error.
func roundTrip(t *testing.T, v any, out any) {
	t.Helper()
	data, err := Binary{}.Encode(v)
	if err != nil {
		t.Fatalf("binary encode %T: %v", v, err)
	}
	if err := (Binary{}).Decode(data, out); err != nil {
		t.Fatalf("binary decode %T: %v", v, err)
	}
}

func TestBinaryRoundTripSnapshot(t *testing.T) {
	for i, s := range sampleSnapshots() {
		var got Snapshot
		roundTrip(t, &s, &got)
		if !reflect.DeepEqual(got, s) {
			t.Errorf("snapshot %d: decode(encode(x)) != x\n got: %#v\nwant: %#v", i, got, s)
		}
	}
	// The whole set as a batch response.
	batch := sampleSnapshots()
	var got []Snapshot
	roundTrip(t, batch, &got)
	if !reflect.DeepEqual(got, batch) {
		t.Errorf("snapshot list roundtrip mismatch")
	}
}

func TestBinaryRoundTripNeighbors(t *testing.T) {
	for i, n := range []Neighbors{
		{},
		{At: 10, Node: 23, Degree: 3, Neighbors: []int64{1, 5, 9}},
		{At: 10, Node: 23, Neighbors: []int64{}, Cached: true},
		{At: -2, Node: -23, Degree: 1, Neighbors: []int64{-5},
			Partial: []PartitionError{{Partition: 0, Error: "x", Status: 502}}},
	} {
		var got Neighbors
		roundTrip(t, &n, &got)
		if !reflect.DeepEqual(got, n) {
			t.Errorf("neighbors %d: mismatch\n got: %#v\nwant: %#v", i, got, n)
		}
	}
}

func TestBinaryRoundTripEvents(t *testing.T) {
	evs := sampleEvents()
	var got []Event
	roundTrip(t, evs, &got)
	if !reflect.DeepEqual(got, evs) {
		t.Errorf("events mismatch\n got: %#v\nwant: %#v", got, evs)
	}
}

func TestBinaryRoundTripInterval(t *testing.T) {
	iv := Interval{
		Start: 100, End: 200, NumNodes: 2, NumEdges: 1,
		Nodes:      []Node{{ID: 4, Attrs: map[string]string{"a": "b"}}, {ID: 9}},
		Edges:      []Edge{{ID: 2, From: 4, To: 9}},
		Transients: sampleEvents(),
	}
	var got Interval
	roundTrip(t, &iv, &got)
	if !reflect.DeepEqual(got, iv) {
		t.Errorf("interval mismatch\n got: %#v\nwant: %#v", got, iv)
	}
}

func TestBinaryRoundTripAppendResult(t *testing.T) {
	ar := AppendResult{
		Appended: 17, LastTime: 12345, Invalidated: 3, Seq: 991, Deduped: true,
		Partial: []PartitionError{{Partition: 1, Error: "late", Status: 503}},
	}
	var got AppendResult
	roundTrip(t, &ar, &got)
	if !reflect.DeepEqual(got, ar) {
		t.Errorf("append result mismatch\n got: %#v\nwant: %#v", got, ar)
	}
}

func TestBinaryRoundTripExpr(t *testing.T) {
	req := ExprRequest{Times: []int64{100, 200, 150}, Expr: "(0 | 1) & !2", Attrs: "+node:all", Full: true}
	var got ExprRequest
	roundTrip(t, &req, &got)
	if !reflect.DeepEqual(got, req) {
		t.Errorf("expr mismatch\n got: %#v\nwant: %#v", got, req)
	}
}

// TestCrossCodecOracle is the codec-equivalence check: for every sample,
// a binary round trip and a JSON round trip must land on the same struct
// — a coordinator decoding a binary worker leg sees exactly what it would
// have seen decoding the JSON leg. Samples here are JSON-normal (no
// empty-but-non-nil lists, which JSON's omitempty cannot represent).
func TestCrossCodecOracle(t *testing.T) {
	samples := []any{
		&Snapshot{At: 999, NumNodes: 2, NumEdges: 1,
			Nodes: []Node{{ID: 1, Attrs: map[string]string{"k": "v"}}, {ID: 2}},
			Edges: []Edge{{ID: 3, From: 1, To: 2, Directed: true}},
		},
		&Snapshot{At: 10, NumNodes: 5, NumEdges: 16, Cached: true},
		&AppendResult{Appended: 4, LastTime: 99, Seq: 12},
	}
	for i, v := range samples {
		jdata, err := (JSON{}).Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		bdata, err := (Binary{}).Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		var jout, bout any
		switch v.(type) {
		case *Snapshot:
			jout, bout = &Snapshot{}, &Snapshot{}
		case *AppendResult:
			jout, bout = &AppendResult{}, &AppendResult{}
		}
		if err := (JSON{}).Decode(jdata, jout); err != nil {
			t.Fatal(err)
		}
		if err := (Binary{}).Decode(bdata, bout); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(jout, bout) {
			t.Errorf("sample %d: binary decode diverges from JSON decode\njson:   %#v\nbinary: %#v", i, jout, bout)
		}
		if len(bdata) >= len(jdata) {
			t.Logf("sample %d: binary (%d bytes) not smaller than JSON (%d bytes)", i, len(bdata), len(jdata))
		}
	}
}

// TestJSONEncodeMatchesEncoder pins the JSON codec to the historical
// json.Encoder output (trailing newline included) — the byte-identity
// oracle tests depend on it.
func TestJSONEncodeMatchesEncoder(t *testing.T) {
	s := Snapshot{At: 7, NumNodes: 1, NumEdges: 0, Cached: true}
	data, err := (JSON{}).Encode(&s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"at":7,"num_nodes":1,"num_edges":0,"cached":true}` + "\n"
	if string(data) != want {
		t.Fatalf("JSON codec drifted from json.Encoder output:\n got: %q\nwant: %q", data, want)
	}
}

func TestNegotiation(t *testing.T) {
	if c := Negotiate(""); c.Name() != NameJSON {
		t.Errorf("empty Accept negotiated %s", c.Name())
	}
	if c := Negotiate("*/*"); c.Name() != NameJSON {
		t.Errorf("*/* negotiated %s", c.Name())
	}
	if c := Negotiate(ContentTypeBinary); c.Name() != NameBinary {
		t.Errorf("binary Accept negotiated %s", c.Name())
	}
	if c := ForContentType(ContentTypeJSON + "; charset=utf-8"); c.Name() != NameJSON {
		t.Errorf("json content type resolved %s", c.Name())
	}
	if c := ForContentType(ContentTypeBinary); c.Name() != NameBinary {
		t.Errorf("binary content type resolved %s", c.Name())
	}
	for name, want := range map[string]string{
		"": NameJSON, "json": NameJSON, "binary": NameBinary, "bin": NameBinary,
	} {
		c, err := ByName(name)
		if err != nil || c.Name() != want {
			t.Errorf("ByName(%q) = %v, %v; want %s", name, c, err, want)
		}
	}
	if _, err := ByName("msgpack"); err == nil {
		t.Error("ByName accepted an unknown codec")
	}
}

// TestBinaryRejectsCorrupt feeds truncations and bit flips of a valid
// message into the decoder: every one must fail cleanly (error, no
// panic) or decode without touching memory it should not.
func TestBinaryRejectsCorrupt(t *testing.T) {
	s := sampleSnapshots()[3]
	data, err := Binary{}.Encode(&s)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		var out Snapshot
		_ = (Binary{}).Decode(data[:cut], &out) // must not panic
	}
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0xff
		var out Snapshot
		_ = (Binary{}).Decode(mut, &out) // must not panic
	}
	if err := (Binary{}).Decode(data, &Neighbors{}); err == nil {
		t.Error("kind mismatch not rejected")
	}
	if _, err := (Binary{}).Encode(map[string]int{"no": 1}); err == nil {
		t.Error("unsupported type not rejected")
	}
}

// TestInterning asserts the size win interning is there for: a snapshot
// whose nodes repeat the same attribute keys should not pay per-node for
// the key strings.
func TestInterning(t *testing.T) {
	many := Snapshot{At: 1, NumNodes: 200}
	for i := 0; i < 200; i++ {
		many.Nodes = append(many.Nodes, Node{
			ID:    int64(i),
			Attrs: map[string]string{"affiliation_long_key_name": "x", "department_long_key_name": "y"},
		})
	}
	bdata, err := Binary{}.Encode(&many)
	if err != nil {
		t.Fatal(err)
	}
	jdata, err := JSON{}.Encode(&many)
	if err != nil {
		t.Fatal(err)
	}
	if len(bdata)*3 > len(jdata) {
		t.Errorf("binary %d bytes vs JSON %d bytes: expected at least 3x smaller on repeated keys", len(bdata), len(jdata))
	}
	var got Snapshot
	if err := (Binary{}).Decode(bdata, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, many) {
		t.Error("interned snapshot did not round-trip")
	}
}
