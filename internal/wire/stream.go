package wire

// The streaming form of the binary snapshot encoding: element-run
// chunking. A whole-message binary snapshot ('D' ver kindSnapshot body)
// must be materialized fully — all nodes, all edges, one contiguous
// buffer — before the first byte is written. The stream form cuts the
// same body into a sequence of bounded *element runs* so a server can
// write (and a client consume) a snapshot of any size with memory
// proportional to one run:
//
//	stream  := 'D' version kindSnapshotStream frame*
//	frame   := uvarint(len) body           ; len counts the body bytes
//	body    := frameNodes | frameEdges | frameSummary
//
//	frameNodes   := 0x01 uvarint(count) node*   ; delta/intern state
//	frameEdges   := 0x02 uvarint(count) edge*   ;   carries across frames
//	frameSummary := 0x0F at num_nodes num_edges cached coalesced partial
//
// Node and edge elements use the exact encoding of the whole-message
// codec. ID delta-coding and the attribute-key intern table do NOT reset
// between frames — a run boundary costs only the frame header, so the
// stream body is within a few bytes per run of the whole-message body.
// Frames arrive in phase order: every node run precedes every edge run,
// and the summary frame terminates the stream. A reader that hits EOF
// before the summary frame has seen a truncated stream (for example a
// worker that died mid-response) and must treat the data as incomplete —
// the summary frame doubles as the integrity marker.
//
// The summary carries the element counts and response flags at the END
// of the stream (not the start) so a producer can stream a merge whose
// membership it only learns as upstream runs arrive — the shard
// coordinator merges N worker streams this way.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// kindSnapshotStream frames a chunked snapshot stream (see package
// overview; whole-message kinds stop at kindExprRequest).
const kindSnapshotStream = 0x08

// Stream frame type bytes.
const (
	frameNodes   = 0x01
	frameEdges   = 0x02
	frameSummary = 0x0F
)

// ContentTypeBinaryStream is the MIME type of a chunked snapshot stream,
// and the Accept value that requests one. It extends ContentTypeBinary
// textually, so a pre-streaming server that substring-matches the binary
// type in Accept answers whole-message binary — a streaming client
// degrades gracefully against any older server.
const ContentTypeBinaryStream = ContentTypeBinary + "-stream"

// NameBinaryStream is the short name of the streaming encoding ("stream")
// — what cache keys, flags, and stats use. It is not a Codec: a stream is
// produced and consumed incrementally, not through Encode/Decode.
const NameBinaryStream = "stream"

// DefaultRunSize is how many elements one stream frame carries when the
// producer does not choose otherwise. Peak encode memory is proportional
// to this, so it trades per-frame overhead (a few bytes) against the
// memory bound.
const DefaultRunSize = 2048

// maxStreamFrame bounds one frame's declared body length; a corrupt or
// hostile length prefix fails decode instead of forcing a giant
// allocation. Generous: a DefaultRunSize run of attribute-heavy elements
// is well under 1 MiB.
const maxStreamFrame = 1 << 26

// MaxCachedBody bounds the size of one response body an encoded-bytes
// cache (worker or coordinator) will capture off a stream. Without a
// cap, teeing a pathologically large stream into a cache buffer would
// re-materialize in memory exactly what streaming exists to avoid.
const MaxCachedBody = 8 << 20

// CappedBuffer tees stream bytes into memory for an encoded-bytes cache,
// giving up (and freeing what it held) once the body exceeds Max. Write
// never fails: a capture problem must not break the live response the
// buffer is teed off.
type CappedBuffer struct {
	Max      int
	buf      []byte
	overflow bool
}

// Write implements io.Writer.
func (b *CappedBuffer) Write(p []byte) (int, error) {
	if !b.overflow {
		if len(b.buf)+len(p) > b.Max {
			b.overflow = true
			b.buf = nil
		} else {
			b.buf = append(b.buf, p...)
		}
	}
	return len(p), nil
}

// Bytes returns the captured body and whether it is complete (false once
// the cap was exceeded — the partial capture is already discarded).
func (b *CappedBuffer) Bytes() ([]byte, bool) {
	if b.overflow {
		return nil, false
	}
	return b.buf, true
}

// WantsStream reports whether an Accept header asks for the chunked
// snapshot stream. Only the full /snapshot data plane honors it;
// endpoints without a streamable shape fall back to Negotiate's answer.
func WantsStream(accept string) bool {
	return strings.Contains(accept, ContentTypeBinaryStream)
}

// IsStreamContentType reports whether a response body is a chunked
// snapshot stream. Check it before ForContentType: the stream MIME type
// extends the binary one, so prefix-matching the binary type alone would
// misroute stream bodies into the whole-message decoder.
func IsStreamContentType(ct string) bool {
	return strings.Contains(ct, ContentTypeBinaryStream)
}

// StreamEncoder writes one chunked snapshot stream. Not safe for
// concurrent use; allocate one per response. The frame buffer is reused
// across runs, so encoding an arbitrarily large snapshot allocates
// proportionally to the largest single run.
type StreamEncoder struct {
	w          io.Writer
	enc        *Encoder // frame body scratch; keys intern stream-wide
	prevNode   int64    // node ID delta state, carried across frames
	prevEdge   int64    // edge ID delta state, carried across frames
	headerDone bool
	done       bool
	scratch    [binary.MaxVarintLen64]byte
}

// NewStreamEncoder returns a stream encoder over w. Nothing is written
// until the first frame (so a handler can still fail cleanly before
// committing to a response).
func NewStreamEncoder(w io.Writer) *StreamEncoder {
	return &StreamEncoder{w: w, enc: NewEncoder()}
}

// writeFrame flushes the scratch encoder's bytes as one length-prefixed
// frame, emitting the stream header first if this is the first frame.
func (se *StreamEncoder) writeFrame() error {
	if se.done {
		return fmt.Errorf("wire: write after stream summary")
	}
	if !se.headerDone {
		if _, err := se.w.Write([]byte{binaryMagic, binaryVersion, kindSnapshotStream}); err != nil {
			return err
		}
		se.headerDone = true
	}
	body := se.enc.Bytes()
	n := binary.PutUvarint(se.scratch[:], uint64(len(body)))
	if _, err := se.w.Write(se.scratch[:n]); err != nil {
		return err
	}
	_, err := se.w.Write(body)
	se.enc.buf = se.enc.buf[:0] // reuse the frame buffer; keys persist
	return err
}

// Nodes writes one run of nodes. Runs must be globally sorted by ID
// across the whole stream (each run continues the previous run's delta
// coding), and every node run must precede the first edge run.
func (se *StreamEncoder) Nodes(run []Node) error {
	se.enc.Byte(frameNodes)
	se.enc.Uvarint(uint64(len(run)))
	for i := range run {
		se.enc.Varint(run[i].ID - se.prevNode)
		se.prevNode = run[i].ID
		encodeAttrs(se.enc, run[i].Attrs)
	}
	return se.writeFrame()
}

// Edges writes one run of edges, globally sorted by ID across the stream.
func (se *StreamEncoder) Edges(run []Edge) error {
	se.enc.Byte(frameEdges)
	se.enc.Uvarint(uint64(len(run)))
	for i := range run {
		ed := &run[i]
		se.enc.Varint(ed.ID - se.prevEdge)
		se.prevEdge = ed.ID
		se.enc.Varint(ed.From)
		se.enc.Varint(ed.To)
		se.enc.Bool(ed.Directed)
		encodeAttrs(se.enc, ed.Attrs)
	}
	return se.writeFrame()
}

// Summary terminates the stream with the response metadata: s's At,
// counts, flags and Partial list (its Nodes/Edges are ignored — they were
// the runs). No frame may follow it.
func (se *StreamEncoder) Summary(s *Snapshot) error {
	se.enc.Byte(frameSummary)
	se.enc.Varint(s.At)
	se.enc.Varint(int64(s.NumNodes))
	se.enc.Varint(int64(s.NumEdges))
	se.enc.Bool(s.Cached)
	se.enc.Bool(s.Coalesced)
	encodePartial(se.enc, s.Partial)
	if err := se.writeFrame(); err != nil {
		return err
	}
	se.done = true
	return nil
}

// EncodeSnapshotStream writes s as a chunked stream in runs of runSize
// elements (0 picks DefaultRunSize) — the whole-struct convenience
// producer, used where the snapshot already exists in memory (tests, the
// synthetic client fallback). Handlers that want the memory bound stream
// runs directly off their data source instead.
//
// One representational loss vs the whole-message codec: an empty element
// list and a nil one both produce zero run frames, so assembly yields nil
// for both. JSON output is unaffected (omitempty drops both spellings).
func EncodeSnapshotStream(w io.Writer, s *Snapshot, runSize int) error {
	if runSize <= 0 {
		runSize = DefaultRunSize
	}
	se := NewStreamEncoder(w)
	for lo := 0; lo < len(s.Nodes); lo += runSize {
		hi := min(lo+runSize, len(s.Nodes))
		if err := se.Nodes(s.Nodes[lo:hi]); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(s.Edges); lo += runSize {
		hi := min(lo+runSize, len(s.Edges))
		if err := se.Edges(s.Edges[lo:hi]); err != nil {
			return err
		}
	}
	return se.Summary(s)
}

// StreamFrame is one decoded frame: a node run, an edge run, or the
// terminating summary (exactly one field is populated).
type StreamFrame struct {
	Nodes   []Node
	Edges   []Edge
	Summary *Snapshot
}

// StreamDecoder reads a chunked snapshot stream frame by frame. Not safe
// for concurrent use.
type StreamDecoder struct {
	r        *bufio.Reader
	keys     []string // intern table, carried across frames
	prevNode int64
	prevEdge int64
	buf      []byte // frame body scratch, reused
	nodesBuf []Node // element scratch, reused per frame
	edgesBuf []Edge
	sawSum   bool
	err      error
}

// NewStreamDecoder wraps r and consumes the stream header. A reader whose
// first bytes are not a snapshot-stream header fails here, so a caller
// can still fall back to the whole-message decoder on the buffered bytes.
func NewStreamDecoder(r io.Reader) (*StreamDecoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var hdr [3]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: stream header: %w", err)
	}
	if hdr[0] != binaryMagic || hdr[1] != binaryVersion || hdr[2] != kindSnapshotStream {
		return nil, fmt.Errorf("wire: not a snapshot stream (header % x)", hdr)
	}
	return &StreamDecoder{r: br}, nil
}

// Next returns the next frame. After the summary frame has been returned,
// Next reports io.EOF. EOF from the underlying reader before the summary
// means the producer died mid-stream: Next returns an error (wrapping
// io.ErrUnexpectedEOF), never a silent short result.
//
// The returned frame's element slices are scratch reused by the next
// Next call — consume (or copy) a frame before pulling the next one.
// Appending the elements elsewhere copies them; only holding the slices
// themselves across calls aliases.
func (sd *StreamDecoder) Next() (*StreamFrame, error) {
	if sd.err != nil {
		return nil, sd.err
	}
	if sd.sawSum {
		sd.err = io.EOF
		return nil, io.EOF
	}
	n, err := binary.ReadUvarint(sd.r)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("wire: stream truncated before summary frame: %w", io.ErrUnexpectedEOF)
		}
		sd.err = err
		return nil, err
	}
	if n == 0 || n > maxStreamFrame {
		sd.err = fmt.Errorf("wire: stream frame of %d bytes (max %d)", n, maxStreamFrame)
		return nil, sd.err
	}
	if uint64(cap(sd.buf)) < n {
		sd.buf = make([]byte, n)
	}
	body := sd.buf[:n]
	if _, err := io.ReadFull(sd.r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("wire: stream truncated inside a frame: %w", io.ErrUnexpectedEOF)
		}
		sd.err = err
		return nil, err
	}
	frame, err := sd.decodeFrame(body)
	if err != nil {
		sd.err = err
		return nil, err
	}
	return frame, nil
}

// decodeFrame decodes one frame body, threading the stream-wide intern
// table and ID delta state through the per-frame Decoder.
func (sd *StreamDecoder) decodeFrame(body []byte) (*StreamFrame, error) {
	d := &Decoder{data: body, keys: sd.keys}
	typ := d.Byte()
	out := &StreamFrame{}
	switch typ {
	case frameNodes:
		n := d.Len()
		if cap(sd.nodesBuf) < n {
			sd.nodesBuf = make([]Node, 0, n)
		}
		nodes := sd.nodesBuf[:0]
		for i := 0; i < n && d.Err() == nil; i++ {
			sd.prevNode += d.Varint()
			nodes = append(nodes, Node{ID: sd.prevNode, Attrs: decodeAttrs(d)})
		}
		sd.nodesBuf, out.Nodes = nodes, nodes
	case frameEdges:
		n := d.Len()
		if cap(sd.edgesBuf) < n {
			sd.edgesBuf = make([]Edge, 0, n)
		}
		edges := sd.edgesBuf[:0]
		for i := 0; i < n && d.Err() == nil; i++ {
			sd.prevEdge += d.Varint()
			edges = append(edges, Edge{
				ID: sd.prevEdge, From: d.Varint(), To: d.Varint(),
				Directed: d.Bool(), Attrs: decodeAttrs(d),
			})
		}
		sd.edgesBuf, out.Edges = edges, edges
	case frameSummary:
		out.Summary = &Snapshot{
			At:       d.Varint(),
			NumNodes: int(d.Varint()),
			NumEdges: int(d.Varint()),
			Cached:   d.Bool(), Coalesced: d.Bool(),
			Partial: decodePartial(d),
		}
		sd.sawSum = true
	default:
		return nil, fmt.Errorf("wire: unknown stream frame type 0x%02x", typ)
	}
	sd.keys = d.keys
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in stream frame 0x%02x", d.Remaining(), typ)
	}
	return out, nil
}

// DecodeSnapshotStream consumes a whole stream from r and assembles the
// full Snapshot — the client-side convenience consumer. Incremental
// consumers (the shard coordinator's merge) drive StreamDecoder.Next
// themselves and never hold more than a run.
func DecodeSnapshotStream(r io.Reader) (*Snapshot, error) {
	sd, err := NewStreamDecoder(r)
	if err != nil {
		return nil, err
	}
	return sd.Collect()
}

// Collect drains the remaining frames into one assembled Snapshot: the
// summary frame's metadata with the concatenated node and edge runs.
func (sd *StreamDecoder) Collect() (*Snapshot, error) {
	var nodes []Node
	var edges []Edge
	for {
		frame, err := sd.Next()
		if err != nil {
			return nil, err
		}
		switch {
		case frame.Summary != nil:
			out := *frame.Summary
			out.Nodes, out.Edges = nodes, edges
			return &out, nil
		case frame.Nodes != nil:
			nodes = append(nodes, frame.Nodes...)
		case frame.Edges != nil:
			edges = append(edges, frame.Edges...)
		}
	}
}
