package wire

// The binary codec: a compact length-prefixed format for the data-plane
// bodies where JSON encode/decode dominates large-response latency.
//
// Message layout:
//
//	magic 'D' | version 0x01 | kind byte | body
//
// Body primitives (all integers are encoding/binary varints):
//
//	varint    zig-zag signed integer
//	uvarint   unsigned integer
//	bool      one byte, 0 or 1
//	string    uvarint length + raw bytes
//	key       interned string: uvarint ref; 0 = new key (string follows,
//	          appended to the message's key table), n = table[n-1]
//	list      presence byte (0 = nil — JSON's omitted field), else
//	          1 + uvarint count + elements
//	map       presence byte, uvarint count, (key, string) pairs in
//	          ascending key order (deterministic bytes)
//
// Element IDs are delta-coded against the previous element in the list
// (responses sort by ID, so deltas are small); attribute keys and event
// type/attr names are interned once per message. No field names are
// written at all — the kind byte plus position determines meaning.

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// binaryMagic and binaryVersion frame every binary message.
const (
	binaryMagic   = 'D'
	binaryVersion = 0x01
)

// Message kind bytes.
const (
	kindSnapshot     = 0x01
	kindSnapshotList = 0x02
	kindNeighbors    = 0x03
	kindInterval     = 0x04
	kindAppendResult = 0x05
	kindEventList    = 0x06
	kindExprRequest  = 0x07
)

// Binary is the compact codec. The zero value is ready to use.
type Binary struct{}

// Name implements Codec.
func (Binary) Name() string { return NameBinary }

// ContentType implements Codec.
func (Binary) ContentType() string { return ContentTypeBinary }

// Encode implements Codec.
func (Binary) Encode(v any) ([]byte, error) {
	e := NewEncoder()
	switch t := v.(type) {
	case *Snapshot:
		e.header(kindSnapshot)
		encodeSnapshot(e, t)
	case Snapshot:
		e.header(kindSnapshot)
		encodeSnapshot(e, &t)
	case []Snapshot:
		e.header(kindSnapshotList)
		e.Uvarint(uint64(len(t)))
		for i := range t {
			encodeSnapshot(e, &t[i])
		}
	case *Neighbors:
		e.header(kindNeighbors)
		encodeNeighbors(e, t)
	case Neighbors:
		e.header(kindNeighbors)
		encodeNeighbors(e, &t)
	case *Interval:
		e.header(kindInterval)
		encodeInterval(e, t)
	case Interval:
		e.header(kindInterval)
		encodeInterval(e, &t)
	case *AppendResult:
		e.header(kindAppendResult)
		encodeAppendResult(e, t)
	case AppendResult:
		e.header(kindAppendResult)
		encodeAppendResult(e, &t)
	case []Event:
		e.header(kindEventList)
		encodeList(e, len(t), t == nil, func(i int) { EncodeEventTo(e, t[i]) })
	case *ExprRequest:
		e.header(kindExprRequest)
		encodeExpr(e, t)
	case ExprRequest:
		e.header(kindExprRequest)
		encodeExpr(e, &t)
	case *PRPrepare:
		e.header(kindPRPrepare)
		encodePRPrepare(e, t)
	case PRPrepare:
		e.header(kindPRPrepare)
		encodePRPrepare(e, &t)
	case *PRPrepared:
		e.header(kindPRPrepared)
		encodePRPrepared(e, t)
	case PRPrepared:
		e.header(kindPRPrepared)
		encodePRPrepared(e, &t)
	case *PRStart:
		e.header(kindPRStart)
		encodePRStart(e, t)
	case PRStart:
		e.header(kindPRStart)
		encodePRStart(e, &t)
	case *PRStepRequest:
		e.header(kindPRStep)
		encodePRStep(e, t)
	case PRStepRequest:
		e.header(kindPRStep)
		encodePRStep(e, &t)
	case *PRStepResult:
		e.header(kindPRStepResult)
		encodePRStepResult(e, t)
	case PRStepResult:
		e.header(kindPRStepResult)
		encodePRStepResult(e, &t)
	default:
		return nil, fmt.Errorf("%w: %T (binary)", ErrUnsupported, v)
	}
	return e.Bytes(), nil
}

// Decode implements Codec.
func (Binary) Decode(data []byte, v any) error {
	d := NewDecoder(data)
	kind, err := d.Header()
	if err != nil {
		return err
	}
	switch t := v.(type) {
	case *Snapshot:
		d.expectKind(kind, kindSnapshot)
		*t = decodeSnapshot(d)
	case *[]Snapshot:
		d.expectKind(kind, kindSnapshotList)
		n := d.Len()
		out := make([]Snapshot, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			out = append(out, decodeSnapshot(d))
		}
		*t = out
	case *Neighbors:
		d.expectKind(kind, kindNeighbors)
		*t = decodeNeighbors(d)
	case *Interval:
		d.expectKind(kind, kindInterval)
		*t = decodeInterval(d)
	case *AppendResult:
		d.expectKind(kind, kindAppendResult)
		*t = decodeAppendResult(d)
	case *[]Event:
		d.expectKind(kind, kindEventList)
		*t = decodeEventList(d)
	case *ExprRequest:
		d.expectKind(kind, kindExprRequest)
		*t = decodeExpr(d)
	case *PRPrepare:
		d.expectKind(kind, kindPRPrepare)
		*t = decodePRPrepare(d)
	case *PRPrepared:
		d.expectKind(kind, kindPRPrepared)
		*t = decodePRPrepared(d)
	case *PRStart:
		d.expectKind(kind, kindPRStart)
		*t = decodePRStart(d)
	case *PRStepRequest:
		d.expectKind(kind, kindPRStep)
		*t = decodePRStep(d)
	case *PRStepResult:
		d.expectKind(kind, kindPRStepResult)
		*t = decodePRStepResult(d)
	default:
		return fmt.Errorf("%w: %T (binary)", ErrUnsupported, v)
	}
	return d.Err()
}

// --- encoder ----------------------------------------------------------

// Encoder builds one binary message. It is not safe for concurrent use;
// allocate one per message (internal/replica shares one across the
// records of a /replicate batch so attribute keys intern batch-wide).
type Encoder struct {
	buf  []byte
	keys map[string]int
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{}
}

// header writes the standard message frame.
func (e *Encoder) header(kind byte) {
	e.buf = append(e.buf, binaryMagic, binaryVersion, kind)
}

// Header writes the standard message frame (magic, version, kind).
// Kinds up to 0x1f are reserved by this package; packages building their
// own messages on the primitives (internal/replica's replication stream)
// use 0x20 and above.
func (e *Encoder) Header(kind byte) { e.header(kind) }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Raw appends raw bytes verbatim.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a zig-zag signed varint.
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Bool appends a boolean byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Key appends an interned string: repeat occurrences cost one varint.
func (e *Encoder) Key(s string) {
	if idx, ok := e.keys[s]; ok {
		e.Uvarint(uint64(idx + 1))
		return
	}
	if e.keys == nil {
		e.keys = make(map[string]int)
	}
	e.Uvarint(0)
	e.String(s)
	e.keys[s] = len(e.keys)
}

// Reset clears the encoder for reuse: the buffer empties and the key
// intern table forgets everything, so the next message decodes
// self-contained. Callers that hand Bytes to a consumer that retains the
// slice must not Reset until the consumer is done with it.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	clear(e.keys)
}

// Len returns the bytes written so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.buf }

// --- decoder ----------------------------------------------------------

// Decoder reads one binary message. Errors are sticky: after the first
// malformed read every accessor returns the zero value and Err() reports
// the failure, so call sites stay linear.
type Decoder struct {
	data []byte
	pos  int
	keys []string
	err  error
}

// NewDecoder wraps data for decoding.
func NewDecoder(data []byte) *Decoder {
	return &Decoder{data: data}
}

// Header consumes and validates the standard message frame, returning the
// kind byte.
func (d *Decoder) Header() (byte, error) {
	if len(d.data) < 3 || d.data[0] != binaryMagic || d.data[1] != binaryVersion {
		return 0, fmt.Errorf("wire: not a binary message (magic/version mismatch in %d bytes)", len(d.data))
	}
	d.pos = 3
	return d.data[2], nil
}

func (d *Decoder) expectKind(got, want byte) {
	if got != want {
		d.fail(fmt.Errorf("wire: message kind 0x%02x, want 0x%02x", got, want))
	}
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Err returns the first decode failure, nil when the message was well
// formed so far.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the unread byte count.
func (d *Decoder) Remaining() int { return len(d.data) - d.pos }

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.fail(fmt.Errorf("wire: truncated message (byte at %d)", d.pos))
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail(fmt.Errorf("wire: bad uvarint at %d", d.pos))
		return 0
	}
	d.pos += n
	return v
}

// Varint reads a zig-zag signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail(fmt.Errorf("wire: bad varint at %d", d.pos))
		return 0
	}
	d.pos += n
	return v
}

// Bool reads a boolean byte.
func (d *Decoder) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("wire: bad bool at %d", d.pos-1))
		return false
	}
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail(fmt.Errorf("wire: string of %d bytes with %d remaining", n, d.Remaining()))
		return ""
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// Key reads an interned string.
func (d *Decoder) Key() string {
	ref := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if ref == 0 {
		s := d.String()
		d.keys = append(d.keys, s)
		return s
	}
	if ref > uint64(len(d.keys)) {
		d.fail(fmt.Errorf("wire: key ref %d with %d keys interned", ref, len(d.keys)))
		return ""
	}
	return d.keys[ref-1]
}

// Len reads a list count, bounding it by the remaining bytes (every
// element costs at least one byte) so corrupt input cannot force a huge
// allocation.
func (d *Decoder) Len() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()) {
		d.fail(fmt.Errorf("wire: list of %d elements with %d bytes remaining", n, d.Remaining()))
		return 0
	}
	return int(n)
}

// --- shared shapes ----------------------------------------------------

// encodeList writes the list frame: nil-ness, count, elements. A nil
// slice and an empty one encode differently so decode(encode(x)) == x
// exactly (JSON's omitempty drops both, so this is strictly more
// faithful).
func encodeList(e *Encoder, n int, isNil bool, elem func(i int)) {
	if isNil {
		e.Byte(0)
		return
	}
	e.Byte(1)
	e.Uvarint(uint64(n))
	for i := 0; i < n; i++ {
		elem(i)
	}
}

// decodeList reads the list frame and returns the element count and
// whether the list was present (non-nil).
func decodeList(d *Decoder) (n int, present bool) {
	if d.Byte() == 0 {
		return 0, false
	}
	return d.Len(), true
}

func encodeAttrs(e *Encoder, m map[string]string) {
	if m == nil {
		e.Byte(0)
		return
	}
	e.Byte(1)
	e.Uvarint(uint64(len(m)))
	// Keys are written in ascending order so identical maps encode to
	// identical bytes. One or two entries — the overwhelmingly common
	// attribute count — need no sort scratch.
	switch len(m) {
	case 0:
	case 1:
		for k, v := range m {
			e.Key(k)
			e.String(v)
		}
	case 2:
		var k1, k2 string
		first := true
		for k := range m {
			if first {
				k1, first = k, false
			} else if k < k1 {
				k2, k1 = k1, k
			} else {
				k2 = k
			}
		}
		e.Key(k1)
		e.String(m[k1])
		e.Key(k2)
		e.String(m[k2])
	default:
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e.Key(k)
			e.String(m[k])
		}
	}
}

func decodeAttrs(d *Decoder) map[string]string {
	if d.Byte() == 0 {
		return nil
	}
	n := d.Len()
	m := make(map[string]string, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.Key()
		m[k] = d.String()
	}
	return m
}

func encodeNodes(e *Encoder, nodes []Node) {
	prev := int64(0)
	encodeList(e, len(nodes), nodes == nil, func(i int) {
		e.Varint(nodes[i].ID - prev)
		prev = nodes[i].ID
		encodeAttrs(e, nodes[i].Attrs)
	})
}

func decodeNodes(d *Decoder) []Node {
	n, present := decodeList(d)
	if !present {
		return nil
	}
	out := make([]Node, 0, n)
	prev := int64(0)
	for i := 0; i < n && d.Err() == nil; i++ {
		prev += d.Varint()
		out = append(out, Node{ID: prev, Attrs: decodeAttrs(d)})
	}
	return out
}

func encodeEdges(e *Encoder, edges []Edge) {
	prev := int64(0)
	encodeList(e, len(edges), edges == nil, func(i int) {
		ed := &edges[i]
		e.Varint(ed.ID - prev)
		prev = ed.ID
		e.Varint(ed.From)
		e.Varint(ed.To)
		e.Bool(ed.Directed)
		encodeAttrs(e, ed.Attrs)
	})
}

func decodeEdges(d *Decoder) []Edge {
	n, present := decodeList(d)
	if !present {
		return nil
	}
	out := make([]Edge, 0, n)
	prev := int64(0)
	for i := 0; i < n && d.Err() == nil; i++ {
		prev += d.Varint()
		out = append(out, Edge{
			ID: prev, From: d.Varint(), To: d.Varint(),
			Directed: d.Bool(), Attrs: decodeAttrs(d),
		})
	}
	return out
}

func encodePartial(e *Encoder, errs []PartitionError) {
	encodeList(e, len(errs), errs == nil, func(i int) {
		e.Varint(int64(errs[i].Partition))
		e.Varint(int64(errs[i].Status))
		e.String(errs[i].Error)
	})
}

func decodePartial(d *Decoder) []PartitionError {
	n, present := decodeList(d)
	if !present {
		return nil
	}
	out := make([]PartitionError, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, PartitionError{
			Partition: int(d.Varint()), Status: int(d.Varint()), Error: d.String(),
		})
	}
	return out
}

// --- message bodies ---------------------------------------------------

func encodeSnapshot(e *Encoder, s *Snapshot) {
	e.Varint(s.At)
	e.Varint(int64(s.NumNodes))
	e.Varint(int64(s.NumEdges))
	e.Bool(s.Cached)
	e.Bool(s.Coalesced)
	encodeNodes(e, s.Nodes)
	encodeEdges(e, s.Edges)
	encodePartial(e, s.Partial)
}

func decodeSnapshot(d *Decoder) Snapshot {
	return Snapshot{
		At:       d.Varint(),
		NumNodes: int(d.Varint()),
		NumEdges: int(d.Varint()),
		Cached:   d.Bool(), Coalesced: d.Bool(),
		Nodes: decodeNodes(d), Edges: decodeEdges(d),
		Partial: decodePartial(d),
	}
}

func encodeNeighbors(e *Encoder, n *Neighbors) {
	e.Varint(n.At)
	e.Varint(n.Node)
	e.Varint(int64(n.Degree))
	e.Bool(n.Cached)
	prev := int64(0)
	encodeList(e, len(n.Neighbors), n.Neighbors == nil, func(i int) {
		e.Varint(n.Neighbors[i] - prev)
		prev = n.Neighbors[i]
	})
	encodePartial(e, n.Partial)
}

func decodeNeighbors(d *Decoder) Neighbors {
	out := Neighbors{
		At: d.Varint(), Node: d.Varint(),
		Degree: int(d.Varint()), Cached: d.Bool(),
	}
	if n, present := decodeList(d); present {
		out.Neighbors = make([]int64, 0, n)
		prev := int64(0)
		for i := 0; i < n && d.Err() == nil; i++ {
			prev += d.Varint()
			out.Neighbors = append(out.Neighbors, prev)
		}
	}
	out.Partial = decodePartial(d)
	return out
}

// Event flag bits.
const (
	evDirected = 1 << 0
	evHadOld   = 1 << 1
	evHasNew   = 1 << 2
)

// EncodeEventTo appends one event to e. Exported (with DecodeEventFrom)
// so internal/replica's WAL records and /replicate stream reuse the exact
// event encoding, sharing e's intern table across a whole batch.
func EncodeEventTo(e *Encoder, ev Event) {
	e.Key(ev.Type)
	e.Varint(ev.At)
	e.Varint(ev.Node)
	e.Varint(ev.Node2)
	e.Varint(ev.Edge)
	var flags byte
	if ev.Directed {
		flags |= evDirected
	}
	if ev.Old != nil {
		flags |= evHadOld
	}
	if ev.New != nil {
		flags |= evHasNew
	}
	e.Byte(flags)
	e.Key(ev.Attr)
	if ev.Old != nil {
		e.String(*ev.Old)
	}
	if ev.New != nil {
		e.String(*ev.New)
	}
}

// DecodeEventFrom reads one event written by EncodeEventTo.
func DecodeEventFrom(d *Decoder) Event {
	ev := Event{
		Type: d.Key(), At: d.Varint(),
		Node: d.Varint(), Node2: d.Varint(), Edge: d.Varint(),
	}
	flags := d.Byte()
	ev.Directed = flags&evDirected != 0
	ev.Attr = d.Key()
	if flags&evHadOld != 0 {
		s := d.String()
		ev.Old = &s
	}
	if flags&evHasNew != 0 {
		s := d.String()
		ev.New = &s
	}
	return ev
}

func decodeEventList(d *Decoder) []Event {
	n, present := decodeList(d)
	if !present {
		return nil
	}
	out := make([]Event, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, DecodeEventFrom(d))
	}
	return out
}

func encodeInterval(e *Encoder, iv *Interval) {
	e.Varint(iv.Start)
	e.Varint(iv.End)
	e.Varint(int64(iv.NumNodes))
	e.Varint(int64(iv.NumEdges))
	encodeNodes(e, iv.Nodes)
	encodeEdges(e, iv.Edges)
	encodeList(e, len(iv.Transients), iv.Transients == nil, func(i int) {
		EncodeEventTo(e, iv.Transients[i])
	})
	encodePartial(e, iv.Partial)
}

func decodeInterval(d *Decoder) Interval {
	out := Interval{
		Start: d.Varint(), End: d.Varint(),
		NumNodes: int(d.Varint()), NumEdges: int(d.Varint()),
		Nodes: decodeNodes(d), Edges: decodeEdges(d),
	}
	if n, present := decodeList(d); present {
		out.Transients = make([]Event, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			out.Transients = append(out.Transients, DecodeEventFrom(d))
		}
	}
	out.Partial = decodePartial(d)
	return out
}

func encodeAppendResult(e *Encoder, a *AppendResult) {
	e.Varint(int64(a.Appended))
	e.Varint(a.LastTime)
	e.Varint(int64(a.Invalidated))
	e.Uvarint(a.Seq)
	e.Bool(a.Deduped)
	encodePartial(e, a.Partial)
}

func decodeAppendResult(d *Decoder) AppendResult {
	return AppendResult{
		Appended: int(d.Varint()), LastTime: d.Varint(),
		Invalidated: int(d.Varint()), Seq: d.Uvarint(),
		Deduped: d.Bool(), Partial: decodePartial(d),
	}
}

func encodeExpr(e *Encoder, req *ExprRequest) {
	prev := int64(0)
	encodeList(e, len(req.Times), req.Times == nil, func(i int) {
		e.Varint(req.Times[i] - prev)
		prev = req.Times[i]
	})
	e.String(req.Expr)
	e.String(req.Attrs)
	e.Bool(req.Full)
}

func decodeExpr(d *Decoder) ExprRequest {
	out := ExprRequest{}
	if n, present := decodeList(d); present {
		out.Times = make([]int64, 0, n)
		prev := int64(0)
		for i := 0; i < n && d.Err() == nil; i++ {
			prev += d.Varint()
			out.Times = append(out.Times, prev)
		}
	}
	out.Expr = d.String()
	out.Attrs = d.String()
	out.Full = d.Bool()
	return out
}
