// Package wire is the data-plane wire layer of the snapshot service: the
// typed request/response structs every HTTP endpoint speaks, plus the
// pluggable codecs that turn them into bytes.
//
// Three encodings ship (full specification in docs/WIRE.md):
//
//   - JSON (the default): the exact encoding internal/server has always
//     produced — field-for-field identical, so existing clients and the
//     byte-identity oracle tests see no change.
//   - Binary: a compact length-prefixed whole-message format (varint ids
//     with delta coding, interned attribute keys, no field names) for the
//     paths where JSON encode/decode dominates latency — coordinator
//     scatter legs, replication catch-up, large full-snapshot responses.
//   - Stream: the chunked form of a full snapshot (StreamEncoder and
//     StreamDecoder) — the same element encodings cut into bounded
//     element runs terminated by a summary frame, so producers and
//     consumers of arbitrarily large snapshots hold one run at a time
//     instead of the whole body.
//
// Codecs are negotiated per request: Accept selects the response
// encoding (binary with ContentTypeBinary, the chunked stream with
// ContentTypeBinaryStream — which only full /snapshot responses honor),
// and request bodies declare theirs via Content-Type. Everything else
// (errors, /stats, /healthz) stays JSON. The stream MIME type textually
// contains the binary one, so under the substring matching of
// Negotiate a streaming client degrades to whole-message binary against
// an older server, and to JSON against an even older one.
//
// Contract and concurrency rules:
//
//   - Codec implementations are stateless and safe for concurrent use;
//     decode(encode(x)) == x exactly for every supported type
//     (FuzzWireRoundTrip), with one documented exception — the stream
//     form spells empty element lists as nil.
//   - Encoder, Decoder, StreamEncoder, StreamDecoder, and CappedBuffer
//     are single-message/single-stream state machines: allocate one per
//     message or response, never share one across goroutines.
//     internal/replica deliberately shares one Encoder across the
//     records of a replication batch so the intern table spans it.
//   - Decoders are hardened against corrupt input: lengths and counts
//     are bounded by the remaining bytes, errors are sticky, and a
//     malformed message fails cleanly rather than panicking or
//     allocating unboundedly.
//
// The structs here are shared by internal/server (which aliases them
// under their historical *JSON names), internal/shard's merge layer, and
// internal/replica's WAL and replication stream.
package wire
