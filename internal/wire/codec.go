package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Codec names and content types. The binary content type doubles as the
// Accept value a client sends to request binary responses.
const (
	NameJSON   = "json"
	NameBinary = "binary"

	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-deltagraph-bin"
)

// ErrUnsupported reports a Go type a codec has no encoding for. Callers
// fall back to JSON (the universal codec) when they see it.
var ErrUnsupported = errors.New("wire: type not supported by codec")

// Codec turns the wire structs into bytes and back. Implementations must
// be stateless and safe for concurrent use.
type Codec interface {
	// Name is the codec's short name ("json", "binary") — what cache keys,
	// flags, and stats use.
	Name() string
	// ContentType is the MIME type written alongside encoded bodies and
	// sent as Accept to request this codec.
	ContentType() string
	// Encode serializes one wire value. The supported types are *Snapshot,
	// []Snapshot, *Neighbors, *Interval, *AppendResult, []Event and
	// *ExprRequest (JSON additionally encodes anything encoding/json can).
	Encode(v any) ([]byte, error)
	// Decode deserializes data into v (a pointer to a supported type).
	Decode(data []byte, v any) error
}

// JSON is the default codec: exactly the bytes encoding/json has always
// produced for these structs, with the trailing newline json.Encoder
// appends — existing responses stay byte-identical.
type JSON struct{}

// Name implements Codec.
func (JSON) Name() string { return NameJSON }

// ContentType implements Codec.
func (JSON) ContentType() string { return ContentTypeJSON }

// Encode implements Codec.
func (JSON) Encode(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	// json.Encoder.Encode (the historical write path) terminates every body
	// with '\n'; keep that so responses remain byte-identical.
	return append(data, '\n'), nil
}

// Decode implements Codec.
func (JSON) Decode(data []byte, v any) error {
	return json.Unmarshal(data, v)
}

// Codecs returns the registered codecs, JSON first.
func Codecs() []Codec { return []Codec{JSON{}, Binary{}} }

// ByName resolves a codec by its short name; "" means JSON.
func ByName(name string) (Codec, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", NameJSON:
		return JSON{}, nil
	case NameBinary, "bin":
		return Binary{}, nil
	}
	return nil, fmt.Errorf("wire: unknown codec %q (want %s or %s)", name, NameJSON, NameBinary)
}

// Negotiate picks the response codec for an Accept header: binary only
// when the client asked for the binary content type explicitly, JSON for
// everything else (including "*/*" and absent headers) — an old client
// can never be surprised by bytes it does not understand.
func Negotiate(accept string) Codec {
	if strings.Contains(accept, ContentTypeBinary) {
		return Binary{}
	}
	return JSON{}
}

// ForContentType picks the codec a request or response body was encoded
// with from its Content-Type header; anything but the binary type is
// treated as JSON.
func ForContentType(ct string) Codec {
	if strings.HasPrefix(strings.TrimSpace(ct), ContentTypeBinary) {
		return Binary{}
	}
	return JSON{}
}
