package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
)

func streamFrames(n, perFrame int) [][]Event {
	frames := make([][]Event, n)
	for f := range frames {
		events := make([]Event, perFrame)
		for i := range events {
			val := fmt.Sprintf("v%d", f)
			events[i] = Event{
				Type: "add_node",
				At:   int64(f*perFrame + i + 1),
				Node: int64(f*1000 + i),
				// The same attr key on every event exercises the intern
				// table carrying across frames.
				Attr: "affiliation",
				New:  &val,
			}
		}
		frames[f] = events
	}
	return frames
}

// TestAppendStreamRoundTrip: frames encoded onto a stream come back one by
// one, batch IDs intact, and the decoder reports io.EOF exactly after the
// end frame.
func TestAppendStreamRoundTrip(t *testing.T) {
	frames := streamFrames(5, 7)
	var buf bytes.Buffer
	enc := NewAppendStreamEncoder(&buf)
	for f, events := range frames {
		if err := enc.Events(fmt.Sprintf("batch-%d", f), events); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.End(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Events("late", frames[0]); err == nil {
		t.Fatal("frame after End should be rejected")
	}

	dec, err := NewAppendStreamDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for f, want := range frames {
		frame, err := dec.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if frame.Batch != fmt.Sprintf("batch-%d", f) {
			t.Fatalf("frame %d batch = %q", f, frame.Batch)
		}
		// The event slice is scratch: compare before pulling the next frame.
		if !reflect.DeepEqual(frame.Events, want) {
			t.Fatalf("frame %d events diverge:\n got %+v\nwant %+v", f, frame.Events, want)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after end frame: %v, want io.EOF", err)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("repeated Next after EOF: %v, want io.EOF", err)
	}
}

// TestAppendStreamTruncation: a stream cut anywhere before the end frame
// must decode the complete frames, then fail with an error wrapping
// io.ErrUnexpectedEOF — never a clean io.EOF, which would let a receiver
// mistake a dead writer for a finished stream.
func TestAppendStreamTruncation(t *testing.T) {
	frames := streamFrames(3, 4)
	var buf bytes.Buffer
	enc := NewAppendStreamEncoder(&buf)
	for f, events := range frames {
		if err := enc.Events(fmt.Sprintf("b%d", f), events); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.End(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for cut := 0; cut < len(full); cut++ {
		dec, err := NewAppendStreamDecoder(bytes.NewReader(full[:cut]))
		if err != nil {
			if cut >= 3 {
				t.Fatalf("cut %d: header rejected: %v", cut, err)
			}
			continue // inside the 3-byte header: rejection is right
		}
		sawErr := false
		for i := 0; i <= len(frames); i++ {
			_, err := dec.Next()
			if err == nil {
				continue
			}
			if err == io.EOF {
				t.Fatalf("cut %d: decoder reported clean EOF on a truncated stream", cut)
			}
			sawErr = true
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				// A cut can also land inside a frame body, surfacing as a
				// decode error; both shapes are acceptable, silence is not.
				if cut >= len(full)-1 {
					t.Fatalf("cut %d: %v does not wrap io.ErrUnexpectedEOF", cut, err)
				}
			}
			break
		}
		if !sawErr {
			t.Fatalf("cut %d: truncated stream decoded without error", cut)
		}
	}
}

// TestAppendStreamEndCountMismatch: an end frame declaring the wrong frame
// count is an integrity failure, not EOF.
func TestAppendStreamEndCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	enc := NewAppendStreamEncoder(&buf)
	if err := enc.Events("b", streamFrames(1, 2)[0]); err != nil {
		t.Fatal(err)
	}
	// Forge an end frame claiming 9 frames.
	enc.enc.Byte(frameAppendEnd)
	enc.enc.Uvarint(9)
	if err := enc.writeFrame(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewAppendStreamDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err == nil || err == io.EOF {
		t.Fatalf("mismatched end frame answered %v, want an integrity error", err)
	}
}
