package wire

// The streaming encoding's contract: a stream assembles to exactly the
// struct the whole-message codec would have carried, run boundaries are
// invisible, corruption and truncation fail cleanly (never panic, never
// silently shorten a snapshot), and the decoder survives arbitrary bytes.

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func streamTestSnapshot() Snapshot {
	s := Snapshot{At: 42, Cached: true}
	for i := 0; i < 1000; i++ {
		n := Node{ID: int64(i * 3)}
		if i%2 == 0 {
			n.Attrs = map[string]string{"name": "n", "kind": "k"}
		}
		s.Nodes = append(s.Nodes, n)
	}
	for i := 0; i < 700; i++ {
		e := Edge{ID: int64(i * 5), From: int64(i), To: int64(i + 1), Directed: i%3 == 0}
		if i%4 == 0 {
			e.Attrs = map[string]string{"weight": "2"}
		}
		s.Edges = append(s.Edges, e)
	}
	s.NumNodes, s.NumEdges = len(s.Nodes), len(s.Edges)
	return s
}

// TestStreamRoundTrip: encode in several run sizes (including ones that
// do not divide the element counts), decode, compare structs exactly.
func TestStreamRoundTrip(t *testing.T) {
	snap := streamTestSnapshot()
	for _, runSize := range []int{1, 7, 256, 100000} {
		var buf bytes.Buffer
		if err := EncodeSnapshotStream(&buf, &snap, runSize); err != nil {
			t.Fatalf("run=%d: encode: %v", runSize, err)
		}
		got, err := DecodeSnapshotStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("run=%d: decode: %v", runSize, err)
		}
		if !reflect.DeepEqual(*got, snap) {
			t.Fatalf("run=%d: roundtrip mismatch", runSize)
		}
	}
}

// TestStreamInterningSpansRuns: the same attribute key repeated across
// many runs must be written once — run boundaries cost frame headers,
// not a reset of the intern table.
func TestStreamInterningSpansRuns(t *testing.T) {
	s := Snapshot{}
	for i := 0; i < 512; i++ {
		s.Nodes = append(s.Nodes, Node{ID: int64(i), Attrs: map[string]string{"sharedkey1234567": "v"}})
	}
	s.NumNodes = len(s.Nodes)
	var one, many bytes.Buffer
	if err := EncodeSnapshotStream(&one, &s, len(s.Nodes)); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSnapshotStream(&many, &s, 8); err != nil {
		t.Fatal(err)
	}
	// 64 frames instead of 1 cost at most a few bytes each; a reset
	// intern table would re-write the 16-byte key 511 times.
	if delta := many.Len() - one.Len(); delta > 64*4 {
		t.Fatalf("chunked stream %d bytes vs whole %d: run boundaries are not cheap (interning reset?)", many.Len(), one.Len())
	}
	got, err := DecodeSnapshotStream(&many)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, s) {
		t.Fatal("chunked roundtrip mismatch")
	}
}

// TestStreamEmpty: a snapshot with no elements is just a summary frame.
func TestStreamEmpty(t *testing.T) {
	s := Snapshot{At: 7, NumNodes: 0, NumEdges: 0}
	var buf bytes.Buffer
	if err := EncodeSnapshotStream(&buf, &s, 0); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshotStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, s) {
		t.Fatalf("got %#v want %#v", *got, s)
	}
}

// TestStreamTruncation: cutting the stream anywhere before the summary
// frame must produce an error — the summary is the integrity marker a
// consumer uses to tell a complete stream from a dead producer.
func TestStreamTruncation(t *testing.T) {
	snap := streamTestSnapshot()
	var buf bytes.Buffer
	if err := EncodeSnapshotStream(&buf, &snap, 64); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 1, 2, 3, 10, len(full) / 2, len(full) - 1} {
		if _, err := DecodeSnapshotStream(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(full))
		}
	}
	if _, err := DecodeSnapshotStream(bytes.NewReader(full)); err != nil {
		t.Fatalf("untruncated stream failed: %v", err)
	}
}

// TestStreamCorruption: flipping bytes must fail decode cleanly (error,
// not panic, not a giant allocation) or — when the flip hits element
// payload bytes — still decode to *some* snapshot without crashing.
func TestStreamCorruption(t *testing.T) {
	snap := streamTestSnapshot()
	snap.Nodes, snap.Edges = snap.Nodes[:120], snap.Edges[:80] // keep the flip sweep fast
	snap.NumNodes, snap.NumEdges = 120, 80
	var buf bytes.Buffer
	if err := EncodeSnapshotStream(&buf, &snap, 64); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for pos := 0; pos < len(full); pos += 13 {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0xff
		_, _ = DecodeSnapshotStream(bytes.NewReader(mut)) // must not panic
	}
	// A frame-length prefix rewritten to a huge value must be rejected,
	// not allocated.
	mut := append([]byte(nil), full[:3]...)
	mut = append(mut, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	if _, err := DecodeSnapshotStream(bytes.NewReader(mut)); err == nil {
		t.Fatal("2^63-byte frame length accepted")
	}
}

// TestStreamTrailingGarbageFrame: bytes after the summary frame are
// never read (the stream ended), and a frame with an unknown type fails.
func TestStreamUnknownFrameType(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{binaryMagic, binaryVersion, kindSnapshotStream})
	buf.Write([]byte{2, 0x7e, 0x00}) // 2-byte frame, unknown type 0x7e
	if _, err := DecodeSnapshotStream(&buf); err == nil || !strings.Contains(err.Error(), "unknown stream frame") {
		t.Fatalf("unknown frame type error missing, got %v", err)
	}
}

// TestStreamNotAStream: the decoder rejects whole-message binary bodies
// and arbitrary prefixes at the header, so callers can fall back.
func TestStreamNotAStream(t *testing.T) {
	whole, err := Binary{}.Encode(&Snapshot{At: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamDecoder(bytes.NewReader(whole)); err == nil {
		t.Fatal("whole-message body accepted as stream")
	}
	if _, err := NewStreamDecoder(bytes.NewReader([]byte("{\"at\":1}"))); err == nil {
		t.Fatal("JSON body accepted as stream")
	}
}

// TestStreamNextAfterSummary: Next reports io.EOF after the summary.
func TestStreamNextAfterSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshotStream(&buf, &Snapshot{At: 1}, 0); err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := sd.Next()
	if err != nil || frame.Summary == nil {
		t.Fatalf("want summary frame, got %#v, %v", frame, err)
	}
	if _, err := sd.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after summary, got %v", err)
	}
}

// TestStreamWriteAfterSummary: the encoder refuses frames after Summary.
func TestStreamWriteAfterSummary(t *testing.T) {
	var buf bytes.Buffer
	se := NewStreamEncoder(&buf)
	if err := se.Summary(&Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if err := se.Nodes([]Node{{ID: 1}}); err == nil {
		t.Fatal("node run accepted after summary")
	}
}
