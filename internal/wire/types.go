// The shared data-plane structs (package overview in doc.go).
package wire

import (
	"historygraph"
)

// Node is one node of a snapshot response.
type Node struct {
	ID    int64             `json:"id"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Edge is one edge of a snapshot response.
type Edge struct {
	ID       int64             `json:"id"`
	From     int64             `json:"from"`
	To       int64             `json:"to"`
	Directed bool              `json:"directed,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// PartitionError reports one partition's failure inside a scatter-gather
// response assembled by a shard coordinator (internal/shard). Unsharded
// responses never carry these; a sharded response whose Partial list is
// non-empty is missing the named partitions' contributions. Status is the
// partition's HTTP status when it answered with one (an HTTPError), 0 for
// transport-level failures — it lets the coordinator surface a deliberate
// 4xx rejection as a client error instead of a gateway failure.
type PartitionError struct {
	Partition int    `json:"partition"`
	Error     string `json:"error"`
	Status    int    `json:"status,omitempty"`
}

// Snapshot answers snapshot, batch and expression queries. Nodes and
// Edges are populated only when the request asked for full elements.
type Snapshot struct {
	At        int64            `json:"at,omitempty"`
	NumNodes  int              `json:"num_nodes"`
	NumEdges  int              `json:"num_edges"`
	Cached    bool             `json:"cached,omitempty"`
	Coalesced bool             `json:"coalesced,omitempty"`
	Nodes     []Node           `json:"nodes,omitempty"`
	Edges     []Edge           `json:"edges,omitempty"`
	Partial   []PartitionError `json:"partial,omitempty"`
}

// Neighbors answers neighborhood queries.
type Neighbors struct {
	At        int64            `json:"at"`
	Node      int64            `json:"node"`
	Degree    int              `json:"degree"`
	Neighbors []int64          `json:"neighbors"`
	Cached    bool             `json:"cached,omitempty"`
	Partial   []PartitionError `json:"partial,omitempty"`
}

// Event is the wire form of one historical event. Old/New are pointers
// so "attribute removed" (HasNew=false) is distinguishable from "set to
// empty string".
type Event struct {
	Type     string  `json:"type"`
	At       int64   `json:"at"`
	Node     int64   `json:"node,omitempty"`
	Node2    int64   `json:"node2,omitempty"`
	Edge     int64   `json:"edge,omitempty"`
	Directed bool    `json:"directed,omitempty"`
	Attr     string  `json:"attr,omitempty"`
	Old      *string `json:"old,omitempty"`
	New      *string `json:"new,omitempty"`
}

// Interval answers interval queries: the elements added in [Start, End)
// plus the transient events in that window.
type Interval struct {
	Start      int64            `json:"start"`
	End        int64            `json:"end"`
	NumNodes   int              `json:"num_nodes"`
	NumEdges   int              `json:"num_edges"`
	Nodes      []Node           `json:"nodes,omitempty"`
	Edges      []Edge           `json:"edges,omitempty"`
	Transients []Event          `json:"transients,omitempty"`
	Partial    []PartitionError `json:"partial,omitempty"`
}

// ExprRequest is the POST /expr body: a Boolean expression over the listed
// timepoints, e.g. {"times":[100,200], "expr":"0 & !1"} for "in the graph
// at t=100 but not at t=200".
type ExprRequest struct {
	Times []int64 `json:"times"`
	Expr  string  `json:"expr"`
	Attrs string  `json:"attrs,omitempty"`
	Full  bool    `json:"full,omitempty"`
}

// AppendResult answers POST /append. Seq is the WAL sequence number of the
// batch's last event when the serving node writes a durable write-ahead
// log (internal/replica); nodes without a WAL leave it zero. Deduped means
// the node recognized the request's idempotency batch ID (?batch=) from
// records it already holds and acked without appending again.
type AppendResult struct {
	Appended    int              `json:"appended"`
	LastTime    int64            `json:"last_time"`
	Invalidated int              `json:"invalidated,omitempty"`
	Seq         uint64           `json:"seq,omitempty"`
	Deduped     bool             `json:"deduped,omitempty"`
	Partial     []PartitionError `json:"partial,omitempty"`
}

// ServerStats is the serving-layer section of /stats. The Encoded*
// fields describe the worker's encoded-bytes cache (omitted when that
// cache is disabled); Encodes counts snapshot-body encode executions —
// an encoded-bytes hit performs none.
type ServerStats struct {
	Requests        int64 `json:"requests"`
	Retrievals      int64 `json:"retrievals"`
	Coalesced       int64 `json:"coalesced"`
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	CacheEvictions  int64 `json:"cache_evictions"`
	CacheSize       int   `json:"cache_size"`
	CacheCapacity   int   `json:"cache_capacity"`
	Encodes         int64 `json:"encodes,omitempty"`
	EncodedHits     int64 `json:"encoded_hits,omitempty"`
	EncodedMisses   int64 `json:"encoded_misses,omitempty"`
	EncodedSize     int   `json:"encoded_size,omitempty"`
	EncodedCapacity int   `json:"encoded_capacity,omitempty"`
}

// Stats answers GET /stats: index shape, pool contents, and serving-layer
// counters. It is JSON-only (the binary codec serves the data plane, not
// introspection).
type Stats struct {
	Index  historygraph.IndexStats `json:"index"`
	Pool   historygraph.PoolStats  `json:"pool"`
	Server ServerStats             `json:"server"`
}

// Error is the uniform error body every endpoint writes on a non-200
// answer; it is always JSON regardless of the negotiated response codec.
type Error struct {
	Error string `json:"error"`
}
