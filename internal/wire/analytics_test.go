package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestBinaryRoundTripPRPrepare(t *testing.T) {
	for i, v := range []PRPrepare{
		{},
		{Job: "j1", T: 42, Attrs: "+node:all", Parts: 4, Self: 2, Damping: 0.85},
		{Job: "j2", T: -7, Parts: 1, Damping: math.SmallestNonzeroFloat64},
	} {
		var got PRPrepare
		roundTrip(t, &v, &got)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("prepare %d: mismatch\n got: %#v\nwant: %#v", i, got, v)
		}
	}
}

func TestBinaryRoundTripPRPrepared(t *testing.T) {
	for i, v := range []PRPrepared{
		{},
		{Job: "j", Nodes: 12, Pairs: []int64{1, 5, 1, 9, 4, 7}},
		{Job: "j", Pairs: []int64{}},
		{Job: "j", Nodes: 1, Pairs: []int64{-9, -3, -3, 100}},
	} {
		var got PRPrepared
		roundTrip(t, &v, &got)
		// The empty-but-present pair list is a legal encoding of "no pairs".
		if len(v.Pairs) == 0 && len(got.Pairs) == 0 {
			got.Pairs, v.Pairs = nil, nil
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("prepared %d: mismatch\n got: %#v\nwant: %#v", i, got, v)
		}
	}
}

func TestBinaryRoundTripPRStart(t *testing.T) {
	for i, v := range []PRStart{
		{},
		{Job: "j", N: 1 << 40, Ghosts: []int64{2, 3, 2, 8, 5, 6}},
	} {
		var got PRStart
		roundTrip(t, &v, &got)
		if len(v.Ghosts) == 0 && len(got.Ghosts) == 0 {
			got.Ghosts, v.Ghosts = nil, nil
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("start %d: mismatch\n got: %#v\nwant: %#v", i, got, v)
		}
	}
}

func TestBinaryRoundTripPRStep(t *testing.T) {
	for i, v := range []PRStepRequest{
		{},
		{Job: "j", Finalize: true, Compute: true, Inbox: []PRMessage{
			{Node: -4, Val: 0.25}, {Node: 3, Val: 1e-300}, {Node: 900, Val: math.MaxFloat64},
		}},
		{Job: "j", Finalize: true, TopK: 20},
	} {
		var got PRStepRequest
		roundTrip(t, &v, &got)
		if len(v.Inbox) == 0 && len(got.Inbox) == 0 {
			got.Inbox, v.Inbox = nil, nil
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("step %d: mismatch\n got: %#v\nwant: %#v", i, got, v)
		}
	}
}

func TestBinaryRoundTripPRStepResult(t *testing.T) {
	for i, v := range []PRStepResult{
		{},
		{Out: []PRMessage{{Node: 1, Val: 0.5}, {Node: 7, Val: 0.125}}},
		{NumNodes: 99, Top: []RankEntry{{Node: 5, Score: 0.3}, {Node: -1, Score: 0.01}}},
	} {
		var got PRStepResult
		roundTrip(t, &v, &got)
		if len(v.Out) == 0 && len(got.Out) == 0 {
			got.Out, v.Out = nil, nil
		}
		if len(v.Top) == 0 && len(got.Top) == 0 {
			got.Top, v.Top = nil, nil
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("step result %d: mismatch\n got: %#v\nwant: %#v", i, got, v)
		}
	}
}

// TestBinaryAnalyticsPartsUnsupported pins the JSON-fallback contract:
// the merged/part analytics shapes are JSON-only, so the binary codec
// must refuse them (WriteWire and the client then fall back to JSON)
// rather than silently encoding something undecodable.
func TestBinaryAnalyticsPartsUnsupported(t *testing.T) {
	for _, v := range []any{
		&DegreePart{At: 1}, &ComponentsPart{At: 1}, &EvolutionPart{T1: 1},
		&DegreeDist{At: 1}, &Components{At: 1}, &Evolution{T1: 1},
		&PageRankResult{At: 1}, &JobStatus{ID: "x"},
	} {
		if _, err := (Binary{}).Encode(v); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%T: err = %v, want ErrUnsupported", v, err)
		}
	}
}
