package shard

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// swapWorker is a partition worker behind a fixed URL whose handler can
// be swapped live — the in-process analog of killing the process and
// restarting it on the same address.
type swapWorker struct {
	handler atomic.Value // http.Handler
	live    http.Handler // the real service handler, kept across a kill
}

func (w *swapWorker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.handler.Load().(http.Handler).ServeHTTP(rw, r)
}

// swapCluster is a sharded deployment whose workers can be killed and
// restarted without their URLs changing.
type swapCluster struct {
	client  *server.Client
	slices  []historygraph.EventList
	workers []*swapWorker
}

func newSwapCluster(t *testing.T, events historygraph.EventList, n int, cfg Config) *swapCluster {
	t.Helper()
	c := &swapCluster{slices: PartitionEvents(events, n)}
	var urls []string
	for _, slice := range c.slices {
		wk := &swapWorker{}
		c.startWorker(t, wk, slice)
		hs := httptest.NewServer(wk)
		t.Cleanup(hs.Close)
		c.workers = append(c.workers, wk)
		urls = append(urls, hs.URL)
	}
	co, err := New(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)
	c.client = server.NewClient(front.URL)
	return c
}

func (c *swapCluster) startWorker(t *testing.T, wk *swapWorker, slice historygraph.EventList) {
	t.Helper()
	gm := buildManager(t, slice)
	svc := server.New(gm, server.Config{CacheSize: 32})
	t.Cleanup(svc.Close)
	wk.live = svc.Handler()
	wk.handler.Store(wk.live)
}

// kill makes the worker answer every request with 502.
func (c *swapCluster) kill(p int) {
	c.workers[p].handler.Store(http.Handler(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "worker down", http.StatusBadGateway)
		})))
}

// restart brings partition p back on its original URL with a fresh
// manager over the same event slice — cold caches, same data.
func (c *swapCluster) restart(t *testing.T, p int) {
	t.Helper()
	c.startWorker(t, c.workers[p], c.slices[p])
}

// TestShardedAnalyticsMatchesUnsharded is the analytics oracle check: a
// 4-partition cluster answers the mergeable /analytics endpoints
// byte-identically to the unsharded server over the same trace — fresh,
// from cache, and again after a worker is killed and restarted. PageRank
// is compared to documented float tolerance (1e-9 relative): partition
// shares arrive grouped by source partition, so summation order differs
// from the single-process loop.
func TestShardedAnalyticsMatchesUnsharded(t *testing.T) {
	events := testEvents()
	gm, oclient, ourl := oracle(t, events)
	c := newSwapCluster(t, events, 4, Config{})
	last := gm.LastTime()
	frontURL := c.client.BaseURL()
	ctx := context.Background()

	compare := func(query string) {
		t.Helper()
		want := rawGET(t, ourl+query)
		got := rawGET(t, frontURL+query)
		if string(got) != string(want) {
			t.Fatalf("sharded %s diverges from unsharded:\n got: %s\nwant: %s", query, got, want)
		}
	}
	queries := []string{
		fmt.Sprintf("/analytics/degree?t=%d", last/4),
		fmt.Sprintf("/analytics/degree?t=%d", last/2),
		fmt.Sprintf("/analytics/components?t=%d", last/4),
		fmt.Sprintf("/analytics/components?t=%d", last/2),
		fmt.Sprintf("/analytics/evolution?t1=%d&t2=%d", last/4, last/2),
		fmt.Sprintf("/analytics/evolution?t1=%d&t2=%d", last/2, last),
	}
	// Both deployments start cold and see the identical query sequence,
	// so cache verdicts (the Cached flag) stay in lockstep: the fresh pass
	// and the repeat pass must both match byte for byte.
	for _, q := range queries {
		compare(q)
	}
	for _, q := range queries {
		compare(q)
	}

	// PageRank: every node ranked (TopK beyond the node count), compared
	// by node to relative float tolerance.
	preq := wire.PageRankRequest{T: int64(last / 2), Iterations: 15, TopK: 1 << 20}
	want, err := oclient.AnalyticsPageRankCtx(ctx, preq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.client.AnalyticsPageRankCtx(ctx, preq)
	if err != nil {
		t.Fatal(err)
	}
	comparePageRank(t, got, want)
	if got.Supersteps != preq.Iterations+1 {
		t.Fatalf("Supersteps = %d, want %d", got.Supersteps, preq.Iterations+1)
	}

	// The same job asynchronously: submit, poll to done, same result.
	job, err := c.client.AnalyticsPageRankJobCtx(ctx, preq)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "running" || job.ID == "" {
		t.Fatalf("submitted job = %+v, want running with an ID", job)
	}
	st := pollJob(t, c.client, job.ID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("job ended %q (error %q), want done with a result", st.State, st.Error)
	}
	comparePageRank(t, st.Result, want)

	// Kill one partition: mergeable scans degrade to partial (and are not
	// admitted to the coordinator cache), PageRank refuses to answer.
	c.kill(2)
	dd, err := c.client.AnalyticsDegreeCtx(ctx, last/3, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(dd.Partial) != 1 || dd.Partial[0].Partition != 2 {
		t.Fatalf("degree with partition 2 down: partial = %+v", dd.Partial)
	}
	if _, err := c.client.AnalyticsPageRankCtx(ctx, wire.PageRankRequest{T: int64(last / 3), Iterations: 3}); err == nil {
		t.Fatal("pagerank with a partition down must fail, not answer partially")
	}

	// Restart it on the same URL and wait for routing to recover.
	c.restart(t, 2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		dd, err := c.client.AnalyticsDegreeCtx(ctx, last/3, "")
		if err == nil && len(dd.Partial) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not recover after restart: %+v err=%v", dd, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Post-restart cache states differ between the deployments (the
	// restarted worker is cold, the oracle is not), so compare the steady
	// state: the second response on each side is fully cached and must be
	// byte-identical.
	for _, q := range []string{
		fmt.Sprintf("/analytics/degree?t=%d", last/3),
		fmt.Sprintf("/analytics/components?t=%d", last/3),
		fmt.Sprintf("/analytics/evolution?t1=%d&t2=%d", last/3, last*2/3),
	} {
		rawGET(t, ourl+q)
		rawGET(t, frontURL+q)
		compare(q)
	}
	after, err := c.client.AnalyticsPageRankCtx(ctx, preq)
	if err != nil {
		t.Fatal(err)
	}
	comparePageRank(t, after, want)
}

// TestAnalyticsMidJobWorkerKill: a worker that dies mid-job (supersteps
// failing after prepare and start succeeded) must surface as a prompt
// error on the synchronous path and a "failed" job on the asynchronous
// one — never a hung client.
func TestAnalyticsMidJobWorkerKill(t *testing.T) {
	events := testEvents()
	c := newSwapCluster(t, events, 2, Config{PartitionTimeout: 2 * time.Second})
	last := events[len(events)-1].At

	// Partition 0 answers everything except supersteps: prepare and start
	// succeed, the first /analytics/prstep leg fails.
	wk := c.workers[0]
	live := wk.live
	wk.handler.Store(http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/analytics/prstep" {
			http.Error(w, "worker crashed mid-superstep", http.StatusBadGateway)
			return
		}
		live.ServeHTTP(w, r)
	})))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := wire.PageRankRequest{T: int64(last / 2), Iterations: 5}
	if _, err := c.client.AnalyticsPageRankCtx(ctx, req); err == nil {
		t.Fatal("synchronous pagerank with a mid-job kill must fail")
	}
	if ctx.Err() != nil {
		t.Fatal("synchronous pagerank hung until the client deadline instead of failing fast")
	}

	job, err := c.client.AnalyticsPageRankJobCtx(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, c.client, job.ID)
	if st.State != "failed" || st.Error == "" || st.Result != nil {
		t.Fatalf("job after mid-job kill = %+v, want failed with an error", st)
	}

	// The job machine holds the terminal state for polling clients.
	again, err := c.client.AnalyticsJobCtx(context.Background(), job.ID)
	if err != nil || again.State != "failed" {
		t.Fatalf("re-poll = %+v err=%v, want failed", again, err)
	}
	if _, err := c.client.AnalyticsJobCtx(context.Background(), "no-such-job"); err == nil {
		t.Fatal("unknown job ID must 404")
	}
}

func pollJob(t *testing.T, cl *server.Client, id string) *wire.JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := cl.AnalyticsJobCtx(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 15s", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func comparePageRank(t *testing.T, got, want *wire.PageRankResult) {
	t.Helper()
	if got.At != want.At || got.NumNodes != want.NumNodes ||
		got.Damping != want.Damping || got.Iterations != want.Iterations {
		t.Fatalf("pagerank header: got %+v, want %+v", got, want)
	}
	if len(got.Top) != len(want.Top) {
		t.Fatalf("pagerank ranked %d nodes, want %d", len(got.Top), len(want.Top))
	}
	ref := make(map[int64]float64, len(want.Top))
	for _, e := range want.Top {
		ref[e.Node] = e.Score
	}
	for _, e := range got.Top {
		w, ok := ref[e.Node]
		if !ok {
			t.Fatalf("node %d ranked by the cluster, absent from the oracle", e.Node)
		}
		if diff := math.Abs(e.Score - w); diff > 1e-9*math.Max(math.Abs(w), 1) {
			t.Fatalf("node %d: score %.15g, want %.15g (diff %g)", e.Node, e.Score, w, diff)
		}
	}
}
