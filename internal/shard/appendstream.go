package shard

// Streaming ingest through the coordinator: POST /append?stream=1 frames
// are routed per partition as they arrive, with one worker goroutine per
// partition consuming a bounded channel of frame slices. The worker calls
// the same appendToSet machinery as a standalone append (batch-ID
// idempotency, failover retry), so the partitions see a stream exactly as
// a sequence of independent batches — but the reader keeps decoding the
// next frame while earlier slices are still in flight, which is where the
// throughput over per-request appends comes from. When every partition's
// channel is full the reader blocks, the client's TCP send buffer fills,
// and its writes stall: the transport is the flow control, same as the
// replica node's stream window.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"historygraph"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// streamRouteWindow bounds how many frame slices per partition the reader
// will buffer ahead of the worker. Past it the reader blocks, which is the
// coordinator's per-stream backpressure.
const streamRouteWindow = 4

// streamSlice is one frame's share of one partition.
type streamSlice struct {
	events historygraph.EventList
	batch  string            // per-partition idempotency ID
	frame  int               // frame index, for error reporting
	minAt  historygraph.Time // earliest time in the frame, for cache invalidation
}

// streamWorker is one partition's lane: a bounded feed of slices and the
// running aggregate. err is written only by the worker goroutine and read
// only after it exits.
type streamWorker struct {
	ch  chan streamSlice
	res server.AppendResult
	err *server.PartitionError
}

// runStreamWorker drains one partition's slices in order. After the first
// failure it keeps draining but drops the remaining slices — the recorded
// error names the frame where the partition's coverage stops, so a client
// resuming the stream knows exactly where to replay from.
func (co *Coordinator) runStreamWorker(base context.Context, part int, rs *replicaSet, wk *streamWorker, wg *sync.WaitGroup) {
	defer wg.Done()
	label := strconv.Itoa(part)
	for sl := range wk.ch {
		if wk.err != nil {
			continue
		}
		co.legs.With(label).Inc()
		begin := time.Now()
		ctx, cancel := context.WithTimeout(base, co.timeout)
		res, err := co.appendBatchToSet(ctx, rs, sl.events, sl.batch)
		cancel()
		co.legDur.With(label).Observe(time.Since(begin).Seconds())
		// Invalidate after the slice lands (not before): a merge cached
		// between an early invalidation and the apply would go stale the
		// moment the events hit the partition.
		if co.cache != nil {
			co.cache.InvalidateFrom(sl.minAt)
		}
		if err != nil {
			co.legFails.With(label).Inc()
			pe := &server.PartitionError{Partition: part, Error: fmt.Sprintf("frame %d: %s", sl.frame, err)}
			var he *server.HTTPError
			if errors.As(err, &he) {
				pe.Status = he.Status
			}
			wk.err = pe
			continue
		}
		wk.res.Appended += res.Appended
		if res.LastTime > wk.res.LastTime {
			wk.res.LastTime = res.LastTime
		}
		wk.res.Invalidated += res.Invalidated
		wk.res.Deduped = wk.res.Deduped || res.Deduped
	}
}

// handleAppendStream routes a streaming ingest body across the partitions
// frame by frame and answers one aggregated AppendResult after the end
// frame.
func (co *Coordinator) handleAppendStream(w http.ResponseWriter, r *http.Request) {
	dec, err := wire.NewAppendStreamDecoder(r.Body)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// The append gate is held shared for the whole stream: every frame is
	// routed by the routing captured here, and a reshard cutover (which
	// takes the gate exclusively) waits the stream out rather than
	// flipping the table under it.
	co.appendGate.RLock()
	defer co.appendGate.RUnlock()
	rt := co.rt()
	server.Annotate(r.Context(), "partitions", strconv.Itoa(len(rt.sets)))
	// Like the per-request path, in-flight slices detach from the client's
	// cancellation: aborting half-landed frames on a disconnect would leave
	// the partitions inconsistent with no response to report the split.
	// Every slice carries the captured routing epoch so a worker fenced
	// ahead (a cutover pushed from outside this coordinator) rejects with
	// 410 instead of silently accepting misrouted events.
	base := server.WithEpoch(context.WithoutCancel(r.Context()), rt.epoch())
	workers := make([]*streamWorker, len(rt.sets))
	var wg sync.WaitGroup
	for i := range rt.sets {
		workers[i] = &streamWorker{ch: make(chan streamSlice, streamRouteWindow)}
		wg.Add(1)
		go co.runStreamWorker(base, i, rt.sets[i], workers[i], &wg)
	}
	settle := func() {
		for _, wk := range workers {
			close(wk.ch)
		}
		wg.Wait()
	}
	frames := 0
	// fail aborts the stream. Frames already handed to the workers still
	// settle (and may be durable on their partitions) — the message tells
	// the client how far routing got so a resumed stream replays from
	// there; per-partition batch IDs make the overlap safe.
	fail := func(status int, cause error) {
		settle()
		server.WriteError(w, status, fmt.Errorf(
			"append stream failed at frame %d: %w (earlier frames were routed and may be durable)", frames, cause))
	}
	for {
		frame, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(http.StatusBadRequest, err)
			return
		}
		// Fresh slices per frame: the workers retain them past this
		// iteration, and the decoder's event slice is scratch.
		perPart := make([]historygraph.EventList, len(rt.sets))
		minAt := historygraph.Time(0)
		for i, ej := range frame.Events {
			ev, err := server.EventFromJSON(ej)
			if err != nil {
				fail(http.StatusBadRequest, fmt.Errorf("event %d: %w", i, err))
				return
			}
			if err := Routable(ev); err != nil {
				fail(http.StatusUnprocessableEntity, fmt.Errorf("event %d: %w", i, err))
				return
			}
			p := rt.table.Partition(ev)
			perPart[p] = append(perPart[p], ev)
			if i == 0 || ev.At < minAt {
				minAt = ev.At
			}
		}
		// Derive per-partition batch IDs: a client-tagged frame dedupes per
		// partition across stream retries; an untagged frame gets a minted
		// ID per slice (same idempotency-across-failover guarantee as a
		// standalone append).
		base := frame.Batch
		for p, slice := range perPart {
			if len(slice) == 0 {
				continue
			}
			batch := base
			if batch != "" {
				batch = base + "." + strconv.Itoa(p)
			} else {
				batch = newBatchID()
			}
			workers[p].ch <- streamSlice{events: slice, batch: batch, frame: frames, minAt: minAt}
		}
		frames++
	}
	settle()
	var errs []server.PartitionError
	out := server.AppendResult{}
	for _, wk := range workers {
		if wk.err != nil {
			errs = append(errs, *wk.err)
			continue
		}
		out.Appended += wk.res.Appended
		if wk.res.LastTime > out.LastTime {
			out.LastTime = wk.res.LastTime
		}
		out.Invalidated += wk.res.Invalidated
		out.Deduped = out.Deduped || wk.res.Deduped
	}
	if len(errs) == len(rt.sets) && frames > 0 {
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	co.notePartial(errs, len(rt.sets))
	out.Partial = errs
	server.WriteWire(w, r, http.StatusOK, out)
}
