package shard

// Merging partial answers relies on one invariant: the node-hash
// partitioning confines every element's entire event history to exactly
// one partition (nodes and node attributes hash by node ID; edges and
// edge attributes hash by the edge's From endpoint, which every edge
// event carries). Partial snapshots are therefore disjoint, so a merge
// is a union — counts add, element lists concatenate — and re-sorting by
// ID reproduces the exact bytes an unsharded server would emit.

import (
	"sort"

	"historygraph/internal/server"
)

// mergeSnapshots unions partial snapshots into one response. Failed
// partitions (nil entries) are skipped and reported via errs. The merged
// response is Cached only when every partition answered from its hot
// cache — the cluster-wide analogue of the unsharded flag.
func mergeSnapshots(at int64, parts []*server.SnapshotJSON, errs []server.PartitionError) server.SnapshotJSON {
	out := server.SnapshotJSON{At: at, Partial: errs}
	cached := len(errs) == 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.NumNodes += p.NumNodes
		out.NumEdges += p.NumEdges
		cached = cached && p.Cached
		out.Nodes = append(out.Nodes, p.Nodes...)
		out.Edges = append(out.Edges, p.Edges...)
	}
	out.Cached = cached
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].ID < out.Nodes[j].ID })
	sort.Slice(out.Edges, func(i, j int) bool { return out.Edges[i].ID < out.Edges[j].ID })
	return out
}

// mergeNeighbors unions per-partition adjacency: degrees add (each
// incident edge lives on exactly one partition) and neighbor sets union.
// The merged neighbor list is sorted — partition order is meaningless.
func mergeNeighbors(at, node int64, parts []*server.NeighborsJSON, errs []server.PartitionError) server.NeighborsJSON {
	out := server.NeighborsJSON{At: at, Node: node, Neighbors: []int64{}, Partial: errs}
	cached := len(errs) == 0
	seen := make(map[int64]struct{})
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Degree += p.Degree
		cached = cached && p.Cached
		for _, n := range p.Neighbors {
			// A neighbor can repeat across partitions: two parallel edges
			// between the same endpoints may live on different partitions
			// when their From endpoints differ.
			if _, dup := seen[n]; !dup {
				seen[n] = struct{}{}
				out.Neighbors = append(out.Neighbors, n)
			}
		}
	}
	out.Cached = cached
	sort.Slice(out.Neighbors, func(i, j int) bool { return out.Neighbors[i] < out.Neighbors[j] })
	return out
}

// mergeIntervals unions interval answers: added elements are disjoint
// across partitions, and the transient event streams interleave by
// timestamp (ties keep partition order — the global recorded order
// within one timestamp is not reconstructible from the shards).
func mergeIntervals(parts []*server.IntervalJSON, errs []server.PartitionError) server.IntervalJSON {
	out := server.IntervalJSON{Partial: errs}
	first := true
	for _, p := range parts {
		if p == nil {
			continue
		}
		if first {
			out.Start, out.End = p.Start, p.End
			first = false
		}
		out.NumNodes += p.NumNodes
		out.NumEdges += p.NumEdges
		out.Nodes = append(out.Nodes, p.Nodes...)
		out.Edges = append(out.Edges, p.Edges...)
		out.Transients = append(out.Transients, p.Transients...)
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].ID < out.Nodes[j].ID })
	sort.Slice(out.Edges, func(i, j int) bool { return out.Edges[i].ID < out.Edges[j].ID })
	sort.SliceStable(out.Transients, func(i, j int) bool { return out.Transients[i].At < out.Transients[j].At })
	return out
}
