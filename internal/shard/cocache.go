package shard

import (
	"container/list"
	"sync"
	"time"

	"historygraph"
	"historygraph/internal/metrics"
)

// cacheCounters are the registry-owned hit/miss/eviction counters the
// merged-response cache charges; /stats reads the same counters /metrics
// exposes.
type cacheCounters struct {
	hits, misses, evictions *metrics.Counter
}

// coCache is the coordinator-side merged-response cache: a small LRU over
// fully *encoded* response bodies, keyed by the flight-group key plus the
// codec name ("snap|120|…|json"). A hit serves a hot timepoint without any
// fan-out at all — and, since the body was encoded when it was inserted,
// without any encode work either: the handler's hit path is one Write of
// the stored bytes. The N scatter legs, the N decodes, the merge, and the
// re-encode all disappear.
//
// Only complete responses are admitted (a partial one is missing a
// partition's data and must not be replayed once the partition returns).
// Invalidation mirrors the worker-side hot-snapshot cache: appending at
// time t evicts every entry that depends on any timepoint >= t, and a
// generation counter keeps a fan-out that overlapped an append from
// registering its pre-append merge afterwards.
//
// That invalidation only sees appends routed through this coordinator. An
// append sent directly to a partition primary (the replica /append
// endpoint accepts them) bypasses it, and a hot cached merge would stay
// stale indefinitely — so deployments must either route every write
// through the coordinator (the supported topology) or set Config.CacheTTL
// to bound how old a served entry can be.
type coCache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration            // 0: entries live until invalidation/eviction
	entries  map[string]*list.Element // values are *coEntry
	lru      *list.List               // front = most recently used
	gen      int64

	counters cacheCounters
}

// coEntry is one cached merged response, already encoded. maxT is the
// latest timepoint the response depends on: an append at or before it
// invalidates the entry. contentType names the codec the body was encoded
// with, so a hit replays the exact headers of the original answer.
type coEntry struct {
	key         string
	maxT        historygraph.Time
	body        []byte
	contentType string
	added       time.Time
}

func newCoCache(capacity int, ttl time.Duration, counters cacheCounters) *coCache {
	return &coCache{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		counters: counters,
	}
}

// Get returns the cached encoded body and content type for key. A
// TTL-expired entry is evicted and reported as a miss.
func (c *coCache) Get(key string) ([]byte, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		c.counters.misses.Inc()
		return nil, "", false
	}
	ent := elem.Value.(*coEntry)
	if c.ttl > 0 && time.Since(ent.added) > c.ttl {
		delete(c.entries, ent.key)
		c.lru.Remove(elem)
		c.counters.evictions.Inc()
		c.counters.misses.Inc()
		return nil, "", false
	}
	c.lru.MoveToFront(elem)
	c.counters.hits.Inc()
	return ent.body, ent.contentType, true
}

// Gen returns the invalidation generation; snapshot it before a fan-out
// and pass it to Insert.
func (c *coCache) Gen() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Insert registers a complete merged response's encoded body, unless an
// invalidation pass ran since gen was snapshotted (the merge may predate
// events an append already made visible).
func (c *coCache) Insert(key string, maxT historygraph.Time, body []byte, contentType string, gen int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	ent := &coEntry{key: key, maxT: maxT, body: body, contentType: contentType, added: time.Now()}
	if elem, dup := c.entries[key]; dup {
		elem.Value = ent
		c.lru.MoveToFront(elem)
		return
	}
	c.entries[key] = c.lru.PushFront(ent)
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*coEntry).key)
		c.lru.Remove(back)
		c.counters.evictions.Inc()
	}
}

// InvalidateFrom evicts every entry depending on a timepoint >= t (history
// is append-only, so responses built purely from earlier timepoints stay
// exact) and bumps the generation so overlapping fan-outs do not register.
func (c *coCache) InvalidateFrom(t historygraph.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	n := 0
	for elem := c.lru.Front(); elem != nil; {
		next := elem.Next()
		if ent := elem.Value.(*coEntry); ent.maxT >= t {
			delete(c.entries, ent.key)
			c.lru.Remove(elem)
			n++
		}
		elem = next
	}
	return n
}

// Len returns the number of resident bodies (the dg_cache_entries gauge
// reads it at scrape time).
func (c *coCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
