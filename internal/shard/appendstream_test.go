package shard

import (
	"fmt"
	"strings"
	"testing"

	"historygraph"
)

// TestCoordinatorAppendStream: frames streamed through the coordinator
// split across the partitions exactly like standalone appends — the
// merged snapshot stays byte-identical to an unsharded server fed the
// same events.
func TestCoordinatorAppendStream(t *testing.T) {
	seed := testEvents()
	gm, oclient, ourl := oracle(t, seed)
	c := newCluster(t, seed, 3, Config{})
	last := gm.LastTime()

	// Stream three frames of fresh nodes and edges; node IDs spread over
	// the partition space so every lane sees traffic.
	var streamed historygraph.EventList
	stream, err := c.client.AppendStream()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for f := 0; f < 3; f++ {
		var events historygraph.EventList
		at := last + historygraph.Time(f+1)
		for i := 0; i < 12; i++ {
			events = append(events, historygraph.Event{
				Type: historygraph.AddNode, At: at, Node: historygraph.NodeID(500000 + f*12 + i),
			})
		}
		events = append(events, historygraph.Event{
			Type: historygraph.AddEdge, At: at, Edge: historygraph.EdgeID(900000 + f),
			Node: historygraph.NodeID(500000 + f*12), Node2: historygraph.NodeID(500000 + f*12 + 1),
		})
		if err := stream.SendBatch(events, fmt.Sprintf("co-stream-%d", f)); err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, events...)
		total += len(events)
	}
	res, err := stream.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != total {
		t.Fatalf("stream appended %d, want %d", res.Appended, total)
	}
	if len(res.Partial) != 0 {
		t.Fatalf("healthy stream reported partial failures: %+v", res.Partial)
	}
	if res.Deduped {
		t.Fatal("fresh stream reported deduped")
	}
	// (Replay-dedup through the coordinator needs replica-node workers;
	// that drill lives in internal/replica's cluster tests.)

	if _, err := oclient.Append(streamed); err != nil {
		t.Fatal(err)
	}
	newLast := last + 3
	frontURL := c.client.BaseURL()
	for _, tp := range []historygraph.Time{last, newLast} {
		q := fmt.Sprintf("/snapshot?t=%d&full=1", tp)
		want := rawGET(t, ourl+q)
		got := rawGET(t, frontURL+q)
		if string(got) != string(want) {
			t.Fatalf("streamed cluster diverges from oracle at %s:\n got: %.300s\nwant: %.300s", q, got, want)
		}
	}
}

// TestCoordinatorAppendStreamRejectsUnroutable: an endpointless edge
// event aborts the stream with a 422 naming the frame, before the bad
// frame reaches any partition.
func TestCoordinatorAppendStreamRejectsUnroutable(t *testing.T) {
	seed := testEvents()
	c := newCluster(t, seed, 2, Config{})
	_, last := seed.Span()

	stream, err := c.client.AppendStream()
	if err != nil {
		t.Fatal(err)
	}
	good := historygraph.EventList{{Type: historygraph.AddNode, At: last + 1, Node: 700001}}
	if err := stream.Send(good); err != nil {
		t.Fatal(err)
	}
	bad := historygraph.EventList{{Type: historygraph.DelEdge, At: last + 2, Edge: 700002}}
	stream.Send(bad) // failure surfaces on Close
	_, err = stream.Close()
	if err == nil {
		t.Fatal("unroutable frame closed clean")
	}
	if !strings.Contains(err.Error(), "frame 1") {
		t.Fatalf("abort does not name the failing frame: %v", err)
	}
}
