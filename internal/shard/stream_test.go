package shard

// Streaming coverage at the cluster level: the merged chunked stream
// must assemble to exactly what the unsharded oracle answers, a worker
// dying MID-stream must surface as a well-formed partial response (never
// a truncated merge), and stream bodies must hit the merged-response
// cache with zero fan-out.

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"historygraph"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// TestShardedStreamMatchesUnsharded: a streamed snapshot through the
// 4-partition coordinator assembles to the same full snapshot the
// unsharded oracle serves (JSON whole-message), and to the oracle's own
// streamed answer.
func TestShardedStreamMatchesUnsharded(t *testing.T) {
	events := testEvents()
	gm, oclient, ourl := oracle(t, events)
	c := newCluster(t, events, 4, Config{})
	mid := gm.LastTime() / 2

	want, err := oclient.Snapshot(mid, "+node:all+edge:all", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.client.SetWire("stream"); err != nil {
		t.Fatal(err)
	}
	got, err := c.client.Snapshot(mid, "+node:all+edge:all", true)
	if err != nil {
		t.Fatal(err)
	}
	got.Cached, got.Coalesced = want.Cached, want.Coalesced
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged stream differs from oracle: %d/%d vs %d/%d nodes/edges",
			got.NumNodes, got.NumEdges, want.NumNodes, want.NumEdges)
	}

	// And against the oracle's own streamed answer (byte-level check of
	// the assembled structs; the stream bytes themselves legitimately
	// differ in run boundaries).
	osc := server.NewClient(ourl)
	if _, err := osc.SetWire("stream"); err != nil {
		t.Fatal(err)
	}
	owant, err := osc.Snapshot(mid, "+node:all+edge:all", true)
	if err != nil {
		t.Fatal(err)
	}
	got.Cached, got.Coalesced = owant.Cached, owant.Coalesced
	if !reflect.DeepEqual(got, owant) {
		t.Fatal("merged stream differs from oracle's streamed answer")
	}
}

// TestStreamCoordinatorCacheHit: the merged stream body lands in the
// coordinator cache; a repeat request replays it with no additional
// fan-out and still assembles exactly.
func TestStreamCoordinatorCacheHit(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 4, Config{})
	mid := events[len(events)-1].At / 2
	if _, err := c.client.SetWire("stream"); err != nil {
		t.Fatal(err)
	}
	first, err := c.client.Snapshot(mid, "", true)
	if err != nil {
		t.Fatal(err)
	}
	fanouts := c.co.Fanouts()
	second, err := c.client.Snapshot(mid, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.co.Fanouts() - fanouts; got != 0 {
		t.Fatalf("stream cache hit ran %d fan-outs, want 0", got)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("replayed stream body differs from the original")
	}
}

// cutWriter aborts the connection once more than limit bytes of a
// streaming response have been written — a worker dying mid-stream, with
// everything before the cut already flushed to the peer.
type cutWriter struct {
	http.ResponseWriter
	n, limit int
}

func (cw *cutWriter) Write(p []byte) (int, error) {
	if cw.n+len(p) > cw.limit {
		if f, ok := cw.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	cw.n += len(p)
	return cw.ResponseWriter.Write(p)
}

func (cw *cutWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestStreamPartialOnMidStreamWorkerDeath: one worker's stream is cut
// after several runs have been delivered. The coordinator must still
// finish a well-formed merged stream — elements already merged stay, the
// summary frame names the dead partition in partial, and the client sees
// a decodable (not truncated) response.
func TestStreamPartialOnMidStreamWorkerDeath(t *testing.T) {
	const parts = 3
	const deadPart = 1
	events := testEvents()
	var urls []string
	for p, slice := range PartitionEvents(events, parts) {
		gm := buildManager(t, slice)
		// Tiny runs so the victim flushes many frames before the cut.
		svc := server.New(gm, server.Config{CacheSize: 32, StreamRun: 8})
		inner := svc.Handler()
		handler := inner
		if p == deadPart {
			handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if wire.WantsStream(r.Header.Get("Accept")) {
					// Generous enough for the header and a few runs,
					// small enough to die well before the summary.
					inner.ServeHTTP(&cutWriter{ResponseWriter: w, limit: 500}, r)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		hs := httptest.NewServer(handler)
		t.Cleanup(func() { hs.Close(); svc.Close() })
		urls = append(urls, hs.URL)
	}
	co, err := New(urls, Config{StreamRun: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)

	last := events[len(events)-1].At
	req, _ := http.NewRequest(http.MethodGet,
		front.URL+"/snapshot?t="+strconv.FormatInt(int64(last), 10)+"&full=1&attrs=%2Bnode:all", nil)
	req.Header.Set("Accept", wire.ContentTypeBinaryStream)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !wire.IsStreamContentType(ct) {
		t.Fatalf("content type %s", ct)
	}
	snap, err := wire.DecodeSnapshotStream(resp.Body)
	if err != nil {
		t.Fatalf("merged stream did not decode cleanly (truncated merge?): %v", err)
	}
	if len(snap.Partial) != 1 || snap.Partial[0].Partition != deadPart {
		t.Fatalf("partial = %+v, want exactly partition %d", snap.Partial, deadPart)
	}
	if !strings.Contains(snap.Partial[0].Error, "truncated") {
		t.Fatalf("partial error %q does not identify the truncated leg", snap.Partial[0].Error)
	}
	if snap.NumNodes != len(snap.Nodes) || snap.NumEdges != len(snap.Edges) {
		t.Fatalf("summary counts (%d/%d) disagree with delivered elements (%d/%d)",
			snap.NumNodes, snap.NumEdges, len(snap.Nodes), len(snap.Edges))
	}
	// The cut hit MID-stream: runs the victim flushed before dying were
	// already merged, so some of its elements must be present.
	deadNodes := 0
	for _, n := range snap.Nodes {
		ev := historygraph.Event{Type: historygraph.AddNode, Node: historygraph.NodeID(n.ID)}
		if PartitionOf(ev, parts) == deadPart {
			deadNodes++
		}
	}
	if deadNodes == 0 {
		t.Fatal("no elements from the dead partition arrived — the cut was not mid-stream")
	}
	// And the surviving partitions are complete: every node the oracle
	// holds outside the dead partition is present.
	_, oclient, _ := oracle(t, events)
	want, err := oclient.Snapshot(last, "+node:all", true)
	if err != nil {
		t.Fatal(err)
	}
	wantAlive := 0
	for _, n := range want.Nodes {
		ev := historygraph.Event{Type: historygraph.AddNode, Node: historygraph.NodeID(n.ID)}
		if PartitionOf(ev, parts) != deadPart {
			wantAlive++
		}
	}
	gotAlive := len(snap.Nodes) - deadNodes
	if gotAlive != wantAlive {
		t.Fatalf("surviving partitions delivered %d nodes, oracle holds %d", gotAlive, wantAlive)
	}
}
