package shard

// The streaming /snapshot path at the coordinator: a k-way merge of live
// worker streams. Each scatter leg is a chunked element-run stream
// (server.SnapshotStreamCtx) consumed run by run; the merge repeatedly
// emits the smallest next ID across the legs into bounded output runs.
// Disjoint partitions mean the merge is a plain sorted union — and since
// every leg arrives ID-sorted, it never needs more than one buffered run
// per leg: coordinator peak memory under N concurrent large snapshots is
// O(run size × partitions) per request, not O(snapshot).
//
// Failure semantics differ from the whole-message path by necessity:
// once the merged stream has started, a leg that dies mid-stream cannot
// be retried on another replica (its earlier runs are already interleaved
// into the output). The dead partition is dropped and reported in the
// terminating summary frame's partial list — the client gets a complete,
// well-formed stream that says exactly which partitions are missing,
// never a truncated merge. Replica retry still applies at open time,
// before any bytes are merged.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"historygraph"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// legStream is one partition's live snapshot stream plus its merge
// cursor: the currently buffered run of each phase and the terminal
// state (summary or error).
type legStream struct {
	part   int
	ss     *server.SnapshotStream
	cancel context.CancelFunc

	nodes   []wire.Node
	ni      int
	edges   []wire.Edge
	ei      int
	summary *wire.Snapshot
	err     error // terminal: the leg is dead and must be reaped
}

// pull reads one frame into the leg's buffers.
func (l *legStream) pull() {
	frame, err := l.ss.Next()
	if err != nil {
		l.err = err
		return
	}
	switch {
	case frame.Summary != nil:
		l.summary = frame.Summary
	case frame.Nodes != nil:
		l.nodes, l.ni = frame.Nodes, 0
	case frame.Edges != nil:
		l.edges, l.ei = frame.Edges, 0
	}
}

// curNode returns the leg's next unconsumed node, pulling frames as
// needed. ok is false when the leg has left its node phase (an edge run
// or the summary arrived, buffered for later) or died (l.err set).
func (l *legStream) curNode() (wire.Node, bool) {
	for l.err == nil && l.summary == nil && l.ei >= len(l.edges) {
		if l.ni < len(l.nodes) {
			return l.nodes[l.ni], true
		}
		l.pull()
	}
	return wire.Node{}, false
}

// curEdge returns the leg's next unconsumed edge, pulling frames as
// needed; ok is false at the summary or on death.
func (l *legStream) curEdge() (wire.Edge, bool) {
	for l.err == nil && l.summary == nil {
		if l.ei < len(l.edges) {
			return l.edges[l.ei], true
		}
		l.pull()
	}
	return wire.Edge{}, false
}

// drainSummary pulls until the leg's summary frame (or death).
func (l *legStream) drainSummary() {
	for l.err == nil && l.summary == nil {
		l.pull()
	}
}

func (l *legStream) close() {
	l.ss.Close()
	l.cancel()
}

// openStreams opens one snapshot stream per partition concurrently, with
// the usual replica retry (readFrom) while no bytes are committed yet.
// legs[i] is nil for a partition that failed entirely; errs reports those.
//
// Two different bounds apply per leg. The *open* — finding a member that
// answers the stream header, retries included — is held to the ordinary
// partition timeout, like any scatter leg. The stream *body* is not:
// reads are back-pressured by the client draining the merged output, so
// delivery legitimately takes as long as the client takes to read, and
// only the much larger streamCap bounds it (so a wedged worker or an
// abandoned client cannot pin legs forever).
// Stream legs derive from parent — the merged request's own context —
// so a client that closes the merged stream cancels every worker leg
// immediately instead of leaving them blocked on back-pressured writes
// until streamCap expires. The per-partition leg counter and the
// duration histogram observe the open (header answered), the phase the
// partition timeout governs.
func (co *Coordinator) openStreams(rt *routing, parent context.Context, t historygraph.Time, attrs string) (legs []*legStream, errs []server.PartitionError) {
	legs = make([]*legStream, len(rt.sets))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range rt.sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			part := strconv.Itoa(i)
			co.legs.With(part).Inc()
			begin := time.Now()
			tctx, cancel := context.WithTimeout(parent, co.streamCap)
			ctx := server.WithEpoch(tctx, rt.epoch())
			// The open guard cancels the leg if no member has answered
			// the stream header within the partition timeout; once the
			// stream is live the guard is disarmed and only streamCap
			// applies.
			openGuard := time.AfterFunc(co.timeout, cancel)
			ss, err := readFrom(ctx, parent, rt.sets[i], func(cl *server.Client) (*server.SnapshotStream, error) {
				return cl.SnapshotStreamCtx(ctx, t, attrs)
			})
			openGuard.Stop()
			co.legDur.With(part).Observe(time.Since(begin).Seconds())
			if err != nil {
				cancel()
				if parent.Err() != nil {
					co.legCancels.With(part).Inc()
				} else {
					co.legFails.With(part).Inc()
				}
				pe := server.PartitionError{Partition: i, Error: err.Error()}
				var he *server.HTTPError
				if errors.As(err, &he) {
					pe.Status = he.Status
				}
				mu.Lock()
				errs = append(errs, pe)
				mu.Unlock()
				return
			}
			legs[i] = &legStream{part: i, ss: ss, cancel: cancel}
		}(i)
	}
	wg.Wait()
	return legs, errs
}

// streamSnapshot answers a full /snapshot request as a merged chunked
// stream. Streams bypass the flight group (a live stream cannot be
// shared) but still hit and feed the merged-response cache: a hot
// streamed timepoint replays the stored frames in one write with no
// fan-out and no encode.
func (co *Coordinator) streamSnapshot(w http.ResponseWriter, r *http.Request, t historygraph.Time, attrs string, key string) {
	ck := cacheKey(key, wire.NameBinaryStream)
	if co.cache != nil {
		if body, contentType, ok := co.cache.Get(ck); ok {
			server.Annotate(r.Context(), "cache", "merged-hit")
			w.Header().Set("Content-Type", contentType)
			w.WriteHeader(http.StatusOK)
			w.Write(body)
			return
		}
	}
	server.Annotate(r.Context(), "cache", "miss")
	gen := co.cacheGen()
	co.fanouts.Inc()

	// A live stream cannot be shared, so its legs hang directly off the
	// request context: the client closing the merged stream cancels them
	// at once (satisfying back-pressured workers included) instead of
	// pinning workers until streamCap runs out.
	parent := r.Context()
	rt := co.rt()
	legs, errs := co.openStreams(rt, parent, t, attrs)
	if staleEpoch(errs) {
		// No bytes are committed yet at open time, so a routing-epoch fence
		// gets one whole-scatter reopen against the fresh table — the same
		// single-retry contract as scatterRead.
		if fresh := co.awaitEpochChange(rt.epoch(), co.epochWait()); fresh != nil {
			co.reroutes.Inc()
			for _, l := range legs {
				if l != nil {
					l.close()
				}
			}
			rt = fresh
			legs, errs = co.openStreams(rt, parent, t, attrs)
		}
	}
	live := make([]*legStream, 0, len(legs))
	for _, l := range legs {
		if l != nil {
			live = append(live, l)
		}
	}
	if len(live) == 0 {
		sort.Slice(errs, func(a, b int) bool { return errs[a].Partition < errs[b].Partition })
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	defer func() {
		// Legs still open when the handler unwinds with a dead client
		// were canceled by that client, not by worker failure.
		canceled := parent.Err() != nil
		for _, l := range live {
			if canceled {
				co.legCancels.With(strconv.Itoa(l.part)).Inc()
			}
			l.close()
		}
	}()
	// reap drops dead legs from live into errs; their already-merged runs
	// stay (they were exact data), the summary reports the hole. A leg
	// that died because the client canceled the merged stream is counted
	// as a cancel, not a partition failure.
	reap := func() {
		kept := live[:0]
		for _, l := range live {
			if l.err != nil {
				if parent.Err() != nil {
					co.legCancels.With(strconv.Itoa(l.part)).Inc()
				} else {
					co.legFails.With(strconv.Itoa(l.part)).Inc()
				}
				errs = append(errs, server.PartitionError{Partition: l.part, Error: l.err.Error()})
				l.close()
			} else {
				kept = append(kept, l)
			}
		}
		live = kept
	}

	w.Header().Set("Content-Type", wire.ContentTypeBinaryStream)
	w.WriteHeader(http.StatusOK)
	var sink io.Writer = w
	var capture *wire.CappedBuffer
	if co.cache != nil {
		capture = &wire.CappedBuffer{Max: wire.MaxCachedBody}
		sink = io.MultiWriter(w, capture)
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	se := wire.NewStreamEncoder(sink)

	// Node phase: emit the globally smallest next node ID until every leg
	// has left its node phase. Linear scan per element — partition counts
	// are small and the runs behind the cursors are contiguous memory.
	nodesOut, edgesOut := 0, 0
	nrun := make([]wire.Node, 0, co.runSize)
	for {
		var best *legStream
		var bestNode wire.Node
		for _, l := range live {
			if nd, ok := l.curNode(); ok && (best == nil || nd.ID < bestNode.ID) {
				best, bestNode = l, nd
			}
		}
		reap()
		if best == nil {
			break
		}
		best.ni++
		nrun = append(nrun, bestNode)
		nodesOut++
		if len(nrun) == co.runSize {
			if se.Nodes(nrun) != nil {
				return // client went away; abandon (stream stays truncated)
			}
			nrun = nrun[:0]
			flush()
		}
	}
	if len(nrun) > 0 {
		if se.Nodes(nrun) != nil {
			return
		}
		flush()
	}
	// Edge phase, identically.
	erun := make([]wire.Edge, 0, co.runSize)
	for {
		var best *legStream
		var bestEdge wire.Edge
		for _, l := range live {
			if ed, ok := l.curEdge(); ok && (best == nil || ed.ID < bestEdge.ID) {
				best, bestEdge = l, ed
			}
		}
		reap()
		if best == nil {
			break
		}
		best.ei++
		erun = append(erun, bestEdge)
		edgesOut++
		if len(erun) == co.runSize {
			if se.Edges(erun) != nil {
				return
			}
			erun = erun[:0]
			flush()
		}
	}
	if len(erun) > 0 {
		if se.Edges(erun) != nil {
			return
		}
		flush()
	}
	for _, l := range live {
		l.drainSummary()
	}
	reap()
	sort.Slice(errs, func(a, b int) bool { return errs[a].Partition < errs[b].Partition })
	// Cached mirrors the whole-message merge: on only when every
	// partition answered from its hot cache and nothing is missing.
	cached := len(errs) == 0
	for _, l := range live {
		cached = cached && l.summary.Cached
	}
	sum := server.SnapshotJSON{
		At: int64(t), NumNodes: nodesOut, NumEdges: edgesOut,
		Cached: cached, Partial: errs,
	}
	if se.Summary(&sum) != nil {
		return
	}
	flush()
	co.notePartial(errs, len(rt.sets))
	if capture != nil && len(errs) == 0 {
		if body, ok := capture.Bytes(); ok {
			co.cache.Insert(ck, t, body, wire.ContentTypeBinaryStream, gen)
		}
	}
}
