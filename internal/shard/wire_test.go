package shard

// Wire-codec coverage at the cluster level: binary scatter legs must be
// invisible in the external JSON bytes, a binary client must decode the
// same structs a JSON client does, and a merged-response cache hit must
// serve pre-encoded bytes with zero encode work.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// TestShardedBinaryLegsMatchUnsharded re-runs the byte-identity oracle
// with the coordinator's scatter legs speaking binary: the workers encode
// binary, the coordinator decodes and merges structs, and the external
// JSON answer must still be byte-identical to the unsharded server's.
func TestShardedBinaryLegsMatchUnsharded(t *testing.T) {
	events := testEvents()
	gm, _, ourl := oracle(t, events)
	c := newCluster(t, events, 4, Config{Wire: "binary"})
	last := gm.LastTime()

	frontURL := c.client.BaseURL()
	for _, tp := range []historygraph.Time{last / 4, last / 2, last} {
		// /snapshot is the byte-identity surface (the same one the JSON-leg
		// oracle test asserts); /neighbors merges to a sorted union, so it
		// is compared semantically below.
		for _, query := range []string{
			fmt.Sprintf("/snapshot?t=%d&full=1", tp),
			fmt.Sprintf("/snapshot?t=%d&attrs=%%2Bnode:all%%2Bedge:all&full=1", tp),
			fmt.Sprintf("/snapshot?t=%d", tp),
		} {
			want := rawGET(t, ourl+query)
			got := rawGET(t, frontURL+query)
			if string(got) != string(want) {
				t.Fatalf("binary-leg cluster %s diverges from unsharded:\n got: %.400s\nwant: %.400s", query, got, want)
			}
		}
		oc := server.NewClient(ourl)
		wantN, err := oc.Neighbors(tp, 7, "")
		if err != nil {
			t.Fatal(err)
		}
		gotN, err := c.client.Neighbors(tp, 7, "")
		if err != nil {
			t.Fatal(err)
		}
		if gotN.Degree != wantN.Degree || len(gotN.Neighbors) != len(wantN.Neighbors) {
			t.Fatalf("t=%d neighbors diverge: got %+v want %+v", tp, gotN, wantN)
		}
		wantSet := make(map[int64]bool, len(wantN.Neighbors))
		for _, n := range wantN.Neighbors {
			wantSet[n] = true
		}
		for _, n := range gotN.Neighbors {
			if !wantSet[n] {
				t.Fatalf("t=%d: merged neighbors contain %d, oracle does not", tp, n)
			}
		}
	}
}

// TestBinaryClientMatchesJSONClient asks the same coordinator the same
// question over both codecs: the decoded structs must be identical, and
// the binary body must actually be binary (and smaller on full
// responses).
func TestBinaryClientMatchesJSONClient(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 4, Config{CacheSize: -1})
	last := c.workers[0].LastTime()
	for _, w := range c.workers {
		if w.LastTime() > last {
			last = w.LastTime()
		}
	}

	jsonClient := c.client
	binClient, err := server.NewClient(c.client.BaseURL()).SetWire("binary")
	if err != nil {
		t.Fatal(err)
	}

	jsnap, err := jsonClient.Snapshot(last/2, "", true)
	if err != nil {
		t.Fatal(err)
	}
	bsnap, err := binClient.Snapshot(last/2, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if jsnap.NumNodes != bsnap.NumNodes || jsnap.NumEdges != bsnap.NumEdges ||
		len(jsnap.Nodes) != len(bsnap.Nodes) || len(jsnap.Edges) != len(bsnap.Edges) {
		t.Fatalf("binary client decoded a different snapshot: %+v vs %+v", bsnap, jsnap)
	}
	for i := range jsnap.Nodes {
		if jsnap.Nodes[i].ID != bsnap.Nodes[i].ID {
			t.Fatalf("node %d: id %d vs %d", i, bsnap.Nodes[i].ID, jsnap.Nodes[i].ID)
		}
		if len(jsnap.Nodes[i].Attrs) != len(bsnap.Nodes[i].Attrs) {
			t.Fatalf("node %d: attr count mismatch", i)
		}
	}

	// The raw binary response: right content type, smaller than JSON.
	req, _ := http.NewRequest(http.MethodGet, c.client.BaseURL()+fmt.Sprintf("/snapshot?t=%d&full=1", last/2), nil)
	req.Header.Set("Accept", wire.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	braw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Fatalf("binary Accept answered Content-Type %q", ct)
	}
	jraw := rawGET(t, c.client.BaseURL()+fmt.Sprintf("/snapshot?t=%d&full=1", last/2))
	if len(braw) >= len(jraw) {
		t.Errorf("binary body %d bytes, JSON %d bytes: expected smaller", len(braw), len(jraw))
	}

	// Batch and append over binary.
	ts := []historygraph.Time{last / 4, last / 2}
	jbatch, err := jsonClient.Snapshots(ts, "", false)
	if err != nil {
		t.Fatal(err)
	}
	bbatch, err := binClient.Snapshots(ts, "", false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jbatch {
		if jbatch[i].NumNodes != bbatch[i].NumNodes || jbatch[i].NumEdges != bbatch[i].NumEdges {
			t.Fatalf("batch[%d] mismatch: %+v vs %+v", i, bbatch[i], jbatch[i])
		}
	}
	res, err := binClient.Append(historygraph.EventList{
		{Type: historygraph.AddNode, At: last + 10, Node: 999999},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 1 {
		t.Fatalf("binary append: %+v", res)
	}
}

// TestCoordinatorCacheHitZeroEncode asserts the zero-re-encode guarantee:
// a merged-response cache hit writes stored bytes without running any
// encoder, for both codecs, and the hit bytes match the original answer
// with the cached flag on.
func TestCoordinatorCacheHitZeroEncode(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 4, Config{})
	last := historygraph.Time(0)
	for _, w := range c.workers {
		if w.LastTime() > last {
			last = w.LastTime()
		}
	}
	url := c.client.BaseURL() + fmt.Sprintf("/snapshot?t=%d&full=1", last/2)

	rawGET(t, url) // miss: fan-out + encode + insert
	fanouts, encodes := c.co.Fanouts(), c.co.Encodes()
	if encodes == 0 {
		t.Fatal("miss did not count an encode")
	}
	hit := rawGET(t, url)
	if c.co.Fanouts() != fanouts {
		t.Fatalf("cache hit ran a fan-out (%d -> %d)", fanouts, c.co.Fanouts())
	}
	if c.co.Encodes() != encodes {
		t.Fatalf("cache hit ran an encode (%d -> %d)", encodes, c.co.Encodes())
	}
	var snap server.SnapshotJSON
	if err := (wire.JSON{}).Decode(hit, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Cached {
		t.Fatalf("hit response not flagged cached: %.200s", hit)
	}

	// The binary variant is cached independently under its own key.
	get := func() []byte {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("Accept", wire.ContentTypeBinary)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return body
	}
	get() // binary miss (fan-out coalesced? no — distinct time window; it refans)
	fanouts, encodes = c.co.Fanouts(), c.co.Encodes()
	bhit := get()
	if c.co.Fanouts() != fanouts || c.co.Encodes() != encodes {
		t.Fatalf("binary cache hit did work: fanouts %d->%d, encodes %d->%d",
			fanouts, c.co.Fanouts(), encodes, c.co.Encodes())
	}
	var bsnap server.SnapshotJSON
	if err := (wire.Binary{}).Decode(bhit, &bsnap); err != nil {
		t.Fatal(err)
	}
	if !bsnap.Cached || bsnap.NumNodes != snap.NumNodes {
		t.Fatalf("binary hit decoded wrong: %+v vs %+v", bsnap, snap)
	}
}

// TestEWMARoutesAroundSlowMember is the replica-aware routing check: with
// one member answering ~40ms slower than its peer, reads must
// overwhelmingly prefer the fast member once both EWMAs are established —
// with only the periodic probe ticks still sampling the slow one. Both
// member orders are exercised: the probe path must re-sample the demoted
// member wherever it sits in the rotation.
func TestEWMARoutesAroundSlowMember(t *testing.T) {
	for _, slowFirst := range []bool{true, false} {
		t.Run(fmt.Sprintf("slowFirst=%t", slowFirst), func(t *testing.T) {
			var fastN, slowN atomic.Int64
			stub := func(counter *atomic.Int64, delay time.Duration) *httptest.Server {
				hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					counter.Add(1)
					time.Sleep(delay)
					server.WriteJSON(w, http.StatusOK, server.SnapshotJSON{At: 1, NumNodes: 1})
				}))
				t.Cleanup(hs.Close)
				return hs
			}
			slow := stub(&slowN, 40*time.Millisecond) // above slowFloor, >> 2x fast
			fast := stub(&fastN, 0)
			urls := []string{slow.URL, fast.URL}
			if !slowFirst {
				urls = []string{fast.URL, slow.URL}
			}

			rs := newReplicaSet(urls, http.DefaultClient, "json")
			ctx := t.Context()
			read := func() {
				t.Helper()
				_, err := readFrom(ctx, ctx, rs, func(cl *server.Client) (*server.SnapshotJSON, error) {
					return cl.SnapshotCtx(ctx, 1, "", false)
				})
				if err != nil {
					t.Fatal(err)
				}
			}

			// Sampling phase: rotation alternates until both members have
			// trusted EWMAs.
			for i := 0; i < 2*minLatencySamples; i++ {
				read()
			}
			slowBefore := slowN.Load()
			const reads = 40
			for i := 0; i < reads; i++ {
				read()
			}
			slowServed := slowN.Load() - slowBefore
			// 40 reads span two or three probe ticks (every 16th); anything
			// beyond a handful on the slow member means the EWMA is not
			// steering.
			if slowServed > reads/4 {
				t.Fatalf("slow member served %d of %d post-warm-up reads; EWMA routing not steering", slowServed, reads)
			}
			if slowServed == 0 {
				t.Fatalf("slow member never probed in %d reads; its EWMA could never recover", reads)
			}
			if fastN.Load() < int64(reads)-slowServed {
				t.Fatalf("fast member served too few reads: %d", fastN.Load())
			}
		})
	}
}
