package shard

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/datagen"
	"historygraph/internal/graph"
	"historygraph/internal/server"
)

// testEvents is a deterministic co-authorship trace with a few transient
// events mixed in so interval merging is exercised.
func testEvents() historygraph.EventList {
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 200, Edges: 600, Years: 4, AttrsPerNode: 2, Seed: 42,
	})
	_, last := events.Span()
	for i := 0; i < 8; i++ {
		events = append(events, historygraph.Event{
			Type: historygraph.TransientEdge,
			At:   last * historygraph.Time(i+1) / 10,
			Edge: historygraph.EdgeID(1<<40) + historygraph.EdgeID(i),
			Node: historygraph.NodeID(i * 17), Node2: historygraph.NodeID(i*17 + 1),
		})
	}
	events.Sort()
	return events
}

func buildManager(t testing.TB, events historygraph.EventList) *historygraph.GraphManager {
	t.Helper()
	gm, err := historygraph.BuildFrom(events, historygraph.Options{
		LeafEventlistSize: 128,
		CleanerInterval:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.Close() })
	return gm
}

// cluster is an in-process sharded deployment: n partition workers, each
// an ordinary server.Server over its slice of the trace, plus a
// coordinator in front.
type cluster struct {
	co       *Coordinator
	client   *server.Client
	workers  []*historygraph.GraphManager
	services []*server.Server
	httpSrvs []*httptest.Server
}

func newCluster(t testing.TB, events historygraph.EventList, n int, cfg Config) *cluster {
	t.Helper()
	c := &cluster{}
	var urls []string
	for _, slice := range PartitionEvents(events, n) {
		gm := buildManager(t, slice)
		svc := server.New(gm, server.Config{CacheSize: 32})
		hs := httptest.NewServer(svc.Handler())
		t.Cleanup(func() { hs.Close(); svc.Close() })
		c.workers = append(c.workers, gm)
		c.services = append(c.services, svc)
		c.httpSrvs = append(c.httpSrvs, hs)
		urls = append(urls, hs.URL)
	}
	co, err := New(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.co = co
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)
	c.client = server.NewClient(front.URL)
	return c
}

// oracle is the unsharded reference deployment over the same trace.
func oracle(t testing.TB, events historygraph.EventList) (*historygraph.GraphManager, *server.Client, string) {
	t.Helper()
	gm := buildManager(t, events)
	svc := server.New(gm, server.Config{CacheSize: 32})
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { hs.Close(); svc.Close() })
	return gm, server.NewClient(hs.URL), hs.URL
}

func rawGET(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestShardedMatchesUnsharded is the acceptance check: a 4-partition
// cluster must answer /snapshot byte-identically to the unsharded server
// over the same event log, and every other endpoint must merge to the
// oracle's content.
func TestShardedMatchesUnsharded(t *testing.T) {
	events := testEvents()
	gm, oclient, ourl := oracle(t, events)
	c := newCluster(t, events, 4, Config{})
	last := gm.LastTime()

	frontURL := c.client.BaseURL()
	for _, tp := range []historygraph.Time{last / 4, last / 2, last} {
		for _, query := range []string{
			fmt.Sprintf("/snapshot?t=%d&full=1", tp),
			fmt.Sprintf("/snapshot?t=%d&attrs=%%2Bnode:all%%2Bedge:all&full=1", tp),
			fmt.Sprintf("/snapshot?t=%d", tp),
		} {
			want := rawGET(t, ourl+query)
			got := rawGET(t, frontURL+query)
			if string(got) != string(want) {
				t.Fatalf("sharded %s diverges from unsharded:\n got: %.400s\nwant: %.400s", query, got, want)
			}
		}
	}

	// Repeat queries: both deployments serve from their hot caches and
	// still agree byte for byte (cached flag included).
	query := fmt.Sprintf("/snapshot?t=%d&full=1", last/2)
	want := rawGET(t, ourl+query)
	got := rawGET(t, frontURL+query)
	if string(got) != string(want) {
		t.Fatalf("cached sharded response diverges:\n got: %.400s\nwant: %.400s", got, want)
	}

	// Batch merges per timepoint.
	ts := []historygraph.Time{last / 4, last / 2, last * 3 / 4}
	batch, err := c.client.Snapshots(ts, "", false)
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range ts {
		direct, err := gm.GetHistSnapshot(tp, "")
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].NumNodes != len(direct.Nodes) || batch[i].NumEdges != len(direct.Edges) {
			t.Fatalf("batch[%d] t=%d: got %d/%d, want %d/%d",
				i, tp, batch[i].NumNodes, batch[i].NumEdges, len(direct.Nodes), len(direct.Edges))
		}
	}

	// Neighbors: union of per-partition adjacency equals the oracle's
	// neighborhood, for nodes on every partition.
	h, err := gm.GetHistGraph(last/2, "")
	if err != nil {
		t.Fatal(err)
	}
	probes := map[int]historygraph.NodeID{}
	for _, n := range h.Nodes() {
		p := graph.Partition(n, 4)
		if _, ok := probes[p]; !ok && h.Degree(n) > 0 {
			probes[p] = n
		}
	}
	for _, probe := range probes {
		sharded, err := c.client.Neighbors(last/2, probe, "")
		if err != nil {
			t.Fatal(err)
		}
		if want := h.Degree(probe); sharded.Degree != want {
			t.Fatalf("node %d degree: sharded %d, oracle %d", probe, sharded.Degree, want)
		}
		want := map[int64]struct{}{}
		for _, n := range h.Neighbors(probe) {
			want[int64(n)] = struct{}{}
		}
		if len(sharded.Neighbors) != len(want) {
			t.Fatalf("node %d: sharded %d neighbors, oracle %d", probe, len(sharded.Neighbors), len(want))
		}
		for _, n := range sharded.Neighbors {
			if _, ok := want[n]; !ok {
				t.Fatalf("node %d: sharded neighbor %d not in oracle set", probe, n)
			}
		}
	}
	gm.Release(h)

	// Interval: disjoint adds union, transients interleave by timestamp.
	iv, err := c.client.Interval(0, last/2, "", false)
	if err != nil {
		t.Fatal(err)
	}
	oiv, err := oclient.Interval(0, last/2, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if iv.NumNodes != oiv.NumNodes || iv.NumEdges != oiv.NumEdges || len(iv.Transients) != len(oiv.Transients) {
		t.Fatalf("interval: sharded %d/%d/%d transients %d, oracle %d/%d transients %d",
			iv.NumNodes, iv.NumEdges, len(iv.Transients), len(iv.Transients),
			oiv.NumNodes, oiv.NumEdges, len(oiv.Transients))
	}
	for i := 1; i < len(iv.Transients); i++ {
		if iv.Transients[i-1].At > iv.Transients[i].At {
			t.Fatal("merged transients out of time order")
		}
	}

	// TimeExpression: per-partition evaluation unions to the oracle's.
	req := server.ExprRequest{Times: []int64{int64(last / 2), int64(last)}, Expr: "0 & !1"}
	expr, err := c.client.Expr(req)
	if err != nil {
		t.Fatal(err)
	}
	oexpr, err := oclient.Expr(req)
	if err != nil {
		t.Fatal(err)
	}
	if expr.NumNodes != oexpr.NumNodes || expr.NumEdges != oexpr.NumEdges {
		t.Fatalf("expr: sharded %d/%d, oracle %d/%d", expr.NumNodes, expr.NumEdges, oexpr.NumNodes, oexpr.NumEdges)
	}
}

// TestShardAppendRouting: events appended through the coordinator land
// only on their owning partition, and subsequent queries merge them back.
func TestShardAppendRouting(t *testing.T) {
	events := testEvents()
	gm, _, _ := oracle(t, events)
	c := newCluster(t, events, 4, Config{})
	last := gm.LastTime()

	newT := last + 10
	var appended historygraph.EventList
	for i := 0; i < 8; i++ {
		appended = append(appended, historygraph.Event{
			Type: historygraph.AddNode, At: newT, Node: historygraph.NodeID(1000000 + i),
		})
	}
	res, err := c.client.Append(appended)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != len(appended) || res.LastTime != int64(newT) || len(res.Partial) != 0 {
		t.Fatalf("append result %+v", res)
	}
	if err := gm.AppendAll(appended); err != nil {
		t.Fatal(err)
	}

	// Each new node must live on exactly its hash partition.
	for i := range appended {
		node := appended[i].Node
		owner := graph.Partition(node, 4)
		for p, w := range c.workers {
			direct, err := w.GetHistSnapshot(newT, "")
			if err != nil {
				t.Fatal(err)
			}
			_, has := direct.Nodes[node]
			if has != (p == owner) {
				t.Fatalf("node %d on partition %d: has=%v, owner=%d", node, p, has, owner)
			}
		}
	}

	// Merged snapshot equals the oracle after the same appends.
	snap, err := c.client.Snapshot(newT, "", false)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := gm.GetHistSnapshot(newT, "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != len(direct.Nodes) || snap.NumEdges != len(direct.Edges) {
		t.Fatalf("post-append snapshot: sharded %d/%d, oracle %d/%d",
			snap.NumNodes, snap.NumEdges, len(direct.Nodes), len(direct.Edges))
	}
}

// TestShardPartialFailure: with one partition down, queries still answer
// from the live partitions and report the dead one.
func TestShardPartialFailure(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 4, Config{})
	gm, _, _ := oracle(t, events)
	last := gm.LastTime()

	// Measure the doomed partition's share first.
	deadShare, err := c.workers[2].GetHistSnapshot(last/2, "")
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.client.Snapshot(last/2, "", false)
	if err != nil {
		t.Fatal(err)
	}
	c.httpSrvs[2].Close()

	// New timepoint so neither coordinator flight nor worker caches mask
	// the fan-out... and t differs from the warm query above.
	snap, err := c.client.Snapshot(last/2+1, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Partial) != 1 || snap.Partial[0].Partition != 2 || snap.Partial[0].Error == "" {
		t.Fatalf("partial list %+v, want exactly partition 2", snap.Partial)
	}
	if want := full.NumNodes - len(deadShare.Nodes); snap.NumNodes != want {
		t.Fatalf("partial snapshot has %d nodes, want %d (total %d minus dead partition's %d)",
			snap.NumNodes, want, full.NumNodes, len(deadShare.Nodes))
	}
	if snap.Cached {
		t.Fatal("partial response must not claim cluster-wide cache hit")
	}

	// readyz degrades but still enumerates the failure; healthz stays OK
	// — the coordinator process itself is fine.
	resp, err := http.Get(c.client.BaseURL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a dead partition: HTTP %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(c.client.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz (liveness) with a dead partition: HTTP %d, want 200", resp.StatusCode)
	}

	// Appends routed at the dead partition report partial failure; other
	// partitions' events land.
	var evs historygraph.EventList
	for i := 0; i < 16; i++ {
		evs = append(evs, historygraph.Event{Type: historygraph.AddNode, At: last + 50, Node: historygraph.NodeID(2000000 + i)})
	}
	res, err := c.client.Append(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partial) != 1 || res.Partial[0].Partition != 2 {
		t.Fatalf("append partial %+v, want partition 2", res.Partial)
	}
	if res.Appended >= len(evs) || res.Appended == 0 {
		t.Fatalf("append with a dead partition appended %d of %d", res.Appended, len(evs))
	}
}

// TestShardAllPartitionsDown: total failure is an error, not an empty
// 200.
func TestShardAllPartitionsDown(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 2, Config{})
	for _, hs := range c.httpSrvs {
		hs.Close()
	}
	if _, err := c.client.Snapshot(100, "", false); err == nil {
		t.Fatal("snapshot with every partition down should fail")
	}
}

// TestShardPartitionTimeout: a hung partition is cut off at the
// per-partition timeout and reported, without stalling the response.
func TestShardPartitionTimeout(t *testing.T) {
	events := testEvents()
	gm, _, _ := oracle(t, events)
	last := gm.LastTime()

	slices := PartitionEvents(events, 2)
	fast := buildManager(t, slices[0])
	svc := server.New(fast, server.Config{CacheSize: 8})
	fastSrv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { fastSrv.Close(); svc.Close() })

	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	slowSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(slowSrv.Close)

	co, err := New([]string{fastSrv.URL, slowSrv.URL}, Config{PartitionTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)
	client := server.NewClient(front.URL)

	start := time.Now()
	snap, err := client.Snapshot(last/2, "", false)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("response took %v; the hung partition stalled the gather", elapsed)
	}
	if len(snap.Partial) != 1 || snap.Partial[0].Partition != 1 {
		t.Fatalf("partial list %+v, want the hung partition 1", snap.Partial)
	}
	fastShare, err := fast.GetHistSnapshot(last/2, "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != len(fastShare.Nodes) {
		t.Fatalf("timed-out response has %d nodes, want the fast partition's %d", snap.NumNodes, len(fastShare.Nodes))
	}
}

// TestShardCoalescing: concurrent identical snapshot queries share one
// scatter-gather at the coordinator AND one plan execution per worker.
func TestShardCoalescing(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 4, Config{})
	var last historygraph.Time
	for _, w := range c.workers {
		if lt := w.LastTime(); lt > last {
			last = lt
		}
	}
	target := last / 2

	const N = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	var failures atomic.Int64
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := c.client.Snapshot(target, "", false); err != nil {
				failures.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed", failures.Load())
	}
	if got := c.co.Fanouts(); got != 1 {
		t.Fatalf("%d parallel identical queries caused %d fan-outs, want 1", N, got)
	}
	for p, svc := range c.services {
		if got := svc.Retrievals(); got != 1 {
			t.Fatalf("partition %d executed %d retrievals, want 1", p, got)
		}
	}
}

// TestCoordinatorCache: a repeat query at a hot timepoint is served from
// the coordinator's merged-response LRU — no second fan-out — and an
// append at or before that timepoint invalidates it.
func TestCoordinatorCache(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 2, Config{})
	var last historygraph.Time
	for _, w := range c.workers {
		if lt := w.LastTime(); lt > last {
			last = lt
		}
	}
	// The appended probe event below must stay chronological (>= last) yet
	// still invalidate the cached timepoint, so the hot timepoint is the
	// history's end.
	target := last

	first, err := c.client.Snapshot(target, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.co.Fanouts(); got != 1 {
		t.Fatalf("first query: %d fan-outs, want 1", got)
	}
	again, err := c.client.Snapshot(target, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.co.Fanouts(); got != 1 {
		t.Fatalf("repeat query re-scattered: %d fan-outs, want 1", got)
	}
	if !again.Cached {
		t.Fatal("repeat query not marked cached")
	}
	if again.NumNodes != first.NumNodes || again.NumEdges != first.NumEdges || len(again.Nodes) != len(first.Nodes) {
		t.Fatalf("cached response diverged: %d/%d vs %d/%d", again.NumNodes, again.NumEdges, first.NumNodes, first.NumEdges)
	}

	// Batches are cached whole too.
	ts := []historygraph.Time{last / 4, last / 3}
	if _, err := c.client.Snapshots(ts, "", false); err != nil {
		t.Fatal(err)
	}
	batchFanouts := c.co.Fanouts()
	if _, err := c.client.Snapshots(ts, "", false); err != nil {
		t.Fatal(err)
	}
	if got := c.co.Fanouts(); got != batchFanouts {
		t.Fatalf("repeat batch re-scattered: %d fan-outs, want %d", got, batchFanouts)
	}

	// An append at the cached timepoint invalidates every dependent entry.
	res, err := c.client.Append(historygraph.EventList{{
		Type: historygraph.AddNode, At: target, Node: historygraph.NodeID(900001),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partial) != 0 || res.Appended != 1 {
		t.Fatalf("append result %+v", res)
	}
	fresh, err := c.client.Snapshot(target, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.co.Fanouts(); got != batchFanouts+1 {
		t.Fatalf("post-append query should re-scatter: %d fan-outs, want %d", got, batchFanouts+1)
	}
	if fresh.NumNodes != first.NumNodes+1 {
		t.Fatalf("post-append snapshot has %d nodes, want %d", fresh.NumNodes, first.NumNodes+1)
	}
}

// TestCoordinatorCacheTTL: with CacheTTL set, a cached merged response
// expires even though no append flowed through the coordinator — the
// safety valve for deployments where a writer can reach a partition
// primary directly, bypassing the coordinator's append invalidation.
func TestCoordinatorCacheTTL(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 2, Config{CacheTTL: 300 * time.Millisecond})
	var last historygraph.Time
	for _, w := range c.workers {
		if lt := w.LastTime(); lt > last {
			last = lt
		}
	}
	target := last / 2

	if _, err := c.client.Snapshot(target, "", false); err != nil {
		t.Fatal(err)
	}
	hit, err := c.client.Snapshot(target, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || c.co.Fanouts() != 1 {
		t.Fatalf("pre-TTL repeat should be a cache hit (cached=%v, fanouts=%d)", hit.Cached, c.co.Fanouts())
	}

	time.Sleep(400 * time.Millisecond)
	// The merged Cached flag can still be true after expiry (each worker
	// answers from its own hot cache); the fan-out counter is the proof
	// that the coordinator's entry expired and the query re-scattered.
	if _, err := c.client.Snapshot(target, "", false); err != nil {
		t.Fatal(err)
	}
	if got := c.co.Fanouts(); got != 2 {
		t.Fatalf("expired entry should re-scatter: %d fan-outs, want 2", got)
	}
}

// TestCoordinatorCachePartialNotAdmitted: a response missing a partition
// must not be served from the merged-response cache once the partition is
// back.
func TestCoordinatorCachePartialNotAdmitted(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 2, Config{PartitionTimeout: 2 * time.Second})
	var last historygraph.Time
	for _, w := range c.workers {
		if lt := w.LastTime(); lt > last {
			last = lt
		}
	}
	c.httpSrvs[1].Close()
	partial, err := c.client.Snapshot(last/2, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.Partial) != 1 {
		t.Fatalf("partial list %+v, want one dead partition", partial.Partial)
	}
	before := c.co.Fanouts()
	again, err := c.client.Snapshot(last/2, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if c.co.Fanouts() == before {
		t.Fatal("partial response was served from the merged-response cache")
	}
	if again.Cached {
		t.Fatal("partial response must not claim a cache hit")
	}
}

// TestPartitionEvents checks the routing invariants the whole design
// rests on: ownership matches the hash, order is preserved, nothing is
// lost.
func TestPartitionEvents(t *testing.T) {
	events := testEvents()
	slices := PartitionEvents(events, 4)
	total := 0
	for p, slice := range slices {
		total += len(slice)
		if !slice.Sorted() {
			t.Fatalf("partition %d slice lost chronological order", p)
		}
		for _, ev := range slice {
			if got := PartitionOf(ev, 4); got != p {
				t.Fatalf("event %v routed to %d but landed on %d", ev, got, p)
			}
		}
		if len(slice) == 0 {
			t.Fatalf("partition %d got no events; trace too small or hash degenerate", p)
		}
	}
	if total != len(events) {
		t.Fatalf("partitioning lost events: %d in, %d out", len(events), total)
	}
}

// TestAppendRejectsEndpointlessEdgeEvent: an edge delete that does not
// repeat the edge's endpoints cannot be hash-routed, and applying it to
// the wrong partition materializes a phantom edge there while the owner
// keeps the edge alive forever. The coordinator must 422 the batch
// before any slice lands; the same delete with endpoints goes through
// and keeps the cluster byte-identical to the unsharded oracle.
func TestAppendRejectsEndpointlessEdgeEvent(t *testing.T) {
	events := testEvents()
	gm, _, ourl := oracle(t, events)
	c := newCluster(t, events, 4, Config{})
	last := gm.LastTime()

	// Create a fresh edge through the coordinator, endpoints present.
	ne := historygraph.Event{
		Type: historygraph.AddEdge, At: last + 1,
		Edge: 1 << 41, Node: 3, Node2: 4,
	}
	if _, err := c.client.Append(historygraph.EventList{ne}); err != nil {
		t.Fatal(err)
	}
	if err := gm.AppendAll(historygraph.EventList{ne}); err != nil {
		t.Fatal(err)
	}

	// A bare DE (edge ID only) must be rejected atomically with 422 —
	// bundled node event included, nothing may land.
	bad := historygraph.EventList{
		{Type: historygraph.AddNode, At: last + 2, Node: 7777777},
		{Type: historygraph.DelEdge, At: last + 2, Edge: 1 << 41},
	}
	_, err := c.client.Append(bad)
	var he *server.HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusUnprocessableEntity {
		t.Fatalf("bare DE append: err = %v, want HTTP 422", err)
	}
	snap, err := c.client.Snapshot(last+2, "", false)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := gm.GetHistSnapshot(last+2, "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != len(direct.Nodes) || snap.NumEdges != len(direct.Edges) {
		t.Fatalf("after rejected batch: sharded %d/%d, oracle %d/%d",
			snap.NumNodes, snap.NumEdges, len(direct.Nodes), len(direct.Edges))
	}

	// The same delete with endpoints routes to the edge's owner and the
	// merged answer stays byte-identical to the oracle.
	de := historygraph.Event{
		Type: historygraph.DelEdge, At: last + 3,
		Edge: 1 << 41, Node: 3, Node2: 4,
	}
	if _, err := c.client.Append(historygraph.EventList{de}); err != nil {
		t.Fatal(err)
	}
	if err := gm.AppendAll(historygraph.EventList{de}); err != nil {
		t.Fatal(err)
	}
	a := rawGET(t, c.client.BaseURL()+fmt.Sprintf("/snapshot?t=%d&full=1", last+3))
	b := rawGET(t, ourl+fmt.Sprintf("/snapshot?t=%d&full=1", last+3))
	if string(a) != string(b) {
		t.Fatalf("post-delete snapshots differ:\nsharded: %s\noracle:  %s", a, b)
	}
}
