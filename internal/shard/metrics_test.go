package shard

// End-to-end observability coverage: a real cluster is scraped over HTTP
// and the exposition must both satisfy the strict linter and show the
// series an operator's dashboards are built on actually moving — fan-out
// counts, cache hits per level, per-leg latency histograms, member
// routing gauges. A client abandoning a merged snapshot stream must
// surface as leg cancellations, not leg failures.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"historygraph/internal/metrics"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// scrape GETs url's /metrics, lints the body, and returns the samples.
func scrape(t *testing.T, baseURL string) []metrics.Sample {
	t.Helper()
	body := string(rawGET(t, baseURL+"/metrics"))
	if err := metrics.Lint(body); err != nil {
		t.Fatalf("exposition from %s does not lint: %v", baseURL, err)
	}
	samples, err := metrics.Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// sampleValue returns the value of the first sample matching name and the
// given label subset, and whether one exists.
func sampleValue(samples []metrics.Sample, name string, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// TestClusterMetricsExposition: scrape a live 2-partition cluster and
// assert the tentpole series exist and move — coordinator fan-outs and
// per-leg activity after a query, a merged-cache hit after a repeat, and
// worker-side request and view-cache series after the legs land.
func TestClusterMetricsExposition(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 2, Config{})
	front := httptest.NewServer(c.co.Handler())
	t.Cleanup(front.Close)
	mid := events[len(events)-1].At / 2

	if _, err := c.client.Snapshot(mid, "+node:all", true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.client.Snapshot(mid, "+node:all", true); err != nil {
		t.Fatal(err)
	}

	// Analytics traffic: a repeated degree scan (second run hits the
	// workers' CSR caches) and one short PageRank job.
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.client.AnalyticsDegreeCtx(ctx, mid, ""); err != nil {
			t.Fatal(err)
		}
	}
	const prIters = 3
	if _, err := c.client.AnalyticsPageRankCtx(ctx, wire.PageRankRequest{T: int64(mid), Iterations: prIters}); err != nil {
		t.Fatal(err)
	}

	co := scrape(t, front.URL)
	fanouts, ok := sampleValue(co, "dg_shard_fanouts_total", nil)
	if !ok || fanouts < 1 {
		t.Fatalf("dg_shard_fanouts_total = %v, %v; want >= 1", fanouts, ok)
	}
	mergedHits, ok := sampleValue(co, "dg_cache_hits_total", map[string]string{"cache": "merged"})
	if !ok || mergedHits < 1 {
		t.Fatalf(`dg_cache_hits_total{cache="merged"} = %v, %v; want >= 1 (repeat query missed the merged cache)`, mergedHits, ok)
	}
	for part := 0; part < 2; part++ {
		p := strconv.Itoa(part)
		if legs, ok := sampleValue(co, "dg_shard_legs_total", map[string]string{"partition": p}); !ok || legs < 1 {
			t.Fatalf("dg_shard_legs_total{partition=%q} = %v, %v; want >= 1", p, legs, ok)
		}
		if n, ok := sampleValue(co, "dg_shard_leg_duration_seconds_count", map[string]string{"partition": p}); !ok || n < 1 {
			t.Fatalf("dg_shard_leg_duration_seconds_count{partition=%q} = %v, %v; want >= 1", p, n, ok)
		}
		if _, ok := sampleValue(co, "dg_shard_member_healthy", map[string]string{"partition": p}); !ok {
			t.Fatalf("dg_shard_member_healthy{partition=%q} missing", p)
		}
		if _, ok := sampleValue(co, "dg_shard_member_latency_seconds", map[string]string{"partition": p}); !ok {
			t.Fatalf("dg_shard_member_latency_seconds{partition=%q} missing", p)
		}
	}
	if n, ok := sampleValue(co, "dg_http_requests_total", map[string]string{"endpoint": "/snapshot", "code": "2xx"}); !ok || n < 2 {
		t.Fatalf(`coordinator dg_http_requests_total{endpoint="/snapshot",code="2xx"} = %v, %v; want >= 2`, n, ok)
	}

	// Analytics plane on the coordinator: per-kind job counters and
	// duration histograms, and one superstep per PageRank round.
	for _, kind := range []string{"degree", "pagerank"} {
		if n, ok := sampleValue(co, "dg_analytics_jobs_total", map[string]string{"kind": kind, "status": "ok"}); !ok || n < 1 {
			t.Fatalf(`dg_analytics_jobs_total{kind=%q,status="ok"} = %v, %v; want >= 1`, kind, n, ok)
		}
		if n, ok := sampleValue(co, "dg_analytics_duration_seconds_count", map[string]string{"kind": kind}); !ok || n < 1 {
			t.Fatalf("dg_analytics_duration_seconds_count{kind=%q} = %v, %v; want >= 1", kind, n, ok)
		}
	}
	if n, ok := sampleValue(co, "dg_analytics_supersteps_total", nil); !ok || n < prIters+1 {
		t.Fatalf("dg_analytics_supersteps_total = %v, %v; want >= %d", n, ok, prIters+1)
	}

	// The workers answered one leg each; their own planes must show it.
	for part, hs := range c.httpSrvs {
		w := scrape(t, hs.URL)
		if n, ok := sampleValue(w, "dg_http_requests_total", map[string]string{"endpoint": "/snapshot", "code": "2xx"}); !ok || n < 1 {
			t.Fatalf(`worker %d dg_http_requests_total{endpoint="/snapshot",code="2xx"} = %v, %v; want >= 1`, part, n, ok)
		}
		if n, ok := sampleValue(w, "dg_http_request_duration_seconds_count", map[string]string{"endpoint": "/snapshot"}); !ok || n < 1 {
			t.Fatalf("worker %d request-duration histogram empty (%v, %v)", part, n, ok)
		}
		misses, ok := sampleValue(w, "dg_cache_misses_total", map[string]string{"cache": "view"})
		if !ok || misses < 1 {
			t.Fatalf(`worker %d dg_cache_misses_total{cache="view"} = %v, %v; want >= 1`, part, misses, ok)
		}
		for _, cache := range []string{"view", "encoded", "flight", "csr"} {
			if _, ok := sampleValue(w, "dg_cache_hits_total", map[string]string{"cache": cache}); !ok {
				t.Fatalf("worker %d has no dg_cache_hits_total{cache=%q} series", part, cache)
			}
		}
		// The degree scan built each worker's CSR; the PageRank prepare at
		// the same timepoint then hit it. (The repeat degree query never
		// reaches the workers — the coordinator's merged cache absorbs it.)
		if n, ok := sampleValue(w, "dg_cache_misses_total", map[string]string{"cache": "csr"}); !ok || n < 1 {
			t.Fatalf(`worker %d dg_cache_misses_total{cache="csr"} = %v, %v; want >= 1`, part, n, ok)
		}
		if n, ok := sampleValue(w, "dg_cache_hits_total", map[string]string{"cache": "csr"}); !ok || n < 1 {
			t.Fatalf(`worker %d dg_cache_hits_total{cache="csr"} = %v, %v; want >= 1`, part, n, ok)
		}
		if n, ok := sampleValue(w, "dg_analytics_jobs_total", map[string]string{"kind": "degree", "status": "ok"}); !ok || n < 1 {
			t.Fatalf(`worker %d dg_analytics_jobs_total{kind="degree",status="ok"} = %v, %v; want >= 1`, part, n, ok)
		}
	}
}

// TestRequestIDThreading: a request ID supplied by the client comes back
// on the coordinator's response, and a minted one appears when the client
// sends none.
func TestRequestIDThreading(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 2, Config{})
	front := httptest.NewServer(c.co.Handler())
	t.Cleanup(front.Close)
	url := front.URL + "/stats"

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set(server.RequestIDHeader, "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(server.RequestIDHeader); got != "trace-me-42" {
		t.Fatalf("supplied request ID not echoed: got %q", got)
	}

	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(server.RequestIDHeader); got == "" {
		t.Fatal("no request ID minted for a bare request")
	}
}

// slowFlushWriter paces a worker's stream so the merged stream is still
// in flight when the test abandons it.
type slowFlushWriter struct {
	http.ResponseWriter
	delay time.Duration
}

func (sw *slowFlushWriter) Flush() {
	time.Sleep(sw.delay)
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestStreamClientCancelPropagates: a client that reads the beginning of
// a merged snapshot stream and walks away must cancel the coordinator's
// worker legs promptly — counted as leg cancellations, with no leg
// failures and no members marked unhealthy.
func TestStreamClientCancelPropagates(t *testing.T) {
	events := testEvents()
	var urls []string
	for _, slice := range PartitionEvents(events, 2) {
		gm := buildManager(t, slice)
		// Tiny runs plus a per-flush delay keep each worker stream alive
		// for seconds — far longer than the client will stay.
		svc := server.New(gm, server.Config{CacheSize: 32, StreamRun: 4})
		inner := svc.Handler()
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if wire.WantsStream(r.Header.Get("Accept")) {
				inner.ServeHTTP(&slowFlushWriter{ResponseWriter: w, delay: 20 * time.Millisecond}, r)
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(func() { hs.Close(); svc.Close() })
		urls = append(urls, hs.URL)
	}
	co, err := New(urls, Config{StreamRun: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)

	last := events[len(events)-1].At
	req, _ := http.NewRequest(http.MethodGet,
		front.URL+"/snapshot?t="+strconv.FormatInt(int64(last), 10)+"&full=1&attrs=%2Bnode:all", nil)
	req.Header.Set("Accept", wire.ContentTypeBinaryStream)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	// Read a little of the stream, then abandon it mid-delivery.
	if _, err := io.ReadFull(resp.Body, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for co.legCancels.Total() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no leg cancellations recorded after client walked away (legs=%d fails=%d)",
				co.legs.Total(), co.legFails.Total())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fails := co.legFails.Total(); fails != 0 {
		t.Fatalf("client cancellation charged as %d leg failure(s)", fails)
	}
	// The members served correctly and must not be penalized for the
	// client's disappearance.
	for p, rs := range co.rt().sets {
		for _, m := range rs.members {
			if !m.healthy.Load() {
				t.Fatalf("partition %d member %s marked unhealthy by a client cancel", p, m.url)
			}
		}
	}
}
