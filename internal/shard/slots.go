package shard

// The versioned routing table: graph.NumSlots hash slots, each owned by
// exactly one partition, stamped with a monotonically increasing epoch.
// The boot-time table assigns slot i to partition i mod n — exactly the
// layout graph.Partition produces — so a cluster that never reshards
// routes identically to the historical fixed-hash scheme. A reshard
// builds a successor table (same slots, some reassigned), bumps the
// epoch, pushes the new ownership to every worker, and atomically swaps
// the coordinator's routing pointer; workers answer requests stamped
// with any other epoch with 410 Gone, which the coordinator turns into
// one retry against the fresh table.

import (
	"fmt"

	"historygraph"
	"historygraph/internal/graph"
)

// NumSlots aliases the shared slot-space size.
const NumSlots = graph.NumSlots

// SlotOf returns the slot a node hashes into.
func SlotOf(n historygraph.NodeID) int { return graph.Slot(n) }

// SlotOfEvent returns the slot that owns an event (edge events hash by
// their From endpoint, same as PartitionOf).
func SlotOfEvent(ev historygraph.Event) int { return graph.SlotOfEvent(ev) }

// SlotTable maps every slot to its owning partition index. Tables are
// immutable once installed: a reshard builds a new one.
type SlotTable struct {
	Epoch uint64
	Slots [NumSlots]int
}

// DefaultSlotTable is the boot-time layout: slot i -> partition i mod n,
// which agrees with graph.Partition so preloaded fixed-hash data needs
// no movement when slot routing takes over.
func DefaultSlotTable(n int) *SlotTable {
	if n < 1 {
		n = 1
	}
	t := &SlotTable{Epoch: 1}
	for s := range t.Slots {
		t.Slots[s] = s % n
	}
	return t
}

// Partition returns the partition owning an event under this table.
func (t *SlotTable) Partition(ev historygraph.Event) int {
	return t.Slots[graph.SlotOfEvent(ev)]
}

// OwnedBy returns the sorted slot list a partition owns.
func (t *SlotTable) OwnedBy(p int) []int {
	var out []int
	for s, owner := range t.Slots {
		if owner == p {
			out = append(out, s)
		}
	}
	return out
}

// Reassign returns a successor table (epoch+1) with the given slots
// moved to partition target. It fails if a slot index is out of range.
func (t *SlotTable) Reassign(slots []int, target int) (*SlotTable, error) {
	nt := &SlotTable{Epoch: t.Epoch + 1, Slots: t.Slots}
	for _, s := range slots {
		if s < 0 || s >= NumSlots {
			return nil, fmt.Errorf("shard: slot %d out of range [0, %d)", s, NumSlots)
		}
		nt.Slots[s] = target
	}
	return nt, nil
}

// Renumber returns a copy with partition indices rewritten through m
// (old index -> new index); used when a merge retires partitions and the
// surviving sets are compacted. Every owner must appear in m.
func (t *SlotTable) Renumber(m map[int]int) (*SlotTable, error) {
	nt := &SlotTable{Epoch: t.Epoch}
	for s, owner := range t.Slots {
		nw, ok := m[owner]
		if !ok {
			return nil, fmt.Errorf("shard: slot %d owner %d has no renumbering", s, owner)
		}
		nt.Slots[s] = nw
	}
	return nt, nil
}
