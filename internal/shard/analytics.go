package shard

// The coordinator's analytics plane: the /analytics/* merge handlers and
// the distributed PageRank job machine.
//
// Degree, components, and evolution are one scatter-gather each — every
// partition reduces its CSR (or view pair) to a mergeable part and the
// coordinator folds the parts with the same analytics.Merge* the
// unsharded server runs on its single part, so both deployments answer
// off one code path. The merged responses ride the same flight group and
// merged-response cache as /snapshot.
//
// PageRank is stateful: each partition holds vertex ranks across
// supersteps, so a job's legs are member-sticky — the member that
// answered a partition's prepare owns that partition's job state, and
// every later call for the job goes back to it rather than through the
// read rotation. A sticky member dying mid-job fails the leg and the job
// (reported as state "failed", or an error on a waiting request — never a
// hung client); the surviving partitions' state expires via the worker's
// job TTL.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"historygraph"
	"historygraph/internal/analytics"
	"historygraph/internal/graph"
	"historygraph/internal/metrics"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// coJobTTL is how long a finished (or abandoned) coordinator job stays
// pollable before the prune pass drops it.
const coJobTTL = 10 * time.Minute

// maxCoJobs bounds resident coordinator jobs; submissions beyond it are
// rejected rather than letting unfetched results accumulate.
const maxCoJobs = 128

// coJob is one asynchronous analytics job's coordinator-side state.
type coJob struct {
	id   string
	kind string

	mu     sync.Mutex
	state  string // "running", "done", "failed"
	errMsg string
	result *wire.PageRankResult
	last   time.Time
}

// status snapshots the job for GET /analytics/jobs/{id}.
func (j *coJob) status() wire.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.last = time.Now()
	return wire.JobStatus{ID: j.id, Kind: j.kind, State: j.state, Error: j.errMsg, Result: j.result}
}

func (j *coJob) finish(res *wire.PageRankResult, err error) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state, j.errMsg = "failed", err.Error()
	} else {
		j.state, j.result = "done", res
	}
	j.last = time.Now()
	return j.state
}

// coAnalytics is the coordinator's analytics state: the async job table
// plus the plane's metrics.
type coAnalytics struct {
	mu   sync.Mutex
	jobs map[string]*coJob

	jobsTotal  *metrics.CounterVec   // dg_analytics_jobs_total{kind,status}
	durations  *metrics.HistogramVec // dg_analytics_duration_seconds{kind}
	supersteps *metrics.Counter      // dg_analytics_supersteps_total
}

// observeAnalytics wraps one analytics execution with the jobs/duration
// metrics, mirroring the worker-side helper.
func (co *Coordinator) observeAnalytics(kind string, fn func() error) {
	start := time.Now()
	err := fn()
	status := "ok"
	if err != nil {
		status = "error"
	}
	co.an.jobsTotal.With(kind, status).Inc()
	co.an.durations.With(kind).Observe(time.Since(start).Seconds())
}

// --- mergeable scans --------------------------------------------------

func (co *Coordinator) handleAnalyticsDegree(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, err := server.ParseTimeParam(q.Get("t"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	co.observeAnalytics("degree", func() error {
		codec := wire.Negotiate(r.Header.Get("Accept"))
		key := fmt.Sprintf("andeg|%d|%s", t, attrs)
		server.Annotate(r.Context(), "partitions", strconv.Itoa(co.NumPartitions()))
		if co.writeCached(w, codec, key) {
			server.Annotate(r.Context(), "cache", "merged-hit")
			return nil
		}
		parent := context.WithoutCancel(r.Context())
		v, shared, err := co.flights.Do(key, func() (any, error) {
			co.fanouts.Inc()
			gen := co.cacheGen()
			parts, errs, rt := scatterRead(co, parent, func(ctx reqCtx, cl *server.Client) (*wire.DegreePart, error) {
				return cl.DegreePartCtx(ctx, t, attrs, ctx.parts, ctx.part)
			})
			if len(errs) == len(rt.sets) {
				return nil, co.allFailed(errs)
			}
			co.notePartial(errs, len(rt.sets))
			out := analytics.MergeDegree(int64(t), compactParts(parts))
			out.Partial = errs
			return flightMerge{v: *out, gen: gen, complete: len(errs) == 0}, nil
		})
		if err != nil {
			writeAllFailed(w, err)
			return err
		}
		fm := v.(flightMerge)
		out := fm.v.(wire.DegreeDist)
		if shared {
			server.Annotate(r.Context(), "cache", "coalesced")
			out.Coalesced = true
			server.WriteWire(w, r, http.StatusOK, out)
			return nil
		}
		server.Annotate(r.Context(), "cache", "miss")
		cached := out
		cached.Cached, cached.Coalesced = true, false
		co.writeMerged(w, codec, out, cached, key, t, fm.gen, fm.complete)
		return nil
	})
}

func (co *Coordinator) handleAnalyticsComponents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, err := server.ParseTimeParam(q.Get("t"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	co.observeAnalytics("components", func() error {
		codec := wire.Negotiate(r.Header.Get("Accept"))
		key := fmt.Sprintf("ancmp|%d|%s", t, attrs)
		server.Annotate(r.Context(), "partitions", strconv.Itoa(co.NumPartitions()))
		if co.writeCached(w, codec, key) {
			server.Annotate(r.Context(), "cache", "merged-hit")
			return nil
		}
		parent := context.WithoutCancel(r.Context())
		v, shared, err := co.flights.Do(key, func() (any, error) {
			co.fanouts.Inc()
			gen := co.cacheGen()
			parts, errs, rt := scatterRead(co, parent, func(ctx reqCtx, cl *server.Client) (*wire.ComponentsPart, error) {
				return cl.ComponentsPartCtx(ctx, t, attrs, ctx.parts, ctx.part)
			})
			if len(errs) == len(rt.sets) {
				return nil, co.allFailed(errs)
			}
			co.notePartial(errs, len(rt.sets))
			out := analytics.MergeComponents(int64(t), compactParts(parts))
			out.Partial = errs
			return flightMerge{v: *out, gen: gen, complete: len(errs) == 0}, nil
		})
		if err != nil {
			writeAllFailed(w, err)
			return err
		}
		fm := v.(flightMerge)
		out := fm.v.(wire.Components)
		if shared {
			server.Annotate(r.Context(), "cache", "coalesced")
			out.Coalesced = true
			server.WriteWire(w, r, http.StatusOK, out)
			return nil
		}
		server.Annotate(r.Context(), "cache", "miss")
		cached := out
		cached.Cached, cached.Coalesced = true, false
		co.writeMerged(w, codec, out, cached, key, t, fm.gen, fm.complete)
		return nil
	})
}

func (co *Coordinator) handleAnalyticsEvolution(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t1, err1 := server.ParseTimeParam(q.Get("t1"))
	t2, err2 := server.ParseTimeParam(q.Get("t2"))
	if err1 != nil || err2 != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("evolution wants numeric t1/t2"))
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	maxT := t1
	if t2 > maxT {
		maxT = t2
	}
	co.observeAnalytics("evolution", func() error {
		codec := wire.Negotiate(r.Header.Get("Accept"))
		key := fmt.Sprintf("anevo|%d|%d|%s", t1, t2, attrs)
		server.Annotate(r.Context(), "partitions", strconv.Itoa(co.NumPartitions()))
		if co.writeCached(w, codec, key) {
			server.Annotate(r.Context(), "cache", "merged-hit")
			return nil
		}
		parent := context.WithoutCancel(r.Context())
		v, shared, err := co.flights.Do(key, func() (any, error) {
			co.fanouts.Inc()
			gen := co.cacheGen()
			parts, errs, rt := scatterRead(co, parent, func(ctx reqCtx, cl *server.Client) (*wire.EvolutionPart, error) {
				return cl.EvolutionPartCtx(ctx, t1, t2, attrs, ctx.parts, ctx.part)
			})
			if len(errs) == len(rt.sets) {
				return nil, co.allFailed(errs)
			}
			co.notePartial(errs, len(rt.sets))
			out := analytics.MergeEvolution(compactParts(parts))
			out.T1, out.T2 = int64(t1), int64(t2)
			out.Partial = errs
			return flightMerge{v: *out, gen: gen, complete: len(errs) == 0}, nil
		})
		if err != nil {
			writeAllFailed(w, err)
			return err
		}
		fm := v.(flightMerge)
		out := fm.v.(wire.Evolution)
		if shared {
			server.Annotate(r.Context(), "cache", "coalesced")
			out.Coalesced = true
			server.WriteWire(w, r, http.StatusOK, out)
			return nil
		}
		server.Annotate(r.Context(), "cache", "miss")
		cached := out
		cached.Cached, cached.Coalesced = true, false
		co.writeMerged(w, codec, out, cached, key, maxT, fm.gen, fm.complete)
		return nil
	})
}

// compactParts drops the nil slots failed partitions left in a scatter
// result (the merges take only the parts that answered).
func compactParts[T any](parts []*T) []*T {
	out := make([]*T, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// --- PageRank job machine ---------------------------------------------

func (co *Coordinator) handleAnalyticsPageRank(w http.ResponseWriter, r *http.Request) {
	var req wire.PageRankRequest
	if err := server.ReadBody(r, &req); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad pagerank body: %w", err))
		return
	}
	server.NormalizePageRank(&req)
	if _, err := historygraph.ParseAttrOptions(req.Attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if req.Wait {
		// Synchronous: the job runs under the request's own context, so a
		// client that goes away cancels every leg instead of orphaning the
		// supersteps.
		co.observeAnalytics("pagerank", func() error {
			res, err := co.runPageRank(r.Context(), req)
			if err != nil {
				writeAllFailed(w, err)
				return err
			}
			server.WriteWire(w, r, http.StatusOK, *res)
			return nil
		})
		return
	}
	job, err := co.newJob("pagerank")
	if err != nil {
		server.WriteError(w, http.StatusServiceUnavailable, err)
		return
	}
	go func() {
		start := time.Now()
		res, err := co.runPageRank(context.Background(), req)
		status := "ok"
		if job.finish(res, err) == "failed" {
			status = "error"
		}
		co.an.jobsTotal.With(job.kind, status).Inc()
		co.an.durations.With(job.kind).Observe(time.Since(start).Seconds())
	}()
	server.WriteWire(w, r, http.StatusAccepted, wire.JobStatus{ID: job.id, Kind: job.kind, State: "running"})
}

func (co *Coordinator) handleAnalyticsJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	co.an.mu.Lock()
	job := co.an.jobs[id]
	co.an.mu.Unlock()
	if job == nil {
		server.WriteError(w, http.StatusNotFound, fmt.Errorf("unknown analytics job %q (expired or never submitted)", id))
		return
	}
	server.WriteWire(w, r, http.StatusOK, job.status())
}

// newJob registers a fresh async job, pruning expired ones first.
func (co *Coordinator) newJob(kind string) (*coJob, error) {
	id := newBatchID()
	if id == "" {
		return nil, fmt.Errorf("analytics: cannot mint a job ID")
	}
	j := &coJob{id: id, kind: kind, state: "running", last: time.Now()}
	co.an.mu.Lock()
	defer co.an.mu.Unlock()
	now := time.Now()
	for jid, old := range co.an.jobs {
		old.mu.Lock()
		idle := old.state != "running" && now.Sub(old.last) > coJobTTL
		old.mu.Unlock()
		if idle {
			delete(co.an.jobs, jid)
		}
	}
	if len(co.an.jobs) >= maxCoJobs {
		return nil, fmt.Errorf("analytics job table full (%d resident)", maxCoJobs)
	}
	co.an.jobs[id] = j
	return j, nil
}

// prLeg binds one partition of a running PageRank job to the member that
// holds its state.
type prLeg struct {
	part int
	m    *member
}

// stickyRead is readFrom returning the member that answered: PageRank job
// state is member-local, so later legs must go back to the same member
// rather than through the read rotation.
func stickyRead[T any](ctx, parent context.Context, rs *replicaSet, call func(cl *server.Client) (T, error)) (T, *member, error) {
	var zero T
	var lastErr error
	for _, m := range rs.readOrder() {
		begin := time.Now()
		v, err := call(m.client)
		if err == nil {
			m.healthy.Store(true)
			m.observeLatency(time.Since(begin))
			return v, m, nil
		}
		var he *server.HTTPError
		if errors.As(err, &he) && he.Status >= 400 && he.Status < 500 {
			m.healthy.Store(true)
			m.observeLatency(time.Since(begin))
			return zero, nil, err
		}
		if parent.Err() != nil {
			return zero, nil, err
		}
		m.healthy.Store(false)
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return zero, nil, lastErr
}

// prScatter runs one job phase against every leg concurrently, each call
// bounded by the partition timeout and charged to the per-partition leg
// metrics. Any leg failing fails the phase — a stateful superstep cannot
// drop a partition and stay correct — with every completed leg's result
// discarded by the caller.
func prScatter[T any](co *Coordinator, parent context.Context, legs []prLeg, call func(ctx context.Context, leg prLeg) (T, error)) ([]T, error) {
	results := make([]T, len(legs))
	errs := make([]error, len(legs))
	var wg sync.WaitGroup
	for i, leg := range legs {
		wg.Add(1)
		go func(i int, leg prLeg) {
			defer wg.Done()
			part := strconv.Itoa(leg.part)
			co.legs.With(part).Inc()
			begin := time.Now()
			ctx, cancel := context.WithTimeout(parent, co.timeout)
			defer cancel()
			v, err := call(ctx, leg)
			co.legDur.With(part).Observe(time.Since(begin).Seconds())
			if err != nil {
				if parent.Err() != nil {
					co.legCancels.With(part).Inc()
				} else {
					co.legFails.With(part).Inc()
				}
				errs[i] = fmt.Errorf("partition %d (%s): %w", leg.part, leg.m.url, err)
				return
			}
			results[i] = v
		}(i, leg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runPageRank drives one distributed PageRank job end to end: prepare
// (pin a CSR per partition, gather vertex counts and boundary pairs),
// start (ship the global count and each partition's ghost pairs), then
// iterations+1 supersteps with the coordinator as the message barrier,
// the last one collecting each partition's top-K.
func (co *Coordinator) runPageRank(ctx context.Context, req wire.PageRankRequest) (*wire.PageRankResult, error) {
	jobID := newBatchID()
	if jobID == "" {
		return nil, fmt.Errorf("analytics: cannot mint a job ID")
	}
	co.fanouts.Inc()
	// One routing snapshot drives the whole job: PageRank's cross-partition
	// message routing still uses the boot-time hash (graph.Partition), so a
	// job is only exact while the installed table matches it — a limitation
	// recorded in ARCHITECTURE.md's resharding section.
	rt := co.rt()
	parts := len(rt.sets)

	// Prepare: the member that answers owns the partition's job state for
	// the rest of the run.
	type prepOut struct {
		m        *member
		prepared *wire.PRPrepared
	}
	prep, errs := scatter(co, rt, ctx, func(sctx reqCtx, rs *replicaSet) (prepOut, error) {
		v, m, err := stickyRead(sctx, ctx, rs, func(cl *server.Client) (*wire.PRPrepared, error) {
			return cl.PRPrepareCtx(sctx, wire.PRPrepare{
				Job: jobID, T: req.T, Attrs: req.Attrs,
				Parts: parts, Self: sctx.part, Damping: req.Damping,
			})
		})
		if err != nil {
			return prepOut{}, err
		}
		return prepOut{m: m, prepared: v}, nil
	})
	if len(errs) > 0 {
		return nil, fmt.Errorf("pagerank prepare: partition %d: %s", errs[0].Partition, errs[0].Error)
	}
	legs := make([]prLeg, parts)
	var n int64
	var allPairs []int64
	for p, po := range prep {
		legs[p] = prLeg{part: p, m: po.m}
		n += po.prepared.Nodes
		allPairs = append(allPairs, po.prepared.Pairs...)
	}
	routed := analytics.RoutePairs(allPairs, parts)

	// Start: every partition learns the global vertex count and the ghost
	// adjacency the other partitions stored for its vertices.
	if _, err := prScatter(co, ctx, legs, func(lctx context.Context, leg prLeg) (*wire.PRPrepared, error) {
		return leg.m.client.PRStartCtx(lctx, wire.PRStart{Job: jobID, N: n, Ghosts: routed[leg.part]})
	}); err != nil {
		return nil, fmt.Errorf("pagerank start: %w", err)
	}

	// Supersteps: step 1 scatters from the initial ranks; steps 2..k fold
	// the previous round in, commit, and scatter the next; step k+1 commits
	// the final round and collects.
	inboxes := make([][]wire.PRMessage, parts)
	for step := 1; step <= req.Iterations+1; step++ {
		last := step == req.Iterations+1
		sreq := wire.PRStepRequest{
			Job:      jobID,
			Finalize: step > 1,
			Compute:  !last,
		}
		if last {
			sreq.TopK = req.TopK
		}
		res, err := prScatter(co, ctx, legs, func(lctx context.Context, leg prLeg) (*wire.PRStepResult, error) {
			r := sreq
			r.Inbox = inboxes[leg.part]
			return leg.m.client.PRStepCtx(lctx, r)
		})
		co.an.supersteps.Inc()
		if err != nil {
			return nil, fmt.Errorf("pagerank superstep %d: %w", step, err)
		}
		if last {
			lists := make([][]wire.RankEntry, parts)
			var total int64
			for p, sr := range res {
				lists[p] = sr.Top
				total += sr.NumNodes
			}
			return &wire.PageRankResult{
				At: req.T, NumNodes: total,
				Damping: req.Damping, Iterations: req.Iterations,
				Supersteps: req.Iterations + 1,
				Top:        analytics.MergeRanks(lists, req.TopK),
			}, nil
		}
		outs := make([][]wire.PRMessage, parts)
		for p, sr := range res {
			outs[p] = sr.Out
		}
		inboxes = routeMessages(outs, parts)
	}
	return nil, fmt.Errorf("pagerank: zero iterations") // unreachable: NormalizePageRank floors Iterations at 1
}

// routeMessages is the superstep barrier: every partition's outgoing
// cross-partition shares, aggregated per target node (summed in ascending
// source-partition order, so reruns are deterministic) and routed to the
// target's owner sorted ascending by node.
func routeMessages(outs [][]wire.PRMessage, parts int) [][]wire.PRMessage {
	acc := make([]map[int64]float64, parts)
	for p := range acc {
		acc[p] = map[int64]float64{}
	}
	for _, out := range outs {
		for _, m := range out {
			acc[graph.Partition(graph.NodeID(m.Node), parts)][m.Node] += m.Val
		}
	}
	inboxes := make([][]wire.PRMessage, parts)
	for p, byNode := range acc {
		if len(byNode) == 0 {
			continue
		}
		inbox := make([]wire.PRMessage, 0, len(byNode))
		for node, val := range byNode {
			inbox = append(inbox, wire.PRMessage{Node: node, Val: val})
		}
		sort.Slice(inbox, func(i, j int) bool { return inbox[i].Node < inbox[j].Node })
		inboxes[p] = inbox
	}
	return inboxes
}
