// Package shard implements the horizontally sharded deployment of the
// snapshot query service: a coordinator that fans every query out across
// N partitions and merges the partial answers into one response — the
// paper's distributed architecture (Section 4.6) lifted from the storage
// layer (internal/kvstore.Partitioned splits one index across stores) to
// the serving layer (one full query-processor process per horizontal
// slice of the node space). The system-wide picture, including where the
// coordinator's caches sit in the hierarchy, is in docs/ARCHITECTURE.md;
// operating a cluster is covered in docs/OPERATIONS.md.
//
// Each partition is served by a replica set: one or more ordinary
// internal/server.Server processes (optionally wrapped in
// internal/replica.Node for WAL durability and replication) whose
// GraphManagers hold only the events routed to the partition by the
// node-hash partitioning (graph.PartitionOfEvent — the same hash space
// kvstore.Partitioned routes storage keys by). Every graph element's
// entire event history lands on exactly one partition: node events hash
// by node ID, and edge events (including edge-attribute updates) hash by
// their From endpoint. Partial snapshots are therefore disjoint, and
// merging is a union — counts add, element lists concatenate and
// re-sort, reproducing the exact bytes an unsharded server would emit.
//
// The coordinator preserves the serving-layer mechanisms end-to-end and
// adds the availability layer:
//
//   - Coalescing: concurrent identical /snapshot and /neighbors requests
//     share one scatter-gather via a FlightGroup, so N clients asking for
//     the same timepoint cost one fan-out — and each worker coalesces and
//     caches its own slice underneath.
//   - Merged-response cache: a small LRU over complete merged responses,
//     stored as encoded bytes per encoding (append-invalidated, like the
//     worker caches) — a hit is one write: no fan-out, no merge, no
//     encode.
//   - Streaming merge: a full /snapshot requested as a chunked stream is
//     answered by consuming every leg's stream run by run and k-way
//     merging in ID order, so coordinator peak memory under concurrent
//     large snapshots is bounded by run size × partitions, not snapshot
//     size. A leg dying mid-stream is dropped and reported in the
//     terminating summary frame's partial list — never a truncated
//     merge.
//   - Replica routing: reads spread round-robin across each set's
//     in-sync members with latency-EWMA demotion, retrying the next
//     replica when one fails; appends go to the set's primary, and a
//     dark primary triggers promotion of the most-caught-up follower
//     (internal/replica).
//   - Per-partition timeouts and partial failure: every fan-out leg is
//     bounded by Config.PartitionTimeout; if some (not all) partitions
//     fail, the merged response carries the live partitions' data with
//     the failures named in the wire types' "partial" field.
//
// Concurrency rules: a Coordinator is safe for concurrent use — it is
// immutable after New except for atomics (routing state, counters), the
// mutex-guarded caches, and the per-set failover mutex that serializes
// promotions. Every scatter leg runs in its own goroutine; nothing
// blocks on a slow partition beyond its timeout.
//
// Endpoints mirror internal/server exactly, so server.Client speaks to a
// coordinator transparently.
package shard
