package shard

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"historygraph/internal/server"
)

// reqCtx is the context handed to one fan-out leg: the per-partition
// deadline plus the partition index the leg is talking to and the
// partition count of the routing snapshot the scatter ran over.
type reqCtx struct {
	context.Context
	part  int
	parts int
}

// scatter runs call against every partition's replica set in the given
// routing snapshot concurrently, each leg derived from parent and bounded
// by the coordinator's partition timeout — canceling parent (a client
// that went away on a direct path) cancels every leg immediately instead
// of letting them run out the timeout against workers nobody is waiting
// for. Every leg is stamped with the snapshot's routing epoch, so a
// worker that has moved on answers 410 Gone instead of serving a stale
// ownership view. results[i] holds partition i's answer (the zero value
// where it failed); errs lists the failed partitions in partition order.
// The call itself never fails — total failure is the caller's decision
// (len(errs) == len(rt.sets)).
//
// Each leg is counted and timed per partition; a failed leg is charged
// to leg_cancels when parent was already canceled (the client went away
// — the partition did nothing wrong) and to leg_failures otherwise.
func scatter[T any](co *Coordinator, rt *routing, parent context.Context, call func(ctx reqCtx, rs *replicaSet) (T, error)) (results []T, errs []server.PartitionError) {
	results = make([]T, len(rt.sets))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := range rt.sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			part := strconv.Itoa(i)
			co.legs.With(part).Inc()
			begin := time.Now()
			ctx, cancel := context.WithTimeout(parent, co.timeout)
			defer cancel()
			v, err := call(reqCtx{
				Context: server.WithEpoch(ctx, rt.epoch()),
				part:    i, parts: len(rt.sets),
			}, rt.sets[i])
			co.legDur.With(part).Observe(time.Since(begin).Seconds())
			if err != nil {
				if parent.Err() != nil {
					co.legCancels.With(part).Inc()
				} else {
					co.legFails.With(part).Inc()
				}
				pe := server.PartitionError{Partition: i, Error: err.Error()}
				var he *server.HTTPError
				if errors.As(err, &he) {
					pe.Status = he.Status
				}
				mu.Lock()
				errs = append(errs, pe)
				mu.Unlock()
				return
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	sort.Slice(errs, func(a, b int) bool { return errs[a].Partition < errs[b].Partition })
	return results, errs
}

// staleEpoch reports whether any leg failed the routing-epoch fence: a
// worker answered 410 Gone because the leg was planned against a table a
// reshard has since replaced.
func staleEpoch(errs []server.PartitionError) bool {
	for _, pe := range errs {
		if pe.Status == http.StatusGone {
			return true
		}
	}
	return false
}

// awaitEpochChange polls the installed routing for up to bound and
// returns the fresh snapshot once its epoch differs from cur (nil on
// timeout). A read's 410 fence usually races the cutover by
// milliseconds — the workers are pushed to the new epoch just before the
// coordinator installs its table — so a short wait converts that window
// into one clean retry instead of a client-visible error.
func (co *Coordinator) awaitEpochChange(cur uint64, bound time.Duration) *routing {
	deadline := time.Now().Add(bound)
	for {
		if fresh := co.rt(); fresh.epoch() != cur {
			return fresh
		}
		if time.Now().After(deadline) {
			return nil
		}
		select {
		case <-co.stop:
			return nil
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// epochWait bounds how long a fenced read waits for the cutover's table
// install before giving up (a worker genuinely ahead of this coordinator
// never resolves, so the wait must stay short).
func (co *Coordinator) epochWait() time.Duration {
	if co.timeout < 2*time.Second {
		return co.timeout
	}
	return 2 * time.Second
}

// scatterRead is scatter for read queries: each leg tries the partition's
// replicas in round-robin in-sync-first order until one answers, so a
// single dead or lagging member costs a retry, not a partial response.
// Reads are not gated during a reshard cutover, so a scatter planned
// against the old table can reach workers already fenced to the new
// epoch; their 410s trigger exactly one re-scatter against the freshly
// installed routing. The routing the final attempt ran over is returned
// so callers judge totals against the right partition count.
func scatterRead[T any](co *Coordinator, parent context.Context, call func(ctx reqCtx, cl *server.Client) (T, error)) ([]T, []server.PartitionError, *routing) {
	rt := co.rt()
	for retried := false; ; {
		results, errs := scatter(co, rt, parent, func(ctx reqCtx, rs *replicaSet) (T, error) {
			return readFrom(ctx, parent, rs, func(cl *server.Client) (T, error) {
				return call(ctx, cl)
			})
		})
		if !retried && staleEpoch(errs) {
			if fresh := co.awaitEpochChange(rt.epoch(), co.epochWait()); fresh != nil {
				co.reroutes.Inc()
				rt, retried = fresh, true
				continue
			}
		}
		return results, errs, rt
	}
}

// notePartial charges a partial data response (some but not all of the
// parts partitions failed) to the partial_responses stat. Data endpoints
// call it; /stats and /readyz probes and total failures do not count.
func (co *Coordinator) notePartial(errs []server.PartitionError, parts int) {
	if len(errs) > 0 && len(errs) < parts {
		co.partials.Inc()
	}
}
