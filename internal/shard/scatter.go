package shard

import (
	"context"
	"errors"
	"sort"
	"sync"

	"historygraph/internal/server"
)

// reqCtx is the context handed to one fan-out leg: the per-partition
// deadline plus the partition index the leg is talking to.
type reqCtx struct {
	context.Context
	part int
}

// scatter runs call against every partition's replica set concurrently,
// each leg bounded by the coordinator's partition timeout. results[i]
// holds partition i's answer (the zero value where it failed); errs lists
// the failed partitions in partition order. The call itself never fails —
// total failure is the caller's decision (len(errs) == NumPartitions).
func scatter[T any](co *Coordinator, call func(ctx reqCtx, rs *replicaSet) (T, error)) (results []T, errs []server.PartitionError) {
	results = make([]T, len(co.sets))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := range co.sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), co.timeout)
			defer cancel()
			v, err := call(reqCtx{Context: ctx, part: i}, co.sets[i])
			if err != nil {
				pe := server.PartitionError{Partition: i, Error: err.Error()}
				var he *server.HTTPError
				if errors.As(err, &he) {
					pe.Status = he.Status
				}
				mu.Lock()
				errs = append(errs, pe)
				mu.Unlock()
				return
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	sort.Slice(errs, func(a, b int) bool { return errs[a].Partition < errs[b].Partition })
	return results, errs
}

// scatterRead is scatter for read queries: each leg tries the partition's
// replicas in round-robin in-sync-first order until one answers, so a
// single dead or lagging member costs a retry, not a partial response.
func scatterRead[T any](co *Coordinator, call func(ctx reqCtx, cl *server.Client) (T, error)) ([]T, []server.PartitionError) {
	return scatter(co, func(ctx reqCtx, rs *replicaSet) (T, error) {
		return readFrom(ctx, rs, func(cl *server.Client) (T, error) {
			return call(ctx, cl)
		})
	})
}

// notePartial charges a partial data response (some but not all
// partitions failed) to the partial_responses stat. Data endpoints call
// it; /stats and /healthz probes and total failures do not count.
func (co *Coordinator) notePartial(errs []server.PartitionError) {
	if len(errs) > 0 && len(errs) < len(co.sets) {
		co.partials.Add(1)
	}
}
