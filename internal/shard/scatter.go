package shard

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"sync"
	"time"

	"historygraph/internal/server"
)

// reqCtx is the context handed to one fan-out leg: the per-partition
// deadline plus the partition index the leg is talking to.
type reqCtx struct {
	context.Context
	part int
}

// scatter runs call against every partition's replica set concurrently,
// each leg derived from parent and bounded by the coordinator's partition
// timeout — canceling parent (a client that went away on a direct path)
// cancels every leg immediately instead of letting them run out the
// timeout against workers nobody is waiting for. results[i] holds
// partition i's answer (the zero value where it failed); errs lists the
// failed partitions in partition order. The call itself never fails —
// total failure is the caller's decision (len(errs) == NumPartitions).
//
// Each leg is counted and timed per partition; a failed leg is charged
// to leg_cancels when parent was already canceled (the client went away
// — the partition did nothing wrong) and to leg_failures otherwise.
func scatter[T any](co *Coordinator, parent context.Context, call func(ctx reqCtx, rs *replicaSet) (T, error)) (results []T, errs []server.PartitionError) {
	results = make([]T, len(co.sets))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := range co.sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			part := strconv.Itoa(i)
			co.legs.With(part).Inc()
			begin := time.Now()
			ctx, cancel := context.WithTimeout(parent, co.timeout)
			defer cancel()
			v, err := call(reqCtx{Context: ctx, part: i}, co.sets[i])
			co.legDur.With(part).Observe(time.Since(begin).Seconds())
			if err != nil {
				if parent.Err() != nil {
					co.legCancels.With(part).Inc()
				} else {
					co.legFails.With(part).Inc()
				}
				pe := server.PartitionError{Partition: i, Error: err.Error()}
				var he *server.HTTPError
				if errors.As(err, &he) {
					pe.Status = he.Status
				}
				mu.Lock()
				errs = append(errs, pe)
				mu.Unlock()
				return
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	sort.Slice(errs, func(a, b int) bool { return errs[a].Partition < errs[b].Partition })
	return results, errs
}

// scatterRead is scatter for read queries: each leg tries the partition's
// replicas in round-robin in-sync-first order until one answers, so a
// single dead or lagging member costs a retry, not a partial response.
func scatterRead[T any](co *Coordinator, parent context.Context, call func(ctx reqCtx, cl *server.Client) (T, error)) ([]T, []server.PartitionError) {
	return scatter(co, parent, func(ctx reqCtx, rs *replicaSet) (T, error) {
		return readFrom(ctx, parent, rs, func(cl *server.Client) (T, error) {
			return call(ctx, cl)
		})
	})
}

// notePartial charges a partial data response (some but not all
// partitions failed) to the partial_responses stat. Data endpoints call
// it; /stats and /readyz probes and total failures do not count.
func (co *Coordinator) notePartial(errs []server.PartitionError) {
	if len(errs) > 0 && len(errs) < len(co.sets) {
		co.partials.Inc()
	}
}
