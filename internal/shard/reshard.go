package shard

// The reshard driver: live split/merge of the partition layout with a
// cutover epoch. One POST /admin/reshard moves a set of hash slots onto
// a freshly provisioned replica set by
//
//  1. starting a slot-migration ingest on the target's primary
//     (internal/replica's /admin/migrate), which streams the moving
//     slots' event history out of the source partitions' WALs while
//     appends keep flowing,
//  2. polling until the bulk of the history has been copied,
//  3. taking the coordinator's append gate exclusively — draining every
//     in-flight append planned against the old table — freezing the
//     sources' WAL heads, finalizing the ingest, and waiting for the
//     target to report done (every acked event is now on the new owner),
//  4. pushing the successor slot table (epoch+1) to every worker — the
//     affected sets strictly, with rollback on failure — and atomically
//     installing it as the coordinator's routing,
//  5. releasing the gate and tearing the ingest down.
//
// Reads are never gated: a read that races the cutover hits a worker
// already fenced to the new epoch, gets 410 Gone, and is replanned once
// against the freshly installed table (scatterRead). A merge is the same
// flow with whole retired partitions as the sources — their event
// histories are interleaved into one time-ordered stream on the target —
// plus a renumbering that compacts the surviving partition indices.

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"historygraph/internal/replica"
	"historygraph/internal/server"
)

// ReshardRequest is the POST /admin/reshard body. Target names the fresh
// replica set joining the cluster (first member its primary; the set must
// be empty and already running). Exactly one mode:
//
//   - split (Merge empty): the target becomes a new partition owning
//     Slots — or, when Slots is empty, a balanced share auto-picked from
//     the largest current owners;
//   - merge (Merge set): the listed partitions are retired and every
//     slot they own moves to the target; the survivors are renumbered
//     compactly.
type ReshardRequest struct {
	Target []string `json:"target"`
	Slots  []int    `json:"slots,omitempty"`
	Merge  []int    `json:"merge,omitempty"`
}

// ReshardStatus reports one completed reshard (GET /admin/reshard returns
// the most recent).
type ReshardStatus struct {
	Epoch      uint64 `json:"epoch"`
	Partitions int    `json:"partitions"`
	Moved      int    `json:"moved_slots"`
	Migrated   uint64 `json:"events_migrated"`
	DurationMS int64  `json:"duration_ms"`
	Merged     []int  `json:"merged,omitempty"`
	Target     string `json:"target,omitempty"`
}

func (co *Coordinator) handleReshard(w http.ResponseWriter, r *http.Request) {
	var req ReshardRequest
	if err := server.ReadBody(r, &req); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad reshard body: %w", err))
		return
	}
	st, status, err := co.Reshard(r.Context(), req)
	if err != nil {
		server.WriteError(w, status, err)
		return
	}
	server.WriteJSON(w, http.StatusOK, st)
}

func (co *Coordinator) handleReshardStatus(w http.ResponseWriter, r *http.Request) {
	if st := co.lastReshard.Load(); st != nil {
		server.WriteJSON(w, http.StatusOK, st)
		return
	}
	server.WriteJSON(w, http.StatusOK, &ReshardStatus{
		Epoch: co.rt().epoch(), Partitions: co.NumPartitions(),
	})
}

// Reshard runs one split or merge end to end and returns the new layout.
// The int is the HTTP status a handler should answer an error with.
func (co *Coordinator) Reshard(ctx context.Context, req ReshardRequest) (*ReshardStatus, int, error) {
	if !co.reshardMu.TryLock() {
		return nil, http.StatusConflict, fmt.Errorf("shard: a reshard is already running")
	}
	defer co.reshardMu.Unlock()
	begin := time.Now()
	rt := co.rt()

	var target []string
	for _, u := range req.Target {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			target = append(target, u)
		}
	}
	if len(target) == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("shard: reshard wants a target member list")
	}
	for _, u := range target {
		for p, rs := range rt.sets {
			for _, m := range rs.members {
				if m.url == u {
					return nil, http.StatusUnprocessableEntity,
						fmt.Errorf("shard: target member %s already serves partition %d", u, p)
				}
			}
		}
	}

	plan, status, err := co.planReshard(rt, req)
	if err != nil {
		return nil, status, err
	}

	// Start the ingest on the target's primary and let it copy the bulk of
	// the moving history while appends keep flowing to the sources.
	tgt := target[0]
	if _, err := co.migrate(ctx, tgt, replica.MigrateRequest{Sources: plan.sources}); err != nil {
		return nil, http.StatusBadGateway, fmt.Errorf("shard: starting migration on %s: %w", tgt, err)
	}
	if err := co.waitCaughtUp(ctx, tgt); err != nil {
		co.stopMigration(tgt)
		return nil, http.StatusBadGateway, err
	}

	// Cutover. The exclusive gate drains every in-flight append planned
	// against the old table; with appends quiesced the sources' WAL heads
	// are final, so freezing them and waiting for the ingest to drain past
	// them proves every acked event reached the target.
	co.appendGate.Lock()
	defer co.appendGate.Unlock()
	heads := make([]uint64, len(plan.srcParts))
	for i, p := range plan.srcParts {
		st, err := co.sourceStatus(ctx, rt.sets[p].primaryMember().url)
		if err != nil {
			co.stopMigration(tgt)
			return nil, http.StatusBadGateway, fmt.Errorf("shard: freezing partition %d head: %w", p, err)
		}
		heads[i] = st.LastSeq
	}
	if _, err := co.migrate(ctx, tgt, replica.MigrateRequest{Finalize: heads}); err != nil {
		co.stopMigration(tgt)
		return nil, http.StatusBadGateway, fmt.Errorf("shard: finalizing migration: %w", err)
	}
	applied, err := co.waitMigrationDone(ctx, tgt)
	if err != nil {
		co.stopMigration(tgt)
		return nil, http.StatusBadGateway, err
	}

	next := &routing{table: plan.table, sets: plan.sets}
	if status, err := co.pushSlots(ctx, rt, next, plan); err != nil {
		co.stopMigration(tgt)
		return nil, status, err
	}
	co.installRouting(next)
	if plan.targetPart < len(next.sets) {
		co.registerSetGauges(plan.targetPart, next.sets[plan.targetPart])
	}
	co.reshards.Inc()
	co.stopMigration(tgt)

	st := &ReshardStatus{
		Epoch:      next.epoch(),
		Partitions: len(next.sets),
		Moved:      plan.moved,
		Migrated:   applied,
		DurationMS: time.Since(begin).Milliseconds(),
		Merged:     plan.merged,
		Target:     strings.Join(target, "|"),
	}
	co.lastReshard.Store(st)
	return st, 0, nil
}

// reshardPlan is everything a validated split/merge resolves to before
// any data moves.
type reshardPlan struct {
	sources    []replica.MigrateSource // migration sources, one per giving partition
	srcParts   []int                   // old partition index per source
	table      *SlotTable              // successor table (epoch+1)
	sets       []*replicaSet           // successor replica sets
	targetPart int                     // target's partition index in the successor layout
	moved      int                     // slots changing owner
	merged     []int                   // retired partitions (merge mode)
}

// planReshard validates the request against the current routing and
// resolves the successor layout.
func (co *Coordinator) planReshard(rt *routing, req ReshardRequest) (*reshardPlan, int, error) {
	n := len(rt.sets)
	targetSet := newReplicaSet(targetURLs(req.Target), co.hc, co.legWire)
	if len(req.Merge) > 0 {
		if len(req.Slots) > 0 {
			return nil, http.StatusBadRequest, fmt.Errorf("shard: merge and slots are mutually exclusive")
		}
		seen := map[int]bool{}
		merged := append([]int(nil), req.Merge...)
		sort.Ints(merged)
		for _, p := range merged {
			if p < 0 || p >= n {
				return nil, http.StatusUnprocessableEntity, fmt.Errorf("shard: merge partition %d out of range [0, %d)", p, n)
			}
			if seen[p] {
				return nil, http.StatusUnprocessableEntity, fmt.Errorf("shard: merge partition %d listed twice", p)
			}
			seen[p] = true
		}
		plan := &reshardPlan{merged: merged}
		var moving []int
		for _, p := range merged {
			owned := rt.table.OwnedBy(p)
			if len(owned) == 0 {
				continue
			}
			plan.sources = append(plan.sources, replica.MigrateSource{URLs: rt.sets[p].urls(), Slots: owned})
			plan.srcParts = append(plan.srcParts, p)
			moving = append(moving, owned...)
		}
		if len(plan.sources) == 0 {
			return nil, http.StatusUnprocessableEntity, fmt.Errorf("shard: merged partitions own no slots")
		}
		// The moving slots go to a temporary index past the old layout,
		// then the survivors are compacted: survivor order is preserved,
		// the target lands last.
		tmp := n
		tbl, err := rt.table.Reassign(moving, tmp)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, err
		}
		renum := map[int]int{}
		for p := 0; p < n; p++ {
			if !seen[p] {
				renum[p] = len(plan.sets)
				plan.sets = append(plan.sets, rt.sets[p])
			}
		}
		plan.targetPart = len(plan.sets)
		renum[tmp] = plan.targetPart
		plan.sets = append(plan.sets, targetSet)
		// Retired owners hold no slots after the reassign, but Renumber
		// demands totality; map them to the target (no slot resolves there).
		for _, p := range merged {
			renum[p] = plan.targetPart
		}
		if plan.table, err = tbl.Renumber(renum); err != nil {
			return nil, http.StatusUnprocessableEntity, err
		}
		plan.moved = len(moving)
		return plan, 0, nil
	}

	// Split: explicit slots or a balanced auto-pick.
	moving := append([]int(nil), req.Slots...)
	if len(moving) == 0 {
		moving = pickSlots(rt.table, n)
	}
	if len(moving) == 0 {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("shard: no slots to move (every owner is down to one slot)")
	}
	sort.Ints(moving)
	bySrc := map[int][]int{}
	for i, s := range moving {
		if s < 0 || s >= NumSlots {
			return nil, http.StatusUnprocessableEntity, fmt.Errorf("shard: slot %d out of range [0, %d)", s, NumSlots)
		}
		if i > 0 && moving[i-1] == s {
			return nil, http.StatusUnprocessableEntity, fmt.Errorf("shard: slot %d listed twice", s)
		}
		p := rt.table.Slots[s]
		bySrc[p] = append(bySrc[p], s)
	}
	plan := &reshardPlan{moved: len(moving), targetPart: n}
	for p := 0; p < n; p++ {
		if slots := bySrc[p]; len(slots) > 0 {
			plan.sources = append(plan.sources, replica.MigrateSource{URLs: rt.sets[p].urls(), Slots: slots})
			plan.srcParts = append(plan.srcParts, p)
		}
	}
	tbl, err := rt.table.Reassign(moving, n)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	plan.table = tbl
	plan.sets = append(append([]*replicaSet(nil), rt.sets...), targetSet)
	return plan, 0, nil
}

// targetURLs normalizes the request's target member list.
func targetURLs(raw []string) []string {
	var out []string
	for _, u := range raw {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// pickSlots auto-picks a balanced share for a joining partition: an equal
// 1/(n+1) fraction of the slot space, drawn one slot at a time from
// whichever owner currently holds the most (never stripping an owner
// below one slot).
func pickSlots(t *SlotTable, n int) []int {
	want := NumSlots / (n + 1)
	owned := make([][]int, n)
	for s, p := range t.Slots {
		owned[p] = append(owned[p], s)
	}
	var out []int
	for len(out) < want {
		big := 0
		for p := 1; p < n; p++ {
			if len(owned[p]) > len(owned[big]) {
				big = p
			}
		}
		if len(owned[big]) <= 1 {
			break
		}
		out = append(out, owned[big][len(owned[big])-1])
		owned[big] = owned[big][:len(owned[big])-1]
	}
	sort.Ints(out)
	return out
}

// migrate posts one /admin/migrate action to the target primary, bounded
// by the partition timeout.
func (co *Coordinator) migrate(ctx context.Context, tgt string, mr replica.MigrateRequest) (*replica.MigrateStatus, error) {
	cctx, cancel := context.WithTimeout(ctx, co.timeout)
	defer cancel()
	return replica.Migrate(cctx, co.hc, tgt, mr)
}

// stopMigration tears the target's ingest down, best effort (the target
// may be the thing that just died).
func (co *Coordinator) stopMigration(tgt string) {
	ctx, cancel := context.WithTimeout(context.Background(), co.probeTimeout())
	defer cancel()
	_, _ = replica.Migrate(ctx, co.hc, tgt, replica.MigrateRequest{Stop: true})
}

// sourceStatus reads one source primary's /replstatus (its LastSeq is the
// head frozen at cutover).
func (co *Coordinator) sourceStatus(ctx context.Context, url string) (*replica.StatusJSON, error) {
	cctx, cancel := context.WithTimeout(ctx, co.probeTimeout())
	defer cancel()
	return replica.Status(cctx, co.hc, url)
}

// reshardPoll is the ingest polling cadence.
const reshardPoll = 25 * time.Millisecond

// catchupBound bounds the pre-cutover bulk copy wait. Reaching it is not
// an error: the cutover is correct regardless (the finalize covers
// whatever tail remains) — the bound only caps how long the bulk phase
// may keep the append gate cheap before the cutover proceeds anyway.
func (co *Coordinator) catchupBound() time.Duration { return 8 * co.timeout }

// waitCaughtUp polls the ingest until every source's cursor has passed
// its currently durable head — the moment the remaining tail is just
// whatever appends landed during the copy — or the bound expires.
// An ingest error aborts the reshard.
func (co *Coordinator) waitCaughtUp(ctx context.Context, tgt string) error {
	deadline := time.Now().Add(co.catchupBound())
	for {
		cctx, cancel := context.WithTimeout(ctx, co.probeTimeout())
		st, err := replica.MigrationStatus(cctx, co.hc, tgt)
		cancel()
		if err != nil {
			return fmt.Errorf("shard: polling migration on %s: %w", tgt, err)
		}
		if st.Error != "" {
			return fmt.Errorf("shard: migration failed: %s", st.Error)
		}
		caught := st.Active
		for _, s := range st.Sources {
			if s.NextFrom <= s.Head {
				caught = false
			}
		}
		if caught || time.Now().After(deadline) {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(reshardPoll):
		}
	}
}

// waitMigrationDone polls the finalized ingest until done (every migrated
// record applied) and returns the applied-event count.
func (co *Coordinator) waitMigrationDone(ctx context.Context, tgt string) (uint64, error) {
	deadline := time.Now().Add(co.catchupBound())
	for {
		cctx, cancel := context.WithTimeout(ctx, co.probeTimeout())
		st, err := replica.MigrationStatus(cctx, co.hc, tgt)
		cancel()
		if err != nil {
			return 0, fmt.Errorf("shard: polling migration on %s: %w", tgt, err)
		}
		if st.Error != "" {
			return 0, fmt.Errorf("shard: migration failed: %s", st.Error)
		}
		if st.Done {
			return st.Applied, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("shard: migration did not drain within %s", co.catchupBound())
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(reshardPoll):
		}
	}
}

// pushSlots distributes the successor table's ownership to the workers.
// Sets whose ownership actually changes — the sources, the target, and
// (in a merge) the retired partitions — are pushed strictly: any failure
// rolls the already-pushed members back to the old table and aborts the
// reshard. Every other set is pushed best effort; a member that misses
// the push fences with 410 until the health loop's syncSlots heals it.
func (co *Coordinator) pushSlots(ctx context.Context, old, next *routing, plan *reshardPlan) (int, error) {
	cctx, cancel := context.WithTimeout(ctx, co.timeout)
	defer cancel()
	critical := map[*replicaSet]bool{next.sets[plan.targetPart]: true}
	for _, p := range plan.srcParts {
		critical[old.sets[p]] = true
	}

	// Old partition index per surviving set, for rollback configs.
	oldIndex := map[*replicaSet]int{}
	for p, rs := range old.sets {
		oldIndex[rs] = p
	}

	type pushed struct {
		m   *member
		old server.SlotsJSON
	}
	var done []pushed
	rollback := func() {
		rctx, rcancel := context.WithTimeout(context.Background(), co.timeout)
		defer rcancel()
		for _, pu := range done {
			_ = pu.m.client.SetSlotsCtx(rctx, pu.old)
		}
	}

	// Strict pushes first: the new owner, the sources, the retired.
	for np, rs := range next.sets {
		if !critical[rs] {
			continue
		}
		cfg := server.SlotsJSON{Epoch: next.epoch(), Slots: next.table.OwnedBy(np)}
		var oldCfg server.SlotsJSON
		if op, ok := oldIndex[rs]; ok {
			oldCfg = server.SlotsJSON{Epoch: old.epoch(), Slots: old.table.OwnedBy(op)}
		} else {
			oldCfg = server.SlotsJSON{Epoch: old.epoch()} // joining set owned nothing
		}
		for _, m := range rs.members {
			if err := m.client.SetSlotsCtx(cctx, cfg); err != nil {
				rollback()
				return http.StatusBadGateway, fmt.Errorf("shard: pushing slots to %s: %w", m.url, err)
			}
			done = append(done, pushed{m: m, old: oldCfg})
		}
	}
	// Retired sets leave the layout owning nothing; they keep their data
	// but fence and filter everything, so double-serving is impossible
	// even if a stale client reaches them directly.
	for _, p := range plan.merged {
		rs := old.sets[p]
		oldCfg := server.SlotsJSON{Epoch: old.epoch(), Slots: old.table.OwnedBy(p)}
		for _, m := range rs.members {
			if err := m.client.SetSlotsCtx(cctx, server.SlotsJSON{Epoch: next.epoch()}); err != nil {
				rollback()
				return http.StatusBadGateway, fmt.Errorf("shard: pushing slots to retired %s: %w", m.url, err)
			}
			done = append(done, pushed{m: m, old: oldCfg})
		}
	}
	// Best-effort pushes: untouched survivors need the epoch bump too
	// (their slots are unchanged), but a miss here only fences that set
	// until the health loop re-pushes.
	for np, rs := range next.sets {
		if critical[rs] {
			continue
		}
		cfg := server.SlotsJSON{Epoch: next.epoch(), Slots: next.table.OwnedBy(np)}
		for _, m := range rs.members {
			_ = m.client.SetSlotsCtx(cctx, cfg)
		}
	}
	return 0, nil
}

// installRouting atomically swaps the coordinator's routing and drops the
// merged-response cache (entries were merged under the old layout; after
// a migration the same timepoint merges from a different set of workers,
// and a stale entry would hide that).
func (co *Coordinator) installRouting(next *routing) {
	co.routing.Store(next)
	if co.cache != nil {
		co.cache.InvalidateFrom(0)
	}
}

// syncSlots heals worker slot state from the health loop: any member of
// the installed layout whose reported epoch disagrees gets the installed
// ownership re-pushed. This covers members that missed the cutover push
// and workers restarted since (ownership is in-memory state).
func (co *Coordinator) syncSlots(rt *routing) {
	ctx, cancel := context.WithTimeout(context.Background(), co.probeTimeout())
	defer cancel()
	for p, rs := range rt.sets {
		var desired *server.SlotsJSON
		for _, m := range rs.members {
			cur, err := m.client.SlotsCtx(ctx)
			if err != nil || cur.Epoch == rt.epoch() {
				continue
			}
			if desired == nil {
				desired = &server.SlotsJSON{Epoch: rt.epoch(), Slots: rt.table.OwnedBy(p)}
			}
			_ = m.client.SetSlotsCtx(ctx, *desired)
		}
	}
}
