// Package shard implements the horizontally sharded deployment of the
// snapshot query service: a coordinator that fans every query out across N
// partition servers and merges the partial answers into one response —
// the paper's distributed architecture (Section 4.6) lifted from the
// storage layer (internal/kvstore.Partitioned splits one index across
// stores) to the serving layer (one full query-processor process per
// horizontal slice of the node space).
//
// Each partition worker is an ordinary internal/server.Server whose
// GraphManager holds only the events routed to it by the node-hash
// partitioning (graph.PartitionOfEvent — the same hash space
// kvstore.Partitioned routes storage keys by). Every graph element's
// entire event history lands on exactly one partition: node events hash
// by node ID, and edge events (including edge-attribute updates) hash by
// their From endpoint. Partial snapshots are therefore disjoint, and
// merging is a union — counts add, element lists concatenate and re-sort.
//
// The coordinator preserves the serving-layer mechanisms end-to-end:
//
//   - Coalescing: concurrent identical /snapshot and /neighbors requests
//     share one scatter-gather via a FlightGroup, so N clients asking for
//     the same timepoint cost one fan-out — and each worker coalesces and
//     caches its own slice underneath.
//   - Per-partition timeouts: every fan-out leg is bounded by
//     Config.PartitionTimeout.
//   - Partial failure: if some (not all) partitions fail or time out, the
//     merged response still carries the live partitions' data, with the
//     failed partitions reported in the wire types' "partial" field.
//
// Endpoints mirror internal/server exactly, so server.Client speaks to a
// coordinator transparently.
package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/server"
)

// DefaultPartitionTimeout bounds each fan-out leg when Config leaves
// PartitionTimeout zero.
const DefaultPartitionTimeout = 15 * time.Second

// Config tunes the coordinator.
type Config struct {
	// PartitionTimeout bounds every fan-out leg; a partition that does
	// not answer in time is dropped from the merge and reported in the
	// response's partial list. 0 picks DefaultPartitionTimeout.
	PartitionTimeout time.Duration
	// HTTPClient overrides the pooled transport used for fan-out
	// requests (tests inject clients wired to in-process servers).
	HTTPClient *http.Client
}

// Coordinator scatters queries across partition servers and gathers the
// partial answers. It is safe for concurrent use.
type Coordinator struct {
	peers   []*server.Client
	urls    []string
	timeout time.Duration
	mux     *http.ServeMux
	flights server.FlightGroup

	requests  atomic.Int64
	fanouts   atomic.Int64 // scatter-gather executions
	coalesced atomic.Int64 // requests served by another caller's fan-out
	partials  atomic.Int64 // responses missing >= 1 partition
}

// New builds a coordinator over the given partition base URLs. The slice
// order defines partition IDs and must match the hash space the workers'
// event slices were split by (PartitionEvents with n = len(peerURLs)).
func New(peerURLs []string, cfg Config) (*Coordinator, error) {
	if len(peerURLs) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one partition peer")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * len(peerURLs),
			MaxIdleConnsPerHost: 4,
		}}
	}
	timeout := cfg.PartitionTimeout
	if timeout <= 0 {
		timeout = DefaultPartitionTimeout
	}
	co := &Coordinator{timeout: timeout}
	for _, u := range peerURLs {
		co.urls = append(co.urls, strings.TrimRight(u, "/"))
		co.peers = append(co.peers, server.NewClientHTTP(u, hc))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snapshot", co.handleSnapshot)
	mux.HandleFunc("GET /neighbors", co.handleNeighbors)
	mux.HandleFunc("GET /batch", co.handleBatch)
	mux.HandleFunc("GET /interval", co.handleInterval)
	mux.HandleFunc("POST /expr", co.handleExpr)
	mux.HandleFunc("POST /append", co.handleAppend)
	mux.HandleFunc("GET /stats", co.handleStats)
	mux.HandleFunc("GET /healthz", co.handleHealthz)
	co.mux = mux
	return co, nil
}

// NumPartitions returns the number of partition servers.
func (co *Coordinator) NumPartitions() int { return len(co.peers) }

// Fanouts reports how many scatter-gathers actually executed (tests
// assert coordinator-level coalescing against this).
func (co *Coordinator) Fanouts() int64 { return co.fanouts.Load() }

// Handler returns the coordinator's HTTP handler.
func (co *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		co.requests.Add(1)
		co.mux.ServeHTTP(w, r)
	})
}

// allFailed converts a total fan-out failure into one error.
func (co *Coordinator) allFailed(errs []server.PartitionError) error {
	return fmt.Errorf("shard: all %d partitions failed (partition 0: %s)", len(co.peers), errs[0].Error)
}

func (co *Coordinator) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, err := server.ParseTimeParam(q.Get("t"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := server.BoolParam(q.Get("full"))
	key := fmt.Sprintf("snap|%d|%s|%t", t, attrs, full)
	v, shared, err := co.flights.Do(key, func() (any, error) {
		co.fanouts.Add(1)
		parts, errs := scatter(co, func(ctx reqCtx, cl *server.Client) (*server.SnapshotJSON, error) {
			return cl.SnapshotCtx(ctx, t, attrs, full)
		})
		if len(errs) == len(co.peers) {
			return nil, co.allFailed(errs)
		}
		co.notePartial(errs)
		return mergeSnapshots(int64(t), parts, errs), nil
	})
	if err != nil {
		server.WriteError(w, http.StatusBadGateway, err)
		return
	}
	out := v.(server.SnapshotJSON)
	if shared {
		co.coalesced.Add(1)
		out.Coalesced = true
	}
	server.WriteJSON(w, http.StatusOK, out)
}

func (co *Coordinator) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, err := server.ParseTimeParam(q.Get("t"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	nodeRaw := q.Get("node")
	node, err := strconv.ParseInt(nodeRaw, 10, 64)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad node %q", nodeRaw))
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// A node's incident edges are scattered across partitions (each edge
	// lives with its From endpoint), so the neighborhood is the union of
	// every partition's local adjacency.
	key := fmt.Sprintf("nbr|%d|%d|%s", t, node, attrs)
	v, shared, err := co.flights.Do(key, func() (any, error) {
		co.fanouts.Add(1)
		parts, errs := scatter(co, func(ctx reqCtx, cl *server.Client) (*server.NeighborsJSON, error) {
			return cl.NeighborsCtx(ctx, t, historygraph.NodeID(node), attrs)
		})
		if len(errs) == len(co.peers) {
			return nil, co.allFailed(errs)
		}
		co.notePartial(errs)
		return mergeNeighbors(int64(t), node, parts, errs), nil
	})
	if err != nil {
		server.WriteError(w, http.StatusBadGateway, err)
		return
	}
	if shared {
		co.coalesced.Add(1)
	}
	server.WriteJSON(w, http.StatusOK, v.(server.NeighborsJSON))
}

func (co *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var times []historygraph.Time
	for _, part := range strings.Split(q.Get("t"), ",") {
		t, err := server.ParseTimeParam(strings.TrimSpace(part))
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, err)
			return
		}
		times = append(times, t)
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := server.BoolParam(q.Get("full"))
	parts, errs := scatter(co, func(ctx reqCtx, cl *server.Client) ([]server.SnapshotJSON, error) {
		batch, err := cl.SnapshotsCtx(ctx, times, attrs, full)
		if err != nil {
			return nil, err
		}
		if len(batch) != len(times) {
			return nil, fmt.Errorf("partition answered %d snapshots for %d timepoints", len(batch), len(times))
		}
		return batch, nil
	})
	if len(errs) == len(co.peers) {
		server.WriteError(w, http.StatusBadGateway, co.allFailed(errs))
		return
	}
	co.notePartial(errs)
	out := make([]server.SnapshotJSON, len(times))
	for i, t := range times {
		slice := make([]*server.SnapshotJSON, len(parts))
		for p, batch := range parts {
			if batch != nil {
				slice[p] = &batch[i]
			}
		}
		out[i] = mergeSnapshots(int64(t), slice, errs)
	}
	server.WriteJSON(w, http.StatusOK, out)
}

func (co *Coordinator) handleInterval(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err1 := server.ParseTimeParam(q.Get("from"))
	to, err2 := server.ParseTimeParam(q.Get("to"))
	if err1 != nil || err2 != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("interval wants numeric from/to"))
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := server.BoolParam(q.Get("full"))
	parts, errs := scatter(co, func(ctx reqCtx, cl *server.Client) (*server.IntervalJSON, error) {
		return cl.IntervalCtx(ctx, from, to, attrs, full)
	})
	if len(errs) == len(co.peers) {
		server.WriteError(w, http.StatusBadGateway, co.allFailed(errs))
		return
	}
	co.notePartial(errs)
	server.WriteJSON(w, http.StatusOK, mergeIntervals(parts, errs))
}

func (co *Coordinator) handleExpr(w http.ResponseWriter, r *http.Request) {
	var req server.ExprRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad expr body: %w", err))
		return
	}
	if _, err := server.ParseTimeExpr(req.Expr, len(req.Times)); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// A TimeExpression decides membership element by element, and every
	// element's history is confined to one partition — so evaluating the
	// expression per partition and unioning is exact.
	parts, errs := scatter(co, func(ctx reqCtx, cl *server.Client) (*server.SnapshotJSON, error) {
		return cl.ExprCtx(ctx, req)
	})
	if len(errs) == len(co.peers) {
		server.WriteError(w, http.StatusBadGateway, co.allFailed(errs))
		return
	}
	co.notePartial(errs)
	server.WriteJSON(w, http.StatusOK, mergeSnapshots(0, parts, errs))
}

func (co *Coordinator) handleAppend(w http.ResponseWriter, r *http.Request) {
	var body []server.EventJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad append body: %w", err))
		return
	}
	perPart := make([]historygraph.EventList, len(co.peers))
	for _, ej := range body {
		ev, err := server.EventFromJSON(ej)
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, err)
			return
		}
		p := PartitionOf(ev, len(co.peers))
		perPart[p] = append(perPart[p], ev)
	}
	// Every worker gets its slice (possibly empty — an empty append still
	// reports the worker's last_time, keeping the merged clock exact).
	parts, errs := scatter(co, func(ctx reqCtx, cl *server.Client) (*server.AppendResult, error) {
		return cl.AppendCtx(ctx, perPart[ctx.part])
	})
	if len(errs) == len(co.peers) {
		server.WriteError(w, http.StatusBadGateway, co.allFailed(errs))
		return
	}
	co.notePartial(errs)
	out := server.AppendResult{Partial: errs}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Appended += p.Appended
		out.Invalidated += p.Invalidated
		if p.LastTime > out.LastTime {
			out.LastTime = p.LastTime
		}
	}
	server.WriteJSON(w, http.StatusOK, out)
}

// PartitionStatsJSON is one partition's section of the coordinator's
// /stats answer.
type PartitionStatsJSON struct {
	Partition int               `json:"partition"`
	URL       string            `json:"url"`
	Error     string            `json:"error,omitempty"`
	Stats     *server.StatsJSON `json:"stats,omitempty"`
}

// StatsJSON answers the coordinator's GET /stats: fan-out counters plus
// every partition's own stats.
type StatsJSON struct {
	Partitions       int                  `json:"partitions"`
	Requests         int64                `json:"requests"`
	Fanouts          int64                `json:"fanouts"`
	Coalesced        int64                `json:"coalesced"`
	PartialResponses int64                `json:"partial_responses"`
	PerPartition     []PartitionStatsJSON `json:"per_partition"`
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	parts, errs := scatter(co, func(ctx reqCtx, cl *server.Client) (*server.StatsJSON, error) {
		return cl.StatsCtx(ctx)
	})
	out := StatsJSON{
		Partitions:       len(co.peers),
		Requests:         co.requests.Load(),
		Fanouts:          co.fanouts.Load(),
		Coalesced:        co.coalesced.Load(),
		PartialResponses: co.partials.Load(),
	}
	failed := make(map[int]string, len(errs))
	for _, pe := range errs {
		failed[pe.Partition] = pe.Error
	}
	for p := range co.peers {
		ps := PartitionStatsJSON{Partition: p, URL: co.urls[p], Stats: parts[p]}
		ps.Error = failed[p]
		out.PerPartition = append(out.PerPartition, ps)
	}
	server.WriteJSON(w, http.StatusOK, out)
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, errs := scatter(co, func(ctx reqCtx, cl *server.Client) (struct{}, error) {
		return struct{}{}, cl.HealthCtx(ctx)
	})
	if len(errs) == 0 {
		server.WriteJSON(w, http.StatusOK, map[string]any{"status": "ok", "partitions": len(co.peers)})
		return
	}
	server.WriteJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status": "degraded", "partitions": len(co.peers), "partial": errs,
	})
}
