// The Coordinator type and its endpoint handlers (package overview in
// doc.go).
package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/metrics"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// DefaultPartitionTimeout bounds each fan-out leg when Config leaves
// PartitionTimeout zero.
const DefaultPartitionTimeout = 15 * time.Second

// DefaultCacheSize is the merged-response LRU capacity when Config leaves
// CacheSize zero.
const DefaultCacheSize = 64

// DefaultMaxLag is how many WAL records behind the replication head a
// member may be and still serve reads, when Config leaves MaxLag zero.
const DefaultMaxLag = 1024

// Config tunes the coordinator.
type Config struct {
	// PartitionTimeout bounds every fan-out leg; a partition whose
	// replicas do not answer in time is dropped from the merge and
	// reported in the response's partial list. 0 picks
	// DefaultPartitionTimeout.
	PartitionTimeout time.Duration
	// CacheSize is the merged-response LRU capacity. 0 picks the default
	// (64); negative disables the coordinator cache.
	CacheSize int
	// CacheTTL bounds the age of a merged-response cache entry. Appends
	// routed through this coordinator invalidate the cache exactly, but an
	// append sent directly to a partition primary (which the replica
	// /append endpoint accepts) bypasses that invalidation — deployments
	// that cannot guarantee every write flows through the coordinator
	// should set a TTL. 0 keeps entries until invalidation or LRU
	// eviction.
	CacheTTL time.Duration
	// HealthInterval is the period of the background replica health
	// checker (marks members up/down and in-/out-of-sync, and promotes a
	// follower when a primary stays dark). 0 disables it; failover still
	// happens on demand when an append hits a dead primary.
	HealthInterval time.Duration
	// MaxLag is the in-sync read threshold in WAL records. 0 picks
	// DefaultMaxLag.
	MaxLag uint64
	// HTTPClient overrides the pooled transport used for fan-out
	// requests (tests inject clients wired to in-process servers).
	HTTPClient *http.Client
	// Wire selects the codec the coordinator's scatter legs use when
	// talking to partition workers: "json" (the default) or "binary".
	// Binary legs skip the per-element JSON encode on every worker and the
	// matching decode on the coordinator; the merge operates on the decoded
	// structs either way, so external responses are byte-identical
	// whichever leg codec is picked. Streamed full-snapshot requests
	// (Accept: application/x-deltagraph-bin-stream) always use streaming
	// scatter legs regardless of this setting.
	Wire string
	// StreamRun is how many elements one merged stream frame carries on
	// the streaming /snapshot path; coordinator peak memory under
	// concurrent large snapshots is proportional to it (times the
	// partition count). 0 picks wire.DefaultRunSize.
	StreamRun int
	// StreamTimeout bounds the total delivery of one merged stream.
	// PartitionTimeout cannot play that role: leg reads are
	// back-pressured by the client draining the merged output, so a
	// large snapshot or a slow reader legitimately holds legs open far
	// longer than any worker-responsiveness bound — only the stream
	// *open* (including replica retries) is held to PartitionTimeout.
	// This cap exists so a wedged worker or abandoned client cannot pin
	// legs forever. 0 picks 20 x PartitionTimeout (5 minutes at the
	// defaults).
	StreamTimeout time.Duration
	// Metrics is the registry the coordinator registers its collectors
	// on (and serves at GET /metrics); nil creates a private one.
	Metrics *metrics.Registry
	// SlowQueryThreshold, when positive, logs one line for every request
	// slower than it. Zero disables the log.
	SlowQueryThreshold time.Duration
}

// routing is one immutable routing state: the versioned slot table plus
// the replica sets its partition indices map into. A reshard builds a
// fresh routing and swaps the coordinator's pointer; requests capture one
// snapshot and run entirely against it, so the swap is atomic from every
// handler's point of view.
type routing struct {
	table *SlotTable
	sets  []*replicaSet
}

// epoch is the routing table's version stamp.
func (rt *routing) epoch() uint64 { return rt.table.Epoch }

// Coordinator scatters queries across partition replica sets and gathers
// the partial answers. It is safe for concurrent use.
type Coordinator struct {
	routing   atomic.Pointer[routing]
	hc        *http.Client
	legWire   string // codec name scatter-leg clients are built with
	timeout   time.Duration
	streamCap time.Duration // total merged-stream delivery bound
	maxLag    uint64
	runSize   int // elements per merged stream frame
	mux       *http.ServeMux
	flights   server.FlightGroup
	cache     *coCache // nil when disabled

	// appendGate serializes appends against a reshard cutover: every
	// append scatter holds it shared, the cutover holds it exclusively —
	// so taking the gate drains in-flight appends planned against the old
	// table, and no append straddles an epoch flip.
	appendGate  sync.RWMutex
	reshardMu   sync.Mutex // one reshard at a time
	lastReshard atomic.Pointer[ReshardStatus]

	stop       chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once

	// Every counter below lives in the metrics registry; /stats reads
	// the same collectors the /metrics exposition renders, so the two
	// surfaces cannot drift. Coalesced requests are the flight group's
	// hit counter (cache="flight").
	reg        *metrics.Registry
	ins        *server.Instrumentation
	fanouts    *metrics.Counter      // scatter-gather executions
	partials   *metrics.Counter      // responses missing >= 1 partition
	failovers  *metrics.Counter      // primary promotions
	reshards   *metrics.Counter      // completed reshard cutovers
	reroutes   *metrics.Counter      // scatters replanned after a 410 epoch fence
	encodes    *metrics.Counter      // response-body encode executions (cache hits do none)
	legs       *metrics.CounterVec   // fan-out legs launched, by partition
	legFails   *metrics.CounterVec   // legs that failed (timeout, transport, 5xx)
	legCancels *metrics.CounterVec   // legs abandoned because the client went away
	legDur     *metrics.HistogramVec // per-leg wall time (open time for streams)
	mg         memberGauges          // per-member gauge vecs, extended when partitions join

	an coAnalytics // /analytics merge handlers + PageRank job machine
}

// rt returns the installed routing snapshot. Handlers capture it once per
// request and route every leg through the same snapshot.
func (co *Coordinator) rt() *routing { return co.routing.Load() }

// coordinatorEndpoints is the endpoint-label whitelist for the
// coordinator's request metrics.
var coordinatorEndpoints = []string{
	"/snapshot", "/neighbors", "/batch", "/interval", "/expr", "/append",
	"/analytics/degree", "/analytics/components", "/analytics/evolution",
	"/analytics/pagerank",
	"/admin/reshard",
	"/stats", "/healthz", "/readyz", "/metrics",
}

// New builds a coordinator over the given partition peer specs. The slice
// order defines partition IDs and must match the hash space the workers'
// event slices were split by (PartitionEvents with n = len(peerURLs)).
// Each spec is either one base URL (an unreplicated partition) or a
// "|"-separated replica set, first member the initial primary:
//
//	http://h1:8186|http://h2:8186,http://h1:8187|http://h2:8187
func New(peerURLs []string, cfg Config) (*Coordinator, error) {
	sets := make([][]string, 0, len(peerURLs))
	for _, spec := range peerURLs {
		var members []string
		for _, u := range strings.Split(spec, "|") {
			if u = strings.TrimSpace(u); u != "" {
				members = append(members, u)
			}
		}
		sets = append(sets, members)
	}
	return NewReplicated(sets, cfg)
}

// NewReplicated is New with the replica sets already split out: one inner
// slice per partition, first member the initial primary.
func NewReplicated(peerSets [][]string, cfg Config) (*Coordinator, error) {
	if len(peerSets) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one partition")
	}
	total := 0
	for _, set := range peerSets {
		total += len(set)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * total,
			MaxIdleConnsPerHost: 4,
		}}
	}
	timeout := cfg.PartitionTimeout
	if timeout <= 0 {
		timeout = DefaultPartitionTimeout
	}
	maxLag := cfg.MaxLag
	if maxLag == 0 {
		maxLag = DefaultMaxLag
	}
	legWire, err := wire.ByName(cfg.Wire)
	if err != nil {
		return nil, err
	}
	runSize := cfg.StreamRun
	if runSize <= 0 {
		runSize = wire.DefaultRunSize
	}
	streamCap := cfg.StreamTimeout
	if streamCap <= 0 {
		streamCap = 20 * timeout
	}
	co := &Coordinator{
		hc: hc, legWire: legWire.Name(),
		timeout: timeout, streamCap: streamCap, maxLag: maxLag, runSize: runSize,
		stop: make(chan struct{}),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	co.reg = reg
	co.fanouts = reg.Counter("dg_shard_fanouts_total", "Scatter-gather executions.")
	co.partials = reg.Counter("dg_shard_partial_responses_total", "Responses missing at least one partition.")
	co.failovers = reg.Counter("dg_shard_failovers_total", "Primary promotions run by the coordinator.")
	co.reshards = reg.Counter("dg_shard_reshards_total", "Completed reshard cutovers (epoch flips).")
	co.reroutes = reg.Counter("dg_shard_reroutes_total", "Scatters replanned against a fresh routing table after a 410 epoch fence.")
	reg.GaugeFunc("dg_shard_epoch", "Installed routing-table epoch.",
		func() float64 { return float64(co.rt().epoch()) })
	reg.GaugeFunc("dg_shard_partitions", "Partitions in the installed routing table.",
		func() float64 { return float64(len(co.rt().sets)) })
	co.encodes = reg.Counter("dg_encodes_total", "Merged-response body encode executions.")
	co.legs = reg.CounterVec("dg_shard_legs_total", "Fan-out legs launched, by partition.", "partition")
	co.legFails = reg.CounterVec("dg_shard_leg_failures_total", "Fan-out legs that failed, by partition.", "partition")
	co.legCancels = reg.CounterVec("dg_shard_leg_cancels_total", "Fan-out legs canceled because the client went away, by partition.", "partition")
	co.legDur = reg.HistogramVec("dg_shard_leg_duration_seconds", "Per-leg wall time by partition (stream legs report open time).", nil, "partition")
	co.an.jobs = make(map[string]*coJob)
	co.an.jobsTotal = reg.CounterVec("dg_analytics_jobs_total", "Analytics executions by kind and outcome.", "kind", "status")
	co.an.durations = reg.HistogramVec("dg_analytics_duration_seconds", "Analytics execution wall time by kind.", nil, "kind")
	co.an.supersteps = reg.Counter("dg_analytics_supersteps_total", "PageRank supersteps driven across partitions.")
	hits := reg.CounterVec("dg_cache_hits_total", "Cache hits by cache level.", "cache")
	misses := reg.CounterVec("dg_cache_misses_total", "Cache misses by cache level.", "cache")
	evictions := reg.CounterVec("dg_cache_evictions_total", "Cache evictions by cache level.", "cache")
	entries := reg.GaugeVec("dg_cache_entries", "Resident entries by cache level.", "cache")
	capacity := reg.GaugeVec("dg_cache_capacity", "Configured capacity by cache level.", "cache")
	// The flight group is a cache level here too: a hit is a request
	// served by another caller's in-flight fan-out.
	co.flights.Hits = hits.With("flight")
	co.flights.Misses = misses.With("flight")
	var sets []*replicaSet
	for p, set := range peerSets {
		if len(set) == 0 {
			return nil, fmt.Errorf("shard: partition %d has no members", p)
		}
		sets = append(sets, newReplicaSet(set, hc, co.legWire))
	}
	// Boot routing: the default table (slot i -> partition i mod n) at
	// epoch 1, which routes identically to the historical fixed hash.
	co.routing.Store(&routing{table: DefaultSlotTable(len(sets)), sets: sets})
	co.registerMemberGauges(reg)
	for p, rs := range sets {
		co.registerSetGauges(p, rs)
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	if size > 0 {
		co.cache = newCoCache(size, cfg.CacheTTL, cacheCounters{
			hits: hits.With("merged"), misses: misses.With("merged"), evictions: evictions.With("merged"),
		})
		entries.Func(func() float64 { return float64(co.cache.Len()) }, "merged")
		capacity.With("merged").Set(float64(size))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snapshot", co.handleSnapshot)
	mux.HandleFunc("GET /neighbors", co.handleNeighbors)
	mux.HandleFunc("GET /batch", co.handleBatch)
	mux.HandleFunc("GET /interval", co.handleInterval)
	mux.HandleFunc("POST /expr", co.handleExpr)
	mux.HandleFunc("POST /append", co.handleAppend)
	mux.HandleFunc("GET /analytics/degree", co.handleAnalyticsDegree)
	mux.HandleFunc("GET /analytics/components", co.handleAnalyticsComponents)
	mux.HandleFunc("GET /analytics/evolution", co.handleAnalyticsEvolution)
	mux.HandleFunc("POST /analytics/pagerank", co.handleAnalyticsPageRank)
	mux.HandleFunc("GET /analytics/jobs/{id}", co.handleAnalyticsJob)
	mux.HandleFunc("POST /admin/reshard", co.handleReshard)
	mux.HandleFunc("GET /admin/reshard", co.handleReshardStatus)
	mux.HandleFunc("GET /stats", co.handleStats)
	mux.HandleFunc("GET /healthz", co.handleHealthz)
	mux.HandleFunc("GET /readyz", co.handleReadyz)
	mux.Handle("GET /metrics", reg.Handler())
	co.mux = mux
	co.ins = server.NewInstrumentation(reg, coordinatorEndpoints, cfg.SlowQueryThreshold)
	if cfg.HealthInterval > 0 {
		co.healthDone = make(chan struct{})
		go co.healthLoop(cfg.HealthInterval)
	}
	return co, nil
}

// memberGauges holds the per-member gauge families so partitions joining
// at reshard time register under the same names.
type memberGauges struct {
	lat, healthy, insync, applied *metrics.GaugeVec
}

// registerMemberGauges creates the gauge families exposing the
// coordinator's live routing view of every replica-set member: the
// latency EWMA reads are ordered by, plus the healthy/in-sync flags and
// the last known applied WAL sequence.
func (co *Coordinator) registerMemberGauges(reg *metrics.Registry) {
	co.mg = memberGauges{
		lat:     reg.GaugeVec("dg_shard_member_latency_seconds", "Answered-read latency EWMA per replica-set member (0 = unsampled).", "partition", "member"),
		healthy: reg.GaugeVec("dg_shard_member_healthy", "1 when the member's last contact attempt succeeded.", "partition", "member"),
		insync:  reg.GaugeVec("dg_shard_member_insync", "1 when the member is within MaxLag of the replication head.", "partition", "member"),
		applied: reg.GaugeVec("dg_shard_member_applied_seq", "Last known applied WAL sequence per member.", "partition", "member"),
	}
}

// registerSetGauges binds one partition's members to the member gauge
// families. Called at construction and again for every set a reshard
// adds; a retired partition's series keep reporting its last members
// until the process restarts (series are never unregistered).
func (co *Coordinator) registerSetGauges(p int, rs *replicaSet) {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	ps := strconv.Itoa(p)
	for _, m := range rs.members {
		m := m
		co.mg.lat.Func(func() float64 { return float64(m.ewma.Load()) / float64(time.Second) }, ps, m.url)
		co.mg.healthy.Func(func() float64 { return b2f(m.healthy.Load()) }, ps, m.url)
		co.mg.insync.Func(func() float64 { return b2f(m.insync.Load()) }, ps, m.url)
		co.mg.applied.Func(func() float64 { return float64(m.applied.Load()) }, ps, m.url)
	}
}

// NumPartitions returns the number of partitions.
func (co *Coordinator) NumPartitions() int { return len(co.rt().sets) }

// Epoch returns the installed routing-table epoch.
func (co *Coordinator) Epoch() uint64 { return co.rt().epoch() }

// Fanouts reports how many scatter-gathers actually executed (tests
// assert coordinator-level coalescing and cache hits against this).
func (co *Coordinator) Fanouts() int64 { return co.fanouts.Value() }

// Encodes reports how many response-body encodes the coordinator's
// cacheable data plane executed. A merged-response cache hit writes the
// stored bytes without encoding, so tests assert hits leave this counter
// untouched.
func (co *Coordinator) Encodes() int64 { return co.encodes.Value() }

// Failovers reports how many primary promotions the coordinator ran.
func (co *Coordinator) Failovers() int64 { return co.failovers.Value() }

// Metrics returns the coordinator's metrics registry.
func (co *Coordinator) Metrics() *metrics.Registry { return co.reg }

// Primary returns the current primary base URL of partition p.
func (co *Coordinator) Primary(p int) string { return co.rt().sets[p].primaryMember().url }

// Members returns partition p's member base URLs in declaration order.
func (co *Coordinator) Members(p int) []string { return co.rt().sets[p].urls() }

// Close stops the background health checker. In-flight requests finish
// normally; the coordinator itself remains usable.
func (co *Coordinator) Close() {
	co.closeOnce.Do(func() {
		close(co.stop)
		if co.healthDone != nil {
			<-co.healthDone
		}
	})
}

// Handler returns the coordinator's HTTP handler, wrapped in the request
// instrumentation middleware (latency histograms, status counters,
// X-Request-ID threading — the same middleware the workers run, so one
// logical request carries one ID across every hop).
func (co *Coordinator) Handler() http.Handler {
	return co.ins.Wrap(co.mux)
}

// allFailedError is a total fan-out failure plus the response status it
// should surface with; it crosses the flight-group boundary as an error.
type allFailedError struct {
	status int
	msg    string
}

func (e *allFailedError) Error() string { return e.msg }

// allFailed converts a total fan-out failure into one error. The status
// is 502 when any partition failed at the transport level or with a 5xx
// — the cluster is at fault; when every partition answered with a 4xx,
// the request itself was bad and the first rejection's status propagates
// (retrying a deliberately rejected request elsewhere can never succeed,
// so it must not look like a gateway fault).
func (co *Coordinator) allFailed(errs []server.PartitionError) *allFailedError {
	status := errs[0].Status
	for _, pe := range errs {
		if pe.Status < 400 || pe.Status >= 500 {
			status = http.StatusBadGateway
			break
		}
	}
	return &allFailedError{
		status: status,
		msg:    fmt.Sprintf("shard: all %d partitions failed (partition %d: %s)", len(errs), errs[0].Partition, errs[0].Error),
	}
}

// writeAllFailed answers a request whose every partition leg failed.
func writeAllFailed(w http.ResponseWriter, err error) {
	status := http.StatusBadGateway
	var fe *allFailedError
	if errors.As(err, &fe) {
		status = fe.status
	}
	server.WriteError(w, status, err)
}

// cacheGen snapshots the merged-response cache generation (0 when the
// cache is disabled).
func (co *Coordinator) cacheGen() int64 {
	if co.cache == nil {
		return 0
	}
	return co.cache.Gen()
}

// flightMerge is what a fan-out flight hands every caller waiting on it:
// the merged response plus the cache bookkeeping the leader snapshotted.
type flightMerge struct {
	v        any
	gen      int64
	complete bool // every partition answered — cacheable
}

// cacheKey appends the encoding dimension to a flight key: the cache
// stores encoded bodies, so the same merged response occupies one entry
// per encoding it was actually served in (codec names plus "stream" for
// chunked stream bodies).
func cacheKey(key string, name string) string {
	return key + "|" + name
}

// writeCached serves a merged-response cache hit: one Write of the stored
// pre-encoded body — no fan-out, no merge, and no encode work at all.
func (co *Coordinator) writeCached(w http.ResponseWriter, codec wire.Codec, key string) bool {
	if co.cache == nil {
		return false
	}
	body, contentType, ok := co.cache.Get(cacheKey(key, codec.Name()))
	if !ok {
		return false
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	return true
}

// encode serializes one response body via codec, counting the execution
// (the zero-encode cache-hit guarantee is asserted against this counter).
func (co *Coordinator) encode(codec wire.Codec, v any) ([]byte, error) {
	co.encodes.Inc()
	return codec.Encode(v)
}

// writeMerged writes a merged response and, when cacheable, registers the
// exact bytes (or, for responses whose hit form differs — the Cached flag
// flips on — a re-encoded cached variant) under the codec-scoped key.
// cachedVariant may equal v.
func (co *Coordinator) writeMerged(w http.ResponseWriter, codec wire.Codec, v any, cachedVariant any, key string, maxT historygraph.Time, gen int64, cacheable bool) {
	body, err := co.encode(codec, v)
	if err != nil {
		// The negotiated codec cannot encode this body; fall back to JSON
		// (and do not cache — the stored content type would lie).
		server.WriteJSON(w, http.StatusOK, v)
		return
	}
	w.Header().Set("Content-Type", codec.ContentType())
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	if !cacheable || co.cache == nil {
		return
	}
	cachedBody := body
	if cachedVariant != nil {
		if cachedBody, err = co.encode(codec, cachedVariant); err != nil {
			return
		}
	}
	co.cache.Insert(cacheKey(key, codec.Name()), maxT, cachedBody, codec.ContentType(), gen)
}

func (co *Coordinator) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, err := server.ParseTimeParam(q.Get("t"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := server.BoolParam(q.Get("full"))
	key := fmt.Sprintf("snap|%d|%s|%t", t, attrs, full)
	server.Annotate(r.Context(), "partitions", strconv.Itoa(co.NumPartitions()))
	if full && wire.WantsStream(r.Header.Get("Accept")) {
		// Chunked stream: the scatter legs are consumed run by run and
		// merged incrementally — coordinator memory stays proportional to
		// run size × partitions, not to the snapshot.
		co.streamSnapshot(w, r, t, attrs, key)
		return
	}
	codec := wire.Negotiate(r.Header.Get("Accept"))
	if co.writeCached(w, codec, key) {
		server.Annotate(r.Context(), "cache", "merged-hit")
		return // pre-encoded hit: zero fan-out, zero encode
	}
	// The fan-out is detached from this request's cancellation (but keeps
	// its request ID): the flight may be shared with coalesced waiters
	// whose clients are still listening, so one leader disconnecting must
	// not kill everyone's merge. A lone abandoned fan-out still ends at
	// the partition timeout.
	parent := context.WithoutCancel(r.Context())
	v, shared, err := co.flights.Do(key, func() (any, error) {
		co.fanouts.Inc()
		gen := co.cacheGen()
		parts, errs, rt := scatterRead(co, parent, func(ctx reqCtx, cl *server.Client) (*server.SnapshotJSON, error) {
			return cl.SnapshotCtx(ctx, t, attrs, full)
		})
		if len(errs) == len(rt.sets) {
			return nil, co.allFailed(errs)
		}
		co.notePartial(errs, len(rt.sets))
		return flightMerge{v: mergeSnapshots(int64(t), parts, errs), gen: gen, complete: len(errs) == 0}, nil
	})
	if err != nil {
		writeAllFailed(w, err)
		return
	}
	fm := v.(flightMerge)
	out := fm.v.(server.SnapshotJSON)
	if shared {
		// Waiters serve the shared merge but leave caching to the leader.
		server.Annotate(r.Context(), "cache", "coalesced")
		out.Coalesced = true
		server.WriteWire(w, r, http.StatusOK, out)
		return
	}
	server.Annotate(r.Context(), "cache", "miss")
	// A later hit answers exactly like a worker-cache hit: Cached flips on.
	cached := out
	cached.Cached, cached.Coalesced = true, false
	co.writeMerged(w, codec, out, cached, key, t, fm.gen, fm.complete)
}

func (co *Coordinator) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, err := server.ParseTimeParam(q.Get("t"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	nodeRaw := q.Get("node")
	node, err := strconv.ParseInt(nodeRaw, 10, 64)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad node %q", nodeRaw))
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// A node's incident edges are scattered across partitions (each edge
	// lives with its From endpoint), so the neighborhood is the union of
	// every partition's local adjacency.
	codec := wire.Negotiate(r.Header.Get("Accept"))
	key := fmt.Sprintf("nbr|%d|%d|%s", t, node, attrs)
	server.Annotate(r.Context(), "partitions", strconv.Itoa(co.NumPartitions()))
	if co.writeCached(w, codec, key) {
		server.Annotate(r.Context(), "cache", "merged-hit")
		return
	}
	parent := context.WithoutCancel(r.Context())
	v, shared, err := co.flights.Do(key, func() (any, error) {
		co.fanouts.Inc()
		gen := co.cacheGen()
		parts, errs, rt := scatterRead(co, parent, func(ctx reqCtx, cl *server.Client) (*server.NeighborsJSON, error) {
			return cl.NeighborsCtx(ctx, t, historygraph.NodeID(node), attrs)
		})
		if len(errs) == len(rt.sets) {
			return nil, co.allFailed(errs)
		}
		co.notePartial(errs, len(rt.sets))
		return flightMerge{v: mergeNeighbors(int64(t), node, parts, errs), gen: gen, complete: len(errs) == 0}, nil
	})
	if err != nil {
		writeAllFailed(w, err)
		return
	}
	fm := v.(flightMerge)
	out := fm.v.(server.NeighborsJSON)
	if shared {
		server.Annotate(r.Context(), "cache", "coalesced")
		server.WriteWire(w, r, http.StatusOK, out)
		return
	}
	server.Annotate(r.Context(), "cache", "miss")
	cached := out
	cached.Cached = true
	co.writeMerged(w, codec, out, cached, key, t, fm.gen, fm.complete)
}

func (co *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var times []historygraph.Time
	maxT := historygraph.Time(0)
	for _, part := range strings.Split(q.Get("t"), ",") {
		t, err := server.ParseTimeParam(strings.TrimSpace(part))
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, err)
			return
		}
		times = append(times, t)
		if t > maxT {
			maxT = t
		}
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := server.BoolParam(q.Get("full"))
	codec := wire.Negotiate(r.Header.Get("Accept"))
	key := fmt.Sprintf("batch|%s|%s|%t", q.Get("t"), attrs, full)
	if co.writeCached(w, codec, key) {
		server.Annotate(r.Context(), "cache", "merged-hit")
		return
	}
	server.Annotate(r.Context(), "cache", "miss")
	gen := co.cacheGen()
	co.fanouts.Inc()
	// Direct paths (no flight sharing) propagate the client's own
	// cancellation: a closed connection cancels every leg immediately.
	parts, errs, rt := scatterRead(co, r.Context(), func(ctx reqCtx, cl *server.Client) ([]server.SnapshotJSON, error) {
		batch, err := cl.SnapshotsCtx(ctx, times, attrs, full)
		if err != nil {
			return nil, err
		}
		if len(batch) != len(times) {
			return nil, fmt.Errorf("partition answered %d snapshots for %d timepoints", len(batch), len(times))
		}
		return batch, nil
	})
	if len(errs) == len(rt.sets) {
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	co.notePartial(errs, len(rt.sets))
	out := make([]server.SnapshotJSON, len(times))
	for i, t := range times {
		slice := make([]*server.SnapshotJSON, len(parts))
		for p, batch := range parts {
			if batch != nil {
				slice[p] = &batch[i]
			}
		}
		out[i] = mergeSnapshots(int64(t), slice, errs)
	}
	// Batch hits replay the stored body as-is (no Cached flip), so the
	// served bytes and the cached bytes are one and the same encode.
	co.writeMerged(w, codec, out, nil, key, maxT, gen, len(errs) == 0)
}

func (co *Coordinator) handleInterval(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err1 := server.ParseTimeParam(q.Get("from"))
	to, err2 := server.ParseTimeParam(q.Get("to"))
	if err1 != nil || err2 != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("interval wants numeric from/to"))
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := server.BoolParam(q.Get("full"))
	parts, errs, rt := scatterRead(co, r.Context(), func(ctx reqCtx, cl *server.Client) (*server.IntervalJSON, error) {
		return cl.IntervalCtx(ctx, from, to, attrs, full)
	})
	if len(errs) == len(rt.sets) {
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	co.notePartial(errs, len(rt.sets))
	server.WriteWire(w, r, http.StatusOK, mergeIntervals(parts, errs))
}

func (co *Coordinator) handleExpr(w http.ResponseWriter, r *http.Request) {
	var req server.ExprRequest
	if err := server.ReadBody(r, &req); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad expr body: %w", err))
		return
	}
	if _, err := server.ParseTimeExpr(req.Expr, len(req.Times)); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// A TimeExpression decides membership element by element, and every
	// element's history is confined to one partition — so evaluating the
	// expression per partition and unioning is exact.
	parts, errs, rt := scatterRead(co, r.Context(), func(ctx reqCtx, cl *server.Client) (*server.SnapshotJSON, error) {
		return cl.ExprCtx(ctx, req)
	})
	if len(errs) == len(rt.sets) {
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	co.notePartial(errs, len(rt.sets))
	server.WriteWire(w, r, http.StatusOK, mergeSnapshots(0, parts, errs))
}

func (co *Coordinator) handleAppend(w http.ResponseWriter, r *http.Request) {
	if server.BoolParam(r.URL.Query().Get("stream")) {
		co.handleAppendStream(w, r)
		return
	}
	var body []server.EventJSON
	if err := server.ReadBody(r, &body); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad append body: %w", err))
		return
	}
	events := make(historygraph.EventList, 0, len(body))
	minAt := historygraph.Time(0)
	for i, ej := range body {
		ev, err := server.EventFromJSON(ej)
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, err)
			return
		}
		// Reject before anything is scattered: an unroutable edge event
		// would land on the wrong partition and silently diverge the
		// cluster from its event history (see Routable).
		if err := Routable(ev); err != nil {
			server.WriteError(w, http.StatusUnprocessableEntity, fmt.Errorf("event %d: %w", i, err))
			return
		}
		events = append(events, ev)
		if i == 0 || ev.At < minAt {
			minAt = ev.At
		}
	}
	// The append gate is held shared across the split and the scatter: a
	// reshard cutover takes it exclusively, so the routing captured here
	// stays installed for the whole append and the cutover's head freeze
	// sees every in-flight batch durable.
	co.appendGate.RLock()
	defer co.appendGate.RUnlock()
	rt := co.rt()
	perPart := make([]historygraph.EventList, len(rt.sets))
	for _, ev := range events {
		p := rt.table.Partition(ev)
		perPart[p] = append(perPart[p], ev)
	}
	// Every partition's primary gets its slice (possibly empty — an empty
	// append still reports the worker's last_time, keeping the merged
	// clock exact). A dead primary triggers failover inside the scatter
	// call. Batch IDs are minted up front so a leg fenced with 410 can be
	// re-split and resent under the SAME ID — a fenced leg logged nothing
	// locally, and any events the migration already copied to the new
	// owner registered the ID there, so the resend dedupes instead of
	// double-applying. Appends detach from the client's cancellation:
	// aborting half-landed slices on a disconnect would leave the
	// partitions inconsistent with no response to report the split.
	server.Annotate(r.Context(), "partitions", strconv.Itoa(len(rt.sets)))
	ids := make([]string, len(rt.sets))
	for i := range ids {
		ids[i] = newBatchID()
	}
	detached := context.WithoutCancel(r.Context())
	parts, errs := scatter(co, rt, detached, func(ctx reqCtx, rs *replicaSet) (*server.AppendResult, error) {
		return co.appendBatchToSet(ctx, rs, perPart[ctx.part], ids[ctx.part])
	})
	if staleEpoch(errs) {
		parts, errs = co.retryGoneAppends(detached, rt, parts, errs, perPart, ids)
	}
	// Invalidate merged responses even on partial failure: some
	// partitions' slices landed, so any cached merge depending on a
	// timepoint >= minAt is stale.
	if co.cache != nil && len(body) > 0 {
		co.cache.InvalidateFrom(minAt)
	}
	if len(errs) > 0 && len(errs) == len(rt.sets) {
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	co.notePartial(errs, len(rt.sets))
	out := server.AppendResult{Partial: errs}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Appended += p.Appended
		out.Invalidated += p.Invalidated
		// A retried batch resumes on whichever partitions already logged
		// it; surfacing the flag tells the client its retry was absorbed.
		out.Deduped = out.Deduped || p.Deduped
		if p.LastTime > out.LastTime {
			out.LastTime = p.LastTime
		}
	}
	server.WriteWire(w, r, http.StatusOK, out)
}

// retryGoneAppends re-routes the 410-fenced legs of an append scatter: a
// fenced leg was planned against a routing table the workers have moved
// past (a cutover driven outside this coordinator's append gate — an
// operator slot push or another coordinator's reshard). Each fenced
// leg's events are re-split under the freshly installed table and resent
// under the leg's ORIGINAL batch ID: the fenced leg logged nothing, and
// any of its events the migration already copied to a new owner
// registered the ID there, so the resend dedupes instead of
// double-applying. One round only — a leg fenced again surfaces as an
// error.
func (co *Coordinator) retryGoneAppends(parent context.Context, old *routing, parts []*server.AppendResult, errs []server.PartitionError, perPart []historygraph.EventList, ids []string) ([]*server.AppendResult, []server.PartitionError) {
	fresh := co.rt()
	if fresh.epoch() == old.epoch() {
		// Nothing newer installed here: the workers are ahead of this
		// coordinator (see the OPERATIONS.md note on coordinator restarts)
		// and the fence has to stand.
		return parts, errs
	}
	co.reroutes.Inc()
	var kept []server.PartitionError
	for _, pe := range errs {
		if pe.Status != http.StatusGone {
			kept = append(kept, pe)
			continue
		}
		resplit := make([]historygraph.EventList, len(fresh.sets))
		for _, ev := range perPart[pe.Partition] {
			np := fresh.table.Partition(ev)
			resplit[np] = append(resplit[np], ev)
		}
		agg := &server.AppendResult{}
		var ferr error
		for np, slice := range resplit {
			if len(slice) == 0 {
				continue
			}
			res, err := co.sendAppendLeg(parent, fresh, np, slice, ids[pe.Partition])
			if err != nil {
				ferr = fmt.Errorf("rerouted to partition %d: %w", np, err)
				break
			}
			agg.Appended += res.Appended
			agg.Invalidated += res.Invalidated
			agg.Deduped = agg.Deduped || res.Deduped
			if res.LastTime > agg.LastTime {
				agg.LastTime = res.LastTime
			}
		}
		if ferr != nil {
			pe.Error = ferr.Error()
			pe.Status = 0
			var he *server.HTTPError
			if errors.As(ferr, &he) {
				pe.Status = he.Status
			}
			kept = append(kept, pe)
			continue
		}
		parts[pe.Partition] = agg
	}
	return parts, kept
}

// sendAppendLeg sends one re-routed append slice to partition np of rt,
// stamped with rt's epoch and bounded by the partition timeout.
func (co *Coordinator) sendAppendLeg(parent context.Context, rt *routing, np int, events historygraph.EventList, batch string) (*server.AppendResult, error) {
	ctx, cancel := context.WithTimeout(parent, co.timeout)
	defer cancel()
	return co.appendBatchToSet(server.WithEpoch(ctx, rt.epoch()), rt.sets[np], events, batch)
}

// PartitionStatsJSON is one partition's section of the coordinator's
// /stats answer. URL is the current primary; Replicas lists every member.
type PartitionStatsJSON struct {
	Partition int               `json:"partition"`
	URL       string            `json:"url"`
	Replicas  []ReplicaInfoJSON `json:"replicas,omitempty"`
	Error     string            `json:"error,omitempty"`
	Stats     *server.StatsJSON `json:"stats,omitempty"`
}

// ReplicaInfoJSON is the coordinator's routing view of one replica-set
// member.
type ReplicaInfoJSON struct {
	URL     string `json:"url"`
	Primary bool   `json:"primary,omitempty"`
	Healthy bool   `json:"healthy"`
	InSync  bool   `json:"in_sync"`
	Applied uint64 `json:"applied,omitempty"`
}

// CoCacheStatsJSON is the merged-response cache section of /stats.
type CoCacheStatsJSON struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// StatsJSON answers the coordinator's GET /stats: fan-out counters plus
// every partition's own stats.
type StatsJSON struct {
	Partitions       int                  `json:"partitions"`
	Epoch            uint64               `json:"epoch"`
	Requests         int64                `json:"requests"`
	Fanouts          int64                `json:"fanouts"`
	Coalesced        int64                `json:"coalesced"`
	PartialResponses int64                `json:"partial_responses"`
	Failovers        int64                `json:"failovers"`
	Reshards         int64                `json:"reshards"`
	Reroutes         int64                `json:"reroutes"`
	Cache            *CoCacheStatsJSON    `json:"cache,omitempty"`
	PerPartition     []PartitionStatsJSON `json:"per_partition"`
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	// Stats come from each partition's current primary, not the read
	// round-robin: PartitionStatsJSON.URL names the primary, and rotating
	// the source would misattribute follower counters to it (and make
	// totals jump backwards between polls).
	rt := co.rt()
	parts, errs := scatter(co, rt, r.Context(), func(ctx reqCtx, rs *replicaSet) (*server.StatsJSON, error) {
		return rs.primaryMember().client.StatsCtx(ctx)
	})
	// The counters are read from the metrics registry — the same
	// collectors GET /metrics renders — so the two surfaces cannot drift.
	out := StatsJSON{
		Partitions:       len(rt.sets),
		Epoch:            rt.epoch(),
		Requests:         co.ins.Requests(),
		Fanouts:          co.fanouts.Value(),
		Coalesced:        co.flights.Hits.Value(),
		PartialResponses: co.partials.Value(),
		Failovers:        co.failovers.Value(),
		Reshards:         co.reshards.Value(),
		Reroutes:         co.reroutes.Value(),
	}
	if co.cache != nil {
		out.Cache = &CoCacheStatsJSON{
			Hits:      co.cache.counters.hits.Value(),
			Misses:    co.cache.counters.misses.Value(),
			Evictions: co.cache.counters.evictions.Value(),
			Size:      co.cache.Len(),
			Capacity:  co.cache.capacity,
		}
	}
	failed := make(map[int]string, len(errs))
	for _, pe := range errs {
		failed[pe.Partition] = pe.Error
	}
	for p, rs := range rt.sets {
		ps := PartitionStatsJSON{Partition: p, URL: rs.primaryMember().url, Stats: parts[p]}
		ps.Error = failed[p]
		if len(rs.members) > 1 {
			pm := rs.primaryMember()
			for _, m := range rs.members {
				ps.Replicas = append(ps.Replicas, ReplicaInfoJSON{
					URL: m.url, Primary: m == pm,
					Healthy: m.healthy.Load(), InSync: m.insync.Load(),
					Applied: m.applied.Load(),
				})
			}
		}
		out.PerPartition = append(out.PerPartition, ps)
	}
	server.WriteJSON(w, http.StatusOK, out)
}

// handleHealthz is pure liveness: the coordinator process is up and
// serving. Cluster state (dead members, lagging replicas) is /readyz's
// job — conflating the two made orchestrators restart a healthy
// coordinator because a worker box died.
func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, map[string]any{"status": "ok", "partitions": co.NumPartitions()})
}

// handleReadyz probes every member of every set — a partition with one
// live replica still serves reads, but a dead or catching-up member
// means lost redundancy and must surface as degraded, not hide behind
// the read retry. Members are probed on their own /readyz, so a replica
// node that is up but still replaying its WAL (or lagging its primary)
// counts as not ready here too.
func (co *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rt := co.rt()
	var mu sync.Mutex
	var errs []server.PartitionError
	var wg sync.WaitGroup
	for p, rs := range rt.sets {
		for _, m := range rs.members {
			wg.Add(1)
			go func(p int, m *member) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), co.timeout)
				defer cancel()
				if err := m.client.ReadyCtx(ctx); err != nil {
					mu.Lock()
					errs = append(errs, server.PartitionError{Partition: p, Error: m.url + ": " + err.Error()})
					mu.Unlock()
				}
			}(p, m)
		}
	}
	wg.Wait()
	if len(errs) == 0 {
		server.WriteJSON(w, http.StatusOK, map[string]any{"status": "ready", "partitions": len(rt.sets)})
		return
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].Partition < errs[b].Partition })
	server.WriteJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status": "degraded", "partitions": len(rt.sets), "partial": errs,
	})
}
