// The Coordinator type and its endpoint handlers (package overview in
// doc.go).
package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// DefaultPartitionTimeout bounds each fan-out leg when Config leaves
// PartitionTimeout zero.
const DefaultPartitionTimeout = 15 * time.Second

// DefaultCacheSize is the merged-response LRU capacity when Config leaves
// CacheSize zero.
const DefaultCacheSize = 64

// DefaultMaxLag is how many WAL records behind the replication head a
// member may be and still serve reads, when Config leaves MaxLag zero.
const DefaultMaxLag = 1024

// Config tunes the coordinator.
type Config struct {
	// PartitionTimeout bounds every fan-out leg; a partition whose
	// replicas do not answer in time is dropped from the merge and
	// reported in the response's partial list. 0 picks
	// DefaultPartitionTimeout.
	PartitionTimeout time.Duration
	// CacheSize is the merged-response LRU capacity. 0 picks the default
	// (64); negative disables the coordinator cache.
	CacheSize int
	// CacheTTL bounds the age of a merged-response cache entry. Appends
	// routed through this coordinator invalidate the cache exactly, but an
	// append sent directly to a partition primary (which the replica
	// /append endpoint accepts) bypasses that invalidation — deployments
	// that cannot guarantee every write flows through the coordinator
	// should set a TTL. 0 keeps entries until invalidation or LRU
	// eviction.
	CacheTTL time.Duration
	// HealthInterval is the period of the background replica health
	// checker (marks members up/down and in-/out-of-sync, and promotes a
	// follower when a primary stays dark). 0 disables it; failover still
	// happens on demand when an append hits a dead primary.
	HealthInterval time.Duration
	// MaxLag is the in-sync read threshold in WAL records. 0 picks
	// DefaultMaxLag.
	MaxLag uint64
	// HTTPClient overrides the pooled transport used for fan-out
	// requests (tests inject clients wired to in-process servers).
	HTTPClient *http.Client
	// Wire selects the codec the coordinator's scatter legs use when
	// talking to partition workers: "json" (the default) or "binary".
	// Binary legs skip the per-element JSON encode on every worker and the
	// matching decode on the coordinator; the merge operates on the decoded
	// structs either way, so external responses are byte-identical
	// whichever leg codec is picked. Streamed full-snapshot requests
	// (Accept: application/x-deltagraph-bin-stream) always use streaming
	// scatter legs regardless of this setting.
	Wire string
	// StreamRun is how many elements one merged stream frame carries on
	// the streaming /snapshot path; coordinator peak memory under
	// concurrent large snapshots is proportional to it (times the
	// partition count). 0 picks wire.DefaultRunSize.
	StreamRun int
	// StreamTimeout bounds the total delivery of one merged stream.
	// PartitionTimeout cannot play that role: leg reads are
	// back-pressured by the client draining the merged output, so a
	// large snapshot or a slow reader legitimately holds legs open far
	// longer than any worker-responsiveness bound — only the stream
	// *open* (including replica retries) is held to PartitionTimeout.
	// This cap exists so a wedged worker or abandoned client cannot pin
	// legs forever. 0 picks 20 x PartitionTimeout (5 minutes at the
	// defaults).
	StreamTimeout time.Duration
}

// Coordinator scatters queries across partition replica sets and gathers
// the partial answers. It is safe for concurrent use.
type Coordinator struct {
	sets      []*replicaSet
	hc        *http.Client
	timeout   time.Duration
	streamCap time.Duration // total merged-stream delivery bound
	maxLag    uint64
	runSize   int // elements per merged stream frame
	mux       *http.ServeMux
	flights   server.FlightGroup
	cache     *coCache // nil when disabled

	stop       chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once

	requests  atomic.Int64
	fanouts   atomic.Int64 // scatter-gather executions
	coalesced atomic.Int64 // requests served by another caller's fan-out
	partials  atomic.Int64 // responses missing >= 1 partition
	failovers atomic.Int64 // primary promotions
	encodes   atomic.Int64 // response-body encode executions (cache hits do none)
}

// New builds a coordinator over the given partition peer specs. The slice
// order defines partition IDs and must match the hash space the workers'
// event slices were split by (PartitionEvents with n = len(peerURLs)).
// Each spec is either one base URL (an unreplicated partition) or a
// "|"-separated replica set, first member the initial primary:
//
//	http://h1:8186|http://h2:8186,http://h1:8187|http://h2:8187
func New(peerURLs []string, cfg Config) (*Coordinator, error) {
	sets := make([][]string, 0, len(peerURLs))
	for _, spec := range peerURLs {
		var members []string
		for _, u := range strings.Split(spec, "|") {
			if u = strings.TrimSpace(u); u != "" {
				members = append(members, u)
			}
		}
		sets = append(sets, members)
	}
	return NewReplicated(sets, cfg)
}

// NewReplicated is New with the replica sets already split out: one inner
// slice per partition, first member the initial primary.
func NewReplicated(peerSets [][]string, cfg Config) (*Coordinator, error) {
	if len(peerSets) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one partition")
	}
	total := 0
	for _, set := range peerSets {
		total += len(set)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * total,
			MaxIdleConnsPerHost: 4,
		}}
	}
	timeout := cfg.PartitionTimeout
	if timeout <= 0 {
		timeout = DefaultPartitionTimeout
	}
	maxLag := cfg.MaxLag
	if maxLag == 0 {
		maxLag = DefaultMaxLag
	}
	legWire, err := wire.ByName(cfg.Wire)
	if err != nil {
		return nil, err
	}
	runSize := cfg.StreamRun
	if runSize <= 0 {
		runSize = wire.DefaultRunSize
	}
	streamCap := cfg.StreamTimeout
	if streamCap <= 0 {
		streamCap = 20 * timeout
	}
	co := &Coordinator{
		hc: hc, timeout: timeout, streamCap: streamCap, maxLag: maxLag, runSize: runSize,
		stop: make(chan struct{}),
	}
	for p, set := range peerSets {
		if len(set) == 0 {
			return nil, fmt.Errorf("shard: partition %d has no members", p)
		}
		co.sets = append(co.sets, newReplicaSet(set, hc, legWire.Name()))
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	if size > 0 {
		co.cache = newCoCache(size, cfg.CacheTTL)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snapshot", co.handleSnapshot)
	mux.HandleFunc("GET /neighbors", co.handleNeighbors)
	mux.HandleFunc("GET /batch", co.handleBatch)
	mux.HandleFunc("GET /interval", co.handleInterval)
	mux.HandleFunc("POST /expr", co.handleExpr)
	mux.HandleFunc("POST /append", co.handleAppend)
	mux.HandleFunc("GET /stats", co.handleStats)
	mux.HandleFunc("GET /healthz", co.handleHealthz)
	co.mux = mux
	if cfg.HealthInterval > 0 {
		co.healthDone = make(chan struct{})
		go co.healthLoop(cfg.HealthInterval)
	}
	return co, nil
}

// NumPartitions returns the number of partitions.
func (co *Coordinator) NumPartitions() int { return len(co.sets) }

// Fanouts reports how many scatter-gathers actually executed (tests
// assert coordinator-level coalescing and cache hits against this).
func (co *Coordinator) Fanouts() int64 { return co.fanouts.Load() }

// Encodes reports how many response-body encodes the coordinator's
// cacheable data plane executed. A merged-response cache hit writes the
// stored bytes without encoding, so tests assert hits leave this counter
// untouched.
func (co *Coordinator) Encodes() int64 { return co.encodes.Load() }

// Failovers reports how many primary promotions the coordinator ran.
func (co *Coordinator) Failovers() int64 { return co.failovers.Load() }

// Primary returns the current primary base URL of partition p.
func (co *Coordinator) Primary(p int) string { return co.sets[p].primaryMember().url }

// Members returns partition p's member base URLs in declaration order.
func (co *Coordinator) Members(p int) []string { return co.sets[p].urls() }

// Close stops the background health checker. In-flight requests finish
// normally; the coordinator itself remains usable.
func (co *Coordinator) Close() {
	co.closeOnce.Do(func() {
		close(co.stop)
		if co.healthDone != nil {
			<-co.healthDone
		}
	})
}

// Handler returns the coordinator's HTTP handler.
func (co *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		co.requests.Add(1)
		co.mux.ServeHTTP(w, r)
	})
}

// allFailedError is a total fan-out failure plus the response status it
// should surface with; it crosses the flight-group boundary as an error.
type allFailedError struct {
	status int
	msg    string
}

func (e *allFailedError) Error() string { return e.msg }

// allFailed converts a total fan-out failure into one error. The status
// is 502 when any partition failed at the transport level or with a 5xx
// — the cluster is at fault; when every partition answered with a 4xx,
// the request itself was bad and the first rejection's status propagates
// (retrying a deliberately rejected request elsewhere can never succeed,
// so it must not look like a gateway fault).
func (co *Coordinator) allFailed(errs []server.PartitionError) *allFailedError {
	status := errs[0].Status
	for _, pe := range errs {
		if pe.Status < 400 || pe.Status >= 500 {
			status = http.StatusBadGateway
			break
		}
	}
	return &allFailedError{
		status: status,
		msg:    fmt.Sprintf("shard: all %d partitions failed (partition 0: %s)", len(co.sets), errs[0].Error),
	}
}

// writeAllFailed answers a request whose every partition leg failed.
func writeAllFailed(w http.ResponseWriter, err error) {
	status := http.StatusBadGateway
	var fe *allFailedError
	if errors.As(err, &fe) {
		status = fe.status
	}
	server.WriteError(w, status, err)
}

// cacheGen snapshots the merged-response cache generation (0 when the
// cache is disabled).
func (co *Coordinator) cacheGen() int64 {
	if co.cache == nil {
		return 0
	}
	return co.cache.Gen()
}

// flightMerge is what a fan-out flight hands every caller waiting on it:
// the merged response plus the cache bookkeeping the leader snapshotted.
type flightMerge struct {
	v        any
	gen      int64
	complete bool // every partition answered — cacheable
}

// cacheKey appends the encoding dimension to a flight key: the cache
// stores encoded bodies, so the same merged response occupies one entry
// per encoding it was actually served in (codec names plus "stream" for
// chunked stream bodies).
func cacheKey(key string, name string) string {
	return key + "|" + name
}

// writeCached serves a merged-response cache hit: one Write of the stored
// pre-encoded body — no fan-out, no merge, and no encode work at all.
func (co *Coordinator) writeCached(w http.ResponseWriter, codec wire.Codec, key string) bool {
	if co.cache == nil {
		return false
	}
	body, contentType, ok := co.cache.Get(cacheKey(key, codec.Name()))
	if !ok {
		return false
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	return true
}

// encode serializes one response body via codec, counting the execution
// (the zero-encode cache-hit guarantee is asserted against this counter).
func (co *Coordinator) encode(codec wire.Codec, v any) ([]byte, error) {
	co.encodes.Add(1)
	return codec.Encode(v)
}

// writeMerged writes a merged response and, when cacheable, registers the
// exact bytes (or, for responses whose hit form differs — the Cached flag
// flips on — a re-encoded cached variant) under the codec-scoped key.
// cachedVariant may equal v.
func (co *Coordinator) writeMerged(w http.ResponseWriter, codec wire.Codec, v any, cachedVariant any, key string, maxT historygraph.Time, gen int64, cacheable bool) {
	body, err := co.encode(codec, v)
	if err != nil {
		// The negotiated codec cannot encode this body; fall back to JSON
		// (and do not cache — the stored content type would lie).
		server.WriteJSON(w, http.StatusOK, v)
		return
	}
	w.Header().Set("Content-Type", codec.ContentType())
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	if !cacheable || co.cache == nil {
		return
	}
	cachedBody := body
	if cachedVariant != nil {
		if cachedBody, err = co.encode(codec, cachedVariant); err != nil {
			return
		}
	}
	co.cache.Insert(cacheKey(key, codec.Name()), maxT, cachedBody, codec.ContentType(), gen)
}

func (co *Coordinator) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, err := server.ParseTimeParam(q.Get("t"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := server.BoolParam(q.Get("full"))
	key := fmt.Sprintf("snap|%d|%s|%t", t, attrs, full)
	if full && wire.WantsStream(r.Header.Get("Accept")) {
		// Chunked stream: the scatter legs are consumed run by run and
		// merged incrementally — coordinator memory stays proportional to
		// run size × partitions, not to the snapshot.
		co.streamSnapshot(w, t, attrs, key)
		return
	}
	codec := wire.Negotiate(r.Header.Get("Accept"))
	if co.writeCached(w, codec, key) {
		return // pre-encoded hit: zero fan-out, zero encode
	}
	v, shared, err := co.flights.Do(key, func() (any, error) {
		co.fanouts.Add(1)
		gen := co.cacheGen()
		parts, errs := scatterRead(co, func(ctx reqCtx, cl *server.Client) (*server.SnapshotJSON, error) {
			return cl.SnapshotCtx(ctx, t, attrs, full)
		})
		if len(errs) == len(co.sets) {
			return nil, co.allFailed(errs)
		}
		co.notePartial(errs)
		return flightMerge{v: mergeSnapshots(int64(t), parts, errs), gen: gen, complete: len(errs) == 0}, nil
	})
	if err != nil {
		writeAllFailed(w, err)
		return
	}
	fm := v.(flightMerge)
	out := fm.v.(server.SnapshotJSON)
	if shared {
		// Waiters serve the shared merge but leave caching to the leader.
		co.coalesced.Add(1)
		out.Coalesced = true
		server.WriteWire(w, r, http.StatusOK, out)
		return
	}
	// A later hit answers exactly like a worker-cache hit: Cached flips on.
	cached := out
	cached.Cached, cached.Coalesced = true, false
	co.writeMerged(w, codec, out, cached, key, t, fm.gen, fm.complete)
}

func (co *Coordinator) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, err := server.ParseTimeParam(q.Get("t"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	nodeRaw := q.Get("node")
	node, err := strconv.ParseInt(nodeRaw, 10, 64)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad node %q", nodeRaw))
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// A node's incident edges are scattered across partitions (each edge
	// lives with its From endpoint), so the neighborhood is the union of
	// every partition's local adjacency.
	codec := wire.Negotiate(r.Header.Get("Accept"))
	key := fmt.Sprintf("nbr|%d|%d|%s", t, node, attrs)
	if co.writeCached(w, codec, key) {
		return
	}
	v, shared, err := co.flights.Do(key, func() (any, error) {
		co.fanouts.Add(1)
		gen := co.cacheGen()
		parts, errs := scatterRead(co, func(ctx reqCtx, cl *server.Client) (*server.NeighborsJSON, error) {
			return cl.NeighborsCtx(ctx, t, historygraph.NodeID(node), attrs)
		})
		if len(errs) == len(co.sets) {
			return nil, co.allFailed(errs)
		}
		co.notePartial(errs)
		return flightMerge{v: mergeNeighbors(int64(t), node, parts, errs), gen: gen, complete: len(errs) == 0}, nil
	})
	if err != nil {
		writeAllFailed(w, err)
		return
	}
	fm := v.(flightMerge)
	out := fm.v.(server.NeighborsJSON)
	if shared {
		co.coalesced.Add(1)
		server.WriteWire(w, r, http.StatusOK, out)
		return
	}
	cached := out
	cached.Cached = true
	co.writeMerged(w, codec, out, cached, key, t, fm.gen, fm.complete)
}

func (co *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var times []historygraph.Time
	maxT := historygraph.Time(0)
	for _, part := range strings.Split(q.Get("t"), ",") {
		t, err := server.ParseTimeParam(strings.TrimSpace(part))
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, err)
			return
		}
		times = append(times, t)
		if t > maxT {
			maxT = t
		}
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := server.BoolParam(q.Get("full"))
	codec := wire.Negotiate(r.Header.Get("Accept"))
	key := fmt.Sprintf("batch|%s|%s|%t", q.Get("t"), attrs, full)
	if co.writeCached(w, codec, key) {
		return
	}
	gen := co.cacheGen()
	co.fanouts.Add(1)
	parts, errs := scatterRead(co, func(ctx reqCtx, cl *server.Client) ([]server.SnapshotJSON, error) {
		batch, err := cl.SnapshotsCtx(ctx, times, attrs, full)
		if err != nil {
			return nil, err
		}
		if len(batch) != len(times) {
			return nil, fmt.Errorf("partition answered %d snapshots for %d timepoints", len(batch), len(times))
		}
		return batch, nil
	})
	if len(errs) == len(co.sets) {
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	co.notePartial(errs)
	out := make([]server.SnapshotJSON, len(times))
	for i, t := range times {
		slice := make([]*server.SnapshotJSON, len(parts))
		for p, batch := range parts {
			if batch != nil {
				slice[p] = &batch[i]
			}
		}
		out[i] = mergeSnapshots(int64(t), slice, errs)
	}
	// Batch hits replay the stored body as-is (no Cached flip), so the
	// served bytes and the cached bytes are one and the same encode.
	co.writeMerged(w, codec, out, nil, key, maxT, gen, len(errs) == 0)
}

func (co *Coordinator) handleInterval(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err1 := server.ParseTimeParam(q.Get("from"))
	to, err2 := server.ParseTimeParam(q.Get("to"))
	if err1 != nil || err2 != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("interval wants numeric from/to"))
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := server.BoolParam(q.Get("full"))
	parts, errs := scatterRead(co, func(ctx reqCtx, cl *server.Client) (*server.IntervalJSON, error) {
		return cl.IntervalCtx(ctx, from, to, attrs, full)
	})
	if len(errs) == len(co.sets) {
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	co.notePartial(errs)
	server.WriteWire(w, r, http.StatusOK, mergeIntervals(parts, errs))
}

func (co *Coordinator) handleExpr(w http.ResponseWriter, r *http.Request) {
	var req server.ExprRequest
	if err := server.ReadBody(r, &req); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad expr body: %w", err))
		return
	}
	if _, err := server.ParseTimeExpr(req.Expr, len(req.Times)); err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// A TimeExpression decides membership element by element, and every
	// element's history is confined to one partition — so evaluating the
	// expression per partition and unioning is exact.
	parts, errs := scatterRead(co, func(ctx reqCtx, cl *server.Client) (*server.SnapshotJSON, error) {
		return cl.ExprCtx(ctx, req)
	})
	if len(errs) == len(co.sets) {
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	co.notePartial(errs)
	server.WriteWire(w, r, http.StatusOK, mergeSnapshots(0, parts, errs))
}

func (co *Coordinator) handleAppend(w http.ResponseWriter, r *http.Request) {
	var body []server.EventJSON
	if err := server.ReadBody(r, &body); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad append body: %w", err))
		return
	}
	perPart := make([]historygraph.EventList, len(co.sets))
	minAt := historygraph.Time(0)
	for i, ej := range body {
		ev, err := server.EventFromJSON(ej)
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, err)
			return
		}
		p := PartitionOf(ev, len(co.sets))
		perPart[p] = append(perPart[p], ev)
		if i == 0 || ev.At < minAt {
			minAt = ev.At
		}
	}
	// Every partition's primary gets its slice (possibly empty — an empty
	// append still reports the worker's last_time, keeping the merged
	// clock exact). A dead primary triggers failover inside appendToSet.
	parts, errs := scatter(co, func(ctx reqCtx, rs *replicaSet) (*server.AppendResult, error) {
		return co.appendToSet(ctx, rs, perPart[ctx.part])
	})
	// Invalidate merged responses even on partial failure: some
	// partitions' slices landed, so any cached merge depending on a
	// timepoint >= minAt is stale.
	if co.cache != nil && len(body) > 0 {
		co.cache.InvalidateFrom(minAt)
	}
	if len(errs) == len(co.sets) {
		writeAllFailed(w, co.allFailed(errs))
		return
	}
	co.notePartial(errs)
	out := server.AppendResult{Partial: errs}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Appended += p.Appended
		out.Invalidated += p.Invalidated
		if p.LastTime > out.LastTime {
			out.LastTime = p.LastTime
		}
	}
	server.WriteWire(w, r, http.StatusOK, out)
}

// PartitionStatsJSON is one partition's section of the coordinator's
// /stats answer. URL is the current primary; Replicas lists every member.
type PartitionStatsJSON struct {
	Partition int               `json:"partition"`
	URL       string            `json:"url"`
	Replicas  []ReplicaInfoJSON `json:"replicas,omitempty"`
	Error     string            `json:"error,omitempty"`
	Stats     *server.StatsJSON `json:"stats,omitempty"`
}

// ReplicaInfoJSON is the coordinator's routing view of one replica-set
// member.
type ReplicaInfoJSON struct {
	URL     string `json:"url"`
	Primary bool   `json:"primary,omitempty"`
	Healthy bool   `json:"healthy"`
	InSync  bool   `json:"in_sync"`
	Applied uint64 `json:"applied,omitempty"`
}

// CoCacheStatsJSON is the merged-response cache section of /stats.
type CoCacheStatsJSON struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// StatsJSON answers the coordinator's GET /stats: fan-out counters plus
// every partition's own stats.
type StatsJSON struct {
	Partitions       int                  `json:"partitions"`
	Requests         int64                `json:"requests"`
	Fanouts          int64                `json:"fanouts"`
	Coalesced        int64                `json:"coalesced"`
	PartialResponses int64                `json:"partial_responses"`
	Failovers        int64                `json:"failovers"`
	Cache            *CoCacheStatsJSON    `json:"cache,omitempty"`
	PerPartition     []PartitionStatsJSON `json:"per_partition"`
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	// Stats come from each partition's current primary, not the read
	// round-robin: PartitionStatsJSON.URL names the primary, and rotating
	// the source would misattribute follower counters to it (and make
	// totals jump backwards between polls).
	parts, errs := scatter(co, func(ctx reqCtx, rs *replicaSet) (*server.StatsJSON, error) {
		return rs.primaryMember().client.StatsCtx(ctx)
	})
	out := StatsJSON{
		Partitions:       len(co.sets),
		Requests:         co.requests.Load(),
		Fanouts:          co.fanouts.Load(),
		Coalesced:        co.coalesced.Load(),
		PartialResponses: co.partials.Load(),
		Failovers:        co.failovers.Load(),
	}
	if co.cache != nil {
		cs := co.cache.Stats()
		out.Cache = &CoCacheStatsJSON{
			Hits: cs.hits, Misses: cs.misses, Evictions: cs.evictions,
			Size: cs.size, Capacity: cs.capacity,
		}
	}
	failed := make(map[int]string, len(errs))
	for _, pe := range errs {
		failed[pe.Partition] = pe.Error
	}
	for p, rs := range co.sets {
		ps := PartitionStatsJSON{Partition: p, URL: rs.primaryMember().url, Stats: parts[p]}
		ps.Error = failed[p]
		if len(rs.members) > 1 {
			pm := rs.primaryMember()
			for _, m := range rs.members {
				ps.Replicas = append(ps.Replicas, ReplicaInfoJSON{
					URL: m.url, Primary: m == pm,
					Healthy: m.healthy.Load(), InSync: m.insync.Load(),
					Applied: m.applied.Load(),
				})
			}
		}
		out.PerPartition = append(out.PerPartition, ps)
	}
	server.WriteJSON(w, http.StatusOK, out)
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Health probes every member of every set — a partition with one live
	// replica still serves reads, but a dead member means lost redundancy
	// and must surface as degraded, not hide behind the read retry.
	var mu sync.Mutex
	var errs []server.PartitionError
	var wg sync.WaitGroup
	for p, rs := range co.sets {
		for _, m := range rs.members {
			wg.Add(1)
			go func(p int, m *member) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), co.timeout)
				defer cancel()
				if err := m.client.HealthCtx(ctx); err != nil {
					mu.Lock()
					errs = append(errs, server.PartitionError{Partition: p, Error: m.url + ": " + err.Error()})
					mu.Unlock()
				}
			}(p, m)
		}
	}
	wg.Wait()
	if len(errs) == 0 {
		server.WriteJSON(w, http.StatusOK, map[string]any{"status": "ok", "partitions": len(co.sets)})
		return
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].Partition < errs[b].Partition })
	server.WriteJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status": "degraded", "partitions": len(co.sets), "partial": errs,
	})
}
