package shard

// A partition served by one process is a single point of loss; a replica
// set makes it survivable. Each partition's peers form one set: member 0
// is the initial primary (appends), and reads spread round-robin across
// every in-sync member. The coordinator health-checks members, retries a
// failed read leg on the next replica, and — when a primary goes dark —
// promotes the most-caught-up reachable follower (internal/replica's
// POST /role) and re-points the rest, so the PR-2 "partial" response hole
// closes for replicated deployments: appends keep landing and no acked
// event is lost (given replica.Config.SyncFollowers >= 1 on the workers).

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/replica"
	"historygraph/internal/server"
)

// member is one replica-set node as the coordinator sees it.
type member struct {
	url    string
	client *server.Client

	healthy atomic.Bool   // last contact attempt succeeded
	insync  atomic.Bool   // within MaxLag of the set's replication head
	applied atomic.Uint64 // last known applied WAL sequence
	ewma    atomic.Int64  // EWMA of answered-read latency in ns; 0 = unsampled
	samples atomic.Int64  // answered reads folded into the EWMA
}

// observeLatency folds one answered read into the member's latency EWMA
// (weight 1/4 — reactive enough to notice a member going slow within a
// few reads, smooth enough to ride out one GC pause).
func (m *member) observeLatency(d time.Duration) {
	for {
		old := m.ewma.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)/4
		}
		if nw <= 0 {
			nw = 1 // 0 is the unsampled sentinel
		}
		if m.ewma.CompareAndSwap(old, nw) {
			m.samples.Add(1)
			return
		}
	}
}

// trustedEwma returns the member's latency EWMA once enough reads back it
// (0 otherwise): one or two samples are noise — a single cold-cache plan
// execution must not re-route the whole set.
func (m *member) trustedEwma() int64 {
	if m.samples.Load() < minLatencySamples {
		return 0
	}
	return m.ewma.Load()
}

// replicaSet is one partition's members plus routing state.
type replicaSet struct {
	members []*member
	primary atomic.Int32  // index of the member appends go to
	rr      atomic.Uint32 // read round-robin cursor
	failMu  sync.Mutex    // serializes failovers for this set
}

func newReplicaSet(urls []string, hc *http.Client, wireName string) *replicaSet {
	rs := &replicaSet{}
	for _, u := range urls {
		cl, err := server.NewClientHTTP(u, hc).SetWire(wireName)
		if err != nil {
			// The coordinator validated the name already; fall back to the
			// client's JSON default rather than fail a whole set.
			cl = server.NewClientHTTP(u, hc)
		}
		m := &member{url: strings.TrimRight(u, "/"), client: cl}
		m.healthy.Store(true)
		m.insync.Store(true)
		rs.members = append(rs.members, m)
	}
	return rs
}

func (rs *replicaSet) primaryMember() *member {
	return rs.members[int(rs.primary.Load())%len(rs.members)]
}

// urls lists the member base URLs in declaration order.
func (rs *replicaSet) urls() []string {
	out := make([]string, len(rs.members))
	for i, m := range rs.members {
		out[i] = m.url
	}
	return out
}

// probeEvery is the read cadence at which latency-aware ordering inverts:
// every probeEvery-th read tries the currently demoted members first, so
// a member the EWMA has learned to avoid keeps getting sampled and can
// win reads back once it recovers.
const probeEvery = 16

// slowFactor is the routing hysteresis: a member is demoted behind its
// peers only when its latency EWMA exceeds the tier's fastest by this
// factor. Comparable members keep the plain rotation (which spreads load
// and keeps per-member caches warm deterministically); the demotion only
// kicks in for a member that is genuinely slow — overloaded, GC-bound, or
// on a bad link.
const slowFactor = 2

// minLatencySamples is how many answered reads a member needs before its
// EWMA participates in demotion decisions.
const minLatencySamples = 4

// slowFloor is the absolute half of the hysteresis: however lopsided the
// EWMAs, a member is only demoted when its average answer time actually
// hurts (a loaded box, a cross-zone link, a saturated disk — not the
// microsecond-scale jitter between two healthy members, where rerouting
// would only churn their hot caches for no latency win).
const slowFloor = 25 * time.Millisecond

// readOrder returns the members to try for a read: in-sync healthy
// replicas first (rotated round-robin so load spreads), then healthy but
// lagging ones, then everything else as a last resort — a marked-down
// member may have recovered since the last health pass. Within the ready
// tier, members whose latency EWMA is more than slowFactor times the
// tier's fastest (and above slowFloor) are moved to the back, so reads
// prefer the low-latency members; every probeEvery-th read inverts that
// order, re-probing demoted members so their EWMA can recover.
func (rs *replicaSet) readOrder() []*member {
	n := len(rs.members)
	if n == 1 {
		return rs.members
	}
	tick := rs.rr.Add(1)
	var ready, lagging, down []*member
	for i := 0; i < n; i++ {
		m := rs.members[(int(tick)+i)%n]
		switch {
		case m.healthy.Load() && m.insync.Load():
			ready = append(ready, m)
		case m.healthy.Load():
			lagging = append(lagging, m)
		default:
			down = append(down, m)
		}
	}
	fast, slow := splitSlow(ready)
	if tick%probeEvery == 0 {
		// A probe deliberately fronts the members routing currently avoids
		// — wherever they sit in the rotation — so a demoted member keeps
		// being measured and its EWMA can recover. With nothing demoted a
		// probe is an ordinary rotation read, so steady-state order is
		// untouched.
		ready = append(slow, fast...)
	} else {
		ready = append(fast, slow...)
	}
	return append(append(ready, lagging...), down...)
}

// splitSlow stably partitions a tier into the members reads should prefer
// and those slower than slowFactor x the fastest trusted EWMA (relative)
// AND slowFloor (absolute). Members without a trusted EWMA (too few
// samples) count as fast so every member gets measured before routing
// reacts to it.
func splitSlow(tier []*member) (fast, slow []*member) {
	min := int64(0)
	for _, m := range tier {
		if w := m.trustedEwma(); w > 0 && (min == 0 || w < min) {
			min = w
		}
	}
	if min == 0 {
		return tier, nil // no member measured enough yet
	}
	fast = make([]*member, 0, len(tier))
	for _, m := range tier {
		if w := m.trustedEwma(); w > slowFactor*min && w > int64(slowFloor) {
			slow = append(slow, m)
		} else {
			fast = append(fast, m)
		}
	}
	return fast, slow
}

// readFrom runs call against the set's replicas in readOrder until one
// answers, marking members up or down along the way and feeding answered
// latencies into the per-member EWMA the ordering is built from.
// Spreading reads over followers is safe because every member serves the
// same merged-exact slice once caught up; a lagging or dead member is
// simply skipped. parent is the request-scoped context the leg ctx was
// derived from: a failure after parent died is the client going away,
// not the member failing, and must not poison the member's routing state
// (a leg-timeout expiry, by contrast, is the member's fault and does).
func readFrom[T any](ctx, parent context.Context, rs *replicaSet, call func(cl *server.Client) (T, error)) (T, error) {
	var zero T
	var lastErr error
	for _, m := range rs.readOrder() {
		begin := time.Now()
		v, err := call(m.client)
		if err == nil {
			m.healthy.Store(true)
			m.observeLatency(time.Since(begin))
			return v, nil
		}
		// A 4xx means the member answered and rejected the request — it is
		// healthy (and its answer time is a real latency sample), and every
		// replica would reject the same way, so neither marking it down nor
		// retrying elsewhere is right. One exception: 410 is the routing-
		// epoch fence, and epochs are member-local state (a member that
		// missed a slot push fences ahead of its peers), so a Gone rotates
		// to the next member; only when every member fences does the leg
		// fail with 410, handing the decision to the scatter retry.
		var he *server.HTTPError
		if errors.As(err, &he) && he.Status >= 400 && he.Status < 500 {
			m.healthy.Store(true)
			m.observeLatency(time.Since(begin))
			if he.Status != http.StatusGone {
				return zero, err
			}
			lastErr = err
			continue
		}
		if parent.Err() != nil {
			return zero, err // canceled by the caller; the member is not at fault
		}
		m.healthy.Store(false)
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return zero, lastErr
}

// newBatchID mints the idempotency ID appendToSet tags a batch with.
func newBatchID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "" // degrade to an untagged (non-idempotent) append
	}
	return hex.EncodeToString(b[:])
}

// appendToSet routes an append to the set's primary. On failure it runs a
// failover (promote the most-caught-up reachable member) and retries once
// against the new primary. One batch ID covers both attempts: if the
// failed append actually committed on the old primary and replicated
// before the error surfaced (a follower-ack timeout, or a response lost
// after the WAL sync), the new primary recognizes the ID from the records
// it mirrored and acks instead of logging and applying the events twice.
func (co *Coordinator) appendToSet(ctx context.Context, rs *replicaSet, events historygraph.EventList) (*server.AppendResult, error) {
	return co.appendBatchToSet(ctx, rs, events, newBatchID())
}

// appendBatchToSet is appendToSet under a caller-chosen batch ID — the
// streaming ingest path derives per-partition IDs from the client's frame
// ID so a client that resends a frame after a broken stream dedupes.
func (co *Coordinator) appendBatchToSet(ctx context.Context, rs *replicaSet, events historygraph.EventList, batch string) (*server.AppendResult, error) {
	pm := rs.primaryMember()
	res, err := pm.client.AppendBatchCtx(ctx, events, batch)
	if err == nil {
		pm.healthy.Store(true)
		return res, nil
	}
	// A 400/422 is the primary deliberately rejecting the batch (bad body,
	// out-of-order events) — the node is healthy and a retry elsewhere
	// would get the same answer. Deposing it over a client error would run
	// a probe sweep per bad request and could promote away a live primary.
	// A 410 is the routing-epoch fence: the batch was planned against a
	// replaced table, and the right retry is a re-route (retryGoneAppends),
	// not a failover within the same now-wrong set.
	var he *server.HTTPError
	if errors.As(err, &he) &&
		(he.Status == http.StatusBadRequest || he.Status == http.StatusUnprocessableEntity || he.Status == http.StatusGone) {
		pm.healthy.Store(true)
		return nil, err
	}
	pm.healthy.Store(false)
	if len(rs.members) == 1 {
		return nil, err
	}
	if ferr := co.failover(rs, pm); ferr != nil {
		return nil, fmt.Errorf("%s (failover: %s)", err, ferr)
	}
	if next := rs.primaryMember(); next != pm {
		return next.client.AppendBatchCtx(ctx, events, batch)
	}
	return nil, err
}

// failover re-elects a primary for the set: probe every member's
// /replstatus, keep an already-promoted or recovered primary if one
// answers, otherwise promote the most-caught-up reachable member and
// re-point the others at it. The suspect is the member the caller just
// watched fail; it is never promoted.
func (co *Coordinator) failover(rs *replicaSet, suspect *member) error {
	rs.failMu.Lock()
	defer rs.failMu.Unlock()
	if rs.primaryMember() != suspect {
		return nil // a concurrent caller already failed over
	}
	ctx, cancel := context.WithTimeout(context.Background(), co.probeTimeout())
	defer cancel()

	best := -1
	var bestApplied uint64
	promoted := -1
	for i, m := range rs.members {
		st, err := replica.Status(ctx, co.hc, m.url)
		if err != nil {
			m.healthy.Store(false)
			continue
		}
		m.healthy.Store(true)
		m.applied.Store(st.AppliedSeq)
		if m == suspect {
			if st.Role == replica.RolePrimary.String() {
				// The append failure was transient: the primary still
				// answers and still leads. Keep it.
				return nil
			}
			continue
		}
		if st.Role == replica.RolePrimary.String() {
			promoted = i // someone already promoted this member
		}
		if best == -1 || st.AppliedSeq > bestApplied {
			best, bestApplied = i, st.AppliedSeq
		}
	}
	if promoted >= 0 {
		best = promoted
	} else {
		if best < 0 {
			return fmt.Errorf("no reachable replica to promote")
		}
		if err := replica.SetRole(ctx, co.hc, rs.members[best].url, replica.RolePrimary, ""); err != nil {
			return err
		}
	}
	rs.primary.Store(int32(best))
	co.failovers.Inc()
	// Best effort: surviving members follow the new primary; the deposed
	// suspect is told too in case it is merely partitioned from us.
	for i, m := range rs.members {
		if i == best {
			continue
		}
		_ = replica.SetRole(ctx, co.hc, m.url, replica.RoleFollower, rs.members[best].url)
	}
	return nil
}

// healthLoop periodically probes every replica-set member, refreshing
// healthy/in-sync routing state and triggering failover when a primary
// has gone dark. Single-member sets are plain workers and are skipped.
func (co *Coordinator) healthLoop(interval time.Duration) {
	defer close(co.healthDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-ticker.C:
		}
		rt := co.rt()
		for _, rs := range rt.sets {
			if len(rs.members) > 1 {
				co.checkSet(rs)
			}
		}
		if rt.epoch() > 1 {
			// Post-reshard healing: a worker that missed the cutover's slot
			// push (briefly down) or restarted since (slot config is
			// in-memory) would serve its boot-time ownership view. Re-push
			// the installed table to any member whose epoch disagrees.
			co.syncSlots(rt)
		}
	}
}

// checkSet refreshes one set's member state from /replstatus probes.
func (co *Coordinator) checkSet(rs *replicaSet) {
	ctx, cancel := context.WithTimeout(context.Background(), co.probeTimeout())
	defer cancel()
	var head uint64 // replication head: the highest sequence any member holds
	stats := make([]*replica.StatusJSON, len(rs.members))
	for i, m := range rs.members {
		st, err := replica.Status(ctx, co.hc, m.url)
		if err != nil {
			m.healthy.Store(false)
			continue
		}
		m.healthy.Store(true)
		m.applied.Store(st.AppliedSeq)
		stats[i] = st
		if st.LastSeq > head {
			head = st.LastSeq
		}
	}
	for i, m := range rs.members {
		if stats[i] == nil {
			continue
		}
		lag := head - stats[i].AppliedSeq
		m.insync.Store(lag <= co.maxLag)
	}
	if pm := rs.primaryMember(); !pm.healthy.Load() {
		_ = co.failover(rs, pm) // promote the most-caught-up survivor
	}
}

// probeTimeout bounds one failover/health status probe.
func (co *Coordinator) probeTimeout() time.Duration {
	if co.timeout < 3*time.Second {
		return co.timeout
	}
	return 3 * time.Second
}
