package shard

// A partition served by one process is a single point of loss; a replica
// set makes it survivable. Each partition's peers form one set: member 0
// is the initial primary (appends), and reads spread round-robin across
// every in-sync member. The coordinator health-checks members, retries a
// failed read leg on the next replica, and — when a primary goes dark —
// promotes the most-caught-up reachable follower (internal/replica's
// POST /role) and re-points the rest, so the PR-2 "partial" response hole
// closes for replicated deployments: appends keep landing and no acked
// event is lost (given replica.Config.SyncFollowers >= 1 on the workers).

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/replica"
	"historygraph/internal/server"
)

// member is one replica-set node as the coordinator sees it.
type member struct {
	url    string
	client *server.Client

	healthy atomic.Bool   // last contact attempt succeeded
	insync  atomic.Bool   // within MaxLag of the set's replication head
	applied atomic.Uint64 // last known applied WAL sequence
}

// replicaSet is one partition's members plus routing state.
type replicaSet struct {
	members []*member
	primary atomic.Int32  // index of the member appends go to
	rr      atomic.Uint32 // read round-robin cursor
	failMu  sync.Mutex    // serializes failovers for this set
}

func newReplicaSet(urls []string, hc *http.Client) *replicaSet {
	rs := &replicaSet{}
	for _, u := range urls {
		m := &member{url: strings.TrimRight(u, "/"), client: server.NewClientHTTP(u, hc)}
		m.healthy.Store(true)
		m.insync.Store(true)
		rs.members = append(rs.members, m)
	}
	return rs
}

func (rs *replicaSet) primaryMember() *member {
	return rs.members[int(rs.primary.Load())%len(rs.members)]
}

// urls lists the member base URLs in declaration order.
func (rs *replicaSet) urls() []string {
	out := make([]string, len(rs.members))
	for i, m := range rs.members {
		out[i] = m.url
	}
	return out
}

// readOrder returns the members to try for a read: in-sync healthy
// replicas first (rotated round-robin so load spreads), then healthy but
// lagging ones, then everything else as a last resort — a marked-down
// member may have recovered since the last health pass.
func (rs *replicaSet) readOrder() []*member {
	n := len(rs.members)
	if n == 1 {
		return rs.members
	}
	start := int(rs.rr.Add(1)) % n
	var ready, lagging, down []*member
	for i := 0; i < n; i++ {
		m := rs.members[(start+i)%n]
		switch {
		case m.healthy.Load() && m.insync.Load():
			ready = append(ready, m)
		case m.healthy.Load():
			lagging = append(lagging, m)
		default:
			down = append(down, m)
		}
	}
	return append(append(ready, lagging...), down...)
}

// readFrom runs call against the set's replicas in readOrder until one
// answers, marking members up or down along the way. Spreading reads over
// followers is safe because every member serves the same merged-exact
// slice once caught up; a lagging or dead member is simply skipped.
func readFrom[T any](ctx context.Context, rs *replicaSet, call func(cl *server.Client) (T, error)) (T, error) {
	var zero T
	var lastErr error
	for _, m := range rs.readOrder() {
		v, err := call(m.client)
		if err == nil {
			m.healthy.Store(true)
			return v, nil
		}
		// A 4xx means the member answered and rejected the request — it is
		// healthy, and every replica would reject the same way, so neither
		// marking it down nor retrying elsewhere is right.
		var he *server.HTTPError
		if errors.As(err, &he) && he.Status >= 400 && he.Status < 500 {
			m.healthy.Store(true)
			return zero, err
		}
		m.healthy.Store(false)
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return zero, lastErr
}

// newBatchID mints the idempotency ID appendToSet tags a batch with.
func newBatchID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "" // degrade to an untagged (non-idempotent) append
	}
	return hex.EncodeToString(b[:])
}

// appendToSet routes an append to the set's primary. On failure it runs a
// failover (promote the most-caught-up reachable member) and retries once
// against the new primary. One batch ID covers both attempts: if the
// failed append actually committed on the old primary and replicated
// before the error surfaced (a follower-ack timeout, or a response lost
// after the WAL sync), the new primary recognizes the ID from the records
// it mirrored and acks instead of logging and applying the events twice.
func (co *Coordinator) appendToSet(ctx context.Context, rs *replicaSet, events historygraph.EventList) (*server.AppendResult, error) {
	batch := newBatchID()
	pm := rs.primaryMember()
	res, err := pm.client.AppendBatchCtx(ctx, events, batch)
	if err == nil {
		pm.healthy.Store(true)
		return res, nil
	}
	// A 400/422 is the primary deliberately rejecting the batch (bad body,
	// out-of-order events) — the node is healthy and a retry elsewhere
	// would get the same answer. Deposing it over a client error would run
	// a probe sweep per bad request and could promote away a live primary.
	var he *server.HTTPError
	if errors.As(err, &he) &&
		(he.Status == http.StatusBadRequest || he.Status == http.StatusUnprocessableEntity) {
		pm.healthy.Store(true)
		return nil, err
	}
	pm.healthy.Store(false)
	if len(rs.members) == 1 {
		return nil, err
	}
	if ferr := co.failover(rs, pm); ferr != nil {
		return nil, fmt.Errorf("%s (failover: %s)", err, ferr)
	}
	if next := rs.primaryMember(); next != pm {
		return next.client.AppendBatchCtx(ctx, events, batch)
	}
	return nil, err
}

// failover re-elects a primary for the set: probe every member's
// /replstatus, keep an already-promoted or recovered primary if one
// answers, otherwise promote the most-caught-up reachable member and
// re-point the others at it. The suspect is the member the caller just
// watched fail; it is never promoted.
func (co *Coordinator) failover(rs *replicaSet, suspect *member) error {
	rs.failMu.Lock()
	defer rs.failMu.Unlock()
	if rs.primaryMember() != suspect {
		return nil // a concurrent caller already failed over
	}
	ctx, cancel := context.WithTimeout(context.Background(), co.probeTimeout())
	defer cancel()

	best := -1
	var bestApplied uint64
	promoted := -1
	for i, m := range rs.members {
		st, err := replica.Status(ctx, co.hc, m.url)
		if err != nil {
			m.healthy.Store(false)
			continue
		}
		m.healthy.Store(true)
		m.applied.Store(st.AppliedSeq)
		if m == suspect {
			if st.Role == replica.RolePrimary.String() {
				// The append failure was transient: the primary still
				// answers and still leads. Keep it.
				return nil
			}
			continue
		}
		if st.Role == replica.RolePrimary.String() {
			promoted = i // someone already promoted this member
		}
		if best == -1 || st.AppliedSeq > bestApplied {
			best, bestApplied = i, st.AppliedSeq
		}
	}
	if promoted >= 0 {
		best = promoted
	} else {
		if best < 0 {
			return fmt.Errorf("no reachable replica to promote")
		}
		if err := replica.SetRole(ctx, co.hc, rs.members[best].url, replica.RolePrimary, ""); err != nil {
			return err
		}
	}
	rs.primary.Store(int32(best))
	co.failovers.Add(1)
	// Best effort: surviving members follow the new primary; the deposed
	// suspect is told too in case it is merely partitioned from us.
	for i, m := range rs.members {
		if i == best {
			continue
		}
		_ = replica.SetRole(ctx, co.hc, m.url, replica.RoleFollower, rs.members[best].url)
	}
	return nil
}

// healthLoop periodically probes every replica-set member, refreshing
// healthy/in-sync routing state and triggering failover when a primary
// has gone dark. Single-member sets are plain workers and are skipped.
func (co *Coordinator) healthLoop(interval time.Duration) {
	defer close(co.healthDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-ticker.C:
		}
		for _, rs := range co.sets {
			if len(rs.members) > 1 {
				co.checkSet(rs)
			}
		}
	}
}

// checkSet refreshes one set's member state from /replstatus probes.
func (co *Coordinator) checkSet(rs *replicaSet) {
	ctx, cancel := context.WithTimeout(context.Background(), co.probeTimeout())
	defer cancel()
	var head uint64 // replication head: the highest sequence any member holds
	stats := make([]*replica.StatusJSON, len(rs.members))
	for i, m := range rs.members {
		st, err := replica.Status(ctx, co.hc, m.url)
		if err != nil {
			m.healthy.Store(false)
			continue
		}
		m.healthy.Store(true)
		m.applied.Store(st.AppliedSeq)
		stats[i] = st
		if st.LastSeq > head {
			head = st.LastSeq
		}
	}
	for i, m := range rs.members {
		if stats[i] == nil {
			continue
		}
		lag := head - stats[i].AppliedSeq
		m.insync.Store(lag <= co.maxLag)
	}
	if pm := rs.primaryMember(); !pm.healthy.Load() {
		_ = co.failover(rs, pm) // promote the most-caught-up survivor
	}
}

// probeTimeout bounds one failover/health status probe.
func (co *Coordinator) probeTimeout() time.Duration {
	if co.timeout < 3*time.Second {
		return co.timeout
	}
	return 3 * time.Second
}
