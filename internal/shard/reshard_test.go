package shard

// The elastic-resharding oracle suite. The contract under test: a live
// split or merge — slot migration, cutover epoch, table install — is
// invisible to clients. A cluster resharded mid-workload must keep
// answering every read byte-identically to an unsharded server over the
// same event history, appends crossing the flip must land exactly once,
// and a crashed migration source or target must degrade to a clean
// abort or resume, never a divergent layout.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/replica"
	"historygraph/internal/server"
)

// rnode is one WAL-backed cluster member (replica.Node over an empty
// graph), the worker shape reshard migration streams between.
type rnode struct {
	gm      *historygraph.GraphManager
	svc     *server.Server
	log     *replica.Log
	node    *replica.Node
	httpSrv *httptest.Server
	url     string
	stopped bool
}

func launchRNode(t testing.TB, walPath string, cfg replica.Config) *rnode {
	t.Helper()
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 128, CleanerInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	svc := server.New(gm, server.Config{CacheSize: 16})
	log, err := replica.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	node, err := replica.NewNode(svc, log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rn := &rnode{gm: gm, svc: svc, log: log, node: node}
	rn.httpSrv = httptest.NewServer(node.Handler())
	rn.url = rn.httpSrv.URL
	t.Cleanup(rn.stop)
	return rn
}

func (rn *rnode) stop() {
	if rn.stopped {
		return
	}
	rn.stopped = true
	rn.httpSrv.Close()
	rn.node.Close()
	rn.svc.Close()
	rn.log.Close()
	rn.gm.Close()
}

// postReshard drives POST /admin/reshard raw, the way an operator would.
func postReshard(t *testing.T, base string, req ReshardRequest) (*ReshardStatus, int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/admin/reshard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, string(data)
	}
	var st ReshardStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("bad reshard status %s: %v", data, err)
	}
	return &st, resp.StatusCode, ""
}

// getRaw is rawGET without the fatal-on-error, for workload goroutines.
func getRaw(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// mustMatchRaw byte-compares one query across the oracle and the
// cluster. Each side is fetched twice and the second responses compared:
// the first fetch warms both response caches, so the cached flag agrees
// and the comparison is exact bytes, never modulo cache state.
func mustMatchRaw(t *testing.T, stage, oracleURL, frontURL, query string) {
	t.Helper()
	rawGET(t, oracleURL+query)
	rawGET(t, frontURL+query)
	want := rawGET(t, oracleURL+query)
	got := rawGET(t, frontURL+query)
	if !bytes.Equal(got, want) {
		t.Fatalf("[%s] %s diverges from unsharded oracle:\n got: %.400s\nwant: %.400s", stage, query, got, want)
	}
}

// mustMatchNeighbors compares a neighborhood canonically: the
// coordinator merges per-partition adjacency sorted and deduplicated,
// while the unsharded server reports its own adjacency order, so the
// contract is set equality plus the exact degree — not byte equality.
func mustMatchNeighbors(t *testing.T, stage string, oc, fc *server.Client, tp historygraph.Time, n historygraph.NodeID) {
	t.Helper()
	want, err := oc.Neighbors(tp, n, "")
	if err != nil {
		t.Fatalf("[%s] oracle neighbors(%d, %d): %v", stage, tp, n, err)
	}
	got, err := fc.Neighbors(tp, n, "")
	if err != nil {
		t.Fatalf("[%s] cluster neighbors(%d, %d): %v", stage, tp, n, err)
	}
	if got.Degree != want.Degree {
		t.Fatalf("[%s] node %d degree: cluster %d, oracle %d", stage, n, got.Degree, want.Degree)
	}
	ws := append([]int64(nil), want.Neighbors...)
	gs := append([]int64(nil), got.Neighbors...)
	sort.Slice(ws, func(a, b int) bool { return ws[a] < ws[b] })
	sort.Slice(gs, func(a, b int) bool { return gs[a] < gs[b] })
	// The oracle list may hold duplicates only if the graph does; both
	// sides are dedup-consistent views of the same adjacency.
	dedup := func(s []int64) []int64 {
		out := s[:0]
		for i, v := range s {
			if i == 0 || v != s[i-1] {
				out = append(out, v)
			}
		}
		return out
	}
	ws, gs = dedup(ws), dedup(gs)
	if len(ws) != len(gs) {
		t.Fatalf("[%s] node %d: cluster %d neighbors, oracle %d", stage, n, len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("[%s] node %d: neighbor sets diverge at %d: %d vs %d", stage, n, i, gs[i], ws[i])
		}
	}
}

// TestReshardSplitMergeUnderLoadOracle is the tentpole acceptance check:
// a 2-partition WAL-backed cluster is split to three partitions and then
// merged back to two, each flip under a live mixed workload, and after
// every epoch flip the cluster answers /snapshot, /batch and /interval
// byte-identically — and /neighbors canonically — to an unsharded server
// fed the same acked events. Zero workload errors are tolerated: the
// cutover must degrade to internal rerouting, never to a client failure.
func TestReshardSplitMergeUnderLoadOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live cluster and reshards it twice under load")
	}
	events := testEvents()
	dir := t.TempDir()
	p0 := launchRNode(t, filepath.Join(dir, "p0.wal"), replica.Config{Role: replica.RolePrimary})
	p1 := launchRNode(t, filepath.Join(dir, "p1.wal"), replica.Config{Role: replica.RolePrimary})
	co, err := NewReplicated([][]string{{p0.url}, {p1.url}}, Config{PartitionTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	client := server.NewClient(front.URL)

	// The unsharded oracle receives exactly the events the cluster acks.
	ogm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 128, CleanerInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ogm.Close()
	osvc := server.New(ogm, server.Config{CacheSize: 32})
	defer osvc.Close()
	ohs := httptest.NewServer(osvc.Handler())
	defer ohs.Close()
	oclient := server.NewClient(ohs.URL)

	const batches = 8
	for i := 0; i < batches; i++ {
		lo, hi := i*len(events)/batches, (i+1)*len(events)/batches
		if _, err := client.Append(events[lo:hi]); err != nil {
			t.Fatalf("preload batch %d: %v", i, err)
		}
		if _, err := oclient.Append(events[lo:hi]); err != nil {
			t.Fatalf("oracle preload batch %d: %v", i, err)
		}
	}
	_, last := events.Span()

	// timeCtr reserves timestamps for the writer; pubTime trails it and
	// advances only once a timestamp's batch is acked by both deployments,
	// so readers never query a time the index has not absorbed yet.
	var timeCtr, pubTime, nodeCtr, edgeCtr atomic.Int64
	timeCtr.Store(int64(last))
	pubTime.Store(int64(last))
	nodeCtr.Store(1 << 20)
	edgeCtr.Store(1 << 41)

	var errMu sync.Mutex
	var wlErrs []string
	record := func(format string, args ...any) {
		errMu.Lock()
		defer errMu.Unlock()
		if len(wlErrs) < 8 {
			wlErrs = append(wlErrs, fmt.Sprintf(format, args...))
		}
	}
	checkErrs := func(stage string) {
		t.Helper()
		errMu.Lock()
		defer errMu.Unlock()
		if len(wlErrs) > 0 {
			t.Fatalf("[%s] workload errors: %v", stage, wlErrs)
		}
	}

	// startLoad runs one writer (fresh nodes plus an edge between them,
	// dual-written to the oracle on ack) and three random readers until
	// the returned stop function is called.
	startLoad := func(seed int64) (stop func()) {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				at := historygraph.Time(timeCtr.Add(1))
				a := historygraph.NodeID(nodeCtr.Add(1))
				b := historygraph.NodeID(nodeCtr.Add(1))
				batch := historygraph.EventList{
					{Type: historygraph.AddNode, At: at, Node: a},
					{Type: historygraph.AddNode, At: at, Node: b},
					{Type: historygraph.AddEdge, At: at, Edge: historygraph.EdgeID(edgeCtr.Add(1)), Node: a, Node2: b},
				}
				res, err := client.Append(batch)
				if err != nil {
					record("append at %d: %v", at, err)
					return
				}
				if len(res.Partial) > 0 {
					record("append at %d partial: %+v", at, res.Partial)
					return
				}
				if _, err := oclient.Append(batch); err != nil {
					record("oracle append at %d: %v", at, err)
					return
				}
				pubTime.Store(int64(at))
				time.Sleep(2 * time.Millisecond)
			}
		}()
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(r)))
				for {
					select {
					case <-done:
						return
					default:
					}
					maxT := pubTime.Load()
					tp := 1 + rng.Int63n(maxT)
					var q string
					switch rng.Intn(4) {
					case 0:
						q = fmt.Sprintf("/snapshot?t=%d", tp)
					case 1:
						q = fmt.Sprintf("/neighbors?t=%d&node=%d", tp, rng.Intn(200))
					case 2:
						q = fmt.Sprintf("/batch?t=%d,%d", tp, 1+rng.Int63n(maxT))
					default:
						from := 1 + rng.Int63n(maxT)
						q = fmt.Sprintf("/interval?from=%d&to=%d", from, from+1+rng.Int63n(maxT-from+1))
					}
					if code, err := getRaw(front.URL + q); err != nil || code != http.StatusOK {
						record("reader %s: code %d err %v", q, code, err)
						return
					}
				}
			}(r)
		}
		return func() { close(done); wg.Wait() }
	}

	compare := func(stage string) {
		t.Helper()
		maxT := pubTime.Load()
		tps := []int64{maxT / 4, maxT / 2, maxT}
		for _, tp := range tps {
			mustMatchRaw(t, stage, ohs.URL, front.URL, fmt.Sprintf("/snapshot?t=%d&full=1", tp))
			mustMatchRaw(t, stage, ohs.URL, front.URL, fmt.Sprintf("/snapshot?t=%d", tp))
		}
		mustMatchRaw(t, stage, ohs.URL, front.URL,
			fmt.Sprintf("/batch?t=%d,%d,%d&full=1", tps[0], tps[1], tps[2]))
		mustMatchRaw(t, stage, ohs.URL, front.URL,
			fmt.Sprintf("/interval?from=1&to=%d&full=1", maxT/2))
		for n := historygraph.NodeID(0); n < 200; n += 23 {
			mustMatchNeighbors(t, stage, oclient, client, historygraph.Time(maxT/2), n)
		}
	}
	compare("preloaded")

	// Split: a fresh WAL-backed worker joins as partition 2 and takes a
	// balanced share of the slot space, mid-workload.
	stop := startLoad(1)
	time.Sleep(250 * time.Millisecond)
	t0 := launchRNode(t, filepath.Join(dir, "t0.wal"), replica.Config{Role: replica.RolePrimary})
	st, code, errBody := postReshard(t, front.URL, ReshardRequest{Target: []string{t0.url}})
	if code != http.StatusOK {
		t.Fatalf("split reshard: HTTP %d: %s", code, errBody)
	}
	if st.Epoch != 2 || st.Partitions != 3 || st.Moved == 0 || st.Migrated == 0 {
		t.Fatalf("split status: %+v", st)
	}
	time.Sleep(250 * time.Millisecond)
	stop()
	checkErrs("split")
	if co.Epoch() != 2 || co.NumPartitions() != 3 {
		t.Fatalf("after split: epoch %d partitions %d", co.Epoch(), co.NumPartitions())
	}
	compare("after split")

	// Merge: partitions 1 and 2 retire onto another fresh worker — their
	// histories interleave into one stream — again mid-workload.
	stop = startLoad(2)
	time.Sleep(250 * time.Millisecond)
	t1 := launchRNode(t, filepath.Join(dir, "t1.wal"), replica.Config{Role: replica.RolePrimary})
	st2, code, errBody := postReshard(t, front.URL, ReshardRequest{Target: []string{t1.url}, Merge: []int{1, 2}})
	if code != http.StatusOK {
		t.Fatalf("merge reshard: HTTP %d: %s", code, errBody)
	}
	if st2.Epoch != 3 || st2.Partitions != 2 || st2.Migrated == 0 {
		t.Fatalf("merge status: %+v", st2)
	}
	time.Sleep(250 * time.Millisecond)
	stop()
	checkErrs("merge")
	if co.Epoch() != 3 || co.NumPartitions() != 2 {
		t.Fatalf("after merge: epoch %d partitions %d", co.Epoch(), co.NumPartitions())
	}
	// Every migrated event is one WAL record on the merge target; the
	// target then keeps absorbing routed appends, so its head is at least
	// the migrated count.
	if t1.log.LastSeq() < st2.Migrated {
		t.Fatalf("merge target logged %d records, migration reported %d", t1.log.LastSeq(), st2.Migrated)
	}
	compare("after merge")

	if got := co.reshards.Value(); got != 2 {
		t.Errorf("reshards counter = %d, want 2", got)
	}
	if got := co.partials.Value(); got != 0 {
		t.Errorf("partial responses under reshard = %d, want 0", got)
	}
}

// waitMigrationState polls the target's ingest until cond is satisfied.
func waitMigrationState(t *testing.T, url string, what string, cond func(*replica.MigrateStatus) bool) *replica.MigrateStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := replica.MigrationStatus(context.Background(), http.DefaultClient, url)
		if err == nil && cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("migration on %s never reached %s (last: %+v, err %v)", url, what, st, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMigrationSourceCrashResumeAndAbort is the source-death drill. A
// replica set holds the full trace on a primary and a synchronously
// acked follower; the primary dies. (a) An ingest sourced at the dead
// member first must rotate to the live follower and still drain to the
// exact event count. (b) An ingest whose only source is dead makes no
// progress, aborts cleanly on Stop, and the same target then resumes
// from the live member — again to the exact count. The WAL oracle is
// TestFailoverRetryDedupedConcurrent's: one log record per event, so
// the target head equals the moved-slot event count precisely.
func TestMigrationSourceCrashResumeAndAbort(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a replica set and crashes its primary")
	}
	events := testEvents()
	dir := t.TempDir()
	src := launchRNode(t, filepath.Join(dir, "src.wal"), replica.Config{
		Role: replica.RolePrimary, SyncFollowers: 1, AckTimeout: 10 * time.Second,
	})
	fol := launchRNode(t, filepath.Join(dir, "fol.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: src.url, SelfID: "fol",
		PollWait: 100 * time.Millisecond,
	})
	scl := server.NewClient(src.url)
	const batches = 4
	for i := 0; i < batches; i++ {
		lo, hi := i*len(events)/batches, (i+1)*len(events)/batches
		if _, err := scl.Append(events[lo:hi]); err != nil {
			t.Fatalf("preload batch %d: %v", i, err)
		}
	}
	head := src.log.LastSeq()
	deadline := time.Now().Add(15 * time.Second)
	for fol.log.LastSeq() < head {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up to %d (at %d)", head, fol.log.LastSeq())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The moving slots and their exact event count.
	var moved []int
	for s := 0; s < NumSlots; s += 2 {
		moved = append(moved, s)
	}
	inMoved := make(map[int]bool, len(moved))
	for _, s := range moved {
		inMoved[s] = true
	}
	var want uint64
	for _, ev := range events {
		if inMoved[SlotOfEvent(ev)] {
			want++
		}
	}
	if want == 0 || want == uint64(len(events)) {
		t.Fatalf("degenerate moved-slot count %d of %d", want, len(events))
	}

	src.stop() // the crash

	// (a) Resume: the dead member listed first, the live follower second.
	// fetchPage must rotate past the refused connection and stream the
	// whole moved history from the follower.
	ctx := context.Background()
	tgtA := launchRNode(t, filepath.Join(dir, "tgtA.wal"), replica.Config{Role: replica.RolePrimary})
	if _, err := replica.Migrate(ctx, http.DefaultClient, tgtA.url, replica.MigrateRequest{
		Sources: []replica.MigrateSource{{URLs: []string{src.url, fol.url}, Slots: moved}},
	}); err != nil {
		t.Fatalf("starting migration: %v", err)
	}
	if _, err := replica.Migrate(ctx, http.DefaultClient, tgtA.url, replica.MigrateRequest{
		Finalize: []uint64{head},
	}); err != nil {
		t.Fatalf("finalizing migration: %v", err)
	}
	st := waitMigrationState(t, tgtA.url, "done", func(st *replica.MigrateStatus) bool { return st.Done })
	if st.Applied != want {
		t.Fatalf("resumed migration applied %d events, want %d", st.Applied, want)
	}
	if got := tgtA.log.LastSeq(); got != want {
		t.Fatalf("resumed target logged %d records, want %d", got, want)
	}
	if _, err := replica.Migrate(ctx, http.DefaultClient, tgtA.url, replica.MigrateRequest{Stop: true}); err != nil {
		t.Fatalf("stopping migration: %v", err)
	}

	// (b) Abort: only the dead member as source — no progress, surfaced
	// as a fetch error, never fatal. Stop aborts cleanly; the same target
	// (WAL still empty) then restarts from the live member and drains.
	tgtB := launchRNode(t, filepath.Join(dir, "tgtB.wal"), replica.Config{Role: replica.RolePrimary})
	if _, err := replica.Migrate(ctx, http.DefaultClient, tgtB.url, replica.MigrateRequest{
		Sources: []replica.MigrateSource{{URLs: []string{src.url}, Slots: moved}},
	}); err != nil {
		t.Fatalf("starting doomed migration: %v", err)
	}
	stB := waitMigrationState(t, tgtB.url, "a surfaced fetch error",
		func(st *replica.MigrateStatus) bool { return st.Error != "" && !st.Done })
	if stB.Applied != 0 {
		t.Fatalf("doomed migration applied %d events from a dead source", stB.Applied)
	}
	if _, err := replica.Migrate(ctx, http.DefaultClient, tgtB.url, replica.MigrateRequest{Stop: true}); err != nil {
		t.Fatalf("aborting migration: %v", err)
	}
	if got := tgtB.log.LastSeq(); got != 0 {
		t.Fatalf("aborted migration left %d WAL records", got)
	}
	if _, err := replica.Migrate(ctx, http.DefaultClient, tgtB.url, replica.MigrateRequest{
		Sources: []replica.MigrateSource{{URLs: []string{fol.url}, Slots: moved}},
	}); err != nil {
		t.Fatalf("restarting aborted migration: %v", err)
	}
	if _, err := replica.Migrate(ctx, http.DefaultClient, tgtB.url, replica.MigrateRequest{
		Finalize: []uint64{head},
	}); err != nil {
		t.Fatalf("finalizing restarted migration: %v", err)
	}
	st = waitMigrationState(t, tgtB.url, "done", func(st *replica.MigrateStatus) bool { return st.Done })
	if st.Applied != want || tgtB.log.LastSeq() != want {
		t.Fatalf("restarted migration: applied %d, logged %d, want %d", st.Applied, tgtB.log.LastSeq(), want)
	}
}

// TestReshardTargetCrashAborts is the new-owner-death drill: a reshard
// aimed at a dead target must abort without flipping the epoch or
// perturbing a single answer, and a retry with a live target must then
// succeed — with the migrated count matching the moved slots' event
// count exactly, on both the reported status and the target's WAL.
func TestReshardTargetCrashAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a WAL-backed cluster")
	}
	events := testEvents()
	dir := t.TempDir()
	p0 := launchRNode(t, filepath.Join(dir, "p0.wal"), replica.Config{Role: replica.RolePrimary})
	p1 := launchRNode(t, filepath.Join(dir, "p1.wal"), replica.Config{Role: replica.RolePrimary})
	co, err := NewReplicated([][]string{{p0.url}, {p1.url}}, Config{PartitionTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	client := server.NewClient(front.URL)
	for i := 0; i < 4; i++ {
		lo, hi := i*len(events)/4, (i+1)*len(events)/4
		if _, err := client.Append(events[lo:hi]); err != nil {
			t.Fatalf("preload batch %d: %v", i, err)
		}
	}
	_, ourl := func() (*historygraph.GraphManager, string) {
		gm, _, u := oracle(t, events)
		return gm, u
	}()
	_, last := events.Span()

	compare := func(stage string) {
		t.Helper()
		for _, tp := range []historygraph.Time{last / 2, last} {
			mustMatchRaw(t, stage, ourl, front.URL, fmt.Sprintf("/snapshot?t=%d&full=1", tp))
		}
	}
	compare("preloaded")

	// The dead target: launched to claim a real port, then stopped, so
	// the coordinator's first migration call hits a refused connection.
	dead := launchRNode(t, filepath.Join(dir, "dead.wal"), replica.Config{Role: replica.RolePrimary})
	deadURL := dead.url
	dead.stop()
	_, code, errBody := postReshard(t, front.URL, ReshardRequest{Target: []string{deadURL}})
	if code != http.StatusBadGateway {
		t.Fatalf("reshard to dead target: HTTP %d (%s), want 502", code, errBody)
	}
	if co.Epoch() != 1 || co.NumPartitions() != 2 {
		t.Fatalf("aborted reshard changed the layout: epoch %d partitions %d", co.Epoch(), co.NumPartitions())
	}
	if got := co.reshards.Value(); got != 0 {
		t.Fatalf("aborted reshard counted as completed (%d)", got)
	}
	compare("after aborted reshard")

	// Retry with a live target: the exact-count oracle. Every preload
	// event whose slot moved is exactly one WAL record on the new owner.
	tgt := launchRNode(t, filepath.Join(dir, "tgt.wal"), replica.Config{Role: replica.RolePrimary})
	st, code, errBody := postReshard(t, front.URL, ReshardRequest{Target: []string{tgt.url}})
	if code != http.StatusOK {
		t.Fatalf("retry reshard: HTTP %d: %s", code, errBody)
	}
	if st.Epoch != 2 || st.Partitions != 3 {
		t.Fatalf("retry status: %+v", st)
	}
	movedSlots := co.rt().table.OwnedBy(2)
	if len(movedSlots) != st.Moved {
		t.Fatalf("status moved %d slots, table shows %d", st.Moved, len(movedSlots))
	}
	inMoved := make(map[int]bool, len(movedSlots))
	for _, s := range movedSlots {
		inMoved[s] = true
	}
	var want uint64
	for _, ev := range events {
		if inMoved[SlotOfEvent(ev)] {
			want++
		}
	}
	if st.Migrated != want {
		t.Fatalf("migrated %d events, moved slots hold %d", st.Migrated, want)
	}
	if got := tgt.log.LastSeq(); got != want {
		t.Fatalf("target logged %d records, want exactly %d", got, want)
	}
	compare("after recovery reshard")
}

// TestStaleEpochReadReroutedOnce: a read leg fenced with 410 Gone is
// replanned exactly once against the freshly installed table and
// succeeds; the worker that fenced is never asked again.
func TestStaleEpochReadReroutedOnce(t *testing.T) {
	events := testEvents()
	gm := buildManager(t, events)
	svc := server.New(gm, server.Config{CacheSize: 16})
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { hs.Close(); svc.Close() })
	last := gm.LastTime()

	var co *Coordinator
	coReady := make(chan struct{})
	var fences atomic.Int64
	// The fencing worker: data reads get 410 after the successor routing
	// (epoch 2, pointing straight at the real worker) is installed —
	// the worker-pushed-before-install window of a real cutover.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/snapshot" {
			http.NotFound(w, r)
			return
		}
		<-coReady
		fences.Add(1)
		next := DefaultSlotTable(1)
		next.Epoch = 2
		co.installRouting(&routing{table: next, sets: []*replicaSet{newReplicaSet([]string{hs.URL}, co.hc, co.legWire)}})
		server.WriteError(w, http.StatusGone, fmt.Errorf("routing epoch 1 does not match installed epoch 2"))
	}))
	t.Cleanup(proxy.Close)

	var err error
	co, err = New([]string{proxy.URL}, Config{PartitionTimeout: time.Second, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	close(coReady)
	front := httptest.NewServer(co.Handler())
	defer front.Close()

	query := fmt.Sprintf("/snapshot?t=%d&full=1", last/2)
	var got, want server.SnapshotJSON
	if err := json.Unmarshal(rawGET(t, front.URL+query), &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawGET(t, hs.URL+query), &want); err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != want.NumNodes || got.NumEdges != want.NumEdges {
		t.Fatalf("rerouted read answered %d/%d, worker holds %d/%d",
			got.NumNodes, got.NumEdges, want.NumNodes, want.NumEdges)
	}
	if got := co.reroutes.Value(); got != 1 {
		t.Errorf("reroutes = %d, want exactly 1", got)
	}
	if got := fences.Load(); got != 1 {
		t.Errorf("fenced worker was asked %d times, want 1", got)
	}
	// Later reads run against the installed table: no further fences.
	rawGET(t, front.URL+query)
	if got := co.reroutes.Value(); got != 1 {
		t.Errorf("reroutes after settled read = %d, want 1", got)
	}
	if got := fences.Load(); got != 1 {
		t.Errorf("settled read went back to the fenced worker (%d hits)", got)
	}
}

// TestStaleEpochAppendRerouteDeduped: an append leg that was applied by
// the worker but answered with 410 — the dual-write window of a cutover
// driven outside this coordinator's gate — is resent under the freshly
// installed table with the leg's ORIGINAL batch ID, and the new owner's
// batch-ID machinery absorbs the duplicate: one WAL record per event,
// counted once, with the retry acked as deduped.
func TestStaleEpochAppendRerouteDeduped(t *testing.T) {
	events := testEvents()
	dir := t.TempDir()
	primary := launchRNode(t, filepath.Join(dir, "p.wal"), replica.Config{Role: replica.RolePrimary})
	pcl := server.NewClient(primary.url)
	if _, err := pcl.Append(events); err != nil {
		t.Fatal(err)
	}
	preSeq := primary.log.LastSeq()
	_, last := events.Span()

	var co *Coordinator
	coReady := make(chan struct{})
	var fences atomic.Int64
	// The fencing proxy: forwards the append verbatim (batch ID, epoch
	// stamp and all) to the primary, which durably applies it — then
	// moves the routing on and answers 410, as a worker that cut over
	// mid-request would.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/append" {
			http.NotFound(w, r)
			return
		}
		<-coReady
		fences.Add(1)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("proxy read: %v", err)
		}
		req, err := http.NewRequest(http.MethodPost, primary.url+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			t.Errorf("proxy build: %v", err)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("proxy forward: %v", err)
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("forwarded append: HTTP %d", resp.StatusCode)
			}
		}
		next := DefaultSlotTable(1)
		next.Epoch = 2
		co.installRouting(&routing{table: next, sets: []*replicaSet{newReplicaSet([]string{primary.url}, co.hc, co.legWire)}})
		server.WriteError(w, http.StatusGone, fmt.Errorf("routing epoch 1 does not match installed epoch 2"))
	}))
	t.Cleanup(proxy.Close)

	var err error
	co, err = New([]string{proxy.URL}, Config{PartitionTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	close(coReady)
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	client := server.NewClient(front.URL)

	const n = 20
	batch := make(historygraph.EventList, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, historygraph.Event{
			Type: historygraph.AddNode, At: last + 1, Node: historygraph.NodeID(1<<21 + i),
		})
	}
	res, err := client.Append(batch)
	if err != nil {
		t.Fatalf("append across the fence: %v", err)
	}
	if len(res.Partial) > 0 {
		t.Fatalf("append reported partial: %+v", res.Partial)
	}
	if !res.Deduped {
		t.Error("rerouted append was not absorbed by the batch-ID dedup")
	}
	if got := primary.log.LastSeq(); got != preSeq+n {
		t.Fatalf("primary logged %d records, want %d: the dual-written batch must land exactly once", got, preSeq+n)
	}
	if got := co.reroutes.Value(); got != 1 {
		t.Errorf("reroutes = %d, want exactly 1", got)
	}
	if got := fences.Load(); got != 1 {
		t.Errorf("fenced worker saw %d appends, want 1", got)
	}
}

// TestReshardValidation pins the admission errors: a target already in
// the layout, mutually exclusive modes, an empty target list, an
// out-of-range merge index, a concurrent reshard, and the idle status
// answer.
func TestReshardValidation(t *testing.T) {
	events := testEvents()
	c := newCluster(t, events, 2, Config{})
	front := c.client.BaseURL()

	_, code, msg := postReshard(t, front, ReshardRequest{Target: []string{c.httpSrvs[0].URL}})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("target already a member: HTTP %d (%s), want 422", code, msg)
	}
	_, code, msg = postReshard(t, front, ReshardRequest{
		Target: []string{"http://127.0.0.1:1"}, Slots: []int{3}, Merge: []int{1},
	})
	if code != http.StatusBadRequest {
		t.Errorf("merge+slots: HTTP %d (%s), want 400", code, msg)
	}
	_, code, msg = postReshard(t, front, ReshardRequest{})
	if code != http.StatusBadRequest {
		t.Errorf("empty target: HTTP %d (%s), want 400", code, msg)
	}
	_, code, msg = postReshard(t, front, ReshardRequest{
		Target: []string{"http://127.0.0.1:1"}, Merge: []int{7},
	})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("merge out of range: HTTP %d (%s), want 422", code, msg)
	}

	// One reshard at a time: with the driver lock held, the endpoint
	// answers 409 instead of queueing a second cutover.
	c.co.reshardMu.Lock()
	_, status, err := c.co.Reshard(context.Background(), ReshardRequest{Target: []string{"http://127.0.0.1:1"}})
	c.co.reshardMu.Unlock()
	if status != http.StatusConflict || err == nil {
		t.Errorf("concurrent reshard: status %d err %v, want 409", status, err)
	}

	// Idle status: the boot layout, epoch 1.
	var st ReshardStatus
	if err := json.Unmarshal(rawGET(t, front+"/admin/reshard"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Partitions != 2 {
		t.Errorf("idle reshard status: %+v", st)
	}
}

// TestSlotTableOps pins the routing-table algebra the reshard planner
// builds on: the boot table matches the boot hash, Reassign bumps the
// epoch and moves exactly the listed slots, Renumber demands totality,
// and the auto-picker takes a balanced share without emptying any owner.
func TestSlotTableOps(t *testing.T) {
	tbl := DefaultSlotTable(3)
	if tbl.Epoch != 1 {
		t.Fatalf("boot epoch = %d", tbl.Epoch)
	}
	for s, p := range tbl.Slots {
		if p != s%3 {
			t.Fatalf("boot slot %d -> %d, want %d", s, p, s%3)
		}
	}
	next, err := tbl.Reassign([]int{0, 3, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 2 {
		t.Fatalf("reassign epoch = %d, want 2", next.Epoch)
	}
	movedCount := 0
	for s := range next.Slots {
		if next.Slots[s] != tbl.Slots[s] {
			movedCount++
			if next.Slots[s] != 3 || (s != 0 && s != 3 && s != 6) {
				t.Fatalf("slot %d moved to %d", s, next.Slots[s])
			}
		}
	}
	if movedCount != 3 {
		t.Fatalf("reassign moved %d slots, want 3", movedCount)
	}
	if _, err := next.Renumber(map[int]int{0: 0, 1: 1}); err == nil {
		t.Fatal("partial renumbering accepted")
	}

	picked := pickSlots(DefaultSlotTable(2), 2)
	if want := NumSlots / 3; len(picked) != want {
		t.Fatalf("auto-pick chose %d slots, want %d", len(picked), want)
	}
	left := map[int]int{}
	seen := map[int]bool{}
	for _, s := range picked {
		if seen[s] {
			t.Fatalf("slot %d picked twice", s)
		}
		seen[s] = true
	}
	for s, p := range DefaultSlotTable(2).Slots {
		if !seen[s] {
			left[p]++
		}
	}
	for p := 0; p < 2; p++ {
		if left[p] < 1 {
			t.Fatalf("auto-pick emptied partition %d", p)
		}
	}
}
