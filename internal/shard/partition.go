package shard

import (
	"historygraph"
	"historygraph/internal/graph"
)

// PartitionOf returns the partition that owns an event under the shared
// node-hash space (graph.PartitionOfEvent): node events hash by node ID,
// edge events by their From endpoint.
func PartitionOf(ev historygraph.Event, n int) int {
	return graph.PartitionOfEvent(ev, n)
}

// PartitionEvents splits a chronological event list into the n
// per-partition slices a sharded cluster's workers each own. Relative
// order is preserved within every slice, so each worker sees a
// chronological sub-trace and BuildFrom/AppendAll accept it unchanged.
func PartitionEvents(events historygraph.EventList, n int) []historygraph.EventList {
	out := make([]historygraph.EventList, n)
	for _, ev := range events {
		p := PartitionOf(ev, n)
		out[p] = append(out[p], ev)
	}
	return out
}
