package shard

import (
	"fmt"

	"historygraph"
	"historygraph/internal/graph"
)

// PartitionOf returns the partition that owns an event under the shared
// node-hash space (graph.PartitionOfEvent): node events hash by node ID,
// edge events by their From endpoint.
func PartitionOf(ev historygraph.Event, n int) int {
	return graph.PartitionOfEvent(ev, n)
}

// Routable reports whether an event carries the identity the partition
// hash needs. Edge deletes, edge-attribute updates, and transient edges
// must repeat the edge's endpoints (graph.Event's contract): an
// endpoint-less DE hashes to node 0's partition, where the store
// materializes the unknown edge as alive-until-the-delete while the
// owning partition never sees the delete — the cluster silently
// diverges from an unsharded server, which resolves such events by edge
// ID locally. The coordinator therefore rejects them up front.
func Routable(ev historygraph.Event) error {
	switch ev.Type {
	case historygraph.DelEdge, historygraph.SetEdgeAttr, historygraph.TransientEdge:
		if ev.Node == 0 && ev.Node2 == 0 {
			return fmt.Errorf("%s event for edge %d carries no endpoints; a sharded cluster routes edge events by their From node", ev.Type, ev.Edge)
		}
	}
	return nil
}

// PartitionEvents splits a chronological event list into the n
// per-partition slices a sharded cluster's workers each own. Relative
// order is preserved within every slice, so each worker sees a
// chronological sub-trace and BuildFrom/AppendAll accept it unchanged.
func PartitionEvents(events historygraph.EventList, n int) []historygraph.EventList {
	out := make([]historygraph.EventList, n)
	for _, ev := range events {
		p := PartitionOf(ev, n)
		out[p] = append(out[p], ev)
	}
	return out
}
