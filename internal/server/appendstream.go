package server

// Streaming ingest, both sides of the wire. The server side drains a
// POST /append?stream=1 body frame by frame; the client side (AppendStream)
// holds one long-lived connection and encodes a frame per Send, so a
// sustained writer pays connection setup, HTTP headers, and response
// parsing once per stream instead of once per batch. A WAL-backed replica
// node intercepts the same endpoint with its pipelined variant
// (internal/replica); this plain handler applies frames sequentially —
// there is no log to overlap against.

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"historygraph"
	"historygraph/internal/wire"
)

// handleAppendStream drains a streaming ingest body, applying each frame
// as it arrives and answering one aggregated AppendResult after the end
// frame.
func (s *Server) handleAppendStream(w http.ResponseWriter, r *http.Request) {
	dec, err := wire.NewAppendStreamDecoder(r.Body)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	var agg AppendResult
	frames := 0
	for {
		frame, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("append stream failed at frame %d: %w (earlier frames were applied)", frames, err))
			return
		}
		events, err := DecodeEvents(frame.Events)
		if err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("append stream frame %d: %w", frames, err))
			return
		}
		res, appendErr := s.ApplyEvents(events)
		agg.Appended += res.Appended
		if res.LastTime > agg.LastTime {
			agg.LastTime = res.LastTime
		}
		agg.Invalidated += res.Invalidated
		if appendErr != nil {
			WriteError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("append stream frame %d: %w (earlier frames were applied)", frames, appendErr))
			return
		}
		frames++
	}
	WriteWire(w, r, http.StatusOK, agg)
}

// appendStreamResp carries the transport goroutine's answer back to Close.
type appendStreamResp struct {
	resp *http.Response
	err  error
}

// AppendStream is one long-lived streaming ingest connection: each Send
// encodes a batch frame onto the request body, Close writes the end frame
// and decodes the server's aggregated AppendResult. Not safe for
// concurrent use — open one stream per writer goroutine.
//
// Flow control is the transport itself: the server reads ahead a bounded
// window of frames; past it, Send blocks in the socket write until
// earlier frames settle. There are no per-frame acks — a writer that
// needs a durability receipt before its next batch should use
// AppendBatchCtx instead.
type AppendStream struct {
	enc     *wire.AppendStreamEncoder
	pw      *io.PipeWriter
	resp    chan appendStreamResp
	scratch []EventJSON
	done    bool
}

// AppendStream opens a streaming ingest connection. Events flow with
// Send/SendBatch; Close completes the stream and returns the aggregated
// result.
func (c *Client) AppendStream() (*AppendStream, error) {
	return c.AppendStreamCtx(context.Background())
}

// AppendStreamCtx is AppendStream bounded by a context covering the whole
// stream's lifetime.
func (c *Client) AppendStreamCtx(ctx context.Context) (*AppendStream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/append?stream=1", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", wire.ContentTypeAppendStream)
	if a := c.accept(); a != "" {
		req.Header.Set("Accept", a)
	}
	forwardRequestID(ctx, req)
	s := &AppendStream{enc: wire.NewAppendStreamEncoder(pw), pw: pw, resp: make(chan appendStreamResp, 1)}
	go func() {
		resp, err := c.hc.Do(req)
		if err != nil {
			// Unblock any Send stuck writing into a dead transport.
			pr.CloseWithError(err)
		}
		s.resp <- appendStreamResp{resp: resp, err: err}
	}()
	return s, nil
}

// Send appends one untagged batch frame to the stream.
func (s *AppendStream) Send(events historygraph.EventList) error {
	return s.SendBatch(events, "")
}

// SendBatch is Send carrying an idempotency batch ID (the same semantics
// AppendBatchCtx gives a standalone append). A write error usually means
// the server aborted the stream early; Close returns its error body.
func (s *AppendStream) SendBatch(events historygraph.EventList, batch string) error {
	if s.done {
		return fmt.Errorf("server: send on a closed append stream")
	}
	if cap(s.scratch) < len(events) {
		s.scratch = make([]EventJSON, 0, len(events))
	}
	body := s.scratch[:0]
	for _, ev := range events {
		body = append(body, EventToJSON(ev))
	}
	s.scratch = body
	return s.enc.Events(batch, body)
}

// Close writes the end frame, completes the request, and returns the
// server's aggregated result for the whole stream. It must be called
// exactly once; after an error it still consumes the connection.
func (s *AppendStream) Close() (*AppendResult, error) {
	if s.done {
		return nil, fmt.Errorf("server: append stream closed twice")
	}
	s.done = true
	endErr := s.enc.End()
	s.pw.Close()
	r := <-s.resp
	if r.err != nil {
		return nil, r.err
	}
	var out AppendResult
	if err := decodeResponse(r.resp, &out); err != nil {
		// The server's error body explains an abort better than the local
		// broken-pipe the abort caused.
		return nil, err
	}
	if endErr != nil {
		return nil, endErr
	}
	return &out, nil
}
