package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"historygraph"
	"historygraph/internal/wire"
)

// Client is a small Go client for the query service — what cmd/dgquery's
// -remote mode, load drivers, and the shard coordinator's fan-out use. It
// speaks to an unsharded dgserve and to a shard coordinator transparently:
// the wire types are identical, and scatter-gather responses surface any
// failed partitions in their Partial field.
//
// The client defaults to the JSON codec. SetWire("binary") switches the
// data plane to the compact binary encoding: requests advertise it via
// Accept and encode POST bodies with it, and responses are decoded by
// whatever Content-Type the server actually answered with. For reads
// that makes mixed versions safe — a server that does not speak binary
// just answers JSON. POST bodies are different: the server must
// understand the binary Content-Type, so select binary only against
// binary-aware servers (any build containing internal/wire); in a
// rolling upgrade, flip writers to binary after every server upgraded.
type Client struct {
	base   string
	hc     *http.Client
	codec  wire.Codec
	stream bool // advertise the chunked snapshot stream on reads
}

// NewClient returns a client for a dgserve base URL such as
// "http://localhost:8086".
func NewClient(base string) *Client {
	return &Client{
		base:  strings.TrimRight(base, "/"),
		hc:    &http.Client{Timeout: 60 * time.Second},
		codec: wire.JSON{},
	}
}

// NewClientHTTP is NewClient with a caller-supplied http.Client (the shard
// coordinator shares one transport across partitions and bounds each
// request with a context instead of the client-wide timeout).
func NewClientHTTP(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc, codec: wire.JSON{}}
}

// BaseURL returns the server base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// SetWire selects the wire codec by name ("json", "binary", or "stream")
// and returns the client for chaining. "stream" is the binary codec plus
// the chunked snapshot stream on reads: full /snapshot responses arrive
// as bounded element runs decoded incrementally off the socket instead
// of one whole-message body. Against a server that does not stream, the
// Accept value degrades to whole-message binary transparently (the
// stream MIME type textually contains the binary one).
func (c *Client) SetWire(name string) (*Client, error) {
	if n := strings.ToLower(strings.TrimSpace(name)); n == wire.NameBinaryStream || n == "binary-stream" {
		c.codec = wire.Binary{}
		c.stream = true
		return c, nil
	}
	codec, err := wire.ByName(name)
	if err != nil {
		return c, err
	}
	c.codec = codec
	c.stream = false
	return c, nil
}

// Wire reports the selected codec name ("stream" when the chunked
// snapshot stream is on).
func (c *Client) Wire() string {
	if c.stream {
		return wire.NameBinaryStream
	}
	return c.codec.Name()
}

// accept returns the Accept header value the selected wire mode
// advertises ("" for plain JSON).
func (c *Client) accept() string {
	if c.stream {
		return wire.ContentTypeBinaryStream
	}
	if c.codec.Name() != wire.NameJSON {
		return c.codec.ContentType()
	}
	return ""
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if a := c.accept(); a != "" {
		req.Header.Set("Accept", a)
	}
	forwardRequestID(ctx, req)
	forwardEpoch(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// forwardRequestID propagates the request ID the middleware threaded
// through ctx onto an outgoing request, so a coordinator's scatter legs
// reach the workers carrying the client-visible ID.
func forwardRequestID(ctx context.Context, req *http.Request) {
	if id := RequestIDFrom(ctx); id != "" {
		req.Header.Set(RequestIDHeader, id)
	}
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	codec := wire.Codec(c.codec)
	buf, err := codec.Encode(body)
	if err != nil {
		// The selected codec has no encoding for this body (e.g. a shape
		// the binary format does not cover): fall back to JSON.
		codec = wire.JSON{}
		if buf, err = codec.Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", codec.ContentType())
	if a := c.accept(); a != "" {
		req.Header.Set("Accept", a)
	}
	forwardRequestID(ctx, req)
	forwardEpoch(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// HTTPError is a non-200 answer from the server. It preserves the status
// code so callers can tell a deliberate rejection (4xx — the server is
// healthy and said no) from a failure worth retrying or failing over on.
type HTTPError struct {
	Status int
	Msg    string // the server's error body, "" when it sent none
}

func (e *HTTPError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("server: HTTP %d", e.Status)
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	// 202 is a success: an accepted asynchronous analytics job.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		// Error bodies are always JSON, regardless of the negotiated codec.
		var ej errorJSON
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(raw, &ej) == nil && ej.Error != "" {
			return &HTTPError{Status: resp.StatusCode, Msg: ej.Error}
		}
		return &HTTPError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
	}
	// Decode with whatever codec the server answered in — the negotiated
	// one for data-plane endpoints, JSON for everything else. A chunked
	// snapshot stream is decoded incrementally off the body (the client
	// never holds the encoded bytes and the assembled struct at once);
	// check for it before the prefix-matched whole-message types, whose
	// binary MIME type the stream type extends.
	ct := resp.Header.Get("Content-Type")
	if wire.IsStreamContentType(ct) {
		snap, ok := out.(*SnapshotJSON)
		if !ok {
			return fmt.Errorf("server answered a snapshot stream for a %T", out)
		}
		got, err := wire.DecodeSnapshotStream(resp.Body)
		if err != nil {
			return err
		}
		*snap = *got
		return nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return wire.ForContentType(ct).Decode(data, out)
}

func timeQuery(ts []historygraph.Time) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = strconv.FormatInt(int64(t), 10)
	}
	return strings.Join(parts, ",")
}

func snapshotQuery(t string, attrs string, full bool) url.Values {
	q := url.Values{"t": {t}}
	if attrs != "" {
		q.Set("attrs", attrs)
	}
	if full {
		q.Set("full", "1")
	}
	return q
}

// Snapshot retrieves the graph as of time t. full includes the element
// lists, not just counts.
func (c *Client) Snapshot(t historygraph.Time, attrs string, full bool) (*SnapshotJSON, error) {
	return c.SnapshotCtx(context.Background(), t, attrs, full)
}

// SnapshotCtx is Snapshot bounded by a context (the coordinator's
// per-partition timeout).
func (c *Client) SnapshotCtx(ctx context.Context, t historygraph.Time, attrs string, full bool) (*SnapshotJSON, error) {
	var out SnapshotJSON
	if err := c.get(ctx, "/snapshot", snapshotQuery(strconv.FormatInt(int64(t), 10), attrs, full), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SnapshotStream is a live full-snapshot response consumed run by run:
// the caller holds at most one element run at a time, never the whole
// snapshot. When the server answered whole-message instead (an older
// build, or a JSON worker), the decoded snapshot is replayed as
// synthetic runs so consumers see one shape either way — the memory
// bound then holds only for genuinely streamed responses.
type SnapshotStream struct {
	body io.ReadCloser       // nil for a synthetic (whole-message) stream
	dec  *wire.StreamDecoder // nil for a synthetic stream

	// synthetic replay state
	snap *SnapshotJSON
	pos  int // 0 = nodes, 1 = edges, 2 = summary, 3 = done
	off  int
}

// Next returns the next frame (node run, edge run, or terminating
// summary), io.EOF after the summary, or the underlying failure — a
// truncated stream (the producer died mid-response) is an error, never a
// silent short result.
func (ss *SnapshotStream) Next() (*wire.StreamFrame, error) {
	if ss.dec != nil {
		return ss.dec.Next()
	}
	const run = wire.DefaultRunSize
	switch ss.pos {
	case 0:
		if ss.off < len(ss.snap.Nodes) {
			hi := min(ss.off+run, len(ss.snap.Nodes))
			f := &wire.StreamFrame{Nodes: ss.snap.Nodes[ss.off:hi]}
			ss.off = hi
			return f, nil
		}
		ss.pos, ss.off = 1, 0
		fallthrough
	case 1:
		if ss.off < len(ss.snap.Edges) {
			hi := min(ss.off+run, len(ss.snap.Edges))
			f := &wire.StreamFrame{Edges: ss.snap.Edges[ss.off:hi]}
			ss.off = hi
			return f, nil
		}
		ss.pos = 2
		fallthrough
	case 2:
		ss.pos = 3
		sum := *ss.snap
		sum.Nodes, sum.Edges = nil, nil
		return &wire.StreamFrame{Summary: &sum}, nil
	default:
		return nil, io.EOF
	}
}

// Close releases the underlying connection. Always call it — an
// abandoned body would pin the transport's connection.
func (ss *SnapshotStream) Close() error {
	if ss.body != nil {
		return ss.body.Close()
	}
	return nil
}

// SnapshotStreamCtx retrieves the full graph as of time t as a chunked
// element-run stream (the shard coordinator's scatter legs consume these
// run by run so coordinator memory stays proportional to the run size,
// not the snapshot). The request advertises the stream Accept value;
// servers that do not stream degrade to a whole-message answer, which is
// wrapped into a synthetic stream.
func (c *Client) SnapshotStreamCtx(ctx context.Context, t historygraph.Time, attrs string) (*SnapshotStream, error) {
	u := c.base + "/snapshot?" + snapshotQuery(strconv.FormatInt(int64(t), 10), attrs, true).Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", wire.ContentTypeBinaryStream)
	forwardRequestID(ctx, req)
	forwardEpoch(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	ct := resp.Header.Get("Content-Type")
	if resp.StatusCode == http.StatusOK && wire.IsStreamContentType(ct) {
		dec, err := wire.NewStreamDecoder(resp.Body)
		if err != nil {
			resp.Body.Close()
			return nil, err
		}
		return &SnapshotStream{body: resp.Body, dec: dec}, nil
	}
	// Non-stream answer: reuse the whole-message decode (which also
	// surfaces non-200s as *HTTPError) and replay it synthetically.
	var snap SnapshotJSON
	if err := decodeResponse(resp, &snap); err != nil {
		return nil, err
	}
	return &SnapshotStream{snap: &snap}, nil
}

// Snapshots retrieves many timepoints in one request; the server executes
// them as a single multipoint plan.
func (c *Client) Snapshots(ts []historygraph.Time, attrs string, full bool) ([]SnapshotJSON, error) {
	return c.SnapshotsCtx(context.Background(), ts, attrs, full)
}

// SnapshotsCtx is Snapshots bounded by a context.
func (c *Client) SnapshotsCtx(ctx context.Context, ts []historygraph.Time, attrs string, full bool) ([]SnapshotJSON, error) {
	var out []SnapshotJSON
	if err := c.get(ctx, "/batch", snapshotQuery(timeQuery(ts), attrs, full), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Neighbors retrieves a node's neighborhood as of time t.
func (c *Client) Neighbors(t historygraph.Time, node historygraph.NodeID, attrs string) (*NeighborsJSON, error) {
	return c.NeighborsCtx(context.Background(), t, node, attrs)
}

// NeighborsCtx is Neighbors bounded by a context.
func (c *Client) NeighborsCtx(ctx context.Context, t historygraph.Time, node historygraph.NodeID, attrs string) (*NeighborsJSON, error) {
	q := url.Values{
		"t":    {strconv.FormatInt(int64(t), 10)},
		"node": {strconv.FormatInt(int64(node), 10)},
	}
	if attrs != "" {
		q.Set("attrs", attrs)
	}
	var out NeighborsJSON
	if err := c.get(ctx, "/neighbors", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Interval retrieves the elements added during [from, to) and the
// transient events in that window.
func (c *Client) Interval(from, to historygraph.Time, attrs string, full bool) (*IntervalJSON, error) {
	return c.IntervalCtx(context.Background(), from, to, attrs, full)
}

// IntervalCtx is Interval bounded by a context.
func (c *Client) IntervalCtx(ctx context.Context, from, to historygraph.Time, attrs string, full bool) (*IntervalJSON, error) {
	q := url.Values{
		"from": {strconv.FormatInt(int64(from), 10)},
		"to":   {strconv.FormatInt(int64(to), 10)},
	}
	if attrs != "" {
		q.Set("attrs", attrs)
	}
	if full {
		q.Set("full", "1")
	}
	var out IntervalJSON
	if err := c.get(ctx, "/interval", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Expr evaluates a TimeExpression query, e.g. Expr(ExprRequest{Times:
// []int64{100, 200}, Expr: "0 & !1"}) for "present at 100 but gone by 200".
func (c *Client) Expr(req ExprRequest) (*SnapshotJSON, error) {
	return c.ExprCtx(context.Background(), req)
}

// ExprCtx is Expr bounded by a context.
func (c *Client) ExprCtx(ctx context.Context, req ExprRequest) (*SnapshotJSON, error) {
	var out SnapshotJSON
	if err := c.post(ctx, "/expr", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Append records a run of events against the live database.
func (c *Client) Append(events historygraph.EventList) (*AppendResult, error) {
	return c.AppendCtx(context.Background(), events)
}

// AppendCtx is Append bounded by a context.
func (c *Client) AppendCtx(ctx context.Context, events historygraph.EventList) (*AppendResult, error) {
	return c.AppendBatchCtx(ctx, events, "")
}

// AppendBatchCtx is AppendCtx carrying an idempotency batch ID. A
// WAL-backed replica node (internal/replica) remembers the IDs of batches
// it has durably logged — including batches mirrored from a former
// primary — so retrying the same batch after a failover or a lost
// response acks without appending twice. Servers without a WAL ignore the
// ID; an empty ID is an ordinary append.
func (c *Client) AppendBatchCtx(ctx context.Context, events historygraph.EventList, batch string) (*AppendResult, error) {
	body := make([]EventJSON, len(events))
	for i, ev := range events {
		body[i] = EventToJSON(ev)
	}
	path := "/append"
	if batch != "" {
		path += "?batch=" + url.QueryEscape(batch)
	}
	var out AppendResult
	if err := c.post(ctx, path, body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches index, pool, and serving-layer statistics.
func (c *Client) Stats() (*StatsJSON, error) {
	return c.StatsCtx(context.Background())
}

// StatsCtx is Stats bounded by a context.
func (c *Client) StatsCtx(ctx context.Context) (*StatsJSON, error) {
	var out StatsJSON
	if err := c.get(ctx, "/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks GET /healthz; nil means the server answered ok.
func (c *Client) Health() error {
	return c.HealthCtx(context.Background())
}

// HealthCtx is Health bounded by a context.
func (c *Client) HealthCtx(ctx context.Context) error {
	var out map[string]any
	return c.get(ctx, "/healthz", nil, &out)
}

// ReadyCtx checks GET /readyz; nil means the server is ready to take
// traffic (for a replica node: in sync with its primary).
func (c *Client) ReadyCtx(ctx context.Context) error {
	var out map[string]any
	return c.get(ctx, "/readyz", nil, &out)
}

// SlotsCtx fetches the worker's installed slot ownership.
func (c *Client) SlotsCtx(ctx context.Context) (*SlotsJSON, error) {
	var out SlotsJSON
	if err := c.get(ctx, "/admin/slots", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SetSlotsCtx installs a slot ownership state on the worker (the
// coordinator's cutover push).
func (c *Client) SetSlotsCtx(ctx context.Context, cfg SlotsJSON) error {
	var out map[string]any
	return c.post(ctx, "/admin/slots", cfg, &out)
}
