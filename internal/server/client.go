package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"historygraph"
	"historygraph/internal/wire"
)

// Client is a small Go client for the query service — what cmd/dgquery's
// -remote mode, load drivers, and the shard coordinator's fan-out use. It
// speaks to an unsharded dgserve and to a shard coordinator transparently:
// the wire types are identical, and scatter-gather responses surface any
// failed partitions in their Partial field.
//
// The client defaults to the JSON codec. SetWire("binary") switches the
// data plane to the compact binary encoding: requests advertise it via
// Accept and encode POST bodies with it, and responses are decoded by
// whatever Content-Type the server actually answered with. For reads
// that makes mixed versions safe — a server that does not speak binary
// just answers JSON. POST bodies are different: the server must
// understand the binary Content-Type, so select binary only against
// binary-aware servers (any build containing internal/wire); in a
// rolling upgrade, flip writers to binary after every server upgraded.
type Client struct {
	base  string
	hc    *http.Client
	codec wire.Codec
}

// NewClient returns a client for a dgserve base URL such as
// "http://localhost:8086".
func NewClient(base string) *Client {
	return &Client{
		base:  strings.TrimRight(base, "/"),
		hc:    &http.Client{Timeout: 60 * time.Second},
		codec: wire.JSON{},
	}
}

// NewClientHTTP is NewClient with a caller-supplied http.Client (the shard
// coordinator shares one transport across partitions and bounds each
// request with a context instead of the client-wide timeout).
func NewClientHTTP(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc, codec: wire.JSON{}}
}

// BaseURL returns the server base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// SetWire selects the wire codec by name ("json" or "binary") and returns
// the client for chaining.
func (c *Client) SetWire(name string) (*Client, error) {
	codec, err := wire.ByName(name)
	if err != nil {
		return c, err
	}
	c.codec = codec
	return c, nil
}

// Wire reports the selected codec name.
func (c *Client) Wire() string { return c.codec.Name() }

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if c.codec.Name() != wire.NameJSON {
		req.Header.Set("Accept", c.codec.ContentType())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	codec := wire.Codec(c.codec)
	buf, err := codec.Encode(body)
	if err != nil {
		// The selected codec has no encoding for this body (e.g. a shape
		// the binary format does not cover): fall back to JSON.
		codec = wire.JSON{}
		if buf, err = codec.Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", codec.ContentType())
	if c.codec.Name() != wire.NameJSON {
		req.Header.Set("Accept", c.codec.ContentType())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// HTTPError is a non-200 answer from the server. It preserves the status
// code so callers can tell a deliberate rejection (4xx — the server is
// healthy and said no) from a failure worth retrying or failing over on.
type HTTPError struct {
	Status int
	Msg    string // the server's error body, "" when it sent none
}

func (e *HTTPError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("server: HTTP %d", e.Status)
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error bodies are always JSON, regardless of the negotiated codec.
		var ej errorJSON
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(raw, &ej) == nil && ej.Error != "" {
			return &HTTPError{Status: resp.StatusCode, Msg: ej.Error}
		}
		return &HTTPError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
	}
	// Decode with whatever codec the server answered in — the negotiated
	// one for data-plane endpoints, JSON for everything else.
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return wire.ForContentType(resp.Header.Get("Content-Type")).Decode(data, out)
}

func timeQuery(ts []historygraph.Time) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = strconv.FormatInt(int64(t), 10)
	}
	return strings.Join(parts, ",")
}

func snapshotQuery(t string, attrs string, full bool) url.Values {
	q := url.Values{"t": {t}}
	if attrs != "" {
		q.Set("attrs", attrs)
	}
	if full {
		q.Set("full", "1")
	}
	return q
}

// Snapshot retrieves the graph as of time t. full includes the element
// lists, not just counts.
func (c *Client) Snapshot(t historygraph.Time, attrs string, full bool) (*SnapshotJSON, error) {
	return c.SnapshotCtx(context.Background(), t, attrs, full)
}

// SnapshotCtx is Snapshot bounded by a context (the coordinator's
// per-partition timeout).
func (c *Client) SnapshotCtx(ctx context.Context, t historygraph.Time, attrs string, full bool) (*SnapshotJSON, error) {
	var out SnapshotJSON
	if err := c.get(ctx, "/snapshot", snapshotQuery(strconv.FormatInt(int64(t), 10), attrs, full), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Snapshots retrieves many timepoints in one request; the server executes
// them as a single multipoint plan.
func (c *Client) Snapshots(ts []historygraph.Time, attrs string, full bool) ([]SnapshotJSON, error) {
	return c.SnapshotsCtx(context.Background(), ts, attrs, full)
}

// SnapshotsCtx is Snapshots bounded by a context.
func (c *Client) SnapshotsCtx(ctx context.Context, ts []historygraph.Time, attrs string, full bool) ([]SnapshotJSON, error) {
	var out []SnapshotJSON
	if err := c.get(ctx, "/batch", snapshotQuery(timeQuery(ts), attrs, full), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Neighbors retrieves a node's neighborhood as of time t.
func (c *Client) Neighbors(t historygraph.Time, node historygraph.NodeID, attrs string) (*NeighborsJSON, error) {
	return c.NeighborsCtx(context.Background(), t, node, attrs)
}

// NeighborsCtx is Neighbors bounded by a context.
func (c *Client) NeighborsCtx(ctx context.Context, t historygraph.Time, node historygraph.NodeID, attrs string) (*NeighborsJSON, error) {
	q := url.Values{
		"t":    {strconv.FormatInt(int64(t), 10)},
		"node": {strconv.FormatInt(int64(node), 10)},
	}
	if attrs != "" {
		q.Set("attrs", attrs)
	}
	var out NeighborsJSON
	if err := c.get(ctx, "/neighbors", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Interval retrieves the elements added during [from, to) and the
// transient events in that window.
func (c *Client) Interval(from, to historygraph.Time, attrs string, full bool) (*IntervalJSON, error) {
	return c.IntervalCtx(context.Background(), from, to, attrs, full)
}

// IntervalCtx is Interval bounded by a context.
func (c *Client) IntervalCtx(ctx context.Context, from, to historygraph.Time, attrs string, full bool) (*IntervalJSON, error) {
	q := url.Values{
		"from": {strconv.FormatInt(int64(from), 10)},
		"to":   {strconv.FormatInt(int64(to), 10)},
	}
	if attrs != "" {
		q.Set("attrs", attrs)
	}
	if full {
		q.Set("full", "1")
	}
	var out IntervalJSON
	if err := c.get(ctx, "/interval", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Expr evaluates a TimeExpression query, e.g. Expr(ExprRequest{Times:
// []int64{100, 200}, Expr: "0 & !1"}) for "present at 100 but gone by 200".
func (c *Client) Expr(req ExprRequest) (*SnapshotJSON, error) {
	return c.ExprCtx(context.Background(), req)
}

// ExprCtx is Expr bounded by a context.
func (c *Client) ExprCtx(ctx context.Context, req ExprRequest) (*SnapshotJSON, error) {
	var out SnapshotJSON
	if err := c.post(ctx, "/expr", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Append records a run of events against the live database.
func (c *Client) Append(events historygraph.EventList) (*AppendResult, error) {
	return c.AppendCtx(context.Background(), events)
}

// AppendCtx is Append bounded by a context.
func (c *Client) AppendCtx(ctx context.Context, events historygraph.EventList) (*AppendResult, error) {
	return c.AppendBatchCtx(ctx, events, "")
}

// AppendBatchCtx is AppendCtx carrying an idempotency batch ID. A
// WAL-backed replica node (internal/replica) remembers the IDs of batches
// it has durably logged — including batches mirrored from a former
// primary — so retrying the same batch after a failover or a lost
// response acks without appending twice. Servers without a WAL ignore the
// ID; an empty ID is an ordinary append.
func (c *Client) AppendBatchCtx(ctx context.Context, events historygraph.EventList, batch string) (*AppendResult, error) {
	body := make([]EventJSON, len(events))
	for i, ev := range events {
		body[i] = EventToJSON(ev)
	}
	path := "/append"
	if batch != "" {
		path += "?batch=" + url.QueryEscape(batch)
	}
	var out AppendResult
	if err := c.post(ctx, path, body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches index, pool, and serving-layer statistics.
func (c *Client) Stats() (*StatsJSON, error) {
	return c.StatsCtx(context.Background())
}

// StatsCtx is Stats bounded by a context.
func (c *Client) StatsCtx(ctx context.Context) (*StatsJSON, error) {
	var out StatsJSON
	if err := c.get(ctx, "/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks GET /healthz; nil means the server answered ok.
func (c *Client) Health() error {
	return c.HealthCtx(context.Background())
}

// HealthCtx is Health bounded by a context.
func (c *Client) HealthCtx(ctx context.Context) error {
	var out map[string]any
	return c.get(ctx, "/healthz", nil, &out)
}
