package server

// Worker-side analytics: the /analytics/* handlers every server exposes.
// Unsharded, a request computes the partition scan with parts=1 and
// merges the single part — the same code path the shard coordinator runs
// per partition, so sharded and single-process answers agree byte for
// byte. Sharded, the coordinator adds parts/self query parameters and the
// handler answers the raw mergeable part instead.
//
// Scans run over a materialized CSR snapshot (internal/csr) cached beside
// the view cache under the same generation guard; evolution diffs two
// pinned views directly because it needs edge identity, which the CSR
// drops.

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"historygraph"
	"historygraph/internal/analytics"
	"historygraph/internal/csr"
	"historygraph/internal/metrics"
	"historygraph/internal/pregel"
	"historygraph/internal/wire"
)

// DefaultCSRCacheSize is the CSR cache capacity when Config.CSRCacheSize
// is zero.
const DefaultCSRCacheSize = 16

// prJobTTL is how long an idle PageRank partition job survives between
// steps before the prune pass reclaims it — the backstop for jobs whose
// coordinator died mid-run.
const prJobTTL = 5 * time.Minute

// maxPRJobs bounds concurrently resident partition jobs; prepares beyond
// it are rejected rather than letting abandoned state accumulate.
const maxPRJobs = 64

// prJob is one PageRank job's partition-resident state between supersteps.
type prJob struct {
	pr   *pregel.PartitionPageRank
	last time.Time
}

// analyticsState is the server's analytics plane: the CSR cache and the
// PageRank partition job table.
type analyticsState struct {
	csr *csrCache // nil when disabled

	mu   sync.Mutex
	jobs map[string]*prJob

	jobsTotal  *metrics.CounterVec
	durations  *metrics.HistogramVec
	supersteps *metrics.Counter
}

// acquireCSR returns the CSR snapshot for (t, attrs), built from a pinned
// view on miss and cached under the view cache's invalidation rules.
// Concurrent identical builds coalesce on the flight group.
func (s *Server) acquireCSR(t historygraph.Time, attrs string) (*csr.Graph, bool, error) {
	if s.an.csr == nil {
		g, _, err := s.buildCSR(t, attrs)
		return g, false, err
	}
	key := "csr|" + cacheKey(t, attrs)
	if g, ok := s.an.csr.Get(key); ok {
		return g, true, nil
	}
	v, _, err := s.flights.Do(key, func() (any, error) {
		gen := s.an.csr.Gen()
		g, depCur, err := s.buildCSR(t, attrs)
		if err != nil {
			return nil, err
		}
		s.an.csr.Insert(key, t, depCur, g, gen)
		return g, nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*csr.Graph), false, nil
}

// buildCSR materializes one CSR from a freshly acquired view.
func (s *Server) buildCSR(t historygraph.Time, attrs string) (*csr.Graph, bool, error) {
	h, release, _, _, err := s.acquire(t, attrs)
	if err != nil {
		return nil, false, err
	}
	defer release()
	return csr.Build(h), h.DependsOnCurrent(), nil
}

// analyticsParams parses the common scan parameters. parts/self identify
// a coordinator leg (answer the raw part); absent, the handler merges
// locally.
func analyticsParams(r *http.Request) (attrs string, parts, self int, err error) {
	q := r.URL.Query()
	attrs = q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		return "", 0, 0, err
	}
	parts, self = 1, 0
	if p := q.Get("parts"); p != "" {
		if parts, err = strconv.Atoi(p); err != nil || parts < 1 {
			return "", 0, 0, fmt.Errorf("bad parts %q", p)
		}
		if self, err = strconv.Atoi(q.Get("self")); err != nil || self < 0 || self >= parts {
			return "", 0, 0, fmt.Errorf("bad self %q for %d parts", q.Get("self"), parts)
		}
	}
	return attrs, parts, self, nil
}

func (s *Server) handleAnalyticsDegree(w http.ResponseWriter, r *http.Request) {
	t, err := ParseTimeParam(r.URL.Query().Get("t"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	attrs, parts, self, err := analyticsParams(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	s.observeAnalytics("degree", func() error {
		g, cached, err := s.acquireCSR(t, attrs)
		if err != nil {
			WriteError(w, http.StatusUnprocessableEntity, err)
			return err
		}
		annotateCSR(r, cached)
		part := analytics.DegreePartOf(g, t, parts, self)
		part.Cached = cached
		if parts > 1 {
			WriteWire(w, r, http.StatusOK, part)
			return nil
		}
		WriteWire(w, r, http.StatusOK, analytics.MergeDegree(int64(t), []*wire.DegreePart{part}))
		return nil
	})
}

func (s *Server) handleAnalyticsComponents(w http.ResponseWriter, r *http.Request) {
	t, err := ParseTimeParam(r.URL.Query().Get("t"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	attrs, parts, self, err := analyticsParams(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	s.observeAnalytics("components", func() error {
		g, cached, err := s.acquireCSR(t, attrs)
		if err != nil {
			WriteError(w, http.StatusUnprocessableEntity, err)
			return err
		}
		annotateCSR(r, cached)
		part := analytics.ComponentsPartOf(g, t, parts, self)
		part.Cached = cached
		if parts > 1 {
			WriteWire(w, r, http.StatusOK, part)
			return nil
		}
		WriteWire(w, r, http.StatusOK, analytics.MergeComponents(int64(t), []*wire.ComponentsPart{part}))
		return nil
	})
}

func (s *Server) handleAnalyticsEvolution(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t1, err1 := ParseTimeParam(q.Get("t1"))
	t2, err2 := ParseTimeParam(q.Get("t2"))
	if err1 != nil || err2 != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("evolution wants numeric t1/t2"))
		return
	}
	attrs, parts, _, err := analyticsParams(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	s.observeAnalytics("evolution", func() error {
		g1, rel1, cached1, _, err := s.acquire(t1, attrs)
		if err != nil {
			WriteError(w, http.StatusUnprocessableEntity, err)
			return err
		}
		defer rel1()
		g2, rel2, cached2, _, err := s.acquire(t2, attrs)
		if err != nil {
			WriteError(w, http.StatusUnprocessableEntity, err)
			return err
		}
		defer rel2()
		part := analytics.EvolutionPartOf(g1, g2, t1, t2)
		part.Cached = cached1 && cached2
		if parts > 1 {
			WriteWire(w, r, http.StatusOK, part)
			return nil
		}
		WriteWire(w, r, http.StatusOK, analytics.MergeEvolution([]*wire.EvolutionPart{part}))
		return nil
	})
}

// NormalizePageRank fills a request's defaults in place — one place both
// the coordinator and the worker resolve them, so damping/iterations
// agree across every partition of a job.
func NormalizePageRank(req *wire.PageRankRequest) {
	if req.Damping == 0 {
		req.Damping = 0.85
	}
	if req.Iterations <= 0 {
		req.Iterations = 20
	}
	if req.TopK <= 0 {
		req.TopK = 20
	}
}

// handleAnalyticsPageRank computes PageRank synchronously over the local
// CSR — the whole graph on an unsharded server (the sharded oracle), one
// partition's subgraph otherwise (meaningless alone; the coordinator
// never calls this, it drives the superstep protocol instead).
func (s *Server) handleAnalyticsPageRank(w http.ResponseWriter, r *http.Request) {
	var req wire.PageRankRequest
	if err := ReadBody(r, &req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad pagerank body: %w", err))
		return
	}
	NormalizePageRank(&req)
	if _, err := historygraph.ParseAttrOptions(req.Attrs); err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	s.observeAnalytics("pagerank", func() error {
		g, cached, err := s.acquireCSR(historygraph.Time(req.T), req.Attrs)
		if err != nil {
			WriteError(w, http.StatusUnprocessableEntity, err)
			return err
		}
		annotateCSR(r, cached)
		scores := analytics.PageRank(g, req.Damping, req.Iterations)
		top := make([]wire.RankEntry, 0, req.TopK)
		for _, id := range analytics.TopK(scores, req.TopK) {
			top = append(top, wire.RankEntry{Node: int64(id), Score: scores[id]})
		}
		WriteWire(w, r, http.StatusOK, wire.PageRankResult{
			At: req.T, NumNodes: int64(g.NumNodes()),
			Damping: req.Damping, Iterations: req.Iterations,
			Supersteps: req.Iterations, Top: top,
		})
		return nil
	})
}

// --- PageRank partition job endpoints (coordinator-internal) ----------

// pruneJobsLocked drops partition jobs idle past the TTL.
func (a *analyticsState) pruneJobsLocked(now time.Time) {
	for id, j := range a.jobs {
		if now.Sub(j.last) > prJobTTL {
			delete(a.jobs, id)
		}
	}
}

func (s *Server) handlePRPrepare(w http.ResponseWriter, r *http.Request) {
	var req wire.PRPrepare
	if err := ReadBody(r, &req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad prepare body: %w", err))
		return
	}
	if req.Job == "" || req.Parts < 1 || req.Self < 0 || req.Self >= req.Parts {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad prepare job/parts/self"))
		return
	}
	g, cached, err := s.acquireCSR(historygraph.Time(req.T), req.Attrs)
	if err != nil {
		WriteError(w, http.StatusUnprocessableEntity, err)
		return
	}
	annotateCSR(r, cached)
	pr := pregel.NewPartitionPageRank(g, req.Parts, req.Self, req.Damping)
	pairs := analytics.BoundaryPairs(g, req.Parts, req.Self)
	s.an.mu.Lock()
	now := time.Now()
	s.an.pruneJobsLocked(now)
	if len(s.an.jobs) >= maxPRJobs {
		s.an.mu.Unlock()
		WriteError(w, http.StatusServiceUnavailable, fmt.Errorf("pagerank job table full (%d resident)", maxPRJobs))
		return
	}
	s.an.jobs[req.Job] = &prJob{pr: pr, last: now}
	s.an.mu.Unlock()
	WriteWire(w, r, http.StatusOK, wire.PRPrepared{
		Job: req.Job, Nodes: pr.NumVertices(), Pairs: pairs,
	})
}

// jobFor looks up one partition job, refreshing its idle clock.
func (s *Server) jobFor(id string) (*prJob, error) {
	s.an.mu.Lock()
	defer s.an.mu.Unlock()
	j, ok := s.an.jobs[id]
	if !ok {
		return nil, fmt.Errorf("unknown pagerank job %q (expired or never prepared)", id)
	}
	j.last = time.Now()
	return j, nil
}

func (s *Server) handlePRStart(w http.ResponseWriter, r *http.Request) {
	var req wire.PRStart
	if err := ReadBody(r, &req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad prstart body: %w", err))
		return
	}
	j, err := s.jobFor(req.Job)
	if err != nil {
		WriteError(w, http.StatusNotFound, err)
		return
	}
	j.pr.Start(req.N, req.Ghosts)
	WriteWire(w, r, http.StatusOK, wire.PRPrepared{Job: req.Job, Nodes: j.pr.NumVertices()})
}

func (s *Server) handlePRStep(w http.ResponseWriter, r *http.Request) {
	var req wire.PRStepRequest
	if err := ReadBody(r, &req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad prstep body: %w", err))
		return
	}
	j, err := s.jobFor(req.Job)
	if err != nil {
		WriteError(w, http.StatusNotFound, err)
		return
	}
	// One superstep: fold routed shares in, commit the pending round, then
	// scatter the next one. The collecting step (TopK set) releases the
	// partition's job state.
	j.pr.Absorb(req.Inbox)
	if req.Finalize {
		j.pr.Finalize()
	}
	var res wire.PRStepResult
	if req.Compute {
		res.Out = j.pr.Compute()
	}
	s.an.supersteps.Inc()
	if req.TopK > 0 {
		res.Top = j.pr.TopK(req.TopK)
		res.NumNodes = j.pr.NumVertices()
		s.an.mu.Lock()
		delete(s.an.jobs, req.Job)
		s.an.mu.Unlock()
	}
	WriteWire(w, r, http.StatusOK, res)
}

// observeAnalytics wraps one analytics execution with the jobs/duration
// metrics: status "ok" or "error", duration observed per kind.
func (s *Server) observeAnalytics(kind string, fn func() error) {
	start := time.Now()
	err := fn()
	status := "ok"
	if err != nil {
		status = "error"
	}
	s.an.jobsTotal.With(kind, status).Inc()
	s.an.durations.With(kind).Observe(time.Since(start).Seconds())
}

// annotateCSR tags the request trace with the CSR cache verdict.
func annotateCSR(r *http.Request, cached bool) {
	if cached {
		Annotate(r.Context(), "csr", "hit")
	} else {
		Annotate(r.Context(), "csr", "miss")
	}
}
