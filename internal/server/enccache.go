package server

import (
	"container/list"
	"sync"

	"historygraph"
	"historygraph/internal/wire"
)

// encCache is the worker-side encoded-bytes cache: a small LRU over fully
// encoded /snapshot response bodies, keyed by (timepoint, attribute-spec,
// full flag, encoding name). It sits one layer below the hot-snapshot
// view cache: the view cache makes a hot timepoint cost zero plan
// executions, this cache makes it cost zero *encode* executions too — a
// hit is a single Write of the stored bytes, mirroring the coordinator's
// merged-response cache (internal/shard.coCache) one layer down.
//
// Invalidation is shared with the hot-snapshot LRU: Server.ApplyEvents —
// the single append-application path, used by the HTTP handler and the
// replication subsystem alike — invalidates both caches from the same
// earliest-appended timestamp, and the same generation-counter guard
// keeps a response that was built while an append ran from being
// registered afterwards. Entries whose view depended on the current
// graph (depCur) are evicted on ANY append, exactly like their view-cache
// counterparts.
type encCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // values are *encEntry
	lru      *list.List               // front = most recently used
	gen      int64

	counters cacheCounters
}

// maxEncodedBody bounds the size of one admitted body (the streaming
// path tees its frames into a capture buffer to feed this cache, so the
// cap is wire's shared capture limit).
const maxEncodedBody = wire.MaxCachedBody

// encEntry is one cached encoded response body.
type encEntry struct {
	key         string
	at          historygraph.Time
	depCur      bool // view read through the current graph: any append kills it
	body        []byte
	contentType string
}

func newEncCache(capacity int, counters cacheCounters) *encCache {
	return &encCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		counters: counters,
	}
}

// Get returns the cached body and content type for key.
func (c *encCache) Get(key string) ([]byte, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		c.counters.misses.Inc()
		return nil, "", false
	}
	ent := elem.Value.(*encEntry)
	c.lru.MoveToFront(elem)
	c.counters.hits.Inc()
	return ent.body, ent.contentType, true
}

// Gen returns the invalidation generation; snapshot it before the view
// retrieval and pass it to Insert.
func (c *encCache) Gen() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Insert registers an encoded body, unless an invalidation pass ran since
// gen was snapshotted (the body may predate events an append already made
// visible) or the body exceeds the admission cap.
func (c *encCache) Insert(key string, at historygraph.Time, depCur bool, body []byte, contentType string, gen int64) {
	if len(body) > maxEncodedBody {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	ent := &encEntry{key: key, at: at, depCur: depCur, body: body, contentType: contentType}
	if elem, dup := c.entries[key]; dup {
		elem.Value = ent
		c.lru.MoveToFront(elem)
		return
	}
	c.entries[key] = c.lru.PushFront(ent)
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*encEntry).key)
		c.lru.Remove(back)
		c.counters.evictions.Inc()
	}
}

// InvalidateFrom evicts every entry whose timepoint is >= t, plus every
// current-dependent entry, and bumps the generation so overlapping
// response builds do not register (same rules as snapCache.InvalidateFrom
// — the two run back to back from ApplyEvents).
func (c *encCache) InvalidateFrom(t historygraph.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	n := 0
	for elem := c.lru.Front(); elem != nil; {
		next := elem.Next()
		if ent := elem.Value.(*encEntry); ent.at >= t || ent.depCur {
			delete(c.entries, ent.key)
			c.lru.Remove(elem)
			n++
		}
		elem = next
	}
	return n
}

// Purge evicts everything (server shutdown).
func (c *encCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	clear(c.entries)
}

// Len returns the number of resident bodies (the dg_cache_entries
// gauge reads it at scrape time).
func (c *encCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
