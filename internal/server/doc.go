// Package server is the concurrent snapshot query service: an HTTP layer
// over historygraph.GraphManager that many clients hit at once — the
// long-lived Historical Graph Index process the paper assumes
// (Section 3), exposed over the network.
//
// Three serving-layer mechanisms keep concurrent load off the DeltaGraph
// (the cache hierarchy across the whole system is mapped in
// docs/ARCHITECTURE.md):
//
//   - Request coalescing: concurrent retrievals of the same (timepoint,
//     attribute-spec) share one in-flight GetHistGraph execution instead
//     of racing N identical plan walks (FlightGroup).
//   - Hot-snapshot caching: an LRU of recently served GraphPool views,
//     kept resident with reference-counted pins, serves repeat queries at
//     popular timepoints with zero plan executions. Eviction releases the
//     view back to the pool, whose lazy cleaner reclaims the bits once
//     the last in-flight reader unpins.
//   - Encoded-bytes caching: an LRU of fully encoded /snapshot bodies,
//     one entry per (timepoint, attrs, full, encoding), so a hot
//     timepoint costs zero *encode* work too — a hit is a single write
//     of stored bytes (Server.Encodes counts encode executions; hits
//     leave it untouched).
//
// Large full=1 snapshot responses can additionally be answered as a
// chunked element-run stream (Accept:
// application/x-deltagraph-bin-stream): the handler walks the pinned
// view run by run through wire.StreamEncoder instead of materializing
// the whole response struct, bounding response-build memory by
// Config.StreamRun rather than the snapshot size.
//
// Endpoints:
//
//	GET  /snapshot?t=T[&attrs=SPEC][&full=1]        one timepoint
//	GET  /neighbors?t=T&node=N[&attrs=SPEC]         neighborhood at T
//	GET  /batch?t=T1,T2,...[&attrs=SPEC][&full=1]   multipoint (shared-delta plan)
//	GET  /interval?from=TS&to=TE[&attrs=SPEC][&full=1]
//	POST /expr    {"times":[...],"expr":"0 & !1",...}
//	POST /append  [{"type":"NN","at":1,"node":23}, ...]
//	GET  /stats   index + pool + serving-layer counters
//	GET  /healthz
//
// Concurrency and invalidation rules:
//
//   - A Server is safe for concurrent use; handlers share the two caches
//     under plain mutexes and counters are atomics.
//   - ApplyEvents is the single path by which events enter the node —
//     the HTTP append handler, WAL replay, and follower apply all call
//     it — and it invalidates both caches identically: appending with
//     earliest timestamp t evicts every entry at a timepoint >= t plus
//     every current-dependent entry, and bumps a generation counter so
//     responses built concurrently with the append cannot register
//     afterwards.
//   - The Go Client is safe for concurrent use after configuration;
//     SetWire is not synchronized with in-flight requests.
package server
