package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/datagen"
	"historygraph/internal/metrics"
)

// testCounters builds standalone cache counters for driving a cache
// directly, outside a server's registry.
func testCounters() cacheCounters {
	return cacheCounters{
		hits: new(metrics.Counter), misses: new(metrics.Counter), evictions: new(metrics.Counter),
	}
}

// testEvents is a small deterministic co-authorship trace.
func testEvents() historygraph.EventList {
	return datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 200, Edges: 600, Years: 4, AttrsPerNode: 2, Seed: 42,
	})
}

func newTestManager(t testing.TB) *historygraph.GraphManager {
	t.Helper()
	gm, err := historygraph.BuildFrom(testEvents(), historygraph.Options{
		LeafEventlistSize: 128,
		// Long cleaner interval: tests drive cleanup explicitly via
		// ForceClean so assertions are deterministic.
		CleanerInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.Close() })
	return gm
}

func newTestServer(t testing.TB, gm *historygraph.GraphManager, cfg Config) (*Server, *Client) {
	t.Helper()
	svc := New(gm, cfg)
	httpSrv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { httpSrv.Close(); svc.Close() })
	return svc, NewClient(httpSrv.URL)
}

// TestEndToEnd appends over the wire, queries remotely, and checks every
// response against the same query answered directly by the library.
func TestEndToEnd(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{})

	last := gm.LastTime()
	mid := last / 2

	// Singlepoint with attributes, full elements.
	snap, err := client.Snapshot(mid, "+node:all", true)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := gm.GetHistSnapshot(mid, "+node:all")
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != len(direct.Nodes) || snap.NumEdges != len(direct.Edges) {
		t.Fatalf("snapshot counts: got %d/%d, want %d/%d",
			snap.NumNodes, snap.NumEdges, len(direct.Nodes), len(direct.Edges))
	}
	if len(snap.Nodes) != len(direct.Nodes) {
		t.Fatalf("full response has %d nodes, want %d", len(snap.Nodes), len(direct.Nodes))
	}
	for _, n := range snap.Nodes {
		if _, ok := direct.Nodes[historygraph.NodeID(n.ID)]; !ok {
			t.Fatalf("remote node %d not in direct snapshot", n.ID)
		}
		for k, v := range direct.NodeAttrs[historygraph.NodeID(n.ID)] {
			if n.Attrs[k] != v {
				t.Fatalf("node %d attr %s: got %q want %q", n.ID, k, n.Attrs[k], v)
			}
		}
	}

	// Batch retrieval maps onto the multipoint plan.
	ts := []historygraph.Time{last / 4, last / 2, last}
	batch, err := client.Snapshots(ts, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ts) {
		t.Fatalf("batch returned %d snapshots, want %d", len(batch), len(ts))
	}
	for i, want := range ts {
		d, err := gm.GetHistSnapshot(want, "")
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].NumNodes != len(d.Nodes) || batch[i].NumEdges != len(d.Edges) {
			t.Fatalf("batch[%d] t=%d: got %d/%d, want %d/%d",
				i, want, batch[i].NumNodes, batch[i].NumEdges, len(d.Nodes), len(d.Edges))
		}
	}

	// Neighbors against a direct view.
	h, err := gm.GetHistGraph(mid, "")
	if err != nil {
		t.Fatal(err)
	}
	var probe historygraph.NodeID = -1
	for _, n := range h.Nodes() {
		if h.Degree(n) > 0 {
			probe = n
			break
		}
	}
	if probe >= 0 {
		neigh, err := client.Neighbors(mid, probe, "")
		if err != nil {
			t.Fatal(err)
		}
		if want := h.Degree(probe); neigh.Degree != want {
			t.Fatalf("degree of %d: got %d want %d", probe, neigh.Degree, want)
		}
		if want := len(h.Neighbors(probe)); len(neigh.Neighbors) != want {
			t.Fatalf("neighbors of %d: got %d want %d", probe, len(neigh.Neighbors), want)
		}
	}
	gm.Release(h)

	// Interval query.
	iv, err := client.Interval(0, mid, "", false)
	if err != nil {
		t.Fatal(err)
	}
	divRes, err := gm.GetHistGraphInterval(0, mid, "")
	if err != nil {
		t.Fatal(err)
	}
	if iv.NumNodes != len(divRes.Graph.Nodes) || iv.NumEdges != len(divRes.Graph.Edges) {
		t.Fatalf("interval: got %d/%d, want %d/%d",
			iv.NumNodes, iv.NumEdges, len(divRes.Graph.Nodes), len(divRes.Graph.Edges))
	}

	// TimeExpression: elements at mid still present at last.
	expr, err := client.Expr(ExprRequest{Times: []int64{int64(mid), int64(last)}, Expr: "0 & 1"})
	if err != nil {
		t.Fatal(err)
	}
	directExpr, err := gm.GetHistGraphExpr(historygraph.TimeExpression{
		Times: []historygraph.Time{mid, last},
		Expr:  historygraph.And{historygraph.Var(0), historygraph.Var(1)},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if expr.NumNodes != len(directExpr.Nodes) || expr.NumEdges != len(directExpr.Edges) {
		t.Fatalf("expr: got %d/%d, want %d/%d",
			expr.NumNodes, expr.NumEdges, len(directExpr.Nodes), len(directExpr.Edges))
	}

	// Live append over the wire, then re-query: the new node must appear.
	newT := last + 10
	res, err := client.Append(historygraph.EventList{
		{Type: historygraph.AddNode, At: newT, Node: 999999},
		{Type: historygraph.SetNodeAttr, At: newT, Node: 999999, Attr: "name", New: "zed", HasNew: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 2 || res.LastTime != int64(newT) {
		t.Fatalf("append result %+v", res)
	}
	after, err := client.Snapshot(newT, "+node:name", true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range after.Nodes {
		if n.ID == 999999 && n.Attrs["name"] == "zed" {
			found = true
		}
	}
	if !found {
		t.Fatal("appended node not visible in remote snapshot")
	}

	// Stats round-trips.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server.Requests == 0 || stats.Index.Leaves == 0 || stats.Pool.ActiveGraphs == 0 {
		t.Fatalf("implausible stats %+v", stats)
	}
}

// TestCoalescing proves N parallel identical queries trigger exactly one
// underlying retrieval: whichever requests overlap the first share its
// flight, and any that arrive after it completes hit the inserted cache
// entry — either way the DeltaGraph executes one plan.
func TestCoalescing(t *testing.T) {
	gm := newTestManager(t)
	svc, client := newTestServer(t, gm, Config{CacheSize: 16})

	target := gm.LastTime() / 2
	before := gm.IndexStats().PlanExecutions

	const N = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	var failures atomic.Int64
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := client.Snapshot(target, "+node:all", false); err != nil {
				failures.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed", failures.Load())
	}
	if got := svc.Retrievals(); got != 1 {
		t.Fatalf("N=%d parallel identical queries caused %d retrievals, want 1", N, got)
	}
	if got := gm.IndexStats().PlanExecutions - before; got != 1 {
		t.Fatalf("DeltaGraph executed %d plans, want 1", got)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// A late arrival is served by whichever layer catches it first: the
	// encoded-bytes cache (stored body, zero encode), the hot-snapshot
	// cache, or the shared flight.
	if stats.Server.Coalesced+stats.Server.CacheHits+stats.Server.EncodedHits != N-1 {
		t.Fatalf("coalesced (%d) + cache hits (%d) + encoded hits (%d) should cover the other %d requests",
			stats.Server.Coalesced, stats.Server.CacheHits, stats.Server.EncodedHits, N-1)
	}
}

// TestFlightGroup exercises the coalescing primitive directly: callers
// that arrive while a key is in flight share one execution.
func TestFlightGroup(t *testing.T) {
	var g FlightGroup
	var executions atomic.Int64
	gate := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		v, shared, err := g.Do("k", func() (any, error) {
			executions.Add(1)
			<-gate
			return 7, nil
		})
		if shared || v.(int) != 7 {
			leaderDone <- fmt.Errorf("leader got v=%v shared=%v", v, shared)
			return
		}
		leaderDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never entered flight")
		}
		time.Sleep(time.Millisecond)
	}

	const waiters = 8
	var wg sync.WaitGroup
	results := make(chan bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.Do("k", func() (any, error) {
				executions.Add(1)
				return -1, nil
			})
			results <- shared && err == nil && v.(int) == 7
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the waiters block on the flight
	close(gate)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1", executions.Load())
	}
	for i := 0; i < waiters; i++ {
		if !<-results {
			t.Fatal("a waiter did not share the leader's result")
		}
	}
	// A fresh call after completion executes again.
	_, shared, _ := g.Do("k", func() (any, error) { executions.Add(1); return 8, nil })
	if shared || executions.Load() != 2 {
		t.Fatal("post-completion call should have executed afresh")
	}
}

// TestCacheEvictionRefcount drives the LRU directly: eviction releases a
// view back to the pool, but a reader's pin defers reclamation until the
// reader finishes.
func TestCacheEvictionRefcount(t *testing.T) {
	gm := newTestManager(t)
	pool := gm.Pool()
	last := gm.LastTime()
	cache := newSnapCache(gm, 2, testCounters())

	get := func(t_ historygraph.Time) *historygraph.HistGraph {
		h, err := gm.GetHistGraph(t_, "")
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	key := func(i int) string { return fmt.Sprintf("k%d", i) }

	baseline := pool.Stats().ActiveGraphs
	h1, h2 := get(last/4), get(last/2)
	cache.Insert(key(1), last/4, h1, cache.Gen(), 0)
	cache.Insert(key(2), last/2, h2, cache.Gen(), 0)
	if got := pool.Stats().ActiveGraphs; got != baseline+2 {
		t.Fatalf("after 2 inserts: %d active graphs, want %d", got, baseline+2)
	}

	// Take a reader pin on h2, as a request in flight would.
	h2r, release2, ok := cache.Acquire(key(2), true)
	if !ok || h2r.ID() != h2.ID() {
		t.Fatal("acquire of resident entry failed")
	}
	wantNodes := h2r.NumNodes()

	// Inserting a third entry evicts the LRU entry — which is h1, since
	// the Acquire refreshed h2.
	h3 := get(last)
	cache.Insert(key(3), last, h3, cache.Gen(), 0)
	if _, _, ok := cache.Acquire(key(1), true); ok {
		t.Fatal("h1 should have been evicted")
	}
	// ForceClean reclaims the released entry (its elements may survive if
	// shared with other graphs, but the graph itself must go).
	gm.ForceClean()
	if got := pool.Stats().ActiveGraphs; got != baseline+2 {
		t.Fatalf("after eviction+clean: %d active graphs, want %d", got, baseline+2)
	}

	// Evict h2 while the reader still holds it: Release happens, but the
	// pin defers reclamation, so the view stays fully readable.
	h4 := get(last / 3)
	cache.Insert(key(4), last/3, h4, cache.Gen(), 0)
	if _, _, ok := cache.Acquire(key(2), true); ok {
		t.Fatal("h2 should have been evicted")
	}
	gm.ForceClean()
	if got := pool.Stats().ActiveGraphs; got != baseline+2+1 {
		t.Fatalf("pinned graph was reclaimed: %d active graphs, want %d", got, baseline+3)
	}
	if got := h2r.NumNodes(); got != wantNodes {
		t.Fatalf("pinned view changed under the reader: %d nodes, want %d", got, wantNodes)
	}
	if pool.Pins(h2.ID()) != 1 {
		t.Fatalf("expected exactly the reader's pin, got %d", pool.Pins(h2.ID()))
	}

	// Reader finishes: the next clean pass reclaims the evicted view.
	release2()
	gm.ForceClean()
	if got := pool.Stats().ActiveGraphs; got != baseline+2 {
		t.Fatalf("after reader release+clean: %d active graphs, want %d", got, baseline+2)
	}

	cache.Purge()
	gm.ForceClean()
	if got := pool.Stats().ActiveGraphs; got != baseline {
		t.Fatalf("after purge: %d active graphs, want baseline %d", got, baseline)
	}
	if size, ev := cache.Len(), cache.counters.evictions.Value(); size != 0 || ev != 2 {
		t.Fatalf("cache size %d evictions %d: want size 0, evictions 2", size, ev)
	}
}

// TestCacheHitSkipsPlanExecution proves a repeat query at a hot timepoint
// does not touch the DeltaGraph.
func TestCacheHitSkipsPlanExecution(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{CacheSize: 4})
	target := gm.LastTime() / 2

	if _, err := client.Snapshot(target, "", false); err != nil {
		t.Fatal(err)
	}
	before := gm.IndexStats().PlanExecutions
	for i := 0; i < 5; i++ {
		snap, err := client.Snapshot(target, "", false)
		if err != nil {
			t.Fatal(err)
		}
		if !snap.Cached {
			t.Fatalf("repeat query %d not served from cache", i)
		}
	}
	if got := gm.IndexStats().PlanExecutions - before; got != 0 {
		t.Fatalf("cache hits executed %d plans, want 0", got)
	}
	// A different attribute spec is a different cache key → one new plan.
	if _, err := client.Snapshot(target, "+node:all", false); err != nil {
		t.Fatal(err)
	}
	if got := gm.IndexStats().PlanExecutions - before; got != 1 {
		t.Fatalf("distinct attr spec executed %d plans, want 1", got)
	}
}

// TestAppendInvalidatesCache: appending events at time t evicts cached
// snapshots at or after t (their content changed) but keeps earlier ones.
func TestAppendInvalidatesCache(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{CacheSize: 8})
	last := gm.LastTime()
	early, tail := last/2, last+5

	if _, err := client.Snapshot(early, "", false); err != nil {
		t.Fatal(err)
	}
	// A query beyond the end of history is answered by the current graph
	// and would silently go stale after appends in the gap.
	snapTail, err := client.Snapshot(tail, "", false)
	if err != nil {
		t.Fatal(err)
	}

	res, err := client.Append(historygraph.EventList{
		{Type: historygraph.AddNode, At: last + 1, Node: 888888},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalidated != 1 {
		t.Fatalf("append invalidated %d entries, want 1 (the t=%d entry)", res.Invalidated, tail)
	}

	afterEarly, err := client.Snapshot(early, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if !afterEarly.Cached {
		t.Fatal("pre-append timepoint should still be cached")
	}
	afterTail, err := client.Snapshot(tail, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if afterTail.Cached {
		t.Fatal("post-append timepoint should have been invalidated")
	}
	if afterTail.NumNodes != snapTail.NumNodes+1 {
		t.Fatalf("stale tail snapshot: %d nodes, want %d", afterTail.NumNodes, snapTail.NumNodes+1)
	}
}

// TestAppendInvalidatesCurrentDependentView: a snapshot retrieved at the
// end of history is overlaid as exceptions against the current graph, so
// its membership reads the current graph's live bits. An append at ANY
// later time must evict it even though its own timepoint precedes the
// appended events — otherwise the cached view leaks future elements into
// the past.
func TestAppendInvalidatesCurrentDependentView(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{CacheSize: 8})
	last := gm.LastTime()

	// Precondition: a query at the end of history takes the
	// dependent-on-current overlay (zero records to apply).
	probe, err := gm.GetHistGraph(last, "")
	if err != nil {
		t.Fatal(err)
	}
	depCur := probe.DependsOnCurrent()
	gm.Release(probe)
	if !depCur {
		t.Skip("planner did not choose a current-dependent overlay; scenario not reachable")
	}

	snap, err := client.Snapshot(last, "", false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Append(historygraph.EventList{
		{Type: historygraph.AddNode, At: last + 100, Node: 777777},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The at >= last+100 rule alone would keep the t=last entry; the
	// current-dependency rule must evict it.
	if res.Invalidated == 0 {
		t.Fatal("append did not invalidate the current-dependent cached view")
	}
	after, err := client.Snapshot(last, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("stale current-dependent view served from cache after append")
	}
	if after.NumNodes != snap.NumNodes {
		t.Fatalf("snapshot at t=%d changed after a later append: %d nodes, want %d",
			last, after.NumNodes, snap.NumNodes)
	}
	for _, n := range after.Nodes {
		if n.ID == 777777 {
			t.Fatal("future node leaked into a past snapshot")
		}
	}
}

// TestBatchRegistersInCache: a multipoint batch registers its snapshots
// in the GraphPool and the hot-snapshot cache, so a repeat batch — or a
// singlepoint query at any of its timepoints — executes zero plans.
func TestBatchRegistersInCache(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{CacheSize: 16})
	last := gm.LastTime()
	ts := []historygraph.Time{last / 4, last / 2, last * 3 / 4}

	before := gm.IndexStats().PlanExecutions
	first, err := client.Snapshots(ts, "", false)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := gm.IndexStats().PlanExecutions
	if afterFirst == before {
		t.Fatal("cold batch executed no plans")
	}
	for i := range first {
		if first[i].Cached {
			t.Fatalf("cold batch snapshot %d claims cache hit", i)
		}
	}

	repeat, err := client.Snapshots(ts, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := gm.IndexStats().PlanExecutions; got != afterFirst {
		t.Fatalf("repeat batch executed %d plans, want 0", got-afterFirst)
	}
	for i := range repeat {
		if !repeat[i].Cached {
			t.Fatalf("repeat batch snapshot %d missed the cache", i)
		}
		if repeat[i].NumNodes != first[i].NumNodes || repeat[i].NumEdges != first[i].NumEdges {
			t.Fatalf("repeat batch snapshot %d diverged: %d/%d vs %d/%d", i,
				repeat[i].NumNodes, repeat[i].NumEdges, first[i].NumNodes, first[i].NumEdges)
		}
	}

	// The cache is shared across endpoints: a singlepoint query at a
	// batch timepoint is a hit too.
	single, err := client.Snapshot(ts[1], "", false)
	if err != nil {
		t.Fatal(err)
	}
	if !single.Cached {
		t.Fatal("singlepoint query at a batched timepoint missed the cache")
	}
	if got := gm.IndexStats().PlanExecutions; got != afterFirst {
		t.Fatalf("cross-endpoint hit executed %d plans, want 0", got-afterFirst)
	}

	// Duplicate timepoints within one batch resolve to one retrieval and
	// identical answers.
	dup, err := client.Snapshots([]historygraph.Time{last / 8, last / 8, ts[1]}, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if dup[0].NumNodes != dup[1].NumNodes || dup[0].NumEdges != dup[1].NumEdges {
		t.Fatalf("duplicate timepoints diverged: %+v vs %+v", dup[0], dup[1])
	}
	if !dup[2].Cached {
		t.Fatal("cached timepoint inside a mixed batch missed the cache")
	}

	// Appends still invalidate batch-registered entries at or after the
	// appended time; strictly earlier ones survive.
	tail := last + 5
	tb, err := client.Snapshots([]historygraph.Time{ts[0], tail}, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Append(historygraph.EventList{
		{Type: historygraph.AddNode, At: last + 1, Node: 777001},
	}); err != nil {
		t.Fatal(err)
	}
	post, err := client.Snapshots([]historygraph.Time{ts[0], tail}, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if !post[0].Cached {
		t.Fatal("append invalidated a batch entry before the appended time")
	}
	if post[1].Cached {
		t.Fatal("append left a stale batch entry after the appended time")
	}
	if post[1].NumNodes != tb[1].NumNodes+1 {
		t.Fatalf("stale batch snapshot: %d nodes, want %d", post[1].NumNodes, tb[1].NumNodes+1)
	}
}

// TestBatchAdmissionGuard: a batch with at least as many distinct
// timepoints as the LRU holds is served detached instead of flushing the
// whole hot set through the cache.
func TestBatchAdmissionGuard(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{CacheSize: 4})
	last := gm.LastTime()

	hot, err := client.Snapshot(last/2, "", false)
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]historygraph.Time, 8)
	for i := range ts {
		ts[i] = last * historygraph.Time(i+1) / 17
	}
	if _, err := client.Snapshots(ts, "", false); err != nil {
		t.Fatal(err)
	}
	// The big batch must not have evicted the hot entry...
	again, err := client.Snapshot(last/2, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.NumNodes != hot.NumNodes {
		t.Fatalf("oversized batch evicted the hot singlepoint entry (cached=%v)", again.Cached)
	}
	// ...and must not have registered its own timepoints either.
	repeat, err := client.Snapshots(ts, "", false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range repeat {
		if repeat[i].Cached {
			t.Fatalf("oversized batch timepoint %d was admitted to the cache", i)
		}
	}
}

// TestInsertRefusedAfterInvalidation: a view retrieved before an
// invalidation pass must not register afterwards — it may predate the
// events the pass declared visible.
func TestInsertRefusedAfterInvalidation(t *testing.T) {
	gm := newTestManager(t)
	cache := newSnapCache(gm, 4, testCounters())
	last := gm.LastTime()

	gen := cache.Gen()
	h, err := gm.GetHistGraph(last/2, "")
	if err != nil {
		t.Fatal(err)
	}
	cache.InvalidateFrom(last) // a concurrent append's pass
	if _, rel := cache.InsertAcquire("k", last/2, h, gen, 0); rel != nil {
		t.Fatal("stale view registered despite an intervening invalidation")
	}
	gm.Release(h)

	// A retrieval started after the pass registers normally.
	gen = cache.Gen()
	h2, err := gm.GetHistGraph(last/2, "")
	if err != nil {
		t.Fatal(err)
	}
	fh, rel := cache.InsertAcquire("k", last/2, h2, gen, 0)
	if rel == nil {
		t.Fatal("fresh view refused")
	}
	if fh.NumNodes() != h2.NumNodes() {
		t.Fatal("cached view diverged from inserted view")
	}
	rel()
	cache.Purge()
}

// TestParseTimeExpr covers the expression grammar.
func TestParseTimeExpr(t *testing.T) {
	member := []bool{true, false, true}
	cases := []struct {
		in   string
		want bool
	}{
		{"0", true},
		{"1", false},
		{"!1", true},
		{"0 & 1", false},
		{"0 & !1", true},
		{"0 | 1", true},
		{"(0 | 1) & 2", true},
		{"!(0 & 2)", false},
		{"0&!1&2", true},
	}
	for _, c := range cases {
		e, err := ParseTimeExpr(c.in, len(member))
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if got := e.Eval(member); got != c.want {
			t.Fatalf("%q over %v: got %v want %v", c.in, member, got, c.want)
		}
	}
	for _, bad := range []string{"", "3", "0 &", "(0", "0 # 1", "x", "99999999999999999999"} {
		if _, err := ParseTimeExpr(bad, len(member)); err == nil {
			t.Fatalf("%q: expected parse error", bad)
		}
	}
}

// TestRemoteMatchesDirectUnderConcurrency hammers the server from many
// goroutines with mixed hot and cold timepoints while events append, and
// verifies a final quiescent query against the library.
func TestRemoteMatchesDirectUnderConcurrency(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{CacheSize: 4})
	last := gm.LastTime()

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tp := last * historygraph.Time((w*20+i)%7+1) / 8
				if _, err := client.Snapshot(tp, "", false); err != nil {
					failures.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d concurrent queries failed", failures.Load())
	}

	probe := last / 8 * 3
	snap, err := client.Snapshot(probe, "", false)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := gm.GetHistSnapshot(probe, "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != len(direct.Nodes) || snap.NumEdges != len(direct.Edges) {
		t.Fatalf("remote %d/%d != direct %d/%d",
			snap.NumNodes, snap.NumEdges, len(direct.Nodes), len(direct.Edges))
	}
}
