package server

import (
	"container/list"
	"sync"
	"time"

	"historygraph"
	"historygraph/internal/metrics"
)

// cacheCounters are the registry-owned hit/miss/eviction counters one
// cache level charges; /stats reads the same counters /metrics exposes.
type cacheCounters struct {
	hits, misses, evictions *metrics.Counter
}

// snapCache is the hot-snapshot cache: an LRU keyed by (timepoint,
// attribute-spec) whose values are GraphPool views kept resident with a
// reference count. A cache hit serves a popular timepoint straight from
// the pool's overlaid bitmaps and skips DeltaGraph plan execution
// entirely.
//
// Reference counting uses the pool's Pin/Unpin: the cache holds one pin
// for as long as an entry is resident, and every reader takes an extra pin
// for the duration of its response. Eviction drops the cache's pin and
// calls Release — the pool's lazy cleaner (CleanNow) then reclaims the
// graph's bits as soon as the last reader unpins, never underneath one.
type snapCache struct {
	gm       *historygraph.GraphManager
	capacity int

	mu      sync.Mutex
	entries map[string]*list.Element // values are *cacheEntry
	lru     *list.List               // front = most recently used
	// gen counts invalidation passes. A retrieval that overlapped an
	// append must not register its view: the view may predate events the
	// invalidation already declared visible, and inserting it after the
	// pass would serve stale data as a cache hit. Callers snapshot Gen
	// before retrieving; InsertAcquire refuses when it moved.
	gen int64

	counters cacheCounters
}

type cacheEntry struct {
	key string
	at  historygraph.Time
	// depCur marks views overlaid as exceptions against the current
	// graph: they read the current graph's live bits, so ANY append
	// invalidates them regardless of timepoint.
	depCur bool
	// cost is how long the view's plan took to execute — the admission
	// weight: when the cache is full, eviction drops the cheapest of the
	// coldest entries, so an expensive plan's view survives a burst of
	// cheap one-off retrievals that would evict it under plain LRU.
	cost time.Duration
	h    *historygraph.HistGraph
}

// evictionWindow bounds how far from the LRU tail cost-aware eviction
// looks: the victim is the cheapest-to-rebuild entry among this many
// coldest ones. Recency still dominates — a hot expensive view is never
// examined — but within the cold tail, cost decides.
const evictionWindow = 8

func newSnapCache(gm *historygraph.GraphManager, capacity int, counters cacheCounters) *snapCache {
	return &snapCache{
		gm:       gm,
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		counters: counters,
	}
}

// Acquire returns the cached view for key with a reader pin taken; the
// release func drops the pin and must be called exactly once. count
// selects whether the lookup is charged to the hit/miss statistics (the
// post-coalescing re-lookup is not a cache verdict and passes false).
func (c *snapCache) Acquire(key string, count bool) (h *historygraph.HistGraph, release func(), ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, found := c.entries[key]
	if !found {
		if count {
			c.counters.misses.Inc()
		}
		return nil, nil, false
	}
	ent := elem.Value.(*cacheEntry)
	if err := c.gm.Pin(ent.h); err != nil {
		// The view was released out from under the cache (shutdown race);
		// drop the entry and report a miss.
		c.removeLocked(elem)
		if count {
			c.counters.misses.Inc()
		}
		return nil, nil, false
	}
	c.lru.MoveToFront(elem)
	if count {
		c.counters.hits.Inc()
	}
	return ent.h, func() { c.gm.Unpin(ent.h) }, true
}

// Gen returns the current invalidation generation; pass it to
// InsertAcquire after a retrieval that started at this generation.
func (c *snapCache) Gen() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// InsertAcquire hands a freshly retrieved view to the cache, which owns
// it from now on: the view is pinned until eviction, and eviction
// Releases it back to the pool. The returned view carries a reader pin
// (so the inserting request can serve it without a re-lookup that could
// race an eviction); release must be called once. If the key is already
// resident (a racing flight finished in between), the incoming duplicate
// is released and the resident view is returned instead. A nil release
// means the view was not cached — an invalidation pass ran since gen was
// snapshotted (the view may be stale) or pinning failed — and the caller
// still owns h.
func (c *snapCache) InsertAcquire(key string, at historygraph.Time, h *historygraph.HistGraph, gen int64, cost time.Duration) (*historygraph.HistGraph, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return nil, nil
	}
	if elem, dup := c.entries[key]; dup {
		ent := elem.Value.(*cacheEntry)
		if err := c.gm.Pin(ent.h); err == nil {
			c.gm.Release(h)
			c.lru.MoveToFront(elem)
			return ent.h, func() { c.gm.Unpin(ent.h) }
		}
		c.removeLocked(elem) // resident entry is defunct; replace it
	}
	if err := c.gm.Pin(h); err != nil { // the cache's own reference
		return nil, nil
	}
	ent := &cacheEntry{key: key, at: at, depCur: h.DependsOnCurrent(), cost: cost, h: h}
	c.entries[key] = c.lru.PushFront(ent)
	for c.lru.Len() > c.capacity {
		// The new entry is at the front and capacity >= 1, so eviction
		// can never pop the view we are about to hand out.
		c.removeLocked(c.victimLocked())
		c.counters.evictions.Inc()
	}
	c.gm.Pin(h) // the reader's reference; h is active, this cannot fail
	return h, func() { c.gm.Unpin(h) }
}

// victimLocked picks the eviction victim: the cheapest-cost entry among
// the evictionWindow coldest. The window never reaches the front entry
// (the one an insert is about to hand out) because it only runs while
// over capacity, so at least one entry beyond the window's reach exists.
func (c *snapCache) victimLocked() *list.Element {
	victim := c.lru.Back()
	best := victim.Value.(*cacheEntry).cost
	elem := victim
	for i := 1; i < evictionWindow; i++ {
		if elem = elem.Prev(); elem == nil || elem == c.lru.Front() {
			break
		}
		if ent := elem.Value.(*cacheEntry); ent.cost < best {
			victim, best = elem, ent.cost
		}
	}
	return victim
}

// Insert is InsertAcquire without keeping the reader reference.
func (c *snapCache) Insert(key string, at historygraph.Time, h *historygraph.HistGraph, gen int64, cost time.Duration) {
	if _, release := c.InsertAcquire(key, at, h, gen, cost); release != nil {
		release()
	}
}

// removeLocked evicts one entry: the cache pin is dropped and the view is
// released. Readers still holding pins keep the pool bits alive until
// their release funcs run; the lazy cleaner reclaims after that.
func (c *snapCache) removeLocked(elem *list.Element) {
	ent := elem.Value.(*cacheEntry)
	c.lru.Remove(elem)
	delete(c.entries, ent.key)
	c.gm.Unpin(ent.h)
	c.gm.Release(ent.h)
}

// InvalidateFrom evicts every entry whose timepoint is >= t, plus every
// view that depends on the current graph. Appending an event at time t
// changes what any snapshot at t or later must contain (history is
// append-only, so strictly earlier timepoints stay valid) — but a
// current-dependent view reads the mutated current-graph bits no matter
// what timepoint it answers for, so it can never survive an append.
func (c *snapCache) InvalidateFrom(t historygraph.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++ // in-flight retrievals that predate this pass must not register
	n := 0
	for elem := c.lru.Front(); elem != nil; {
		next := elem.Next()
		ent := elem.Value.(*cacheEntry)
		if ent.at >= t || ent.depCur {
			c.removeLocked(elem)
			n++
		}
		elem = next
	}
	return n
}

// setManager purges every entry — releasing the resident views through
// the manager that produced them — and points the cache at a replacement
// manager (automated re-seed). The generation bump refuses in-flight
// inserts whose retrievals ran against the old manager.
func (c *snapCache) setManager(gm *historygraph.GraphManager) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	for c.lru.Len() > 0 {
		c.removeLocked(c.lru.Back())
	}
	c.gm = gm
}

// Purge evicts everything (server shutdown).
func (c *snapCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.lru.Len() > 0 {
		c.removeLocked(c.lru.Back())
	}
}

// Len returns the number of resident entries (the dg_cache_entries
// gauge reads it at scrape time).
func (c *snapCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
