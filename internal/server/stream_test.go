package server

// Streaming /snapshot and the encoded-bytes cache: a streamed response
// must assemble to exactly what the whole-message path answers, an
// encoded-bytes hit must do zero encode work, and appends must
// invalidate encoded bodies under the same rules as the pinned views.

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"

	"historygraph"
	"historygraph/internal/wire"
)

// streamClient fetches one raw streamed snapshot.
func fetchStream(t *testing.T, base string, at historygraph.Time, attrs string) *SnapshotJSON {
	t.Helper()
	c := NewClient(base)
	if _, err := c.SetWire("stream"); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(at, attrs, true)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestStreamMatchesWholeMessage: the streamed full snapshot assembles to
// the same elements, counts, and attributes as the JSON and binary
// whole-message answers, across run sizes that do and do not divide the
// element counts.
func TestStreamMatchesWholeMessage(t *testing.T) {
	for _, runSize := range []int{1, 7, 1 << 20} {
		gm := newTestManager(t)
		svc := New(gm, Config{StreamRun: runSize})
		httpSrv := newHTTPServer(t, svc)
		mid := gm.LastTime() / 2

		want, err := NewClient(httpSrv).Snapshot(mid, "+node:all+edge:all", true)
		if err != nil {
			t.Fatal(err)
		}
		got := fetchStream(t, httpSrv, mid, "+node:all+edge:all")
		// Flags may differ (the whole-message request warmed the caches);
		// compare the data.
		got.Cached, got.Coalesced = want.Cached, want.Coalesced
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run=%d: streamed snapshot differs from whole-message\n got: %d/%d nodes/edges\nwant: %d/%d",
				runSize, got.NumNodes, got.NumEdges, want.NumNodes, want.NumEdges)
		}
		if len(got.Nodes) != got.NumNodes || len(got.Edges) != got.NumEdges {
			t.Fatalf("run=%d: counts disagree with elements", runSize)
		}
	}
}

// newHTTPServer wraps a Server in an httptest listener (newTestServer
// variant that exposes the URL for raw requests).
func newHTTPServer(t testing.TB, svc *Server) string {
	t.Helper()
	h := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { h.Close(); svc.Close() })
	return h.URL
}

// TestStreamContentTypeNegotiation: the stream is opt-in. A plain
// request, a binary request, and a stream request to the same endpoint
// answer with their own content types, and a stream Accept on a
// counts-only query degrades to whole-message binary.
func TestStreamContentTypeNegotiation(t *testing.T) {
	gm := newTestManager(t)
	svc := New(gm, Config{})
	base := newHTTPServer(t, svc)
	mid := gm.LastTime() / 2

	get := func(accept, url string) string {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		return resp.Header.Get("Content-Type")
	}
	full := base + "/snapshot?t=" + strconv.FormatInt(int64(mid), 10) + "&full=1"
	counts := base + "/snapshot?t=" + strconv.FormatInt(int64(mid), 10)
	if ct := get("", full); ct != wire.ContentTypeJSON {
		t.Fatalf("default full answer: %s", ct)
	}
	if ct := get(wire.ContentTypeBinary, full); ct != wire.ContentTypeBinary {
		t.Fatalf("binary full answer: %s", ct)
	}
	if ct := get(wire.ContentTypeBinaryStream, full); ct != wire.ContentTypeBinaryStream {
		t.Fatalf("stream full answer: %s", ct)
	}
	// Counts-only has nothing to chunk: the stream Accept value matches
	// the binary substring and the answer is whole-message binary.
	if ct := get(wire.ContentTypeBinaryStream, counts); ct != wire.ContentTypeBinary {
		t.Fatalf("stream counts answer: %s", ct)
	}
}

// TestEncodedCacheHitZeroEncode: the second identical request is served
// from the encoded-bytes cache — no view work, no encode execution, and
// the body says Cached. The worker-side analogue of
// TestCoordinatorCacheHitZeroEncode.
func TestEncodedCacheHitZeroEncode(t *testing.T) {
	gm := newTestManager(t)
	svc, client := newTestServer(t, gm, Config{})
	mid := gm.LastTime() / 2

	for _, wireName := range []string{"json", "binary", "stream"} {
		if _, err := client.SetWire(wireName); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Snapshot(mid, "", true); err != nil {
			t.Fatal(err)
		}
		before := svc.Encodes()
		snap, err := client.Snapshot(mid, "", true)
		if err != nil {
			t.Fatal(err)
		}
		if got := svc.Encodes() - before; got != 0 {
			t.Fatalf("%s: encoded-cache hit executed %d encodes, want 0", wireName, got)
		}
		if wireName != "stream" && !snap.Cached {
			// Whole-message hits replay the Cached=true variant; stream
			// hits replay the body as-is (documented).
			t.Fatalf("%s: encoded-cache hit not marked cached", wireName)
		}
		if snap.NumNodes == 0 {
			t.Fatalf("%s: empty hit body", wireName)
		}
	}
}

// TestEncodedCacheInvalidation: an append at time t evicts encoded bodies
// at or after t (and refreshes them on the next miss), while strictly
// earlier bodies keep hitting — the same cut the pinned-view cache makes.
func TestEncodedCacheInvalidation(t *testing.T) {
	gm := newTestManager(t)
	svc, client := newTestServer(t, gm, Config{})
	last := gm.LastTime()
	early, late := last/4, last

	warm := func(at historygraph.Time) *SnapshotJSON {
		t.Helper()
		snap, err := client.Snapshot(at, "", true)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	warm(early)
	warm(late)
	preLate := warm(late)
	steady := svc.Encodes()
	warm(early)
	if svc.Encodes() != steady {
		t.Fatal("warm-up did not reach steady encoded-cache hits")
	}

	// Append strictly after `early`, at the tail of history.
	if _, err := client.Append(historygraph.EventList{
		{Type: historygraph.AddNode, At: last + 1, Node: 999999},
	}); err != nil {
		t.Fatal(err)
	}

	before := svc.Encodes()
	if snap := warm(early); snap.NumNodes == 0 {
		t.Fatal("early snapshot empty")
	}
	if got := svc.Encodes() - before; got != 0 {
		t.Fatalf("append at %d evicted an encoded body at %d (%d encodes)", last+1, early, got)
	}
	afterLate := warm(late)
	if got := svc.Encodes() - before; got == 0 {
		t.Fatal("stale encoded body served after append")
	}
	// The late timepoint itself predates the appended event, so its data
	// is unchanged — but it must have been re-built, not replayed.
	preLate.Cached, afterLate.Cached = false, false
	preLate.Coalesced, afterLate.Coalesced = false, false
	if !reflect.DeepEqual(preLate, afterLate) {
		t.Fatal("re-built late snapshot differs from pre-append answer")
	}
}
