package server

// Analytics client surface: the public /analytics endpoints (served
// identically by an unsharded server and the shard coordinator) and the
// coordinator-internal partition-leg calls (part scans, PageRank job
// steps) the shard fan-out drives through the same Client.

import (
	"context"
	"net/url"
	"strconv"

	"historygraph"
	"historygraph/internal/wire"
)

func analyticsQuery(t historygraph.Time, attrs string) url.Values {
	q := url.Values{"t": {strconv.FormatInt(int64(t), 10)}}
	if attrs != "" {
		q.Set("attrs", attrs)
	}
	return q
}

// legQuery adds the coordinator-leg parameters that make a worker answer
// its raw mergeable part instead of a locally merged response.
func legQuery(q url.Values, parts, self int) url.Values {
	q.Set("parts", strconv.Itoa(parts))
	q.Set("self", strconv.Itoa(self))
	return q
}

// AnalyticsDegreeCtx fetches the degree distribution of the snapshot at t.
func (c *Client) AnalyticsDegreeCtx(ctx context.Context, t historygraph.Time, attrs string) (*wire.DegreeDist, error) {
	var out wire.DegreeDist
	if err := c.get(ctx, "/analytics/degree", analyticsQuery(t, attrs), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AnalyticsComponentsCtx fetches the connected-component size
// distribution of the snapshot at t.
func (c *Client) AnalyticsComponentsCtx(ctx context.Context, t historygraph.Time, attrs string) (*wire.Components, error) {
	var out wire.Components
	if err := c.get(ctx, "/analytics/components", analyticsQuery(t, attrs), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AnalyticsEvolutionCtx fetches the evolution counters between the
// snapshots at t1 and t2.
func (c *Client) AnalyticsEvolutionCtx(ctx context.Context, t1, t2 historygraph.Time, attrs string) (*wire.Evolution, error) {
	q := url.Values{
		"t1": {strconv.FormatInt(int64(t1), 10)},
		"t2": {strconv.FormatInt(int64(t2), 10)},
	}
	if attrs != "" {
		q.Set("attrs", attrs)
	}
	var out wire.Evolution
	if err := c.get(ctx, "/analytics/evolution", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AnalyticsPageRankCtx runs PageRank synchronously and returns the
// result. Against a coordinator, set req.Wait (or poll the job the
// returned JobStatus names via AnalyticsJobCtx by posting with
// AnalyticsPageRankJobCtx instead).
func (c *Client) AnalyticsPageRankCtx(ctx context.Context, req wire.PageRankRequest) (*wire.PageRankResult, error) {
	req.Wait = true
	var out wire.PageRankResult
	if err := c.post(ctx, "/analytics/pagerank", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AnalyticsPageRankJobCtx submits an asynchronous PageRank job to a
// coordinator and returns its initial status (state "running"); poll
// AnalyticsJobCtx until it reports done or failed.
func (c *Client) AnalyticsPageRankJobCtx(ctx context.Context, req wire.PageRankRequest) (*wire.JobStatus, error) {
	req.Wait = false
	var out wire.JobStatus
	if err := c.post(ctx, "/analytics/pagerank", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AnalyticsJobCtx polls one coordinator analytics job.
func (c *Client) AnalyticsJobCtx(ctx context.Context, id string) (*wire.JobStatus, error) {
	var out wire.JobStatus
	if err := c.get(ctx, "/analytics/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- coordinator-internal partition legs ------------------------------

// DegreePartCtx fetches one partition's raw degree-scan part.
func (c *Client) DegreePartCtx(ctx context.Context, t historygraph.Time, attrs string, parts, self int) (*wire.DegreePart, error) {
	var out wire.DegreePart
	if err := c.get(ctx, "/analytics/degree", legQuery(analyticsQuery(t, attrs), parts, self), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ComponentsPartCtx fetches one partition's raw component-scan part.
func (c *Client) ComponentsPartCtx(ctx context.Context, t historygraph.Time, attrs string, parts, self int) (*wire.ComponentsPart, error) {
	var out wire.ComponentsPart
	if err := c.get(ctx, "/analytics/components", legQuery(analyticsQuery(t, attrs), parts, self), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EvolutionPartCtx fetches one partition's raw evolution counters.
func (c *Client) EvolutionPartCtx(ctx context.Context, t1, t2 historygraph.Time, attrs string, parts, self int) (*wire.EvolutionPart, error) {
	q := url.Values{
		"t1": {strconv.FormatInt(int64(t1), 10)},
		"t2": {strconv.FormatInt(int64(t2), 10)},
	}
	if attrs != "" {
		q.Set("attrs", attrs)
	}
	var out wire.EvolutionPart
	if err := c.get(ctx, "/analytics/evolution", legQuery(q, parts, self), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PRPrepareCtx opens one partition's PageRank job leg.
func (c *Client) PRPrepareCtx(ctx context.Context, req wire.PRPrepare) (*wire.PRPrepared, error) {
	var out wire.PRPrepared
	if err := c.post(ctx, "/analytics/prepare", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PRStartCtx finishes one partition leg's setup with the global vertex
// count and its ghost pairs.
func (c *Client) PRStartCtx(ctx context.Context, req wire.PRStart) (*wire.PRPrepared, error) {
	var out wire.PRPrepared
	if err := c.post(ctx, "/analytics/prstart", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PRStepCtx drives one partition superstep.
func (c *Client) PRStepCtx(ctx context.Context, req wire.PRStepRequest) (*wire.PRStepResult, error) {
	var out wire.PRStepResult
	if err := c.post(ctx, "/analytics/prstep", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
