package server

import (
	"container/list"
	"sync"

	"historygraph"
	"historygraph/internal/csr"
)

// csrCache keeps materialized CSR snapshots for the analytics scan path,
// keyed like the hot-snapshot cache (timepoint, attribute-spec). It
// mirrors snapCache's invalidation contract exactly — same generation
// guard, same earliest-timestamp cut on append — but holds plain
// immutable memory instead of pinned pool views, so there is no reference
// counting: a handed-out *csr.Graph stays valid after eviction and the
// garbage collector reclaims it when the last scan drops it.
type csrCache struct {
	capacity int

	mu      sync.Mutex
	entries map[string]*list.Element // values are *csrEntry
	lru     *list.List               // front = most recently used
	gen     int64

	counters cacheCounters
}

type csrEntry struct {
	key string
	at  historygraph.Time
	// depCur marks CSRs built from current-dependent views; any append
	// invalidates them regardless of timepoint, like the view cache.
	depCur bool
	g      *csr.Graph
}

func newCSRCache(capacity int, counters cacheCounters) *csrCache {
	return &csrCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		counters: counters,
	}
}

// Get returns the cached CSR for key, counting the hit/miss verdict.
func (c *csrCache) Get(key string) (*csr.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, found := c.entries[key]
	if !found {
		c.counters.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(elem)
	c.counters.hits.Inc()
	return elem.Value.(*csrEntry).g, true
}

// Gen returns the invalidation generation; snapshot it before pinning the
// view a build reads from, and pass it to Insert.
func (c *csrCache) Gen() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Insert registers a built CSR. Like snapCache.InsertAcquire, it refuses
// when an invalidation pass ran since gen was snapshotted — the build may
// have read a view that predates events the pass declared visible.
func (c *csrCache) Insert(key string, at historygraph.Time, depCur bool, g *csr.Graph, gen int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	if elem, dup := c.entries[key]; dup {
		c.lru.MoveToFront(elem)
		return
	}
	c.entries[key] = c.lru.PushFront(&csrEntry{key: key, at: at, depCur: depCur, g: g})
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*csrEntry).key)
		c.counters.evictions.Inc()
	}
}

// InvalidateFrom evicts every CSR whose timepoint is >= t plus every
// current-dependent one, and bumps the generation — the same rule the
// view and encoded-bytes caches apply on append.
func (c *csrCache) InvalidateFrom(t historygraph.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	n := 0
	for elem := c.lru.Front(); elem != nil; {
		next := elem.Next()
		ent := elem.Value.(*csrEntry)
		if ent.at >= t || ent.depCur {
			c.lru.Remove(elem)
			delete(c.entries, ent.key)
			n++
		}
		elem = next
	}
	return n
}

// Purge drops everything (server shutdown).
func (c *csrCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
}

// Len returns the resident entry count.
func (c *csrCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
