// The Server type and its endpoint handlers (package overview in doc.go).
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/graph"
	"historygraph/internal/metrics"
	"historygraph/internal/wire"
)

// Config tunes the service.
type Config struct {
	// CacheSize is the number of hot snapshots the LRU keeps pinned in
	// the GraphPool. 0 picks the default (32); negative disables caching.
	CacheSize int
	// EncodedCacheSize is the capacity of the encoded-bytes cache: fully
	// encoded /snapshot bodies kept per (timepoint, attrs, full,
	// encoding), so a hot-timepoint hit is a single write with zero
	// encode work. 0 picks the default (64); negative disables it.
	EncodedCacheSize int
	// CSRCacheSize is the capacity of the materialized-CSR cache the
	// /analytics scan path reads (one entry per timepoint+attrs, built
	// from a pinned view, invalidated exactly like the view cache).
	// 0 picks the default (16); negative disables it.
	CSRCacheSize int
	// StreamRun is how many elements one chunked-stream frame carries on
	// the streaming /snapshot path; peak response-build memory is
	// proportional to it. 0 picks wire.DefaultRunSize.
	StreamRun int
	// Metrics is the registry the server registers its collectors on;
	// nil creates a private one. The replication node shares the
	// server's registry so one GET /metrics covers both layers.
	Metrics *metrics.Registry
	// SlowQueryThreshold, when positive, logs one line for every
	// request slower than it (method, endpoint, query, handler
	// annotations, status, duration, request ID). Zero disables the
	// log and its per-request trace allocation.
	SlowQueryThreshold time.Duration
}

// DefaultCacheSize is the hot-snapshot LRU capacity when Config.CacheSize
// is zero.
const DefaultCacheSize = 32

// DefaultEncodedCacheSize is the encoded-bytes cache capacity when
// Config.EncodedCacheSize is zero.
const DefaultEncodedCacheSize = 64

// Server serves snapshot queries over an embedded GraphManager.
type Server struct {
	// gm is swappable (ReplaceManager) so an automated replica re-seed
	// can rebuild the store underneath a running server; handlers load
	// it once per request and hold that manager for the request's life.
	gm      atomic.Pointer[historygraph.GraphManager]
	cache   *snapCache     // nil when caching is disabled
	enc     *encCache      // encoded-bytes cache; nil when disabled
	an      analyticsState // analytics plane: CSR cache + PageRank jobs
	flights FlightGroup
	mux     *http.ServeMux
	runSize int // elements per chunked-stream frame

	// slots is the installed slot-ownership state (nil = own every
	// slot); see slots.go for the resharding protocol it implements.
	slots      atomic.Pointer[slotOwnership]
	slotEpoch  *metrics.Gauge
	slotsOwned *metrics.Gauge

	// Every counter below lives in the metrics registry; /stats reads
	// the same collectors the /metrics exposition renders, so the two
	// surfaces cannot drift.
	reg        *metrics.Registry
	ins        *Instrumentation
	retrievals *metrics.Counter // underlying GetHistGraph executions
	encodes    *metrics.Counter // snapshot-body encode executions (encoded-cache hits do none)
}

// serverEndpoints is the endpoint-label whitelist for request metrics;
// it includes the replication endpoints a replica node layers on top so
// a node's mux shares this server's instrumentation.
var serverEndpoints = []string{
	"/snapshot", "/neighbors", "/batch", "/interval", "/expr", "/append",
	"/stats", "/healthz", "/readyz", "/metrics",
	"/replicate", "/replstatus", "/role",
	"/admin/slots", "/admin/migrate", "/admin/reseed",
	"/analytics/degree", "/analytics/components", "/analytics/evolution",
	"/analytics/pagerank", "/analytics/prepare", "/analytics/prstart",
	"/analytics/prstep",
}

// New wraps an open GraphManager in a query service. The caller keeps
// ownership of the GraphManager (Close it after the HTTP server stops);
// Server.Close only drops the cache's pinned views.
func New(gm *historygraph.GraphManager, cfg Config) *Server {
	s := &Server{}
	s.gm.Store(gm)
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s.reg = reg
	s.retrievals = reg.Counter("dg_retrievals_total", "Underlying GetHistGraph plan executions.")
	s.encodes = reg.Counter("dg_encodes_total", "Snapshot response-body encode executions.")
	hits := reg.CounterVec("dg_cache_hits_total", "Cache hits by cache level.", "cache")
	misses := reg.CounterVec("dg_cache_misses_total", "Cache misses by cache level.", "cache")
	evictions := reg.CounterVec("dg_cache_evictions_total", "Cache evictions by cache level.", "cache")
	entries := reg.GaugeVec("dg_cache_entries", "Resident entries by cache level.", "cache")
	capacity := reg.GaugeVec("dg_cache_capacity", "Configured capacity by cache level.", "cache")
	// The flight group is the fourth cache level: a hit is a request
	// served by another caller's in-flight execution.
	s.flights.Hits = hits.With("flight")
	s.flights.Misses = misses.With("flight")
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	if size > 0 {
		s.cache = newSnapCache(gm, size, cacheCounters{
			hits: hits.With("view"), misses: misses.With("view"), evictions: evictions.With("view"),
		})
		entries.Func(func() float64 { return float64(s.cache.Len()) }, "view")
		capacity.With("view").Set(float64(size))
	}
	encSize := cfg.EncodedCacheSize
	if encSize == 0 {
		encSize = DefaultEncodedCacheSize
	}
	if encSize > 0 {
		s.enc = newEncCache(encSize, cacheCounters{
			hits: hits.With("encoded"), misses: misses.With("encoded"), evictions: evictions.With("encoded"),
		})
		entries.Func(func() float64 { return float64(s.enc.Len()) }, "encoded")
		capacity.With("encoded").Set(float64(encSize))
	}
	csrSize := cfg.CSRCacheSize
	if csrSize == 0 {
		csrSize = DefaultCSRCacheSize
	}
	if csrSize > 0 {
		s.an.csr = newCSRCache(csrSize, cacheCounters{
			hits: hits.With("csr"), misses: misses.With("csr"), evictions: evictions.With("csr"),
		})
		entries.Func(func() float64 { return float64(s.an.csr.Len()) }, "csr")
		capacity.With("csr").Set(float64(csrSize))
	}
	s.an.jobs = make(map[string]*prJob)
	s.an.jobsTotal = reg.CounterVec("dg_analytics_jobs_total",
		"Analytics executions by kind and terminal status.", "kind", "status")
	s.an.durations = reg.HistogramVec("dg_analytics_duration_seconds",
		"Analytics execution wall time by kind.", nil, "kind")
	s.an.supersteps = reg.Counter("dg_analytics_supersteps_total",
		"PageRank partition supersteps executed.")
	s.slotEpoch = reg.Gauge("dg_slot_epoch",
		"Installed slot-routing epoch (0 until the coordinator pushes a table).")
	s.slotsOwned = reg.Gauge("dg_slots_owned",
		"Hash slots this worker owns (the full slot space until restricted).")
	s.slotsOwned.Set(float64(graph.NumSlots))
	s.runSize = cfg.StreamRun
	if s.runSize <= 0 {
		s.runSize = wire.DefaultRunSize
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /neighbors", s.handleNeighbors)
	mux.HandleFunc("GET /batch", s.handleBatch)
	mux.HandleFunc("GET /interval", s.handleInterval)
	mux.HandleFunc("POST /expr", s.handleExpr)
	mux.HandleFunc("POST /append", s.handleAppend)
	mux.HandleFunc("GET /analytics/degree", s.handleAnalyticsDegree)
	mux.HandleFunc("GET /analytics/components", s.handleAnalyticsComponents)
	mux.HandleFunc("GET /analytics/evolution", s.handleAnalyticsEvolution)
	mux.HandleFunc("POST /analytics/pagerank", s.handleAnalyticsPageRank)
	mux.HandleFunc("POST /analytics/prepare", s.handlePRPrepare)
	mux.HandleFunc("POST /analytics/prstart", s.handlePRStart)
	mux.HandleFunc("POST /analytics/prstep", s.handlePRStep)
	mux.HandleFunc("GET /admin/slots", s.handleSlotsGet)
	mux.HandleFunc("POST /admin/slots", s.handleSlotsPost)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// A bare worker is ready as soon as it serves; a replica node layers
	// its own /readyz (in-sync state) over this one on its outer mux.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	s.mux = mux
	s.ins = NewInstrumentation(reg, serverEndpoints, cfg.SlowQueryThreshold)
	return s
}

// Handler returns the service's HTTP handler, wrapped in the request
// instrumentation middleware.
func (s *Server) Handler() http.Handler {
	return s.ins.Wrap(s.mux)
}

// Metrics returns the server's metrics registry; the replication node
// registers its WAL and readiness collectors on it.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// InstrumentHandler wraps h in this server's request-metrics middleware.
// The replica node uses it so the replication endpoints it serves ahead
// of the server's mux are counted and traced identically.
func (s *Server) InstrumentHandler(h http.Handler) http.Handler {
	return s.ins.Wrap(h)
}

// Close evicts and releases every cached view. The underlying
// GraphManager is not closed.
func (s *Server) Close() {
	if s.cache != nil {
		s.cache.Purge()
	}
	if s.enc != nil {
		s.enc.Purge()
	}
	if s.an.csr != nil {
		s.an.csr.Purge()
	}
}

// Retrievals reports how many times the server actually executed
// GetHistGraph (tests assert coalescing against this).
func (s *Server) Retrievals() int64 { return s.retrievals.Value() }

// Encodes reports how many snapshot response-body encodes (whole-message
// or streamed) the server executed. An encoded-bytes cache hit writes the
// stored body without encoding, so tests assert hits leave this counter
// untouched.
func (s *Server) Encodes() int64 { return s.encodes.Value() }

// encode serializes one response body via codec, counting the execution.
func (s *Server) encode(codec wire.Codec, v any) ([]byte, error) {
	s.encodes.Inc()
	return codec.Encode(v)
}

// cacheKey identifies one (timepoint, attribute-spec) retrieval.
func cacheKey(t historygraph.Time, attrs string) string {
	return strconv.FormatInt(int64(t), 10) + "|" + attrs
}

// flightView is what a retrieval flight hands its own caller: the cached
// view with a reader pin already taken (release may be nil if caching the
// view failed).
type flightView struct {
	h       *historygraph.HistGraph
	release func()
}

func (s *Server) retrieve(gm *historygraph.GraphManager, t historygraph.Time, attrs string) (*historygraph.HistGraph, error) {
	s.retrievals.Inc()
	return gm.GetHistGraph(t, attrs)
}

// acquire returns a pool view of the snapshot at t with a reference held;
// release must be called once the response is built. Concurrent identical
// requests share one underlying retrieval, and popular timepoints are
// served from the hot-snapshot cache without touching the DeltaGraph.
// The manager is captured once so a concurrent ReplaceManager cannot
// split one request across two stores (the release closures hand views
// back to the manager that produced them).
func (s *Server) acquire(t historygraph.Time, attrs string) (h *historygraph.HistGraph, release func(), cached, coalesced bool, err error) {
	gm := s.gm.Load()
	if s.cache == nil {
		h, err := s.retrieve(gm, t, attrs)
		if err != nil {
			return nil, nil, false, false, err
		}
		return h, func() { gm.Release(h) }, false, false, nil
	}
	key := cacheKey(t, attrs)
	if h, rel, ok := s.cache.Acquire(key, true); ok {
		return h, rel, true, false, nil
	}
	v, shared, err := s.flights.Do(key, func() (any, error) {
		gen := s.cache.Gen()
		start := time.Now()
		h, err := s.retrieve(gm, t, attrs)
		if err != nil {
			return nil, err
		}
		// The flight keeps a reader pin for its own caller, so the
		// leader serves its handle directly — no re-lookup that could
		// race an eviction under cache churn. Plan-execution time rides
		// along as the entry's cost-aware admission weight.
		fh, rel := s.cache.InsertAcquire(key, t, h, gen, time.Since(start))
		if rel == nil {
			// Not cached (an append's invalidation pass overlapped the
			// retrieval, so the view may be stale as a cache entry —
			// though exact for this request's moment — or the cache is
			// shutting down): the leader serves its own view uncached.
			return flightView{h: h, release: func() { gm.Release(h) }}, nil
		}
		return flightView{h: fh, release: rel}, nil
	})
	if err != nil {
		return nil, nil, false, shared, err
	}
	if !shared {
		if fv := v.(flightView); fv.release != nil {
			return fv.h, fv.release, false, false, nil
		}
	}
	// Coalesced waiters (and the leader in the pathological case where
	// the insert failed) pin the cached entry themselves.
	if h, rel, ok := s.cache.Acquire(key, false); ok {
		return h, rel, false, shared, nil
	}
	// The entry was evicted between insert and pin (cache under heavy
	// churn): fall back to a one-off uncached retrieval.
	h, err = s.retrieve(gm, t, attrs)
	if err != nil {
		return nil, nil, false, shared, err
	}
	return h, func() { gm.Release(h) }, false, shared, nil
}

// encKey identifies one encoded /snapshot body in the encoded-bytes
// cache: the view key plus the response shape (full or counts-only) and
// the encoding it was serialized with.
func encKey(t historygraph.Time, attrs string, full bool, codecName string) string {
	k := cacheKey(t, attrs)
	if full {
		k += "|full|"
	} else {
		k += "|counts|"
	}
	return k + codecName
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.CheckEpoch(w, r) {
		return
	}
	q := r.URL.Query()
	t, err := ParseTimeParam(q.Get("t"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := BoolParam(q.Get("full"))
	accept := r.Header.Get("Accept")
	// Streaming applies to full responses only: a counts-only answer has
	// nothing to chunk, so it falls through to the whole-message codec
	// Negotiate picks (the stream Accept value matches binary there).
	stream := full && wire.WantsStream(accept)
	codec := wire.Negotiate(accept)
	name := codec.Name()
	if stream {
		name = wire.NameBinaryStream
	}
	var ekey string
	var gen int64
	if s.enc != nil {
		ekey = encKey(t, attrs, full, name)
		if body, ct, ok := s.enc.Get(ekey); ok {
			// Encoded-bytes hit: one write, zero encode work.
			Annotate(r.Context(), "cache", "encoded-hit")
			w.Header().Set("Content-Type", ct)
			w.WriteHeader(http.StatusOK)
			w.Write(body)
			return
		}
		// Snapshot the invalidation generation before the retrieval so a
		// body built while an append overlapped cannot register as fresh.
		gen = s.enc.Gen()
	}
	h, release, cached, coalesced, err := s.acquire(t, attrs)
	if err != nil {
		WriteError(w, http.StatusUnprocessableEntity, err)
		return
	}
	switch {
	case cached:
		Annotate(r.Context(), "cache", "view-hit")
	case coalesced:
		Annotate(r.Context(), "cache", "coalesced")
	default:
		Annotate(r.Context(), "cache", "miss")
	}
	own := s.ownership()
	if stream {
		s.streamSnapshot(w, h, release, cached, coalesced, ekey, gen, own)
		return
	}
	depCur := h.DependsOnCurrent()
	out := ownedViewToJSON(h, full, own)
	release()
	out.Cached = cached
	out.Coalesced = coalesced
	body, err := s.encode(codec, out)
	if err != nil {
		WriteJSON(w, http.StatusOK, out)
		return
	}
	w.Header().Set("Content-Type", codec.ContentType())
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	if s.enc == nil || out.Coalesced {
		// Coalesced waiters leave caching to the flight leader, like the
		// coordinator's merged-response cache.
		return
	}
	cachedBody := body
	if !out.Cached {
		// A later hit answers exactly like a hot-snapshot cache hit: the
		// Cached flag flips on, so the stored variant is re-encoded once.
		// That second encode happens once per (key, encoding) per
		// invalidation epoch — the first repeat request hits the stored
		// bytes — so it amortizes like any cache-population cost.
		variant := out
		variant.Cached = true
		if cachedBody, err = s.encode(codec, variant); err != nil {
			return
		}
	}
	s.enc.Insert(ekey, t, depCur, cachedBody, codec.ContentType(), gen)
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	if !s.CheckEpoch(w, r) {
		return
	}
	q := r.URL.Query()
	t, err := ParseTimeParam(q.Get("t"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	nodeRaw := q.Get("node")
	node, err := strconv.ParseInt(nodeRaw, 10, 64)
	if err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad node %q", nodeRaw))
		return
	}
	h, release, cached, _, err := s.acquire(t, q.Get("attrs"))
	if err != nil {
		WriteError(w, http.StatusUnprocessableEntity, err)
		return
	}
	id := historygraph.NodeID(node)
	out := NeighborsJSON{At: int64(t), Node: node, Cached: cached}
	var neigh []historygraph.NodeID
	if own := s.ownership(); own.filtering() {
		// Restricted to owned edges: a retired owner still holding a
		// moved slot's history must not double-count its edges in the
		// coordinator's degree sum.
		out.Degree, neigh = ownedNeighbors(h, id, own)
	} else {
		out.Degree, neigh = h.Degree(id), h.Neighbors(id)
	}
	release()
	out.Neighbors = make([]int64, len(neigh))
	for i, n := range neigh {
		out.Neighbors[i] = int64(n)
	}
	WriteWire(w, r, http.StatusOK, out)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.CheckEpoch(w, r) {
		return
	}
	gm := s.gm.Load()
	own := s.ownership()
	q := r.URL.Query()
	var times []historygraph.Time
	for _, part := range strings.Split(q.Get("t"), ",") {
		t, err := ParseTimeParam(strings.TrimSpace(part))
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		times = append(times, t)
	}
	attrs := q.Get("attrs")
	if _, err := historygraph.ParseAttrOptions(attrs); err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	full := BoolParam(q.Get("full"))
	out := make([]SnapshotJSON, len(times))

	if s.cache == nil {
		// Caching disabled: detached snapshots through the multipoint
		// shared-delta plan (Section 4.4), as before.
		snaps, err := gm.GetHistSnapshots(times, attrs)
		if err != nil {
			WriteError(w, http.StatusUnprocessableEntity, err)
			return
		}
		for i, snap := range snaps {
			out[i] = ownedSnapshotToJSON(snap, times[i], full, own)
		}
		WriteWire(w, r, http.StatusOK, out)
		return
	}

	// Probe the hot-snapshot cache per timepoint; the misses execute as
	// one multipoint shared-delta plan (Section 4.4) into the GraphPool
	// and register in the cache, so a repeat batch — or a later
	// singlepoint query at any of its timepoints — costs zero plan
	// executions.
	var missTimes []historygraph.Time
	missIdx := make(map[historygraph.Time][]int)
	for i, t := range times {
		if h, rel, ok := s.cache.Acquire(cacheKey(t, attrs), true); ok {
			out[i] = ownedViewToJSON(h, full, own)
			rel()
			out[i].At = int64(t)
			out[i].Cached = true
			continue
		}
		if _, seen := missIdx[t]; !seen {
			missTimes = append(missTimes, t)
		}
		missIdx[t] = append(missIdx[t], i)
	}
	switch {
	case len(missTimes) == 0:
	case len(missTimes) >= s.cache.capacity:
		// Admission guard: registering a batch as large as the whole LRU
		// would evict the entire hot set (including the batch's own
		// earlier entries) for zero reuse. Serve it detached instead.
		s.retrievals.Add(int64(len(missTimes)))
		snaps, err := gm.GetHistSnapshots(missTimes, attrs)
		if err != nil {
			WriteError(w, http.StatusUnprocessableEntity, err)
			return
		}
		for j, snap := range snaps {
			t := missTimes[j]
			for _, i := range missIdx[t] {
				out[i] = ownedSnapshotToJSON(snap, t, full, own)
			}
		}
	default:
		s.retrievals.Add(int64(len(missTimes)))
		gen := s.cache.Gen()
		start := time.Now()
		hs, err := gm.GetHistGraphs(missTimes, attrs)
		if err != nil {
			WriteError(w, http.StatusUnprocessableEntity, err)
			return
		}
		// The shared-delta plan's cost is amortized evenly across the
		// views it produced — each entry's admission weight is its share.
		perView := time.Since(start) / time.Duration(len(hs))
		for j, h := range hs {
			t := missTimes[j]
			var sj SnapshotJSON
			if fh, rel := s.cache.InsertAcquire(cacheKey(t, attrs), t, h, gen, perView); rel != nil {
				sj = ownedViewToJSON(fh, full, own)
				rel()
			} else {
				// Not cached (concurrent append invalidation, or
				// shutdown): serve this view directly and hand it
				// straight back to the pool.
				sj = ownedViewToJSON(h, full, own)
				gm.Release(h)
			}
			sj.At = int64(t)
			for _, i := range missIdx[t] {
				out[i] = sj
			}
		}
	}
	WriteWire(w, r, http.StatusOK, out)
}

func (s *Server) handleInterval(w http.ResponseWriter, r *http.Request) {
	if !s.CheckEpoch(w, r) {
		return
	}
	q := r.URL.Query()
	from, err1 := ParseTimeParam(q.Get("from"))
	to, err2 := ParseTimeParam(q.Get("to"))
	if err1 != nil || err2 != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("interval wants numeric from/to"))
		return
	}
	res, err := s.gm.Load().GetHistGraphInterval(from, to, q.Get("attrs"))
	if err != nil {
		WriteError(w, http.StatusUnprocessableEntity, err)
		return
	}
	own := s.ownership()
	sj := ownedSnapshotToJSON(res.Graph, 0, BoolParam(q.Get("full")), own)
	out := IntervalJSON{
		Start: int64(res.Start), End: int64(res.End),
		NumNodes: sj.NumNodes, NumEdges: sj.NumEdges,
		Nodes: sj.Nodes, Edges: sj.Edges,
	}
	for _, ev := range res.Transients {
		if own.filtering() && !own.owns(graph.SlotOfEvent(ev)) {
			continue
		}
		out.Transients = append(out.Transients, EventToJSON(ev))
	}
	WriteWire(w, r, http.StatusOK, out)
}

func (s *Server) handleExpr(w http.ResponseWriter, r *http.Request) {
	if !s.CheckEpoch(w, r) {
		return
	}
	var req ExprRequest
	if err := ReadBody(r, &req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad expr body: %w", err))
		return
	}
	expr, err := ParseTimeExpr(req.Expr, len(req.Times))
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	tex := historygraph.TimeExpression{Expr: expr}
	for _, t := range req.Times {
		tex.Times = append(tex.Times, historygraph.Time(t))
	}
	snap, err := s.gm.Load().GetHistGraphExpr(tex, req.Attrs)
	if err != nil {
		WriteError(w, http.StatusUnprocessableEntity, err)
		return
	}
	WriteWire(w, r, http.StatusOK, ownedSnapshotToJSON(snap, 0, req.Full, s.ownership()))
}

// DecodeEvents converts a wire event batch to the model form. The append
// handler and the replication node share it.
func DecodeEvents(body []EventJSON) (historygraph.EventList, error) {
	events := make(historygraph.EventList, len(body))
	for i, ej := range body {
		ev, err := EventFromJSON(ej)
		if err != nil {
			return nil, err
		}
		events[i] = ev
	}
	return events, nil
}

// ApplyEvents records a run of events against the embedded GraphManager
// and invalidates the affected hot-snapshot cache entries — the single
// append-application path, shared by the HTTP handler and the replication
// subsystem (internal/replica), whose WAL replay and follower apply loops
// must invalidate exactly like a live append. The cache is invalidated
// even when the batch failed partway: AppendAll applies events one at a
// time, so a prefix may have landed. Cached snapshots at or after the
// earliest appended timestamp — and every view that reads through the
// current graph — are stale then; earlier independent ones are untouched
// (history is append-only).
func (s *Server) ApplyEvents(events historygraph.EventList) (AppendResult, error) {
	gm := s.gm.Load()
	minAt := historygraph.Time(0)
	for i, ev := range events {
		if i == 0 || ev.At < minAt {
			minAt = ev.At
		}
	}
	applied, appendErr := gm.AppendAllCounted(events)
	invalidated := 0
	if s.cache != nil && len(events) > 0 {
		invalidated = s.cache.InvalidateFrom(minAt)
	}
	// The encoded-bytes cache shares the pinned-view invalidation rules
	// exactly (same earliest-timestamp cut, same current-dependent
	// eviction); its count is internal — AppendResult.Invalidated keeps
	// meaning evicted *views*, as it always has.
	if s.enc != nil && len(events) > 0 {
		s.enc.InvalidateFrom(minAt)
	}
	// Materialized CSRs are projections of the same views and follow the
	// identical invalidation rule.
	if s.an.csr != nil && len(events) > 0 {
		s.an.csr.InvalidateFrom(minAt)
	}
	// Appended is the exact applied count even on failure (a prefix may
	// have landed); the replication recovery paths read it to resume
	// precisely where a partial apply stopped.
	res := AppendResult{
		Appended:    applied,
		LastTime:    int64(gm.LastTime()),
		Invalidated: invalidated,
	}
	return res, appendErr
}

// Manager returns the embedded GraphManager (the replication node uses it
// to bound WAL replay).
func (s *Server) Manager() *historygraph.GraphManager { return s.gm.Load() }

// ReplaceManager swaps the embedded GraphManager for a rebuilt one (the
// automated replica re-seed) and returns the old manager. Every cache
// level is dropped: pinned views belong to the old manager's pool and are
// released through it, and the generation bumps refuse in-flight inserts
// whose retrievals predate the swap. Requests already past their gm load
// finish against the old manager, so the caller must keep it open until
// those drain (or accept their failure, as the re-seed path does after a
// divergence that already made the old store unservable).
func (s *Server) ReplaceManager(gm *historygraph.GraphManager) *historygraph.GraphManager {
	old := s.gm.Swap(gm)
	if s.cache != nil {
		s.cache.setManager(gm)
	}
	if s.enc != nil {
		s.enc.InvalidateFrom(0)
	}
	if s.an.csr != nil {
		s.an.csr.InvalidateFrom(0)
	}
	return old
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if !s.CheckEpoch(w, r) {
		return
	}
	if BoolParam(r.URL.Query().Get("stream")) {
		s.handleAppendStream(w, r)
		return
	}
	var body []EventJSON
	if err := ReadBody(r, &body); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad append body: %w", err))
		return
	}
	events, err := DecodeEvents(body)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	res, appendErr := s.ApplyEvents(events)
	if appendErr != nil {
		WriteError(w, http.StatusUnprocessableEntity, appendErr)
		return
	}
	WriteWire(w, r, http.StatusOK, res)
}

// handleStats re-derives the /stats JSON from the metrics registry's
// collectors — the exact values /metrics exposes — so the two surfaces
// cannot drift.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	gm := s.gm.Load()
	out := StatsJSON{
		Index: gm.IndexStats(),
		Pool:  gm.PoolStats(),
		Server: ServerStatsJSON{
			Requests:   s.ins.Requests(),
			Retrievals: s.retrievals.Value(),
			Coalesced:  s.flights.Hits.Value(),
		},
	}
	if s.cache != nil {
		out.Server.CacheHits = s.cache.counters.hits.Value()
		out.Server.CacheMisses = s.cache.counters.misses.Value()
		out.Server.CacheEvictions = s.cache.counters.evictions.Value()
		out.Server.CacheSize = s.cache.Len()
		out.Server.CacheCapacity = s.cache.capacity
	}
	if s.enc != nil {
		out.Server.Encodes = s.encodes.Value()
		out.Server.EncodedHits = s.enc.counters.hits.Value()
		out.Server.EncodedMisses = s.enc.counters.misses.Value()
		out.Server.EncodedSize = s.enc.Len()
		out.Server.EncodedCapacity = s.enc.capacity
	}
	WriteJSON(w, http.StatusOK, out)
}

// ParseTimeParam parses a timepoint query parameter. Exported so the
// shard coordinator parses requests exactly like a worker.
func ParseTimeParam(s string) (historygraph.Time, error) {
	if s == "" {
		return 0, fmt.Errorf("missing timepoint parameter t")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad timepoint %q", s)
	}
	return historygraph.Time(v), nil
}

// BoolParam parses a boolean query parameter ("1", "true", "yes").
func BoolParam(s string) bool {
	switch strings.ToLower(s) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// WriteWire writes v encoded with the codec the request's Accept header
// negotiated (wire.Negotiate): JSON unless the client asked for binary.
// Types the negotiated codec cannot encode fall back to JSON, so adding a
// binary-unaware response shape never breaks a binary client — it just
// answers JSON, which the Content-Type header declares.
func WriteWire(w http.ResponseWriter, r *http.Request, code int, v any) {
	codec := wire.Negotiate(r.Header.Get("Accept"))
	data, err := codec.Encode(v)
	if err != nil {
		WriteJSON(w, code, v)
		return
	}
	w.Header().Set("Content-Type", codec.ContentType())
	w.WriteHeader(code)
	w.Write(data)
}

// ReadBody decodes a request body with the codec its Content-Type names
// (JSON unless the binary type is declared). The shard coordinator and
// replica node share it so every append path accepts both encodings.
func ReadBody(r *http.Request, v any) error {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return err
	}
	return wire.ForContentType(r.Header.Get("Content-Type")).Decode(data, v)
}

// WriteError writes the wire error shape ({"error": "..."}) the Client
// decodes; the shard coordinator reuses it so error bodies stay uniform.
func WriteError(w http.ResponseWriter, code int, err error) {
	WriteJSON(w, code, errorJSON{Error: err.Error()})
}
