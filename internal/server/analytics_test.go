package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/analytics"
	"historygraph/internal/csr"
	"historygraph/internal/wire"
)

// TestAnalyticsDegreeUnsharded checks GET /analytics/degree against a
// histogram computed independently by walking the view (the CSR scan and
// the view walk share no code beyond the view itself).
func TestAnalyticsDegreeUnsharded(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{})
	mid := gm.LastTime() / 2

	h, err := gm.GetHistGraph(mid, "")
	if err != nil {
		t.Fatal(err)
	}
	hist := map[int64]int64{}
	var maxDeg, total, n int64
	for _, node := range h.Nodes() {
		d := int64(len(h.Neighbors(node)))
		hist[d]++
		total += d
		n++
		if d > maxDeg {
			maxDeg = d
		}
	}

	dd, err := client.AnalyticsDegreeCtx(context.Background(), mid, "")
	if err != nil {
		t.Fatal(err)
	}
	if dd.At != int64(mid) || dd.NumNodes != n || dd.MaxDegree != maxDeg {
		t.Fatalf("degree head = at %d nodes %d max %d, want %d/%d/%d",
			dd.At, dd.NumNodes, dd.MaxDegree, int64(mid), n, maxDeg)
	}
	if want := float64(total) / float64(n); dd.AvgDegree != want {
		t.Fatalf("AvgDegree = %g, want %g", dd.AvgDegree, want)
	}
	var sum int64
	for i, d := range dd.Degrees {
		if hist[d] != dd.Counts[i] {
			t.Fatalf("degree %d count = %d, want %d", d, dd.Counts[i], hist[d])
		}
		sum += dd.Counts[i]
	}
	if sum != n || len(dd.Degrees) != len(hist) {
		t.Fatalf("histogram covers %d nodes over %d buckets, want %d over %d",
			sum, len(dd.Degrees), n, len(hist))
	}
}

// TestAnalyticsComponentsUnsharded checks GET /analytics/components
// against an independent union-find over the view.
func TestAnalyticsComponentsUnsharded(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{})
	mid := gm.LastTime() / 2

	h, err := gm.GetHistGraph(mid, "")
	if err != nil {
		t.Fatal(err)
	}
	parent := map[historygraph.NodeID]historygraph.NodeID{}
	var find func(historygraph.NodeID) historygraph.NodeID
	find = func(x historygraph.NodeID) historygraph.NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, node := range h.Nodes() {
		parent[node] = node
	}
	for _, node := range h.Nodes() {
		for _, nb := range h.Neighbors(node) {
			if _, ok := parent[nb]; !ok {
				continue // neighbor is not a node of the snapshot
			}
			if ra, rb := find(node), find(nb); ra != rb {
				parent[ra] = rb
			}
		}
	}
	sizes := map[historygraph.NodeID]int64{}
	for _, node := range h.Nodes() {
		sizes[find(node)]++
	}
	var largest int64
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}

	cc, err := client.AnalyticsComponentsCtx(context.Background(), mid, "")
	if err != nil {
		t.Fatal(err)
	}
	if cc.NumNodes != int64(len(parent)) || cc.NumComponents != int64(len(sizes)) || cc.Largest != largest {
		t.Fatalf("components = nodes %d comps %d largest %d, want %d/%d/%d",
			cc.NumNodes, cc.NumComponents, cc.Largest, len(parent), len(sizes), largest)
	}
	var covered int64
	for i, size := range cc.Sizes {
		covered += size * cc.Counts[i]
	}
	if covered != cc.NumNodes {
		t.Fatalf("size histogram covers %d nodes, want %d", covered, cc.NumNodes)
	}
}

// TestAnalyticsEvolutionUnsharded checks GET /analytics/evolution against
// a direct two-view diff.
func TestAnalyticsEvolutionUnsharded(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{})
	last := gm.LastTime()
	t1, t2 := last/3, last

	h1, err := gm.GetHistGraph(t1, "")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := gm.GetHistGraph(t2, "")
	if err != nil {
		t.Fatal(err)
	}
	want := analytics.EvolutionPartOf(h1, h2, t1, t2)

	ev, err := client.AnalyticsEvolutionCtx(context.Background(), t1, t2, "")
	if err != nil {
		t.Fatal(err)
	}
	if ev.NodesT1 != want.NodesT1 || ev.NodesT2 != want.NodesT2 ||
		ev.EdgesT1 != want.EdgesT1 || ev.EdgesT2 != want.EdgesT2 ||
		ev.NodesAdded != want.NodesAdded || ev.NodesRemoved != want.NodesRemoved ||
		ev.EdgesAdded != want.EdgesAdded || ev.EdgesRemoved != want.EdgesRemoved {
		t.Fatalf("evolution %+v, want %+v", ev, want)
	}
	if want.NodesAdded == 0 && want.EdgesAdded == 0 {
		t.Fatal("trace grew nothing between t1 and t2; the diff test is vacuous")
	}
}

// TestAnalyticsPageRankUnsharded checks the synchronous endpoint's
// plumbing (defaults, top-K ordering) against the library computation.
func TestAnalyticsPageRankUnsharded(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{})
	mid := gm.LastTime() / 2

	h, err := gm.GetHistGraph(mid, "")
	if err != nil {
		t.Fatal(err)
	}
	g := csr.Build(h)
	scores := analytics.PageRank(g, 0.85, 20)

	res, err := client.AnalyticsPageRankCtx(context.Background(), wire.PageRankRequest{T: int64(mid)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Damping != 0.85 || res.Iterations != 20 || res.NumNodes != int64(g.NumNodes()) {
		t.Fatalf("defaults not applied: %+v", res)
	}
	if len(res.Top) != 20 {
		t.Fatalf("top list has %d entries, want 20", len(res.Top))
	}
	for i, e := range res.Top {
		if got, want := e.Score, scores[historygraph.NodeID(e.Node)]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("rank %d node %d: score %g, want %g", i, e.Node, got, want)
		}
		if i > 0 && e.Score > res.Top[i-1].Score {
			t.Fatalf("top list not descending at %d", i)
		}
	}
}

// TestAnalyticsCSRCacheInvalidation: the second scan hits the cached CSR
// (Cached flips on), and an append at an earlier timepoint evicts it.
func TestAnalyticsCSRCacheInvalidation(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{})
	mid := gm.LastTime() / 2
	ctx := context.Background()

	first, err := client.AnalyticsDegreeCtx(ctx, mid, "")
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first scan reported a CSR cache hit")
	}
	second, err := client.AnalyticsDegreeCtx(ctx, mid, "")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat scan missed the CSR cache")
	}

	// Warm a second CSR at a timepoint past the frontier, then append
	// below it: the frontier CSR must be rebuilt, the historical one kept.
	future := gm.LastTime() + 10
	atFuture, err := client.AnalyticsDegreeCtx(ctx, future, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Append(historygraph.EventList{{
		Type: historygraph.AddNode, At: gm.LastTime() + 1, Node: 1 << 30,
	}}); err != nil {
		t.Fatal(err)
	}
	third, err := client.AnalyticsDegreeCtx(ctx, mid, "")
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("append after t must not evict the CSR at t")
	}
	fourth, err := client.AnalyticsDegreeCtx(ctx, future, "")
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Cached {
		t.Fatal("append at or below t must evict the CSR at t")
	}
	if fourth.NumNodes != atFuture.NumNodes+1 {
		t.Fatalf("rebuilt scan has %d nodes, want %d", fourth.NumNodes, atFuture.NumNodes+1)
	}
}

// TestPRJobLegProtocol drives the worker-side PageRank job endpoints the
// way the coordinator does (parts=1, so no cross-partition routing) and
// compares against the synchronous endpoint.
func TestPRJobLegProtocol(t *testing.T) {
	gm := newTestManager(t)
	_, client := newTestServer(t, gm, Config{})
	mid := gm.LastTime() / 2
	ctx := context.Background()
	const iters, topK = 5, 10

	sync, err := client.AnalyticsPageRankCtx(ctx, wire.PageRankRequest{T: int64(mid), Iterations: iters, TopK: topK})
	if err != nil {
		t.Fatal(err)
	}

	prep, err := client.PRPrepareCtx(ctx, wire.PRPrepare{
		Job: "leg-test", T: int64(mid), Parts: 1, Self: 0, Damping: 0.85,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Job != "leg-test" || prep.Nodes != sync.NumNodes || len(prep.Pairs) != 0 {
		t.Fatalf("prepare = %+v, want %d nodes and no pairs at parts=1", prep, sync.NumNodes)
	}
	if _, err := client.PRStartCtx(ctx, wire.PRStart{Job: "leg-test", N: prep.Nodes}); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= iters; step++ {
		res, err := client.PRStepCtx(ctx, wire.PRStepRequest{
			Job: "leg-test", Finalize: step > 1, Compute: true,
		})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(res.Out) != 0 {
			t.Fatalf("step %d emitted %d remote messages at parts=1", step, len(res.Out))
		}
	}
	final, err := client.PRStepCtx(ctx, wire.PRStepRequest{Job: "leg-test", Finalize: true, TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	if final.NumNodes != sync.NumNodes || len(final.Top) != len(sync.Top) {
		t.Fatalf("collect = %d nodes / %d top, want %d/%d",
			final.NumNodes, len(final.Top), sync.NumNodes, len(sync.Top))
	}
	for i, e := range final.Top {
		if e.Node != sync.Top[i].Node || math.Abs(e.Score-sync.Top[i].Score) > 1e-9*math.Max(sync.Top[i].Score, 1) {
			t.Fatalf("top[%d] = %+v, want %+v", i, e, sync.Top[i])
		}
	}

	// The collecting step released the job.
	var he *HTTPError
	if _, err := client.PRStepCtx(ctx, wire.PRStepRequest{Job: "leg-test", Finalize: true}); !errors.As(err, &he) || he.Status != 404 {
		t.Fatalf("step after collect: err = %v, want HTTP 404", err)
	}
	if _, err := client.PRStartCtx(ctx, wire.PRStart{Job: "never-prepared", N: 1}); !errors.As(err, &he) || he.Status != 404 {
		t.Fatalf("start of unknown job: err = %v, want HTTP 404", err)
	}
}

// TestCacheCostAdmission is the regression test for cost-aware admission:
// within the cold tail of the LRU, the cheapest-to-rebuild entry is
// evicted first, so one expensive plan's view survives a burst of cheap
// one-off retrievals that plain LRU would evict it under.
func TestCacheCostAdmission(t *testing.T) {
	gm := newTestManager(t)
	last := gm.LastTime()
	cache := newSnapCache(gm, 4, testCounters())

	get := func(i int) (*historygraph.HistGraph, historygraph.Time) {
		tp := last * historygraph.Time(i+1) / 40
		h, err := gm.GetHistGraph(tp, "")
		if err != nil {
			t.Fatal(err)
		}
		return h, tp
	}

	// The expensive entry goes in first, so it is always the coldest.
	hExp, tpExp := get(0)
	cache.Insert("expensive", tpExp, hExp, cache.Gen(), time.Second)
	for i := 1; i <= 3; i++ {
		h, tp := get(i)
		cache.Insert(fmt.Sprintf("cheap%d", i), tp, h, cache.Gen(), time.Millisecond)
	}

	// A burst of cheap one-offs: every insert over capacity evicts the
	// cheapest of the cold tail — never the expensive entry.
	for i := 4; i <= 10; i++ {
		h, tp := get(i)
		cache.Insert(fmt.Sprintf("cheap%d", i), tp, h, cache.Gen(), time.Millisecond)
	}

	if _, release, ok := cache.Acquire("expensive", true); !ok {
		t.Fatal("expensive entry was evicted by cheap one-offs")
	} else {
		release()
	}
	if _, _, ok := cache.Acquire("cheap1", true); ok {
		t.Fatal("cold cheap entry survived the burst")
	}
	if got := cache.counters.evictions.Value(); got != 7 {
		t.Fatalf("evictions = %d, want 7", got)
	}
	cache.Purge()
}

// TestCacheCostTiesKeepLRU pins the tie-break: equal costs fall back to
// pure LRU order (the tail), preserving the pre-cost eviction behavior.
func TestCacheCostTiesKeepLRU(t *testing.T) {
	gm := newTestManager(t)
	last := gm.LastTime()
	cache := newSnapCache(gm, 2, testCounters())

	get := func(i int) (*historygraph.HistGraph, historygraph.Time) {
		tp := last * historygraph.Time(i+1) / 10
		h, err := gm.GetHistGraph(tp, "")
		if err != nil {
			t.Fatal(err)
		}
		return h, tp
	}
	for i := 0; i < 3; i++ {
		h, tp := get(i)
		cache.Insert(fmt.Sprintf("k%d", i), tp, h, cache.Gen(), time.Second)
	}
	if _, _, ok := cache.Acquire("k0", true); ok {
		t.Fatal("equal-cost eviction must take the LRU tail (k0)")
	}
	if _, release, ok := cache.Acquire("k1", true); !ok {
		t.Fatal("k1 should be resident")
	} else {
		release()
	}
	cache.Purge()
}
