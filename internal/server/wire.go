package server

// The wire types themselves live in internal/wire (one definition shared
// by the server handlers, the Go client, the shard coordinator's merge
// layer, and the replication stream); this file aliases them under their
// historical *JSON names and holds the model<->wire conversions plus the
// time-expression parser. Element lists are sorted by ID so responses are
// deterministic and diffable.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"historygraph"
	"historygraph/internal/wire"
)

// Aliases for the shared wire structs. The *JSON names predate the wire
// package; both spellings are the same types.
type (
	// NodeJSON is one node of a snapshot response.
	NodeJSON = wire.Node
	// EdgeJSON is one edge of a snapshot response.
	EdgeJSON = wire.Edge
	// PartitionError reports one partition's failure inside a
	// scatter-gather response (see wire.PartitionError).
	PartitionError = wire.PartitionError
	// SnapshotJSON answers snapshot, batch and expression queries.
	SnapshotJSON = wire.Snapshot
	// NeighborsJSON answers neighborhood queries.
	NeighborsJSON = wire.Neighbors
	// EventJSON is the wire form of one historical event.
	EventJSON = wire.Event
	// IntervalJSON answers interval queries.
	IntervalJSON = wire.Interval
	// ExprRequest is the POST /expr body.
	ExprRequest = wire.ExprRequest
	// AppendResult answers POST /append.
	AppendResult = wire.AppendResult
	// ServerStatsJSON is the serving-layer section of /stats.
	ServerStatsJSON = wire.ServerStats
	// StatsJSON answers GET /stats.
	StatsJSON = wire.Stats

	errorJSON = wire.Error
)

var eventTypesByName = map[string]historygraph.EventType{
	"NN": historygraph.AddNode, "DN": historygraph.DelNode,
	"NE": historygraph.AddEdge, "DE": historygraph.DelEdge,
	"UNA": historygraph.SetNodeAttr, "UEA": historygraph.SetEdgeAttr,
	"TE": historygraph.TransientEdge, "TN": historygraph.TransientNode,
}

// EventToJSON converts an event to its wire form (type names are the
// paper's mnemonics: NN, DN, NE, DE, UNA, UEA, TE, TN).
func EventToJSON(ev historygraph.Event) EventJSON {
	out := EventJSON{
		Type:     ev.Type.String(),
		At:       int64(ev.At),
		Node:     int64(ev.Node),
		Node2:    int64(ev.Node2),
		Edge:     int64(ev.Edge),
		Directed: ev.Directed,
		Attr:     ev.Attr,
	}
	if ev.HadOld {
		old := ev.Old
		out.Old = &old
	}
	if ev.HasNew {
		nw := ev.New
		out.New = &nw
	}
	return out
}

// EventFromJSON converts a wire event back to the model form.
func EventFromJSON(ej EventJSON) (historygraph.Event, error) {
	typ, ok := eventTypesByName[strings.ToUpper(ej.Type)]
	if !ok {
		return historygraph.Event{}, fmt.Errorf("unknown event type %q (want NN, DN, NE, DE, UNA, UEA, TE or TN)", ej.Type)
	}
	ev := historygraph.Event{
		Type:     typ,
		At:       historygraph.Time(ej.At),
		Node:     historygraph.NodeID(ej.Node),
		Node2:    historygraph.NodeID(ej.Node2),
		Edge:     historygraph.EdgeID(ej.Edge),
		Directed: ej.Directed,
		Attr:     ej.Attr,
	}
	if ej.Old != nil {
		ev.Old, ev.HadOld = *ej.Old, true
	}
	if ej.New != nil {
		ev.New, ev.HasNew = *ej.New, true
	}
	return ev, nil
}

// snapshotElements extracts sorted node and edge lists from a detached
// snapshot.
func snapshotElements(s *historygraph.Snapshot) ([]NodeJSON, []EdgeJSON) {
	nodes := make([]NodeJSON, 0, len(s.Nodes))
	for n := range s.Nodes {
		nodes = append(nodes, NodeJSON{ID: int64(n), Attrs: s.NodeAttrs[n]})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	edges := make([]EdgeJSON, 0, len(s.Edges))
	for e, info := range s.Edges {
		edges = append(edges, EdgeJSON{
			ID: int64(e), From: int64(info.From), To: int64(info.To),
			Directed: info.Directed, Attrs: s.EdgeAttrs[e],
		})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].ID < edges[j].ID })
	return nodes, edges
}

// SnapshotToJSON converts a detached snapshot; full controls whether the
// element lists are included.
func SnapshotToJSON(s *historygraph.Snapshot, at historygraph.Time, full bool) SnapshotJSON {
	out := SnapshotJSON{At: int64(at), NumNodes: len(s.Nodes), NumEdges: len(s.Edges)}
	if full {
		out.Nodes, out.Edges = snapshotElements(s)
	}
	return out
}

// viewToJSON converts a pooled view. For full responses the view is copied
// out of the pool under one read-lock acquisition.
func viewToJSON(h *historygraph.HistGraph, full bool) SnapshotJSON {
	out := SnapshotJSON{At: int64(h.At()), NumNodes: h.NumNodes(), NumEdges: h.NumEdges()}
	if full {
		out.Nodes, out.Edges = snapshotElements(h.Snapshot())
	}
	return out
}

// ParseTimeExpr parses a Boolean expression over timepoint indices into a
// TimeExpr: "0", "!1", "0 & 1", "(0 | 1) & !2". Operators: | (or),
// & (and), ! (not); integers are Var indices into the request's Times
// list and must be < nvars.
func ParseTimeExpr(s string, nvars int) (historygraph.TimeExpr, error) {
	p := &exprParser{in: s, nvars: nvars}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("time expression: unexpected %q at offset %d", p.in[p.pos:], p.pos)
	}
	return e, nil
}

type exprParser struct {
	in    string
	pos   int
	nvars int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) eat(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *exprParser) parseOr() (historygraph.TimeExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := historygraph.Or{left}
	for p.eat('|') {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return left, nil
	}
	return terms, nil
}

func (p *exprParser) parseAnd() (historygraph.TimeExpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := historygraph.And{left}
	for p.eat('&') {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return left, nil
	}
	return terms, nil
}

func (p *exprParser) parseUnary() (historygraph.TimeExpr, error) {
	if p.eat('!') {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return historygraph.Not{E: e}, nil
	}
	if p.eat('(') {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.eat(')') {
			return nil, fmt.Errorf("time expression: missing ')' at offset %d", p.pos)
		}
		return e, nil
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return nil, fmt.Errorf("time expression: expected variable index at offset %d", start)
	}
	idx, err := strconv.Atoi(p.in[start:p.pos])
	if err != nil || idx >= p.nvars {
		return nil, fmt.Errorf("time expression: variable %q out of range (have %d timepoints)", p.in[start:p.pos], p.nvars)
	}
	return historygraph.Var(idx), nil
}
