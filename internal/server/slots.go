package server

// Worker-side slot ownership: the serving half of the cluster's elastic
// resharding protocol. The coordinator owns the authoritative slot table
// (internal/shard); each worker holds only its own projection of it — the
// installed epoch and the set of graph.NumSlots hash slots it owns — and
// enforces two things:
//
//   - the epoch fence: a request stamped with a routing epoch that
//     disagrees with the installed one answers 410 Gone, which the
//     coordinator turns into one retry against its fresh table, and
//   - read filtering: after a migration a retired owner still holds the
//     moved slots' history in its graph, so data-plane reads drop
//     elements outside the owned slots. The coordinator's scatter-merge
//     then sees each element from exactly one worker, keeping merged
//     responses byte-identical to an unsharded oracle.
//
// A worker that has never been configured (standalone servers, clusters
// predating slot routing) owns everything and fences nothing — the zero
// state costs one atomic load per request.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"historygraph"
	"historygraph/internal/graph"
)

// EpochHeader stamps a coordinator scatter leg with the routing-table
// epoch it was planned against.
const EpochHeader = "X-DG-Epoch"

// WithEpoch returns ctx carrying the routing epoch; the Client stamps
// every outgoing request built under it with EpochHeader, the way it
// forwards request IDs.
func WithEpoch(ctx context.Context, epoch uint64) context.Context {
	return context.WithValue(ctx, epochKey, epoch)
}

// epochFrom returns the routing epoch threaded through ctx, if any.
func epochFrom(ctx context.Context) (uint64, bool) {
	e, ok := ctx.Value(epochKey).(uint64)
	return e, ok
}

// forwardEpoch stamps an outgoing request with the routing epoch carried
// by ctx (a no-op for direct clients, which never set one).
func forwardEpoch(ctx context.Context, req *http.Request) {
	if e, ok := epochFrom(ctx); ok {
		req.Header.Set(EpochHeader, strconv.FormatUint(e, 10))
	}
}

// SlotsJSON is the /admin/slots wire shape: the routing epoch plus the
// slot set the worker owns. All means every slot (the unconfigured
// default, reported by GET on a standalone server).
type SlotsJSON struct {
	Epoch uint64 `json:"epoch"`
	All   bool   `json:"all,omitempty"`
	Slots []int  `json:"slots,omitempty"`
}

// slotOwnership is one installed ownership state, immutable once
// published through the server's atomic pointer.
type slotOwnership struct {
	epoch uint64
	all   bool
	owned [graph.NumSlots]bool
}

// owns reports whether slot s is served here. A nil ownership (never
// configured) owns everything.
func (o *slotOwnership) owns(s int) bool { return o == nil || o.all || o.owned[s] }

// ownsNode reports whether the node's slot is served here.
func (o *slotOwnership) ownsNode(n historygraph.NodeID) bool {
	return o == nil || o.all || o.owned[graph.Slot(n)]
}

// filtering reports whether data-plane reads must restrict to the owned
// slots; false is the zero-cost fast path.
func (o *slotOwnership) filtering() bool { return o != nil && !o.all }

// ownership returns the installed slot ownership (nil = own everything).
func (s *Server) ownership() *slotOwnership { return s.slots.Load() }

// SetSlots installs a slot-ownership state. Encoded response bodies were
// built under the previous ownership, so the encoded-bytes cache is
// dropped wholesale (the generation bump also refuses in-flight inserts);
// pinned views and CSRs are ownership-agnostic — filtering happens at
// response build — and survive.
func (s *Server) SetSlots(cfg SlotsJSON) error {
	own := &slotOwnership{epoch: cfg.Epoch, all: cfg.All}
	count := 0
	for _, sl := range cfg.Slots {
		if sl < 0 || sl >= graph.NumSlots {
			return fmt.Errorf("slot %d out of range [0, %d)", sl, graph.NumSlots)
		}
		if !own.owned[sl] {
			own.owned[sl] = true
			count++
		}
	}
	if cfg.All {
		count = graph.NumSlots
	}
	s.slots.Store(own)
	s.slotEpoch.Set(float64(cfg.Epoch))
	s.slotsOwned.Set(float64(count))
	if s.enc != nil {
		s.enc.InvalidateFrom(0)
	}
	return nil
}

// Slots reports the installed ownership in wire form.
func (s *Server) Slots() SlotsJSON {
	own := s.ownership()
	if own == nil {
		return SlotsJSON{All: true}
	}
	out := SlotsJSON{Epoch: own.epoch, All: own.all}
	if !own.all {
		for sl := range own.owned {
			if own.owned[sl] {
				out.Slots = append(out.Slots, sl)
			}
		}
	}
	return out
}

func (s *Server) handleSlotsGet(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.Slots())
}

func (s *Server) handleSlotsPost(w http.ResponseWriter, r *http.Request) {
	var cfg SlotsJSON
	if err := ReadBody(r, &cfg); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad slots body: %w", err))
		return
	}
	if err := s.SetSlots(cfg); err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// CheckEpoch enforces the routing-epoch fence. An unstamped request (a
// direct client, or a coordinator predating slot routing) and an
// unconfigured worker both pass; a stamped request against a configured
// worker must match its epoch exactly or the answer is 410 Gone — the
// signal the coordinator converts into a routed retry. Exported because
// the replica node fences its own append path with it.
func (s *Server) CheckEpoch(w http.ResponseWriter, r *http.Request) bool {
	hdr := r.Header.Get(EpochHeader)
	if hdr == "" {
		return true
	}
	e, err := strconv.ParseUint(hdr, 10, 64)
	if err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad %s %q", EpochHeader, hdr))
		return false
	}
	own := s.ownership()
	if own == nil || own.epoch == 0 || e == own.epoch {
		return true
	}
	WriteError(w, http.StatusGone,
		fmt.Errorf("routing epoch %d does not match installed epoch %d", e, own.epoch))
	return false
}

// filterElements drops the nodes and edges outside the owned slots —
// nodes by their own slot, edges by their From endpoint's slot (the
// routing rule, so cluster-wide each edge is reported by exactly one
// owner). Both slices are filtered in place; callers pass freshly built
// lists.
func filterElements(nodes []NodeJSON, edges []EdgeJSON, own *slotOwnership) ([]NodeJSON, []EdgeJSON) {
	outN := nodes[:0]
	for _, n := range nodes {
		if own.ownsNode(historygraph.NodeID(n.ID)) {
			outN = append(outN, n)
		}
	}
	outE := edges[:0]
	for _, e := range edges {
		if own.ownsNode(historygraph.NodeID(e.From)) {
			outE = append(outE, e)
		}
	}
	return outN, outE
}

// ownedViewToJSON is viewToJSON restricted to the owned slots. Counts on
// the counts-only path are computed by walking the view, so they always
// equal the filtered list lengths a full response would report.
func ownedViewToJSON(h *historygraph.HistGraph, full bool, own *slotOwnership) SnapshotJSON {
	if !own.filtering() {
		return viewToJSON(h, full)
	}
	out := SnapshotJSON{At: int64(h.At())}
	if !full {
		h.ForEachNode(func(n historygraph.NodeID) bool {
			if own.ownsNode(n) {
				out.NumNodes++
			}
			return true
		})
		h.ForEachEdge(func(_ historygraph.EdgeID, info historygraph.EdgeInfo) bool {
			if own.ownsNode(info.From) {
				out.NumEdges++
			}
			return true
		})
		return out
	}
	nodes, edges := snapshotElements(h.Snapshot())
	out.Nodes, out.Edges = filterElements(nodes, edges, own)
	out.NumNodes, out.NumEdges = len(out.Nodes), len(out.Edges)
	return out
}

// ownedSnapshotToJSON is SnapshotToJSON restricted to the owned slots.
func ownedSnapshotToJSON(snap *historygraph.Snapshot, at historygraph.Time, full bool, own *slotOwnership) SnapshotJSON {
	if !own.filtering() {
		return SnapshotToJSON(snap, at, full)
	}
	out := SnapshotJSON{At: int64(at)}
	if full {
		nodes, edges := snapshotElements(snap)
		out.Nodes, out.Edges = filterElements(nodes, edges, own)
		out.NumNodes, out.NumEdges = len(out.Nodes), len(out.Edges)
		return out
	}
	for n := range snap.Nodes {
		if own.ownsNode(n) {
			out.NumNodes++
		}
	}
	for _, info := range snap.Edges {
		if own.ownsNode(info.From) {
			out.NumEdges++
		}
	}
	return out
}

// ownedNeighbors computes the degree and neighbor list restricted to
// owned edges. It walks the same adjacency list View.Neighbors and
// View.Degree do (IncidentEdges preserves that order), so the filtered
// answer agrees element-for-element with the unfiltered one whenever
// every incident edge is owned.
func ownedNeighbors(h *historygraph.HistGraph, n historygraph.NodeID, own *slotOwnership) (int, []historygraph.NodeID) {
	degree := 0
	seen := make(map[historygraph.NodeID]struct{})
	var out []historygraph.NodeID
	for _, e := range h.IncidentEdges(n) {
		info, ok := h.EdgeInfo(e)
		if !ok || !own.ownsNode(info.From) {
			continue
		}
		degree++
		other := info.Other(n)
		if _, dup := seen[other]; !dup {
			seen[other] = struct{}{}
			out = append(out, other)
		}
	}
	return degree, out
}
