package server

// The observability middleware every serving role (worker, coordinator,
// replica node) wraps its mux with: per-endpoint latency histograms and
// status-class counters, X-Request-ID propagation, and a threshold-gated
// slow-query log line. The middleware is the single place a request's
// wall time is measured, so the worker and the coordinator report
// latency identically.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"historygraph/internal/metrics"
)

// RequestIDHeader carries the request ID across hops: client → shard
// coordinator → scatter legs → workers. The middleware honors an
// incoming value (so every leg of one logical request logs the same ID)
// and mints one otherwise; the Client forwards it on outgoing calls.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const (
	ridKey ctxKey = iota
	traceKey
	epochKey
)

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey, id)
}

// RequestIDFrom returns the request ID threaded through ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey).(string)
	return id
}

// Request IDs are a per-process random prefix plus a counter: unique
// across the cluster for any practical window without a per-request
// crypto/rand read on the hot path.
var (
	ridPrefix = func() string {
		var b [4]byte
		rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
	ridCounter atomic.Uint64
)

func newRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 16)
}

// reqTrace accumulates the handler-supplied annotations (cache outcome,
// partition count) that the slow-query log line reports. It is only
// allocated when slow-query logging is enabled, so Annotate is a nil
// context-value check on every other configuration.
type reqTrace struct {
	mu     sync.Mutex
	fields []string
}

// Annotate attaches a key=value pair to the request's slow-query trace.
// It is a no-op unless the serving layer was configured with a
// SlowQueryThreshold, so handlers call it unconditionally.
func Annotate(ctx context.Context, key, value string) {
	tr, _ := ctx.Value(traceKey).(*reqTrace)
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.fields = append(tr.fields, key+"="+value)
	tr.mu.Unlock()
}

func (tr *reqTrace) String() string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.fields) == 0 {
		return ""
	}
	return " " + strings.Join(tr.fields, " ")
}

// Instrumentation is the middleware state: the request metrics plus the
// slow-query configuration. One instance wraps one role's mux (and, on
// a replica node, the replication endpoints too, so every request into
// the process lands in the same registry).
type Instrumentation struct {
	reqs *metrics.CounterVec   // dg_http_requests_total{endpoint,code}
	lat  *metrics.HistogramVec // dg_http_request_duration_seconds{endpoint}
	slow *metrics.Counter      // dg_slow_queries_total

	slowThreshold time.Duration
	known         map[string]bool // endpoint label whitelist (bounds cardinality)
	logf          func(format string, v ...any)
}

// NewInstrumentation registers the request metrics on reg. endpoints is
// the set of paths reported verbatim in the endpoint label; anything
// else is folded into "other" so an URL-scanning client cannot mint
// unbounded label values. slowThreshold > 0 enables the slow-query log.
func NewInstrumentation(reg *metrics.Registry, endpoints []string, slowThreshold time.Duration) *Instrumentation {
	ins := &Instrumentation{
		reqs:          reg.CounterVec("dg_http_requests_total", "HTTP requests by endpoint and status class.", "endpoint", "code"),
		lat:           reg.HistogramVec("dg_http_request_duration_seconds", "HTTP request wall time by endpoint.", nil, "endpoint"),
		slow:          reg.Counter("dg_slow_queries_total", "Requests that exceeded the slow-query threshold."),
		slowThreshold: slowThreshold,
		known:         make(map[string]bool, len(endpoints)),
		logf:          log.Printf,
	}
	for _, e := range endpoints {
		ins.known[e] = true
	}
	return ins
}

// Requests returns the total request count across every endpoint and
// status class — the registry-derived value /stats reports.
func (ins *Instrumentation) Requests() int64 { return ins.reqs.Total() }

// statusWriter records the response status. It forwards Flush so the
// streaming paths keep their per-run flushing through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func codeClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// Wrap returns next instrumented: request counted and timed under its
// endpoint label, request ID threaded (and echoed in the response), and
// the slow-query line emitted when the threshold is exceeded.
func (ins *Instrumentation) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := WithRequestID(r.Context(), id)
		var tr *reqTrace
		if ins.slowThreshold > 0 {
			tr = &reqTrace{}
			ctx = context.WithValue(ctx, traceKey, tr)
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		dur := time.Since(start)
		endpoint := r.URL.Path
		if !ins.known[endpoint] {
			endpoint = "other"
		}
		ins.lat.With(endpoint).Observe(dur.Seconds())
		ins.reqs.With(endpoint, codeClass(sw.code)).Inc()
		if tr != nil && dur >= ins.slowThreshold {
			ins.slow.Inc()
			ins.logf("slow query: method=%s endpoint=%s query=%q%s status=%d dur=%s req=%s",
				r.Method, endpoint, r.URL.RawQuery, tr.String(), sw.code, dur.Round(time.Microsecond), id)
		}
	})
}
