package server

// The streaming /snapshot path: a full=1 response is written as a chunked
// element-run stream (wire.StreamEncoder) while the handler walks the
// pinned GraphPool view run by run, instead of materializing the whole
// []Node/[]Edge response struct and one contiguous encoded body first.
// Peak response-build memory is proportional to the run size (plus the
// sorted ID lists), not the snapshot — the property the shard coordinator
// relies on to keep N concurrent large snapshots from multiplying into
// N full response buffers.

import (
	"io"
	"net/http"
	"sort"

	"historygraph"
	"historygraph/internal/wire"
)

// edgeRef pairs an edge ID with its endpoints, collected under one pool
// lock acquisition so the per-run walk only re-locks for attributes.
type edgeRef struct {
	id   historygraph.EdgeID
	info historygraph.EdgeInfo
}

// streamSnapshot writes one full snapshot as a chunked element-run
// stream. The view stays pinned (release deferred) for the whole walk;
// runs are emitted and flushed as they fill so a slow client reads data
// while the walk continues. A mid-walk write error means the client went
// away — the response is abandoned (the missing summary frame tells any
// reader the stream is truncated).
func (s *Server) streamSnapshot(w http.ResponseWriter, h *historygraph.HistGraph, release func(), cached, coalesced bool, ekey string, gen int64, own *slotOwnership) {
	defer release()
	s.encodes.Inc()
	depCur := h.DependsOnCurrent()
	at := h.At()

	// Slot filtering happens on the collected ID lists before the walk,
	// so the summary counts and the streamed runs agree by construction.
	nodeIDs := h.Nodes()
	if own.filtering() {
		kept := nodeIDs[:0]
		for _, id := range nodeIDs {
			if own.ownsNode(id) {
				kept = append(kept, id)
			}
		}
		nodeIDs = kept
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	var edges []edgeRef
	h.ForEachEdge(func(id historygraph.EdgeID, info historygraph.EdgeInfo) bool {
		if own.filtering() && !own.ownsNode(info.From) {
			return true
		}
		edges = append(edges, edgeRef{id: id, info: info})
		return true
	})
	sort.Slice(edges, func(i, j int) bool { return edges[i].id < edges[j].id })

	w.Header().Set("Content-Type", wire.ContentTypeBinaryStream)
	w.WriteHeader(http.StatusOK)
	var sink io.Writer = w
	var capture *wire.CappedBuffer
	if s.enc != nil && ekey != "" && !coalesced {
		// Stream hits replay the stored body as-is (no Cached flip —
		// re-streaming a variant would cost the very encode the cache
		// exists to skip), like the coordinator's batch entries.
		capture = &wire.CappedBuffer{Max: maxEncodedBody}
		sink = io.MultiWriter(w, capture)
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	se := wire.NewStreamEncoder(sink)

	runSize := s.runSize
	nrun := make([]wire.Node, 0, min(runSize, len(nodeIDs)))
	for _, id := range nodeIDs {
		nrun = append(nrun, wire.Node{ID: int64(id), Attrs: h.NodeAttrs(id)})
		if len(nrun) == runSize {
			if se.Nodes(nrun) != nil {
				return
			}
			nrun = nrun[:0]
			flush()
		}
	}
	if len(nrun) > 0 {
		if se.Nodes(nrun) != nil {
			return
		}
		flush()
	}
	erun := make([]wire.Edge, 0, min(runSize, len(edges)))
	for _, er := range edges {
		erun = append(erun, wire.Edge{
			ID: int64(er.id), From: int64(er.info.From), To: int64(er.info.To),
			Directed: er.info.Directed, Attrs: h.EdgeAttrs(er.id),
		})
		if len(erun) == runSize {
			if se.Edges(erun) != nil {
				return
			}
			erun = erun[:0]
			flush()
		}
	}
	if len(erun) > 0 {
		if se.Edges(erun) != nil {
			return
		}
		flush()
	}
	sum := SnapshotJSON{
		At: int64(at), NumNodes: len(nodeIDs), NumEdges: len(edges),
		Cached: cached, Coalesced: coalesced,
	}
	if se.Summary(&sum) != nil {
		return
	}
	flush()
	if capture != nil {
		if body, ok := capture.Bytes(); ok {
			s.enc.Insert(ekey, at, depCur, body, wire.ContentTypeBinaryStream, gen)
		}
	}
}
