package server

import (
	"sync"

	"historygraph/internal/metrics"
)

// flightCall is one in-flight execution that late arrivals wait on.
type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// FlightGroup coalesces concurrent executions of the same key into one
// (hand-rolled singleflight: the serving layer may not pull in external
// dependencies). The first caller for a key runs fn; callers that arrive
// while it is running block and share its result. Once the call finishes
// the key is forgotten, so later calls execute afresh — the hot-snapshot
// cache, not the flight group, is responsible for longer-term reuse.
// The zero value is ready to use. The shard coordinator reuses it to
// coalesce whole scatter-gather fan-outs.
type FlightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall

	// Hits/Misses, when set by the owner, count the group as a cache
	// level (cache="flight"): a hit is a caller served by another
	// caller's in-flight execution, a miss is an execution led.
	Hits   *metrics.Counter
	Misses *metrics.Counter
}

// Do executes fn once per key at a time. shared reports whether the result
// came from another caller's execution rather than this caller's own.
func (g *FlightGroup) Do(key string, fn func() (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		if g.Hits != nil {
			g.Hits.Inc()
		}
		c.wg.Wait()
		return c.val, true, c.err
	}
	if g.Misses != nil {
		g.Misses.Inc()
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, false, c.err
}

// InFlight returns the number of keys currently executing.
func (g *FlightGroup) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
