package graph

import (
	"math"
	"testing"
)

func TestPartitionRangeAndStability(t *testing.T) {
	for p := 1; p <= 8; p++ {
		for n := NodeID(0); n < 1000; n++ {
			got := Partition(n, p)
			if got < 0 || got >= p {
				t.Fatalf("Partition(%d, %d) = %d out of range", n, p, got)
			}
			if got != Partition(n, p) {
				t.Fatalf("Partition not deterministic")
			}
		}
	}
	if Partition(123, 0) != 0 || Partition(123, 1) != 0 {
		t.Error("p <= 1 must map everything to partition 0")
	}
}

func TestPartitionBalance(t *testing.T) {
	const p = 4
	counts := make([]int, p)
	for n := NodeID(0); n < 40000; n++ {
		counts[Partition(n, p)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("partition %d badly unbalanced: %d of 40000", i, c)
		}
	}
}

func TestHash01Range(t *testing.T) {
	for i := int64(0); i < 10000; i++ {
		v := Hash01(HashElement(KindNode, i, ""))
		if v < 0 || v >= 1 {
			t.Fatalf("Hash01 out of range: %v", v)
		}
	}
}

// The differential-function sampling relies on Hash01 being roughly uniform:
// a Balanced parent should take about half of each delta.
func TestHash01Uniformity(t *testing.T) {
	const n = 100000
	var below float64
	for i := int64(0); i < n; i++ {
		if Hash01(HashElement(KindEdge, i, "")) < 0.5 {
			below++
		}
	}
	frac := below / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below 0.5 = %v, want ~0.5", frac)
	}
}

func TestHashElementDistinguishesIdentity(t *testing.T) {
	a := HashElement(KindNode, 1, "")
	b := HashElement(KindEdge, 1, "")
	c := HashElement(KindNodeAttr, 1, "x")
	d := HashElement(KindNodeAttr, 1, "y")
	if a == b || c == d || a == c {
		t.Error("element identities collide trivially")
	}
	if HashElement(KindNodeAttr, 1, "x") != c {
		t.Error("hash not deterministic")
	}
}

func TestPartitionOfEvent(t *testing.T) {
	ev := Event{Type: AddEdge, Edge: 7, Node: 100, Node2: 200}
	if PartitionOfEvent(ev, 4) != Partition(100, 4) {
		t.Error("edge event must route by its From endpoint")
	}
}
