// Package graph defines the temporal graph data model shared by all other
// packages: node/edge identifiers, timestamped events, eventlists, and
// set-based snapshots.
//
// The model follows Section 3.1 of Khurana & Deshpande, "Efficient Snapshot
// Retrieval over Historical Graph Data" (ICDE 2013): a historical graph is a
// chronological list of atomic events; the snapshot at time t is the graph
// obtained by applying every event with timestamp <= t; events are
// bidirectional, so G(k) = G(k-1) + E and G(k-1) = G(k) - E.
package graph

// NodeID uniquely identifies a node for the lifetime of the database.
// IDs are never reassigned: a deletion followed by a re-insertion yields a
// fresh ID.
type NodeID int64

// EdgeID uniquely identifies an edge for the lifetime of the database.
type EdgeID int64

// Time is a discrete timestamp. The unit is application-defined (the
// generators in internal/datagen use seconds).
type Time int64

// MaxTime is the largest representable timestamp; it is used as the
// "still alive" end of validity intervals.
const MaxTime = Time(1<<63 - 1)

// EdgeInfo records the endpoints and direction of an edge.
type EdgeInfo struct {
	From, To NodeID
	Directed bool
}

// Touches reports whether the edge is incident to node n.
func (e EdgeInfo) Touches(n NodeID) bool { return e.From == n || e.To == n }

// Other returns the endpoint of the edge that is not n. If the edge is a
// self-loop, it returns n itself.
func (e EdgeInfo) Other(n NodeID) NodeID {
	if e.From == n {
		return e.To
	}
	return e.From
}
