package graph

// This file provides the deterministic hashing used in two places:
//
//   - horizontal partitioning of the node-ID space (Section 4.2: partition_id
//     = h_p(node_id)), and
//   - the differential functions' event sampling (Section 5.2: "randomly
//     choose half of the events ... by using a hash function that maps the
//     events to 0 or 1"). Using the same hash for choosing both the delta
//     and the removal subsets keeps Mixed/Balanced parents well formed.
//
// The hash is FNV-1a over the element identity, which is stable across runs
// and platforms so that an index written by one process is readable by
// another.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// HashNode hashes a node identifier.
func HashNode(n NodeID) uint64 { return fnvMix(fnvOffset64, uint64(n)) }

// HashEdge hashes an edge identifier.
func HashEdge(e EdgeID) uint64 { return fnvMix(fnvOffset64^0x9e3779b97f4a7c15, uint64(e)) }

// NumSlots is the size of the fixed hash-slot space the node IDs are
// mapped into. Cluster routing owns whole slots, never raw hash ranges:
// a partition's share of the key space is a set of slots, so ownership
// can move slot by slot (elastic resharding) without rehashing anything.
const NumSlots = 256

// Slot maps a node to its hash slot.
func Slot(n NodeID) int { return int(HashNode(n) % NumSlots) }

// SlotOfEvent routes an event to a slot by its primary node (edge events
// carry their From endpoint there, so an edge and its attribute events
// share a slot with the endpoint).
func SlotOfEvent(ev Event) int { return Slot(ev.Node) }

// Partition maps a node to one of p partitions (p >= 1) through the slot
// space: slot i belongs to partition i mod p. Routing through slots keeps
// a boot-time hash layout and a slot table initialised with the same rule
// in exact agreement, so a cluster can adopt slot-based routing without
// moving any data.
func Partition(n NodeID, p int) int {
	if p <= 1 {
		return 0
	}
	return Slot(n) % p
}

// PartitionOfEvent routes an event to a storage partition by its primary
// node (edge events are routed by their From endpoint so an edge and both
// of its attribute events land together).
func PartitionOfEvent(ev Event, p int) int { return Partition(ev.Node, p) }

// ElementKind distinguishes element identities for hashing.
type ElementKind uint8

// Element kinds used by HashElement.
const (
	KindNode ElementKind = iota + 1
	KindEdge
	KindNodeAttr
	KindEdgeAttr
)

// HashElement hashes the identity of a graph element: a node, an edge, or an
// attribute entry (id, attribute-name). Attribute values are deliberately
// not part of the identity: the differential functions sample by identity so
// a value change does not move the element across the sampling boundary.
func HashElement(kind ElementKind, id int64, attr string) uint64 {
	h := fnvMix(fnvOffset64, uint64(kind))
	h = fnvMix(h, uint64(id))
	if attr != "" {
		h = fnvString(h, attr)
	}
	return h
}

// Hash01 maps a 64-bit hash to [0, 1) with 53 bits of precision; used to
// compare against the differential functions' sampling ratios r, r1, r2.
func Hash01(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
