package graph

import (
	"math/rand"
	"testing"
)

func TestSnapshotCloneIndependent(t *testing.T) {
	s := NewSnapshot()
	s.Apply(Event{Type: AddNode, Node: 1})
	s.Apply(Event{Type: AddNode, Node: 2})
	s.Apply(Event{Type: AddEdge, Edge: 1, Node: 1, Node2: 2})
	s.Apply(Event{Type: SetNodeAttr, Node: 1, Attr: "name", New: "alice", HasNew: true})

	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone not equal")
	}
	c.Apply(Event{Type: DelEdge, Edge: 1, Node: 1, Node2: 2})
	c.Apply(Event{Type: SetNodeAttr, Node: 1, Attr: "name", Old: "alice", HadOld: true, New: "bob", HasNew: true})
	if len(s.Edges) != 1 || s.NodeAttrs[1]["name"] != "alice" {
		t.Error("mutating clone affected original")
	}

	var nilSnap *Snapshot
	if got := nilSnap.Clone(); got == nil || got.Size() != 0 {
		t.Error("nil Clone should be empty snapshot")
	}
}

func TestSnapshotSize(t *testing.T) {
	s := NewSnapshot()
	if s.Size() != 0 {
		t.Fatal("empty size != 0")
	}
	s.Apply(Event{Type: AddNode, Node: 1})
	s.Apply(Event{Type: AddNode, Node: 2})
	s.Apply(Event{Type: AddEdge, Edge: 1, Node: 1, Node2: 2})
	s.Apply(Event{Type: SetNodeAttr, Node: 1, Attr: "a", New: "x", HasNew: true})
	s.Apply(Event{Type: SetEdgeAttr, Edge: 1, Attr: "w", New: "3", HasNew: true})
	if s.Size() != 5 {
		t.Errorf("Size = %d, want 5", s.Size())
	}
}

func TestSnapshotEqualDetectsDiffs(t *testing.T) {
	build := func() *Snapshot {
		s := NewSnapshot()
		s.Apply(Event{Type: AddNode, Node: 1})
		s.Apply(Event{Type: AddNode, Node: 2})
		s.Apply(Event{Type: AddEdge, Edge: 1, Node: 1, Node2: 2, Directed: true})
		s.Apply(Event{Type: SetNodeAttr, Node: 1, Attr: "a", New: "x", HasNew: true})
		return s
	}
	a, b := build(), build()
	if !a.Equal(b) {
		t.Fatal("identical snapshots unequal")
	}
	b.Apply(Event{Type: SetNodeAttr, Node: 1, Attr: "a", Old: "x", HadOld: true, New: "y", HasNew: true})
	if a.Equal(b) {
		t.Error("value change not detected")
	}
	b = build()
	b.Edges[1] = EdgeInfo{From: 2, To: 1, Directed: true}
	if a.Equal(b) {
		t.Error("edge endpoint change not detected")
	}
	b = build()
	delete(b.Nodes, 2)
	if a.Equal(b) {
		t.Error("missing node not detected")
	}
}

func TestDelNodeDropsAttrs(t *testing.T) {
	s := NewSnapshot()
	s.Apply(Event{Type: AddNode, Node: 1})
	s.Apply(Event{Type: SetNodeAttr, Node: 1, Attr: "a", New: "x", HasNew: true})
	s.Apply(Event{Type: DelNode, Node: 1})
	if len(s.NodeAttrs) != 0 {
		t.Error("DelNode left attributes behind")
	}
}

func TestTransientEventsDoNotChangeState(t *testing.T) {
	s := NewSnapshot()
	s.Apply(Event{Type: AddNode, Node: 1})
	before := s.Clone()
	s.Apply(Event{Type: TransientEdge, Edge: 7, Node: 1, Node2: 1})
	s.Apply(Event{Type: TransientNode, Node: 99})
	if !s.Equal(before) {
		t.Error("transient event mutated snapshot")
	}
}

func TestEdgeInfoHelpers(t *testing.T) {
	e := EdgeInfo{From: 1, To: 2}
	if !e.Touches(1) || !e.Touches(2) || e.Touches(3) {
		t.Error("Touches wrong")
	}
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Error("Other wrong")
	}
	loop := EdgeInfo{From: 5, To: 5}
	if loop.Other(5) != 5 {
		t.Error("self-loop Other wrong")
	}
}

func BenchmarkApplyAll(b *testing.B) {
	events := randomTrace(rand.New(rand.NewSource(42)), 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSnapshot()
		s.ApplyAll(events)
	}
}
