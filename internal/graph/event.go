package graph

import (
	"fmt"
	"sort"
)

// EventType enumerates the atomic activities recorded in the historical
// trace (Section 3.1 of the paper).
type EventType uint8

const (
	// AddNode records the creation of a node.
	AddNode EventType = iota + 1
	// DelNode records the deletion of a node. A well-formed trace deletes
	// a node's attributes and incident edges (via SetNodeAttr/DelEdge
	// events) before the node itself, so that every event is invertible.
	DelNode
	// AddEdge records the creation of an edge.
	AddEdge
	// DelEdge records the deletion of an edge. The event carries the
	// edge's endpoints and direction so it can be applied backward.
	DelEdge
	// SetNodeAttr records an update to a node attribute: creation
	// (HadOld=false), change, or removal (HasNew=false). Both old and new
	// values are carried so the event is bidirectional (the paper's UNA
	// event).
	SetNodeAttr
	// SetEdgeAttr is the edge counterpart of SetNodeAttr.
	SetEdgeAttr
	// TransientEdge records an edge valid only at the event's instant
	// (e.g. a message between two nodes). Transient events never modify
	// snapshot state; they are surfaced by interval queries.
	TransientEdge
	// TransientNode records a node valid only at the event's instant.
	TransientNode
)

var eventTypeNames = map[EventType]string{
	AddNode: "NN", DelNode: "DN", AddEdge: "NE", DelEdge: "DE",
	SetNodeAttr: "UNA", SetEdgeAttr: "UEA",
	TransientEdge: "TE", TransientNode: "TN",
}

// String returns the paper's short mnemonic for the event type (NE = new
// edge, UNA = update node attribute, and so on).
func (t EventType) String() string {
	if s, ok := eventTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// IsTransient reports whether the type denotes a transient occurrence.
func (t EventType) IsTransient() bool { return t == TransientEdge || t == TransientNode }

// Event is the record of one atomic activity in the network at one time
// point. Which fields are meaningful depends on Type:
//
//	AddNode/DelNode/TransientNode: Node
//	AddEdge/DelEdge/TransientEdge: Edge, Node (from), Node2 (to), Directed
//	SetNodeAttr:                   Node, Attr, Old/HadOld, New/HasNew
//	SetEdgeAttr:                   Edge, Node, Node2, Attr, Old/HadOld, New/HasNew
//
// Edge-attribute events carry the endpoints as well so that horizontal
// partitioning can route them without a lookup.
type Event struct {
	Type     EventType
	At       Time
	Node     NodeID
	Node2    NodeID
	Edge     EdgeID
	Directed bool
	Attr     string
	Old, New string
	HadOld   bool
	HasNew   bool
}

// String renders the event in a form close to the paper's examples, e.g.
// {NE, N:23, N:4590, directed:no, t:17}.
func (e Event) String() string {
	switch e.Type {
	case AddNode, DelNode, TransientNode:
		return fmt.Sprintf("{%s, N:%d, t:%d}", e.Type, e.Node, e.At)
	case AddEdge, DelEdge, TransientEdge:
		dir := "no"
		if e.Directed {
			dir = "yes"
		}
		return fmt.Sprintf("{%s, E:%d, N:%d, N:%d, directed:%s, t:%d}", e.Type, e.Edge, e.Node, e.Node2, dir, e.At)
	case SetNodeAttr:
		return fmt.Sprintf("{%s, N:%d, %q, old:%q, new:%q, t:%d}", e.Type, e.Node, e.Attr, e.Old, e.New, e.At)
	case SetEdgeAttr:
		return fmt.Sprintf("{%s, E:%d, %q, old:%q, new:%q, t:%d}", e.Type, e.Edge, e.Attr, e.Old, e.New, e.At)
	}
	return fmt.Sprintf("{%v}", e.Type)
}

// Inverse returns the event that undoes e: applying Inverse() forward is
// equivalent to applying e backward. Transient events are their own inverse.
func (e Event) Inverse() Event {
	inv := e
	switch e.Type {
	case AddNode:
		inv.Type = DelNode
	case DelNode:
		inv.Type = AddNode
	case AddEdge:
		inv.Type = DelEdge
	case DelEdge:
		inv.Type = AddEdge
	case SetNodeAttr, SetEdgeAttr:
		inv.Old, inv.New = e.New, e.Old
		inv.HadOld, inv.HasNew = e.HasNew, e.HadOld
	}
	return inv
}

// EventList is a list of events in chronological order (the paper's
// "eventlist").
type EventList []Event

// Sorted reports whether the list is in non-decreasing time order.
func (el EventList) Sorted() bool {
	return sort.SliceIsSorted(el, func(i, j int) bool { return el[i].At < el[j].At })
}

// Sort orders the list chronologically, preserving the relative order of
// events with equal timestamps (events within one timestamp are applied in
// recorded order).
func (el EventList) Sort() {
	sort.SliceStable(el, func(i, j int) bool { return el[i].At < el[j].At })
}

// SearchTime returns the number of leading events with At <= t, i.e. the
// index of the first event strictly after t.
func (el EventList) SearchTime(t Time) int {
	return sort.Search(len(el), func(i int) bool { return el[i].At > t })
}

// Span returns the time interval [first, last] covered by the list.
// It returns (0, 0) for an empty list.
func (el EventList) Span() (Time, Time) {
	if len(el) == 0 {
		return 0, 0
	}
	return el[0].At, el[len(el)-1].At
}

// Validate checks that the list is chronologically ordered and that every
// event is applicable in sequence starting from base (which may be nil for
// an initially empty graph). It returns the first violation found. Validate
// does not modify base.
func (el EventList) Validate(base *Snapshot) error {
	if !el.Sorted() {
		return fmt.Errorf("eventlist is not chronologically sorted")
	}
	s := base.Clone()
	for i, ev := range el {
		if err := s.ApplyStrict(ev); err != nil {
			return fmt.Errorf("event %d %v: %w", i, ev, err)
		}
	}
	return nil
}
