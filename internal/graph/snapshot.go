package graph

import "fmt"

// Snapshot is a set-based representation of the graph as of one time point
// (or of a synthetic interior DeltaGraph node). It is the unit the
// differential functions and delta arithmetic operate on.
//
// A nil *Snapshot is treated as the empty graph by Clone.
type Snapshot struct {
	Nodes     map[NodeID]struct{}
	Edges     map[EdgeID]EdgeInfo
	NodeAttrs map[NodeID]map[string]string
	EdgeAttrs map[EdgeID]map[string]string
}

// NewSnapshot returns an empty snapshot ready for use.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Nodes:     make(map[NodeID]struct{}),
		Edges:     make(map[EdgeID]EdgeInfo),
		NodeAttrs: make(map[NodeID]map[string]string),
		EdgeAttrs: make(map[EdgeID]map[string]string),
	}
}

// Clone returns a deep copy of the snapshot. Cloning a nil snapshot yields
// an empty one.
func (s *Snapshot) Clone() *Snapshot {
	c := NewSnapshot()
	if s == nil {
		return c
	}
	for n := range s.Nodes {
		c.Nodes[n] = struct{}{}
	}
	for e, info := range s.Edges {
		c.Edges[e] = info
	}
	for n, attrs := range s.NodeAttrs {
		m := make(map[string]string, len(attrs))
		for k, v := range attrs {
			m[k] = v
		}
		c.NodeAttrs[n] = m
	}
	for e, attrs := range s.EdgeAttrs {
		m := make(map[string]string, len(attrs))
		for k, v := range attrs {
			m[k] = v
		}
		c.EdgeAttrs[e] = m
	}
	return c
}

// Size returns the number of elements in the snapshot: nodes, edges and
// attribute entries. It is the quantity the paper's analytical models call
// |G|.
func (s *Snapshot) Size() int {
	n := len(s.Nodes) + len(s.Edges)
	for _, attrs := range s.NodeAttrs {
		n += len(attrs)
	}
	for _, attrs := range s.EdgeAttrs {
		n += len(attrs)
	}
	return n
}

// Equal reports whether two snapshots contain exactly the same elements.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if len(s.Nodes) != len(o.Nodes) || len(s.Edges) != len(o.Edges) {
		return false
	}
	for n := range s.Nodes {
		if _, ok := o.Nodes[n]; !ok {
			return false
		}
	}
	for e, info := range s.Edges {
		if oinfo, ok := o.Edges[e]; !ok || oinfo != info {
			return false
		}
	}
	if !attrMapsEqualNode(s.NodeAttrs, o.NodeAttrs) {
		return false
	}
	return attrMapsEqualEdge(s.EdgeAttrs, o.EdgeAttrs)
}

func attrMapsEqualNode(a, b map[NodeID]map[string]string) bool {
	if countAttrsNode(a) != countAttrsNode(b) {
		return false
	}
	for id, attrs := range a {
		battrs := b[id]
		for k, v := range attrs {
			if bv, ok := battrs[k]; !ok || bv != v {
				return false
			}
		}
	}
	return true
}

func attrMapsEqualEdge(a, b map[EdgeID]map[string]string) bool {
	if countAttrsEdge(a) != countAttrsEdge(b) {
		return false
	}
	for id, attrs := range a {
		battrs := b[id]
		for k, v := range attrs {
			if bv, ok := battrs[k]; !ok || bv != v {
				return false
			}
		}
	}
	return true
}

func countAttrsNode(m map[NodeID]map[string]string) int {
	n := 0
	for _, attrs := range m {
		n += len(attrs)
	}
	return n
}

func countAttrsEdge(m map[EdgeID]map[string]string) int {
	n := 0
	for _, attrs := range m {
		n += len(attrs)
	}
	return n
}

// Apply applies one event in the forward direction of time. Applying an
// event whose precondition does not hold (for example deleting an absent
// edge) is a silent no-op; use ApplyStrict to detect malformed traces.
func (s *Snapshot) Apply(ev Event) {
	switch ev.Type {
	case AddNode:
		s.Nodes[ev.Node] = struct{}{}
	case DelNode:
		delete(s.Nodes, ev.Node)
		delete(s.NodeAttrs, ev.Node)
	case AddEdge:
		s.Edges[ev.Edge] = EdgeInfo{From: ev.Node, To: ev.Node2, Directed: ev.Directed}
	case DelEdge:
		delete(s.Edges, ev.Edge)
		delete(s.EdgeAttrs, ev.Edge)
	case SetNodeAttr:
		if ev.HasNew {
			attrs := s.NodeAttrs[ev.Node]
			if attrs == nil {
				attrs = make(map[string]string)
				s.NodeAttrs[ev.Node] = attrs
			}
			attrs[ev.Attr] = ev.New
		} else if attrs := s.NodeAttrs[ev.Node]; attrs != nil {
			delete(attrs, ev.Attr)
			if len(attrs) == 0 {
				delete(s.NodeAttrs, ev.Node)
			}
		}
	case SetEdgeAttr:
		if ev.HasNew {
			attrs := s.EdgeAttrs[ev.Edge]
			if attrs == nil {
				attrs = make(map[string]string)
				s.EdgeAttrs[ev.Edge] = attrs
			}
			attrs[ev.Attr] = ev.New
		} else if attrs := s.EdgeAttrs[ev.Edge]; attrs != nil {
			delete(attrs, ev.Attr)
			if len(attrs) == 0 {
				delete(s.EdgeAttrs, ev.Edge)
			}
		}
	case TransientEdge, TransientNode:
		// Transient events do not alter snapshot state.
	}
}

// ApplyStrict is Apply with precondition checks; it reports events that are
// not applicable to the current state.
func (s *Snapshot) ApplyStrict(ev Event) error {
	switch ev.Type {
	case AddNode:
		if _, ok := s.Nodes[ev.Node]; ok {
			return fmt.Errorf("node %d already exists", ev.Node)
		}
	case DelNode:
		if _, ok := s.Nodes[ev.Node]; !ok {
			return fmt.Errorf("node %d does not exist", ev.Node)
		}
		if len(s.NodeAttrs[ev.Node]) > 0 {
			return fmt.Errorf("node %d still has attributes", ev.Node)
		}
	case AddEdge:
		if _, ok := s.Edges[ev.Edge]; ok {
			return fmt.Errorf("edge %d already exists", ev.Edge)
		}
		if _, ok := s.Nodes[ev.Node]; !ok {
			return fmt.Errorf("edge %d references missing node %d", ev.Edge, ev.Node)
		}
		if _, ok := s.Nodes[ev.Node2]; !ok {
			return fmt.Errorf("edge %d references missing node %d", ev.Edge, ev.Node2)
		}
	case DelEdge:
		if _, ok := s.Edges[ev.Edge]; !ok {
			return fmt.Errorf("edge %d does not exist", ev.Edge)
		}
		if len(s.EdgeAttrs[ev.Edge]) > 0 {
			return fmt.Errorf("edge %d still has attributes", ev.Edge)
		}
	case SetNodeAttr:
		if _, ok := s.Nodes[ev.Node]; !ok {
			return fmt.Errorf("attribute event on missing node %d", ev.Node)
		}
		cur, ok := s.NodeAttrs[ev.Node][ev.Attr]
		if ok != ev.HadOld || (ok && cur != ev.Old) {
			return fmt.Errorf("node %d attr %q: old value mismatch", ev.Node, ev.Attr)
		}
	case SetEdgeAttr:
		if _, ok := s.Edges[ev.Edge]; !ok {
			return fmt.Errorf("attribute event on missing edge %d", ev.Edge)
		}
		cur, ok := s.EdgeAttrs[ev.Edge][ev.Attr]
		if ok != ev.HadOld || (ok && cur != ev.Old) {
			return fmt.Errorf("edge %d attr %q: old value mismatch", ev.Edge, ev.Attr)
		}
	}
	s.Apply(ev)
	return nil
}

// Unapply applies one event in the backward direction of time, undoing its
// forward effect.
func (s *Snapshot) Unapply(ev Event) { s.Apply(ev.Inverse()) }

// ApplyAll applies a chronological run of events forward.
func (s *Snapshot) ApplyAll(evs []Event) {
	for _, ev := range evs {
		s.Apply(ev)
	}
}

// UnapplyAll applies a chronological run of events backward (the run is
// traversed in reverse).
func (s *Snapshot) UnapplyAll(evs []Event) {
	for i := len(evs) - 1; i >= 0; i-- {
		s.Unapply(evs[i])
	}
}

// SnapshotAt replays the prefix of events with At <= t onto an empty graph
// and returns the result. It is the reference ("naive Log") semantics every
// index implementation must agree with.
func SnapshotAt(events EventList, t Time) *Snapshot {
	s := NewSnapshot()
	s.ApplyAll(events[:events.SearchTime(t)])
	return s
}
