package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventTypeString(t *testing.T) {
	cases := map[EventType]string{
		AddNode: "NN", DelNode: "DN", AddEdge: "NE", DelEdge: "DE",
		SetNodeAttr: "UNA", SetEdgeAttr: "UEA", TransientEdge: "TE", TransientNode: "TN",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if got := EventType(99).String(); got != "EventType(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestEventInverse(t *testing.T) {
	ev := Event{Type: AddNode, At: 5, Node: 1}
	if ev.Inverse().Type != DelNode {
		t.Errorf("inverse of AddNode = %v", ev.Inverse().Type)
	}
	if ev.Inverse().Inverse() != ev {
		t.Errorf("double inverse changed event")
	}
	attr := Event{Type: SetNodeAttr, At: 7, Node: 1, Attr: "x", Old: "a", New: "b", HadOld: true, HasNew: true}
	inv := attr.Inverse()
	if inv.Old != "b" || inv.New != "a" {
		t.Errorf("attr inverse swapped wrong: %+v", inv)
	}
	if attr.Inverse().Inverse() != attr {
		t.Errorf("attr double inverse changed event")
	}
	tr := Event{Type: TransientEdge, At: 3, Edge: 9}
	if tr.Inverse() != tr {
		t.Errorf("transient inverse should be identity")
	}
}

func TestEventListSortSearch(t *testing.T) {
	el := EventList{
		{Type: AddNode, At: 30, Node: 3},
		{Type: AddNode, At: 10, Node: 1},
		{Type: AddNode, At: 20, Node: 2},
	}
	if el.Sorted() {
		t.Fatal("unsorted list reported sorted")
	}
	el.Sort()
	if !el.Sorted() {
		t.Fatal("Sort did not sort")
	}
	for _, tc := range []struct {
		t    Time
		want int
	}{{5, 0}, {10, 1}, {15, 1}, {30, 3}, {100, 3}} {
		if got := el.SearchTime(tc.t); got != tc.want {
			t.Errorf("SearchTime(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
	lo, hi := el.Span()
	if lo != 10 || hi != 30 {
		t.Errorf("Span = (%d, %d)", lo, hi)
	}
	var empty EventList
	if lo, hi := empty.Span(); lo != 0 || hi != 0 {
		t.Errorf("empty Span = (%d, %d)", lo, hi)
	}
}

func TestEventListSortStable(t *testing.T) {
	el := EventList{
		{Type: AddNode, At: 10, Node: 1},
		{Type: AddEdge, At: 10, Edge: 1, Node: 1, Node2: 1},
		{Type: DelEdge, At: 10, Edge: 1, Node: 1, Node2: 1},
	}
	el.Sort()
	if el[1].Type != AddEdge || el[2].Type != DelEdge {
		t.Errorf("equal-time order not preserved: %v", el)
	}
}

// randomTrace builds a random but well-formed event trace.
func randomTrace(rng *rand.Rand, n int) EventList {
	var (
		events    EventList
		nextNode  NodeID
		nextEdge  EdgeID
		liveNodes []NodeID
		liveEdges []EdgeID
		edgeInfo  = map[EdgeID]EdgeInfo{}
		nodeAttrs = map[NodeID]map[string]string{}
	)
	attrNames := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		at := Time(i + 1)
		switch op := rng.Intn(10); {
		case op < 3 || len(liveNodes) == 0:
			nextNode++
			liveNodes = append(liveNodes, nextNode)
			events = append(events, Event{Type: AddNode, At: at, Node: nextNode})
		case op < 6 && len(liveNodes) >= 2:
			nextEdge++
			u := liveNodes[rng.Intn(len(liveNodes))]
			v := liveNodes[rng.Intn(len(liveNodes))]
			liveEdges = append(liveEdges, nextEdge)
			edgeInfo[nextEdge] = EdgeInfo{From: u, To: v}
			events = append(events, Event{Type: AddEdge, At: at, Edge: nextEdge, Node: u, Node2: v})
		case op < 8:
			node := liveNodes[rng.Intn(len(liveNodes))]
			attr := attrNames[rng.Intn(len(attrNames))]
			old, had := nodeAttrs[node][attr]
			if rng.Intn(4) == 0 && had {
				events = append(events, Event{Type: SetNodeAttr, At: at, Node: node, Attr: attr, Old: old, HadOld: true})
				delete(nodeAttrs[node], attr)
			} else {
				newv := attrNames[rng.Intn(len(attrNames))] + "v"
				events = append(events, Event{Type: SetNodeAttr, At: at, Node: node, Attr: attr, Old: old, HadOld: had, New: newv, HasNew: true})
				if nodeAttrs[node] == nil {
					nodeAttrs[node] = map[string]string{}
				}
				nodeAttrs[node][attr] = newv
			}
		case op < 9 && len(liveEdges) > 0:
			idx := rng.Intn(len(liveEdges))
			e := liveEdges[idx]
			info := edgeInfo[e]
			liveEdges = append(liveEdges[:idx], liveEdges[idx+1:]...)
			events = append(events, Event{Type: DelEdge, At: at, Edge: e, Node: info.From, Node2: info.To})
		default:
			events = append(events, Event{Type: TransientEdge, At: at, Edge: 1 << 30, Node: liveNodes[0], Node2: liveNodes[0]})
		}
	}
	return events
}

// Property: applying a run of events forward then backward restores the
// original snapshot ((S + E) - E == S).
func TestApplyUnapplyRoundTrip(t *testing.T) {
	check := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		events := randomTrace(rng, int(size)+1)
		split := rng.Intn(len(events))
		base := NewSnapshot()
		base.ApplyAll(events[:split])
		want := base.Clone()
		base.ApplyAll(events[split:])
		base.UnapplyAll(events[split:])
		return base.Equal(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesMalformed(t *testing.T) {
	good := randomTrace(rand.New(rand.NewSource(1)), 100)
	if err := good.Validate(nil); err != nil {
		t.Fatalf("well-formed trace rejected: %v", err)
	}
	bad := EventList{{Type: DelNode, At: 1, Node: 42}}
	if err := bad.Validate(nil); err == nil {
		t.Error("deleting missing node not caught")
	}
	unsorted := EventList{{Type: AddNode, At: 2, Node: 1}, {Type: AddNode, At: 1, Node: 2}}
	if err := unsorted.Validate(nil); err == nil {
		t.Error("unsorted list not caught")
	}
	dupe := EventList{{Type: AddNode, At: 1, Node: 1}, {Type: AddNode, At: 2, Node: 1}}
	if err := dupe.Validate(nil); err == nil {
		t.Error("duplicate node add not caught")
	}
	danglingEdge := EventList{{Type: AddEdge, At: 1, Edge: 1, Node: 5, Node2: 6}}
	if err := danglingEdge.Validate(nil); err == nil {
		t.Error("edge with missing endpoints not caught")
	}
	attrOnMissing := EventList{{Type: SetNodeAttr, At: 1, Node: 9, Attr: "x", New: "v", HasNew: true}}
	if err := attrOnMissing.Validate(nil); err == nil {
		t.Error("attr on missing node not caught")
	}
	staleOld := EventList{
		{Type: AddNode, At: 1, Node: 1},
		{Type: SetNodeAttr, At: 2, Node: 1, Attr: "x", Old: "wrong", HadOld: true, New: "v", HasNew: true},
	}
	if err := staleOld.Validate(nil); err == nil {
		t.Error("old-value mismatch not caught")
	}
}

func TestSnapshotAt(t *testing.T) {
	events := EventList{
		{Type: AddNode, At: 1, Node: 1},
		{Type: AddNode, At: 2, Node: 2},
		{Type: AddEdge, At: 3, Edge: 1, Node: 1, Node2: 2},
		{Type: DelEdge, At: 5, Edge: 1, Node: 1, Node2: 2},
	}
	s3 := SnapshotAt(events, 3)
	if len(s3.Nodes) != 2 || len(s3.Edges) != 1 {
		t.Errorf("t=3: %d nodes %d edges", len(s3.Nodes), len(s3.Edges))
	}
	s4 := SnapshotAt(events, 4)
	if len(s4.Edges) != 1 {
		t.Errorf("t=4 should still have edge")
	}
	s5 := SnapshotAt(events, 5)
	if len(s5.Edges) != 0 {
		t.Errorf("t=5 should have no edge")
	}
}
