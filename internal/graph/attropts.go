package graph

import (
	"fmt"
	"strings"
)

// AttrOptions selects which attribute information a snapshot query fetches,
// parsed from the paper's attr_options string syntax (Table 1):
//
//	""                                  structure only (default)
//	"+node:all"                         all node attributes
//	"+node:all-node:salary+edge:name"   all node attributes except salary,
//	                                    plus the edge attribute "name"
//
// Named include/exclude options override the corresponding :all option for
// that attribute.
type AttrOptions struct {
	NodeAll     bool
	EdgeAll     bool
	NodeInclude map[string]bool
	NodeExclude map[string]bool
	EdgeInclude map[string]bool
	EdgeExclude map[string]bool
}

// ParseAttrOptions parses the attr_options string. An empty string selects
// structure only.
func ParseAttrOptions(s string) (AttrOptions, error) {
	o := AttrOptions{
		NodeInclude: make(map[string]bool),
		NodeExclude: make(map[string]bool),
		EdgeInclude: make(map[string]bool),
		EdgeExclude: make(map[string]bool),
	}
	rest := s
	for rest != "" {
		sign := rest[0]
		if sign != '+' && sign != '-' {
			return o, fmt.Errorf("attr_options %q: expected '+' or '-' at %q", s, rest)
		}
		rest = rest[1:]
		end := strings.IndexAny(rest, "+-")
		var tok string
		if end < 0 {
			tok, rest = rest, ""
		} else {
			tok, rest = rest[:end], rest[end:]
		}
		kind, name, ok := strings.Cut(tok, ":")
		if !ok || name == "" {
			return o, fmt.Errorf("attr_options %q: malformed option %q", s, tok)
		}
		switch kind {
		case "node":
			o.applyOption(sign == '+', true, name)
		case "edge":
			o.applyOption(sign == '+', false, name)
		default:
			return o, fmt.Errorf("attr_options %q: unknown kind %q", s, kind)
		}
	}
	return o, nil
}

// MustParseAttrOptions is ParseAttrOptions but panics on malformed input;
// for use with constant option strings.
func MustParseAttrOptions(s string) AttrOptions {
	o, err := ParseAttrOptions(s)
	if err != nil {
		panic(err)
	}
	return o
}

func (o *AttrOptions) applyOption(plus, node bool, name string) {
	if node {
		if name == "all" {
			o.NodeAll = plus
			return
		}
		if plus {
			o.NodeInclude[name] = true
			delete(o.NodeExclude, name)
		} else {
			o.NodeExclude[name] = true
			delete(o.NodeInclude, name)
		}
		return
	}
	if name == "all" {
		o.EdgeAll = plus
		return
	}
	if plus {
		o.EdgeInclude[name] = true
		delete(o.EdgeExclude, name)
	} else {
		o.EdgeExclude[name] = true
		delete(o.EdgeInclude, name)
	}
}

// WantNodeAttr reports whether the query needs the named node attribute.
func (o AttrOptions) WantNodeAttr(name string) bool {
	if o.NodeExclude[name] {
		return false
	}
	return o.NodeAll || o.NodeInclude[name]
}

// WantEdgeAttr reports whether the query needs the named edge attribute.
func (o AttrOptions) WantEdgeAttr(name string) bool {
	if o.EdgeExclude[name] {
		return false
	}
	return o.EdgeAll || o.EdgeInclude[name]
}

// AnyNodeAttrs reports whether any node attribute may be needed (used to
// decide whether the ∆nodeattr column must be fetched at all).
func (o AttrOptions) AnyNodeAttrs() bool { return o.NodeAll || len(o.NodeInclude) > 0 }

// AnyEdgeAttrs reports whether any edge attribute may be needed.
func (o AttrOptions) AnyEdgeAttrs() bool { return o.EdgeAll || len(o.EdgeInclude) > 0 }

// StructureOnly reports whether the query needs no attributes at all.
func (o AttrOptions) StructureOnly() bool { return !o.AnyNodeAttrs() && !o.AnyEdgeAttrs() }

// FilterEvent reports whether an event is relevant under the options:
// structural and transient events always are; attribute events only when the
// attribute is wanted.
func (o AttrOptions) FilterEvent(ev Event) bool {
	switch ev.Type {
	case SetNodeAttr:
		return o.WantNodeAttr(ev.Attr)
	case SetEdgeAttr:
		return o.WantEdgeAttr(ev.Attr)
	default:
		return true
	}
}

// FilterSnapshot drops from s (in place) every attribute entry the options
// do not request, and returns s.
func (o AttrOptions) FilterSnapshot(s *Snapshot) *Snapshot {
	if !o.AnyNodeAttrs() {
		s.NodeAttrs = make(map[NodeID]map[string]string)
	} else if !o.NodeAll || len(o.NodeExclude) > 0 {
		for id, attrs := range s.NodeAttrs {
			for k := range attrs {
				if !o.WantNodeAttr(k) {
					delete(attrs, k)
				}
			}
			if len(attrs) == 0 {
				delete(s.NodeAttrs, id)
			}
		}
	}
	if !o.AnyEdgeAttrs() {
		s.EdgeAttrs = make(map[EdgeID]map[string]string)
	} else if !o.EdgeAll || len(o.EdgeExclude) > 0 {
		for id, attrs := range s.EdgeAttrs {
			for k := range attrs {
				if !o.WantEdgeAttr(k) {
					delete(attrs, k)
				}
			}
			if len(attrs) == 0 {
				delete(s.EdgeAttrs, id)
			}
		}
	}
	return s
}
