package graph

import "testing"

func TestParseAttrOptions(t *testing.T) {
	cases := []struct {
		in        string
		wantNode  map[string]bool // attr -> wanted
		wantEdge  map[string]bool
		structOnl bool
	}{
		{"", map[string]bool{"x": false}, map[string]bool{"x": false}, true},
		{"+node:all", map[string]bool{"x": true, "salary": true}, map[string]bool{"x": false}, false},
		{"+node:all-node:salary+edge:name",
			map[string]bool{"x": true, "salary": false},
			map[string]bool{"name": true, "other": false}, false},
		{"+node:name", map[string]bool{"name": true, "x": false}, nil, false},
		{"-node:all", map[string]bool{"x": false}, nil, true},
		{"+edge:all-edge:weight", nil, map[string]bool{"weight": false, "w2": true}, false},
	}
	for _, tc := range cases {
		o, err := ParseAttrOptions(tc.in)
		if err != nil {
			t.Errorf("%q: unexpected error %v", tc.in, err)
			continue
		}
		for attr, want := range tc.wantNode {
			if got := o.WantNodeAttr(attr); got != want {
				t.Errorf("%q: WantNodeAttr(%q) = %v, want %v", tc.in, attr, got, want)
			}
		}
		for attr, want := range tc.wantEdge {
			if got := o.WantEdgeAttr(attr); got != want {
				t.Errorf("%q: WantEdgeAttr(%q) = %v, want %v", tc.in, attr, got, want)
			}
		}
		if got := o.StructureOnly(); got != tc.structOnl {
			t.Errorf("%q: StructureOnly = %v, want %v", tc.in, got, tc.structOnl)
		}
	}
}

func TestParseAttrOptionsErrors(t *testing.T) {
	for _, in := range []string{"node:all", "+nodeall", "+attr:x", "+node:", "x+node:all"} {
		if _, err := ParseAttrOptions(in); err == nil {
			t.Errorf("%q: expected parse error", in)
		}
	}
}

func TestMustParseAttrOptionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAttrOptions did not panic on bad input")
		}
	}()
	MustParseAttrOptions("bogus")
}

func TestAttrOptionsOverrides(t *testing.T) {
	// A named include overrides a later exclude and vice versa: last wins.
	o := MustParseAttrOptions("+node:x-node:x")
	if o.WantNodeAttr("x") {
		t.Error("-node:x should override earlier +node:x")
	}
	o = MustParseAttrOptions("-node:x+node:x")
	if !o.WantNodeAttr("x") {
		t.Error("+node:x should override earlier -node:x")
	}
}

func TestFilterEvent(t *testing.T) {
	o := MustParseAttrOptions("+node:name")
	if !o.FilterEvent(Event{Type: AddNode, Node: 1}) {
		t.Error("structural events must always pass")
	}
	if !o.FilterEvent(Event{Type: SetNodeAttr, Attr: "name"}) {
		t.Error("wanted attr filtered out")
	}
	if o.FilterEvent(Event{Type: SetNodeAttr, Attr: "salary"}) {
		t.Error("unwanted attr passed")
	}
	if o.FilterEvent(Event{Type: SetEdgeAttr, Attr: "w"}) {
		t.Error("edge attr passed though none requested")
	}
	if !o.FilterEvent(Event{Type: TransientEdge}) {
		t.Error("transient events must pass")
	}
}

func TestFilterSnapshot(t *testing.T) {
	s := NewSnapshot()
	s.Apply(Event{Type: AddNode, Node: 1})
	s.Apply(Event{Type: SetNodeAttr, Node: 1, Attr: "name", New: "a", HasNew: true})
	s.Apply(Event{Type: SetNodeAttr, Node: 1, Attr: "salary", New: "9", HasNew: true})
	s.Apply(Event{Type: AddNode, Node: 2})
	s.Apply(Event{Type: AddEdge, Edge: 1, Node: 1, Node2: 2})
	s.Apply(Event{Type: SetEdgeAttr, Edge: 1, Attr: "w", New: "1", HasNew: true})

	filtered := MustParseAttrOptions("+node:all-node:salary").FilterSnapshot(s.Clone())
	if filtered.NodeAttrs[1]["name"] != "a" {
		t.Error("wanted node attr dropped")
	}
	if _, ok := filtered.NodeAttrs[1]["salary"]; ok {
		t.Error("excluded node attr kept")
	}
	if len(filtered.EdgeAttrs) != 0 {
		t.Error("edge attrs kept though none requested")
	}

	structOnly := AttrOptions{}.FilterSnapshot(s.Clone())
	if len(structOnly.NodeAttrs) != 0 || len(structOnly.EdgeAttrs) != 0 {
		t.Error("structure-only filter kept attributes")
	}
	if len(structOnly.Nodes) != 2 || len(structOnly.Edges) != 1 {
		t.Error("structure-only filter dropped structure")
	}
}
