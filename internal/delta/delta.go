// Package delta implements the columnar deltas stored on DeltaGraph edges
// and the differential functions that construct interior-node graphs from
// their children (Sections 4.2 and 5.2 of the paper).
//
// A delta ∆(T, S) carries exactly the information needed to construct the
// snapshot T from the snapshot S: the elements to delete from S (S − T) and
// the elements to add to S (T − S). Deltas are columnar: the structure,
// node-attribute and edge-attribute components are separate values in the
// key-value store so a query fetches only the columns its attr_options
// require.
package delta

import (
	"sort"

	"historygraph/internal/graph"
)

// EdgeRec is one edge addition or deletion within a delta.
type EdgeRec struct {
	ID       graph.EdgeID
	From, To graph.NodeID
	Directed bool
}

// NodeAttrRec is one node-attribute set or delete within a delta. Val is
// the value as of the delta's target for sets; it is empty for deletes.
type NodeAttrRec struct {
	Node graph.NodeID
	Attr string
	Val  string
}

// EdgeAttrRec is one edge-attribute set or delete within a delta. From is
// carried so horizontal partitioning can route the record without a lookup.
type EdgeAttrRec struct {
	Edge graph.EdgeID
	From graph.NodeID
	Attr string
	Val  string
}

// Delta is the columnar difference between two snapshots. Applying it to
// the source snapshot yields the target.
type Delta struct {
	// Structure component (∆struct).
	AddNodes []graph.NodeID
	DelNodes []graph.NodeID
	AddEdges []EdgeRec
	DelEdges []EdgeRec
	// Node-attribute component (∆nodeattr).
	SetNodeAttrs []NodeAttrRec
	DelNodeAttrs []NodeAttrRec
	// Edge-attribute component (∆edgeattr).
	SetEdgeAttrs []EdgeAttrRec
	DelEdgeAttrs []EdgeAttrRec
}

// Compute returns ∆(target, source): the delta that transforms source into
// target. Both snapshots are read-only inputs.
func Compute(target, source *graph.Snapshot) *Delta {
	d := &Delta{}
	for n := range target.Nodes {
		if _, ok := source.Nodes[n]; !ok {
			d.AddNodes = append(d.AddNodes, n)
		}
	}
	for n := range source.Nodes {
		if _, ok := target.Nodes[n]; !ok {
			d.DelNodes = append(d.DelNodes, n)
		}
	}
	// Edge IDs are never reused, so an edge present in both snapshots has
	// identical info; a differing info (only possible with malformed
	// input) is handled as delete + re-add so Apply is still correct.
	for e, info := range target.Edges {
		if sinfo, ok := source.Edges[e]; !ok || sinfo != info {
			d.AddEdges = append(d.AddEdges, EdgeRec{ID: e, From: info.From, To: info.To, Directed: info.Directed})
		}
	}
	for e, info := range source.Edges {
		if tinfo, ok := target.Edges[e]; !ok || tinfo != info {
			d.DelEdges = append(d.DelEdges, EdgeRec{ID: e, From: info.From, To: info.To, Directed: info.Directed})
		}
	}
	for n, attrs := range target.NodeAttrs {
		src := source.NodeAttrs[n]
		for k, v := range attrs {
			if sv, ok := src[k]; !ok || sv != v {
				d.SetNodeAttrs = append(d.SetNodeAttrs, NodeAttrRec{Node: n, Attr: k, Val: v})
			}
		}
	}
	for n, attrs := range source.NodeAttrs {
		tgt := target.NodeAttrs[n]
		for k := range attrs {
			if _, ok := tgt[k]; !ok {
				d.DelNodeAttrs = append(d.DelNodeAttrs, NodeAttrRec{Node: n, Attr: k})
			}
		}
	}
	for e, attrs := range target.EdgeAttrs {
		src := source.EdgeAttrs[e]
		from := edgeFrom(target, source, e)
		for k, v := range attrs {
			if sv, ok := src[k]; !ok || sv != v {
				d.SetEdgeAttrs = append(d.SetEdgeAttrs, EdgeAttrRec{Edge: e, From: from, Attr: k, Val: v})
			}
		}
	}
	for e, attrs := range source.EdgeAttrs {
		tgt := target.EdgeAttrs[e]
		from := edgeFrom(target, source, e)
		for k := range attrs {
			if _, ok := tgt[k]; !ok {
				d.DelEdgeAttrs = append(d.DelEdgeAttrs, EdgeAttrRec{Edge: e, From: from, Attr: k})
			}
		}
	}
	d.sortStable()
	return d
}

func edgeFrom(a, b *graph.Snapshot, e graph.EdgeID) graph.NodeID {
	if info, ok := a.Edges[e]; ok {
		return info.From
	}
	if info, ok := b.Edges[e]; ok {
		return info.From
	}
	return 0
}

// sortStable orders every column deterministically so that encoded deltas
// are byte-identical across runs (the sampling hash and codec depend only on
// identities and this order).
func (d *Delta) sortStable() {
	sort.Slice(d.AddNodes, func(i, j int) bool { return d.AddNodes[i] < d.AddNodes[j] })
	sort.Slice(d.DelNodes, func(i, j int) bool { return d.DelNodes[i] < d.DelNodes[j] })
	sort.Slice(d.AddEdges, func(i, j int) bool { return d.AddEdges[i].ID < d.AddEdges[j].ID })
	sort.Slice(d.DelEdges, func(i, j int) bool { return d.DelEdges[i].ID < d.DelEdges[j].ID })
	byNodeAttr := func(s []NodeAttrRec) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].Node != s[j].Node {
				return s[i].Node < s[j].Node
			}
			return s[i].Attr < s[j].Attr
		})
	}
	byNodeAttr(d.SetNodeAttrs)
	byNodeAttr(d.DelNodeAttrs)
	byEdgeAttr := func(s []EdgeAttrRec) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].Edge != s[j].Edge {
				return s[i].Edge < s[j].Edge
			}
			return s[i].Attr < s[j].Attr
		})
	}
	byEdgeAttr(d.SetEdgeAttrs)
	byEdgeAttr(d.DelEdgeAttrs)
}

// Apply mutates s by applying the delta: deletions first, then additions,
// so ∆(T, S) applied to S yields T.
func (d *Delta) Apply(s *graph.Snapshot) {
	for _, rec := range d.DelNodeAttrs {
		if attrs := s.NodeAttrs[rec.Node]; attrs != nil {
			delete(attrs, rec.Attr)
			if len(attrs) == 0 {
				delete(s.NodeAttrs, rec.Node)
			}
		}
	}
	for _, rec := range d.DelEdgeAttrs {
		if attrs := s.EdgeAttrs[rec.Edge]; attrs != nil {
			delete(attrs, rec.Attr)
			if len(attrs) == 0 {
				delete(s.EdgeAttrs, rec.Edge)
			}
		}
	}
	// Attribute removals are always explicit records (Compute emits them),
	// so structural deletes must not cascade: a delete + re-add pair keeps
	// surviving attributes.
	for _, e := range d.DelEdges {
		delete(s.Edges, e.ID)
	}
	for _, n := range d.DelNodes {
		delete(s.Nodes, n)
	}
	for _, n := range d.AddNodes {
		s.Nodes[n] = struct{}{}
	}
	for _, e := range d.AddEdges {
		s.Edges[e.ID] = graph.EdgeInfo{From: e.From, To: e.To, Directed: e.Directed}
	}
	for _, rec := range d.SetNodeAttrs {
		attrs := s.NodeAttrs[rec.Node]
		if attrs == nil {
			attrs = make(map[string]string)
			s.NodeAttrs[rec.Node] = attrs
		}
		attrs[rec.Attr] = rec.Val
	}
	for _, rec := range d.SetEdgeAttrs {
		attrs := s.EdgeAttrs[rec.Edge]
		if attrs == nil {
			attrs = make(map[string]string)
			s.EdgeAttrs[rec.Edge] = attrs
		}
		attrs[rec.Attr] = rec.Val
	}
}

// StructLen returns the number of structural records in the delta.
func (d *Delta) StructLen() int {
	return len(d.AddNodes) + len(d.DelNodes) + len(d.AddEdges) + len(d.DelEdges)
}

// NodeAttrLen returns the number of node-attribute records.
func (d *Delta) NodeAttrLen() int { return len(d.SetNodeAttrs) + len(d.DelNodeAttrs) }

// EdgeAttrLen returns the number of edge-attribute records.
func (d *Delta) EdgeAttrLen() int { return len(d.SetEdgeAttrs) + len(d.DelEdgeAttrs) }

// Len returns the total number of records across all columns; this is the
// |∆| the paper's analytical models reason about.
func (d *Delta) Len() int { return d.StructLen() + d.NodeAttrLen() + d.EdgeAttrLen() }

// Split partitions the delta into p partition-local deltas by node-ID hash:
// nodes and node attributes by their node, edges and edge attributes by
// their From endpoint (Section 4.2).
func (d *Delta) Split(p int) []*Delta {
	if p <= 1 {
		return []*Delta{d}
	}
	parts := make([]*Delta, p)
	for i := range parts {
		parts[i] = &Delta{}
	}
	for _, n := range d.AddNodes {
		t := parts[graph.Partition(n, p)]
		t.AddNodes = append(t.AddNodes, n)
	}
	for _, n := range d.DelNodes {
		t := parts[graph.Partition(n, p)]
		t.DelNodes = append(t.DelNodes, n)
	}
	for _, e := range d.AddEdges {
		t := parts[graph.Partition(e.From, p)]
		t.AddEdges = append(t.AddEdges, e)
	}
	for _, e := range d.DelEdges {
		t := parts[graph.Partition(e.From, p)]
		t.DelEdges = append(t.DelEdges, e)
	}
	for _, r := range d.SetNodeAttrs {
		t := parts[graph.Partition(r.Node, p)]
		t.SetNodeAttrs = append(t.SetNodeAttrs, r)
	}
	for _, r := range d.DelNodeAttrs {
		t := parts[graph.Partition(r.Node, p)]
		t.DelNodeAttrs = append(t.DelNodeAttrs, r)
	}
	for _, r := range d.SetEdgeAttrs {
		t := parts[graph.Partition(r.From, p)]
		t.SetEdgeAttrs = append(t.SetEdgeAttrs, r)
	}
	for _, r := range d.DelEdgeAttrs {
		t := parts[graph.Partition(r.From, p)]
		t.DelEdgeAttrs = append(t.DelEdgeAttrs, r)
	}
	return parts
}

// FromSnapshot returns the delta that constructs s from the empty graph;
// it is how full snapshots (Copy+Log copies, super-root deltas) are stored.
func FromSnapshot(s *graph.Snapshot) *Delta {
	return Compute(s, graph.NewSnapshot())
}
