package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"historygraph/internal/graph"
)

// randomSnapshot builds a random snapshot over a bounded ID universe so
// that pairs of snapshots overlap.
func randomSnapshot(rng *rand.Rand) *graph.Snapshot {
	s := graph.NewSnapshot()
	attrs := []string{"a", "b", "c"}
	vals := []string{"x", "y", "z"}
	for n := graph.NodeID(1); n <= 30; n++ {
		if rng.Intn(2) == 0 {
			s.Nodes[n] = struct{}{}
			for _, a := range attrs {
				if rng.Intn(3) == 0 {
					if s.NodeAttrs[n] == nil {
						s.NodeAttrs[n] = map[string]string{}
					}
					s.NodeAttrs[n][a] = vals[rng.Intn(len(vals))]
				}
			}
		}
	}
	// Endpoints are a deterministic function of the edge ID: IDs are never
	// reused in real traces, so the same ID always has the same info even
	// across independently generated snapshots.
	for e := graph.EdgeID(1); e <= 40; e++ {
		if rng.Intn(2) == 0 {
			u := graph.NodeID(1 + (int(e)*13)%30)
			v := graph.NodeID(1 + (int(e)*7)%30)
			s.Edges[e] = graph.EdgeInfo{From: u, To: v, Directed: e%2 == 0}
			for _, a := range attrs {
				if rng.Intn(4) == 0 {
					if s.EdgeAttrs[e] == nil {
						s.EdgeAttrs[e] = map[string]string{}
					}
					s.EdgeAttrs[e][a] = vals[rng.Intn(len(vals))]
				}
			}
		}
	}
	return s
}

// Property: apply(∆(T, S), S) == T for random snapshot pairs.
func TestComputeApplyRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomSnapshot(rng)
		tgt := randomSnapshot(rng)
		d := Compute(tgt, src)
		got := src.Clone()
		d.Apply(got)
		return got.Equal(tgt)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComputeEmptyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSnapshot(rng)
	d := Compute(s, s)
	if d.Len() != 0 {
		t.Errorf("∆(S,S).Len() = %d, want 0", d.Len())
	}
}

func TestDeltaLens(t *testing.T) {
	src := graph.NewSnapshot()
	tgt := graph.NewSnapshot()
	tgt.Apply(graph.Event{Type: graph.AddNode, Node: 1})
	tgt.Apply(graph.Event{Type: graph.AddNode, Node: 2})
	tgt.Apply(graph.Event{Type: graph.AddEdge, Edge: 1, Node: 1, Node2: 2})
	tgt.Apply(graph.Event{Type: graph.SetNodeAttr, Node: 1, Attr: "a", New: "v", HasNew: true})
	tgt.Apply(graph.Event{Type: graph.SetEdgeAttr, Edge: 1, Attr: "w", New: "1", HasNew: true})
	d := Compute(tgt, src)
	if d.StructLen() != 3 || d.NodeAttrLen() != 1 || d.EdgeAttrLen() != 1 || d.Len() != 5 {
		t.Errorf("lens: struct=%d nodeattr=%d edgeattr=%d total=%d",
			d.StructLen(), d.NodeAttrLen(), d.EdgeAttrLen(), d.Len())
	}
}

func TestFromSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSnapshot(rng)
	got := graph.NewSnapshot()
	FromSnapshot(s).Apply(got)
	if !got.Equal(s) {
		t.Error("FromSnapshot delta does not rebuild snapshot")
	}
}

// Property: the partition-local pieces of a delta, applied in any order,
// reproduce the whole delta's effect.
func TestSplitCoversDelta(t *testing.T) {
	check := func(seed int64, pRaw uint8) bool {
		p := int(pRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		src := randomSnapshot(rng)
		tgt := randomSnapshot(rng)
		d := Compute(tgt, src)
		parts := d.Split(p)
		if len(parts) != p {
			return false
		}
		total := 0
		for _, part := range parts {
			total += part.Len()
		}
		if total != d.Len() {
			return false
		}
		got := src.Clone()
		for i := len(parts) - 1; i >= 0; i-- { // arbitrary order
			parts[i].Apply(got)
		}
		return got.Equal(tgt)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplitSingle(t *testing.T) {
	d := &Delta{AddNodes: []graph.NodeID{1}}
	parts := d.Split(1)
	if len(parts) != 1 || parts[0] != d {
		t.Error("Split(1) must return the delta itself")
	}
}

func TestDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randomSnapshot(rng)
	tgt := randomSnapshot(rng)
	d1 := Compute(tgt, src)
	d2 := Compute(tgt, src)
	b1 := EncodeStructCol(d1)
	b2 := EncodeStructCol(d2)
	if string(b1) != string(b2) {
		t.Error("Compute is not deterministic across runs")
	}
}
