package delta

import (
	"math/rand"
	"testing"

	"historygraph/internal/graph"
)

func snapWithNodes(ids ...graph.NodeID) *graph.Snapshot {
	s := graph.NewSnapshot()
	for _, id := range ids {
		s.Nodes[id] = struct{}{}
	}
	return s
}

func TestIntersection(t *testing.T) {
	a := snapWithNodes(1, 2, 3)
	a.NodeAttrs[1] = map[string]string{"x": "1", "y": "same"}
	b := snapWithNodes(2, 3, 4)
	b.NodeAttrs[1] = map[string]string{"x": "2", "y": "same"} // node 1 absent from b, attrs dangling on purpose
	p := Intersection{}.Combine([]*graph.Snapshot{a, b})
	if _, ok := p.Nodes[1]; ok {
		t.Error("node 1 should not survive intersection")
	}
	if _, ok := p.Nodes[2]; !ok {
		t.Error("node 2 should survive")
	}
	if _, ok := p.Nodes[4]; ok {
		t.Error("node 4 should not survive")
	}
	if len(p.NodeAttrs) != 0 {
		t.Error("attrs of dropped node must be dropped")
	}
}

func TestIntersectionAttrValues(t *testing.T) {
	a := snapWithNodes(1)
	a.NodeAttrs[1] = map[string]string{"x": "1", "y": "same"}
	b := snapWithNodes(1)
	b.NodeAttrs[1] = map[string]string{"x": "2", "y": "same"}
	p := Intersection{}.Combine([]*graph.Snapshot{a, b})
	if _, ok := p.NodeAttrs[1]["x"]; ok {
		t.Error("attr with differing values must not survive")
	}
	if p.NodeAttrs[1]["y"] != "same" {
		t.Error("attr with equal values must survive")
	}
}

func TestIntersectionGrowingOnlyIsOldest(t *testing.T) {
	// For a growing-only sequence, the intersection is the oldest child
	// (the paper: for strictly growing graphs the root is exactly G0).
	a := snapWithNodes(1, 2)
	b := snapWithNodes(1, 2, 3)
	c := snapWithNodes(1, 2, 3, 4)
	p := Intersection{}.Combine([]*graph.Snapshot{a, b, c})
	if !p.Equal(a) {
		t.Error("intersection of growing chain should equal oldest")
	}
}

func TestUnion(t *testing.T) {
	a := snapWithNodes(1, 2)
	a.NodeAttrs[1] = map[string]string{"x": "old"}
	b := snapWithNodes(2, 3)
	b.Nodes[1] = struct{}{}
	b.NodeAttrs[1] = map[string]string{"x": "new"}
	p := Union{}.Combine([]*graph.Snapshot{a, b})
	for _, n := range []graph.NodeID{1, 2, 3} {
		if _, ok := p.Nodes[n]; !ok {
			t.Errorf("node %d missing from union", n)
		}
	}
	if p.NodeAttrs[1]["x"] != "new" {
		t.Error("union must take the newest attribute value")
	}
}

func TestEmpty(t *testing.T) {
	p := Empty{}.Combine([]*graph.Snapshot{snapWithNodes(1, 2, 3)})
	if p.Size() != 0 {
		t.Error("Empty must yield the null graph")
	}
}

func TestSkewedExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSnapshot(rng)
	b := randomSnapshot(rng)
	// r = 0 reproduces the oldest child.
	p0 := Skewed(0).Combine([]*graph.Snapshot{a, b})
	if !p0.Equal(a) {
		t.Error("Skewed(0) != oldest child")
	}
	// r = 1 reproduces the newest child (structurally; attribute values
	// follow because sampling includes every change).
	p1 := Skewed(1).Combine([]*graph.Snapshot{a, b})
	if !p1.Equal(b) {
		t.Error("Skewed(1) != newest child")
	}
}

func TestBalancedDeltaSizesRoughlyEqual(t *testing.T) {
	// Build two children differing in many elements; the Balanced parent
	// should sit roughly midway: |∆(p,a)| ≈ |∆(p,b)|.
	a := graph.NewSnapshot()
	b := graph.NewSnapshot()
	for n := graph.NodeID(1); n <= 2000; n++ {
		if n <= 1500 {
			a.Nodes[n] = struct{}{}
		}
		if n > 500 {
			b.Nodes[n] = struct{}{}
		}
	}
	p := Balanced().Combine([]*graph.Snapshot{a, b})
	da := Compute(a, p).Len()
	db := Compute(b, p).Len()
	if da == 0 || db == 0 {
		t.Fatalf("unexpected zero delta: %d %d", da, db)
	}
	ratio := float64(da) / float64(db)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("balanced deltas not balanced: |∆(p,a)|=%d |∆(p,b)|=%d", da, db)
	}
}

func TestMixedSkewDirection(t *testing.T) {
	a := graph.NewSnapshot()
	b := graph.NewSnapshot()
	for n := graph.NodeID(1); n <= 2000; n++ {
		if n <= 1200 {
			a.Nodes[n] = struct{}{}
		}
		if n > 800 {
			b.Nodes[n] = struct{}{}
		}
	}
	// High r1, r2 → parent close to b → small ∆(b,p), large ∆(a,p).
	pHi := Mixed{R1: 0.9, R2: 0.9}.Combine([]*graph.Snapshot{a, b})
	if Compute(b, pHi).Len() >= Compute(a, pHi).Len() {
		t.Error("Mixed(0.9,0.9) should favor the newer child")
	}
	pLo := Mixed{R1: 0.1, R2: 0.1}.Combine([]*graph.Snapshot{a, b})
	if Compute(a, pLo).Len() >= Compute(b, pLo).Len() {
		t.Error("Mixed(0.1,0.1) should favor the older child")
	}
}

func TestMixedWellFormed(t *testing.T) {
	// The same-hash rule must never leave attributes on removed elements
	// or add attributes to absent elements.
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20; i++ {
		children := []*graph.Snapshot{randomSnapshot(rng), randomSnapshot(rng), randomSnapshot(rng)}
		p := Mixed{R1: 0.7, R2: 0.3}.Combine(children)
		for n := range p.NodeAttrs {
			if _, ok := p.Nodes[n]; !ok {
				t.Fatalf("attrs on absent node %d", n)
			}
		}
		for e := range p.EdgeAttrs {
			if _, ok := p.Edges[e]; !ok {
				t.Fatalf("attrs on absent edge %d", e)
			}
		}
	}
}

func TestRightLeftSkewed(t *testing.T) {
	a := snapWithNodes(1, 2, 3, 4, 5)
	b := snapWithNodes(4, 5, 6, 7, 8)
	r0 := RightSkewed{R: 0}.Combine([]*graph.Snapshot{a, b})
	want := Intersection{}.Combine([]*graph.Snapshot{a, b})
	if !r0.Equal(want) {
		t.Error("RightSkewed(0) != intersection")
	}
	r1 := RightSkewed{R: 1}.Combine([]*graph.Snapshot{a, b})
	if !r1.Equal(b) {
		t.Error("RightSkewed(1) != newest child")
	}
	l1 := LeftSkewed{R: 1}.Combine([]*graph.Snapshot{a, b})
	if !l1.Equal(a) {
		t.Error("LeftSkewed(1) != oldest child")
	}
}

func TestCombineEmptyChildren(t *testing.T) {
	for _, f := range []Differential{Intersection{}, Union{}, Empty{}, Balanced(), RightSkewed{R: 0.5}, LeftSkewed{R: 0.5}} {
		if got := f.Combine(nil); got == nil || got.Size() != 0 {
			t.Errorf("%s.Combine(nil) should be empty snapshot", f.Name())
		}
	}
}

func TestCombineDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomSnapshot(rng)
	b := randomSnapshot(rng)
	for _, f := range []Differential{Intersection{}, Union{}, Balanced(), Mixed{R1: 0.3, R2: 0.6}} {
		p1 := f.Combine([]*graph.Snapshot{a, b})
		p2 := f.Combine([]*graph.Snapshot{a, b})
		if !p1.Equal(p2) {
			t.Errorf("%s not deterministic", f.Name())
		}
	}
}

func TestCombineDoesNotMutateChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomSnapshot(rng)
	b := randomSnapshot(rng)
	ac, bc := a.Clone(), b.Clone()
	for _, f := range []Differential{Intersection{}, Union{}, Balanced(), RightSkewed{R: 0.5}, LeftSkewed{R: 0.5}} {
		f.Combine([]*graph.Snapshot{a, b})
		if !a.Equal(ac) || !b.Equal(bc) {
			t.Fatalf("%s mutated its children", f.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"intersection", "union", "empty", "balanced", "skewed:0.3", "mixed:0.4:0.2", "rightskewed:0.7", "leftskewed:0.1"} {
		f, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if f == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("bogus name accepted")
	}
	if f, _ := ByName("mixed:0.4:0.2"); f.(Mixed).R1 != 0.4 || f.(Mixed).R2 != 0.2 {
		t.Error("mixed params not parsed")
	}
}

func TestDifferentialNames(t *testing.T) {
	cases := map[string]Differential{
		"intersection":     Intersection{},
		"union":            Union{},
		"empty":            Empty{},
		"balanced":         Balanced(),
		"skewed(0.3)":      Skewed(0.3),
		"mixed(0.1,0.9)":   Mixed{R1: 0.1, R2: 0.9},
		"rightskewed(0.5)": RightSkewed{R: 0.5},
		"leftskewed(0.5)":  LeftSkewed{R: 0.5},
	}
	for want, f := range cases {
		if got := f.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}
