package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"historygraph/internal/graph"
)

// Property: every delta column round-trips through the codec.
func TestDeltaCodecRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomSnapshot(rng)
		tgt := randomSnapshot(rng)
		d := Compute(tgt, src)

		var got Delta
		if err := DecodeStructCol(EncodeStructCol(d), &got); err != nil {
			return false
		}
		if err := DecodeNodeAttrCol(EncodeNodeAttrCol(d), &got); err != nil {
			return false
		}
		if err := DecodeEdgeAttrCol(EncodeEdgeAttrCol(d), &got); err != nil {
			return false
		}
		// The decoded delta must have the same effect.
		want := src.Clone()
		d.Apply(want)
		out := src.Clone()
		got.Apply(out)
		return out.Equal(want) && got.Len() == d.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEventsCodecRoundTrip(t *testing.T) {
	events := []graph.Event{
		{Type: graph.AddNode, At: 1, Node: 100},
		{Type: graph.AddEdge, At: 2, Edge: 5, Node: 100, Node2: -3, Directed: true},
		{Type: graph.SetNodeAttr, At: 3, Node: 100, Attr: "name", Old: "", New: "alice", HasNew: true},
		{Type: graph.SetNodeAttr, At: 4, Node: 100, Attr: "name", Old: "alice", HadOld: true, New: "bob", HasNew: true},
		{Type: graph.SetEdgeAttr, At: 5, Edge: 5, Node: 100, Node2: -3, Attr: "w", New: "9", HasNew: true},
		{Type: graph.TransientEdge, At: 6, Edge: 1 << 40, Node: 1, Node2: 2},
		{Type: graph.DelEdge, At: 7, Edge: 5, Node: 100, Node2: -3, Directed: true},
		{Type: graph.DelNode, At: 8, Node: 100},
	}
	got, err := DecodeEvents(EncodeEvents(events))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("len = %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestEventsCodecEmpty(t *testing.T) {
	got, err := DecodeEvents(EncodeEvents(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty round trip: %v, %v", got, err)
	}
}

func TestCodecRejectsCorruptInput(t *testing.T) {
	d := &Delta{AddNodes: []graph.NodeID{1, 2, 3}}
	buf := EncodeStructCol(d)

	var out Delta
	if err := DecodeStructCol(buf[:len(buf)-2], &out); err == nil {
		t.Error("truncated struct column accepted")
	}
	if err := DecodeStructCol(nil, &out); err == nil {
		t.Error("nil struct column accepted")
	}
	if err := DecodeNodeAttrCol(buf, &out); err == nil {
		t.Error("wrong column tag accepted")
	}
	if _, err := DecodeEvents([]byte{tagEvents, 0xff, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("implausible event count accepted")
	}
	if _, err := DecodeEvents([]byte{0x77}); err == nil {
		t.Error("wrong events tag accepted")
	}
}

func TestCodecStringsWithSpecialBytes(t *testing.T) {
	d := &Delta{SetNodeAttrs: []NodeAttrRec{{Node: 1, Attr: "bin\x00attr", Val: "val\xffue\n"}}}
	var got Delta
	if err := DecodeNodeAttrCol(EncodeNodeAttrCol(d), &got); err != nil {
		t.Fatal(err)
	}
	if got.SetNodeAttrs[0] != d.SetNodeAttrs[0] {
		t.Error("binary-safe strings did not round-trip")
	}
}
