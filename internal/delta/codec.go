package delta

import (
	"encoding/binary"
	"errors"
	"fmt"

	"historygraph/internal/graph"
)

// This file is the compact binary codec for delta columns and eventlists —
// the byte payloads stored in the key-value store. Integers use varint
// encoding; strings are length-prefixed. Each payload begins with a one-byte
// format tag so layouts can evolve.

const (
	tagStructCol   byte = 0x01
	tagNodeAttrCol byte = 0x02
	tagEdgeAttrCol byte = 0x03
	tagEvents      byte = 0x04
)

// ErrCorrupt is returned when a payload cannot be decoded.
var ErrCorrupt = errors.New("delta: corrupt payload")

type writer struct{ buf []byte }

func (w *writer) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *writer) uvarint(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }
func (w *writer) varint(x int64)   { w.buf = binary.AppendVarint(w.buf, x) }
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) bool(b bool) {
	if b {
		w.byte(1)
	} else {
		w.byte(0)
	}
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, ErrCorrupt
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.off += n
	return x, nil
}

func (r *reader) varint() (int64, error) {
	x, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.off += n
	return x, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.b) {
		return "", ErrCorrupt
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bool() (bool, error) {
	b, err := r.byte()
	return b != 0, err
}

// EncodeStructCol encodes the structure column of a delta.
func EncodeStructCol(d *Delta) []byte {
	w := &writer{buf: make([]byte, 0, 16+8*(len(d.AddNodes)+len(d.DelNodes))+16*(len(d.AddEdges)+len(d.DelEdges)))}
	w.byte(tagStructCol)
	w.uvarint(uint64(len(d.AddNodes)))
	for _, n := range d.AddNodes {
		w.varint(int64(n))
	}
	w.uvarint(uint64(len(d.DelNodes)))
	for _, n := range d.DelNodes {
		w.varint(int64(n))
	}
	encEdges := func(edges []EdgeRec) {
		w.uvarint(uint64(len(edges)))
		for _, e := range edges {
			w.varint(int64(e.ID))
			w.varint(int64(e.From))
			w.varint(int64(e.To))
			w.bool(e.Directed)
		}
	}
	encEdges(d.AddEdges)
	encEdges(d.DelEdges)
	return w.buf
}

// DecodeStructCol decodes a structure column into d.
func DecodeStructCol(b []byte, d *Delta) error {
	r := &reader{b: b}
	tag, err := r.byte()
	if err != nil || tag != tagStructCol {
		return fmt.Errorf("%w: bad struct column tag", ErrCorrupt)
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	d.AddNodes = make([]graph.NodeID, n)
	for i := range d.AddNodes {
		v, err := r.varint()
		if err != nil {
			return err
		}
		d.AddNodes[i] = graph.NodeID(v)
	}
	if n, err = r.uvarint(); err != nil {
		return err
	}
	d.DelNodes = make([]graph.NodeID, n)
	for i := range d.DelNodes {
		v, err := r.varint()
		if err != nil {
			return err
		}
		d.DelNodes[i] = graph.NodeID(v)
	}
	decEdges := func() ([]EdgeRec, error) {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		edges := make([]EdgeRec, n)
		for i := range edges {
			id, err := r.varint()
			if err != nil {
				return nil, err
			}
			from, err := r.varint()
			if err != nil {
				return nil, err
			}
			to, err := r.varint()
			if err != nil {
				return nil, err
			}
			dir, err := r.bool()
			if err != nil {
				return nil, err
			}
			edges[i] = EdgeRec{ID: graph.EdgeID(id), From: graph.NodeID(from), To: graph.NodeID(to), Directed: dir}
		}
		return edges, nil
	}
	if d.AddEdges, err = decEdges(); err != nil {
		return err
	}
	d.DelEdges, err = decEdges()
	return err
}

// EncodeNodeAttrCol encodes the node-attribute column of a delta.
func EncodeNodeAttrCol(d *Delta) []byte {
	w := &writer{}
	w.byte(tagNodeAttrCol)
	enc := func(recs []NodeAttrRec, withVal bool) {
		w.uvarint(uint64(len(recs)))
		for _, rec := range recs {
			w.varint(int64(rec.Node))
			w.str(rec.Attr)
			if withVal {
				w.str(rec.Val)
			}
		}
	}
	enc(d.SetNodeAttrs, true)
	enc(d.DelNodeAttrs, false)
	return w.buf
}

// DecodeNodeAttrCol decodes a node-attribute column into d.
func DecodeNodeAttrCol(b []byte, d *Delta) error {
	r := &reader{b: b}
	tag, err := r.byte()
	if err != nil || tag != tagNodeAttrCol {
		return fmt.Errorf("%w: bad nodeattr column tag", ErrCorrupt)
	}
	dec := func(withVal bool) ([]NodeAttrRec, error) {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		recs := make([]NodeAttrRec, n)
		for i := range recs {
			id, err := r.varint()
			if err != nil {
				return nil, err
			}
			attr, err := r.str()
			if err != nil {
				return nil, err
			}
			rec := NodeAttrRec{Node: graph.NodeID(id), Attr: attr}
			if withVal {
				if rec.Val, err = r.str(); err != nil {
					return nil, err
				}
			}
			recs[i] = rec
		}
		return recs, nil
	}
	if d.SetNodeAttrs, err = dec(true); err != nil {
		return err
	}
	d.DelNodeAttrs, err = dec(false)
	return err
}

// EncodeEdgeAttrCol encodes the edge-attribute column of a delta.
func EncodeEdgeAttrCol(d *Delta) []byte {
	w := &writer{}
	w.byte(tagEdgeAttrCol)
	enc := func(recs []EdgeAttrRec, withVal bool) {
		w.uvarint(uint64(len(recs)))
		for _, rec := range recs {
			w.varint(int64(rec.Edge))
			w.varint(int64(rec.From))
			w.str(rec.Attr)
			if withVal {
				w.str(rec.Val)
			}
		}
	}
	enc(d.SetEdgeAttrs, true)
	enc(d.DelEdgeAttrs, false)
	return w.buf
}

// DecodeEdgeAttrCol decodes an edge-attribute column into d.
func DecodeEdgeAttrCol(b []byte, d *Delta) error {
	r := &reader{b: b}
	tag, err := r.byte()
	if err != nil || tag != tagEdgeAttrCol {
		return fmt.Errorf("%w: bad edgeattr column tag", ErrCorrupt)
	}
	dec := func(withVal bool) ([]EdgeAttrRec, error) {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		recs := make([]EdgeAttrRec, n)
		for i := range recs {
			id, err := r.varint()
			if err != nil {
				return nil, err
			}
			from, err := r.varint()
			if err != nil {
				return nil, err
			}
			attr, err := r.str()
			if err != nil {
				return nil, err
			}
			rec := EdgeAttrRec{Edge: graph.EdgeID(id), From: graph.NodeID(from), Attr: attr}
			if withVal {
				if rec.Val, err = r.str(); err != nil {
					return nil, err
				}
			}
			recs[i] = rec
		}
		return recs, nil
	}
	if d.SetEdgeAttrs, err = dec(true); err != nil {
		return err
	}
	d.DelEdgeAttrs, err = dec(false)
	return err
}

// EncodeEvents encodes a run of events (one column of a leaf-eventlist, or
// a recent-eventlist segment).
func EncodeEvents(events []graph.Event) []byte {
	w := &writer{buf: make([]byte, 0, 1+16*len(events))}
	w.byte(tagEvents)
	w.uvarint(uint64(len(events)))
	for _, ev := range events {
		w.byte(byte(ev.Type))
		w.varint(int64(ev.At))
		w.varint(int64(ev.Node))
		w.varint(int64(ev.Node2))
		w.varint(int64(ev.Edge))
		var flags byte
		if ev.Directed {
			flags |= 1
		}
		if ev.HadOld {
			flags |= 2
		}
		if ev.HasNew {
			flags |= 4
		}
		w.byte(flags)
		w.str(ev.Attr)
		w.str(ev.Old)
		w.str(ev.New)
	}
	return w.buf
}

// DecodeEvents decodes a run of events encoded by EncodeEvents.
func DecodeEvents(b []byte) ([]graph.Event, error) {
	r := &reader{b: b}
	tag, err := r.byte()
	if err != nil || tag != tagEvents {
		return nil, fmt.Errorf("%w: bad events tag", ErrCorrupt)
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	events := make([]graph.Event, n)
	for i := range events {
		typ, err := r.byte()
		if err != nil {
			return nil, err
		}
		at, err := r.varint()
		if err != nil {
			return nil, err
		}
		node, err := r.varint()
		if err != nil {
			return nil, err
		}
		node2, err := r.varint()
		if err != nil {
			return nil, err
		}
		edge, err := r.varint()
		if err != nil {
			return nil, err
		}
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		attr, err := r.str()
		if err != nil {
			return nil, err
		}
		old, err := r.str()
		if err != nil {
			return nil, err
		}
		newv, err := r.str()
		if err != nil {
			return nil, err
		}
		events[i] = graph.Event{
			Type: graph.EventType(typ), At: graph.Time(at),
			Node: graph.NodeID(node), Node2: graph.NodeID(node2), Edge: graph.EdgeID(edge),
			Directed: flags&1 != 0, HadOld: flags&2 != 0, HasNew: flags&4 != 0,
			Attr: attr, Old: old, New: newv,
		}
	}
	return events, nil
}
