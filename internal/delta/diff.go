package delta

import (
	"fmt"

	"historygraph/internal/graph"
)

// Differential is the paper's differential function f(): it constructs the
// graph for an interior DeltaGraph node from the graphs of its k children
// (Table 2). The result is usually not a valid snapshot of any time point;
// it only needs to be a good "center" so the child deltas are small.
type Differential interface {
	// Name identifies the function (used in skeleton metadata and the
	// experiment harness).
	Name() string
	// Combine builds the parent graph from the children, ordered oldest
	// to newest. Children must not be modified.
	Combine(children []*graph.Snapshot) *graph.Snapshot
}

// Intersection keeps exactly the elements present in every child (with
// equal attribute values). Space-efficient, but on growing graphs it skews
// retrieval latencies toward older (smaller) snapshots; cf. Section 5.3.
type Intersection struct{}

// Name implements Differential.
func (Intersection) Name() string { return "intersection" }

// Combine implements Differential.
func (Intersection) Combine(children []*graph.Snapshot) *graph.Snapshot {
	if len(children) == 0 {
		return graph.NewSnapshot()
	}
	out := children[0].Clone()
	for _, c := range children[1:] {
		for n := range out.Nodes {
			if _, ok := c.Nodes[n]; !ok {
				delete(out.Nodes, n)
				delete(out.NodeAttrs, n)
			}
		}
		for e := range out.Edges {
			if _, ok := c.Edges[e]; !ok {
				delete(out.Edges, e)
				delete(out.EdgeAttrs, e)
			}
		}
		for n, attrs := range out.NodeAttrs {
			cattrs := c.NodeAttrs[n]
			for k, v := range attrs {
				if cv, ok := cattrs[k]; !ok || cv != v {
					delete(attrs, k)
				}
			}
			if len(attrs) == 0 {
				delete(out.NodeAttrs, n)
			}
		}
		for e, attrs := range out.EdgeAttrs {
			cattrs := c.EdgeAttrs[e]
			for k, v := range attrs {
				if cv, ok := cattrs[k]; !ok || cv != v {
					delete(attrs, k)
				}
			}
			if len(attrs) == 0 {
				delete(out.EdgeAttrs, e)
			}
		}
	}
	return out
}

// Union keeps every element present in any child; attribute values are
// taken from the newest child that has the entry. Larger deltas on deletes,
// but the parent is a superset of every child.
type Union struct{}

// Name implements Differential.
func (Union) Name() string { return "union" }

// Combine implements Differential.
func (Union) Combine(children []*graph.Snapshot) *graph.Snapshot {
	out := graph.NewSnapshot()
	for _, c := range children {
		for n := range c.Nodes {
			out.Nodes[n] = struct{}{}
		}
		for e, info := range c.Edges {
			out.Edges[e] = info
		}
		for n, attrs := range c.NodeAttrs {
			dst := out.NodeAttrs[n]
			if dst == nil {
				dst = make(map[string]string, len(attrs))
				out.NodeAttrs[n] = dst
			}
			for k, v := range attrs {
				dst[k] = v
			}
		}
		for e, attrs := range c.EdgeAttrs {
			dst := out.EdgeAttrs[e]
			if dst == nil {
				dst = make(map[string]string, len(attrs))
				out.EdgeAttrs[e] = dst
			}
			for k, v := range attrs {
				dst[k] = v
			}
		}
	}
	return out
}

// Empty always yields the null graph: every child delta is then a full
// snapshot copy, which makes the DeltaGraph identical to the Copy+Log
// approach (Section 5.2).
type Empty struct{}

// Name implements Differential.
func (Empty) Name() string { return "empty" }

// Combine implements Differential.
func (Empty) Combine([]*graph.Snapshot) *graph.Snapshot { return graph.NewSnapshot() }

// Mixed is the paper's tunable family
//
//	f(a, b, c, ...) = a + r1·(δab + δbc + ...) − r2·(ρab + ρbc + ...)
//
// where δxy are the elements added between consecutive children and ρxy the
// elements removed, each sampled by a deterministic hash of the element
// identity so that the removal subset always targets elements the addition
// subset kept (the paper's well-formedness note in Section 5.2). Values
// r1 = r2 = 0.5 give Balanced; r1 > 0.5 shifts the parent toward newer
// children, reducing retrieval times for recent snapshots at the expense of
// older ones.
type Mixed struct {
	R1, R2 float64
}

// Name implements Differential.
func (m Mixed) Name() string { return fmt.Sprintf("mixed(%g,%g)", m.R1, m.R2) }

// Combine implements Differential.
func (m Mixed) Combine(children []*graph.Snapshot) *graph.Snapshot {
	if len(children) == 0 {
		return graph.NewSnapshot()
	}
	out := children[0].Clone()
	for _, next := range children[1:] {
		m.fold(out, next)
	}
	return out
}

// fold advances acc one child: acc ← acc + r1·(next − acc) − r2·(acc − next).
func (m Mixed) fold(acc, next *graph.Snapshot) {
	keepAdd := func(kind graph.ElementKind, id int64, attr string) bool {
		return graph.Hash01(graph.HashElement(kind, id, attr)) < m.R1
	}
	keepDel := func(kind graph.ElementKind, id int64, attr string) bool {
		return graph.Hash01(graph.HashElement(kind, id, attr)) < m.R2
	}
	// ρ: elements of acc absent from next.
	for n := range acc.Nodes {
		if _, ok := next.Nodes[n]; !ok && keepDel(graph.KindNode, int64(n), "") {
			delete(acc.Nodes, n)
			delete(acc.NodeAttrs, n)
		}
	}
	for e := range acc.Edges {
		if _, ok := next.Edges[e]; !ok && keepDel(graph.KindEdge, int64(e), "") {
			delete(acc.Edges, e)
			delete(acc.EdgeAttrs, e)
		}
	}
	for n, attrs := range acc.NodeAttrs {
		nattrs := next.NodeAttrs[n]
		for k := range attrs {
			if _, ok := nattrs[k]; !ok && keepDel(graph.KindNodeAttr, int64(n), k) {
				delete(attrs, k)
			}
		}
		if len(attrs) == 0 {
			delete(acc.NodeAttrs, n)
		}
	}
	for e, attrs := range acc.EdgeAttrs {
		nattrs := next.EdgeAttrs[e]
		for k := range attrs {
			if _, ok := nattrs[k]; !ok && keepDel(graph.KindEdgeAttr, int64(e), k) {
				delete(attrs, k)
			}
		}
		if len(attrs) == 0 {
			delete(acc.EdgeAttrs, e)
		}
	}
	// δ: elements of next absent from acc (or with changed values).
	for n := range next.Nodes {
		if _, ok := acc.Nodes[n]; !ok && keepAdd(graph.KindNode, int64(n), "") {
			acc.Nodes[n] = struct{}{}
		}
	}
	for e, info := range next.Edges {
		if _, ok := acc.Edges[e]; !ok && keepAdd(graph.KindEdge, int64(e), "") {
			acc.Edges[e] = info
		}
	}
	for n, nattrs := range next.NodeAttrs {
		if _, ok := acc.Nodes[n]; !ok {
			continue // attribute entries only live on present elements
		}
		attrs := acc.NodeAttrs[n]
		for k, v := range nattrs {
			if cur, ok := attrs[k]; (!ok || cur != v) && keepAdd(graph.KindNodeAttr, int64(n), k) {
				if attrs == nil {
					attrs = make(map[string]string)
					acc.NodeAttrs[n] = attrs
				}
				attrs[k] = v
			}
		}
	}
	for e, nattrs := range next.EdgeAttrs {
		if _, ok := acc.Edges[e]; !ok {
			continue
		}
		attrs := acc.EdgeAttrs[e]
		for k, v := range nattrs {
			if cur, ok := attrs[k]; (!ok || cur != v) && keepAdd(graph.KindEdgeAttr, int64(e), k) {
				if attrs == nil {
					attrs = make(map[string]string)
					acc.EdgeAttrs[e] = attrs
				}
				attrs[k] = v
			}
		}
	}
}

// Balanced is Mixed(0.5, 0.5): child delta sizes are equalized, giving
// uniform retrieval latencies across the leaves (Section 5.3).
func Balanced() Differential { return named{Mixed{R1: 0.5, R2: 0.5}, "balanced"} }

// Skewed is the paper's f(a,b) = a + r·(b−a) applied as Mixed(r, r): r = 0
// reproduces the oldest child, r = 1 the newest.
func Skewed(r float64) Differential { return named{Mixed{R1: r, R2: r}, fmt.Sprintf("skewed(%g)", r)} }

// named overrides a Differential's name.
type named struct {
	Differential
	name string
}

func (n named) Name() string { return n.name }

// RightSkewed is f(a,b) = a∩b + r·(b − a∩b): the parent sits between the
// intersection and the newest child.
type RightSkewed struct{ R float64 }

// Name implements Differential.
func (s RightSkewed) Name() string { return fmt.Sprintf("rightskewed(%g)", s.R) }

// Combine implements Differential.
func (s RightSkewed) Combine(children []*graph.Snapshot) *graph.Snapshot {
	return skewCombine(children, s.R, len(children)-1)
}

// LeftSkewed is f(a,b) = a∩b + r·(a − a∩b): between the intersection and
// the oldest child.
type LeftSkewed struct{ R float64 }

// Name implements Differential.
func (s LeftSkewed) Name() string { return fmt.Sprintf("leftskewed(%g)", s.R) }

// Combine implements Differential.
func (s LeftSkewed) Combine(children []*graph.Snapshot) *graph.Snapshot {
	return skewCombine(children, s.R, 0)
}

// skewCombine implements both skewed variants: start from the intersection
// of all children and add an r-sampled share of the chosen child's extras.
func skewCombine(children []*graph.Snapshot, r float64, anchor int) *graph.Snapshot {
	if len(children) == 0 {
		return graph.NewSnapshot()
	}
	out := Intersection{}.Combine(children)
	src := children[anchor]
	keep := func(kind graph.ElementKind, id int64, attr string) bool {
		return graph.Hash01(graph.HashElement(kind, id, attr)) < r
	}
	for n := range src.Nodes {
		if _, ok := out.Nodes[n]; !ok && keep(graph.KindNode, int64(n), "") {
			out.Nodes[n] = struct{}{}
		}
	}
	for e, info := range src.Edges {
		if _, ok := out.Edges[e]; !ok && keep(graph.KindEdge, int64(e), "") {
			out.Edges[e] = info
		}
	}
	for n, sattrs := range src.NodeAttrs {
		if _, ok := out.Nodes[n]; !ok {
			continue
		}
		attrs := out.NodeAttrs[n]
		for k, v := range sattrs {
			if _, ok := attrs[k]; !ok && keep(graph.KindNodeAttr, int64(n), k) {
				if attrs == nil {
					attrs = make(map[string]string)
					out.NodeAttrs[n] = attrs
				}
				attrs[k] = v
			}
		}
	}
	for e, sattrs := range src.EdgeAttrs {
		if _, ok := out.Edges[e]; !ok {
			continue
		}
		attrs := out.EdgeAttrs[e]
		for k, v := range sattrs {
			if _, ok := attrs[k]; !ok && keep(graph.KindEdgeAttr, int64(e), k) {
				if attrs == nil {
					attrs = make(map[string]string)
					out.EdgeAttrs[e] = attrs
				}
				attrs[k] = v
			}
		}
	}
	return out
}

// ByName returns the differential function for a harness/CLI name:
// intersection, union, empty, balanced, skewed:R, mixed:R1:R2,
// rightskewed:R, leftskewed:R.
func ByName(name string) (Differential, error) {
	var r1, r2 float64
	switch {
	case name == "intersection":
		return Intersection{}, nil
	case name == "union":
		return Union{}, nil
	case name == "empty":
		return Empty{}, nil
	case name == "balanced":
		return Balanced(), nil
	default:
		if n, err := fmt.Sscanf(name, "mixed:%g:%g", &r1, &r2); err == nil && n == 2 {
			return Mixed{R1: r1, R2: r2}, nil
		}
		if n, err := fmt.Sscanf(name, "skewed:%g", &r1); err == nil && n == 1 {
			return Skewed(r1), nil
		}
		if n, err := fmt.Sscanf(name, "rightskewed:%g", &r1); err == nil && n == 1 {
			return RightSkewed{R: r1}, nil
		}
		if n, err := fmt.Sscanf(name, "leftskewed:%g", &r1); err == nil && n == 1 {
			return LeftSkewed{R: r1}, nil
		}
	}
	return nil, fmt.Errorf("delta: unknown differential function %q", name)
}
