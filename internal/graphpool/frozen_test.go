package graphpool

import (
	"sort"
	"testing"

	"historygraph/internal/delta"
	"historygraph/internal/graph"
)

// frozenMatchesView checks that the frozen projection agrees with the live
// view on membership, adjacency, and counts.
func frozenMatchesView(t *testing.T, v *View) {
	t.Helper()
	f := v.Freeze()
	if f.NumNodes() != v.NumNodes() {
		t.Fatalf("NumNodes: frozen %d, view %d", f.NumNodes(), v.NumNodes())
	}
	seen := 0
	f.ForEachNode(func(n graph.NodeID) bool {
		seen++
		if !v.HasNode(n) {
			t.Fatalf("frozen node %d not in view", n)
		}
		fn := f.Neighbors(n)
		vn := v.Neighbors(n)
		sort.Slice(fn, func(i, j int) bool { return fn[i] < fn[j] })
		sort.Slice(vn, func(i, j int) bool { return vn[i] < vn[j] })
		if len(fn) != len(vn) {
			t.Fatalf("node %d: frozen neighbors %v, view %v", n, fn, vn)
		}
		for i := range fn {
			if fn[i] != vn[i] {
				t.Fatalf("node %d: frozen neighbors %v, view %v", n, fn, vn)
			}
		}
		if f.Degree(n) != v.Degree(n) {
			t.Fatalf("node %d: degree mismatch", n)
		}
		count := 0
		f.ForEachNeighbor(n, func(graph.NodeID) bool { count++; return true })
		if count != v.Degree(n) {
			t.Fatalf("node %d: ForEachNeighbor count %d != %d", n, count, v.Degree(n))
		}
		return true
	})
	if seen != v.NumNodes() {
		t.Fatalf("frozen visited %d nodes, view has %d", seen, v.NumNodes())
	}
}

func TestFrozenViewHistorical(t *testing.T) {
	p := New()
	p.OverlaySnapshot(buildSnapshot(30), 1) // co-resident noise
	id := p.OverlaySnapshot(buildSnapshot(20), 2)
	v, _ := p.View(id)
	frozenMatchesView(t, v)
}

func TestFrozenViewCurrentAndMaterialized(t *testing.T) {
	p := New()
	for i := 1; i <= 10; i++ {
		p.ApplyEvent(graph.Event{Type: graph.AddNode, Node: graph.NodeID(i)})
	}
	for i := 1; i < 10; i++ {
		p.ApplyEvent(graph.Event{Type: graph.AddEdge, Edge: graph.EdgeID(i), Node: graph.NodeID(i), Node2: graph.NodeID(i + 1)})
	}
	frozenMatchesView(t, p.Current())

	matID := p.OverlayMaterialized(buildSnapshot(15))
	mv, _ := p.View(matID)
	frozenMatchesView(t, mv)
}

func TestFrozenViewDependent(t *testing.T) {
	p := New()
	base := buildSnapshot(40)
	matID := p.OverlayMaterialized(base)
	target := base.Clone()
	delete(target.Nodes, 1)
	delete(target.Edges, 1)
	target.Nodes[99] = struct{}{}
	d := delta.Compute(target, base)
	histID, err := p.OverlayDependent(matID, d, 5)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.View(histID)
	frozenMatchesView(t, v)
	f := v.Freeze()
	found99 := false
	f.ForEachNode(func(n graph.NodeID) bool {
		if n == 99 {
			found99 = true
		}
		if n == 1 {
			t.Fatal("deleted node visible in frozen dependent view")
		}
		return true
	})
	if !found99 {
		t.Error("exception node missing from frozen view")
	}
}
