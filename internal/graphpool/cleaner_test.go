package graphpool

import (
	"testing"
	"time"
)

func TestCleanerBackgroundPass(t *testing.T) {
	p := New()
	id := p.OverlaySnapshot(buildSnapshot(20), 1)
	c := NewCleaner(p, time.Millisecond)
	c.Start()
	c.Start() // double start is a no-op
	defer c.Stop()

	if err := p.Release(id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().PoolNodes == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := p.Stats().PoolNodes; n != 0 {
		t.Errorf("background cleaner left %d nodes", n)
	}
	if c.TotalCleaned() == 0 {
		t.Error("TotalCleaned = 0")
	}
	c.Stop()
	c.Stop() // double stop is a no-op
}

func TestCleanerForceClean(t *testing.T) {
	p := New()
	id := p.OverlaySnapshot(buildSnapshot(10), 1)
	c := NewCleaner(p, time.Hour) // never fires on its own
	p.Release(id)
	if n := c.ForceClean(); n == 0 {
		t.Error("ForceClean removed nothing")
	}
	if p.Stats().PoolNodes != 0 {
		t.Error("pool not emptied")
	}
}
