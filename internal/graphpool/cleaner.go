package graphpool

import (
	"sync"
	"time"
)

// Cleaner performs the paper's lazy clean-up: instead of eagerly resetting
// bits when a graph is released, a background pass periodically scans the
// pool, resets the bits of released graphs and evicts elements that belong
// to no active graph. ForceClean can be called when memory is low; it runs
// a pass immediately and is not interrupted.
type Cleaner struct {
	pool     *Pool
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	cleaned int64
}

// NewCleaner creates a cleaner for the pool that runs every interval once
// started.
func NewCleaner(pool *Pool, interval time.Duration) *Cleaner {
	return &Cleaner{pool: pool, interval: interval}
}

// Start launches the background pass. Starting an already started cleaner
// is a no-op.
func (c *Cleaner) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.run(c.stop, c.done)
}

func (c *Cleaner) run(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			n := c.pool.CleanNow()
			c.mu.Lock()
			c.cleaned += int64(n)
			c.mu.Unlock()
		}
	}
}

// Stop halts the background pass and waits for it to exit. Stopping a
// stopped cleaner is a no-op.
func (c *Cleaner) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// ForceClean runs a full cleanup pass synchronously (the "system is running
// low on memory" path) and returns the number of elements liberated.
func (c *Cleaner) ForceClean() int {
	n := c.pool.CleanNow()
	c.mu.Lock()
	c.cleaned += int64(n)
	c.mu.Unlock()
	return n
}

// TotalCleaned returns the cumulative number of elements evicted.
func (c *Cleaner) TotalCleaned() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cleaned
}
