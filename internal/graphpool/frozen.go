package graphpool

import (
	"historygraph/internal/bitset"
	"historygraph/internal/graph"
)

// FrozenView is a lock-free, immutable projection of a View for iterative
// analytics (the paper runs PageRank directly over the pool). Freezing
// resolves the union adjacency once and copies each element's relevant
// bitmap words inline; traversal then pays exactly one bitmap membership
// test per visited element — no locks, no pointer chasing — which is the
// cost the paper's bitmap-penalty experiment measures (Section 7: ~7% on
// PageRank).
//
// The projection reflects the pool at freeze time; graphs overlaid or
// released afterwards are not observed. Freeze again to refresh.
type FrozenView struct {
	test    membershipTest
	nodes   []frozenNode
	adj     map[graph.NodeID][]frozenEdge
	numNode int
}

type frozenNode struct {
	id   graph.NodeID
	word uint64 // the bitmap word(s) the test needs, packed
}

type frozenEdge struct {
	other graph.NodeID
	word  uint64
}

// membershipTest evaluates membership from the packed word: the exception
// bit pair (for historical graphs) and the dependency bit are shifted into
// known positions at freeze time.
type membershipTest struct {
	excMask, memMask, depMask uint64
	useDep                    bool
}

func (t membershipTest) member(w uint64) bool {
	if w&t.excMask != 0 {
		return w&t.memMask != 0
	}
	if t.useDep {
		return w&t.depMask != 0
	}
	return false
}

// pack extracts the bits the test needs into one word: bit positions 0/1
// hold the entry pair (or the single bit), position 2 the dependency bit.
func pack(bm *bitset.Bits, excBit, memBit, depBit int) uint64 {
	var w uint64
	if excBit >= 0 && bm.Get(excBit) {
		w |= 1
	}
	if memBit >= 0 && bm.Get(memBit) {
		w |= 2
	}
	if depBit >= 0 && bm.Get(depBit) {
		w |= 4
	}
	return w
}

// Freeze builds the lock-free projection of the view.
func (v *View) Freeze() *FrozenView {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	entry := v.entry
	// Resolve the bit layout once.
	excBit, memBit, depBit := -1, -1, -1
	test := membershipTest{excMask: 1, memMask: 2, depMask: 4}
	switch entry.kind {
	case KindCurrent:
		// Membership is bit 0: model as "always exceptional".
		excBit, memBit = -2, 0 // excBit -2: see below, force exc set
	case KindMaterialized:
		excBit, memBit = -2, entry.bit
	default:
		excBit, memBit = entry.bit, entry.bit+1
		if entry.dep != NoDependency {
			if dep, ok := v.p.graphs[entry.dep]; ok {
				test.useDep = true
				depBit = dep.bit // current graph: bit 0; materialized: its bit
			}
		}
	}
	packOne := func(bm *bitset.Bits) uint64 {
		if excBit == -2 { // non-historical: exception always "set"
			return 1 | pack(bm, -1, memBit, -1)
		}
		return pack(bm, excBit, memBit, depBit)
	}

	f := &FrozenView{test: test, adj: make(map[graph.NodeID][]frozenEdge), numNode: entry.nodeCount}
	for id, pn := range v.p.nodes {
		f.nodes = append(f.nodes, frozenNode{id: id, word: packOne(&pn.bm)})
	}
	for _, pe := range v.p.edges {
		w := packOne(&pe.bm)
		f.adj[pe.info.From] = append(f.adj[pe.info.From], frozenEdge{other: pe.info.To, word: w})
		if pe.info.To != pe.info.From {
			f.adj[pe.info.To] = append(f.adj[pe.info.To], frozenEdge{other: pe.info.From, word: w})
		}
	}
	return f
}

// NumNodes implements the analytics Graph interface.
func (f *FrozenView) NumNodes() int { return f.numNode }

// ForEachNode implements the analytics Graph interface.
func (f *FrozenView) ForEachNode(fn func(graph.NodeID) bool) {
	for _, n := range f.nodes {
		if f.test.member(n.word) {
			if !fn(n.id) {
				return
			}
		}
	}
}

// Neighbors implements the analytics Graph interface (allocating).
func (f *FrozenView) Neighbors(n graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, e := range f.adj[n] {
		if f.test.member(e.word) {
			out = append(out, e.other)
		}
	}
	return out
}

// ForEachNeighbor visits n's neighbors without allocating; every visit
// performs one bitmap membership test (the measured penalty).
func (f *FrozenView) ForEachNeighbor(n graph.NodeID, fn func(graph.NodeID) bool) {
	for _, e := range f.adj[n] {
		if f.test.member(e.word) {
			if !fn(e.other) {
				return
			}
		}
	}
}

// Degree counts n's edges in this graph.
func (f *FrozenView) Degree(n graph.NodeID) int {
	d := 0
	for _, e := range f.adj[n] {
		if f.test.member(e.word) {
			d++
		}
	}
	return d
}
