// Package graphpool implements GraphPool (Section 6 of the paper): an
// in-memory structure that maintains many graphs — the current graph,
// retrieved historical snapshots, and materialized DeltaGraph nodes —
// overlaid non-redundantly on a single union graph.
//
// Every element (node, edge, and each distinct attribute value) carries a
// bitmap that records which of the active graphs contain it. Bits 0 and 1
// are reserved for the current graph: bit 0 is current membership; bit 1
// marks elements recently deleted from the current graph that are not yet
// flushed into the DeltaGraph index. Each historical graph is assigned a
// bit pair {2i, 2i+1}; a materialized graph a single bit.
//
// The bit pair enables the paper's dependent-graph optimization: a
// historical graph close to a materialized graph (or the current graph)
// stores only its exceptions. Bit 2i set means "explicit: bit 2i+1 is the
// membership"; bit 2i clear means "inherit membership from the dependency".
// Only exception elements are touched when such a graph is overlaid.
package graphpool

import (
	"fmt"
	"sort"
	"sync"

	"historygraph/internal/bitset"
	"historygraph/internal/delta"
	"historygraph/internal/graph"
)

// GraphID identifies one active graph in the pool. The current graph is
// always CurrentGraph.
type GraphID int

// CurrentGraph is the GraphID of the always-present current graph.
const CurrentGraph GraphID = 0

// NoDependency marks a historical graph stored explicitly.
const NoDependency GraphID = -1

// GraphKind classifies the active graphs (the "Graph" column of the
// paper's GraphID-bit mapping table).
type GraphKind uint8

// Graph kinds.
const (
	KindCurrent GraphKind = iota
	KindHistorical
	KindMaterialized
)

func (k GraphKind) String() string {
	switch k {
	case KindCurrent:
		return "Current"
	case KindHistorical:
		return "Hist. Graph"
	case KindMaterialized:
		return "Mat. Graph"
	}
	return "?"
}

// attrVal is one attribute value with the bitmap of graphs holding it.
type attrVal struct {
	val string
	bm  bitset.Bits
}

type poolNode struct {
	bm    bitset.Bits
	attrs map[string][]*attrVal
}

type poolEdge struct {
	info  graph.EdgeInfo
	bm    bitset.Bits
	attrs map[string][]*attrVal
}

type graphEntry struct {
	id         GraphID
	kind       GraphKind
	bit        int // first bit; historical graphs also own bit+1
	dep        GraphID
	at         graph.Time
	released   bool
	dependents int
	pins       int
	nodeCount  int
	edgeCount  int
}

// Pool is the GraphPool. It is safe for concurrent use; retrieval overlays
// take the write lock, view reads take the read lock.
type Pool struct {
	mu     sync.RWMutex
	nodes  map[graph.NodeID]*poolNode
	edges  map[graph.EdgeID]*poolEdge
	adj    map[graph.NodeID][]graph.EdgeID
	graphs map[GraphID]*graphEntry
	nextID GraphID
	// Bit allocation: historical graphs take pairs, materialized singles.
	nextBit     int
	freePairs   []int
	freeSingles []int
}

// New returns an empty pool containing only the (empty) current graph.
func New() *Pool {
	p := &Pool{
		nodes:   make(map[graph.NodeID]*poolNode),
		edges:   make(map[graph.EdgeID]*poolEdge),
		adj:     make(map[graph.NodeID][]graph.EdgeID),
		graphs:  make(map[GraphID]*graphEntry),
		nextID:  1,
		nextBit: 2, // bits 0 and 1 are the current graph's
	}
	p.graphs[CurrentGraph] = &graphEntry{id: CurrentGraph, kind: KindCurrent, bit: 0, dep: NoDependency}
	return p
}

func (p *Pool) allocPair() int {
	if n := len(p.freePairs); n > 0 {
		bit := p.freePairs[n-1]
		p.freePairs = p.freePairs[:n-1]
		return bit
	}
	bit := p.nextBit
	p.nextBit += 2
	return bit
}

func (p *Pool) allocSingle() int {
	if n := len(p.freeSingles); n > 0 {
		bit := p.freeSingles[n-1]
		p.freeSingles = p.freeSingles[:n-1]
		return bit
	}
	bit := p.nextBit
	p.nextBit++
	return bit
}

func (p *Pool) node(id graph.NodeID) *poolNode {
	n := p.nodes[id]
	if n == nil {
		n = &poolNode{}
		p.nodes[id] = n
	}
	return n
}

func (p *Pool) edge(id graph.EdgeID, info graph.EdgeInfo) *poolEdge {
	e := p.edges[id]
	if e == nil {
		e = &poolEdge{info: info}
		p.edges[id] = e
		p.adj[info.From] = append(p.adj[info.From], id)
		if info.To != info.From {
			p.adj[info.To] = append(p.adj[info.To], id)
		}
	}
	return e
}

func setAttr(attrs *map[string][]*attrVal, name, val string, bit int) {
	if *attrs == nil {
		*attrs = make(map[string][]*attrVal)
	}
	vals := (*attrs)[name]
	for _, av := range vals {
		if av.val == val {
			av.bm.Set(bit)
			return
		}
	}
	av := &attrVal{val: val}
	av.bm.Set(bit)
	(*attrs)[name] = append(vals, av)
}

// member evaluates the bitmap semantics for one graph. The caller holds at
// least the read lock.
func (p *Pool) member(bm *bitset.Bits, g *graphEntry) bool {
	switch g.kind {
	case KindCurrent:
		return bm.Get(0)
	case KindMaterialized:
		return bm.Get(g.bit)
	default: // KindHistorical
		if bm.Get(g.bit) {
			return bm.Get(g.bit + 1)
		}
		if g.dep != NoDependency {
			if dep, ok := p.graphs[g.dep]; ok {
				return p.member(bm, dep)
			}
		}
		return false
	}
}

// OverlaySnapshot registers a retrieved historical snapshot, overlaying
// every element explicitly (no dependency). at records the query timepoint
// for the mapping table.
func (p *Pool) OverlaySnapshot(s *graph.Snapshot, at graph.Time) GraphID {
	p.mu.Lock()
	defer p.mu.Unlock()
	entry := &graphEntry{id: p.nextID, kind: KindHistorical, bit: p.allocPair(), dep: NoDependency, at: at}
	p.nextID++
	p.graphs[entry.id] = entry
	memberBit := entry.bit + 1
	for n := range s.Nodes {
		pn := p.node(n)
		pn.bm.Set(entry.bit)
		pn.bm.Set(memberBit)
	}
	for e, info := range s.Edges {
		pe := p.edge(e, info)
		pe.bm.Set(entry.bit)
		pe.bm.Set(memberBit)
	}
	for n, attrs := range s.NodeAttrs {
		pn := p.node(n)
		for k, v := range attrs {
			setAttr(&pn.attrs, k, v, entry.bit)
			setAttr(&pn.attrs, k, v, memberBit)
		}
	}
	for e, attrs := range s.EdgeAttrs {
		pe, ok := p.edges[e]
		if !ok {
			continue // attribute for an edge the snapshot does not contain
		}
		for k, v := range attrs {
			setAttr(&pe.attrs, k, v, entry.bit)
			setAttr(&pe.attrs, k, v, memberBit)
		}
	}
	entry.nodeCount = len(s.Nodes)
	entry.edgeCount = len(s.Edges)
	return entry.id
}

// OverlayMaterialized registers a materialized DeltaGraph node's graph
// (which may not be a valid snapshot of any time point) under a single bit.
func (p *Pool) OverlayMaterialized(s *graph.Snapshot) GraphID {
	p.mu.Lock()
	defer p.mu.Unlock()
	entry := &graphEntry{id: p.nextID, kind: KindMaterialized, bit: p.allocSingle(), dep: NoDependency}
	p.nextID++
	p.graphs[entry.id] = entry
	for n := range s.Nodes {
		p.node(n).bm.Set(entry.bit)
	}
	for e, info := range s.Edges {
		p.edge(e, info).bm.Set(entry.bit)
	}
	for n, attrs := range s.NodeAttrs {
		pn := p.node(n)
		for k, v := range attrs {
			setAttr(&pn.attrs, k, v, entry.bit)
		}
	}
	for e, attrs := range s.EdgeAttrs {
		if pe, ok := p.edges[e]; ok {
			for k, v := range attrs {
				setAttr(&pe.attrs, k, v, entry.bit)
			}
		}
	}
	entry.nodeCount = len(s.Nodes)
	entry.edgeCount = len(s.Edges)
	return entry.id
}

// OverlayDependent registers a historical graph stored as exceptions
// relative to dep (a materialized graph or the current graph): d is the
// delta that transforms dep's graph into the snapshot being registered.
// Only the exception elements are touched — the optimization the bit pair
// exists for.
func (p *Pool) OverlayDependent(dep GraphID, d *delta.Delta, at graph.Time) (GraphID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	depEntry, ok := p.graphs[dep]
	if !ok || depEntry.released {
		return 0, fmt.Errorf("graphpool: dependency graph %d not active", dep)
	}
	if depEntry.kind == KindHistorical {
		return 0, fmt.Errorf("graphpool: dependency must be the current graph or a materialized graph")
	}
	entry := &graphEntry{id: p.nextID, kind: KindHistorical, bit: p.allocPair(), dep: dep, at: at}
	p.nextID++
	p.graphs[entry.id] = entry
	depEntry.dependents++

	exc, member := entry.bit, entry.bit+1
	for _, n := range d.AddNodes {
		pn := p.node(n)
		pn.bm.Set(exc)
		pn.bm.Set(member)
	}
	for _, n := range d.DelNodes {
		pn := p.node(n)
		pn.bm.Set(exc)
		pn.bm.Clear(member)
	}
	for _, e := range d.AddEdges {
		pe := p.edge(e.ID, graph.EdgeInfo{From: e.From, To: e.To, Directed: e.Directed})
		pe.bm.Set(exc)
		pe.bm.Set(member)
	}
	for _, e := range d.DelEdges {
		pe := p.edge(e.ID, graph.EdgeInfo{From: e.From, To: e.To, Directed: e.Directed})
		pe.bm.Set(exc)
		pe.bm.Clear(member)
	}
	for _, rec := range d.SetNodeAttrs {
		pn := p.node(rec.Node)
		// Mark every existing value of this attribute as an exception
		// (excluded), then include the new value.
		for _, av := range pn.attrs[rec.Attr] {
			av.bm.Set(exc)
			av.bm.Clear(member)
		}
		setAttr(&pn.attrs, rec.Attr, rec.Val, exc)
		setAttr(&pn.attrs, rec.Attr, rec.Val, member)
	}
	for _, rec := range d.DelNodeAttrs {
		pn := p.node(rec.Node)
		for _, av := range pn.attrs[rec.Attr] {
			av.bm.Set(exc)
			av.bm.Clear(member)
		}
	}
	for _, rec := range d.SetEdgeAttrs {
		if pe, ok := p.edges[rec.Edge]; ok {
			for _, av := range pe.attrs[rec.Attr] {
				av.bm.Set(exc)
				av.bm.Clear(member)
			}
			setAttr(&pe.attrs, rec.Attr, rec.Val, exc)
			setAttr(&pe.attrs, rec.Attr, rec.Val, member)
		}
	}
	for _, rec := range d.DelEdgeAttrs {
		if pe, ok := p.edges[rec.Edge]; ok {
			for _, av := range pe.attrs[rec.Attr] {
				av.bm.Set(exc)
				av.bm.Clear(member)
			}
		}
	}
	entry.nodeCount = depEntry.nodeCount + len(d.AddNodes) - len(d.DelNodes)
	entry.edgeCount = depEntry.edgeCount + len(d.AddEdges) - len(d.DelEdges)
	return entry.id, nil
}

// LoadCurrent seeds the current graph (bit 0) from a full snapshot; used
// when an index checkpoint is reopened. Any previous current-graph content
// is unmarked first.
func (p *Pool) LoadCurrent(s *graph.Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pn := range p.nodes {
		pn.bm.Clear(0)
		for _, vals := range pn.attrs {
			for _, av := range vals {
				av.bm.Clear(0)
			}
		}
	}
	for _, pe := range p.edges {
		pe.bm.Clear(0)
		for _, vals := range pe.attrs {
			for _, av := range vals {
				av.bm.Clear(0)
			}
		}
	}
	for n := range s.Nodes {
		p.node(n).bm.Set(0)
	}
	for e, info := range s.Edges {
		p.edge(e, info).bm.Set(0)
	}
	for n, attrs := range s.NodeAttrs {
		pn := p.node(n)
		for k, v := range attrs {
			setAttr(&pn.attrs, k, v, 0)
		}
	}
	for e, attrs := range s.EdgeAttrs {
		if pe, ok := p.edges[e]; ok {
			for k, v := range attrs {
				setAttr(&pe.attrs, k, v, 0)
			}
		}
	}
	cur := p.graphs[CurrentGraph]
	cur.nodeCount = len(s.Nodes)
	cur.edgeCount = len(s.Edges)
}

// ApplyEvent updates the current graph in place (bits 0 and 1). Deleted
// elements keep bit 1 set until ClearRecent is called, marking them as
// "recently deleted but not yet in the DeltaGraph index".
func (p *Pool) ApplyEvent(ev graph.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.graphs[CurrentGraph]
	switch ev.Type {
	case graph.AddNode:
		pn := p.node(ev.Node)
		if !pn.bm.Get(0) {
			cur.nodeCount++
		}
		pn.bm.Set(0)
	case graph.DelNode:
		pn := p.node(ev.Node)
		if pn.bm.Get(0) {
			cur.nodeCount--
		}
		pn.bm.Clear(0)
		pn.bm.Set(1)
	case graph.AddEdge:
		pe := p.edge(ev.Edge, graph.EdgeInfo{From: ev.Node, To: ev.Node2, Directed: ev.Directed})
		if !pe.bm.Get(0) {
			cur.edgeCount++
		}
		pe.bm.Set(0)
	case graph.DelEdge:
		pe := p.edge(ev.Edge, graph.EdgeInfo{From: ev.Node, To: ev.Node2, Directed: ev.Directed})
		if pe.bm.Get(0) {
			cur.edgeCount--
		}
		pe.bm.Clear(0)
		pe.bm.Set(1)
	case graph.SetNodeAttr:
		pn := p.node(ev.Node)
		for _, av := range pn.attrs[ev.Attr] {
			if av.bm.Get(0) {
				av.bm.Clear(0)
				av.bm.Set(1)
			}
		}
		if ev.HasNew {
			setAttr(&pn.attrs, ev.Attr, ev.New, 0)
		}
	case graph.SetEdgeAttr:
		if pe, ok := p.edges[ev.Edge]; ok {
			for _, av := range pe.attrs[ev.Attr] {
				if av.bm.Get(0) {
					av.bm.Clear(0)
					av.bm.Set(1)
				}
			}
			if ev.HasNew {
				setAttr(&pe.attrs, ev.Attr, ev.New, 0)
			}
		}
	}
}

// ClearRecent clears bit 1 everywhere: the recently deleted elements are
// now covered by the on-disk index (called after a leaf-eventlist flush).
func (p *Pool) ClearRecent() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pn := range p.nodes {
		pn.bm.Clear(1)
		for _, vals := range pn.attrs {
			for _, av := range vals {
				av.bm.Clear(1)
			}
		}
	}
	for _, pe := range p.edges {
		pe.bm.Clear(1)
		for _, vals := range pe.attrs {
			for _, av := range vals {
				av.bm.Clear(1)
			}
		}
	}
}

// Pin takes a reference on an active graph: a pinned graph survives
// CleanNow even after Release, so callers holding long-lived Views (the
// server's hot-snapshot cache) can guarantee the bits stay valid while a
// read is in flight. Pinning a released graph is an error.
func (p *Pool) Pin(id GraphID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	entry, ok := p.graphs[id]
	if !ok || entry.released {
		return fmt.Errorf("graphpool: graph %d not active", id)
	}
	entry.pins++
	return nil
}

// Unpin drops a reference taken with Pin. Once a released graph's pin
// count reaches zero the next CleanNow reclaims it. Unpinning works on
// released-but-not-yet-cleaned graphs so readers can finish after an
// eviction.
func (p *Pool) Unpin(id GraphID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	entry, ok := p.graphs[id]
	if !ok {
		return fmt.Errorf("graphpool: graph %d not found", id)
	}
	if entry.pins <= 0 {
		return fmt.Errorf("graphpool: graph %d not pinned", id)
	}
	entry.pins--
	return nil
}

// Pins returns the current pin count of a graph (0 if unknown).
func (p *Pool) Pins(id GraphID) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if entry, ok := p.graphs[id]; ok {
		return entry.pins
	}
	return 0
}

// Release marks a graph as no longer needed. Its bits are reclaimed by the
// next CleanNow. Releasing a materialized graph that other active graphs
// depend on is an error; the current graph can never be released.
func (p *Pool) Release(id GraphID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	entry, ok := p.graphs[id]
	if !ok {
		return fmt.Errorf("graphpool: graph %d not found", id)
	}
	if entry.kind == KindCurrent {
		return fmt.Errorf("graphpool: cannot release the current graph")
	}
	if entry.dependents > 0 {
		return fmt.Errorf("graphpool: graph %d has %d dependent graphs", id, entry.dependents)
	}
	if entry.released {
		return nil
	}
	entry.released = true
	if entry.dep != NoDependency {
		if dep, ok := p.graphs[entry.dep]; ok {
			dep.dependents--
		}
	}
	return nil
}

// CleanNow performs the lazy cleanup pass: it clears the bits of every
// released graph, deletes elements whose bitmaps become empty, and recycles
// the bits. It returns the number of elements removed from the pool.
// (The paper performs this periodically in the absence of query load; the
// library leaves scheduling to the caller — see Cleaner.)
func (p *Pool) CleanNow() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var bits []int
	for id, entry := range p.graphs {
		if !entry.released || entry.pins > 0 {
			continue
		}
		bits = append(bits, entry.bit)
		if entry.kind == KindHistorical {
			bits = append(bits, entry.bit+1)
			p.freePairs = append(p.freePairs, entry.bit)
		} else {
			p.freeSingles = append(p.freeSingles, entry.bit)
		}
		delete(p.graphs, id)
	}
	if len(bits) == 0 {
		return 0
	}
	removed := 0
	for id, pn := range p.nodes {
		for _, b := range bits {
			pn.bm.Clear(b)
		}
		for name, vals := range pn.attrs {
			kept := vals[:0]
			for _, av := range vals {
				for _, b := range bits {
					av.bm.Clear(b)
				}
				if av.bm.Any() {
					kept = append(kept, av)
				} else {
					removed++
				}
			}
			if len(kept) == 0 {
				delete(pn.attrs, name)
			} else {
				pn.attrs[name] = kept
			}
		}
		if !pn.bm.Any() && len(pn.attrs) == 0 {
			delete(p.nodes, id)
			removed++
		}
	}
	for id, pe := range p.edges {
		for _, b := range bits {
			pe.bm.Clear(b)
		}
		for name, vals := range pe.attrs {
			kept := vals[:0]
			for _, av := range vals {
				for _, b := range bits {
					av.bm.Clear(b)
				}
				if av.bm.Any() {
					kept = append(kept, av)
				} else {
					removed++
				}
			}
			if len(kept) == 0 {
				delete(pe.attrs, name)
			} else {
				pe.attrs[name] = kept
			}
		}
		if !pe.bm.Any() && len(pe.attrs) == 0 {
			delete(p.edges, id)
			p.dropAdj(pe.info.From, id)
			if pe.info.To != pe.info.From {
				p.dropAdj(pe.info.To, id)
			}
			removed++
		}
	}
	return removed
}

func (p *Pool) dropAdj(n graph.NodeID, e graph.EdgeID) {
	list := p.adj[n]
	for i, id := range list {
		if id == e {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(p.adj, n)
	} else {
		p.adj[n] = list
	}
}

// MappingRow is one row of the GraphID-bit mapping table (the paper's
// Table 3 / Figure 5(c)).
type MappingRow struct {
	Bits [2]int // second is -1 for single-bit graphs
	ID   GraphID
	Kind GraphKind
	Dep  GraphID // NoDependency if independent
	At   graph.Time
}

// MappingTable returns the active GraphID-bit mapping rows sorted by first
// bit.
func (p *Pool) MappingTable() []MappingRow {
	p.mu.RLock()
	defer p.mu.RUnlock()
	rows := make([]MappingRow, 0, len(p.graphs))
	for _, e := range p.graphs {
		row := MappingRow{ID: e.id, Kind: e.kind, Dep: e.dep, At: e.at}
		row.Bits[0] = e.bit
		row.Bits[1] = -1
		if e.kind == KindHistorical || e.kind == KindCurrent {
			row.Bits[1] = e.bit + 1
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Bits[0] < rows[j].Bits[0] })
	return rows
}

// Stats summarizes the pool's contents.
type Stats struct {
	ActiveGraphs int
	PinnedGraphs int // graphs with at least one Pin reference
	PoolNodes    int // union-graph nodes resident
	PoolEdges    int
	Bits         int // bitmap width in use
}

// Stats returns current pool statistics.
func (p *Pool) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := Stats{
		ActiveGraphs: len(p.graphs),
		PoolNodes:    len(p.nodes),
		PoolEdges:    len(p.edges),
		Bits:         p.nextBit,
	}
	for _, e := range p.graphs {
		if e.pins > 0 {
			st.PinnedGraphs++
		}
	}
	return st
}

// ApproxBytes estimates the pool's memory footprint: element records,
// adjacency entries, attribute values, and bitmaps. It is the quantity
// plotted in the paper's Figure 8(a).
func (p *Pool) ApproxBytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	const (
		nodeOverhead = 48 // map entry + struct
		edgeOverhead = 72
		attrOverhead = 40
		adjEntry     = 8
	)
	var total int64
	for _, pn := range p.nodes {
		total += nodeOverhead + int64(pn.bm.SizeBytes())
		for name, vals := range pn.attrs {
			for _, av := range vals {
				total += attrOverhead + int64(len(name)+len(av.val)) + int64(av.bm.SizeBytes())
			}
		}
	}
	for _, pe := range p.edges {
		total += edgeOverhead + int64(pe.bm.SizeBytes())
		for name, vals := range pe.attrs {
			for _, av := range vals {
				total += attrOverhead + int64(len(name)+len(av.val)) + int64(av.bm.SizeBytes())
			}
		}
	}
	for _, list := range p.adj {
		total += adjEntry * int64(len(list))
	}
	return total
}
