package graphpool

import (
	"fmt"

	"historygraph/internal/graph"
)

// View is a read-only view of one active graph overlaid in the pool — the
// HistGraph handle the paper's programmatic API returns. All methods
// evaluate membership through the bitmap semantics, so a view is always
// consistent with the pool even as other graphs come and go.
type View struct {
	p     *Pool
	entry *graphEntry
}

// View returns a read view of the given active graph.
func (p *Pool) View(id GraphID) (*View, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	entry, ok := p.graphs[id]
	if !ok || entry.released {
		return nil, fmt.Errorf("graphpool: graph %d not active", id)
	}
	return &View{p: p, entry: entry}, nil
}

// Current returns a view of the current graph.
func (p *Pool) Current() *View {
	v, _ := p.View(CurrentGraph)
	return v
}

// ID returns the view's graph ID.
func (v *View) ID() GraphID { return v.entry.id }

// At returns the timepoint the graph was retrieved for (zero for the
// current graph and materialized graphs).
func (v *View) At() graph.Time { return v.entry.at }

// DependsOnCurrent reports whether this graph is overlaid as exceptions
// against the current graph. Such a view's non-exception membership is
// evaluated through the current graph's live bits, so it is only valid
// while the current graph does not change — callers that hold views
// across updates (the server's hot-snapshot cache) must drop it on
// append.
func (v *View) DependsOnCurrent() bool { return v.entry.dep == CurrentGraph }

// NumNodes returns the node count of this graph.
func (v *View) NumNodes() int {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	return v.entry.nodeCount
}

// NumEdges returns the edge count of this graph.
func (v *View) NumEdges() int {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	return v.entry.edgeCount
}

// HasNode reports whether the node is in this graph.
func (v *View) HasNode(n graph.NodeID) bool {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	pn, ok := v.p.nodes[n]
	return ok && v.p.member(&pn.bm, v.entry)
}

// HasEdge reports whether the edge is in this graph.
func (v *View) HasEdge(e graph.EdgeID) bool {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	pe, ok := v.p.edges[e]
	return ok && v.p.member(&pe.bm, v.entry)
}

// EdgeInfo returns the endpoints of an edge in this graph.
func (v *View) EdgeInfo(e graph.EdgeID) (graph.EdgeInfo, bool) {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	pe, ok := v.p.edges[e]
	if !ok || !v.p.member(&pe.bm, v.entry) {
		return graph.EdgeInfo{}, false
	}
	return pe.info, true
}

// ForEachNode calls fn for every node in this graph until fn returns false.
// The pool's read lock is held for the duration; fn must not call pool
// methods that take the write lock.
func (v *View) ForEachNode(fn func(graph.NodeID) bool) {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	for id, pn := range v.p.nodes {
		if v.p.member(&pn.bm, v.entry) {
			if !fn(id) {
				return
			}
		}
	}
}

// ForEachEdge calls fn for every edge in this graph until fn returns false.
func (v *View) ForEachEdge(fn func(graph.EdgeID, graph.EdgeInfo) bool) {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	for id, pe := range v.p.edges {
		if v.p.member(&pe.bm, v.entry) {
			if !fn(id, pe.info) {
				return
			}
		}
	}
}

// Nodes returns all node IDs in this graph (unordered).
func (v *View) Nodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, v.NumNodes())
	v.ForEachNode(func(n graph.NodeID) bool {
		out = append(out, n)
		return true
	})
	return out
}

// IncidentEdges returns the IDs of this graph's edges incident to n.
func (v *View) IncidentEdges(n graph.NodeID) []graph.EdgeID {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	var out []graph.EdgeID
	for _, e := range v.p.adj[n] {
		if pe, ok := v.p.edges[e]; ok && v.p.member(&pe.bm, v.entry) {
			out = append(out, e)
		}
	}
	return out
}

// Neighbors returns the distinct nodes adjacent to n in this graph
// (treating directed edges as traversable both ways, as the paper's
// getNeighbors example does).
func (v *View) Neighbors(n graph.NodeID) []graph.NodeID {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	seen := make(map[graph.NodeID]struct{})
	var out []graph.NodeID
	for _, e := range v.p.adj[n] {
		pe, ok := v.p.edges[e]
		if !ok || !v.p.member(&pe.bm, v.entry) {
			continue
		}
		other := pe.info.Other(n)
		if _, dup := seen[other]; !dup {
			seen[other] = struct{}{}
			out = append(out, other)
		}
	}
	return out
}

// Degree returns the number of edges of this graph incident to n.
func (v *View) Degree(n graph.NodeID) int {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	d := 0
	for _, e := range v.p.adj[n] {
		if pe, ok := v.p.edges[e]; ok && v.p.member(&pe.bm, v.entry) {
			d++
		}
	}
	return d
}

// NodeAttr returns the value of a node attribute in this graph.
func (v *View) NodeAttr(n graph.NodeID, attr string) (string, bool) {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	pn, ok := v.p.nodes[n]
	if !ok || !v.p.member(&pn.bm, v.entry) {
		return "", false
	}
	for _, av := range pn.attrs[attr] {
		if v.p.member(&av.bm, v.entry) {
			return av.val, true
		}
	}
	return "", false
}

// EdgeAttr returns the value of an edge attribute in this graph.
func (v *View) EdgeAttr(e graph.EdgeID, attr string) (string, bool) {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	pe, ok := v.p.edges[e]
	if !ok || !v.p.member(&pe.bm, v.entry) {
		return "", false
	}
	for _, av := range pe.attrs[attr] {
		if v.p.member(&av.bm, v.entry) {
			return av.val, true
		}
	}
	return "", false
}

// NodeAttrs returns all attributes of n in this graph.
func (v *View) NodeAttrs(n graph.NodeID) map[string]string {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	pn, ok := v.p.nodes[n]
	if !ok || !v.p.member(&pn.bm, v.entry) {
		return nil
	}
	out := make(map[string]string)
	for name, vals := range pn.attrs {
		for _, av := range vals {
			if v.p.member(&av.bm, v.entry) {
				out[name] = av.val
				break
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// EdgeAttrs returns all attributes of e in this graph (nil when the edge
// is absent or bare) — the edge-side sibling of NodeAttrs, so run-at-a-
// time consumers (the server's streaming encoder) can walk edges without
// detaching a whole Snapshot.
func (v *View) EdgeAttrs(e graph.EdgeID) map[string]string {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	pe, ok := v.p.edges[e]
	if !ok || !v.p.member(&pe.bm, v.entry) {
		return nil
	}
	out := make(map[string]string)
	for name, vals := range pe.attrs {
		for _, av := range vals {
			if v.p.member(&av.bm, v.entry) {
				out[name] = av.val
				break
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Snapshot extracts a full set-based copy of this graph out of the pool.
func (v *View) Snapshot() *graph.Snapshot {
	v.p.mu.RLock()
	defer v.p.mu.RUnlock()
	s := graph.NewSnapshot()
	for id, pn := range v.p.nodes {
		if !v.p.member(&pn.bm, v.entry) {
			continue
		}
		s.Nodes[id] = struct{}{}
		for name, vals := range pn.attrs {
			for _, av := range vals {
				if v.p.member(&av.bm, v.entry) {
					if s.NodeAttrs[id] == nil {
						s.NodeAttrs[id] = make(map[string]string)
					}
					s.NodeAttrs[id][name] = av.val
					break
				}
			}
		}
	}
	for id, pe := range v.p.edges {
		if !v.p.member(&pe.bm, v.entry) {
			continue
		}
		s.Edges[id] = pe.info
		for name, vals := range pe.attrs {
			for _, av := range vals {
				if v.p.member(&av.bm, v.entry) {
					if s.EdgeAttrs[id] == nil {
						s.EdgeAttrs[id] = make(map[string]string)
					}
					s.EdgeAttrs[id][name] = av.val
					break
				}
			}
		}
	}
	return s
}
