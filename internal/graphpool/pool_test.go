package graphpool

import (
	"math/rand"
	"testing"
	"testing/quick"

	"historygraph/internal/delta"
	"historygraph/internal/graph"
)

// buildSnapshot makes a snapshot with nodes 1..n, a chain of edges, and a
// "name" attribute on every node.
func buildSnapshot(n int) *graph.Snapshot {
	s := graph.NewSnapshot()
	for i := 1; i <= n; i++ {
		id := graph.NodeID(i)
		s.Nodes[id] = struct{}{}
		s.NodeAttrs[id] = map[string]string{"name": "node" + string(rune('a'+i%26))}
	}
	for i := 1; i < n; i++ {
		e := graph.EdgeID(i)
		s.Edges[e] = graph.EdgeInfo{From: graph.NodeID(i), To: graph.NodeID(i + 1)}
		s.EdgeAttrs[e] = map[string]string{"w": "1"}
	}
	return s
}

func TestOverlayAndViewRoundTrip(t *testing.T) {
	p := New()
	s := buildSnapshot(10)
	id := p.OverlaySnapshot(s, 100)
	v, err := p.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if v.At() != 100 {
		t.Errorf("At = %d", v.At())
	}
	if !v.Snapshot().Equal(s) {
		t.Error("extracted snapshot differs from overlaid one")
	}
	if v.NumNodes() != 10 || v.NumEdges() != 9 {
		t.Errorf("counts: %d nodes %d edges", v.NumNodes(), v.NumEdges())
	}
}

func TestMultipleGraphsOverlaid(t *testing.T) {
	p := New()
	s1 := buildSnapshot(10)
	s2 := buildSnapshot(6) // subset of s1
	// s3: disjoint ID range
	s3 := graph.NewSnapshot()
	for i := 100; i < 105; i++ {
		s3.Nodes[graph.NodeID(i)] = struct{}{}
	}
	id1 := p.OverlaySnapshot(s1, 1)
	id2 := p.OverlaySnapshot(s2, 2)
	id3 := p.OverlaySnapshot(s3, 3)

	v1, _ := p.View(id1)
	v2, _ := p.View(id2)
	v3, _ := p.View(id3)
	if !v1.Snapshot().Equal(s1) || !v2.Snapshot().Equal(s2) || !v3.Snapshot().Equal(s3) {
		t.Fatal("co-resident graphs corrupted each other")
	}
	// The union is stored once: pool node count equals union size.
	if st := p.Stats(); st.PoolNodes != 15 {
		t.Errorf("pool nodes = %d, want 15 (10 shared + 5 disjoint)", st.PoolNodes)
	}
	if v2.HasNode(7) {
		t.Error("graph 2 should not contain node 7")
	}
	if !v1.HasNode(7) {
		t.Error("graph 1 should contain node 7")
	}
}

func TestViewTraversal(t *testing.T) {
	p := New()
	s := buildSnapshot(5)
	id := p.OverlaySnapshot(s, 1)
	v, _ := p.View(id)

	nbrs := v.Neighbors(2)
	if len(nbrs) != 2 {
		t.Errorf("Neighbors(2) = %v", nbrs)
	}
	if d := v.Degree(2); d != 2 {
		t.Errorf("Degree(2) = %d", d)
	}
	if d := v.Degree(1); d != 1 {
		t.Errorf("Degree(1) = %d", d)
	}
	if len(v.IncidentEdges(3)) != 2 {
		t.Error("IncidentEdges(3) wrong")
	}
	if got, ok := v.NodeAttr(1, "name"); !ok || got == "" {
		t.Error("NodeAttr missing")
	}
	if got, ok := v.EdgeAttr(1, "w"); !ok || got != "1" {
		t.Error("EdgeAttr missing")
	}
	if _, ok := v.NodeAttr(1, "absent"); ok {
		t.Error("absent attr reported present")
	}
	if info, ok := v.EdgeInfo(1); !ok || info.From != 1 || info.To != 2 {
		t.Error("EdgeInfo wrong")
	}
	if attrs := v.NodeAttrs(1); len(attrs) != 1 {
		t.Errorf("NodeAttrs = %v", attrs)
	}
	if attrs := v.NodeAttrs(999); attrs != nil {
		t.Error("NodeAttrs of absent node should be nil")
	}
	count := 0
	v.ForEachNode(func(graph.NodeID) bool { count++; return count < 3 })
	if count != 3 {
		t.Error("ForEachNode early stop failed")
	}
	if len(v.Nodes()) != 5 {
		t.Error("Nodes() wrong size")
	}
}

func TestCurrentGraphEvents(t *testing.T) {
	p := New()
	p.ApplyEvent(graph.Event{Type: graph.AddNode, Node: 1})
	p.ApplyEvent(graph.Event{Type: graph.AddNode, Node: 2})
	p.ApplyEvent(graph.Event{Type: graph.AddEdge, Edge: 1, Node: 1, Node2: 2})
	p.ApplyEvent(graph.Event{Type: graph.SetNodeAttr, Node: 1, Attr: "a", New: "v1", HasNew: true})
	cur := p.Current()
	if cur.NumNodes() != 2 || cur.NumEdges() != 1 {
		t.Fatalf("current counts: %d, %d", cur.NumNodes(), cur.NumEdges())
	}
	if got, _ := cur.NodeAttr(1, "a"); got != "v1" {
		t.Error("current attr wrong")
	}
	// Update the attribute: old value must leave the current graph.
	p.ApplyEvent(graph.Event{Type: graph.SetNodeAttr, Node: 1, Attr: "a", Old: "v1", HadOld: true, New: "v2", HasNew: true})
	if got, _ := cur.NodeAttr(1, "a"); got != "v2" {
		t.Error("attr update not visible")
	}
	// Delete an edge: bit 1 keeps it resident until ClearRecent.
	p.ApplyEvent(graph.Event{Type: graph.DelEdge, Edge: 1, Node: 1, Node2: 2})
	if cur.HasEdge(1) {
		t.Error("deleted edge still in current graph")
	}
	if p.Stats().PoolEdges != 1 {
		t.Error("recently deleted edge evicted too early")
	}
	p.ClearRecent()
	p.CleanNow()
	// Element had only bit 1 left; after ClearRecent+clean it may be
	// evicted once no graph holds it. (CleanNow only evicts for released
	// graphs' bits, so check membership rather than eviction.)
	if cur.HasEdge(1) {
		t.Error("edge reappeared")
	}
}

func TestDependentGraph(t *testing.T) {
	p := New()
	base := buildSnapshot(100)
	matID := p.OverlayMaterialized(base)

	// The historical graph differs from the materialized one in a few
	// elements: node 101 added, node 1 removed, attr of node 2 changed.
	target := base.Clone()
	target.Nodes[101] = struct{}{}
	delete(target.Nodes, 1)
	delete(target.NodeAttrs, 1)
	delete(target.Edges, 1) // edge 1 touches node 1
	delete(target.EdgeAttrs, 1)
	target.NodeAttrs[2]["name"] = "renamed"

	d := delta.Compute(target, base)
	histID, err := p.OverlayDependent(matID, d, 55)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.View(histID)
	if !v.Snapshot().Equal(target) {
		t.Fatal("dependent view differs from target snapshot")
	}
	if v.HasNode(1) || !v.HasNode(101) || !v.HasNode(50) {
		t.Error("membership via dependency wrong")
	}
	if got, _ := v.NodeAttr(2, "name"); got != "renamed" {
		t.Errorf("exception attr = %q", got)
	}
	if got, _ := v.NodeAttr(3, "name"); got == "" {
		t.Error("inherited attr missing")
	}
	// The materialized view must be unaffected.
	mv, _ := p.View(matID)
	if !mv.Snapshot().Equal(base) {
		t.Error("materialized graph corrupted by dependent overlay")
	}

	// Releasing the dependency before the dependent graph must fail.
	if err := p.Release(matID); err == nil {
		t.Error("released a materialized graph with dependents")
	}
	if err := p.Release(histID); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(matID); err != nil {
		t.Errorf("release after dependent released: %v", err)
	}
}

func TestDependentRequiresMaterializedOrCurrent(t *testing.T) {
	p := New()
	histID := p.OverlaySnapshot(buildSnapshot(3), 1)
	if _, err := p.OverlayDependent(histID, &delta.Delta{}, 2); err == nil {
		t.Error("dependency on a historical graph allowed")
	}
	if _, err := p.OverlayDependent(999, &delta.Delta{}, 2); err == nil {
		t.Error("dependency on unknown graph allowed")
	}
}

func TestDependentOnCurrent(t *testing.T) {
	p := New()
	for i := 1; i <= 10; i++ {
		p.ApplyEvent(graph.Event{Type: graph.AddNode, Node: graph.NodeID(i)})
	}
	d := &delta.Delta{DelNodes: []graph.NodeID{10}, AddNodes: []graph.NodeID{11}}
	id, err := p.OverlayDependent(CurrentGraph, d, 9)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.View(id)
	if v.HasNode(10) || !v.HasNode(11) || !v.HasNode(5) {
		t.Error("dependent-on-current membership wrong")
	}
	if v.NumNodes() != 10 {
		t.Errorf("NumNodes = %d, want 10", v.NumNodes())
	}
}

func TestReleaseAndCleanup(t *testing.T) {
	p := New()
	s1 := buildSnapshot(50)
	id1 := p.OverlaySnapshot(s1, 1)
	id2 := p.OverlaySnapshot(buildSnapshot(30), 2)

	if err := p.Release(id1); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(id1); err != nil {
		t.Errorf("double release should be a no-op: %v", err)
	}
	removed := p.CleanNow()
	if removed == 0 {
		t.Error("cleanup removed nothing")
	}
	// Elements only in graph 1 (nodes 31..50) must be gone.
	if st := p.Stats(); st.PoolNodes != 30 {
		t.Errorf("pool nodes after clean = %d, want 30", st.PoolNodes)
	}
	// Graph 2 must be intact.
	v2, _ := p.View(id2)
	if v2.NumNodes() != 30 || !v2.HasNode(30) {
		t.Error("surviving graph damaged by cleanup")
	}
	if _, err := p.View(id1); err == nil {
		t.Error("released graph still viewable after clean")
	}
	// Bits must be recycled.
	before := p.Stats().Bits
	p.OverlaySnapshot(buildSnapshot(5), 3)
	if p.Stats().Bits != before {
		t.Error("bit pair not recycled")
	}
}

func TestPinDefersCleanup(t *testing.T) {
	p := New()
	s := buildSnapshot(20)
	id := p.OverlaySnapshot(s, 1)
	v, err := p.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(id); err != nil {
		t.Fatal(err)
	}
	// Released graphs are not viewable anew; the pin protects the
	// pre-existing view, not new ones.
	if _, err := p.View(id); err == nil {
		t.Fatal("view of released graph allowed")
	}
	// A released-but-pinned graph survives cleanup with its view intact.
	p.CleanNow()
	if st := p.Stats(); st.ActiveGraphs != 2 || st.PinnedGraphs != 1 {
		t.Fatalf("pinned graph reclaimed: %+v", st)
	}
	if !v.Snapshot().Equal(s) {
		t.Fatal("pinned view corrupted by cleanup")
	}
	if got := p.Pins(id); got != 1 {
		t.Fatalf("Pins = %d, want 1", got)
	}
	if err := p.Unpin(id); err != nil {
		t.Fatal(err)
	}
	if removed := p.CleanNow(); removed == 0 {
		t.Fatal("unpinned released graph not reclaimed")
	}
	if st := p.Stats(); st.ActiveGraphs != 1 || st.PinnedGraphs != 0 {
		t.Fatalf("after unpin+clean: %+v", st)
	}
}

func TestPinErrors(t *testing.T) {
	p := New()
	if err := p.Pin(999); err == nil {
		t.Error("pinned unknown graph")
	}
	id := p.OverlaySnapshot(buildSnapshot(3), 1)
	if err := p.Unpin(id); err == nil {
		t.Error("unpinned a graph with no pins")
	}
	p.Release(id)
	if err := p.Pin(id); err == nil {
		t.Error("pinned a released graph")
	}
}

func TestReleaseErrors(t *testing.T) {
	p := New()
	if err := p.Release(CurrentGraph); err == nil {
		t.Error("released the current graph")
	}
	if err := p.Release(12345); err == nil {
		t.Error("released unknown graph")
	}
}

func TestViewOfReleasedGraphFails(t *testing.T) {
	p := New()
	id := p.OverlaySnapshot(buildSnapshot(3), 1)
	p.Release(id)
	if _, err := p.View(id); err == nil {
		t.Error("view of released graph allowed")
	}
}

func TestMappingTable(t *testing.T) {
	p := New()
	h := p.OverlaySnapshot(buildSnapshot(2), 7)
	m := p.OverlayMaterialized(buildSnapshot(2))
	dep, _ := p.OverlayDependent(m, &delta.Delta{}, 9)
	rows := p.MappingTable()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Kind != KindCurrent || rows[0].Bits != [2]int{0, 1} {
		t.Errorf("current row wrong: %+v", rows[0])
	}
	byID := map[GraphID]MappingRow{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	if r := byID[h]; r.Kind != KindHistorical || r.Bits[1] != r.Bits[0]+1 {
		t.Errorf("historical row wrong: %+v", r)
	}
	if r := byID[m]; r.Kind != KindMaterialized || r.Bits[1] != -1 {
		t.Errorf("materialized row wrong: %+v", r)
	}
	if r := byID[dep]; r.Dep != m {
		t.Errorf("dependent row wrong: %+v", r)
	}
}

func TestApproxBytesGrowsSublinearly(t *testing.T) {
	// Overlaying the same snapshot many times must cost far less than
	// disjoint storage: that is GraphPool's reason to exist (Fig 8a).
	p := New()
	s := buildSnapshot(1000)
	p.OverlaySnapshot(s, 1)
	oneBytes := p.ApproxBytes()
	for i := 2; i <= 20; i++ {
		p.OverlaySnapshot(s, graph.Time(i))
	}
	twentyBytes := p.ApproxBytes()
	if twentyBytes > oneBytes*3 {
		t.Errorf("20 identical graphs cost %dx one graph; want ~1x", twentyBytes/oneBytes)
	}
}

// Property: overlaying random snapshots and releasing a random subset never
// corrupts the survivors.
func TestPoolRandomizedIsolation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New()
		type reg struct {
			id   GraphID
			snap *graph.Snapshot
		}
		var regs []reg
		for i := 0; i < 8; i++ {
			s := graph.NewSnapshot()
			for n := graph.NodeID(1); n <= 40; n++ {
				if rng.Intn(2) == 0 {
					s.Nodes[n] = struct{}{}
				}
			}
			for e := graph.EdgeID(1); e <= 30; e++ {
				u := graph.NodeID(1 + (int(e)*3)%40)
				v := graph.NodeID(1 + (int(e)*11)%40)
				if _, oku := s.Nodes[u]; !oku {
					continue
				}
				if _, okv := s.Nodes[v]; !okv {
					continue
				}
				if rng.Intn(2) == 0 {
					s.Edges[e] = graph.EdgeInfo{From: u, To: v}
				}
			}
			regs = append(regs, reg{p.OverlaySnapshot(s, graph.Time(i)), s})
		}
		// Release a random subset and clean.
		var kept []reg
		for _, r := range regs {
			if rng.Intn(2) == 0 {
				if p.Release(r.id) != nil {
					return false
				}
			} else {
				kept = append(kept, r)
			}
		}
		p.CleanNow()
		for _, r := range kept {
			v, err := p.View(r.id)
			if err != nil || !v.Snapshot().Equal(r.snap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
