package pregel

// PartitionPageRank is the distributed counterpart of Run+PageRankProgram:
// one partition's slice of a damped power iteration, driven superstep by
// superstep by the shard coordinator. Where Run holds every partition
// in-process and exchanges messages at an in-memory barrier, each
// PartitionPageRank lives inside one worker server; the coordinator is
// the barrier, gathering every partition's outgoing cross-partition
// shares and routing them to the owners before the next superstep.
//
// The arithmetic mirrors analytics.PageRank exactly: vertices are the
// snapshot's existing nodes, each initialized to 1/N; per iteration a
// vertex with degree deg > 0 scatters share = damping*rank/deg to every
// distinct adjacent ID (existence of the target checked by its owner,
// which silently drops shares to nonexistent nodes), and every vertex's
// next rank is (1-damping)/N plus its accumulated shares. Only float
// summation order differs from the single-process run — shares arrive
// grouped by source partition instead of in global map order — so merged
// scores match the oracle to rounding, not byte-for-byte; the oracle test
// compares within a documented relative tolerance.

import (
	"sort"

	"historygraph/internal/graph"
	"historygraph/internal/wire"
)

// RowSource is the CSR shape a partition PageRank loads from: every
// locally materialized row (owned nodes and ghost endpoints) with its
// distinct sorted adjacency. csr.Graph implements it.
type RowSource interface {
	NumNodes() int
	ForEachRow(fn func(id graph.NodeID, exists bool, nbrs []graph.NodeID) bool)
}

// PartitionPageRank holds one partition's vertex state across supersteps.
// It is not safe for concurrent use; the serving layer serializes steps
// per job (the coordinator drives one step at a time anyway).
type PartitionPageRank struct {
	damping float64
	parts   int
	self    int
	n       int64 // global vertex count, set by Start

	ranks map[graph.NodeID]float64
	acc   map[graph.NodeID]float64
	adj   map[graph.NodeID][]graph.NodeID
}

// NewPartitionPageRank loads the owned existing vertices and their
// locally visible adjacency from g. Rows are copied, so g may be released
// (or evicted from the CSR cache) once the constructor returns.
func NewPartitionPageRank(g RowSource, parts, self int, damping float64) *PartitionPageRank {
	p := &PartitionPageRank{
		damping: damping, parts: parts, self: self,
		ranks: make(map[graph.NodeID]float64, g.NumNodes()),
		acc:   make(map[graph.NodeID]float64, g.NumNodes()),
		adj:   make(map[graph.NodeID][]graph.NodeID, g.NumNodes()),
	}
	g.ForEachRow(func(id graph.NodeID, exists bool, nbrs []graph.NodeID) bool {
		if !exists || (parts > 1 && graph.Partition(id, parts) != self) {
			return true
		}
		p.ranks[id] = 0
		p.adj[id] = append([]graph.NodeID(nil), nbrs...)
		return true
	})
	return p
}

// NumVertices returns how many vertices this partition owns.
func (p *PartitionPageRank) NumVertices() int64 { return int64(len(p.ranks)) }

// Start finishes setup once the coordinator has gathered every
// partition's boundary pairs: n is the global vertex count; ghosts is the
// flattened deduplicated pair list touching this partition's vertices
// (adjacency stored on other partitions that local rows cannot see).
// Ranks initialize to 1/n.
func (p *PartitionPageRank) Start(n int64, ghosts []int64) {
	p.n = n
	for i := 0; i+1 < len(ghosts); i += 2 {
		a, b := graph.NodeID(ghosts[i]), graph.NodeID(ghosts[i+1])
		if _, ok := p.ranks[a]; ok {
			p.adj[a] = append(p.adj[a], b)
		}
		if _, ok := p.ranks[b]; ok {
			p.adj[b] = append(p.adj[b], a)
		}
	}
	for id, nbrs := range p.adj {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		w := 0
		for i, v := range nbrs {
			if i == 0 || v != nbrs[i-1] {
				nbrs[w] = v
				w++
			}
		}
		p.adj[id] = nbrs[:w]
	}
	if n > 0 {
		init := 1 / float64(n)
		for id := range p.ranks {
			p.ranks[id] = init
		}
	}
}

// Absorb folds one batch of incoming shares into the accumulating round.
// Shares addressed to nonexistent nodes are dropped — this partition owns
// the target, so it alone knows.
func (p *PartitionPageRank) Absorb(inbox []wire.PRMessage) {
	for _, m := range inbox {
		id := graph.NodeID(m.Node)
		if _, ok := p.ranks[id]; ok {
			p.acc[id] += m.Val
		}
	}
}

// Finalize commits the accumulated round: every vertex's rank becomes
// (1-damping)/n plus its accumulated shares, and the accumulator resets.
func (p *PartitionPageRank) Finalize() {
	base := 0.0
	if p.n > 0 {
		base = (1 - p.damping) / float64(p.n)
	}
	for id := range p.ranks {
		p.ranks[id] = base + p.acc[id]
	}
	p.acc = make(map[graph.NodeID]float64, len(p.ranks))
}

// Compute scatters shares from the committed ranks: local targets
// accumulate directly, cross-partition shares come back aggregated per
// target (ascending by node) for the coordinator to route.
func (p *PartitionPageRank) Compute() []wire.PRMessage {
	remote := map[graph.NodeID]float64{}
	for id, r := range p.ranks {
		nbrs := p.adj[id]
		if len(nbrs) == 0 {
			continue
		}
		share := p.damping * r / float64(len(nbrs))
		for _, nb := range nbrs {
			if p.parts <= 1 || graph.Partition(nb, p.parts) == p.self {
				if _, ok := p.ranks[nb]; ok {
					p.acc[nb] += share
				}
			} else {
				remote[nb] += share
			}
		}
	}
	out := make([]wire.PRMessage, 0, len(remote))
	for nb, v := range remote {
		out = append(out, wire.PRMessage{Node: int64(nb), Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// TopK returns this partition's k highest ranks, descending by score with
// ties broken by ascending node ID — per-partition truncation loses
// nothing because every vertex is owned by exactly one partition.
func (p *PartitionPageRank) TopK(k int) []wire.RankEntry {
	all := make([]wire.RankEntry, 0, len(p.ranks))
	for id, r := range p.ranks {
		all = append(all, wire.RankEntry{Node: int64(id), Score: r})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	return all
}
