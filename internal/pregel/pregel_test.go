package pregel

import (
	"math"
	"testing"

	"historygraph/internal/analytics"
	"historygraph/internal/graph"
)

// buildTestGraph: a small graph with a hub and a chain.
func buildTestGraph() *analytics.SnapshotGraph {
	s := graph.NewSnapshot()
	for i := 1; i <= 8; i++ {
		s.Nodes[graph.NodeID(i)] = struct{}{}
	}
	edges := [][2]graph.NodeID{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {4, 5}, {5, 6}, {6, 7}, {7, 8}}
	for i, e := range edges {
		s.Edges[graph.EdgeID(i+1)] = graph.EdgeInfo{From: e[0], To: e[1]}
	}
	return analytics.FromSnapshot(s)
}

func TestPageRankMatchesSequential(t *testing.T) {
	g := buildTestGraph()
	want := analytics.PageRank(g, 0.85, 20)
	for _, workers := range []int{1, 2, 4} {
		got := RunPageRank(g, workers, 20)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d ranks, want %d", workers, len(got), len(want))
		}
		for id, w := range want {
			if math.Abs(got[id]-w) > 1e-9 {
				t.Errorf("workers=%d node %d: %g != %g", workers, id, got[id], w)
			}
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := buildTestGraph()
	ranks := RunPageRank(g, 3, 30)
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("rank mass = %g, want ~1", sum)
	}
}

func TestPageRankHubRanksHighest(t *testing.T) {
	g := buildTestGraph()
	ranks := RunPageRank(g, 2, 25)
	top := analytics.TopK(ranks, 1)
	if len(top) != 1 || top[0] != 1 {
		t.Errorf("top node = %v, want [1]", top)
	}
}

func TestRunTerminatesOnHalt(t *testing.T) {
	g := buildTestGraph()
	_, steps := Run(g, PageRank{Iterations: 5}, Config{Workers: 2, MaxSupersteps: 100})
	if steps > 8 {
		t.Errorf("did not halt early: %d supersteps", steps)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := analytics.FromSnapshot(graph.NewSnapshot())
	ranks, _ := Run(g, PageRank{}, Config{Workers: 2})
	if len(ranks) != 0 {
		t.Error("ranks on empty graph")
	}
}

// haltImmediately tests that a program that halts without messaging stops
// the run at once.
type haltImmediately struct{}

func (haltImmediately) Init(v *Vertex, _ int) { v.Value = 1 }
func (haltImmediately) Compute(v *Vertex, _ []float64, ctx *Context) {
	ctx.VoteToHalt()
}

func TestVoteToHalt(t *testing.T) {
	g := buildTestGraph()
	_, steps := Run(g, haltImmediately{}, Config{Workers: 2, MaxSupersteps: 50})
	if steps != 1 {
		t.Errorf("steps = %d, want 1", steps)
	}
}

// echoOnce checks message delivery across partitions: vertex 1 sends its ID
// to everyone in step 0, receivers store the max received value.
type echoOnce struct{}

func (echoOnce) Init(v *Vertex, _ int) {}
func (echoOnce) Compute(v *Vertex, msgs []float64, ctx *Context) {
	if ctx.Superstep() == 0 && v.ID == 1 {
		for i := 2; i <= 8; i++ {
			ctx.SendTo(graph.NodeID(i), 42)
		}
	}
	for _, m := range msgs {
		if m > v.Value {
			v.Value = m
		}
	}
	ctx.VoteToHalt()
}

func TestCrossPartitionMessages(t *testing.T) {
	g := buildTestGraph()
	vals, _ := Run(g, echoOnce{}, Config{Workers: 4, MaxSupersteps: 5})
	for i := 2; i <= 8; i++ {
		if vals[graph.NodeID(i)] != 42 {
			t.Errorf("node %d did not receive message: %v", i, vals[graph.NodeID(i)])
		}
	}
}
