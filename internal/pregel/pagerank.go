package pregel

import "historygraph/internal/graph"

// PageRank is the vertex program the paper's Dataset 3 experiment runs:
// each superstep a vertex sums incoming rank mass, applies the damping
// factor, and scatters its rank to its neighbors.
type PageRank struct {
	// Damping is the PageRank damping factor; 0 means 0.85.
	Damping float64
	// Iterations fixes the number of supersteps; 0 means 20.
	Iterations int
}

func (p PageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

func (p PageRank) iterations() int {
	if p.Iterations == 0 {
		return 20
	}
	return p.Iterations
}

// Init implements Program.
func (p PageRank) Init(v *Vertex, numVertices int) {
	if numVertices > 0 {
		v.Value = 1 / float64(numVertices)
	}
}

// Compute implements Program.
func (p PageRank) Compute(v *Vertex, msgs []float64, ctx *Context) {
	d := p.damping()
	if ctx.Superstep() > 0 {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		v.Value = (1-d)/float64(ctx.NumVertices()) + d*sum
	}
	if ctx.Superstep() < p.iterations() {
		if deg := len(v.Neighbors); deg > 0 {
			ctx.SendToNeighbors(v.Value / float64(deg))
		}
	} else {
		ctx.VoteToHalt()
	}
}

// RunPageRank is a convenience wrapper: PageRank over g with w workers.
func RunPageRank(g Graph, w int, iterations int) map[graph.NodeID]float64 {
	ranks, _ := Run(g, PageRank{Iterations: iterations}, Config{Workers: w, MaxSupersteps: iterations + 2})
	return ranks
}
