package pregel_test

// Drives the PartitionPageRank superstep protocol in-process — the same
// call sequence the shard coordinator issues over HTTP — and checks the
// merged ranks against analytics.PageRank on the unsharded graph. Shares
// arrive grouped by source partition instead of in global map order, so
// scores match to float tolerance, not byte-for-byte.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"historygraph/internal/analytics"
	"historygraph/internal/csr"
	"historygraph/internal/graph"
	"historygraph/internal/pregel"
	"historygraph/internal/wire"
)

type fakeSource struct {
	nodes []graph.NodeID
	edges []graph.EdgeInfo
}

func (f *fakeSource) At() graph.Time { return 0 }
func (f *fakeSource) NumNodes() int  { return len(f.nodes) }
func (f *fakeSource) NumEdges() int  { return len(f.edges) }
func (f *fakeSource) ForEachNode(fn func(graph.NodeID) bool) {
	for _, n := range f.nodes {
		if !fn(n) {
			return
		}
	}
}
func (f *fakeSource) ForEachEdge(fn func(graph.EdgeID, graph.EdgeInfo) bool) {
	for i, e := range f.edges {
		if !fn(graph.EdgeID(i), e) {
			return
		}
	}
}

// runDistributed executes the full coordinator protocol over in-process
// partitions: prepare, pair routing, start, iterations+1 supersteps.
func runDistributed(full *fakeSource, parts int, damping float64, iterations, topK int) []wire.RankEntry {
	srcs := make([]*fakeSource, parts)
	for p := range srcs {
		srcs[p] = &fakeSource{}
	}
	for _, n := range full.nodes {
		p := graph.Partition(n, parts)
		srcs[p].nodes = append(srcs[p].nodes, n)
	}
	for _, e := range full.edges {
		p := graph.Partition(e.From, parts)
		srcs[p].edges = append(srcs[p].edges, e)
	}

	prs := make([]*pregel.PartitionPageRank, parts)
	var n int64
	var allPairs []int64
	for p, src := range srcs {
		g := csr.Build(src)
		prs[p] = pregel.NewPartitionPageRank(g, parts, p, damping)
		n += prs[p].NumVertices()
		allPairs = append(allPairs, analytics.BoundaryPairs(g, parts, p)...)
	}
	routed := analytics.RoutePairs(allPairs, parts)
	for p, pr := range prs {
		pr.Start(n, routed[p])
	}

	route := func(outs [][]wire.PRMessage) [][]wire.PRMessage {
		acc := make([]map[int64]float64, parts)
		for p := range acc {
			acc[p] = map[int64]float64{}
		}
		for _, out := range outs {
			for _, m := range out {
				acc[graph.Partition(graph.NodeID(m.Node), parts)][m.Node] += m.Val
			}
		}
		inboxes := make([][]wire.PRMessage, parts)
		for p, byNode := range acc {
			for node, val := range byNode {
				inboxes[p] = append(inboxes[p], wire.PRMessage{Node: node, Val: val})
			}
			sort.Slice(inboxes[p], func(i, j int) bool { return inboxes[p][i].Node < inboxes[p][j].Node })
		}
		return inboxes
	}

	inboxes := make([][]wire.PRMessage, parts)
	for step := 1; step <= iterations; step++ {
		outs := make([][]wire.PRMessage, parts)
		for p, pr := range prs {
			pr.Absorb(inboxes[p])
			if step > 1 {
				pr.Finalize()
			}
			outs[p] = pr.Compute()
		}
		inboxes = route(outs)
	}
	var lists [][]wire.RankEntry
	for p, pr := range prs {
		pr.Absorb(inboxes[p])
		pr.Finalize()
		lists = append(lists, pr.TopK(topK))
	}
	return analytics.MergeRanks(lists, topK)
}

func TestPartitionPageRankMatchesSingleProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	full := &fakeSource{}
	for i := 0; i < 90; i++ {
		if rng.Intn(6) > 0 {
			full.nodes = append(full.nodes, graph.NodeID(i))
		}
	}
	for i := 0; i < 320; i++ {
		full.edges = append(full.edges, graph.EdgeInfo{
			From: graph.NodeID(rng.Intn(90)), To: graph.NodeID(rng.Intn(90)),
		})
	}
	g := csr.Build(full)
	const damping, iterations, topK = 0.85, 20, 1000
	want := analytics.PageRank(g, damping, iterations)

	for _, parts := range []int{1, 2, 4} {
		got := runDistributed(full, parts, damping, iterations, topK)
		if len(got) != len(want) {
			t.Fatalf("parts=%d: %d ranked vertices, want %d", parts, len(got), len(want))
		}
		for _, e := range got {
			w := want[graph.NodeID(e.Node)]
			if diff := math.Abs(e.Score - w); diff > 1e-9*math.Max(math.Abs(w), 1) {
				t.Fatalf("parts=%d node %d: score %.15g, want %.15g (diff %g)", parts, e.Node, e.Score, w, diff)
			}
		}
	}
}

func TestPartitionPageRankEmpty(t *testing.T) {
	got := runDistributed(&fakeSource{}, 2, 0.85, 3, 10)
	if len(got) != 0 {
		t.Fatalf("empty graph ranked %d vertices", len(got))
	}
}
