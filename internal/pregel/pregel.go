// Package pregel is the iterative vertex-centric message-passing framework
// the paper runs over retrieved snapshots ("we have implemented an
// iterative vertex-based message-passing system analogous to Pregel",
// Section 3.2). Vertices are hash-partitioned across workers — the same
// partitioning used for DeltaGraph storage — and each worker processes its
// partition independently per superstep, exchanging messages at barriers.
package pregel

import (
	"runtime"
	"sync"

	"historygraph/internal/graph"
)

// Graph is the read interface a vertex program computes over; both
// graphpool views and snapshot adapters satisfy it.
type Graph interface {
	ForEachNode(fn func(graph.NodeID) bool)
	Neighbors(n graph.NodeID) []graph.NodeID
	NumNodes() int
}

// Vertex is the per-node state handed to the program.
type Vertex struct {
	ID        graph.NodeID
	Value     float64
	Neighbors []graph.NodeID
	halted    bool
}

// Context lets a vertex program emit messages and vote to halt.
type Context struct {
	superstep int
	vertex    *Vertex
	worker    *worker
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the graph's vertex count.
func (c *Context) NumVertices() int { return c.worker.run.numVertices }

// SendTo sends a value to one vertex for the next superstep.
func (c *Context) SendTo(to graph.NodeID, val float64) {
	w := c.worker
	dst := graph.Partition(to, len(w.run.workers))
	w.outbox[dst] = append(w.outbox[dst], message{to: to, val: val})
}

// SendToNeighbors sends a value to every neighbor.
func (c *Context) SendToNeighbors(val float64) {
	for _, n := range c.vertex.Neighbors {
		c.SendTo(n, val)
	}
}

// VoteToHalt deactivates the vertex; it reactivates when a message
// arrives.
func (c *Context) VoteToHalt() { c.vertex.halted = true }

// Program is a vertex program.
type Program interface {
	// Init sets the initial vertex value.
	Init(v *Vertex, numVertices int)
	// Compute processes incoming messages and may send messages or vote
	// to halt.
	Compute(v *Vertex, msgs []float64, ctx *Context)
}

// Config tunes a run.
type Config struct {
	// Workers is the number of partitions/goroutines ("machines");
	// 0 means GOMAXPROCS.
	Workers int
	// MaxSupersteps bounds the run; 0 means 50.
	MaxSupersteps int
}

type message struct {
	to  graph.NodeID
	val float64
}

type worker struct {
	run      *run
	id       int
	vertices map[graph.NodeID]*Vertex
	inbox    map[graph.NodeID][]float64
	outbox   [][]message // destination worker -> messages
	active   int
}

type run struct {
	workers     []*worker
	numVertices int
}

// Run executes the program on g until every vertex has halted with no
// in-flight messages, or MaxSupersteps is reached. It returns the final
// vertex values and the number of supersteps executed.
func Run(g Graph, prog Program, cfg Config) (map[graph.NodeID]float64, int) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 50
	}
	r := &run{numVertices: g.NumNodes()}
	r.workers = make([]*worker, cfg.Workers)
	for i := range r.workers {
		r.workers[i] = &worker{
			run: r, id: i,
			vertices: make(map[graph.NodeID]*Vertex),
			inbox:    make(map[graph.NodeID][]float64),
			outbox:   make([][]message, cfg.Workers),
		}
	}
	// Load vertices into their partitions.
	g.ForEachNode(func(n graph.NodeID) bool {
		w := r.workers[graph.Partition(n, cfg.Workers)]
		v := &Vertex{ID: n, Neighbors: g.Neighbors(n)}
		prog.Init(v, r.numVertices)
		w.vertices[n] = v
		w.active++
		return true
	})

	superstep := 0
	for ; superstep < cfg.MaxSupersteps; superstep++ {
		var wg sync.WaitGroup
		for _, w := range r.workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				w.step(prog, superstep)
			}(w)
		}
		wg.Wait()
		// Barrier: exchange messages, count activity.
		pending := 0
		for _, w := range r.workers {
			for dst, msgs := range w.outbox {
				if len(msgs) == 0 {
					continue
				}
				target := r.workers[dst]
				for _, m := range msgs {
					target.inbox[m.to] = append(target.inbox[m.to], m.val)
				}
				pending += len(msgs)
				w.outbox[dst] = nil
			}
		}
		active := 0
		for _, w := range r.workers {
			active += w.active
		}
		if pending == 0 && active == 0 {
			superstep++
			break
		}
	}
	out := make(map[graph.NodeID]float64, r.numVertices)
	for _, w := range r.workers {
		for id, v := range w.vertices {
			out[id] = v.Value
		}
	}
	return out, superstep
}

// step runs one superstep for this worker's partition.
func (w *worker) step(prog Program, superstep int) {
	w.active = 0
	inbox := w.inbox
	w.inbox = make(map[graph.NodeID][]float64)
	for id, v := range w.vertices {
		msgs := inbox[id]
		if len(msgs) > 0 {
			v.halted = false // messages reactivate halted vertices
		}
		if v.halted {
			continue
		}
		ctx := &Context{superstep: superstep, vertex: v, worker: w}
		prog.Compute(v, msgs, ctx)
		if !v.halted {
			w.active++
		}
	}
}
