package bench

import (
	"fmt"
	"math/rand"

	"historygraph/internal/analytics"
	"historygraph/internal/auxindex"
	"historygraph/internal/datagen"
	"historygraph/internal/delta"
	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"
	"historygraph/internal/graphpool"
	"historygraph/internal/model"
	"historygraph/internal/pregel"
)

// DS3 reproduces the Section 7 "Experimental Setup" run: a partitioned
// index over the large Dataset 3, with a Pregel-style PageRank computed
// over retrieved snapshots on P simulated machines, reporting the
// per-snapshot total (retrieval + computation) — the paper's 22–23.8 s
// figure on EC2.
func DS3(s Scale) (*Table, error) {
	t := &Table{ID: "ds3", Title: "Partitioned Dataset 3: snapshot retrieval + parallel PageRank",
		Header: []string{"machines", "retrieval (ms)", "pagerank (ms)", "total (ms)"}}
	events := Dataset3(s)
	for _, p := range []int{5, 7} {
		dg, err := deltagraph.Build(events, deltagraph.Options{
			LeafSize: int(2000 * float64(s)), Arity: 4,
			Function: delta.Intersection{}, Partitions: p,
		})
		if err != nil {
			return nil, err
		}
		_, last := events.Span()
		q := last * 3 / 4
		var snap *graph.Snapshot
		retUS, err := timeIt(func() error {
			var e error
			snap, e = dg.GetSnapshot(q, graph.AttrOptions{})
			return e
		})
		if err != nil {
			return nil, err
		}
		g := analytics.FromSnapshot(snap)
		prUS, err := timeIt(func() error {
			pregel.RunPageRank(g, p, 20)
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(p), fmt.Sprintf("%.1f", retUS/1000),
			fmt.Sprintf("%.1f", prUS/1000), fmt.Sprintf("%.1f", (retUS+prUS)/1000))
	}
	t.Note("paper: ~22 s (5 machines) / 23.8 s (7 machines) per snapshot incl. retrieval at 100M events")
	return t, nil
}

// Bitmap reproduces the Section 7 bitmap-penalty measurement: PageRank
// over a GraphPool view (every membership test goes through bitmaps) vs
// over an extracted plain snapshot; the paper measured < 7% overhead.
func Bitmap(s Scale) (*Table, error) {
	t := &Table{ID: "bitmap", Title: "GraphPool bitmap penalty on PageRank (Dataset 1)",
		Header: []string{"path", "pagerank (ms)"}}
	d1, _ := Datasets(s)
	pool := graphpool.New()
	dg, err := buildDG(d1, int(800*float64(s)), 4, delta.Intersection{}, pool)
	if err != nil {
		return nil, err
	}
	_, last := d1.Span()
	id, err := dg.Retrieve(last*3/4, graph.AttrOptions{})
	if err != nil {
		return nil, err
	}
	view, err := pool.View(id)
	if err != nil {
		return nil, err
	}
	// Overlay a few more graphs so the bitmaps are not trivially empty.
	for i := 1; i <= 4; i++ {
		if _, err := dg.Retrieve(last*graph.Time(i)/6, graph.AttrOptions{}); err != nil {
			return nil, err
		}
	}
	// The pool path is a frozen (lock-free) view: per visited element it
	// pays exactly one bitmap membership test; the comparison path is an
	// extracted plain copy with precomputed adjacency.
	frozen := view.Freeze()
	viaBitmap, err := timeIt(func() error {
		analytics.PageRank(frozen, 0.85, 10)
		return nil
	})
	if err != nil {
		return nil, err
	}
	plain := analytics.FromSnapshot(view.Snapshot())
	viaCopy, err := timeIt(func() error {
		analytics.PageRank(plain, 0.85, 10)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("with bitmaps (pool view)", fmt.Sprintf("%.1f", viaBitmap/1000))
	t.AddRow("without (extracted copy)", fmt.Sprintf("%.1f", viaCopy/1000))
	t.Note("penalty = %.1f%% (paper: <7%%, 1890ms -> 2014ms)", 100*(viaBitmap-viaCopy)/viaCopy)
	return t, nil
}

// Pattern reproduces the Section 4.7 subgraph-pattern experiment: a
// length-4 path index over a labeled Dataset-1-like trace, queried over
// the whole history (paper: 148 s, 14109 matches at full DBLP scale).
func Pattern(s Scale) (*Table, error) {
	t := &Table{ID: "pattern", Title: "Historical subgraph pattern matching via the path index",
		Header: []string{"quantity", "value"}}
	f := float64(s)
	// A labeled growing trace (labels from 10 values, as in the paper).
	base := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: int(600 * f), Edges: int(2400 * f), Years: 20,
		TicksPerYear: 1000, AttrsPerNode: 1, Seed: 7,
	})
	rng := rand.New(rand.NewSource(8))
	var events graph.EventList
	for _, ev := range base {
		if ev.Type == graph.SetNodeAttr {
			ev.Attr = "label"
			ev.New = fmt.Sprintf("L%d", rng.Intn(10))
		}
		events = append(events, ev)
	}
	idx := auxindex.NewPathIndex("label")
	buildUS, err := timeIt(func() error {
		_, e := deltagraph.Build(events, deltagraph.Options{
			LeafSize: int(600 * f), Arity: 4,
			AuxIndexes: []deltagraph.AuxIndex{idx},
		})
		return e
	})
	if err != nil {
		return nil, err
	}
	// Rebuild retaining the handle (Build above measured cost only).
	idx = auxindex.NewPathIndex("label")
	dg, err := deltagraph.Build(events, deltagraph.Options{
		LeafSize: int(600 * f), Arity: 4,
		AuxIndexes: []deltagraph.AuxIndex{idx},
	})
	if err != nil {
		return nil, err
	}
	m := &auxindex.Matcher{DG: dg, Index: idx}
	pattern := &auxindex.Pattern{
		Labels: map[graph.NodeID]string{1: "L0", 2: "L1", 3: "L2", 4: "L3"},
		Edges:  [][2]graph.NodeID{{1, 2}, {2, 3}, {3, 4}},
	}
	var total int
	queryUS, err := timeIt(func() error {
		var e error
		total, e = m.MatchHistory(dg.LeafTimes(), pattern)
		return e
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("index build (ms)", fmt.Sprintf("%.1f", buildUS/1000))
	t.AddRow("history query (ms)", fmt.Sprintf("%.1f", queryUS/1000))
	t.AddRow("matches over history", fmt.Sprint(total))
	t.Note("paper: 148 s, 14109 matches on the full 2M-edge DBLP trace")
	return t, nil
}

// Table2 demonstrates every differential function of the paper's Table 2
// on one child pair: the parent size and both child delta sizes.
func Table2(Scale) (*Table, error) {
	t := &Table{ID: "table2", Title: "Differential functions (Table 2): parent and delta sizes",
		Header: []string{"function", "|parent|", "|∆(a,p)|", "|∆(b,p)|"}}
	// Children: a and b share 1000 elements; a has 500 extra, b has 700.
	a, b := graph.NewSnapshot(), graph.NewSnapshot()
	for n := graph.NodeID(1); n <= 2200; n++ {
		if n <= 1500 {
			a.Nodes[n] = struct{}{}
		}
		if n > 500 {
			b.Nodes[n] = struct{}{}
		}
	}
	fns := []delta.Differential{
		delta.Intersection{}, delta.Union{},
		delta.Skewed(0.25), delta.RightSkewed{R: 0.5}, delta.LeftSkewed{R: 0.5},
		delta.Mixed{R1: 0.7, R2: 0.3}, delta.Balanced(), delta.Empty{},
	}
	for _, fn := range fns {
		p := fn.Combine([]*graph.Snapshot{a, b})
		da := delta.Compute(a, p).Len()
		db := delta.Compute(b, p).Len()
		t.AddRow(fn.Name(), fmt.Sprint(p.Size()), fmt.Sprint(da), fmt.Sprint(db))
	}
	t.Note("|a|=%d |b|=%d |a∩b|=%d", a.Size(), b.Size(), 1000)
	return t, nil
}

// Model compares the Section 5 analytical formulas against measured
// DeltaGraph builds on constant-rate traces.
func Model(Scale) (*Table, error) {
	t := &Table{ID: "model", Title: "Section 5 analytical models vs measured",
		Header: []string{"quantity", "model", "measured"}}
	const (
		k, L, leaves = 2, 512, 16
	)
	dstar, rstar := 0.45, 0.45
	events := datagen.ConstantRate(datagen.ConstantRateConfig{
		G0Nodes: 400, G0Edges: 2000, Events: L * leaves,
		DeltaStar: dstar, RhoStar: rstar, Seed: 11,
	})
	d := model.Dynamics{G0: 2400, Events: float64(L * leaves), DeltaStar: dstar, RhoStar: rstar}

	dgBal, err := deltagraph.Build(events, deltagraph.Options{LeafSize: L, Arity: k, Function: delta.Balanced()})
	if err != nil {
		return nil, err
	}
	st := dgBal.Stats()
	t.AddRow("balanced level-1 delta size",
		fmt.Sprintf("%.0f", d.BalancedDeltaSize(1, k, L)),
		fmt.Sprintf("%.0f", float64(st.DeltaRecordsByLevel[1])/float64(leaves)))
	t.AddRow("balanced root size", fmt.Sprintf("%.0f", d.BalancedRootSize()), fmt.Sprint(st.RootSize))
	for lvl := 1; lvl < st.Height; lvl++ {
		t.AddRow(fmt.Sprintf("balanced level-%d space (records)", lvl),
			fmt.Sprintf("%.0f", d.BalancedLevelSpace(k)),
			fmt.Sprint(st.DeltaRecordsByLevel[lvl]))
	}

	dgInt, err := deltagraph.Build(events, deltagraph.Options{LeafSize: L, Arity: k, Function: delta.Intersection{}})
	if err != nil {
		return nil, err
	}
	de := model.Dynamics{G0: 2000, Events: float64(L * leaves), DeltaStar: dstar, RhoStar: rstar}
	t.AddRow("intersection root size (δ*=ρ*)",
		fmt.Sprintf("%.0f", de.IntersectionRootSize()+400),
		fmt.Sprint(dgInt.Stats().RootSize))
	return t, nil
}

// Fig1 reproduces the Figure 1 motivation workload: PageRank rank
// evolution of the final top-k nodes across yearly snapshots of the
// co-authorship network.
func Fig1(s Scale) (*Table, error) {
	d1, _ := Datasets(s)
	dg, err := buildDG(d1, int(800*float64(s)), 4, delta.Intersection{}, nil)
	if err != nil {
		return nil, err
	}
	_, last := d1.Span()
	var years []graph.Time
	for y := graph.Time(last / 2); y <= last; y += 50000 { // every 5 generator years
		years = append(years, y)
	}
	snaps, err := dg.GetSnapshots(years, graph.AttrOptions{})
	if err != nil {
		return nil, err
	}
	final := analytics.RankOf(analytics.PageRank(analytics.FromSnapshot(snaps[len(snaps)-1]), 0.85, 15))
	top := make([]graph.NodeID, 0, 5)
	for id, r := range final {
		if r <= 5 {
			top = append(top, id)
		}
	}
	t := &Table{ID: "fig1", Title: "PageRank rank evolution of the final top-5 authors",
		Header: []string{"author"}}
	for range years {
		t.Header = append(t.Header, "·")
	}
	for _, id := range top {
		row := []string{fmt.Sprint(id)}
		for _, snap := range snaps {
			ranks := analytics.RankOf(analytics.PageRank(analytics.FromSnapshot(snap), 0.85, 15))
			if r, ok := ranks[id]; ok {
				row = append(row, fmt.Sprint(r))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.Note("columns are snapshots %v (multipoint retrieval)", years)
	return t, nil
}

// Experiments is the registry used by cmd/dgbench.
var Experiments = map[string]func(Scale) (*Table, error){
	"fig1":    Fig1,
	"ds3":     DS3,
	"fig6":    Fig6,
	"fig7":    Fig7,
	"log":     LogBaseline,
	"fig8a":   Fig8a,
	"fig8b":   Fig8b,
	"fig8c":   Fig8c,
	"fig8d":   Fig8d,
	"fig9":    Fig9,
	"fig10":   Fig10,
	"fig11a":  Fig11a,
	"fig11b":  Fig11b,
	"bitmap":  Bitmap,
	"pattern": Pattern,
	"table2":  Table2,
	"model":   Model,
}

// Order lists experiments in presentation order.
var Order = []string{
	"table2", "model", "fig1", "fig6", "fig7", "log",
	"fig8a", "fig8b", "fig8c", "fig8d", "fig9", "fig10",
	"fig11a", "fig11b", "bitmap", "pattern", "ds3",
}
