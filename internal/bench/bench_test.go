package bench

import (
	"io"
	"strconv"
	"strings"
	"testing"
)

// The harness is exercised at a tiny scale so every experiment's plumbing
// stays correct; shape assertions are in the named tests below.
const tiny Scale = 0.1

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	table, err := Experiments[id](tiny)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(table.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	table.Fprint(io.Discard) // rendering must not panic
	return table
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness suite is slow")
	}
	for _, id := range Order {
		id := id
		t.Run(id, func(t *testing.T) { runExp(t, id) })
	}
}

func cell(t *testing.T, table *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(table.Rows[row][col], "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, table.Rows[row][col])
	}
	return v
}

// Shape: the naive Log baseline must be far slower than DeltaGraph.
func TestShapeLogSlowerThanDeltaGraph(t *testing.T) {
	table := runExp(t, "log")
	for i := range table.Rows {
		// The factor is bounded by |E|/|G| at tiny scale (EXPERIMENTS.md
		// note 1); assert the direction with headroom, not the paper's 20x.
		if f := cell(t, table, i, 3); f < 1.3 {
			t.Errorf("%s: log only %.2fx slower; expected clearly > 1x", table.Rows[i][0], f)
		}
	}
}

// Shape: deeper materialization never slows retrieval and always pins more
// memory.
func TestShapeMaterializationMonotone(t *testing.T) {
	table := runExp(t, "fig10")
	for i := 1; i < len(table.Rows); i++ {
		if cell(t, table, i, 2) < cell(t, table, i-1, 2) {
			t.Errorf("memory not monotone at row %d", i)
		}
	}
	// Latency: compare the extremes (noise-tolerant).
	if cell(t, table, 3, 1) > cell(t, table, 0, 1) {
		t.Error("grandchildren materialization slower than none")
	}
}

// Shape: multipoint retrieval reads far less data than repeated
// singlepoint (bytes fetched is noise-free, unlike µs at tiny scale).
func TestShapeMultipointSavings(t *testing.T) {
	table := runExp(t, "fig8c")
	last := len(table.Rows) - 1
	if cell(t, table, last, 4) >= cell(t, table, last, 3) {
		t.Error("multipoint did not read less than singlepoints at n=6")
	}
	// The saving must grow with the number of points.
	if cell(t, table, last, 5) <= cell(t, table, 0, 5) {
		t.Error("read saving should grow with the number of query points")
	}
}

// Shape: structure-only queries read far less data than queries that also
// fetch attributes (bytes read is noise-free at tiny scale; wall-clock is
// reported alongside).
func TestShapeColumnarSpeedup(t *testing.T) {
	table := runExp(t, "fig8d")
	sumAll, sumStruct := 0.0, 0.0
	for i := range table.Rows {
		sumAll += cell(t, table, i, 3)
		sumStruct += cell(t, table, i, 4)
	}
	if sumStruct*2 >= sumAll {
		t.Errorf("structure-only reads (%v KB) not well below +attrs reads (%v KB)", sumStruct, sumAll)
	}
}

// Shape: arity sweep — space grows from k=2 to k=8.
func TestShapeAritySpace(t *testing.T) {
	table := runExp(t, "fig9")
	if cell(t, table, 3, 2) <= cell(t, table, 0, 2) {
		t.Error("arity=8 should use more disk than arity=2")
	}
	// L sweep: larger L uses less disk (rows 4..7).
	if cell(t, table, 7, 2) >= cell(t, table, 4, 2) {
		t.Error("larger L should use less disk")
	}
}

// Shape: Mixed r controls the latency skew direction. The absolute costs
// of the oldest timepoints ride the cheap empty-anchor path under every
// configuration, so the discriminating comparison is across configurations
// at the recent end of history: high r must be cheaper there than low r.
func TestShapeMixedSkew(t *testing.T) {
	table := runExp(t, "fig11b")
	last := len(table.Rows) - 1
	if cell(t, table, last, 3) >= cell(t, table, last, 1) {
		t.Error("r=0.9 should beat r=0.1 on the most recent snapshot")
	}
	// And low r must win somewhere in the older half.
	better := false
	for i := 0; i <= last/2; i++ {
		if cell(t, table, i, 1) <= cell(t, table, i, 3) {
			better = true
			break
		}
	}
	if !better {
		t.Error("r=0.1 never beats r=0.9 in the older half")
	}
}

// Shape: GraphPool memory stays far below disjoint storage.
func TestShapePoolMemoryBelowDisjoint(t *testing.T) {
	table := runExp(t, "fig8a")
	last := len(table.Rows) - 1
	if cell(t, table, last, 2) >= cell(t, table, last, 3) {
		t.Error("pool memory should be below the disjoint estimate")
	}
}

func TestWithLatency(t *testing.T) {
	p := WithLatency(2, 0, 0)
	if p.NumPartitions() != 2 {
		t.Fatal("partition count")
	}
	key := make([]byte, 11)
	if err := p.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(key)
	if err != nil || string(got) != "v" {
		t.Fatal("latency store broken")
	}
}
