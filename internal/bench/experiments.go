package bench

import (
	"fmt"
	"runtime"

	"historygraph/internal/baseline"
	"historygraph/internal/delta"
	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"
	"historygraph/internal/graphpool"
)

var allAttrs = graph.MustParseAttrOptions("+node:all+edge:all")

// buildDG is a helper constructing a DeltaGraph over a trace (in-memory
// store; used where only planner costs or pool behavior are measured).
func buildDG(events graph.EventList, L, k int, fn delta.Differential, pool *graphpool.Pool) (*deltagraph.DeltaGraph, error) {
	return deltagraph.Build(events, deltagraph.Options{
		LeafSize: L, Arity: k, Function: fn, Pool: pool,
	})
}

// buildDGDisk constructs a DeltaGraph over a compressed on-disk store —
// the disk-resident configuration the paper's latency experiments measure.
func buildDGDisk(events graph.EventList, L, k int, fn delta.Differential, parts int) (*deltagraph.DeltaGraph, error) {
	store, err := DiskStore(parts)
	if err != nil {
		return nil, err
	}
	return deltagraph.Build(events, deltagraph.Options{
		LeafSize: L, Arity: k, Function: fn, Partitions: parts, Store: store,
	})
}

// avgRetrieval measures the mean retrieval time (µs) of n uniform queries.
func avgRetrieval(events graph.EventList, n int, opts graph.AttrOptions, get func(graph.Time) error) (float64, error) {
	total := 0.0
	for _, q := range uniformTimes(events, n) {
		us, err := timeIt(func() error { return get(q) })
		if err != nil {
			return 0, err
		}
		total += us
	}
	_ = opts
	return total / float64(n), nil
}

// Fig6 reproduces Figure 6: DeltaGraph(Intersection) vs Copy+Log on
// Datasets 1 and 2 under (approximately) equal disk budgets — the
// DeltaGraph affords a smaller L than Copy+Log's chunk for the same disk,
// so it wins on retrieval time.
func Fig6(s Scale) (*Table, error) {
	t := &Table{ID: "fig6", Title: "DeltaGraph(Int) vs Copy+Log, 25 uniform queries (µs)",
		Header: []string{"dataset", "t#", "copy+log", "dg(int)", "dg(int,rootmat)"}}
	d1, d2 := Datasets(s)
	L := int(800 * float64(s))
	for name, events := range map[string]graph.EventList{"D1": d1, "D2": d2} {
		dg, err := buildDGDisk(events, L, 4, delta.Intersection{}, 1)
		if err != nil {
			return nil, err
		}
		dgDisk := dg.Store().SizeOnDisk()
		// Pick the Copy+Log chunk whose disk is closest to (but not
		// below) the DeltaGraph budget: Copy+Log needs a larger chunk
		// (fewer snapshots) to fit the same disk.
		chunk := L
		var cl *baseline.CopyLog
		for try := 0; try < 8; try++ {
			clStore, err := DiskStore(1)
			if err != nil {
				return nil, err
			}
			cl, err = baseline.BuildCopyLog(events, chunk, clStore)
			if err != nil {
				return nil, err
			}
			if cl.DiskBytes() <= dgDisk*11/10 {
				break
			}
			chunk *= 2
		}
		dgMat, err := buildDGDisk(events, L, 4, delta.Intersection{}, 1)
		if err != nil {
			return nil, err
		}
		if err := dgMat.MaterializeLevel("root"); err != nil {
			return nil, err
		}
		var sumCL, sumDG, sumMat float64
		for i, q := range uniformTimes(events, 25) {
			clUS, err := timeIt(func() error { _, e := cl.Snapshot(q, allAttrs); return e })
			if err != nil {
				return nil, err
			}
			dgUS, err := timeIt(func() error { _, e := dg.GetSnapshot(q, allAttrs); return e })
			if err != nil {
				return nil, err
			}
			matUS, err := timeIt(func() error { _, e := dgMat.GetSnapshot(q, allAttrs); return e })
			if err != nil {
				return nil, err
			}
			sumCL += clUS
			sumDG += dgUS
			sumMat += matUS
			t.AddRow(name, fmt.Sprint(i+1), us(clUS), us(dgUS), us(matUS))
		}
		t.Note("%s: disk copy+log=%sMB (chunk=%d) vs dg=%sMB (L=%d); avg copy+log/dg = %s",
			name, mb(cl.DiskBytes()), chunk, mb(dgDisk), L, ratio(sumCL/sumDG))
		t.Note("%s: avg µs copy+log=%s dg=%s dg+rootmat=%s", name, us(sumCL/25), us(sumDG/25), us(sumMat/25))
	}
	return t, nil
}

// Fig7 reproduces Figure 7: interval tree vs DeltaGraph with root's
// grandchildren materialized vs total materialization, on Dataset 2 —
// retrieval time and index memory.
func Fig7(s Scale) (*Table, error) {
	t := &Table{ID: "fig7", Title: "Interval tree vs DeltaGraph materialization levels (Dataset 2)",
		Header: []string{"approach", "avg retrieval (µs)", "memory (MB)"}}
	_, d2 := Datasets(s)
	L := int(1200 * float64(s))

	it := baseline.BuildIntervalTree(d2)
	itAvg, err := avgRetrieval(d2, 25, allAttrs, func(q graph.Time) error {
		_, e := it.Snapshot(q, allAttrs)
		return e
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("interval tree", us(itAvg), mb(it.MemoryBytes()))

	dgGC, err := buildDGDisk(d2, L, 4, delta.Intersection{}, 1)
	if err != nil {
		return nil, err
	}
	if err := dgGC.MaterializeLevel("grandchildren"); err != nil {
		return nil, err
	}
	gcAvg, err := avgRetrieval(d2, 25, allAttrs, func(q graph.Time) error {
		_, e := dgGC.GetSnapshot(q, allAttrs)
		return e
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("dg (root's grandchildren mat)", us(gcAvg), mb(dgGC.MaterializedBytes()))

	dgTotal, err := buildDGDisk(d2, L, 4, delta.Intersection{}, 1)
	if err != nil {
		return nil, err
	}
	if err := dgTotal.MaterializeLevel("leaves"); err != nil {
		return nil, err
	}
	totAvg, err := avgRetrieval(d2, 25, allAttrs, func(q graph.Time) error {
		_, e := dgTotal.GetSnapshot(q, allAttrs)
		return e
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("dg (total mat)", us(totAvg), mb(dgTotal.MaterializedBytes()))
	t.Note("expected shape: deeper materialization is faster; the paper additionally saw both")
	t.Note("DG variants beat the interval tree once the history dwarfs memory (|E| >> |G|),")
	t.Note("which laptop-scale traces (|E|/|G| ~ 1.6 here) do not reach")
	return t, nil
}

// LogBaseline reproduces the Section 7 Log comparison: naive event replay
// vs DeltaGraph, Datasets 1 and 2 (paper: 20x and 23x slower).
func LogBaseline(s Scale) (*Table, error) {
	t := &Table{ID: "log", Title: "Naive Log replay vs DeltaGraph (25 uniform queries)",
		Header: []string{"dataset", "log avg (µs)", "dg avg (µs)", "slowdown"}}
	d1, d2 := Datasets(s)
	L := int(800 * float64(s))
	for _, tc := range []struct {
		name   string
		events graph.EventList
	}{{"D1", d1}, {"D2", d2}} {
		nlStore, err := DiskStore(1)
		if err != nil {
			return nil, err
		}
		nl, err := baseline.BuildNaiveLog(tc.events, nlStore)
		if err != nil {
			return nil, err
		}
		dg, err := buildDGDisk(tc.events, L, 4, delta.Intersection{}, 1)
		if err != nil {
			return nil, err
		}
		if err := dg.MaterializeLevel("root"); err != nil {
			return nil, err
		}
		logAvg, err := avgRetrieval(tc.events, 25, allAttrs, func(q graph.Time) error {
			_, e := nl.Snapshot(q, allAttrs)
			return e
		})
		if err != nil {
			return nil, err
		}
		dgAvg, err := avgRetrieval(tc.events, 25, allAttrs, func(q graph.Time) error {
			_, e := dg.GetSnapshot(q, allAttrs)
			return e
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.name, us(logAvg), us(dgAvg), ratio(logAvg/dgAvg))
	}
	t.Note("paper: Log slower by 20x (D1) and 23x (D2)")
	return t, nil
}

// Fig8a reproduces Figure 8(a): cumulative GraphPool memory while 100
// uniformly spaced snapshots are loaded; D1 stays nearly flat (every
// snapshot is a subset of the current graph), D2 grows slowly, and both
// stay far below disjoint storage.
func Fig8a(s Scale) (*Table, error) {
	t := &Table{ID: "fig8a", Title: "Cumulative GraphPool memory over 100 snapshot retrievals (MB)",
		Header: []string{"query#", "D1 pool", "D2 pool", "D2 disjoint (est)"}}
	d1, d2 := Datasets(s)
	L := int(800 * float64(s))
	pools := [2]*graphpool.Pool{graphpool.New(), graphpool.New()}
	var dgs [2]*deltagraph.DeltaGraph
	for i, events := range []graph.EventList{d1, d2} {
		dg, err := buildDG(events, L, 4, delta.Intersection{}, pools[i])
		if err != nil {
			return nil, err
		}
		dgs[i] = dg
	}
	times := [2][]graph.Time{uniformTimes(d1, 100), uniformTimes(d2, 100)}
	var disjoint int64
	for q := 0; q < 100; q++ {
		var cells [3]string
		for i := range dgs {
			id, err := dgs[i].Retrieve(times[i][q], allAttrs)
			if err != nil {
				return nil, err
			}
			if i == 1 {
				v, err := pools[i].View(id)
				if err != nil {
					return nil, err
				}
				disjoint += int64(v.NumNodes()+v.NumEdges()) * 48
			}
			cells[i] = mb(pools[i].ApproxBytes())
		}
		cells[2] = mb(disjoint)
		if (q+1)%10 == 0 {
			t.AddRow(fmt.Sprint(q+1), cells[0], cells[1], cells[2])
		}
	}
	t.Note("expected shape: D1 ~flat; D2 grows slowly; both << disjoint estimate")
	return t, nil
}

// Fig8b reproduces Figure 8(b): average retrieval time vs number of
// partitions processed in parallel, on Dataset 2. Each partition's fetch
// and decode runs in its own goroutine, so the speedup tracks the
// machine's core count (the paper's x-axis is # cores; it saw near-linear
// scaling to 4 cores).
func Fig8b(s Scale) (*Table, error) {
	t := &Table{ID: "fig8b", Title: "Partition-parallel retrieval (Dataset 2)",
		Header: []string{"partitions", "avg retrieval (µs)", "speedup"}}
	_, d2 := Datasets(s)
	L := int(800 * float64(s))
	var base float64
	for _, p := range []int{1, 2, 3, 4} {
		dg, err := buildDGDisk(d2, L, 4, delta.Intersection{}, p)
		if err != nil {
			return nil, err
		}
		// Warm up allocator/caches, then average over repeated sweeps.
		if _, err := avgRetrieval(d2, 10, allAttrs, func(q graph.Time) error {
			_, e := dg.GetSnapshot(q, allAttrs)
			return e
		}); err != nil {
			return nil, err
		}
		var avg float64
		const reps = 3
		for r := 0; r < reps; r++ {
			a, err := avgRetrieval(d2, 10, allAttrs, func(q graph.Time) error {
				_, e := dg.GetSnapshot(q, allAttrs)
				return e
			})
			if err != nil {
				return nil, err
			}
			avg += a / reps
		}
		if p == 1 {
			base = avg
		}
		t.AddRow(fmt.Sprint(p), us(avg), ratio(base/avg))
	}
	t.Note("speedup ceiling is the machine's core count (%d here; the paper's testbed scaled to 4)", runtime.NumCPU())
	return t, nil
}

// Fig8c reproduces Figure 8(c): one multipoint query vs repeated
// singlepoint queries for 2..6 nearby timepoints on Dataset 1.
func Fig8c(s Scale) (*Table, error) {
	t := &Table{ID: "fig8c", Title: "Multipoint Steiner retrieval vs repeated singlepoint (Dataset 1)",
		Header: []string{"#queries", "single µs", "multi µs", "single MB read", "multi MB read", "read saving"}}
	d1, _ := Datasets(s)
	L := int(800 * float64(s))
	store := NewCountingStore()
	dg, err := deltagraph.Build(d1, deltagraph.Options{
		LeafSize: L, Arity: 4, Function: delta.Intersection{}, Store: store,
	})
	if err != nil {
		return nil, err
	}
	_, last := d1.Span()
	month := graph.Time(10000 / 12) // one generator month
	for n := 2; n <= 6; n++ {
		ts := make([]graph.Time, n)
		for i := range ts {
			ts[i] = last/2 + graph.Time(i)*month
		}
		store.Reset()
		singleUS, err := timeIt(func() error {
			for _, q := range ts {
				if _, err := dg.GetSnapshot(q, allAttrs); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		_, singleBytes := store.Counts()
		store.Reset()
		multiUS, err := timeIt(func() error {
			_, e := dg.GetSnapshots(ts, allAttrs)
			return e
		})
		if err != nil {
			return nil, err
		}
		_, multiBytes := store.Counts()
		t.AddRow(fmt.Sprint(n), us(singleUS), us(multiUS),
			mb(singleBytes), mb(multiBytes), ratio(float64(singleBytes)/float64(multiBytes)))
	}
	t.Note("expected shape: multipoint reads far less than n × singlepoint; saving grows with n")
	return t, nil
}

// Fig8d reproduces Figure 8(d): columnar storage — retrieval with
// structure only vs structure + all attributes, on Dataset 2's timepoints.
func Fig8d(s Scale) (*Table, error) {
	t := &Table{ID: "fig8d", Title: "Columnar storage: structure-only vs structure+attributes (Dataset 2)",
		Header: []string{"t#", "attrs µs", "struct µs", "attrs KB read", "struct KB read", "read saving"}}
	_, d2 := Datasets(s)
	L := int(800 * float64(s))
	disk, err := DiskStore(1)
	if err != nil {
		return nil, err
	}
	store := &CountingStore{Store: disk}
	dg, err := deltagraph.Build(d2, deltagraph.Options{
		LeafSize: L, Arity: 4, Function: delta.Intersection{}, Store: store,
	})
	if err != nil {
		return nil, err
	}
	structOnly := graph.AttrOptions{}
	var sumAll, sumStruct float64
	for i, q := range uniformTimes(d2, 12) {
		store.Reset()
		allUS, err := timeIt(func() error { _, e := dg.GetSnapshot(q, allAttrs); return e })
		if err != nil {
			return nil, err
		}
		_, allBytes := store.Counts()
		store.Reset()
		structUS, err := timeIt(func() error { _, e := dg.GetSnapshot(q, structOnly); return e })
		if err != nil {
			return nil, err
		}
		_, structBytes := store.Counts()
		sumAll += allUS
		sumStruct += structUS
		t.AddRow(fmt.Sprint(i+1), us(allUS), us(structUS),
			fmt.Sprintf("%.1f", float64(allBytes)/1024), fmt.Sprintf("%.1f", float64(structBytes)/1024),
			ratio(float64(allBytes)/float64(structBytes)))
	}
	t.Note("avg time speedup %s (paper: >3x on Dataset 1's 10-attr nodes)", ratio(sumAll/sumStruct))
	return t, nil
}

// Fig9 reproduces Figure 9: the effect of arity and leaf-eventlist size on
// average query time and index space (Dataset 1).
func Fig9(s Scale) (*Table, error) {
	t := &Table{ID: "fig9", Title: "Construction parameters: arity and leaf-eventlist size (Dataset 1)",
		Header: []string{"variant", "avg retrieval (µs)", "disk (MB)"}}
	d1, _ := Datasets(s)
	L0 := int(800 * float64(s))
	for _, k := range []int{2, 4, 6, 8} {
		dg, err := buildDGDisk(d1, L0, k, delta.Intersection{}, 1)
		if err != nil {
			return nil, err
		}
		avg, err := avgRetrieval(d1, 15, allAttrs, func(q graph.Time) error {
			_, e := dg.GetSnapshot(q, allAttrs)
			return e
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("arity=%d (L=%d)", k, L0), us(avg), mb(dg.Store().SizeOnDisk()))
	}
	for _, mul := range []int{1, 2, 3, 4} {
		L := L0 * mul
		dg, err := buildDGDisk(d1, L, 4, delta.Intersection{}, 1)
		if err != nil {
			return nil, err
		}
		avg, err := avgRetrieval(d1, 15, allAttrs, func(q graph.Time) error {
			_, e := dg.GetSnapshot(q, allAttrs)
			return e
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("L=%d (arity=4)", L), us(avg), mb(dg.Store().SizeOnDisk()))
	}
	t.Note("expected shape: time falls then flattens with arity while space rises;")
	t.Note("larger L costs query time but saves space")
	return t, nil
}

// Fig10 reproduces Figure 10: materialization depth (none / root /
// children / grandchildren) vs average query time and pinned memory, on
// Dataset 2 with arity 4 and Intersection.
func Fig10(s Scale) (*Table, error) {
	t := &Table{ID: "fig10", Title: "Materialization depth (Dataset 2, k=4, Intersection)",
		Header: []string{"materialized", "avg retrieval (µs)", "pinned memory (MB)"}}
	_, d2 := Datasets(s)
	L := int(800 * float64(s))
	for _, policy := range []string{"none", "root", "children", "grandchildren"} {
		dg, err := buildDGDisk(d2, L, 4, delta.Intersection{}, 1)
		if err != nil {
			return nil, err
		}
		if policy != "none" {
			if err := dg.MaterializeLevel(policy); err != nil {
				return nil, err
			}
		}
		avg, err := avgRetrieval(d2, 15, allAttrs, func(q graph.Time) error {
			_, e := dg.GetSnapshot(q, allAttrs)
			return e
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(policy, us(avg), mb(dg.MaterializedBytes()))
	}
	t.Note("expected shape: deeper materialization -> lower latency, more memory (paper: up to 8x)")
	return t, nil
}

// Fig11a reproduces Figure 11(a): Intersection vs Balanced (vs Balanced +
// root materialized) retrieval-time series over the growing-only Dataset 1.
func Fig11a(s Scale) (*Table, error) {
	// Reported in planner cost bytes (the paper's own edge-weight model):
	// wall-clock at laptop scale is dominated by O(|G|) result assembly,
	// which every approach shares.
	t := &Table{ID: "fig11a", Title: "Differential functions over time (Dataset 1, plan cost bytes)",
		Header: []string{"t#", "intersection", "balanced", "balanced(rootmat)"}}
	d1, _ := Datasets(s)
	L := int(800 * float64(s))
	dgInt, err := buildDG(d1, L, 2, delta.Intersection{}, nil)
	if err != nil {
		return nil, err
	}
	dgBal, err := buildDG(d1, L, 2, delta.Balanced(), nil)
	if err != nil {
		return nil, err
	}
	dgBalMat, err := buildDG(d1, L, 2, delta.Balanced(), nil)
	if err != nil {
		return nil, err
	}
	if err := dgBalMat.MaterializeLevel("root"); err != nil {
		return nil, err
	}
	var sumI, sumB, sumM int64
	for i, q := range uniformTimes(d1, 15) {
		iC, err := dgInt.PlanCost(q, allAttrs)
		if err != nil {
			return nil, err
		}
		bC, err := dgBal.PlanCost(q, allAttrs)
		if err != nil {
			return nil, err
		}
		mC, err := dgBalMat.PlanCost(q, allAttrs)
		if err != nil {
			return nil, err
		}
		sumI += iC
		sumB += bC
		sumM += mC
		t.AddRow(fmt.Sprint(i+1), fmt.Sprint(iC), fmt.Sprint(bC), fmt.Sprint(mC))
	}
	t.Note("averages: intersection=%d balanced=%d balanced+rootmat=%d", sumI/15, sumB/15, sumM/15)
	t.Note("expected shape: intersection grows with recency (growing graph);")
	t.Note("balanced ~uniform but higher; root-mat brings its average near intersection's")
	return t, nil
}

// Fig11b reproduces Figure 11(b): Mixed-function configurations r1=r2 ∈
// {0.1, 0.5, 0.9} — controlling which end of history retrieves faster.
func Fig11b(s Scale) (*Table, error) {
	t := &Table{ID: "fig11b", Title: "Mixed differential function configurations, root materialized (Dataset 1, plan cost bytes)",
		Header: []string{"t#", "r=0.1", "r=0.5", "r=0.9"}}
	d1, _ := Datasets(s)
	L := int(800 * float64(s))
	var dgs []*deltagraph.DeltaGraph
	for _, r := range []float64{0.1, 0.5, 0.9} {
		dg, err := buildDG(d1, L, 2, delta.Mixed{R1: r, R2: r}, nil)
		if err != nil {
			return nil, err
		}
		// The root is materialized (the paper's standard setup): the
		// Mixed r then controls which end of history the root graph is
		// closest to, and hence which end retrieves fastest.
		if err := dg.MaterializeLevel("root"); err != nil {
			return nil, err
		}
		dgs = append(dgs, dg)
	}
	for i, q := range uniformTimes(d1, 15) {
		cells := []string{fmt.Sprint(i + 1)}
		for _, dg := range dgs {
			c, err := dg.PlanCost(q, allAttrs)
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprint(c))
		}
		t.AddRow(cells...)
	}
	t.Note("expected shape: r=0.9 favors recent timepoints, r=0.1 favors old ones, r=0.5 balanced")
	return t, nil
}
