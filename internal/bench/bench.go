// Package bench is the experiment harness: one runner per table/figure of
// the paper's evaluation (Section 7), each regenerating the same rows or
// series the paper reports, at a configurable scale. cmd/dgbench prints
// the results; the repository-root benchmarks wrap the same runners.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"historygraph/internal/datagen"
	"historygraph/internal/graph"
	"historygraph/internal/kvstore"
)

// Scale multiplies dataset sizes. Scale 1 is sized for a laptop run of the
// full suite in minutes; the paper's absolute sizes (2M–100M events) are
// reached around scale 25–1000.
type Scale float64

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-text note under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// --- datasets ------------------------------------------------------------

// datasets are generated once per (scale) and shared by runners.
type datasets struct {
	d1 graph.EventList // growing-only co-authorship (Dataset 1)
	d2 graph.EventList // d1 + half-add/half-delete churn (Dataset 2)
}

var (
	dsMu    sync.Mutex
	dsCache = map[Scale]*datasets{}
)

// Datasets returns (building if needed) the shared Dataset 1 and 2 traces
// at this scale.
func Datasets(s Scale) (d1, d2 graph.EventList) {
	dsMu.Lock()
	defer dsMu.Unlock()
	if c, ok := dsCache[s]; ok {
		return c.d1, c.d2
	}
	f := float64(s)
	d1 = datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: int(2000 * f), Edges: int(12000 * f), Years: 35,
		TicksPerYear: 10000, AttrsPerNode: 10, Seed: 42,
	})
	d2 = datagen.Churn(d1, datagen.ChurnConfig{
		Adds: int(12000 * f), Dels: int(12000 * f), Ticks: 120000, Seed: 43,
	})
	dsCache[s] = &datasets{d1: d1, d2: d2}
	return d1, d2
}

// Dataset3 generates the large patent-like trace (not cached: used once).
func Dataset3(s Scale) graph.EventList {
	f := float64(s)
	return datagen.PatentLike(datagen.PatentLikeConfig{
		Nodes: int(6000 * f), Edges: int(20000 * f),
		ChurnAdds: int(25000 * f), ChurnDels: int(25000 * f), Seed: 44,
	})
}

// uniformTimes returns n uniformly spaced query timepoints across the
// trace's span.
func uniformTimes(events graph.EventList, n int) []graph.Time {
	first, last := events.Span()
	out := make([]graph.Time, n)
	for i := range out {
		out[i] = first + graph.Time(int64(last-first)*int64(i+1)/int64(n+1))
	}
	return out
}

// timeIt measures one call in microseconds.
func timeIt(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return float64(time.Since(start).Microseconds()), err
}

func us(v float64) string    { return fmt.Sprintf("%.0f", v) }
func mb(v int64) string      { return fmt.Sprintf("%.2f", float64(v)/(1<<20)) }
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// latencyStore wraps a Store, adding a byte-proportional delay to every
// Get — it simulates the disk/network transfer of the paper's EC2 testbed
// so partition-parallel fetching shows its effect on a small machine: with
// P partitions each read returns ~1/P of the bytes, so parallel fetches
// finish ~P times sooner.
type latencyStore struct {
	kvstore.Store
	base    time.Duration // per-read seek cost
	perByte time.Duration // transfer cost
}

// WithLatency wraps every partition of a store with a seek + transfer
// delay per Get.
func WithLatency(parts int, base, perByte time.Duration) *kvstore.Partitioned {
	stores := make([]kvstore.Store, parts)
	for i := range stores {
		stores[i] = &latencyStore{Store: kvstore.NewMemStore(), base: base, perByte: perByte}
	}
	return kvstore.NewPartitioned(stores)
}

func (l *latencyStore) Get(key []byte) ([]byte, error) {
	v, err := l.Store.Get(key)
	time.Sleep(l.base + time.Duration(len(v))*l.perByte)
	return v, err
}

// DiskStore creates a compressed FileStore-backed store under a fresh
// temporary directory — the disk-resident configuration the paper
// benchmarks (its prototype sat on Kyoto Cabinet files). parts > 1 yields
// a Partitioned store with one file per partition.
func DiskStore(parts int) (kvstore.Store, error) {
	dir, err := os.MkdirTemp("", "histgraph-bench-")
	if err != nil {
		return nil, err
	}
	open := func(i int) (kvstore.Store, error) {
		return kvstore.OpenFileStore(filepath.Join(dir, fmt.Sprintf("part%d.log", i)), kvstore.FileOptions{Compress: true})
	}
	if parts <= 1 {
		return open(0)
	}
	stores := make([]kvstore.Store, parts)
	for i := range stores {
		s, err := open(i)
		if err != nil {
			return nil, err
		}
		stores[i] = s
	}
	return kvstore.NewPartitioned(stores), nil
}

// CountingStore wraps a Store and counts Get calls and bytes returned —
// a noise-free proxy for retrieval cost used by the multipoint experiment.
type CountingStore struct {
	kvstore.Store
	mu    sync.Mutex
	gets  int64
	bytes int64
}

// NewCountingStore wraps an in-memory store.
func NewCountingStore() *CountingStore { return &CountingStore{Store: kvstore.NewMemStore()} }

// Get implements kvstore.Store.
func (c *CountingStore) Get(key []byte) ([]byte, error) {
	v, err := c.Store.Get(key)
	c.mu.Lock()
	c.gets++
	c.bytes += int64(len(v))
	c.mu.Unlock()
	return v, err
}

// Reset zeroes the counters.
func (c *CountingStore) Reset() {
	c.mu.Lock()
	c.gets, c.bytes = 0, 0
	c.mu.Unlock()
}

// Counts returns (gets, bytes) since the last Reset.
func (c *CountingStore) Counts() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gets, c.bytes
}
