package model

import (
	"math"
	"testing"

	"historygraph/internal/delta"
	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"

	"historygraph/internal/datagen"
)

// within asserts |got−want| <= tol·want.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > 1 {
			t.Errorf("%s: got %g, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Errorf("%s: got %g, want %g (±%.0f%%)", name, got, want, tol*100)
	}
}

func TestFinalGraphSize(t *testing.T) {
	d := Dynamics{G0: 1000, Events: 10000, DeltaStar: 0.6, RhoStar: 0.2}
	if got := d.FinalGraphSize(); got != 1000+10000*0.4 {
		t.Errorf("FinalGraphSize = %g", got)
	}
}

func TestIntersectionRootSizeCases(t *testing.T) {
	d := Dynamics{G0: 1000, Events: 2000, DeltaStar: 0.5, RhoStar: 0}
	if d.IntersectionRootSize() != 1000 {
		t.Error("growing-only root must be G0")
	}
	d = Dynamics{G0: 1000, Events: 2000, DeltaStar: 0.4, RhoStar: 0.4}
	want := 1000 * math.Exp(-2000*0.4/1000)
	within(t, "δ=ρ root", d.IntersectionRootSize(), want, 1e-9)
	d = Dynamics{G0: 1000, Events: 2000, DeltaStar: 0.4, RhoStar: 0.2}
	within(t, "δ=2ρ root", d.IntersectionRootSize(), 1000*1000/(1000+0.2*2000), 1e-9)
	defer func() {
		if recover() == nil {
			t.Error("no panic for unsupported case")
		}
	}()
	Dynamics{G0: 1, Events: 1, DeltaStar: 0.9, RhoStar: 0.1}.IntersectionRootSize()
}

// Build a Balanced DeltaGraph over a constant-rate trace and compare the
// measured per-level delta sizes, per-level space, and root size against
// the Section 5.3 formulas. The trace has exactly N = k^h leaves.
func TestBalancedModelAgainstMeasured(t *testing.T) {
	const (
		k      = 2
		L      = 512
		leaves = 16 // 2^4
	)
	dstar, rstar := 0.45, 0.45
	events := datagen.ConstantRate(datagen.ConstantRateConfig{
		G0Nodes: 400, G0Edges: 2000, Events: L * leaves, DeltaStar: dstar, RhoStar: rstar, Seed: 1,
	})
	// The G0 events all share t=0; give the leaf machinery exact L-sized
	// cuts by discounting them: feed G0 separately via leading events.
	dg, err := deltagraph.Build(events, deltagraph.Options{LeafSize: L, Arity: k, Function: delta.Balanced()})
	if err != nil {
		t.Fatal(err)
	}
	st := dg.Stats()
	d := Dynamics{G0: 2400, Events: float64(L * leaves), DeltaStar: dstar, RhoStar: rstar}

	// Per-delta size at level 1: ½(k−1)(δ+ρ)L.
	lvl1Edges := leaves // one edge per leaf
	measured := float64(st.DeltaRecordsByLevel[1]) / float64(lvl1Edges)
	within(t, "level-1 delta size", measured, d.BalancedDeltaSize(1, k, L), 0.30)

	// Level spaces equal across levels (records, not bytes, to avoid
	// encoding constants).
	lvl1 := float64(st.DeltaRecordsByLevel[1])
	for lvl := 2; lvl <= st.Height-1; lvl++ {
		within(t, "level space equality", float64(st.DeltaRecordsByLevel[lvl]), lvl1, 0.35)
	}

	// Root size: |G0| + ½(δ−ρ)|E| = |G0| here (δ=ρ).
	within(t, "balanced root size", float64(st.RootSize), d.BalancedRootSize(), 0.25)
}

func TestIntersectionRootMeasured(t *testing.T) {
	const (
		L      = 512
		leaves = 16
	)
	for _, tc := range []struct {
		name         string
		dstar, rstar float64
	}{
		{"growing-only", 1, 0},
		{"delta=rho", 0.45, 0.45},
		{"delta=2rho", 0.5, 0.25},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g0Nodes, g0Edges := 400, 4000
			events := datagen.ConstantRate(datagen.ConstantRateConfig{
				G0Nodes: g0Nodes, G0Edges: g0Edges, Events: L * leaves,
				DeltaStar: tc.dstar, RhoStar: tc.rstar, Seed: 2,
			})
			dg, err := deltagraph.Build(events, deltagraph.Options{LeafSize: L, Arity: 2, Function: delta.Intersection{}})
			if err != nil {
				t.Fatal(err)
			}
			st := dg.Stats()
			d := Dynamics{G0: float64(g0Nodes + g0Edges), Events: float64(L * leaves), DeltaStar: tc.dstar, RhoStar: tc.rstar}
			want := d.IntersectionRootSize()
			// The formulas model element survival; random deletion of
			// *edges only* (nodes persist) shifts the mix, so compare
			// against the edge population plus the persistent nodes.
			if tc.rstar > 0 {
				de := Dynamics{G0: float64(g0Edges), Events: float64(L * leaves), DeltaStar: tc.dstar, RhoStar: tc.rstar}
				want = de.IntersectionRootSize() + float64(g0Nodes)
			}
			within(t, "intersection root size", float64(st.RootSize), want, 0.30)
		})
	}
}

// The Intersection path weight equals the leaf size; verify via PlanCost
// ordering: older (smaller) snapshots must be cheaper on a growing graph.
func TestIntersectionSkewMeasured(t *testing.T) {
	events := datagen.ConstantRate(datagen.ConstantRateConfig{
		G0Nodes: 100, G0Edges: 500, Events: 8192, DeltaStar: 1, RhoStar: 0, Seed: 3,
	})
	dg, err := deltagraph.Build(events, deltagraph.Options{LeafSize: 512, Arity: 2, Function: delta.Intersection{}})
	if err != nil {
		t.Fatal(err)
	}
	opts := graph.AttrOptions{}
	early, err := dg.PlanCost(1000, opts)
	if err != nil {
		t.Fatal(err)
	}
	late, err := dg.PlanCost(7500, opts)
	if err != nil {
		t.Fatal(err)
	}
	if early >= late {
		t.Errorf("intersection on growing graph should favor older snapshots: early=%d late=%d", early, late)
	}
}

// Balanced latencies are near-uniform across history; the spread must be
// far smaller than Intersection's on the same growing trace.
func TestBalancedUniformityMeasured(t *testing.T) {
	events := datagen.ConstantRate(datagen.ConstantRateConfig{
		G0Nodes: 100, G0Edges: 500, Events: 8192, DeltaStar: 1, RhoStar: 0, Seed: 4,
	})
	spread := func(fn delta.Differential) (float64, error) {
		dg, err := deltagraph.Build(events, deltagraph.Options{LeafSize: 512, Arity: 2, Function: fn})
		if err != nil {
			return 0, err
		}
		var min, max int64 = math.MaxInt64, 0
		for _, q := range []graph.Time{1000, 2500, 4000, 5500, 7000} {
			c, err := dg.PlanCost(q, graph.AttrOptions{})
			if err != nil {
				return 0, err
			}
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(min), nil
	}
	balSpread, err := spread(delta.Balanced())
	if err != nil {
		t.Fatal(err)
	}
	intSpread, err := spread(delta.Intersection{})
	if err != nil {
		t.Fatal(err)
	}
	if balSpread >= intSpread {
		t.Errorf("balanced spread %.2f should be below intersection spread %.2f", balSpread, intSpread)
	}
}

func TestComparativeSpaceEstimates(t *testing.T) {
	d := Dynamics{G0: 50000, Events: 100000, DeltaStar: 0.5, RhoStar: 0.5}
	if d.IntervalTreeSpace() >= d.SegmentTreeSpace() {
		t.Error("segment trees must dominate interval trees in space")
	}
	if d.CopyLogSpace(1000) <= d.CopyLogSpace(10000) {
		t.Error("smaller chunks must cost more Copy+Log space")
	}
}
