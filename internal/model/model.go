// Package model implements the analytical models of Section 5 of the
// paper: delta sizes per level, total index space, root sizes, and
// shortest-path weights, under the constant-rate graph-dynamics model
// (a δ* fraction of events insert an element, a ρ* fraction delete one).
// The tests validate these formulas against measured DeltaGraph builds on
// constant-rate traces.
package model

import "math"

// Dynamics is the Section 5.1 model of graph dynamics.
type Dynamics struct {
	// G0 is the initial graph size |G0| in elements.
	G0 float64
	// Events is |E|, the number of events in the historical trace.
	Events float64
	// DeltaStar (δ*) and RhoStar (ρ*) are the insert and delete
	// fractions; δ*+ρ* <= 1, the remainder being transient events.
	DeltaStar, RhoStar float64
}

// FinalGraphSize returns |G(|E|)| = |G0| + |E|·δ* − |E|·ρ*.
func (d Dynamics) FinalGraphSize() float64 {
	return d.G0 + d.Events*(d.DeltaStar-d.RhoStar)
}

// BalancedDeltaSize returns the Section 5.3 prediction for the size of one
// delta at the given level of a Balanced-function DeltaGraph with arity k
// and leaf-eventlist size L:
//
//	|∆(p, ci)| = ½ (k−1) k^(level−1) (δ*+ρ*) L
//
// Level 1 edges connect leaves to their parents.
func (d Dynamics) BalancedDeltaSize(level, k int, L float64) float64 {
	return 0.5 * float64(k-1) * math.Pow(float64(k), float64(level-1)) * (d.DeltaStar + d.RhoStar) * L
}

// BalancedLevelSpace returns the total delta space of one level, which the
// paper shows is the same at every level:
//
//	½ (k−1) (δ*+ρ*) |E|
func (d Dynamics) BalancedLevelSpace(k int) float64 {
	return 0.5 * float64(k-1) * (d.DeltaStar + d.RhoStar) * d.Events
}

// BalancedTotalSpace returns the total delta space excluding the
// super-root edge, for N leaves:
//
//	(log_k N − 1) · ½ (k−1) (δ*+ρ*) |E|
func (d Dynamics) BalancedTotalSpace(k, leaves int) float64 {
	levels := math.Log(float64(leaves)) / math.Log(float64(k))
	return (levels - 1) * d.BalancedLevelSpace(k)
}

// BalancedRootSize returns the predicted root size for the Balanced
// function: |G0| + ½ (δ*−ρ*) |E| (independent of arity).
func (d Dynamics) BalancedRootSize() float64 {
	return d.G0 + 0.5*(d.DeltaStar-d.RhoStar)*d.Events
}

// BalancedPathWeight returns the total weight of the shortest path from
// the super-root to any leaf under the Balanced function: ½ (δ*+ρ*) |E|
// plus the root size itself (the super-root edge carries the root).
func (d Dynamics) BalancedPathWeight() float64 {
	return d.BalancedRootSize() + 0.5*(d.DeltaStar+d.RhoStar)*d.Events
}

// IntersectionRootSize returns the predicted root size for the
// Intersection function in the three closed-form cases of Section 5.3:
//
//	ρ* = 0:        |G0|                       (growing-only graph)
//	δ* = ρ*:       |G0| · e^(−|E|·δ*/|G0|)    (constant-size graph)
//	δ* = 2ρ*:      |G0|² / (|G0| + ρ*·|E|)
//
// It panics for parameter combinations outside these cases.
func (d Dynamics) IntersectionRootSize() float64 {
	switch {
	case d.RhoStar == 0:
		return d.G0
	case d.DeltaStar == d.RhoStar:
		return d.G0 * math.Exp(-d.Events*d.DeltaStar/d.G0)
	case d.DeltaStar == 2*d.RhoStar:
		return d.G0 * d.G0 / (d.G0 + d.RhoStar*d.Events)
	}
	panic("model: IntersectionRootSize has closed forms only for ρ*=0, δ*=ρ*, δ*=2ρ*")
}

// IntersectionPathWeight returns the total weight of the shortest path
// from the super-root to a leaf under Intersection: exactly the size of
// that leaf's snapshot (the paper's "highly desirable property").
func (d Dynamics) IntersectionPathWeight(leafSize float64) float64 { return leafSize }

// CopyLogSpace estimates the Copy+Log disk footprint with chunk size C:
// N = |E|/C snapshots of average size avg(|G|), plus the raw events.
func (d Dynamics) CopyLogSpace(C float64) float64 {
	n := d.Events / C
	avg := d.G0 + 0.5*(d.DeltaStar-d.RhoStar)*d.Events
	return n*avg + d.Events
}

// IntervalTreeSpace estimates interval-tree space: one interval per
// inserted element, O(|E|).
func (d Dynamics) IntervalTreeSpace() float64 {
	return d.G0 + d.DeltaStar*d.Events
}

// SegmentTreeSpace estimates segment-tree space: O(|E| log |E|) from
// interval duplication.
func (d Dynamics) SegmentTreeSpace() float64 {
	n := d.G0 + d.DeltaStar*d.Events
	return n * math.Log2(math.Max(n, 2))
}
