// Package metrics is a zero-dependency metrics plane: counters, gauges
// and cumulative histograms collected in a Registry and exposed in the
// Prometheus text format (version 0.0.4) over an http.Handler.
//
// The package exists so every layer of the store — worker, coordinator,
// replica, WAL — can be scraped by a stock Prometheus without pulling a
// client library into the module. It implements exactly the slice of
// the exposition format the repo needs: # HELP / # TYPE comment lines,
// label escaping, and the _bucket/_sum/_count triplet of cumulative
// histograms.
//
// Hot-path cost is kept to atomics: a Counter increment is one
// atomic add; a Histogram observation is one atomic add plus a CAS
// loop on the float sum. Label resolution (Vec.With) takes a
// read-locked map lookup and is intended to be done once at
// construction for per-layer counters, or per request where the label
// value is dynamic (status code class).
//
// Registration is idempotent: asking for an existing name returns the
// existing collector, so two subsystems sharing a Registry can both
// declare dg_cache_hits_total and get the same family. Re-registering
// a name as a different type or with different labels panics — that is
// a programming error, not an operational condition.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency buckets (seconds): 100µs up to
// 10s, roughly logarithmic. They bracket everything from an in-memory
// cache hit to a wedged scatter leg.
var DefBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// SizeBuckets are power-of-two count buckets for batch/record sizes.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must not be negative.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. A Gauge registered with
// GaugeFunc/Vec.Func is computed at scrape time instead; Set/Add on a
// func gauge are ignored.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set sets the gauge.
func (g *Gauge) Set(v float64) {
	if g.fn == nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (calling the func for func gauges).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a cumulative histogram with fixed upper bounds.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	b := make([]float64, len(buckets))
	copy(b, buckets)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) of the observations by
// linear interpolation within the bucket holding the rank — the same
// read Prometheus's histogram_quantile() performs on the exposed
// _bucket series, so a live in-process value and a scraped one agree.
// Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	cum := make([]uint64, len(h.counts))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cum[i] = c
	}
	return BucketQuantile(q, h.bounds, cum)
}

// BucketQuantile estimates the q-quantile of a cumulative histogram:
// bounds are the finite upper bounds in ascending order and cum the
// cumulative counts, with one extra trailing entry for the +Inf bucket
// (len(cum) == len(bounds)+1). Callers reconstructing a histogram from
// a /metrics scrape (the load harness's server-side cross-check) feed
// the parsed _bucket samples straight in. Observations beyond the last
// finite bound clamp to that bound; an empty histogram returns NaN.
func BucketQuantile(q float64, bounds []float64, cum []uint64) float64 {
	if len(cum) != len(bounds)+1 {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	for i, bound := range bounds {
		if float64(cum[i]) >= rank {
			lo, below := 0.0, uint64(0)
			if i > 0 {
				lo, below = bounds[i-1], cum[i-1]
			}
			inBucket := cum[i] - below
			if inBucket == 0 {
				return bound
			}
			return lo + (bound-lo)*(rank-float64(below))/float64(inBucket)
		}
	}
	// The rank lands in the +Inf bucket: clamp to the last finite bound.
	if len(bounds) == 0 {
		return math.NaN()
	}
	return bounds[len(bounds)-1]
}

// family is one named metric family with zero or more labeled children.
type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
}

type child struct {
	values []string // label values, len == len(family.labels)
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// childKey joins label values with an unprintable separator.
func childKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.RLock()
	ch := f.children[key]
	f.mu.RUnlock()
	if ch != nil {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch = f.children[key]; ch != nil {
		return ch
	}
	ch = &child{values: append([]string(nil), values...)}
	switch f.typ {
	case "counter":
		ch.c = &Counter{}
	case "gauge":
		ch.g = &Gauge{}
	case "histogram":
		ch.h = newHistogram(f.buckets)
	}
	f.children[key] = ch
	return ch
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var nameOK = func(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(name) > 0
}

func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	if !nameOK(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !nameOK(l) || l == "le" {
			panic("metrics: invalid label name " + strconv.Quote(l) + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic("metrics: conflicting re-registration of " + name)
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the (unlabeled) counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, "counter", nil, nil).child(nil).c
}

// Gauge returns the (unlabeled) gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, "gauge", nil, nil).child(nil).g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Re-registering the same name panics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	g := r.family(name, help, "gauge", nil, nil).child(nil).g
	if g.fn != nil {
		panic("metrics: duplicate GaugeFunc " + name)
	}
	g.fn = fn
}

// Histogram returns the (unlabeled) histogram registered under name.
// Buckets are upper bounds in ascending order; nil means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.family(name, help, "histogram", nil, buckets).child(nil).h
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec returns the counter family registered under name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, "counter", labels, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// Total returns the sum of all children — the registry-derived
// replacement for a separately maintained grand-total counter.
func (v *CounterVec) Total() int64 {
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	var n int64
	for _, ch := range v.f.children {
		n += ch.c.Value()
	}
	return n
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, "gauge", labels, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// Func registers a scrape-time computed child gauge.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	g := v.f.child(values).g
	if g.fn != nil {
		panic("metrics: duplicate gauge func child of " + v.f.name)
	}
	g.fn = fn
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the histogram family registered under name;
// nil buckets means DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.family(name, help, "histogram", labels, buckets)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).h }

// --- exposition ---

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"}; extra, when non-empty, is an
// already-rendered pair appended last (used for le).
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// Expose renders the registry in Prometheus text format 0.0.4.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)

		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*child, 0, len(keys))
		for _, k := range keys {
			children = append(children, f.children[k])
		}
		f.mu.RUnlock()

		for _, ch := range children {
			switch f.typ {
			case "counter":
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labels, ch.values, ""), ch.c.Value())
			case "gauge":
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, ch.values, ""), formatFloat(ch.g.Value()))
			case "histogram":
				var cum uint64
				for i, bound := range ch.h.bounds {
					cum += ch.h.counts[i].Load()
					le := `le="` + formatFloat(bound) + `"`
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.values, le), cum)
				}
				cum += ch.h.counts[len(ch.h.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.values, `le="+Inf"`), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, ch.values, ""), formatFloat(ch.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, ch.values, ""), cum)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the GET /metrics scrape handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Expose(w)
	})
}
