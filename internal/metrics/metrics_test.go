package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func find(t *testing.T, samples []Sample, name string, labels map[string]string) Sample {
	t.Helper()
outer:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue outer
			}
		}
		return s
	}
	t.Fatalf("no sample %s%v", name, labels)
	return Sample{}
}

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Total operations.")
	c.Inc()
	c.Add(41)
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(2.5)
	g.Add(-1)
	r.GaugeFunc("test_live", "Liveness.", func() float64 { return 1 })

	text := expose(t, r)
	if err := Lint(text); err != nil {
		t.Fatalf("Lint: %v\n%s", err, text)
	}
	samples, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s := find(t, samples, "test_ops_total", nil); s.Value != 42 {
		t.Fatalf("counter = %v, want 42", s.Value)
	}
	if s := find(t, samples, "test_depth", nil); s.Value != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", s.Value)
	}
	if s := find(t, samples, "test_live", nil); s.Value != 1 {
		t.Fatalf("gauge func = %v, want 1", s.Value)
	}
	if !strings.Contains(text, "# HELP test_ops_total Total operations.\n# TYPE test_ops_total counter\n") {
		t.Fatalf("missing HELP/TYPE header:\n%s", text)
	}
}

// TestTypeBeforeSamples pins the ordering contract: every family's
// TYPE line precedes all of its samples, families sorted by name.
func TestTypeBeforeSamples(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "Last.").Inc()
	r.Counter("aaa_total", "First.").Inc()
	r.Histogram("mmm_seconds", "Middle.", nil).Observe(0.1)
	text := expose(t, r)
	if err := Lint(text); err != nil {
		t.Fatalf("Lint: %v\n%s", err, text)
	}
	aaa := strings.Index(text, "# TYPE aaa_total")
	mmm := strings.Index(text, "# TYPE mmm_seconds")
	zzz := strings.Index(text, "# TYPE zzz_total")
	if !(aaa >= 0 && aaa < mmm && mmm < zzz) {
		t.Fatalf("families not sorted:\n%s", text)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_weird_total", "Escaping.", "path")
	nasty := "a\\b\"c\nd"
	v.With(nasty).Add(7)
	text := expose(t, r)
	if err := Lint(text); err != nil {
		t.Fatalf("Lint: %v\n%s", err, text)
	}
	samples, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	s := find(t, samples, "test_weird_total", nil)
	if s.Labels["path"] != nasty {
		t.Fatalf("label round-trip = %q, want %q", s.Labels["path"], nasty)
	}
	if s.Value != 7 {
		t.Fatalf("value = %v, want 7", s.Value)
	}
}

func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	text := expose(t, r)
	if err := Lint(text); err != nil {
		t.Fatalf("Lint: %v\n%s", err, text)
	}
	samples, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := map[string]float64{"0.01": 2, "0.1": 3, "1": 4, "+Inf": 5}
	for le, n := range want {
		s := find(t, samples, "test_latency_seconds_bucket", map[string]string{"le": le})
		if s.Value != n {
			t.Fatalf("bucket le=%s = %v, want %v", le, s.Value, n)
		}
	}
	if s := find(t, samples, "test_latency_seconds_count", nil); s.Value != 5 {
		t.Fatalf("_count = %v, want 5", s.Value)
	}
	sum := find(t, samples, "test_latency_seconds_sum", nil)
	if math.Abs(sum.Value-5.565) > 1e-9 {
		t.Fatalf("_sum = %v, want 5.565", sum.Value)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_leg_seconds", "Per-leg latency.", []float64{0.1}, "partition")
	v.With("0").Observe(0.05)
	v.With("1").Observe(0.5)
	text := expose(t, r)
	if err := Lint(text); err != nil {
		t.Fatalf("Lint: %v\n%s", err, text)
	}
	samples, _ := Parse(text)
	s := find(t, samples, "test_leg_seconds_bucket", map[string]string{"partition": "0", "le": "0.1"})
	if s.Value != 1 {
		t.Fatalf("p0 le=0.1 = %v, want 1", s.Value)
	}
	s = find(t, samples, "test_leg_seconds_bucket", map[string]string{"partition": "1", "le": "0.1"})
	if s.Value != 0 {
		t.Fatalf("p1 le=0.1 = %v, want 0", s.Value)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "Help.")
	b := r.Counter("test_total", "Help.")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("test_total", "Help.")
}

func TestVecTotal(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_req_total", "Requests.", "endpoint", "code")
	v.With("/snapshot", "2xx").Add(3)
	v.With("/snapshot", "5xx").Inc()
	v.With("/stats", "2xx").Add(2)
	if got := v.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "Help.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if err := Lint(rec.Body.String()); err != nil {
		t.Fatalf("Lint: %v", err)
	}
}

// TestConcurrent exercises the hot paths under -race while scraping.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "Help.")
	h := r.Histogram("test_seconds", "Help.", nil)
	v := r.CounterVec("test_labeled_total", "Help.", "k")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				v.With(string(rune('a' + i%2))).Inc()
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		var b strings.Builder
		if err := r.Expose(&b); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if err := Lint(b.String()); err != nil {
			t.Fatalf("Lint mid-flight: %v", err)
		}
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
}

func TestLintCatchesBrokenHistogram(t *testing.T) {
	bad := "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"
	if err := Lint(bad); err == nil {
		t.Fatal("Lint accepted non-cumulative buckets")
	}
	noInf := "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n"
	if err := Lint(noInf); err == nil {
		t.Fatal("Lint accepted histogram without +Inf")
	}
	untyped := "nope_total 3\n"
	if err := Lint(untyped); err == nil {
		t.Fatal("Lint accepted sample without TYPE")
	}
}
