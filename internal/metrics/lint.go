package metrics

// Lint is a strict checker for the subset of the Prometheus text
// exposition format this package emits. It exists for tests: the
// exposition-format unit test and the end-to-end scrape tests run
// every scraped body through it, so a formatting regression fails
// loudly instead of silently breaking a real scraper.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label
// pairs, and the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Parse splits a text-format exposition into samples, validating the
// line grammar (HELP/TYPE comments, label escaping, float values) as
// it goes.
func Parse(text string) ([]Sample, error) {
	var samples []Sample
	typed := map[string]string{} // family -> declared type
	helped := map[string]bool{}  // family -> HELP seen
	sampled := map[string]bool{} // family -> samples seen
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			switch kind {
			case "HELP":
				if helped[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				helped[name] = true
			case "TYPE":
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if sampled[name] {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, rest)
				}
				typed[name] = rest
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		sampled[familyOf(s.Name, typed)] = true
		samples = append(samples, s)
	}
	return samples, nil
}

// Lint parses text and checks the invariants a scraper relies on:
// every sample belongs to a declared TYPE, counter samples are
// non-negative integers, and each histogram's _bucket series is
// cumulative with a +Inf bucket equal to its _count.
func Lint(text string) error {
	samples, err := Parse(text)
	if err != nil {
		return err
	}
	typed := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if kind, name, rest, err := parseComment(line); err == nil && kind == "TYPE" {
			typed[name] = rest
		}
	}
	type histKey struct {
		fam    string
		labels string
	}
	buckets := map[histKey]map[float64]float64{}
	counts := map[histKey]float64{}
	sums := map[histKey]bool{}
	for _, s := range samples {
		fam := familyOf(s.Name, typed)
		typ, ok := typed[fam]
		if !ok {
			return fmt.Errorf("sample %s has no TYPE line", s.Name)
		}
		switch typ {
		case "counter":
			if s.Value < 0 || s.Value != math.Trunc(s.Value) {
				return fmt.Errorf("counter %s has non-integer or negative value %v", s.Name, s.Value)
			}
		case "histogram":
			labels := map[string]string{}
			for k, v := range s.Labels {
				if k != "le" {
					labels[k] = v
				}
			}
			key := histKey{fam, canonLabels(labels)}
			switch {
			case s.Name == fam+"_bucket":
				leStr, ok := s.Labels["le"]
				if !ok {
					return fmt.Errorf("%s without le label", s.Name)
				}
				le, err := parseFloat(leStr)
				if err != nil {
					return fmt.Errorf("%s: bad le %q", s.Name, leStr)
				}
				if buckets[key] == nil {
					buckets[key] = map[float64]float64{}
				}
				buckets[key][le] = s.Value
			case s.Name == fam+"_count":
				counts[key] = s.Value
			case s.Name == fam+"_sum":
				sums[key] = true
			default:
				return fmt.Errorf("sample %s does not match histogram family %s", s.Name, fam)
			}
		}
	}
	for key, bs := range buckets {
		les := make([]float64, 0, len(bs))
		hasInf := false
		for le := range bs {
			if math.IsInf(le, +1) {
				hasInf = true
			}
			les = append(les, le)
		}
		if !hasInf {
			return fmt.Errorf("histogram %s%s has no +Inf bucket", key.fam, key.labels)
		}
		sort.Float64s(les)
		prev := -1.0
		for _, le := range les {
			if bs[le] < prev {
				return fmt.Errorf("histogram %s%s buckets not cumulative at le=%v", key.fam, key.labels, le)
			}
			prev = bs[le]
		}
		if c, ok := counts[key]; !ok || c != bs[math.Inf(+1)] {
			return fmt.Errorf("histogram %s%s _count %v != +Inf bucket %v", key.fam, key.labels, counts[key], bs[math.Inf(+1)])
		}
		if !sums[key] {
			return fmt.Errorf("histogram %s%s missing _sum", key.fam, key.labels)
		}
	}
	return nil
}

// familyOf maps a sample name to its metric family: histogram samples
// carry _bucket/_sum/_count suffixes on the declared family name.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if fam, ok := strings.CutSuffix(name, suf); ok {
			if typed[fam] == "histogram" || typed[fam] == "summary" {
				return fam
			}
		}
	}
	return name
}

func canonLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func parseComment(line string) (kind, name, rest string, err error) {
	for _, k := range []string{"# HELP ", "# TYPE "} {
		if body, ok := strings.CutPrefix(line, k); ok {
			name, rest, _ = strings.Cut(body, " ")
			if !nameOK(name) {
				return "", "", "", fmt.Errorf("bad metric name %q in comment", name)
			}
			return strings.TrimSpace(k[2:]), name, rest, nil
		}
	}
	if strings.HasPrefix(line, "#") {
		return "comment", "", "", nil // free-form comment: legal, ignored
	}
	return "", "", "", fmt.Errorf("not a comment line")
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSample parses `name{label="value",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	s.Name = line[:i]
	if !nameOK(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && line[i] == ' ' {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && isNameChar(line[j], j == i) {
				j++
			}
			lname := line[i:j]
			if !nameOK(lname) {
				return s, fmt.Errorf("bad label name %q", lname)
			}
			if j >= len(line) || line[j] != '=' || j+1 >= len(line) || line[j+1] != '"' {
				return s, fmt.Errorf("malformed label pair after %q", lname)
			}
			j += 2
			var val strings.Builder
			for {
				if j >= len(line) {
					return s, fmt.Errorf("unterminated label value for %q", lname)
				}
				c := line[j]
				if c == '"' {
					j++
					break
				}
				if c == '\\' {
					if j+1 >= len(line) {
						return s, fmt.Errorf("dangling escape in label %q", lname)
					}
					switch line[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape \\%c in label %q", line[j+1], lname)
					}
					j += 2
					continue
				}
				val.WriteByte(c)
				j++
			}
			if _, dup := s.Labels[lname]; dup {
				return s, fmt.Errorf("duplicate label %q", lname)
			}
			s.Labels[lname] = val.String()
			i = j
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	valStr := strings.TrimSpace(line[i:])
	// A timestamp suffix would be a second field; this package never
	// emits one, so reject it to keep the linter strict.
	if strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("unexpected extra fields in %q", valStr)
	}
	v, err := parseFloat(valStr)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", valStr)
	}
	s.Value = v
	return s, nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
