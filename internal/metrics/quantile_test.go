package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBucketQuantile(t *testing.T) {
	bounds := []float64{0.1, 0.5, 1}
	// 10 below 0.1, 30 in (0.1, 0.5], 40 in (0.5, 1], 20 above 1.
	cum := []uint64{10, 40, 80, 100}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.05, 0.05}, // rank 5 of 10 in [0, 0.1]
		{0.10, 0.1},  // exactly the first bound
		{0.25, 0.3},  // rank 25: 15 of 30 into (0.1, 0.5]
		{0.40, 0.5},  // exactly the second bound
		{0.60, 0.75}, // rank 60: 20 of 40 into (0.5, 1]
		{0.99, 1},    // +Inf bucket clamps to the last finite bound
	}
	for _, c := range cases {
		got := BucketQuantile(c.q, bounds, cum)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("BucketQuantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := BucketQuantile(0.5, bounds, []uint64{0, 0, 0, 0}); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile = %v, want NaN", got)
	}
	if got := BucketQuantile(0.5, bounds, []uint64{1, 2}); !math.IsNaN(got) {
		t.Errorf("mismatched cum length accepted: %v", got)
	}
}

// TestHistogramQuantile checks the live-histogram read against a sorted
// sample oracle: within one bucket's width of the true quantile, and in
// agreement with BucketQuantile over the same data (the scraped-side
// path the load harness uses).
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(DefBuckets)
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// A latency-shaped mix: mostly sub-10ms with a heavy tail.
		v := math.Exp(rng.NormFloat64()*1.2 - 6) // lognormal around ~2.5ms
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(len(samples)))) - 1
		oracle := samples[rank]
		got := h.Quantile(q)
		// The estimate may land anywhere inside the oracle's bucket:
		// the allowed error is that bucket's width.
		i := sort.SearchFloat64s(DefBuckets, oracle)
		lo := 0.0
		if i > 0 {
			lo = DefBuckets[i-1]
		}
		hi := oracle
		if i < len(DefBuckets) {
			hi = DefBuckets[i]
		}
		if got < lo-1e-12 || got > hi+1e-12 {
			t.Errorf("Quantile(%v) = %v outside oracle bucket [%v, %v] (oracle %v)", q, got, lo, hi, oracle)
		}
	}
}
