package baseline

import (
	"fmt"
	"strconv"
	"strings"

	"historygraph/internal/graph"
	"historygraph/internal/kvstore"
)

// NaiveLog is the Log approach (Section 4.1): only the changes are
// recorded; a query scans the trace from the beginning and replays every
// event up to t. Space-optimal with O(1) appends, but retrieval reads the
// entire prefix — the paper measured it 20–23x slower than DeltaGraph.
//
// Mirroring the paper's setup ("a naive approach similar to the Log
// technique, with raw events being read from input files directly"), the
// trace is stored as raw text records — one tab-separated line per event —
// and every query re-reads and re-parses the prefix.
type NaiveLog struct {
	store    kvstore.Store
	blockIDs []uint64
	spans    []graph.Time // last timestamp per block
	nextID   uint64
	count    int
}

const naiveLogBlock = 8192

// BuildNaiveLog persists the trace as a sequence of raw text blocks.
func BuildNaiveLog(events graph.EventList, store kvstore.Store) (*NaiveLog, error) {
	if store == nil {
		store = kvstore.NewMemStore()
	}
	nl := &NaiveLog{store: store, nextID: 1, count: len(events)}
	for lo := 0; lo < len(events); lo += naiveLogBlock {
		hi := lo + naiveLogBlock
		if hi > len(events) {
			hi = len(events)
		}
		var sb strings.Builder
		for _, ev := range events[lo:hi] {
			writeEventLine(&sb, ev)
		}
		id := nl.nextID
		nl.nextID++
		if err := store.Put(kvstore.EncodeKey(0, id, kvstore.ComponentStruct), []byte(sb.String())); err != nil {
			return nil, err
		}
		nl.blockIDs = append(nl.blockIDs, id)
		nl.spans = append(nl.spans, events[hi-1].At)
	}
	return nl, nil
}

// writeEventLine renders one event as a raw text record:
// type\tat\tnode\tnode2\tedge\tflags\tattr\told\tnew
func writeEventLine(sb *strings.Builder, ev graph.Event) {
	flags := 0
	if ev.Directed {
		flags |= 1
	}
	if ev.HadOld {
		flags |= 2
	}
	if ev.HasNew {
		flags |= 4
	}
	fmt.Fprintf(sb, "%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\t%s\n",
		ev.Type, ev.At, ev.Node, ev.Node2, ev.Edge, flags,
		escapeTabs(ev.Attr), escapeTabs(ev.Old), escapeTabs(ev.New))
}

func escapeTabs(s string) string {
	if !strings.ContainsAny(s, "\t\n\\") {
		return s
	}
	r := strings.NewReplacer("\\", "\\\\", "\t", "\\t", "\n", "\\n")
	return r.Replace(s)
}

func unescapeTabs(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	r := strings.NewReplacer("\\t", "\t", "\\n", "\n", "\\\\", "\\")
	return r.Replace(s)
}

// parseEventLine is the inverse of writeEventLine.
func parseEventLine(line string) (graph.Event, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 9 {
		return graph.Event{}, fmt.Errorf("baseline: malformed log line %q", line)
	}
	var nums [6]int64
	for i := 0; i < 6; i++ {
		v, err := strconv.ParseInt(parts[i], 10, 64)
		if err != nil {
			return graph.Event{}, err
		}
		nums[i] = v
	}
	return graph.Event{
		Type: graph.EventType(nums[0]), At: graph.Time(nums[1]),
		Node: graph.NodeID(nums[2]), Node2: graph.NodeID(nums[3]), Edge: graph.EdgeID(nums[4]),
		Directed: nums[5]&1 != 0, HadOld: nums[5]&2 != 0, HasNew: nums[5]&4 != 0,
		Attr: unescapeTabs(parts[6]), Old: unescapeTabs(parts[7]), New: unescapeTabs(parts[8]),
	}, nil
}

// Name implements SnapshotStore.
func (nl *NaiveLog) Name() string { return "log" }

// Len returns the number of recorded events.
func (nl *NaiveLog) Len() int { return nl.count }

// Snapshot implements SnapshotStore by full prefix replay of the raw text
// log.
func (nl *NaiveLog) Snapshot(t graph.Time, opts graph.AttrOptions) (*graph.Snapshot, error) {
	s := graph.NewSnapshot()
	for i, id := range nl.blockIDs {
		if i > 0 && nl.spans[i-1] > t {
			break
		}
		buf, err := nl.store.Get(kvstore.EncodeKey(0, id, kvstore.ComponentStruct))
		if err != nil {
			return nil, err
		}
		text := string(buf)
		for len(text) > 0 {
			idx := strings.IndexByte(text, '\n')
			if idx < 0 {
				break
			}
			ev, err := parseEventLine(text[:idx])
			if err != nil {
				return nil, err
			}
			text = text[idx+1:]
			if ev.At > t {
				break
			}
			if opts.FilterEvent(ev) {
				s.Apply(ev)
			}
		}
	}
	return opts.FilterSnapshot(s), nil
}

// DiskBytes implements SnapshotStore.
func (nl *NaiveLog) DiskBytes() int64 { return nl.store.SizeOnDisk() }

// MemoryBytes implements SnapshotStore.
func (nl *NaiveLog) MemoryBytes() int64 { return int64(len(nl.blockIDs)) * 16 }
