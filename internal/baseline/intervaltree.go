package baseline

import (
	"sort"

	"historygraph/internal/graph"
)

// IntervalTree answers valid-timeslice queries with a centered interval
// tree over element validity intervals — the in-memory comparison point of
// the paper's Figure 7 (and conceptually the external interval tree of Arge
// & Vitter cited in Section 4.1). Every node, edge, and attribute value
// becomes one interval [start, end); a stabbing query at t returns the
// elements alive at t, from which the snapshot is assembled.
type IntervalTree struct {
	root  *itNode
	size  int
	bytes int64
}

// itElem describes what the interval's element contributes to a snapshot.
type itElem struct {
	kind graph.ElementKind
	node graph.NodeID
	edge graph.EdgeID
	info graph.EdgeInfo
	attr string
	val  string
}

type itInterval struct {
	start, end graph.Time // [start, end)
	elem       itElem
}

type itNode struct {
	center      graph.Time
	left, right *itNode
	// Intervals crossing the center, sorted by start ascending and by
	// end descending for efficient stabbing.
	byStart []itInterval
	byEnd   []itInterval
}

// BuildIntervalTree converts a chronological event trace into element
// validity intervals and builds the tree.
func BuildIntervalTree(events graph.EventList) *IntervalTree {
	intervals := intervalsFromEvents(events)
	// Drop empty intervals (an element added and removed at the same
	// timestamp is never visible); they would also stall the recursion.
	kept := intervals[:0]
	for _, iv := range intervals {
		if iv.start < iv.end {
			kept = append(kept, iv)
		}
	}
	intervals = kept
	t := &IntervalTree{size: len(intervals)}
	t.root = buildITNode(intervals)
	// Rough memory estimate: interval struct + strings + tree overhead,
	// counted twice (byStart + byEnd hold copies).
	for _, iv := range intervals {
		t.bytes += 2 * (64 + int64(len(iv.elem.attr)+len(iv.elem.val)))
	}
	return t
}

// intervalsFromEvents derives validity intervals from the event trace.
func intervalsFromEvents(events graph.EventList) []itInterval {
	var out []itInterval
	nodeStart := map[graph.NodeID]graph.Time{}
	edgeStart := map[graph.EdgeID]graph.Time{}
	edgeInfo := map[graph.EdgeID]graph.EdgeInfo{}
	type attrState struct {
		val   string
		since graph.Time
	}
	nodeAttr := map[graph.NodeID]map[string]attrState{}
	edgeAttr := map[graph.EdgeID]map[string]attrState{}

	for _, ev := range events {
		switch ev.Type {
		case graph.AddNode:
			nodeStart[ev.Node] = ev.At
		case graph.DelNode:
			if start, ok := nodeStart[ev.Node]; ok {
				out = append(out, itInterval{start, ev.At, itElem{kind: graph.KindNode, node: ev.Node}})
				delete(nodeStart, ev.Node)
			}
		case graph.AddEdge:
			edgeStart[ev.Edge] = ev.At
			edgeInfo[ev.Edge] = graph.EdgeInfo{From: ev.Node, To: ev.Node2, Directed: ev.Directed}
		case graph.DelEdge:
			if start, ok := edgeStart[ev.Edge]; ok {
				out = append(out, itInterval{start, ev.At, itElem{kind: graph.KindEdge, edge: ev.Edge, info: edgeInfo[ev.Edge]}})
				delete(edgeStart, ev.Edge)
			}
		case graph.SetNodeAttr:
			attrs := nodeAttr[ev.Node]
			if attrs == nil {
				attrs = map[string]attrState{}
				nodeAttr[ev.Node] = attrs
			}
			if prev, ok := attrs[ev.Attr]; ok {
				out = append(out, itInterval{prev.since, ev.At, itElem{kind: graph.KindNodeAttr, node: ev.Node, attr: ev.Attr, val: prev.val}})
				delete(attrs, ev.Attr)
			}
			if ev.HasNew {
				attrs[ev.Attr] = attrState{val: ev.New, since: ev.At}
			}
		case graph.SetEdgeAttr:
			attrs := edgeAttr[ev.Edge]
			if attrs == nil {
				attrs = map[string]attrState{}
				edgeAttr[ev.Edge] = attrs
			}
			if prev, ok := attrs[ev.Attr]; ok {
				out = append(out, itInterval{prev.since, ev.At, itElem{kind: graph.KindEdgeAttr, edge: ev.Edge, node: edgeInfo[ev.Edge].From, attr: ev.Attr, val: prev.val}})
				delete(attrs, ev.Attr)
			}
			if ev.HasNew {
				attrs[ev.Attr] = attrState{val: ev.New, since: ev.At}
			}
		}
	}
	// Still-open intervals extend to MaxTime.
	for n, start := range nodeStart {
		out = append(out, itInterval{start, graph.MaxTime, itElem{kind: graph.KindNode, node: n}})
	}
	for e, start := range edgeStart {
		out = append(out, itInterval{start, graph.MaxTime, itElem{kind: graph.KindEdge, edge: e, info: edgeInfo[e]}})
	}
	for n, attrs := range nodeAttr {
		for k, st := range attrs {
			out = append(out, itInterval{st.since, graph.MaxTime, itElem{kind: graph.KindNodeAttr, node: n, attr: k, val: st.val}})
		}
	}
	for e, attrs := range edgeAttr {
		for k, st := range attrs {
			out = append(out, itInterval{st.since, graph.MaxTime, itElem{kind: graph.KindEdgeAttr, edge: e, node: edgeInfo[e].From, attr: k, val: st.val}})
		}
	}
	return out
}

func buildITNode(intervals []itInterval) *itNode {
	if len(intervals) == 0 {
		return nil
	}
	// Center = median of interval endpoints (bounded to finite times).
	endpoints := make([]graph.Time, 0, len(intervals))
	for _, iv := range intervals {
		endpoints = append(endpoints, iv.start)
	}
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i] < endpoints[j] })
	center := endpoints[len(endpoints)/2]

	node := &itNode{center: center}
	var left, right []itInterval
	for _, iv := range intervals {
		switch {
		case iv.end <= center:
			left = append(left, iv)
		case iv.start > center:
			right = append(right, iv)
		default:
			node.byStart = append(node.byStart, iv)
		}
	}
	node.byEnd = append(node.byEnd, node.byStart...)
	sort.Slice(node.byStart, func(i, j int) bool { return node.byStart[i].start < node.byStart[j].start })
	sort.Slice(node.byEnd, func(i, j int) bool { return node.byEnd[i].end > node.byEnd[j].end })
	node.left = buildITNode(left)
	node.right = buildITNode(right)
	return node
}

// Name implements SnapshotStore.
func (t *IntervalTree) Name() string { return "intervaltree" }

// Len returns the number of stored intervals.
func (t *IntervalTree) Len() int { return t.size }

// Snapshot implements SnapshotStore by a stabbing query at t.
func (t *IntervalTree) Snapshot(at graph.Time, opts graph.AttrOptions) (*graph.Snapshot, error) {
	s := graph.NewSnapshot()
	stab(t.root, at, func(iv itInterval) {
		switch iv.elem.kind {
		case graph.KindNode:
			s.Nodes[iv.elem.node] = struct{}{}
		case graph.KindEdge:
			s.Edges[iv.elem.edge] = iv.elem.info
		case graph.KindNodeAttr:
			if opts.WantNodeAttr(iv.elem.attr) {
				if s.NodeAttrs[iv.elem.node] == nil {
					s.NodeAttrs[iv.elem.node] = map[string]string{}
				}
				s.NodeAttrs[iv.elem.node][iv.elem.attr] = iv.elem.val
			}
		case graph.KindEdgeAttr:
			if opts.WantEdgeAttr(iv.elem.attr) {
				if s.EdgeAttrs[iv.elem.edge] == nil {
					s.EdgeAttrs[iv.elem.edge] = map[string]string{}
				}
				s.EdgeAttrs[iv.elem.edge][iv.elem.attr] = iv.elem.val
			}
		}
	})
	return s, nil
}

func stab(n *itNode, at graph.Time, emit func(itInterval)) {
	for n != nil {
		switch {
		case at < n.center:
			// Crossing intervals with start <= at qualify.
			for _, iv := range n.byStart {
				if iv.start > at {
					break
				}
				emit(iv)
			}
			n = n.left
		case at > n.center:
			// Crossing intervals with end > at qualify.
			for _, iv := range n.byEnd {
				if iv.end <= at {
					break
				}
				emit(iv)
			}
			n = n.right
		default:
			for _, iv := range n.byStart {
				emit(iv)
			}
			return
		}
	}
}

// DiskBytes implements SnapshotStore (the tree is memory-resident).
func (t *IntervalTree) DiskBytes() int64 { return 0 }

// MemoryBytes implements SnapshotStore.
func (t *IntervalTree) MemoryBytes() int64 { return t.bytes }
