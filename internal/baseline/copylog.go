package baseline

import (
	"fmt"
	"sort"

	"historygraph/internal/delta"
	"historygraph/internal/graph"
	"historygraph/internal/kvstore"
)

// CopyLog is the Copy+Log approach (Section 4.1): a full snapshot is
// persisted every C events, plus the eventlists between snapshots; a query
// loads the latest snapshot at or before t and replays the following
// events. It is equivalent to a DeltaGraph with the Empty differential
// function and arity N, but implemented standalone as an honest baseline.
type CopyLog struct {
	store     kvstore.Store
	times     []graph.Time // snapshot timepoints (times[0] = before time)
	snapIDs   []uint64
	eventIDs  []uint64 // eventIDs[i] covers (times[i], times[i+1]]
	nextID    uint64
	chunk     int
	lastTime  graph.Time
	snapBytes int64
}

// BuildCopyLog constructs the Copy+Log store over a chronological trace,
// persisting a snapshot every chunk events (extended to a timestamp
// boundary, like DeltaGraph leaf cuts).
func BuildCopyLog(events graph.EventList, chunk int, store kvstore.Store) (*CopyLog, error) {
	if store == nil {
		store = kvstore.NewMemStore()
	}
	if chunk <= 0 {
		chunk = 4096
	}
	cl := &CopyLog{store: store, chunk: chunk, nextID: 1}
	cur := graph.NewSnapshot()
	cl.times = append(cl.times, -1<<62)
	if err := cl.putSnapshot(cur); err != nil {
		return nil, err
	}
	var pendingEvents graph.EventList
	flush := func() error {
		if len(pendingEvents) == 0 {
			return nil
		}
		id := cl.nextID
		cl.nextID++
		if err := store.Put(kvstore.EncodeKey(0, id, kvstore.ComponentStruct), delta.EncodeEvents(pendingEvents)); err != nil {
			return err
		}
		cl.eventIDs = append(cl.eventIDs, id)
		cl.times = append(cl.times, pendingEvents[len(pendingEvents)-1].At)
		pendingEvents = nil
		return cl.putSnapshot(cur)
	}
	for _, ev := range events {
		if len(pendingEvents) >= chunk && ev.At > cl.lastTime {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		cur.Apply(ev)
		pendingEvents = append(pendingEvents, ev)
		cl.lastTime = ev.At
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return cl, nil
}

func (cl *CopyLog) putSnapshot(s *graph.Snapshot) error {
	id := cl.nextID
	cl.nextID++
	d := delta.FromSnapshot(s)
	var total int64
	for comp, buf := range map[kvstore.Component][]byte{
		kvstore.ComponentStruct:   delta.EncodeStructCol(d),
		kvstore.ComponentNodeAttr: delta.EncodeNodeAttrCol(d),
		kvstore.ComponentEdgeAttr: delta.EncodeEdgeAttrCol(d),
	} {
		if err := cl.store.Put(kvstore.EncodeKey(0, id, comp), buf); err != nil {
			return err
		}
		total += int64(len(buf))
	}
	cl.snapIDs = append(cl.snapIDs, id)
	cl.snapBytes += total
	return nil
}

// Name implements SnapshotStore.
func (cl *CopyLog) Name() string { return "copy+log" }

// Snapshots returns the number of persisted full snapshots.
func (cl *CopyLog) Snapshots() int { return len(cl.snapIDs) }

// Snapshot implements SnapshotStore.
func (cl *CopyLog) Snapshot(t graph.Time, opts graph.AttrOptions) (*graph.Snapshot, error) {
	// Latest persisted snapshot with time <= t.
	i := sort.Search(len(cl.times), func(i int) bool { return cl.times[i] > t }) - 1
	if i < 0 {
		return graph.NewSnapshot(), nil
	}
	s, err := cl.loadSnapshot(cl.snapIDs[i], opts)
	if err != nil {
		return nil, err
	}
	// Replay the following eventlist up to t.
	if i < len(cl.eventIDs) && t > cl.times[i] {
		buf, err := cl.store.Get(kvstore.EncodeKey(0, cl.eventIDs[i], kvstore.ComponentStruct))
		if err != nil {
			return nil, err
		}
		evs, err := delta.DecodeEvents(buf)
		if err != nil {
			return nil, err
		}
		el := graph.EventList(evs)
		for _, ev := range el[:el.SearchTime(t)] {
			if opts.FilterEvent(ev) {
				s.Apply(ev)
			}
		}
	}
	return opts.FilterSnapshot(s), nil
}

func (cl *CopyLog) loadSnapshot(id uint64, opts graph.AttrOptions) (*graph.Snapshot, error) {
	var d delta.Delta
	buf, err := cl.store.Get(kvstore.EncodeKey(0, id, kvstore.ComponentStruct))
	if err != nil {
		return nil, fmt.Errorf("copylog: missing snapshot %d: %w", id, err)
	}
	if err := delta.DecodeStructCol(buf, &d); err != nil {
		return nil, err
	}
	if opts.AnyNodeAttrs() {
		if buf, err := cl.store.Get(kvstore.EncodeKey(0, id, kvstore.ComponentNodeAttr)); err == nil {
			if err := delta.DecodeNodeAttrCol(buf, &d); err != nil {
				return nil, err
			}
		}
	}
	if opts.AnyEdgeAttrs() {
		if buf, err := cl.store.Get(kvstore.EncodeKey(0, id, kvstore.ComponentEdgeAttr)); err == nil {
			if err := delta.DecodeEdgeAttrCol(buf, &d); err != nil {
				return nil, err
			}
		}
	}
	s := graph.NewSnapshot()
	d.Apply(s)
	return s, nil
}

// DiskBytes implements SnapshotStore.
func (cl *CopyLog) DiskBytes() int64 { return cl.store.SizeOnDisk() }

// MemoryBytes implements SnapshotStore: Copy+Log keeps only the tiny
// snapshot-time directory in memory.
func (cl *CopyLog) MemoryBytes() int64 { return int64(len(cl.times)) * 24 }
