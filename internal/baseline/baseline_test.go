package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"historygraph/internal/graph"
)

// makeTrace mirrors the deltagraph test generator: a well-formed random
// trace with adds, deletes and attribute churn.
func makeTrace(seed int64, n int) graph.EventList {
	rng := rand.New(rand.NewSource(seed))
	var (
		events    graph.EventList
		nextNode  graph.NodeID
		nextEdge  graph.EdgeID
		liveNodes []graph.NodeID
		liveEdges []graph.EdgeID
		edgeInfo  = map[graph.EdgeID]graph.EdgeInfo{}
		attrs     = map[graph.NodeID]map[string]string{}
		now       graph.Time
	)
	for len(events) < n {
		now++
		switch op := rng.Intn(12); {
		case op < 4 || len(liveNodes) < 2:
			nextNode++
			liveNodes = append(liveNodes, nextNode)
			events = append(events, graph.Event{Type: graph.AddNode, At: now, Node: nextNode})
		case op < 8:
			nextEdge++
			u := liveNodes[rng.Intn(len(liveNodes))]
			v := liveNodes[rng.Intn(len(liveNodes))]
			liveEdges = append(liveEdges, nextEdge)
			edgeInfo[nextEdge] = graph.EdgeInfo{From: u, To: v}
			events = append(events, graph.Event{Type: graph.AddEdge, At: now, Edge: nextEdge, Node: u, Node2: v})
		case op < 10:
			nd := liveNodes[rng.Intn(len(liveNodes))]
			old, had := attrs[nd]["name"]
			newv := fmt.Sprintf("v%d", rng.Intn(5))
			events = append(events, graph.Event{Type: graph.SetNodeAttr, At: now, Node: nd, Attr: "name", Old: old, HadOld: had, New: newv, HasNew: true})
			if attrs[nd] == nil {
				attrs[nd] = map[string]string{}
			}
			attrs[nd]["name"] = newv
		default:
			if len(liveEdges) == 0 {
				continue
			}
			i := rng.Intn(len(liveEdges))
			e := liveEdges[i]
			info := edgeInfo[e]
			liveEdges = append(liveEdges[:i], liveEdges[i+1:]...)
			events = append(events, graph.Event{Type: graph.DelEdge, At: now, Edge: e, Node: info.From, Node2: info.To})
		}
	}
	return events
}

var allAttrs = graph.MustParseAttrOptions("+node:all+edge:all")

func stores(t *testing.T, events graph.EventList) []SnapshotStore {
	t.Helper()
	it := BuildIntervalTree(events)
	cl, err := BuildCopyLog(events, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := BuildNaiveLog(events, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []SnapshotStore{it, cl, nl}
}

// Every baseline must agree exactly with reference replay.
func TestBaselinesMatchReference(t *testing.T) {
	events := makeTrace(1, 3000)
	_, last := events.Span()
	for _, st := range stores(t, events) {
		st := st
		t.Run(st.Name(), func(t *testing.T) {
			for i := 0; i <= 20; i++ {
				q := last * graph.Time(i) / 20
				want := graph.SnapshotAt(events, q)
				got, err := st.Snapshot(q, allAttrs)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s at t=%d differs (got %d/%d want %d/%d)", st.Name(), q,
						len(got.Nodes), len(got.Edges), len(want.Nodes), len(want.Edges))
				}
			}
			// Beyond the end and before the beginning.
			got, err := st.Snapshot(last+100, allAttrs)
			if err != nil || !got.Equal(graph.SnapshotAt(events, last)) {
				t.Error("query beyond end differs")
			}
			got, err = st.Snapshot(-5, allAttrs)
			if err != nil || got.Size() != 0 {
				t.Error("query before start should be empty")
			}
		})
	}
}

func TestBaselinesStructureOnly(t *testing.T) {
	events := makeTrace(2, 1500)
	_, last := events.Span()
	for _, st := range stores(t, events) {
		got, err := st.Snapshot(last/2, graph.AttrOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.NodeAttrs) != 0 {
			t.Errorf("%s returned attributes for structure-only query", st.Name())
		}
		want := graph.AttrOptions{}.FilterSnapshot(graph.SnapshotAt(events, last/2))
		if !got.Equal(want) {
			t.Errorf("%s structure-only snapshot differs", st.Name())
		}
	}
}

// Property: at random probe times all three approaches agree pairwise.
func TestBaselinesAgreeRandomized(t *testing.T) {
	events := makeTrace(3, 2000)
	_, last := events.Span()
	ss := stores(t, events)
	check := func(frac uint16) bool {
		q := graph.Time(int64(frac) % int64(last+1))
		ref, err := ss[0].Snapshot(q, allAttrs)
		if err != nil {
			return false
		}
		for _, st := range ss[1:] {
			got, err := st.Snapshot(q, allAttrs)
			if err != nil || !got.Equal(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIntervalTreeAccounting(t *testing.T) {
	events := makeTrace(4, 1000)
	it := BuildIntervalTree(events)
	if it.Len() == 0 {
		t.Fatal("no intervals")
	}
	if it.MemoryBytes() <= 0 || it.DiskBytes() != 0 {
		t.Error("interval tree accounting wrong")
	}
}

func TestIntervalTreeEmptyIntervalFiltered(t *testing.T) {
	// Node added and deleted at the same timestamp: never visible.
	events := graph.EventList{
		{Type: graph.AddNode, At: 5, Node: 1},
		{Type: graph.DelNode, At: 5, Node: 1},
		{Type: graph.AddNode, At: 6, Node: 2},
	}
	it := BuildIntervalTree(events)
	s, _ := it.Snapshot(5, allAttrs)
	if _, ok := s.Nodes[1]; ok {
		t.Error("zero-length interval visible")
	}
	s, _ = it.Snapshot(6, allAttrs)
	if _, ok := s.Nodes[2]; !ok {
		t.Error("normal node missing")
	}
}

func TestCopyLogAccounting(t *testing.T) {
	events := makeTrace(5, 1200)
	cl, err := BuildCopyLog(events, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Snapshots() < 3 {
		t.Errorf("snapshots = %d", cl.Snapshots())
	}
	if cl.DiskBytes() <= 0 {
		t.Error("no disk accounting")
	}
	// Larger chunks -> fewer snapshots -> less disk.
	cl2, _ := BuildCopyLog(events, 600, nil)
	if cl2.DiskBytes() >= cl.DiskBytes() {
		t.Errorf("chunk=600 uses %d >= chunk=200's %d", cl2.DiskBytes(), cl.DiskBytes())
	}
}

func TestNaiveLogAccounting(t *testing.T) {
	events := makeTrace(6, 1000)
	nl, err := BuildNaiveLog(events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Len() != 1000 || nl.DiskBytes() <= 0 {
		t.Error("naive log accounting wrong")
	}
}
