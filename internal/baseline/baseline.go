// Package baseline implements the snapshot-retrieval approaches the paper
// compares DeltaGraph against (Sections 4.1 and 7): an in-memory interval
// tree, the Copy+Log approach, and the naive Log approach. All three agree
// exactly with the reference replay semantics, so the experiment harness
// can swap them freely.
package baseline

import (
	"historygraph/internal/graph"
)

// SnapshotStore is the interface every retrieval approach implements.
type SnapshotStore interface {
	// Name identifies the approach in experiment output.
	Name() string
	// Snapshot returns the graph as of time t with the requested
	// attribute information.
	Snapshot(t graph.Time, opts graph.AttrOptions) (*graph.Snapshot, error)
	// DiskBytes is the persistent footprint (0 for purely in-memory).
	DiskBytes() int64
	// MemoryBytes estimates the resident memory the approach needs to
	// answer queries.
	MemoryBytes() int64
}
