package analytics

// Distributed counterparts of the whole-graph scans: each partition
// reduces its CSR rows to a compact mergeable part, and the coordinator
// folds the parts into the exact answer the single-process algorithm
// would give on the unsharded graph.
//
// The partitioning invariant that makes the merges exact: every event is
// hash-routed by its primary node (edges by From), so a node's existence
// is known only to its owner, every edge lives at its From endpoint's
// partition, and for each locally stored edge both endpoint rows exist
// locally (the far endpoint as a ghost row). An adjacency pair {u,v} is
// therefore *internal* when both endpoints hash to the scanning partition
// — visible only there, counted locally — and *boundary* otherwise,
// shipped to the coordinator which deduplicates globally (both owners may
// store edges between the same pair) and applies each unique pair once.
//
// An unsharded server runs the same scan with parts=1 (no boundary pairs)
// and merges the single part, so sharded and single-process answers come
// off one code path byte for byte.

import (
	"sort"

	"historygraph/internal/graph"
	"historygraph/internal/wire"
)

// RowGraph is the CSR shape the partition scans walk: every row — owned
// nodes and ghost endpoints alike — in ascending ID order with its
// sorted, deduplicated adjacency. csr.Graph implements it.
type RowGraph interface {
	NumNodes() int
	ForEachRow(fn func(id graph.NodeID, exists bool, nbrs []graph.NodeID) bool)
}

// appendPair flattens a boundary pair in canonical (min,max) order.
func appendPair(pairs []int64, a, b graph.NodeID) []int64 {
	if b < a {
		a, b = b, a
	}
	return append(pairs, int64(a), int64(b))
}

// DegreePartOf scans one partition's CSR for the degree distribution:
// each owned existing node with its internal distinct-neighbor count,
// plus the boundary pairs. Degree counts every distinct adjacent ID
// whether or not that endpoint exists as a node — matching Degrees on the
// unsharded graph — so boundary pairs contribute to a node's degree
// without consulting the remote endpoint's existence.
func DegreePartOf(g RowGraph, at graph.Time, parts, self int) *wire.DegreePart {
	part := &wire.DegreePart{At: int64(at)}
	g.ForEachRow(func(id graph.NodeID, exists bool, nbrs []graph.NodeID) bool {
		owned := parts <= 1 || graph.Partition(id, parts) == self
		if owned && exists {
			internal := 0
			for _, nb := range nbrs {
				if parts <= 1 || graph.Partition(nb, parts) == self {
					internal++
				}
			}
			part.Nodes = append(part.Nodes, int64(id))
			part.Counts = append(part.Counts, int64(internal))
			for _, nb := range nbrs {
				if parts > 1 && graph.Partition(nb, parts) != self && id < nb {
					part.Pairs = appendPair(part.Pairs, id, nb)
				}
			}
			return true
		}
		// Ghost or nonexistent row: its boundary pairs still matter (the
		// remote endpoint may exist), emitted from whichever side sorts
		// first so each locally visible pair goes out once.
		for _, nb := range nbrs {
			if parts > 1 && graph.Partition(nb, parts) != graph.Partition(id, parts) && id < nb {
				part.Pairs = appendPair(part.Pairs, id, nb)
			}
		}
		return true
	})
	sortPairs(part.Pairs)
	return part
}

// MergeDegree folds partition parts into the degree distribution.
func MergeDegree(at int64, parts []*wire.DegreePart) *wire.DegreeDist {
	degree := map[int64]int64{}
	cached := len(parts) > 0
	var pairs []int64
	for _, p := range parts {
		for i, n := range p.Nodes {
			degree[n] += p.Counts[i]
		}
		pairs = append(pairs, p.Pairs...)
		cached = cached && p.Cached
	}
	for _, pr := range dedupPairs(pairs) {
		if _, ok := degree[pr[0]]; ok {
			degree[pr[0]]++
		}
		if _, ok := degree[pr[1]]; ok && pr[1] != pr[0] {
			degree[pr[1]]++
		}
	}
	out := &wire.DegreeDist{At: at, NumNodes: int64(len(degree)), Cached: cached}
	hist := map[int64]int64{}
	var total int64
	for _, d := range degree {
		hist[d]++
		total += d
		if d > out.MaxDegree {
			out.MaxDegree = d
		}
	}
	if len(degree) > 0 {
		out.AvgDegree = float64(total) / float64(len(degree))
	}
	out.Degrees, out.Counts = sortedHist(hist)
	return out
}

// ComponentsPartOf scans one partition's CSR for connected components:
// a local union-find label per owned existing node (connectivity through
// internal pairs whose endpoints both exist) plus the boundary pairs.
// Components span existing nodes only — the single-process algorithm
// skips neighbors absent from the snapshot — so internal pairs union only
// when both endpoints exist; boundary pairs defer the existence check to
// the coordinator, which owns the merged node set.
func ComponentsPartOf(g RowGraph, at graph.Time, parts, self int) *wire.ComponentsPart {
	part := &wire.ComponentsPart{At: int64(at)}
	exists := make(map[graph.NodeID]bool, g.NumNodes())
	g.ForEachRow(func(id graph.NodeID, ex bool, _ []graph.NodeID) bool {
		exists[id] = ex
		return true
	})
	parent := make(map[graph.NodeID]graph.NodeID, g.NumNodes())
	var find func(graph.NodeID) graph.NodeID
	find = func(x graph.NodeID) graph.NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	g.ForEachRow(func(id graph.NodeID, ex bool, nbrs []graph.NodeID) bool {
		sameOwner := func(n graph.NodeID) bool {
			return parts <= 1 || graph.Partition(n, parts) == self
		}
		if sameOwner(id) && ex {
			if _, ok := parent[id]; !ok {
				parent[id] = id
			}
			for _, nb := range nbrs {
				if sameOwner(nb) && exists[nb] {
					if _, ok := parent[nb]; !ok {
						parent[nb] = nb
					}
					if ra, rb := find(id), find(nb); ra != rb {
						parent[ra] = rb
					}
				}
			}
		}
		for _, nb := range nbrs {
			if parts > 1 && graph.Partition(nb, parts) != graph.Partition(id, parts) && id < nb {
				part.Pairs = appendPair(part.Pairs, id, nb)
			}
		}
		return true
	})
	for id := range parent {
		part.Nodes = append(part.Nodes, int64(id))
	}
	sort.Slice(part.Nodes, func(i, j int) bool { return part.Nodes[i] < part.Nodes[j] })
	part.Labels = make([]int64, len(part.Nodes))
	for i, id := range part.Nodes {
		part.Labels[i] = int64(find(graph.NodeID(id)))
	}
	sortPairs(part.Pairs)
	return part
}

// MergeComponents folds partition parts into the component-size
// distribution. Labels are union-find-order dependent, so the merged
// response carries only order-independent aggregates — the outputs a
// sharded and an unsharded run agree on exactly.
func MergeComponents(at int64, parts []*wire.ComponentsPart) *wire.Components {
	parent := map[int64]int64{}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int64) {
		if _, ok := parent[a]; !ok {
			parent[a] = a
		}
		if _, ok := parent[b]; !ok {
			parent[b] = b
		}
		if ra, rb := find(a), find(b); ra != rb {
			parent[ra] = rb
		}
	}
	nodes := map[int64]struct{}{}
	cached := len(parts) > 0
	var pairs []int64
	for _, p := range parts {
		for i, n := range p.Nodes {
			nodes[n] = struct{}{}
			union(n, p.Labels[i])
		}
		pairs = append(pairs, p.Pairs...)
		cached = cached && p.Cached
	}
	for _, pr := range dedupPairs(pairs) {
		_, okA := nodes[pr[0]]
		_, okB := nodes[pr[1]]
		if okA && okB {
			union(pr[0], pr[1])
		}
	}
	sizes := map[int64]int64{}
	for n := range nodes {
		sizes[find(n)]++
	}
	out := &wire.Components{
		At: at, NumNodes: int64(len(nodes)),
		NumComponents: int64(len(sizes)), Cached: cached,
	}
	hist := map[int64]int64{}
	for _, s := range sizes {
		hist[s]++
		if s > out.Largest {
			out.Largest = s
		}
	}
	out.Sizes, out.Counts = sortedHist(hist)
	return out
}

// DiffSource is the pair-of-views shape the evolution scan diffs;
// graphpool.View satisfies it directly. Evolution works off views, not
// CSRs, because edge identity (EdgeID) is what distinguishes a replaced
// edge from a persistent one and the CSR drops it.
type DiffSource interface {
	NumNodes() int
	NumEdges() int
	ForEachNode(fn func(graph.NodeID) bool)
	ForEachEdge(fn func(graph.EdgeID, graph.EdgeInfo) bool)
	HasNode(graph.NodeID) bool
	HasEdge(graph.EdgeID) bool
}

// EvolutionPartOf diffs one partition's two pinned views. Every element's
// full history lives on one partition, so the counters sum exactly.
func EvolutionPartOf(g1, g2 DiffSource, t1, t2 graph.Time) *wire.EvolutionPart {
	part := &wire.EvolutionPart{
		T1: int64(t1), T2: int64(t2),
		NodesT1: int64(g1.NumNodes()), NodesT2: int64(g2.NumNodes()),
		EdgesT1: int64(g1.NumEdges()), EdgesT2: int64(g2.NumEdges()),
	}
	g2.ForEachNode(func(n graph.NodeID) bool {
		if !g1.HasNode(n) {
			part.NodesAdded++
		}
		return true
	})
	g1.ForEachNode(func(n graph.NodeID) bool {
		if !g2.HasNode(n) {
			part.NodesRemoved++
		}
		return true
	})
	g2.ForEachEdge(func(id graph.EdgeID, _ graph.EdgeInfo) bool {
		if !g1.HasEdge(id) {
			part.EdgesAdded++
		}
		return true
	})
	g1.ForEachEdge(func(id graph.EdgeID, _ graph.EdgeInfo) bool {
		if !g2.HasEdge(id) {
			part.EdgesRemoved++
		}
		return true
	})
	return part
}

// MergeEvolution sums partition evolution counters.
func MergeEvolution(parts []*wire.EvolutionPart) *wire.Evolution {
	out := &wire.Evolution{Cached: len(parts) > 0}
	for _, p := range parts {
		out.T1, out.T2 = p.T1, p.T2
		out.NodesT1 += p.NodesT1
		out.NodesT2 += p.NodesT2
		out.EdgesT1 += p.EdgesT1
		out.EdgesT2 += p.EdgesT2
		out.NodesAdded += p.NodesAdded
		out.NodesRemoved += p.NodesRemoved
		out.EdgesAdded += p.EdgesAdded
		out.EdgesRemoved += p.EdgesRemoved
		out.Cached = out.Cached && p.Cached
	}
	return out
}

// BoundaryPairs collects one partition's cross-partition adjacency pairs
// — the same pair stream the degree and component scans emit, standalone
// for PageRank job setup. Pairs are emitted regardless of endpoint
// existence (degree semantics count nonexistent neighbors; owners drop
// shares addressed to nonexistent nodes), flattened, sorted, and locally
// unique.
func BoundaryPairs(g RowGraph, parts, self int) []int64 {
	var pairs []int64
	if parts <= 1 {
		return nil
	}
	g.ForEachRow(func(id graph.NodeID, _ bool, nbrs []graph.NodeID) bool {
		for _, nb := range nbrs {
			if graph.Partition(nb, parts) != graph.Partition(id, parts) && id < nb {
				pairs = appendPair(pairs, id, nb)
			}
		}
		return true
	})
	sortPairs(pairs)
	return pairs
}

// RoutePairs assigns each deduplicated boundary pair to both endpoint
// owners' outboxes — every partition learns the ghost adjacency other
// partitions stored for its vertices. Returned lists are flattened,
// sorted, and deduplicated.
func RoutePairs(pairs []int64, parts int) [][]int64 {
	out := make([][]int64, parts)
	for _, pr := range dedupPairs(pairs) {
		pa := graph.Partition(graph.NodeID(pr[0]), parts)
		pb := graph.Partition(graph.NodeID(pr[1]), parts)
		out[pa] = append(out[pa], pr[0], pr[1])
		if pb != pa {
			out[pb] = append(out[pb], pr[0], pr[1])
		}
	}
	return out
}

// MergeRanks folds per-partition top-K lists into the global top-K. Each
// node is owned by exactly one partition, so per-partition truncation to
// k entries loses nothing.
func MergeRanks(lists [][]wire.RankEntry, k int) []wire.RankEntry {
	var all []wire.RankEntry
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// dedupPairs sorts a flattened pair list and returns the unique pairs.
func dedupPairs(pairs []int64) [][2]int64 {
	out := make([][2]int64, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, [2]int64{pairs[i], pairs[i+1]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	w := 0
	for i, pr := range out {
		if i == 0 || pr != out[i-1] {
			out[w] = pr
			w++
		}
	}
	return out[:w]
}

// sortPairs orders a flattened pair list ascending (a, then b) in place —
// the canonical order the wire delta coding expects.
func sortPairs(pairs []int64) {
	n := len(pairs) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if pairs[2*a] != pairs[2*b] {
			return pairs[2*a] < pairs[2*b]
		}
		return pairs[2*a+1] < pairs[2*b+1]
	})
	sorted := make([]int64, len(pairs))
	for i, a := range idx {
		sorted[2*i] = pairs[2*a]
		sorted[2*i+1] = pairs[2*a+1]
	}
	copy(pairs, sorted)
}

// sortedHist flattens a histogram map to parallel ascending key/count
// slices.
func sortedHist(hist map[int64]int64) (keys, counts []int64) {
	keys = make([]int64, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	counts = make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = hist[k]
	}
	return keys, counts
}
