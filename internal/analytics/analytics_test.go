package analytics

import (
	"math"
	"testing"

	"historygraph/internal/graph"
)

func lineGraph(n int) *SnapshotGraph {
	s := graph.NewSnapshot()
	for i := 1; i <= n; i++ {
		s.Nodes[graph.NodeID(i)] = struct{}{}
	}
	for i := 1; i < n; i++ {
		s.Edges[graph.EdgeID(i)] = graph.EdgeInfo{From: graph.NodeID(i), To: graph.NodeID(i + 1)}
	}
	return FromSnapshot(s)
}

func TestSnapshotGraphAdapter(t *testing.T) {
	g := lineGraph(5)
	if g.NumNodes() != 5 {
		t.Fatal("NumNodes wrong")
	}
	if len(g.Neighbors(3)) != 2 || len(g.Neighbors(1)) != 1 {
		t.Error("Neighbors wrong")
	}
	count := 0
	g.ForEachNode(func(graph.NodeID) bool { count++; return count < 3 })
	if count != 3 {
		t.Error("ForEachNode early exit failed")
	}
}

func TestPageRankProperties(t *testing.T) {
	g := lineGraph(10)
	ranks := PageRank(g, 0.85, 30)
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("mass = %g", sum)
	}
	// Symmetry of the line graph: rank(i) == rank(n+1-i).
	for i := 1; i <= 5; i++ {
		a, b := ranks[graph.NodeID(i)], ranks[graph.NodeID(11-i)]
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("asymmetry at %d: %g vs %g", i, a, b)
		}
	}
	// Middle nodes outrank endpoints.
	if ranks[5] <= ranks[1] {
		t.Error("middle node should outrank endpoint")
	}
	if out := PageRank(FromSnapshot(graph.NewSnapshot()), 0.85, 5); len(out) != 0 {
		t.Error("pagerank of empty graph")
	}
}

func TestRankOfAndTopK(t *testing.T) {
	scores := map[graph.NodeID]float64{1: 0.5, 2: 0.9, 3: 0.1, 4: 0.9}
	ranks := RankOf(scores)
	if ranks[2] != 1 || ranks[4] != 2 || ranks[1] != 3 || ranks[3] != 4 {
		t.Errorf("ranks = %v (ties must break by ID)", ranks)
	}
	top := TopK(scores, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 4 {
		t.Errorf("top2 = %v", top)
	}
	if len(TopK(scores, 10)) != 4 {
		t.Error("TopK should clamp")
	}
}

func TestDegrees(t *testing.T) {
	g := lineGraph(4)
	d := Degrees(g)
	if d[1] != 1 || d[2] != 2 || d[4] != 1 {
		t.Errorf("degrees = %v", d)
	}
	if avg := AverageDegree(g); math.Abs(avg-1.5) > 1e-9 {
		t.Errorf("avg degree = %g, want 1.5", avg)
	}
	if AverageDegree(FromSnapshot(graph.NewSnapshot())) != 0 {
		t.Error("empty avg degree")
	}
}

func TestConnectedComponents(t *testing.T) {
	s := graph.NewSnapshot()
	for i := 1; i <= 6; i++ {
		s.Nodes[graph.NodeID(i)] = struct{}{}
	}
	s.Edges[1] = graph.EdgeInfo{From: 1, To: 2}
	s.Edges[2] = graph.EdgeInfo{From: 2, To: 3}
	s.Edges[3] = graph.EdgeInfo{From: 4, To: 5}
	labels, n := ConnectedComponents(FromSnapshot(s))
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if labels[1] != labels[3] || labels[4] != labels[5] || labels[1] == labels[6] {
		t.Errorf("labels = %v", labels)
	}
}

func TestTriangleCount(t *testing.T) {
	s := graph.NewSnapshot()
	for i := 1; i <= 5; i++ {
		s.Nodes[graph.NodeID(i)] = struct{}{}
	}
	// Triangle 1-2-3 plus a pendant edge and a second triangle 3-4-5.
	edges := [][2]graph.NodeID{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {4, 5}, {3, 5}}
	for i, e := range edges {
		s.Edges[graph.EdgeID(i+1)] = graph.EdgeInfo{From: e[0], To: e[1]}
	}
	if got := TriangleCount(FromSnapshot(s)); got != 2 {
		t.Errorf("triangles = %d, want 2", got)
	}
	if TriangleCount(lineGraph(10)) != 0 {
		t.Error("line graph has no triangles")
	}
	// A complete graph K5 has C(5,3)=10 triangles.
	k5 := graph.NewSnapshot()
	for i := 1; i <= 5; i++ {
		k5.Nodes[graph.NodeID(i)] = struct{}{}
	}
	id := graph.EdgeID(1)
	for i := 1; i <= 5; i++ {
		for j := i + 1; j <= 5; j++ {
			k5.Edges[id] = graph.EdgeInfo{From: graph.NodeID(i), To: graph.NodeID(j)}
			id++
		}
	}
	if got := TriangleCount(FromSnapshot(k5)); got != 10 {
		t.Errorf("K5 triangles = %d, want 10", got)
	}
}
