// Package analytics provides the graph algorithms the paper's motivating
// examples and experiments use: PageRank (Figure 1, Dataset 3, the bitmap
// penalty measurement), degree statistics, connected components, and
// triangle counting. Algorithms run over any Graph — a GraphPool view or a
// snapshot adapter — so the same code measures both the bitmap-filtered
// and the plain-copy paths.
package analytics

import (
	"sort"

	"historygraph/internal/graph"
)

// Graph is the read interface the algorithms traverse. graphpool.View
// satisfies it directly.
type Graph interface {
	ForEachNode(fn func(graph.NodeID) bool)
	Neighbors(n graph.NodeID) []graph.NodeID
	NumNodes() int
}

// SnapshotGraph adapts a set-based snapshot to the Graph interface with a
// pre-built adjacency index (the "extracted copy" the bitmap-penalty
// experiment compares against).
type SnapshotGraph struct {
	snap *graph.Snapshot
	adj  map[graph.NodeID][]graph.NodeID
}

// FromSnapshot builds the adapter.
func FromSnapshot(s *graph.Snapshot) *SnapshotGraph {
	g := &SnapshotGraph{snap: s, adj: make(map[graph.NodeID][]graph.NodeID, len(s.Nodes))}
	for _, info := range s.Edges {
		g.adj[info.From] = append(g.adj[info.From], info.To)
		if info.To != info.From {
			g.adj[info.To] = append(g.adj[info.To], info.From)
		}
	}
	return g
}

// ForEachNode implements Graph.
func (g *SnapshotGraph) ForEachNode(fn func(graph.NodeID) bool) {
	for n := range g.snap.Nodes {
		if !fn(n) {
			return
		}
	}
}

// Neighbors implements Graph.
func (g *SnapshotGraph) Neighbors(n graph.NodeID) []graph.NodeID { return g.adj[n] }

// NumNodes implements Graph.
func (g *SnapshotGraph) NumNodes() int { return len(g.snap.Nodes) }

// FastGraph is an optional extension: allocation-free neighbor iteration.
// graphpool.FrozenView and SnapshotGraph implement it; PageRank uses it
// when available, so the only per-visit cost difference between a pool
// view and an extracted copy is the bitmap membership test — exactly the
// penalty the paper measures.
type FastGraph interface {
	Graph
	ForEachNeighbor(n graph.NodeID, fn func(graph.NodeID) bool)
	Degree(n graph.NodeID) int
}

// ForEachNeighbor implements FastGraph for SnapshotGraph.
func (g *SnapshotGraph) ForEachNeighbor(n graph.NodeID, fn func(graph.NodeID) bool) {
	for _, nb := range g.adj[n] {
		if !fn(nb) {
			return
		}
	}
}

// Degree implements FastGraph for SnapshotGraph.
func (g *SnapshotGraph) Degree(n graph.NodeID) int { return len(g.adj[n]) }

// PageRank runs damped power iteration over g.
func PageRank(g Graph, damping float64, iterations int) map[graph.NodeID]float64 {
	n := g.NumNodes()
	if n == 0 {
		return map[graph.NodeID]float64{}
	}
	if damping == 0 {
		damping = 0.85
	}
	if iterations <= 0 {
		iterations = 20
	}
	rank := make(map[graph.NodeID]float64, n)
	g.ForEachNode(func(id graph.NodeID) bool {
		rank[id] = 1 / float64(n)
		return true
	})
	fg, fast := g.(FastGraph)
	for it := 0; it < iterations; it++ {
		next := make(map[graph.NodeID]float64, n)
		base := (1 - damping) / float64(n)
		for id := range rank {
			next[id] = base
		}
		for id, r := range rank {
			if fast {
				deg := fg.Degree(id)
				if deg == 0 {
					continue
				}
				share := damping * r / float64(deg)
				fg.ForEachNeighbor(id, func(nb graph.NodeID) bool {
					if _, ok := next[nb]; ok {
						next[nb] += share
					}
					return true
				})
				continue
			}
			nbrs := g.Neighbors(id)
			if len(nbrs) == 0 {
				continue
			}
			share := damping * r / float64(len(nbrs))
			for _, nb := range nbrs {
				if _, ok := next[nb]; ok {
					next[nb] += share
				}
			}
		}
		rank = next
	}
	return rank
}

// RankOf returns 1-based ranks by descending score (ties broken by ID for
// determinism) — used for the Figure 1 "rank evolution" workload.
func RankOf(scores map[graph.NodeID]float64) map[graph.NodeID]int {
	ids := make([]graph.NodeID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] > scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	ranks := make(map[graph.NodeID]int, len(ids))
	for i, id := range ids {
		ranks[id] = i + 1
	}
	return ranks
}

// TopK returns the k highest-scored nodes in rank order.
func TopK(scores map[graph.NodeID]float64, k int) []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] > scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}

// Degrees returns the degree of every node.
func Degrees(g Graph) map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, g.NumNodes())
	g.ForEachNode(func(n graph.NodeID) bool {
		out[n] = len(g.Neighbors(n))
		return true
	})
	return out
}

// AverageDegree returns the mean degree (the paper's "average monthly
// density" style of aggregate).
func AverageDegree(g Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	total := 0
	g.ForEachNode(func(id graph.NodeID) bool {
		total += len(g.Neighbors(id))
		return true
	})
	return float64(total) / float64(n)
}

// ConnectedComponents labels every node with a component representative
// and returns the number of components (directed edges treated as
// undirected).
func ConnectedComponents(g Graph) (map[graph.NodeID]graph.NodeID, int) {
	parent := make(map[graph.NodeID]graph.NodeID, g.NumNodes())
	var find func(graph.NodeID) graph.NodeID
	find = func(x graph.NodeID) graph.NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	g.ForEachNode(func(n graph.NodeID) bool {
		parent[n] = n
		return true
	})
	g.ForEachNode(func(n graph.NodeID) bool {
		for _, nb := range g.Neighbors(n) {
			if _, ok := parent[nb]; !ok {
				continue
			}
			ra, rb := find(n), find(nb)
			if ra != rb {
				parent[ra] = rb
			}
		}
		return true
	})
	labels := make(map[graph.NodeID]graph.NodeID, len(parent))
	roots := make(map[graph.NodeID]struct{})
	for n := range parent {
		r := find(n)
		labels[n] = r
		roots[r] = struct{}{}
	}
	return labels, len(roots)
}

// TriangleCount counts distinct triangles ("how many new triangles have
// been formed over the last year" is one of the paper's motivating
// queries; the harness diffs two snapshots' counts).
func TriangleCount(g Graph) int {
	// Neighbor sets with the standard degree-ordering optimization.
	nbrs := make(map[graph.NodeID]map[graph.NodeID]struct{}, g.NumNodes())
	g.ForEachNode(func(n graph.NodeID) bool {
		set := make(map[graph.NodeID]struct{})
		for _, nb := range g.Neighbors(n) {
			if nb != n {
				set[nb] = struct{}{}
			}
		}
		nbrs[n] = set
		return true
	})
	less := func(a, b graph.NodeID) bool {
		da, db := len(nbrs[a]), len(nbrs[b])
		if da != db {
			return da < db
		}
		return a < b
	}
	count := 0
	for u, set := range nbrs {
		for v := range set {
			if !less(u, v) {
				continue
			}
			for w := range nbrs[v] {
				if !less(v, w) {
					continue
				}
				if _, ok := set[w]; ok {
					count++
				}
			}
		}
	}
	return count
}
