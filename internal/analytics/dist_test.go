package analytics_test

// The merge-exactness property the distributed analytics plane rests on:
// partition scans over per-partition CSR slices, merged at the
// coordinator, must equal the single-part scan over the whole graph —
// which is itself anchored against the pre-existing whole-graph
// algorithms (Degrees, ConnectedComponents) here, so the sharded path,
// the unsharded path, and the reference implementation all agree.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"historygraph/internal/analytics"
	"historygraph/internal/csr"
	"historygraph/internal/graph"
	"historygraph/internal/wire"
)

// fakeSource mirrors the csr package's test source: explicit nodes and
// edges, ghosts and multi-edges legal.
type fakeSource struct {
	at    graph.Time
	nodes []graph.NodeID
	edges []graph.EdgeInfo
}

func (f *fakeSource) At() graph.Time { return f.at }
func (f *fakeSource) NumNodes() int  { return len(f.nodes) }
func (f *fakeSource) NumEdges() int  { return len(f.edges) }
func (f *fakeSource) ForEachNode(fn func(graph.NodeID) bool) {
	for _, n := range f.nodes {
		if !fn(n) {
			return
		}
	}
}
func (f *fakeSource) ForEachEdge(fn func(graph.EdgeID, graph.EdgeInfo) bool) {
	for i, e := range f.edges {
		if !fn(graph.EdgeID(i), e) {
			return
		}
	}
}

// shardedSources splits a trace the way a cluster stores it: every edge
// lives at its From endpoint's partition (both endpoint rows local, the
// far one a ghost), every node at its own.
func shardedSources(full *fakeSource, parts int) []*fakeSource {
	out := make([]*fakeSource, parts)
	for p := range out {
		out[p] = &fakeSource{at: full.at}
	}
	for _, n := range full.nodes {
		p := graph.Partition(n, parts)
		out[p].nodes = append(out[p].nodes, n)
	}
	for _, e := range full.edges {
		p := graph.Partition(e.From, parts)
		out[p].edges = append(out[p].edges, e)
	}
	return out
}

// randomFull builds a deterministic random trace with ghost endpoints.
func randomFull(seed int64, nodes, edges int) *fakeSource {
	rng := rand.New(rand.NewSource(seed))
	full := &fakeSource{at: 11}
	for n := 0; n < nodes; n++ {
		if rng.Intn(5) > 0 {
			full.nodes = append(full.nodes, graph.NodeID(n))
		}
	}
	for i := 0; i < edges; i++ {
		full.edges = append(full.edges, graph.EdgeInfo{
			From: graph.NodeID(rng.Intn(nodes)),
			To:   graph.NodeID(rng.Intn(nodes)),
		})
	}
	return full
}

func TestShardedDegreeMatchesSinglePart(t *testing.T) {
	for _, parts := range []int{2, 3, 5} {
		for seed := int64(0); seed < 4; seed++ {
			full := randomFull(seed, 120, 400)
			g := csr.Build(full)
			want := analytics.MergeDegree(int64(full.at),
				[]*wire.DegreePart{analytics.DegreePartOf(g, full.at, 1, 0)})

			var shardedParts []*wire.DegreePart
			for p, src := range shardedSources(full, parts) {
				shardedParts = append(shardedParts,
					analytics.DegreePartOf(csr.Build(src), full.at, parts, p))
			}
			got := analytics.MergeDegree(int64(full.at), shardedParts)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parts=%d seed=%d: sharded degree %+v, want %+v", parts, seed, got, want)
			}
		}
	}
}

func TestShardedComponentsMatchSinglePart(t *testing.T) {
	for _, parts := range []int{2, 3, 5} {
		for seed := int64(0); seed < 4; seed++ {
			full := randomFull(seed, 120, 300)
			g := csr.Build(full)
			want := analytics.MergeComponents(int64(full.at),
				[]*wire.ComponentsPart{analytics.ComponentsPartOf(g, full.at, 1, 0)})

			var shardedParts []*wire.ComponentsPart
			for p, src := range shardedSources(full, parts) {
				shardedParts = append(shardedParts,
					analytics.ComponentsPartOf(csr.Build(src), full.at, parts, p))
			}
			got := analytics.MergeComponents(int64(full.at), shardedParts)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parts=%d seed=%d: sharded components %+v, want %+v", parts, seed, got, want)
			}
		}
	}
}

// TestSinglePartMatchesReference anchors the part-scan semantics to the
// package's whole-graph algorithms over the same CSR.
func TestSinglePartMatchesReference(t *testing.T) {
	full := randomFull(9, 100, 250)
	g := csr.Build(full)

	dd := analytics.MergeDegree(int64(full.at),
		[]*wire.DegreePart{analytics.DegreePartOf(g, full.at, 1, 0)})
	ref := analytics.Degrees(g)
	if int(dd.NumNodes) != len(ref) {
		t.Fatalf("NumNodes = %d, want %d", dd.NumNodes, len(ref))
	}
	hist := map[int64]int64{}
	var maxDeg, total int64
	for _, d := range ref {
		hist[int64(d)]++
		total += int64(d)
		if int64(d) > maxDeg {
			maxDeg = int64(d)
		}
	}
	if dd.MaxDegree != maxDeg {
		t.Fatalf("MaxDegree = %d, want %d", dd.MaxDegree, maxDeg)
	}
	if want := float64(total) / float64(len(ref)); dd.AvgDegree != want {
		t.Fatalf("AvgDegree = %g, want %g", dd.AvgDegree, want)
	}
	var keys []int64
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	counts := make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = hist[k]
	}
	if !reflect.DeepEqual(dd.Degrees, keys) || !reflect.DeepEqual(dd.Counts, counts) {
		t.Fatalf("histogram %v/%v, want %v/%v", dd.Degrees, dd.Counts, keys, counts)
	}

	cc := analytics.MergeComponents(int64(full.at),
		[]*wire.ComponentsPart{analytics.ComponentsPartOf(g, full.at, 1, 0)})
	labels, n := analytics.ConnectedComponents(g)
	if int(cc.NumComponents) != n {
		t.Fatalf("NumComponents = %d, want %d", cc.NumComponents, n)
	}
	sizes := map[graph.NodeID]int64{}
	for _, root := range labels {
		sizes[root]++
	}
	var largest int64
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	if cc.Largest != largest {
		t.Fatalf("Largest = %d, want %d", cc.Largest, largest)
	}
}

// diffSource wraps fakeSource with the identity-carrying edge walk the
// evolution diff needs.
type diffSource struct {
	nodes map[graph.NodeID]bool
	edges map[graph.EdgeID]graph.EdgeInfo
}

func (d *diffSource) NumNodes() int { return len(d.nodes) }
func (d *diffSource) NumEdges() int { return len(d.edges) }
func (d *diffSource) ForEachNode(fn func(graph.NodeID) bool) {
	for n := range d.nodes {
		if !fn(n) {
			return
		}
	}
}
func (d *diffSource) ForEachEdge(fn func(graph.EdgeID, graph.EdgeInfo) bool) {
	for id, info := range d.edges {
		if !fn(id, info) {
			return
		}
	}
}
func (d *diffSource) HasNode(n graph.NodeID) bool { return d.nodes[n] }
func (d *diffSource) HasEdge(e graph.EdgeID) bool { _, ok := d.edges[e]; return ok }

func TestShardedEvolutionSums(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const parts = 3
	// An edge ID's endpoints are fixed across its history — that is what
	// confines each element to one partition — so endpoints are drawn once
	// per ID and only presence varies between the two snapshots.
	ends := make([]graph.EdgeInfo, 150)
	for i := range ends {
		ends[i] = graph.EdgeInfo{From: graph.NodeID(rng.Intn(60)), To: graph.NodeID(rng.Intn(60))}
	}
	mk := func() *diffSource {
		d := &diffSource{nodes: map[graph.NodeID]bool{}, edges: map[graph.EdgeID]graph.EdgeInfo{}}
		for i := 0; i < 60; i++ {
			if rng.Intn(2) == 0 {
				d.nodes[graph.NodeID(i)] = true
			}
		}
		for i, info := range ends {
			if rng.Intn(2) == 0 {
				d.edges[graph.EdgeID(i)] = info
			}
		}
		return d
	}
	g1, g2 := mk(), mk()
	want := analytics.MergeEvolution([]*wire.EvolutionPart{analytics.EvolutionPartOf(g1, g2, 1, 2)})

	slice := func(d *diffSource, p int) *diffSource {
		out := &diffSource{nodes: map[graph.NodeID]bool{}, edges: map[graph.EdgeID]graph.EdgeInfo{}}
		for n := range d.nodes {
			if graph.Partition(n, parts) == p {
				out.nodes[n] = true
			}
		}
		for id, info := range d.edges {
			if graph.Partition(info.From, parts) == p {
				out.edges[id] = info
			}
		}
		return out
	}
	var shardedParts []*wire.EvolutionPart
	for p := 0; p < parts; p++ {
		shardedParts = append(shardedParts, analytics.EvolutionPartOf(slice(g1, p), slice(g2, p), 1, 2))
	}
	got := analytics.MergeEvolution(shardedParts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded evolution %+v, want %+v", got, want)
	}
}
