package auxindex

import (
	"fmt"
	"sort"
	"strings"

	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"
)

// Pattern is a small node-labeled query graph. Node IDs are local to the
// pattern.
type Pattern struct {
	Labels map[graph.NodeID]string
	Edges  [][2]graph.NodeID
}

// Match is one occurrence: a mapping from pattern node to data node.
type Match map[graph.NodeID]graph.NodeID

// key renders a canonical form for dedup.
func (m Match) key() string {
	ids := make([]graph.NodeID, 0, len(m))
	for p := range m {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sb strings.Builder
	for _, p := range ids {
		fmt.Fprintf(&sb, "%d->%d;", p, m[p])
	}
	return sb.String()
}

// decompose finds one simple 4-node path in the pattern (the paper: "there
// must be at least one such path in the pattern").
func (p *Pattern) decompose() ([PathLen]graph.NodeID, error) {
	adj := map[graph.NodeID][]graph.NodeID{}
	for _, e := range p.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	var found [PathLen]graph.NodeID
	var dfs func(path []graph.NodeID) bool
	dfs = func(path []graph.NodeID) bool {
		if len(path) == PathLen {
			copy(found[:], path)
			return true
		}
		last := path[len(path)-1]
		for _, nb := range adj[last] {
			dup := false
			for _, seen := range path {
				if seen == nb {
					dup = true
					break
				}
			}
			if !dup && dfs(append(path, nb)) {
				return true
			}
		}
		return false
	}
	for start := range p.Labels {
		if dfs([]graph.NodeID{start}) {
			return found, nil
		}
	}
	return found, fmt.Errorf("auxindex: pattern has no simple path of %d nodes", PathLen)
}

// Matcher answers subgraph pattern queries against a DeltaGraph carrying a
// PathIndex; it implements the paper's AuxHistQuery roles on top of
// GetAuxSnapshot.
type Matcher struct {
	DG    *deltagraph.DeltaGraph
	Index *PathIndex
}

// FindPaths returns the indexed occurrences of a label quartet as of time
// t (a pure index lookup, no verification needed).
func (m *Matcher) FindPaths(t graph.Time, labels [PathLen]string) ([]Path, error) {
	aux, err := m.DG.GetAuxSnapshot(m.Index.Name(), t)
	if err != nil {
		return nil, err
	}
	prefix := LabelKeyPrefix(labels)
	var out []Path
	for k := range aux {
		if strings.HasPrefix(k, prefix) {
			if path, ok := ParsePathKey(k); ok {
				out = append(out, path)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out, nil
}

// MatchAt finds all occurrences of the pattern in the snapshot at time t:
// it decomposes the pattern into a 4-node path, looks up candidates in the
// index, and completes each candidate into a full match by backtracking
// over the snapshot (the paper's "appropriate join").
func (m *Matcher) MatchAt(t graph.Time) func(p *Pattern) ([]Match, error) {
	return func(p *Pattern) ([]Match, error) {
		return m.Match(t, p)
	}
}

// Match finds all occurrences of the pattern as of time t.
func (m *Matcher) Match(t graph.Time, p *Pattern) ([]Match, error) {
	core, err := p.decompose()
	if err != nil {
		return nil, err
	}
	var labels [PathLen]string
	for i, pn := range core {
		labels[i] = p.Labels[pn]
	}
	candidates, err := m.FindPaths(t, labels)
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	snap, err := m.DG.GetSnapshot(t, graph.MustParseAttrOptions("+node:"+m.Index.LabelAttr))
	if err != nil {
		return nil, err
	}
	adj := map[graph.NodeID]map[graph.NodeID]bool{}
	for _, info := range snap.Edges {
		if adj[info.From] == nil {
			adj[info.From] = map[graph.NodeID]bool{}
		}
		if adj[info.To] == nil {
			adj[info.To] = map[graph.NodeID]bool{}
		}
		adj[info.From][info.To] = true
		adj[info.To][info.From] = true
	}
	label := func(n graph.NodeID) string { return snap.NodeAttrs[n][m.Index.LabelAttr] }

	seen := map[string]struct{}{}
	var out []Match
	for _, cand := range candidates {
		binding := Match{}
		ok := true
		used := map[graph.NodeID]bool{}
		for i, pn := range core {
			binding[pn] = cand[i]
			used[cand[i]] = true
		}
		if !ok {
			continue
		}
		m.extend(p, snap, adj, label, binding, used, func(full Match) {
			k := full.key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				cp := Match{}
				for a, b := range full {
					cp[a] = b
				}
				out = append(out, cp)
			}
		})
	}
	return out, nil
}

// extend completes a partial binding over the remaining pattern nodes by
// backtracking.
func (m *Matcher) extend(p *Pattern, snap *graph.Snapshot, adj map[graph.NodeID]map[graph.NodeID]bool,
	label func(graph.NodeID) string, binding Match, used map[graph.NodeID]bool, emit func(Match)) {

	// Verify currently-bound pattern edges.
	for _, e := range p.Edges {
		a, aok := binding[e[0]]
		b, bok := binding[e[1]]
		if aok && bok && !adj[a][b] {
			return
		}
	}
	// Find an unbound pattern node adjacent to a bound one.
	var next graph.NodeID = -1
	var anchor graph.NodeID
	for _, e := range p.Edges {
		if _, ok := binding[e[0]]; ok {
			if _, ok2 := binding[e[1]]; !ok2 {
				next, anchor = e[1], e[0]
				break
			}
		} else if _, ok2 := binding[e[1]]; ok2 {
			next, anchor = e[0], e[1]
			break
		}
	}
	if next == -1 {
		// All pattern nodes connected to the core are bound; patterns
		// are assumed connected.
		if len(binding) == len(p.Labels) {
			emit(binding)
		}
		return
	}
	want := p.Labels[next]
	for cand := range adj[binding[anchor]] {
		if used[cand] || label(cand) != want {
			continue
		}
		binding[next] = cand
		used[cand] = true
		m.extend(p, snap, adj, label, binding, used, emit)
		delete(binding, next)
		delete(used, cand)
	}
}

// MatchHistory runs the pattern over many time points (e.g. every leaf
// snapshot) and returns the total number of distinct (time, match) hits —
// the shape of the paper's 148-second / 14109-match experiment.
func (m *Matcher) MatchHistory(times []graph.Time, p *Pattern) (int, error) {
	total := 0
	for _, t := range times {
		matches, err := m.Match(t, p)
		if err != nil {
			return 0, err
		}
		total += len(matches)
	}
	return total, nil
}
